package repro

// Equivalence of the incremental derived-order engine with from-scratch
// recomputation, across the whole testdata litmus suite: exploring with
// CheckIncremental recomputes hb/eco/comb, the observability sets and
// the maintained indexes at every admitted configuration and compares
// them with the inherited-and-extended values. The audit must count
// zero mismatches, and the exploration statistics must be identical
// with and without it — serially and (under -race, see CI) with
// parallel workers, where closure rows are shared across them.

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
)

// testdataConfigs parses every .lit program under testdata, through
// the same parseFile helper the integration tests use.
func testdataConfigs(t *testing.T) map[string]core.Config {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "*.lit"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs: %v", err)
	}
	out := make(map[string]core.Config, len(files))
	for _, fn := range files {
		name := filepath.Base(fn)
		f := parseFile(t, name)
		prog, err := f.Prog()
		if err != nil {
			t.Fatal(err)
		}
		out[name] = core.NewConfig(prog, f.Init)
	}
	return out
}

func TestIncrementalEquivalenceTestdata(t *testing.T) {
	for name, cfg := range testdataConfigs(t) {
		t.Run(name, func(t *testing.T) {
			bound := 9
			for _, workers := range []int{1, 8} {
				plain := explore.Run(cfg, explore.Options{
					MaxEvents: bound, Workers: workers,
				})
				audited := explore.Run(cfg, explore.Options{
					MaxEvents: bound, Workers: workers, CheckIncremental: true,
				})
				if audited.ClosureMismatches != 0 {
					t.Fatalf("workers=%d: %d closure mismatches", workers, audited.ClosureMismatches)
				}
				if plain.Explored != audited.Explored ||
					plain.Terminated != audited.Terminated ||
					plain.Depth != audited.Depth ||
					plain.Truncated != audited.Truncated {
					t.Fatalf("workers=%d: audit changed the exploration: %+v != %+v",
						workers, plain, audited)
				}
			}
		})
	}
}
