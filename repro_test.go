package repro

// End-to-end integration tests: every shipped litmus file parses, runs
// and meets its expectations; the Peterson file round-trips through
// the parser into the verifier; and the whole pipeline (text → AST →
// interpreted semantics → explorer → axioms) composes.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/axiomatic"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/litmus"
	"repro/internal/model"
	"repro/internal/parser"
	"repro/internal/proof"
	"repro/internal/races"
)

func parseFile(t *testing.T, name string) *parser.File {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	f, err := parser.Parse(name, string(src))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestTestdataLitmusFiles(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".lit") || ent.Name() == "peterson.lit" {
			continue
		}
		name := ent.Name()
		t.Run(name, func(t *testing.T) {
			f := parseFile(t, name)
			tc, err := f.Test()
			if err != nil {
				t.Fatal(err)
			}
			if len(tc.Allowed)+len(tc.Forbidden) == 0 {
				t.Fatalf("%s has no expectations", name)
			}
			rep := tc.Run(explore.Options{MaxEvents: 16})
			if !rep.Pass() {
				t.Fatalf("%s failed: %s", name, rep.Summary())
			}
		})
		ran++
	}
	if ran < 4 {
		t.Fatalf("only %d litmus files ran", ran)
	}
}

func TestTestdataPetersonVerifies(t *testing.T) {
	f := parseFile(t, "peterson.lit")
	prog, err := f.Prog()
	if err != nil {
		t.Fatal(err)
	}
	// The parsed program matches the built-in Algorithm 1.
	builtin, vars := litmus.Peterson()
	if prog.String() != builtin.String() {
		t.Fatalf("parsed Peterson differs:\n%s\n%s", prog, builtin)
	}
	res := explore.Run(core.NewConfig(prog, vars), explore.Options{
		MaxEvents: 10,
		Property: func(c model.Config) bool {
			cc := c.(core.Config)
			return len(proof.CheckPetersonInvariants(cc)) == 0 && proof.Theorem58(cc)
		},
	})
	if res.Violation != nil {
		t.Fatal("parsed Peterson fails verification")
	}
}

func TestTestdataNAMPIsRaceFree(t *testing.T) {
	f := parseFile(t, "na-mp.lit")
	prog, err := f.Prog()
	if err != nil {
		t.Fatal(err)
	}
	free, _ := races.RaceFree(core.NewConfig(prog, f.Init), explore.Options{MaxEvents: 14})
	if !free {
		t.Fatal("na-mp.lit reported racy despite release/acquire flag")
	}
}

// The full pipeline agrees with itself: the parsed MP file's outcome
// set equals the axiomatic one.
func TestPipelineCrossCheck(t *testing.T) {
	f := parseFile(t, "mp.lit")
	prog, err := f.Prog()
	if err != nil {
		t.Fatal(err)
	}
	op := axiomatic.OperationalExecutions(prog, f.Init)
	ax := axiomatic.ValidExecutions(prog, f.Init, 40)
	if len(op) == 0 || len(op) != len(ax) {
		t.Fatalf("|op|=%d |ax|=%d", len(op), len(ax))
	}
	for sig := range op {
		if _, ok := ax[sig]; !ok {
			t.Fatalf("divergent execution:\n%s", sig)
		}
	}
}
