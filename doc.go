// Package repro is a from-scratch Go reproduction of "Verifying C11
// Programs Operationally" (Doherty, Dongol, Wehrheim, Derrick —
// PPoPP 2019): an operational semantics for the release-acquire +
// relaxed (RAR) fragment of the C11 memory model, proved sound and
// complete against the axiomatic model, plus an assertion calculus for
// invariant-based verification, applied to Peterson's mutual-exclusion
// algorithm.
//
// The library lives under internal/:
//
//	internal/bits        dense bit vectors
//	internal/relation    binary-relation algebra (closure, acyclicity, …)
//	internal/fingerprint 128-bit canonical execution fingerprints
//	internal/event       threads, variables, actions, events
//	internal/lang        the command language and uninterpreted semantics (§2)
//	internal/core        C11 states, observability, the RA event and
//	                     interpreted semantics (§3) — the paper's contribution
//	internal/axiomatic   Definition 4.2 axioms, pre-executions,
//	                     justification, Theorem 4.8 replay, Appendix C
//	internal/enumerate   bounded candidate-execution enumeration
//	                     (the Memalloy substitution of Appendix E)
//	internal/catdsl      cat-language evaluator with the paper's models
//	                     (Appendix E, executable)
//	internal/model       the pluggable memory-model interface the
//	                     explorer is generic over (+ model/backends,
//	                     the named registry behind the -model flags)
//	internal/explore     bounded explicit-state model checker: one
//	                     sharded engine over any model backend
//	internal/proof       determinate-value / variable-ordering assertions,
//	                     the Figure 4 rules, the Peterson invariants (§5)
//	internal/litmus      litmus catalog, Peterson variants, differential
//	                     fuzzing of the two semantics
//	internal/races       non-atomic accesses and data-race detection
//	                     (the §2.1 extension)
//	internal/sc          sequential consistency as a second full model
//	                     backend behind the same combination rules
//	                     (§3.3); the baseline of differential model
//	                     checking (-diff: RAR-only outcomes are exactly
//	                     the weak behaviours)
//	internal/parser      textual litmus front end
//	internal/gen         random litmus-program generator, delta-
//	                     debugging shrinker and differential-fuzzing
//	                     oracle battery (cmd/c11fuzz; docs/fuzzing.md)
//	internal/vis         dot / ASCII execution diagrams
//
// The executables under cmd/ (c11litmus, c11explore, c11equiv,
// c11verify, c11fuzz) and the programs under examples/ exercise the public
// surface; bench_test.go at this root regenerates every experiment,
// and PERF.md records the exploration hot-path numbers and how to
// reproduce them. ARCHITECTURE.md is the top-to-bottom tour: the
// layer map, the data flow between packages, and where the
// fingerprinting, incremental-closure and partial-order-reduction
// machinery sits. The .lit litmus file grammar is documented in
// docs/litmus-format.md.
//
// # Incremental derived-order maintenance
//
// A transition σ --(w,e)--> σ' appends exactly one event and at most
// three edge groups (sb into e, one rf edge, one mo splice), so
// successor states never recompute their derived orders from scratch.
// Instead (internal/core/incremental.go):
//
//   - sb, rf and mo are copy-on-write (relation.ShareGrow): a
//     successor aliases its parent's rows and copies only the rows its
//     new event touches;
//   - the closures hb = (sb ∪ sw)⁺, eco = (fr ∪ mo ∪ rf)⁺ and the
//     observability kernel eco?;hb? are inherited from the parent's
//     memoised values and extended by the new event's row and column
//     alone — every new edge is incident to the new event, so no pair
//     between old events changes;
//   - the per-thread event sets, the write set, the per-variable
//     write lists, the mo-maximal write per variable (σ.last) and the
//     canonical fingerprint (a commutative multiset hash under the
//     stable (thread, position) renaming) are all maintained eagerly
//     on each step.
//
// The from-scratch formulas survive as an audit:
// explore.Options.CheckIncremental (flag -checkincremental on
// c11explore and c11verify) recomputes every derived order at every
// explored configuration and counts disagreements — expected zero,
// asserted across the testdata litmus suite by
// incremental_equivalence_test.go.
//
// # Partial-order reduction
//
// Fingerprint deduplication merges commuting interleavings only after
// they have been generated; the explorer's independence-based
// reduction (explore.Options.POR, flag -por, default on for the
// binaries) avoids generating them. Two enabled steps of different
// threads commute when either is silent or they touch no common
// variable with a write (core.StepsCommute — non-commutation is
// exactly interference through the eco/mo structure, since every new
// derived-order edge is incident to the new event). On top of that
// oracle sit a persistent-set heuristic (expand one thread alone when
// its next step cannot conflict with any other thread's static
// may-access footprint, lang.MayAccess) and sleep sets (masks riding
// the work items that prune sibling orders already covered
// elsewhere), with steps arriving at or leaving a lang.Label treated
// as visible and never reduced over. The reduction preserves every
// terminated configuration and all label-observable behaviour while
// skipping commuting intermediate states. Its contract is auditable:
// explore.CheckPOR (flag -checkpor) runs the reduced and the full
// search and diffs property verdicts, terminated-state fingerprint
// sets and reduced ⊆ full reachability — expected zero divergences,
// asserted across the testdata litmus suite by
// por_equivalence_test.go and in CI.
package repro
