// Command c11equiv is the bounded model-comparison tool — this
// repository's stand-in for the paper's Memalloy mechanisation
// (Appendix E). It enumerates candidate executions up to the given
// size (exhaustively, then randomly at larger sizes) and checks that
// Definition 4.2's eco-based coherence and the weak canonical RAR
// consistency of Definition C.3 classify every candidate identically
// (Theorem C.5). With -diff it compares whole memory models instead:
// every litmus test of the built-in catalog runs under both the RA
// and the SC backend, the outcome sets are diffed (the difference is
// the test's weak behaviours), and any SC-only outcome — SC must
// refine RA — fails the run.
//
// Usage:
//
//	c11equiv                         # default sweep
//	c11equiv -events 4 -vars 2      # exhaustive at 4 events, 2 variables
//	c11equiv -random 100000 -size 7 # randomized at the Alloy bound
//	c11equiv -diff                  # RA vs SC differential on the catalog
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/axiomatic"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/enumerate"
	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/litmus"
	"repro/internal/sc"
)

func main() {
	var (
		events  = flag.Int("events", 3, "non-initial events for the exhaustive sweep")
		nvars   = flag.Int("vars", 1, "variables for the exhaustive sweep")
		threads = flag.Int("threads", 2, "threads for the exhaustive sweep")
		random  = flag.Int("random", 20000, "number of randomized candidates")
		size    = flag.Int("size", 7, "events for the randomized sweep (Alloy used bound 7)")
		seed    = flag.Int64("seed", 0, "random seed (0 = time-based)")
		diff    = flag.Bool("diff", false, "differential model checking: RA vs SC over the litmus catalog")
		maxEv   = flag.Int("max", 20, "maximum non-initial events per state for -diff")
	)
	var budget cli.Budget
	budget.Register(flag.CommandLine)
	var prof cli.Profile
	prof.Register(flag.CommandLine)
	flag.Usage = cli.Usage(flag.CommandLine,
		"Usage: c11equiv [flags]\n\nChecks Definition 4.2 against Definition C.3 over enumerated candidate\nexecutions (Theorem C.5), or with -diff runs the RA-vs-SC differential\nover the litmus catalog.")
	cli.Parse()
	if err := prof.Start(); err != nil {
		cli.Fatal("c11equiv", err)
	}
	defer prof.Stop()
	if err := budget.Validate(); err != nil {
		cli.Fatal("c11equiv", err)
	}
	if budget.Resume != "" || budget.Checkpoint != "" {
		cli.Fatalf("c11equiv", "checkpointing applies to a single search; use c11explore for one program")
	}
	ctx, stopSignals := cli.SignalContext(context.Background())
	defer stopSignals()
	budget.Context = ctx

	if *diff {
		runModelDiff(*maxEv, budget)
		return
	}
	var deadline time.Time
	if budget.Timeout > 0 {
		deadline = time.Now().Add(budget.Timeout)
	}
	cut := false
	pastDeadline := func() bool {
		// The enumeration loops run no engine search, so the signal
		// context is checked here, alongside the wall-clock budget.
		if ctx.Err() != nil {
			cut = true
			return true
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			cut = true
			return true
		}
		return false
	}

	vars := make([]event.Var, *nvars)
	for i := range vars {
		vars[i] = event.Var(fmt.Sprintf("v%d", i))
	}

	// Exhaustive phase.
	start := time.Now()
	consistent, total := 0, 0
	mismatches := 0
	enumerate.Candidates(enumerate.Params{
		Threads: *threads, Vars: vars, Events: *events,
	}, func(x axiomatic.Exec) bool {
		if pastDeadline() {
			return false
		}
		total++
		a, b := x.CoherentDef42(), x.WeakCanonicalConsistent()
		if a != b {
			mismatches++
			fmt.Printf("MISMATCH (def42=%v canonical=%v):\n%s\n", a, b, x)
		}
		if a {
			consistent++
		}
		return true
	})
	fmt.Printf("exhaustive: threads=%d vars=%d events=%d → %d candidates, %d consistent, %d mismatches (%.2fs)\n",
		*threads, *nvars, *events, total, consistent, mismatches, time.Since(start).Seconds())

	// Randomized phase at the Alloy bound.
	s := *seed
	if s == 0 {
		s = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(s))
	start = time.Now()
	rconsistent, rmismatch := 0, 0
	for i := 0; i < *random; i++ {
		if pastDeadline() {
			break
		}
		x := enumerate.Random(rng, enumerate.Params{
			Threads: 3, Vars: []event.Var{"x", "y"}, Events: *size,
		})
		a, b := x.CoherentDef42(), x.WeakCanonicalConsistent()
		if a != b {
			rmismatch++
			fmt.Printf("MISMATCH (def42=%v canonical=%v):\n%s\n", a, b, x)
		}
		if a {
			rconsistent++
		}
	}
	fmt.Printf("randomized: size=%d n=%d seed=%d → %d consistent, %d mismatches (%.2fs)\n",
		*size, *random, s, rconsistent, rmismatch, time.Since(start).Seconds())

	if mismatches+rmismatch > 0 {
		fmt.Println("Theorem C.5 FALSIFIED at these bounds")
		cli.Exit(cli.ExitViolation)
	}
	if cut {
		fmt.Println("Theorem C.5 holds on every candidate checked (sweep cut by -timeout or signal)")
		cli.Exit(cli.ExitBounded)
	}
	fmt.Println("Theorem C.5 holds on every candidate checked")
}

// runModelDiff runs every catalog litmus test under both backends and
// diffs the outcome sets. RA-only outcomes are the expected weak
// behaviours; an SC-only outcome breaks the refinement SC ⊆ RA and
// fails the run, as does an expectation failure under either model.
func runModelDiff(maxEv int, budget cli.Budget) {
	opts := explore.Options{MaxEvents: maxEv}
	budget.Apply(&opts)
	failures, differing, bounded := 0, 0, 0
	for _, tc := range litmus.Suite() {
		d := tc.Diff(core.Model, sc.Model, opts)
		fmt.Println(d)
		if !d.Agree() {
			differing++
		}
		if d.TruncatedA || d.TruncatedB {
			// The diff is only conclusive over complete searches; the
			// catalog is sized to finish at the default bound, so a cut
			// means the bound was lowered or a budget bit.
			fmt.Println("    truncated search: diff relative to the bound/budget (raise -max or the budget)")
			bounded++
			continue
		}
		if len(d.OnlyB) > 0 {
			fmt.Printf("    BUG: SC-only outcomes break refinement: %v\n", d.OnlyB)
			failures++
		}
		// Verdicts come from the diff's own outcome sets — no second
		// exploration per backend.
		for _, mo := range []struct {
			name     string
			outcomes map[string]bool
		}{{d.ModelA, d.OutcomesA}, {d.ModelB, d.OutcomesB}} {
			missing, forbidden := tc.CheckOutcomes(mo.name, mo.outcomes)
			if len(missing)+len(forbidden) > 0 {
				fmt.Printf("    %s expectations FAILED: missing=%v forbidden-reached=%v\n",
					mo.name, missing, forbidden)
				failures++
			}
		}
	}
	fmt.Printf("%d tests, %d with RA/SC outcome differences, %d inconclusive, %d failure(s)\n",
		len(litmus.Suite()), differing, bounded, failures)
	if failures > 0 {
		cli.Exit(cli.ExitViolation)
	}
	if bounded > 0 {
		cli.Exit(cli.ExitBounded)
	}
}
