// Command c11serve runs the verification service: an HTTP/JSON API
// over the exploration engine. Clients POST litmus programs and get
// the tri-state verdict (PROVED / VIOLATED / BOUNDED) with outcome
// sets, expectation checks and coverage statistics back; the server
// enforces admission control, per-request budget ceilings, a
// fingerprint-keyed result cache, panic isolation and graceful drain
// (see docs/service.md for the API).
//
// Usage:
//
//	c11serve -addr :8411                      # serve with defaults
//	c11serve -workers 8 -queue 128            # bigger pool
//	c11serve -spill /var/spool/c11serve       # enable drain checkpoints
//	curl -s localhost:8411/v1/verify --data-binary @prog.lit
//	curl -s localhost:8411/statz
//	curl -s localhost:8411/metrics                 # Prometheus exposition
//
// On SIGINT/SIGTERM the server stops admitting, drains in-flight
// searches under -drain, checkpoints whatever had to be cut (when
// -spill is set), and exits 0. A later c11serve over the same spill
// directory finishes those searches via {"resume": "<artifact>"}.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8411", "listen address")
		workers = flag.Int("workers", 4, "concurrent searches")
		queue   = flag.Int("queue", 64, "admission queue depth (beyond it, requests are shed)")
		cache   = flag.Int("cache", 1024, "result cache entries (negative disables)")
		maxEv   = flag.Int("max-events", 16, "ceiling for a request's per-thread event bound")
		maxSt   = flag.Int("max-states", 1<<20, "ceiling for a request's explored-state budget")
		maxTo   = flag.Duration("max-timeout", 30*time.Second, "ceiling for a request's wall-clock budget")
		maxMem  = flag.Int("max-mem-mb", 0, "process heap watermark per search in MiB (0 = off)")
		spill   = flag.String("spill", "", "directory for drain checkpoints and panic artifacts (empty = off)")
		drain   = flag.Duration("drain", 10*time.Second, "grace for in-flight searches at shutdown")
	)
	var prof cli.Profile
	prof.Register(flag.CommandLine)
	flag.Usage = cli.Usage(flag.CommandLine,
		"Usage: c11serve [flags]\n\nServes bounded weak-memory verification over HTTP/JSON.")
	cli.Parse()
	if err := prof.Start(); err != nil {
		cli.Fatal("c11serve", err)
	}
	defer prof.Stop()

	if *spill != "" {
		if err := os.MkdirAll(*spill, 0o755); err != nil {
			cli.Fatal("c11serve", err)
		}
	}
	s := serve.New(serve.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheEntries: func() int {
			if *cache == 0 {
				return -1
			}
			return *cache
		}(),
		MaxEvents:  *maxEv,
		MaxStates:  *maxSt,
		MaxTimeout: *maxTo,
		MaxMemMB:   *maxMem,
		SpillDir:   *spill,
	})

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "c11serve: listening on %s (workers=%d queue=%d spill=%q)\n",
		*addr, *workers, *queue, *spill)

	select {
	case err := <-errc:
		cli.Fatal("c11serve", err)
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "c11serve: signal received, draining (grace %s)\n", *drain)
	clean := s.Drain(*drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "c11serve: shutdown: %v\n", err)
	}
	if clean {
		fmt.Fprintln(os.Stderr, "c11serve: drained clean")
	} else {
		fmt.Fprintln(os.Stderr, "c11serve: drain grace expired; cut searches checkpointed")
	}
}
