// Command c11verify machine-checks the paper's Peterson verification
// (§5.2): it explores every configuration of the RA Peterson lock up
// to the event bound, checks the invariants (4)–(10) of Lemma D.1 at
// each, and confirms mutual exclusion (Theorem 5.8) both directly and
// via the paper's derivation. With -variant it runs the weakened
// negative controls, reporting the invariant that breaks and a
// violation witness if mutual exclusion fails. With -model sc the
// same program runs under the sequentially consistent backend, where
// the invariants of the RA proof have no C11 state to live in and
// mutual exclusion is checked directly (a sanity baseline: Peterson
// is SC-correct by construction).
//
// Usage:
//
//	c11verify                       # verify the RA Peterson lock
//	c11verify -max 14               # deeper bound
//	c11verify -model sc             # mutual exclusion under SC
//	c11verify -variant weak-turn    # broken variant: plain turn writes
//	c11verify -variant relaxed-guard
//	c11verify -variant relaxed-reset
package main

import (
	"context"
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/model"
	"repro/internal/model/backends"
	"repro/internal/proof"
)

func main() {
	var (
		maxEv     = flag.Int("max", 12, "maximum non-initial events per state")
		variant   = flag.String("variant", "ra", "ra | weak-turn | relaxed-guard | relaxed-reset")
		modelName = flag.String("model", "rar",
			"memory model: "+strings.Join(backends.Names(), " | "))
		workers = flag.Int("workers", 0, "explorer parallelism (0 = GOMAXPROCS)")
		por     = flag.Bool("por", true,
			"partial-order reduction: explore commuting interleavings once (the invariant sweep then covers the reduced state space; run -por=false for the full one)")
		checkInc = flag.Bool("checkincremental", false,
			"audit the model's incrementally maintained structures against from-scratch recomputation at every configuration")
		checkPOR = flag.Bool("checkpor", false,
			"run the reduced and the full search and diff reachable-state fingerprints and invariant verdicts (zero divergences expected)")
	)
	var budget cli.Budget
	budget.Register(flag.CommandLine)
	var prof cli.Profile
	prof.Register(flag.CommandLine)
	var tel cli.Telemetry
	tel.Register(flag.CommandLine)
	flag.Usage = cli.Usage(flag.CommandLine,
		"Usage: c11verify [flags]\n\nMachine-checks the paper's Peterson verification (invariants (4)-(10), Theorem 5.8).")
	cli.Parse()
	if err := prof.Start(); err != nil {
		cli.Fatal("c11verify", err)
	}
	defer prof.Stop()
	if err := budget.Validate(); err != nil {
		cli.Fatal("c11verify", err)
	}
	if err := tel.Start(); err != nil {
		cli.Fatal("c11verify", err)
	}
	defer tel.Stop()
	ctx, stopSignals := cli.SignalContext(context.Background())
	defer stopSignals()
	budget.Context = ctx

	var (
		prog lang.Prog
		vars map[event.Var]event.Val
	)
	switch *variant {
	case "ra":
		prog, vars = litmus.Peterson()
	case "weak-turn":
		prog, vars = litmus.PetersonWeakTurn()
	case "relaxed-guard":
		prog, vars = litmus.PetersonRelaxedGuard()
	case "relaxed-reset":
		prog, vars = litmus.PetersonRelaxedReset()
	default:
		cli.Fatalf("c11verify", "unknown variant %q", *variant)
	}

	m, err := backends.Get(*modelName)
	if err != nil {
		cli.Fatal("c11verify", err)
	}

	start := time.Now()
	rar := m.Name() == "rar"
	// The property runs concurrently under a parallel explorer, so it
	// only reports the verdict; diagnostics are recomputed from the
	// violating configuration below. Under the RA backend it checks
	// the paper's invariants and Theorem 5.8 both directly and via the
	// derivation; under SC only mutual exclusion is meaningful.
	property := litmus.MutualExclusion
	if rar {
		property = func(c model.Config) bool {
			cc := c.(core.Config)
			return len(proof.CheckPetersonInvariants(cc)) == 0 &&
				proof.Theorem58(cc) && proof.DeriveTheorem58(cc)
		}
	}
	opts := explore.Options{
		MaxEvents:        *maxEv,
		Workers:          *workers,
		POR:              *por,
		CheckIncremental: *checkInc,
		Property:         property,
	}
	tel.Apply(&opts)
	if *checkPOR {
		budget.Apply(&opts)
		audit := explore.CheckPOR(m.New(prog, vars), opts)
		fmt.Printf("model=%s %s\n", m.Name(), audit)
		if audit.Divergences() > 0 {
			cli.Exit(cli.ExitViolation)
		}
		return
	}
	res, err := budget.Execute(m, m.New(prog, vars), opts)
	if err != nil {
		cli.Fatal("c11verify", err)
	}

	fmt.Printf("model=%s variant=%s bound=%d explored=%d depth=%d truncated=%v por=%v (%.2fs)\n",
		m.Name(), *variant, *maxEv, res.Explored, res.Depth, res.Truncated, *por, time.Since(start).Seconds())
	fmt.Println(cli.Describe(res))
	if *checkInc {
		fmt.Printf("closure mismatches: %d\n", res.ClosureMismatches)
		if res.ClosureMismatches > 0 {
			cli.Exit(cli.ExitViolation)
		}
	}

	if res.Violation == nil {
		if res.Verdict == explore.VerdictBounded {
			// The budget (or a panic) cut the sweep: no violation was
			// seen, but the bound was not exhausted — inconclusive.
			fmt.Println("Theorem 5.8 (mutual exclusion): INCONCLUSIVE — the search was cut before the bound was exhausted")
			cli.Exit(cli.ExitBounded)
		}
		if rar {
			if *por {
				fmt.Println("invariants (4)-(10) hold in every explored configuration (POR-reduced state space; -por=false sweeps all of it)")
			} else {
				fmt.Println("invariants (4)-(10) hold in every reachable configuration")
			}
		}
		fmt.Println("Theorem 5.8 (mutual exclusion): VERIFIED at this bound")
		return
	}

	if rar {
		badConfig := res.Violation.(core.Config)
		if badInvariants := proof.CheckPetersonInvariants(badConfig); len(badInvariants) > 0 {
			fmt.Printf("invariants violated: %v\n", badInvariants)
			for _, inv := range proof.PetersonInvariants() {
				for _, id := range badInvariants {
					if inv.ID == id {
						fmt.Printf("  (%d) %s\n", inv.ID, inv.Name)
					}
				}
			}
		}
	}
	// Mutual exclusion itself: search for a concrete double-CS state.
	trace, found := explore.FindTrace(m.New(prog, vars), explore.Options{
		MaxEvents: *maxEv,
	}, func(c model.Config) bool { return !litmus.MutualExclusion(c) })
	if found {
		fmt.Printf("MUTUAL EXCLUSION VIOLATED — witness of %d steps:\n", len(trace.Configs)-1)
		fmt.Print(trace.Describe())
		if last, ok := trace.Configs[len(trace.Configs)-1].(core.Config); ok {
			fmt.Println("final state:")
			fmt.Print(last.S)
		}
		cli.Exit(cli.ExitViolation)
	}
	fmt.Println("mutual exclusion still holds at this bound (only auxiliary invariants broke)")
	cli.Exit(cli.ExitViolation)
}
