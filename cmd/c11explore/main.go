// Command c11explore explores the bounded state space of a program
// under a pluggable memory model — the RA operational semantics
// (-model rar, the default) or sequential consistency (-model sc) —
// and reports reachable terminal executions, optionally rendering one
// execution as Graphviz dot or an ASCII diagram. With -diff it runs
// both models on the same program and reports the outcome-set
// difference: exactly the weak-memory behaviours. With -races it
// additionally searches for reachable non-atomic data races.
//
// Usage:
//
//	c11explore -f prog.lit            # explore, print statistics
//	c11explore -f prog.lit -model sc  # same program under SC
//	c11explore -f prog.lit -diff      # RA vs SC outcome difference
//	c11explore -f prog.lit -races     # + data-race detection
//	c11explore -f prog.lit -dot       # dot graph of one terminal state
//	c11explore -f prog.lit -ascii     # ASCII diagram instead
//	c11explore -example 3.2           # rebuild the paper's Example 3.2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/axiomatic"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/model"
	"repro/internal/model/backends"
	"repro/internal/parser"
	"repro/internal/races"
	"repro/internal/vis"
)

func main() {
	var (
		file      = flag.String("f", "", "program file to explore")
		example   = flag.String("example", "", "rebuild a paper example (3.2)")
		modelName = flag.String("model", "rar",
			"memory model: "+strings.Join(backends.Names(), " | "))
		diff    = flag.Bool("diff", false, "run both models and report outcome-set differences")
		maxEv   = flag.Int("max", 20, "maximum non-initial events per state (rar model)")
		dot     = flag.Bool("dot", false, "print a dot graph of one terminal execution (rar model)")
		ascii   = flag.Bool("ascii", false, "print an ASCII diagram of one terminal execution (rar model)")
		racesFl = flag.Bool("races", false, "search for reachable non-atomic data races (rar model)")
		workers = flag.Int("workers", 0, "explorer parallelism (0 = GOMAXPROCS)")
		por     = flag.Bool("por", true,
			"partial-order reduction: explore commuting interleavings once (sleep sets + persistent-set heuristic)")
		checkFP = flag.Bool("checkcollisions", false,
			"deduplicate by exact canonical signatures (slow path) and audit the 128-bit fingerprints against them")
		checkInc = flag.Bool("checkincremental", false,
			"recompute the model's incrementally maintained structures from scratch at each configuration and count disagreements")
		checkPOR = flag.Bool("checkpor", false,
			"run the reduced and the full search and diff reachable-state fingerprints and property verdicts (zero divergences expected)")
	)
	var budget cli.Budget
	budget.Register(flag.CommandLine)
	var prof cli.Profile
	prof.Register(flag.CommandLine)
	var tel cli.Telemetry
	tel.Register(flag.CommandLine)
	flag.Usage = cli.Usage(flag.CommandLine,
		"Usage: c11explore [flags]\n\nExplores the bounded state space of a program under a pluggable memory model.")
	cli.Parse()
	if err := prof.Start(); err != nil {
		cli.Fatal("c11explore", err)
	}
	defer prof.Stop()
	if err := budget.Validate(); err != nil {
		cli.Fatal("c11explore", err)
	}
	if err := tel.Start(); err != nil {
		cli.Fatal("c11explore", err)
	}
	defer tel.Stop()
	ctx, stopSignals := cli.SignalContext(context.Background())
	defer stopSignals()
	budget.Context = ctx

	if *example != "" {
		runExample(*example, *dot)
		return
	}

	m, err := backends.Get(*modelName)
	if err != nil {
		cli.Fatal("c11explore", err)
	}
	// Flag validation up front, before any exploration is paid for.
	if *racesFl && *diff {
		cli.Fatalf("c11explore", "-races and -diff are separate modes; run them one at a time")
	}
	if *racesFl && m.Name() != "rar" {
		cli.Fatalf("c11explore", "-races needs the rar model (data races are defined over the C11 happens-before order)")
	}

	opts := explore.Options{
		MaxEvents:        *maxEv,
		Workers:          *workers,
		POR:              *por,
		CheckCollisions:  *checkFP,
		CheckIncremental: *checkInc,
	}
	tel.Apply(&opts)

	var (
		f    *parser.File
		prog lang.Prog
		cfg  model.Config
	)
	if budget.Resume == "" {
		// A fresh search needs a program; a resumed one restores its
		// state (and bounds) from the checkpoint.
		if *file == "" {
			cli.Fatalf("c11explore", "need -f FILE, -example N or -resume CHECKPOINT")
		}
		src, err := os.ReadFile(*file)
		if err != nil {
			cli.Fatal("c11explore", fmt.Errorf("read program: %w", err))
		}
		if f, err = parser.Parse(*file, string(src)); err != nil {
			cli.Fatal("c11explore", err)
		}
		if prog, err = f.Prog(); err != nil {
			cli.Fatal("c11explore", err)
		}
		cfg = m.New(prog, f.Init)
	} else if *diff || *racesFl || *checkPOR {
		cli.Fatalf("c11explore", "-resume continues a plain exploration; it cannot drive -diff, -races or -checkpor")
	}

	if *diff {
		budget.Apply(&opts)
		runDiff(f, prog, opts)
		return
	}
	if *checkPOR {
		budget.Apply(&opts)
		audit := explore.CheckPOR(cfg, opts)
		fmt.Printf("model=%s %s\n", m.Name(), audit)
		if audit.Divergences() > 0 {
			cli.Exit(cli.ExitViolation)
		}
		return
	}
	var mu sync.Mutex
	var sample model.Config
	opts.Property = func(c model.Config) bool {
		if c.Terminated() {
			mu.Lock()
			if sample == nil {
				sample = c
			}
			mu.Unlock()
		}
		return true
	}
	res, err := budget.Execute(m, cfg, opts)
	if err != nil {
		cli.Fatal("c11explore", err)
	}
	fmt.Printf("model=%s explored %d configurations, %d terminated, depth %d, truncated=%v, por=%v\n",
		m.Name(), res.Explored, res.Terminated, res.Depth, res.Truncated, *por)
	fmt.Println(cli.Describe(res))
	if *checkFP {
		fmt.Printf("fingerprint collisions: %d\n", res.FingerprintCollisions)
	}
	if *checkInc {
		fmt.Printf("closure mismatches: %d\n", res.ClosureMismatches)
		if res.ClosureMismatches > 0 {
			cli.Exit(cli.ExitViolation)
		}
	}

	if *racesFl {
		ro := explore.Options{MaxEvents: *maxEv, Timeout: budget.Timeout}
		reportRaces(core.NewConfig(prog, f.Init), ro)
	}

	if sample != nil && (*dot || *ascii) {
		rc, ok := sample.(core.Config)
		if !ok {
			cli.Fatalf("c11explore", "-dot/-ascii render C11 event graphs; use -model rar")
		}
		x := axiomatic.FromState(rc.S)
		if *dot {
			fmt.Print(vis.Dot(x, vis.Default()))
		}
		if *ascii {
			fmt.Print(vis.ASCII(x))
		}
	}
	if code := cli.ExitCode(res); code != cli.ExitProved {
		cli.Exit(code)
	}
}

// runDiff compares the RA and SC outcome sets of the program: the
// difference is the program's weak-memory behaviours. The observation
// set comes from the file's observe clause, falling back to every
// initialised variable.
func runDiff(f *parser.File, prog lang.Prog, opts explore.Options) {
	observe := f.Observe
	if len(observe) == 0 {
		for x := range f.Init {
			observe = append(observe, x)
		}
		sort.Slice(observe, func(i, j int) bool { return observe[i] < observe[j] })
	}
	tc := &litmus.Test{Name: f.Name, Prog: prog, Init: f.Init, Observe: observe}
	ra, _ := backends.Get("rar")
	sc, _ := backends.Get("sc")
	d := tc.Diff(ra, sc, opts)
	fmt.Println(d)
	if len(d.OnlyA) > 0 {
		fmt.Println("weak behaviours (reachable under rar, forbidden under sc):")
		for _, k := range d.OnlyA {
			fmt.Printf("    %s\n", k)
		}
	}
	if d.TruncatedA || d.TruncatedB {
		// A cut search leaves its outcome set a prefix: outcomes on
		// either side of the diff may just not have been reached yet.
		fmt.Println("note: a search was truncated; the diff is relative to the bound (raise -max)")
	}
	if len(d.OnlyB) > 0 {
		if d.TruncatedA {
			// The rar search was cut, so an SC-only outcome is an
			// artefact of the bound, not a refinement violation.
			fmt.Println("outcomes reachable under sc but missing from the truncated rar search:")
			for _, k := range d.OnlyB {
				fmt.Printf("    %s\n", k)
			}
			return
		}
		// Both searches complete and SC refines RA: a backend bug.
		fmt.Println("BUG: outcomes reachable under sc but not rar:")
		for _, k := range d.OnlyB {
			fmt.Printf("    %s\n", k)
		}
		cli.Exit(cli.ExitViolation)
	}
}

// reportRaces prints a race verdict, with a shortest witness when a
// race is reachable.
func reportRaces(cfg core.Config, opts explore.Options) {
	trace, rs, found := races.FindRace(cfg, opts)
	if !found {
		fmt.Println("data races: none reachable within the bound")
		return
	}
	fmt.Printf("DATA RACE — %d racy pair(s) at a state %d steps from the root:\n", len(rs), len(trace.Configs)-1)
	for _, r := range rs {
		fmt.Printf("    %s\n", r)
	}
	fmt.Print(trace.Describe())
	cli.Exit(cli.ExitViolation)
}

// runExample rebuilds Example 3.2 through the event semantics and
// renders it.
func runExample(name string, asDot bool) {
	if name != "3.2" {
		cli.Fatalf("c11explore", "unknown example %q (have: 3.2)", name)
	}
	s := core.Init(map[event.Var]event.Val{"x": 0, "y": 0, "z": 0})
	ix, _ := s.InitialFor("x")
	iy, _ := s.InitialFor("y")
	iz, _ := s.InitialFor("z")
	step := func(f func() (*core.State, event.Event, error)) event.Tag {
		ns, e, err := f()
		if err != nil {
			fatal(err)
		}
		s = ns
		return e.Tag
	}
	wrR2 := step(func() (*core.State, event.Event, error) { return s.StepWrite(2, true, "x", 2, ix) })
	step(func() (*core.State, event.Event, error) { return s.StepWrite(2, false, "y", 1, iy) })
	step(func() (*core.State, event.Event, error) { return s.StepRead(3, true, "x", wrR2) })
	wz := step(func() (*core.State, event.Event, error) { return s.StepWrite(3, false, "z", 3, iz) })
	step(func() (*core.State, event.Event, error) { return s.StepRMW(1, "x", 4, wrR2) })
	step(func() (*core.State, event.Event, error) { return s.StepRMW(4, "y", 5, iy) })
	step(func() (*core.State, event.Event, error) { return s.StepRead(4, false, "z", wz) })

	x := axiomatic.FromState(s)
	if asDot {
		o := vis.Default()
		o.FR = true
		o.Title = "Example 3.2"
		fmt.Print(vis.Dot(x, o))
	} else {
		fmt.Print(vis.ASCII(x))
		fmt.Println()
		for t := event.Thread(1); t <= 4; t++ {
			fmt.Printf("EW(%d): ", t)
			first := true
			s.EncounteredWrites(t).ForEach(func(i int) {
				if !first {
					fmt.Print(", ")
				}
				first = false
				fmt.Print(s.Event(event.Tag(i)).Act)
			})
			fmt.Println()
		}
		for t := event.Thread(1); t <= 4; t++ {
			fmt.Printf("OW(%d): ", t)
			first := true
			s.ObservableWrites(t).ForEach(func(i int) {
				if !first {
					fmt.Print(", ")
				}
				first = false
				fmt.Print(s.Event(event.Tag(i)).Act)
			})
			fmt.Println()
		}
		fmt.Print("CW: ")
		first := true
		s.CoveredWrites().ForEach(func(i int) {
			if !first {
				fmt.Print(", ")
			}
			first = false
			fmt.Print(s.Event(event.Tag(i)).Act)
		})
		fmt.Println()
	}
}

func fatal(err error) {
	cli.Fatal("c11explore", err)
}
