// Command c11explore explores the bounded state space of a program
// under the RA operational semantics and reports reachable terminal
// executions, optionally rendering one execution as Graphviz dot or
// an ASCII diagram.
//
// Usage:
//
//	c11explore -f prog.lit            # explore, print statistics
//	c11explore -f prog.lit -dot       # dot graph of one terminal state
//	c11explore -f prog.lit -ascii     # ASCII diagram instead
//	c11explore -example 3.2           # rebuild the paper's Example 3.2
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"repro/internal/axiomatic"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/parser"
	"repro/internal/vis"
)

func main() {
	var (
		file    = flag.String("f", "", "program file to explore")
		example = flag.String("example", "", "rebuild a paper example (3.2)")
		maxEv   = flag.Int("max", 20, "maximum non-initial events per state")
		dot     = flag.Bool("dot", false, "print a dot graph of one terminal execution")
		ascii   = flag.Bool("ascii", false, "print an ASCII diagram of one terminal execution")
		workers = flag.Int("workers", 0, "explorer parallelism (0 = GOMAXPROCS)")
		por     = flag.Bool("por", true,
			"partial-order reduction: explore commuting interleavings once (sleep sets + persistent-set heuristic)")
		checkFP = flag.Bool("checkcollisions", false,
			"deduplicate by exact canonical signatures (slow path) and audit the 128-bit fingerprints against them")
		checkInc = flag.Bool("checkincremental", false,
			"recompute every derived order (hb/eco/comb, observability sets, indexes) from scratch at each configuration and count disagreements with the incremental engine")
		checkPOR = flag.Bool("checkpor", false,
			"run the reduced and the full search and diff reachable-state fingerprints and property verdicts (zero divergences expected)")
	)
	flag.Parse()

	if *example != "" {
		runExample(*example, *dot)
		return
	}
	if *file == "" {
		fmt.Fprintln(os.Stderr, "c11explore: need -f FILE or -example N")
		os.Exit(2)
	}
	src, err := os.ReadFile(*file)
	if err != nil {
		fatal(err)
	}
	f, err := parser.Parse(*file, string(src))
	if err != nil {
		fatal(err)
	}
	prog, err := f.Prog()
	if err != nil {
		fatal(err)
	}

	cfg := core.NewConfig(prog, f.Init)
	opts := explore.Options{
		MaxEvents:        *maxEv,
		Workers:          *workers,
		POR:              *por,
		CheckCollisions:  *checkFP,
		CheckIncremental: *checkInc,
	}
	if *checkPOR {
		audit := explore.CheckPOR(cfg, opts)
		fmt.Println(audit)
		if audit.Divergences() > 0 {
			os.Exit(1)
		}
		return
	}
	var mu sync.Mutex
	var sample *core.State
	opts.Property = func(c core.Config) bool {
		if c.Terminated() {
			mu.Lock()
			if sample == nil {
				sample = c.S
			}
			mu.Unlock()
		}
		return true
	}
	res := explore.Run(cfg, opts)
	fmt.Printf("explored %d configurations, %d terminated, depth %d, truncated=%v, por=%v\n",
		res.Explored, res.Terminated, res.Depth, res.Truncated, *por)
	if *checkFP {
		fmt.Printf("fingerprint collisions: %d\n", res.FingerprintCollisions)
	}
	if *checkInc {
		fmt.Printf("closure mismatches: %d\n", res.ClosureMismatches)
		if res.ClosureMismatches > 0 {
			os.Exit(1)
		}
	}

	if sample != nil && (*dot || *ascii) {
		x := axiomatic.FromState(sample)
		if *dot {
			fmt.Print(vis.Dot(x, vis.Default()))
		}
		if *ascii {
			fmt.Print(vis.ASCII(x))
		}
	}
}

// runExample rebuilds Example 3.2 through the event semantics and
// renders it.
func runExample(name string, asDot bool) {
	if name != "3.2" {
		fmt.Fprintf(os.Stderr, "c11explore: unknown example %q (have: 3.2)\n", name)
		os.Exit(2)
	}
	s := core.Init(map[event.Var]event.Val{"x": 0, "y": 0, "z": 0})
	ix, _ := s.InitialFor("x")
	iy, _ := s.InitialFor("y")
	iz, _ := s.InitialFor("z")
	step := func(f func() (*core.State, event.Event, error)) event.Tag {
		ns, e, err := f()
		if err != nil {
			fatal(err)
		}
		s = ns
		return e.Tag
	}
	wrR2 := step(func() (*core.State, event.Event, error) { return s.StepWrite(2, true, "x", 2, ix) })
	step(func() (*core.State, event.Event, error) { return s.StepWrite(2, false, "y", 1, iy) })
	step(func() (*core.State, event.Event, error) { return s.StepRead(3, true, "x", wrR2) })
	wz := step(func() (*core.State, event.Event, error) { return s.StepWrite(3, false, "z", 3, iz) })
	step(func() (*core.State, event.Event, error) { return s.StepRMW(1, "x", 4, wrR2) })
	step(func() (*core.State, event.Event, error) { return s.StepRMW(4, "y", 5, iy) })
	step(func() (*core.State, event.Event, error) { return s.StepRead(4, false, "z", wz) })

	x := axiomatic.FromState(s)
	if asDot {
		o := vis.Default()
		o.FR = true
		o.Title = "Example 3.2"
		fmt.Print(vis.Dot(x, o))
	} else {
		fmt.Print(vis.ASCII(x))
		fmt.Println()
		for t := event.Thread(1); t <= 4; t++ {
			fmt.Printf("EW(%d): ", t)
			first := true
			s.EncounteredWrites(t).ForEach(func(i int) {
				if !first {
					fmt.Print(", ")
				}
				first = false
				fmt.Print(s.Event(event.Tag(i)).Act)
			})
			fmt.Println()
		}
		for t := event.Thread(1); t <= 4; t++ {
			fmt.Printf("OW(%d): ", t)
			first := true
			s.ObservableWrites(t).ForEach(func(i int) {
				if !first {
					fmt.Print(", ")
				}
				first = false
				fmt.Print(s.Event(event.Tag(i)).Act)
			})
			fmt.Println()
		}
		fmt.Print("CW: ")
		first := true
		s.CoveredWrites().ForEach(func(i int) {
			if !first {
				fmt.Print(", ")
			}
			first = false
			fmt.Print(s.Event(event.Tag(i)).Act)
		})
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "c11explore:", err)
	os.Exit(1)
}
