// Command c11litmus runs weak-memory litmus tests under a pluggable
// memory model: the built-in catalog by default, or a litmus file
// given with -f. The catalog carries per-model expected verdicts
// (-model rar checks the RA expectations, -model sc the SC ones,
// -model all both). With -x it additionally cross-checks the RA
// operational outcome set against the axiomatic generate-and-test
// baseline (loop-free tests only).
//
// Usage:
//
//	c11litmus                 # run the built-in suite under RA
//	c11litmus -model sc       # same suite under SC expectations
//	c11litmus -model all      # both backends
//	c11litmus -run MP         # tests whose name contains "MP"
//	c11litmus -f test.lit     # run one litmus file
//	c11litmus -x              # cross-check against the axiomatic model
//	c11litmus -max 24 -v      # deeper bound, verbose outcomes
//
// The litmus file grammar is documented in docs/litmus-format.md,
// with a worked example per file under testdata/.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/axiomatic"
	"repro/internal/cli"
	"repro/internal/ds"
	"repro/internal/explore"
	"repro/internal/litmus"
	"repro/internal/model"
	"repro/internal/model/backends"
	"repro/internal/parser"
)

func main() {
	var (
		file      = flag.String("f", "", "run a single litmus file instead of the built-in suite")
		runPat    = flag.String("run", "", "only run tests whose name contains this substring")
		maxEv     = flag.Int("max", 20, "maximum non-initial events per state")
		modelName = flag.String("model", "rar",
			"memory model: "+strings.Join(backends.Names(), " | ")+" | all")
		cross   = flag.Bool("x", false, "cross-check RA outcomes against the axiomatic semantics")
		verbose = flag.Bool("v", false, "print the full outcome set per test")
		workers = flag.Int("workers", 0, "explorer parallelism (0 = GOMAXPROCS)")
	)
	var budget cli.Budget
	budget.Register(flag.CommandLine)
	var prof cli.Profile
	prof.Register(flag.CommandLine)
	var tel cli.Telemetry
	tel.Register(flag.CommandLine)
	flag.Usage = cli.Usage(flag.CommandLine,
		"Usage: c11litmus [flags]\n\nRuns weak-memory litmus tests under a pluggable memory model.\nThe .lit file grammar accepted by -f is documented in docs/litmus-format.md\n(one worked example per file under testdata/).")
	cli.Parse()
	if err := prof.Start(); err != nil {
		cli.Fatal("c11litmus", err)
	}
	defer prof.Stop()
	if err := budget.Validate(); err != nil {
		cli.Fatal("c11litmus", err)
	}
	if err := tel.Start(); err != nil {
		cli.Fatal("c11litmus", err)
	}
	defer tel.Stop()
	if budget.Resume != "" || budget.Checkpoint != "" {
		cli.Fatalf("c11litmus", "checkpointing applies to a single search; use c11explore -f for one program")
	}
	ctx, stopSignals := cli.SignalContext(context.Background())
	defer stopSignals()
	budget.Context = ctx

	var models []model.Model
	if *modelName == "all" {
		models = backends.All()
	} else {
		m, err := backends.Get(*modelName)
		if err != nil {
			fatal(err)
		}
		models = []model.Model{m}
	}

	var tests []*litmus.Test
	// The data-structure tier rides along with the catalog: each
	// scenario carries linearizability-style outcome properties on top
	// of its allow/forbid expectations, checked after the run.
	scenarios := map[*litmus.Test]ds.Scenario{}
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		f, err := parser.Parse(*file, string(src))
		if err != nil {
			fatal(err)
		}
		tc, err := f.Test()
		if err != nil {
			fatal(err)
		}
		tests = []*litmus.Test{tc}
	} else {
		tests = litmus.Suite()
		for _, s := range ds.Suite() {
			tests = append(tests, s.Test)
			scenarios[s.Test] = s
		}
	}

	failures, bounded := 0, 0
	for _, tc := range tests {
		if *runPat != "" && !strings.Contains(tc.Name, *runPat) {
			continue
		}
		if ctx.Err() != nil {
			// Interrupted: remaining tests would all come back cut.
			bounded++
			fmt.Println("interrupted: remaining tests skipped")
			break
		}
		s, isDS := scenarios[tc]
		for _, m := range models {
			eopts := explore.Options{MaxEvents: *maxEv, Workers: *workers}
			if isDS && tc.MaxEvents > 0 {
				// A scenario's expectations are exact *at* its pinned
				// bound (the .lit maxevents clause); -max does not apply.
				eopts.MaxEvents = tc.MaxEvents
			}
			budget.Apply(&eopts)
			// One registry across the whole suite: the progress line
			// and -metrics summary accumulate over all tests.
			tel.Apply(&eopts)
			rep := tc.RunModel(m, eopts)
			if rep.Truncated && !isDS {
				// DS scenarios with retry/spin loops truncate at their
				// pinned bound by design — the bound is part of the
				// scenario, so the verdict is not "relative" to it.
				bounded++
			}
			fmt.Println(rep.Summary())
			if *verbose {
				keys := make([]string, 0, len(rep.Outcomes))
				for k := range rep.Outcomes {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Printf("    %s\n", k)
				}
			}
			if ctx.Err() != nil {
				// The search was interrupted mid-flight: its partial
				// outcome set would read as missing expectations, but
				// the run is inconclusive, not failing.
				continue
			}
			if !rep.Pass() {
				failures++
				for _, mo := range rep.MissingAllowed {
					fmt.Printf("    missing allowed outcome: %s\n", mo)
				}
				for _, r := range rep.ReachedForbidden {
					fmt.Printf("    reached forbidden outcome: %s\n", r)
				}
			}
			if isDS {
				if v := s.CheckProps(rep.Outcomes); len(v) != 0 {
					failures++
					for _, p := range v {
						fmt.Printf("    property violated: %s\n", p)
					}
				}
			}
		}
		if *cross && !isDS {
			// The axiomatic baseline enumerates loop-free programs; the
			// DS scenarios all carry retry or spin loops.
			ax := axiomatic.ValidExecutions(tc.Prog, tc.Init, 2**maxEv)
			op := axiomatic.OperationalExecutions(tc.Prog, tc.Init)
			status := "AGREE"
			if len(ax) != len(op) {
				status, failures = "DISAGREE", failures+1
			} else {
				for sig := range op {
					if _, ok := ax[sig]; !ok {
						status, failures = "DISAGREE", failures+1
						break
					}
				}
			}
			fmt.Printf("    cross-check: operational=%d axiomatic=%d %s\n",
				len(op), len(ax), status)
		}
	}
	if failures > 0 {
		fmt.Printf("%d failure(s)\n", failures)
		cli.Exit(cli.ExitViolation)
	}
	if bounded > 0 {
		// No expectation failed, but some search was cut by a bound or
		// budget: the pass is relative to what was explored.
		fmt.Printf("%d truncated search(es): verdicts are relative to the bound/budget\n", bounded)
		cli.Exit(cli.ExitBounded)
	}
}

func fatal(err error) {
	cli.Fatal("c11litmus", err)
}
