// Command c11fuzz differentially fuzzes the memory-model backends
// with randomly generated litmus programs. Each program is drawn
// deterministically from a seed (program i of a run uses seed+i, so
// any single program can be regenerated with -seed <s> -n 1),
// round-trips through the parser's grammar printer, and runs through
// the full oracle battery of internal/gen: SC ⊆ RA outcome
// refinement, the partial-order-reduction audit, the incremental-
// closure audit, the fingerprint-collision audit, and serial-vs-
// parallel engine equivalence — all in-process. A failing program is
// minimised by the greedy shrinker while it keeps failing the same
// oracle, and written to the corpus directory with its seed and the
// generator parameters, so the finding is reproducible from the
// header alone.
//
// Usage:
//
//	c11fuzz -seed 1 -n 500              # fuzz 500 programs
//	c11fuzz -seed 39 -n 1 -keep out/    # regenerate one program
//	c11fuzz -replay testdata/corpus     # re-judge checked-in files
//
// Exit status: 0 when every program passed every oracle, 1 on any
// oracle failure, 2 when -budget cut the run before all -n programs
// were judged, 3 on internal errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cli"
	"repro/internal/gen"
)

func main() {
	var (
		seed   = flag.Int64("seed", 1, "base seed; program i uses seed+i")
		n      = flag.Int("n", 100, "number of programs to generate")
		corpus = flag.String("corpus", "fuzz-corpus", "directory for shrunk reproducers")
		replay = flag.String("replay", "", "re-judge every .lit file in this directory instead of generating")
		keep   = flag.String("keep", "", "also write every generated program (failing or not) into this directory")
		budget = flag.Duration("budget", 0, "wall-clock budget: an engine deadline for every oracle search, and no new programs start past it (0 = no limit)")
		v      = flag.Bool("v", false, "per-program progress lines")

		threads   = flag.Int("threads", 0, "max threads per program (default 3)")
		vars      = flag.Int("vars", 0, "shared variables (default 2)")
		stmts     = flag.Int("stmts", 0, "max top-level statements per thread (default 4)")
		values    = flag.Int("values", 0, "value domain 1..values (default 2)")
		evbudget  = flag.Int("evbudget", 0, "per-thread worst-case memory-event budget (default 6)")
		depth     = flag.Int("depth", 0, "max if/while nesting (default 2)")
		loopiters = flag.Int("loopiters", 0, "bounded-loop iterations (default 2)")
		arrlen    = flag.Int("arrlen", 0, "shared-array cell count (default 2)")
		pswap     = flag.Int("pswap", 0, "RMW density percent (default 15)")
		pif       = flag.Int("pif", 0, "branch density percent (default 20)")
		pwhile    = flag.Int("pwhile", 0, "loop density percent (default 10)")
		prel      = flag.Int("prel", 0, "release-write density percent (default 30)")
		pacq      = flag.Int("pacq", 0, "acquire-load density percent (default 30)")
		pna       = flag.Int("pna", 0, "non-atomic density percent (default 10)")
		pneg      = flag.Int("pneg", 0, "negative-value density percent (default 5)")
		pexpr     = flag.Int("pexpr", 0, "compound-expression density percent (default 15)")
		pcas      = flag.Int("pcas", 0, "CAS statement/branch/retry-loop density percent (default 10)")
		parr      = flag.Int("parr", 0, "array-access density percent (default 10)")

		maxEv      = flag.Int("max", 0, "RAR exploration bound (default: derived per program)")
		maxConfigs = flag.Int("maxconfigs", 0, "per-search configuration cap (default 32768)")
		workers    = flag.Int("workers", 0, "parallel width of the serial-vs-parallel oracle (default 8)")
	)
	var prof cli.Profile
	prof.Register(flag.CommandLine)
	var tel cli.Telemetry
	tel.Register(flag.CommandLine)
	flag.Usage = cli.Usage(flag.CommandLine,
		"Usage: c11fuzz [flags]\n\nDifferentially fuzzes the memory-model backends with randomly generated\nlitmus programs, shrinking any failure into a corpus reproducer.")
	cli.Parse()
	if err := prof.Start(); err != nil {
		cli.Fatal("c11fuzz", err)
	}
	defer prof.Stop()
	if err := tel.Start(); err != nil {
		cli.Fatal("c11fuzz", err)
	}
	defer tel.Stop()

	params := gen.Params{
		Threads: *threads, Vars: *vars, Stmts: *stmts, Values: *values,
		Budget: *evbudget, Depth: *depth, LoopIters: *loopiters, ArrLen: *arrlen,
		PSwap: *pswap, PIf: *pif, PWhile: *pwhile, PRel: *prel,
		PAcq: *pacq, PNA: *pna, PNeg: *pneg, PExpr: *pexpr,
		PCas: *pcas, PArr: *parr,
	}
	ctx, stopSignals := cli.SignalContext(context.Background())
	defer stopSignals()
	opts := gen.CheckOpts{MaxEvents: *maxEv, MaxConfigs: *maxConfigs, Workers: *workers, Context: ctx,
		// One registry and tracer across the campaign: the progress
		// line and -metrics summary accumulate over all oracle runs.
		Metrics: tel.Registry(), Tracer: tel.Tracer()}

	if *replay != "" {
		cli.Exit(replayDir(*replay, opts, *v))
	}
	cli.Exit(fuzz(*seed, *n, params, opts, *corpus, *keep, *budget, *v))
}

// fuzz generates and judges n programs, shrinking and writing any
// failure, and prints a run summary. Returns the exit status.
func fuzz(seed int64, n int, params gen.Params, opts gen.CheckOpts, corpus, keep string, budget time.Duration, verbose bool) int {
	start := time.Now()
	if budget > 0 {
		// The budget is enforced by the engine itself: every oracle
		// search carries the deadline, so one pathological program
		// cannot blow through the budget mid-search — it is cut and
		// its bound-sensitive oracles degrade to budget-cut (skipped)
		// comparisons.
		opts.Deadline = start.Add(budget)
	}
	failures, weak, truncated := 0, 0, 0
	ran := 0
	for i := 0; i < n; i++ {
		if opts.Context != nil && opts.Context.Err() != nil {
			fmt.Printf("interrupted after %d programs\n", ran)
			break
		}
		if budget > 0 && time.Since(start) > budget {
			fmt.Printf("time budget %v exhausted after %d programs\n", budget, ran)
			break
		}
		s := seed + int64(i)
		prog := gen.Generate(s, params)
		ran++
		if keep != "" {
			writeKept(keep, prog)
		}
		po := opts
		if po.MaxEvents == 0 {
			// Bound+1: no path has more events, so the RAR searches
			// run to completion and verdicts are exhaustive.
			po.MaxEvents = prog.Bound + 1
		}
		rep := gen.Check(prog.File, po)
		if rep.TruncatedRA {
			truncated++
		}
		if len(rep.Weak) > 0 {
			weak++
		}
		if verbose {
			fmt.Printf("seed %-8d ra=%-6d sc=%-6d weak=%d%s\n",
				s, rep.ExploredRA, rep.ExploredSC, len(rep.Weak), failTag(rep.Failure))
		}
		if rep.Failure == nil {
			continue
		}
		failures++
		fmt.Printf("seed %d FAILED %s — shrinking...\n", s, rep.Failure)
		shrunk := gen.Shrink(prog.File, gen.Predicate(rep.Failure.Kind, po))
		path, err := gen.WriteRepro(corpus, gen.Repro{
			Seed: s, Params: params, Fail: rep.Failure,
			Shrunk: shrunk, Orig: prog.File,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "c11fuzz: write reproducer: %v\n", err)
		} else {
			fmt.Printf("seed %d reproducer: %s\n%s", s, path, shrunk.Format())
		}
	}
	fmt.Printf("c11fuzz: %d programs in %v: %d failed, %d with weak behaviours, %d truncated\n",
		ran, time.Since(start).Round(time.Millisecond), failures, weak, truncated)
	if failures > 0 {
		return cli.ExitViolation
	}
	if ran < n {
		// The wall-clock budget cut the run: nothing failed, but not
		// every requested program was judged.
		return cli.ExitBounded
	}
	return cli.ExitProved
}

func failTag(f *gen.Failure) string {
	if f == nil {
		return ""
	}
	return "  FAIL " + f.String()
}

// replayDir re-judges every corpus file — the regression mode CI runs
// over checked-in reproducers. Returns the exit status.
func replayDir(dir string, opts gen.CheckOpts, verbose bool) int {
	files, err := gen.LoadCorpus(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c11fuzz: load corpus: %v\n", err)
		return cli.ExitInternal
	}
	if len(files) == 0 {
		fmt.Printf("c11fuzz: no corpus files under %s\n", dir)
		return cli.ExitProved
	}
	failures := 0
	for _, f := range files {
		rep := gen.Check(f, opts)
		status := "ok"
		if rep.Failure != nil {
			failures++
			status = "FAIL " + rep.Failure.String()
		}
		if verbose || rep.Failure != nil {
			fmt.Printf("%-40s %s\n", f.Name, status)
		}
	}
	fmt.Printf("c11fuzz: replayed %d corpus files, %d failing\n", len(files), failures)
	if failures > 0 {
		return cli.ExitViolation
	}
	return cli.ExitProved
}

// writeKept archives one generated program (pre-judgement) for corpus
// building and triage.
func writeKept(dir string, p gen.Program) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "c11fuzz:", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("%s.lit", p.File.Name))
	src := fmt.Sprintf("// generated: seed %d, worst-case events %d\n%s", p.Seed, p.Bound, p.File.Format())
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "c11fuzz:", err)
	}
}
