// Command c11trace converts the JSONL search traces written by the
// frontends' -trace flag into Chrome's trace_event JSON format, ready
// to load in chrome://tracing or https://ui.perfetto.dev. The JSONL
// schema (one Record per line: begin/end spans, instants, counter
// samples) is documented in docs/observability.md.
//
// Usage:
//
//	c11trace -in search.jsonl -out search.json
//	c11explore -trace /dev/stdout ... | c11trace > search.json
//
// Exit status: 0 on success, 3 on a malformed trace or I/O error.
package main

import (
	"flag"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/telemetry"
)

func main() {
	var (
		in  = flag.String("in", "", "JSONL trace to read (default stdin)")
		out = flag.String("out", "", "Chrome trace_event JSON to write (default stdout)")
	)
	flag.Usage = cli.Usage(flag.CommandLine,
		"Usage: c11trace [-in trace.jsonl] [-out trace.json]\n\nConverts a -trace JSONL search trace into Chrome trace_event JSON\n(load in chrome://tracing or ui.perfetto.dev).")
	cli.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			cli.Fatal("c11trace", err)
		}
		defer f.Close()
		r = f
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			cli.Fatal("c11trace", err)
		}
		w = f
		defer func() {
			if err := f.Close(); err != nil {
				cli.Fatal("c11trace", err)
			}
		}()
	}
	if err := telemetry.ConvertChrome(r, w); err != nil {
		cli.Fatal("c11trace", err)
	}
}
