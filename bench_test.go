package repro

// The benchmark harness: one benchmark (or benchmark family) per
// experiment of the reproduction (PERF.md records the headline
// numbers). Where the paper's artefact is a theorem or a worked
// example rather than a timing, the benchmark measures the cost of
// regenerating/checking it, and the correctness assertions live in
// the package test suites.
//
// The headline comparison (experiment E16) is operational enumeration
// with on-the-fly read validation versus the axiomatic two-step
// generate-and-test procedure on the same programs: the operational
// route prunes invalid reads as it goes and wins by a growing factor.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/axiomatic"
	"repro/internal/core"
	"repro/internal/ds"
	"repro/internal/enumerate"
	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/model"
	"repro/internal/proof"
	"repro/internal/sc"
	"repro/internal/telemetry"
)

// --- E1/E2: the command language (Figures 1 and 2) ---

func BenchmarkE1_ExpressionEvaluation(b *testing.B) {
	guard := lang.And(lang.Eq(lang.XA("flag2"), lang.B(true)),
		lang.Eq(lang.X("turn"), lang.V(2)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := guard
		for !lang.Closed(e) {
			x, _, _ := lang.EvalTarget(e)
			e = lang.Subst(e, x, 1)
		}
		if lang.Eval(e) == 99 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkE2_UninterpretedProgramSteps(b *testing.B) {
	p, _ := litmus.Peterson()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(lang.ProgSteps(p)) == 0 {
			b.Fatal("no steps")
		}
	}
}

// --- E3/E4: the event semantics (Figure 3, Examples 3.2-3.5) ---

func BenchmarkE3_EventSemanticsSteps(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := core.Init(map[event.Var]event.Val{"x": 0, "y": 0})
		ix, _ := s.InitialFor("x")
		iy, _ := s.InitialFor("y")
		s, w1, _ := s.StepWrite(1, true, "x", 1, ix)
		s, _, _ = s.StepRead(2, true, "x", w1.Tag)
		s, u, _ := s.StepRMW(2, "y", 7, iy)
		if _, _, err := s.StepRMW(1, "y", 8, u.Tag); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4_ObservabilitySets(b *testing.B) {
	// Build the Example 3.2 state once, then measure EW/OW/CW.
	s := core.Init(map[event.Var]event.Val{"x": 0, "y": 0, "z": 0})
	ix, _ := s.InitialFor("x")
	iy, _ := s.InitialFor("y")
	iz, _ := s.InitialFor("z")
	s, w2, _ := s.StepWrite(2, true, "x", 2, ix)
	s, _, _ = s.StepWrite(2, false, "y", 1, iy)
	s, _, _ = s.StepRead(3, true, "x", w2.Tag)
	s, wz, _ := s.StepWrite(3, false, "z", 3, iz)
	s, _, _ = s.StepRMW(1, "x", 4, w2.Tag)
	s, _, _ = s.StepRMW(4, "y", 5, iy)
	s, _, _ = s.StepRead(4, false, "z", wz.Tag)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for t := event.Thread(1); t <= 4; t++ {
			if s.ObservableWrites(t).Count() == 0 {
				b.Fatal("no observable writes")
			}
		}
		_ = s.CoveredWrites()
	}
}

// --- E7/E8: axiom checking and soundness (Definition 4.2, Thm 4.4) ---

func BenchmarkE7_AxiomCheck(b *testing.B) {
	p, vars := litmus.Peterson()
	cfg := core.NewConfig(p, vars)
	for i := 0; i < 10; i++ {
		succ := cfg.Successors()
		cfg = succ[len(succ)-1].C
	}
	x := axiomatic.FromState(cfg.S)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if v := x.Check(); v != nil {
			b.Fatal(v)
		}
	}
}

func BenchmarkE8_SoundnessRandomWalk(b *testing.B) {
	rng := rand.New(rand.NewSource(44))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := core.Init(map[event.Var]event.Val{"x": 0, "y": 0})
		for j := 0; j < 8; j++ {
			th := event.Thread(1 + rng.Intn(2))
			x := []event.Var{"x", "y"}[rng.Intn(2)]
			pts := s.InsertionPointsFor(th, x)
			if len(pts) == 0 {
				continue
			}
			ns, _, err := s.StepWrite(th, rng.Intn(2) == 0, x, event.Val(j), pts[rng.Intn(len(pts))])
			if err != nil {
				b.Fatal(err)
			}
			s = ns
		}
		if v := axiomatic.FromState(s).Check(); v != nil {
			b.Fatal(v)
		}
	}
}

// --- E9: completeness replay (Theorem 4.8) ---

func BenchmarkE9_CompletenessReplayMP(b *testing.B) {
	p := lang.Prog{
		lang.SeqC(lang.AssignC("d", lang.V(5)), lang.AssignRelC("f", lang.V(1))),
		lang.SeqC(lang.AssignC("a", lang.XA("f")), lang.AssignC("b", lang.X("d"))),
	}
	vars := map[event.Var]event.Val{"d": 0, "f": 0, "a": 0, "b": 0}
	execs := axiomatic.ValidExecutions(p, vars, 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, x := range execs {
			if _, err := x.ReplayFull(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- E10: rule soundness checking (Figure 4) ---

func BenchmarkE10_RuleChecks(b *testing.B) {
	s := core.Init(map[event.Var]event.Val{"x": 0, "y": 0})
	ix, _ := s.InitialFor("x")
	iy, _ := s.InitialFor("y")
	s, _, _ = s.StepWrite(1, false, "x", 2, ix)
	s, wy, _ := s.StepWrite(1, true, "y", 1, iy)
	after, e, _ := s.StepRead(2, true, "y", wy.Tag)
	tr := proof.Transition{Before: s, M: wy.Tag, E: e, After: after}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if prem, concl := proof.RuleTransfer(tr, 1, "x", 2); !prem || !concl {
			b.Fatal("Transfer failed")
		}
		if prem, concl := proof.RuleAcqRd(tr, "y"); !prem || !concl {
			b.Fatal("AcqRd failed")
		}
	}
}

// --- E13: Peterson verification (Algorithm 1, Theorem 5.8) ---

func benchPeterson(b *testing.B, bound, workers int, por bool) {
	p, vars := litmus.Peterson()
	b.ReportAllocs()
	var explored int
	for i := 0; i < b.N; i++ {
		res := explore.Run(core.NewConfig(p, vars), explore.Options{
			MaxEvents: bound,
			Workers:   workers,
			POR:       por,
			TypedProperty: func(c core.Config) bool {
				return len(proof.CheckPetersonInvariants(c)) == 0
			},
		})
		if res.Violation != nil {
			b.Fatal("invariant violated")
		}
		explored = res.Explored
	}
	// The search is deterministic, so states/op is the same every
	// iteration; reporting it makes ns-per-state comparable across
	// bounds and machines (bench-snapshot.sh keys on it).
	b.ReportMetric(float64(explored), "states/op")
}

func BenchmarkE13_PetersonVerify(b *testing.B) {
	for _, bound := range []int{7, 8, 9, 10} {
		b.Run(fmt.Sprintf("bound=%d/serial", bound), func(b *testing.B) {
			benchPeterson(b, bound, 1, false)
		})
		b.Run(fmt.Sprintf("bound=%d/serial/por", bound), func(b *testing.B) {
			benchPeterson(b, bound, 1, true)
		})
		b.Run(fmt.Sprintf("bound=%d/parallel", bound), func(b *testing.B) {
			benchPeterson(b, bound, 0, false)
		})
		b.Run(fmt.Sprintf("bound=%d/parallel/por", bound), func(b *testing.B) {
			benchPeterson(b, bound, 0, true)
		})
	}
}

// BenchmarkE13_MetricsPeterson runs the bound-10 serial Peterson
// sweep with a metrics registry attached and reports the search-shape
// ratios alongside ns/op: POR-pruned steps and fingerprint-dedup hits
// per operation. bench-snapshot.sh records every reported metric, so
// BENCH_*.json snapshots carry the search shape next to the timing —
// a perf regression that changes *what* was explored (rather than how
// fast) shows up in these columns. The name deliberately does not
// match the CI perf-gate pattern (E13_PetersonVerify): the gate
// compares the telemetry-disabled hot path only.
func BenchmarkE13_MetricsPeterson(b *testing.B) {
	p, vars := litmus.Peterson()
	for _, por := range []bool{false, true} {
		name := "bound=10/serial"
		if por {
			name += "/por"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var explored int
			var pruned, dedup uint64
			for i := 0; i < b.N; i++ {
				reg := telemetry.NewEngineRegistry()
				res := explore.Run(core.NewConfig(p, vars), explore.Options{
					MaxEvents: 10,
					Workers:   1,
					POR:       por,
					Metrics:   reg,
					TypedProperty: func(c core.Config) bool {
						return len(proof.CheckPetersonInvariants(c)) == 0
					},
				})
				if res.Violation != nil {
					b.Fatal("invariant violated")
				}
				explored = res.Explored
				pruned = reg.Total(telemetry.EnginePORPruned)
				dedup = reg.Total(telemetry.EngineDedupHits)
			}
			b.ReportMetric(float64(explored), "states/op")
			b.ReportMetric(float64(pruned), "por-pruned/op")
			b.ReportMetric(float64(dedup), "dedup-hits/op")
		})
	}
}

// peterson3 is a three-thread Peterson-style client: each thread
// raises its flag (relaxed write), yields the turn with an RA swap,
// spins on an acquiring read of the next thread's flag and a relaxed
// read of turn, then enters a labelled critical section and resets its
// flag with a release write. It exercises the same event mix as
// Algorithm 1 (relaxed/release writes, RA updates, acquire guard
// reads) on a wider carrier — three program threads plus the
// initialising thread — so per-state costs that scale with carrier
// width (closure maintenance, observability) dominate.
func peterson3() (lang.Prog, map[event.Var]event.Val) {
	mk := func(i int, watch event.Var) lang.Com {
		me := event.Var(fmt.Sprintf("f%d", i))
		return lang.SeqC(
			lang.AssignC(me, lang.B(true)),
			lang.SwapC("turn", event.Val(i)),
			lang.WhileC(lang.And(
				lang.Eq(lang.XA(watch), lang.B(true)),
				lang.Eq(lang.X("turn"), lang.V(event.Val(i))),
			), lang.SkipC()),
			lang.LabelC("cs", lang.SkipC()),
			lang.AssignRelC(me, lang.B(false)),
		)
	}
	p := lang.Prog{mk(1, "f2"), mk(2, "f3"), mk(3, "f1")}
	vars := map[event.Var]event.Val{"f1": 0, "f2": 0, "f3": 0, "turn": 0}
	return p, vars
}

// BenchmarkE13_ThreeThreadPeterson explores the three-thread client —
// the incremental engine's win grows with carrier width, so this is
// the headline number beyond litmus-sized programs.
func BenchmarkE13_ThreeThreadPeterson(b *testing.B) {
	p, vars := peterson3()
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "parallel"
		}
		for _, por := range []bool{false, true} {
			bn := name
			if por {
				bn += "/por"
			}
			b.Run(bn, func(b *testing.B) {
				b.ReportAllocs()
				var explored int
				for i := 0; i < b.N; i++ {
					res := explore.Run(core.NewConfig(p, vars), explore.Options{
						MaxEvents: 10,
						Workers:   workers,
						POR:       por,
					})
					if res.Explored == 0 {
						b.Fatal("nothing explored")
					}
					explored = res.Explored
				}
				b.ReportMetric(float64(explored), "states/op")
			})
		}
	}
}

func BenchmarkE13_PetersonWeakTurnWitness(b *testing.B) {
	p, vars := litmus.PetersonWeakTurn()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, found := explore.FindTrace(core.NewConfig(p, vars), explore.Options{
			MaxEvents: 12,
		}, func(c model.Config) bool { return !litmus.MutualExclusion(c) })
		if !found {
			b.Fatal("no witness")
		}
	}
}

// --- E14/E15: model equivalence (Theorem C.5, the Memalloy bound) ---

func BenchmarkE14_TheoremC5Exhaustive(b *testing.B) {
	for _, events := range []int{2, 3} {
		b.Run(fmt.Sprintf("events=%d", events), func(b *testing.B) {
			params := enumerate.Params{
				Threads: 2, Vars: []event.Var{"x"}, Events: events,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				enumerate.Candidates(params, func(x axiomatic.Exec) bool {
					if x.CoherentDef42() != x.WeakCanonicalConsistent() {
						b.Fatal("mismatch")
					}
					return true
				})
			}
		})
	}
}

func BenchmarkE15_TheoremC5RandomSize7(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	params := enumerate.Params{Threads: 3, Vars: []event.Var{"x", "y"}, Events: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x := enumerate.Random(rng, params)
		if x.CoherentDef42() != x.WeakCanonicalConsistent() {
			b.Fatal("mismatch")
		}
	}
}

// --- E16: operational vs axiomatic enumeration (the intro's claim) ---

func litmusProgs() map[string]struct {
	p    lang.Prog
	vars map[event.Var]event.Val
} {
	out := map[string]struct {
		p    lang.Prog
		vars map[event.Var]event.Val
	}{}
	for _, tc := range litmus.Suite() {
		switch tc.Name {
		case "MP+rel+acq", "SB+rel+acq", "LB+rlx+rlx", "2+2W":
			out[tc.Name] = struct {
				p    lang.Prog
				vars map[event.Var]event.Val
			}{tc.Prog, tc.Init}
		}
	}
	return out
}

func BenchmarkE16_Operational(b *testing.B) {
	for name, pc := range litmusProgs() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(axiomatic.OperationalExecutions(pc.p, pc.vars)) == 0 {
					b.Fatal("no executions")
				}
			}
		})
	}
}

func BenchmarkE16_AxiomaticBaseline(b *testing.B) {
	for name, pc := range litmusProgs() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(axiomatic.ValidExecutions(pc.p, pc.vars, 40)) == 0 {
					b.Fatal("no executions")
				}
			}
		})
	}
}

// scalingProg returns a program with n writer threads storing distinct
// values to x and one reader thread reading x twice. The axiomatic
// baseline must enumerate all n! modification orders and (n+1)²
// reads-from choices per pre-execution and filter post hoc, while the
// operational semantics validates reads on the fly — the paper's
// motivation for an operational model, measured.
func scalingProg(n int) (lang.Prog, map[event.Var]event.Val) {
	p := make(lang.Prog, 0, n+1)
	for i := 1; i <= n; i++ {
		p = append(p, lang.AssignC("x", lang.V(event.Val(i))))
	}
	p = append(p, lang.SeqC(
		lang.AssignC("r1", lang.X("x")),
		lang.AssignC("r2", lang.X("x")),
	))
	return p, map[event.Var]event.Val{"x": 0, "r1": 0, "r2": 0}
}

func BenchmarkE16_ScalingOperational(b *testing.B) {
	for n := 2; n <= 4; n++ {
		b.Run(fmt.Sprintf("writers=%d", n), func(b *testing.B) {
			p, vars := scalingProg(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(axiomatic.OperationalExecutions(p, vars)) == 0 {
					b.Fatal("no executions")
				}
			}
		})
	}
}

// BenchmarkE16_ScalingWide pushes the scaling client to five and six
// writers — carriers the axiomatic baseline cannot touch (6!
// modification orders per pre-execution) and wide enough that
// per-successor closure maintenance dominates. It runs through the
// sharded engine rather than the naive enumerator, serial and with
// eight workers, so it doubles as the scaling row: the searches are
// deterministic and states/op is pinned (bench-snapshot.sh records
// it), making ns-per-state and the serial/8-worker ratio comparable
// across commits. Run with -benchtime=1x: writers=6 explores several
// hundred thousand configurations per search.
func BenchmarkE16_ScalingWide(b *testing.B) {
	for n := 5; n <= 6; n++ {
		for _, workers := range []int{1, 8} {
			name := fmt.Sprintf("writers=%d/serial", n)
			if workers != 1 {
				name = fmt.Sprintf("writers=%d/workers=%d", n, workers)
			}
			b.Run(name, func(b *testing.B) {
				p, vars := scalingProg(n)
				bound := 2*n + 5 // every thread runs to completion
				b.ReportAllocs()
				var explored int
				for i := 0; i < b.N; i++ {
					res := explore.Run(core.NewConfig(p, vars), explore.Options{
						MaxEvents: bound,
						Workers:   workers,
					})
					if res.Explored == 0 || res.Truncated {
						b.Fatal("search did not run to its fixpoint")
					}
					explored = res.Explored
				}
				b.ReportMetric(float64(explored), "states/op")
			})
		}
	}
}

func BenchmarkE16_ScalingAxiomatic(b *testing.B) {
	for n := 2; n <= 4; n++ {
		b.Run(fmt.Sprintf("writers=%d", n), func(b *testing.B) {
			p, vars := scalingProg(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(axiomatic.ValidExecutions(p, vars, 40)) == 0 {
					b.Fatal("no executions")
				}
			}
		})
	}
}

// loopingMP is message passing with a genuine await loop — the shape
// verification cares about. The axiomatic baseline must enumerate
// pre-executions whose guard reads range over the whole value domain
// (most of them unjustifiable, discovered only post hoc), while the
// operational semantics only ever produces readable values.
func loopingMP() (lang.Prog, map[event.Var]event.Val) {
	p := lang.Prog{
		lang.SeqC(lang.AssignC("d", lang.V(5)), lang.AssignRelC("f", lang.V(1))),
		lang.SeqC(
			lang.WhileC(lang.Eq(lang.XA("f"), lang.V(0)), lang.SkipC()),
			lang.AssignC("r", lang.X("d")),
		),
	}
	return p, map[event.Var]event.Val{"d": 0, "f": 0, "r": 0}
}

func BenchmarkE16_LoopingMPOperational(b *testing.B) {
	p, vars := loopingMP()
	for _, por := range []bool{false, true} {
		name := "full"
		if por {
			name = "por"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := explore.Run(core.NewConfig(p, vars), explore.Options{
					MaxEvents: 10, Workers: 1, POR: por,
				})
				if res.Explored == 0 {
					b.Fatal("nothing explored")
				}
			}
		})
	}
}

func BenchmarkE16_LoopingMPAxiomatic(b *testing.B) {
	p, vars := loopingMP()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(axiomatic.ValidExecutions(p, vars, 10)) == 0 {
			b.Fatal("no executions")
		}
	}
}

// --- Litmus suite end to end (E16 verdict costs) ---

func BenchmarkLitmusSuiteVerdicts(b *testing.B) {
	suite := litmus.Suite()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, tc := range suite {
			if rep := tc.Run(explore.Options{MaxEvents: 20}); !rep.Pass() {
				b.Fatalf("%s failed", tc.Name)
			}
		}
	}
}

// --- Data-structure tier (testdata/ds) under both backends ---

// BenchmarkDSSuite runs every data-structure scenario — Treiber stack,
// MS-style queue, ticket lock, CAS set, lazylist — at its pinned event
// bound under each backend, checking the catalog expectations and the
// linearizability-style outcome properties on every iteration. The
// searches are deterministic, so states/op is stable and ns-per-state
// is comparable across scenarios and models (the SC spaces are a small
// fraction of the RAR ones; PERF.md tabulates the counts).
func BenchmarkDSSuite(b *testing.B) {
	for _, s := range ds.Suite() {
		s := s
		for _, m := range []model.Model{core.Model, sc.Model} {
			m := m
			b.Run(s.Test.Name+"/"+m.Name(), func(b *testing.B) {
				b.ReportAllocs()
				var explored int
				for i := 0; i < b.N; i++ {
					rep := s.Test.RunModel(m, explore.Options{POR: true, Workers: 1})
					if !rep.Pass() {
						b.Fatalf("%s/%s: expectations failed", s.Test.Name, m.Name())
					}
					if v := s.CheckProps(rep.Outcomes); len(v) != 0 {
						b.Fatalf("%s/%s: property violations: %v", s.Test.Name, m.Name(), v)
					}
					explored = rep.Explored
				}
				b.ReportMetric(float64(explored), "states/op")
			})
		}
	}
}

// --- E17: pluggable memory models (RA vs SC on one engine) ---

// BenchmarkE17_ModelPeterson runs the Peterson workload through the
// unified engine under each backend. SC configurations carry no event
// graph and its reads are deterministic, so the SC state space is a
// small fraction of the RA one (PERF.md tabulates the counts).
func BenchmarkE17_ModelPeterson(b *testing.B) {
	p, vars := litmus.Peterson()
	run := func(b *testing.B, m model.Model) {
		b.ReportAllocs()
		var explored int
		for i := 0; i < b.N; i++ {
			res := explore.Run(m.New(p, vars), explore.Options{
				MaxEvents: 10, Workers: 1, Property: litmus.MutualExclusion,
			})
			if res.Violation != nil {
				b.Fatal("violation")
			}
			explored = res.Explored
		}
		b.ReportMetric(float64(explored), "states/op")
	}
	b.Run("rar", func(b *testing.B) { run(b, core.Model) })
	b.Run("sc", func(b *testing.B) { run(b, sc.Model) })
}

// BenchmarkE17_ModelDiff measures the full differential mode: both
// backends on one litmus test plus the outcome-set diff.
func BenchmarkE17_ModelDiff(b *testing.B) {
	var sb *litmus.Test
	for _, tc := range litmus.Suite() {
		if tc.Name == "SB+rel+acq" {
			sb = tc
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := sb.Diff(core.Model, sc.Model, explore.Options{MaxEvents: 20})
		if d.Agree() {
			b.Fatal("SB must differ between RA and SC")
		}
	}
}
