// Racedetect: the non-atomic extension in action.
//
// The paper develops the RAR fragment for atomic accesses and notes
// (§2.1) that non-atomics — whose races are undefined behaviour — are
// a straightforward extension. This example runs the message-passing
// idiom with a non-atomic payload twice: with a release/acquire flag
// (race-free: the sw edge orders the payload accesses by
// happens-before) and with a relaxed flag (a reachable data race,
// reported with a minimal witness).
//
// Run with: go run ./examples/racedetect
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/races"
)

func mp(sync bool) (lang.Prog, map[event.Var]event.Val) {
	flagWrite := lang.AssignC("f", lang.V(1))
	flagRead := lang.X("f")
	if sync {
		flagWrite = lang.AssignRelC("f", lang.V(1))
		flagRead = lang.XA("f")
	}
	p := lang.Prog{
		lang.SeqC(lang.AssignNAC("d", lang.V(5)), flagWrite),
		lang.SeqC(
			lang.WhileC(lang.Eq(flagRead, lang.V(0)), lang.SkipC()),
			lang.AssignC("r", lang.XNA("d")),
		),
	}
	return p, map[event.Var]event.Val{"d": 0, "f": 0, "r": 0}
}

func main() {
	// Release/acquire flag: every reachable state is race-free.
	p, vars := mp(true)
	free, truncated := races.RaceFree(core.NewConfig(p, vars), explore.Options{MaxEvents: 12})
	if !free {
		log.Fatal("racedetect: synchronised variant reported racy")
	}
	fmt.Printf("release/acquire flag: race-free at bound 12 (truncated=%v)\n", truncated)

	// Relaxed flag: a data race is reachable — undefined behaviour.
	p2, vars2 := mp(false)
	trace, found, ok := raceWitness(p2, vars2)
	if !ok {
		log.Fatal("racedetect: relaxed variant reported race-free")
	}
	fmt.Printf("\nrelaxed flag: DATA RACE after %d steps — undefined behaviour\n",
		len(trace.Configs)-1)
	for _, r := range found {
		fmt.Printf("  %s\n", r)
	}
}

func raceWitness(p lang.Prog, vars map[event.Var]event.Val) (explore.Trace, []races.Race, bool) {
	return races.FindRace(core.NewConfig(p, vars), explore.Options{MaxEvents: 12})
}
