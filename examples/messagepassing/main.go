// Message passing: the proof of Example 5.7, step by step.
//
// The example walks the determinate-value and variable-ordering
// assertions through one execution of the message-passing idiom,
// naming the Figure 4 rule that justifies each step — exactly the
// proof sketched in the paper — and then model-checks the property on
// every execution.
//
// Run with: go run ./examples/messagepassing
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/model"
	"repro/internal/proof"
)

func main() {
	s := core.Init(map[event.Var]event.Val{"d": 0, "f": 0})
	id, _ := s.InitialFor("d")
	iff, _ := s.InitialFor("f")

	fmt.Println("Init: every thread has determinate values (rule Init):")
	fmt.Printf("  d =_1 0: %v, d =_2 0: %v\n", proof.DV(s, 1, "d", 0), proof.DV(s, 2, "d", 0))

	// Thread 1, line 1: d := 5.
	s, _, err := s.StepWrite(1, false, "d", 5, id)
	check(err)
	fmt.Println("\nafter d := 5 (rule ModLast):")
	fmt.Printf("  d =_1 5: %v\n", proof.DV(s, 1, "d", 5))
	fmt.Printf("  d =_2 5: %v (thread 2 has not synchronised)\n", proof.DV(s, 2, "d", 5))

	// Thread 1, line 2: f :=R 1. WOrd gives d ↪ f: the last write to d
	// happens-before the last write to f.
	s, wf, err := s.StepWrite(1, true, "f", 1, iff)
	check(err)
	fmt.Println("\nafter f :=R 1 (rule WOrd):")
	fmt.Printf("  d ↪ f: %v\n", proof.VO(s, "d", "f"))

	// Thread 2 acquires the flag. Transfer copies d =_1 5 to thread 2.
	before := s
	s, e, err := s.StepRead(2, true, "f", wf.Tag)
	check(err)
	tr := proof.Transition{Before: before, M: wf.Tag, E: e, After: s}
	prem, concl := proof.RuleTransfer(tr, 1, "d", 5)
	fmt.Println("\nafter the acquiring read of f (rule Transfer):")
	fmt.Printf("  premises hold: %v, conclusion d =_2 5: %v\n", prem, concl)
	if !prem || !concl {
		log.Fatal("messagepassing: Transfer failed")
	}

	// Lemma 5.3: with d =_2 5, thread 2's read of d must return 5.
	obs := s.ObservableFor(2, "d")
	fmt.Printf("  thread 2 can observe %d write(s) to d (Lemma 5.3 forces 5)\n", len(obs))

	// Finally, model-check the full property on every execution of the
	// looping program: past the await loop, thread 2 always holds
	// d =_2 5.
	p := lang.Prog{
		lang.SeqC(
			lang.AssignC("d", lang.V(5)),
			lang.AssignRelC("f", lang.V(1)),
		),
		lang.SeqC(
			lang.WhileC(lang.Eq(lang.XA("f"), lang.V(0)), lang.SkipC()),
			lang.LabelC("consume", lang.AssignC("r", lang.X("d"))),
		),
	}
	res := explore.Run(core.NewConfig(p, map[event.Var]event.Val{"d": 0, "f": 0, "r": 0}),
		explore.Options{
			MaxEvents: 12,
			Property: func(c model.Config) bool {
				cc := c.(core.Config)
				if lang.AtLabel(cc.P.Thread(2)) == "consume" {
					return proof.DV(cc.S, 2, "d", 5)
				}
				return true
			},
		})
	if res.Violation != nil {
		log.Fatal("messagepassing: property fails")
	}
	fmt.Printf("\nmodel check: d =_2 5 past the loop in all %d configurations\n", res.Explored)
}

func check(err error) {
	if err != nil {
		log.Fatal("messagepassing: ", err)
	}
}
