// Peterson: machine-check the paper's flagship verification (§5.2).
//
// The example explores the bounded state space of the release-acquire
// Peterson lock (Algorithm 1), checking the invariants (4)–(10) of the
// paper's proof at every reachable configuration, and then shows the
// negative control: with the RA swap downgraded to a plain write, the
// explorer produces a concrete interleaving putting both threads in
// the critical section.
//
// Run with: go run ./examples/peterson
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/litmus"
	"repro/internal/model"
	"repro/internal/proof"
)

func main() {
	// 1. The RA Peterson lock: invariants + mutual exclusion.
	prog, vars := litmus.Peterson()
	res := explore.Run(core.NewConfig(prog, vars), explore.Options{
		MaxEvents: 12,
		Property: func(c model.Config) bool {
			cc := c.(core.Config)
			return len(proof.CheckPetersonInvariants(cc)) == 0 &&
				proof.Theorem58(cc)
		},
	})
	if res.Violation != nil {
		log.Fatalf("peterson: verification failed:\n%s", res.Violation.Program())
	}
	fmt.Printf("RA Peterson: invariants (4)-(10) and mutual exclusion hold\n")
	fmt.Printf("  (%d configurations explored, max depth %d)\n\n", res.Explored, res.Depth)

	// 2. The paper's proof structure, replayed: invariant (9) plus the
	// determinate-value agreement lemma refute a double critical
	// section in every reachable state.
	res2 := explore.Run(core.NewConfig(prog, vars), explore.Options{
		MaxEvents: 10,
		Property: func(c model.Config) bool {
			return proof.DeriveTheorem58(c.(core.Config))
		},
	})
	if res2.Violation != nil {
		log.Fatal("peterson: Theorem 5.8 derivation failed")
	}
	fmt.Println("Theorem 5.8 derivation (invariant 9 + Lemma 5.4): OK")

	// 3. Negative control: the weakened lock fails, with a witness.
	weak, wvars := litmus.PetersonWeakTurn()
	trace, found := explore.FindTrace(core.NewConfig(weak, wvars), explore.Options{
		MaxEvents: 12,
	}, func(c model.Config) bool { return !litmus.MutualExclusion(c) })
	if !found {
		log.Fatal("peterson: weak variant unexpectedly safe")
	}
	fmt.Printf("\nweak-turn Peterson: mutual exclusion VIOLATED in %d steps\n", len(trace.Configs)-1)
	last := trace.Configs[len(trace.Configs)-1].(core.Config)
	fmt.Printf("  both threads at the critical section label:\n  %s\n", last.P)
	fmt.Printf("  pc_1 = %d, pc_2 = %d\n",
		proof.PC(last.P.Thread(1)), proof.PC(last.P.Thread(2)))

	// The proof's premise that breaks: turn is no longer update-only
	// (invariant 4), so Lemma 5.6 cannot pin the swap's observation.
	bad := proof.CheckPetersonInvariants(last)
	fmt.Printf("  invariants violated in the witness state: %v\n", bad)
}
