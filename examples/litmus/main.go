// Litmus: the text front end, end to end.
//
// The example parses a litmus file (embedded below; the same syntax is
// accepted by cmd/c11litmus -f), runs it through the operational
// explorer, and cross-checks the outcome set against the axiomatic
// generate-and-test procedure — soundness and completeness at work on
// a user-written test.
//
// Run with: go run ./examples/litmus
package main

import (
	"fmt"
	"log"

	"repro/internal/axiomatic"
	"repro/internal/explore"
	"repro/internal/parser"
)

const src = `
// Store buffering with release/acquire: the weak outcome a=0, b=0
// is allowed (RA is weaker than SC).
init x=0 y=0 a=0 b=0
thread 1 { x :=R 1; a := y^A; }
thread 2 { y :=R 1; b := x^A; }
observe a b
allow  a=0 b=0
allow  a=1 b=1
`

func main() {
	f, err := parser.Parse("sb.lit", src)
	if err != nil {
		log.Fatal("litmus: ", err)
	}
	tc, err := f.Test()
	if err != nil {
		log.Fatal("litmus: ", err)
	}

	rep := tc.Run(explore.Options{MaxEvents: 16})
	fmt.Println(rep.Summary())
	if !rep.Pass() {
		log.Fatalf("litmus: expectations failed: %v / %v",
			rep.MissingAllowed, rep.ReachedForbidden)
	}

	// Cross-check the two semantics on this program.
	op := axiomatic.OperationalExecutions(tc.Prog, tc.Init)
	ax := axiomatic.ValidExecutions(tc.Prog, tc.Init, 32)
	fmt.Printf("executions: operational=%d axiomatic=%d\n", len(op), len(ax))
	if len(op) != len(ax) {
		log.Fatal("litmus: semantics disagree")
	}
	for sig := range op {
		if _, ok := ax[sig]; !ok {
			log.Fatal("litmus: operational-only execution found")
		}
	}
	fmt.Println("operational and axiomatic semantics agree (Theorems 4.4 + 4.8)")
}
