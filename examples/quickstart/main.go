// Quickstart: drive the RA operational semantics by hand.
//
// This example builds the message-passing execution step by step
// through the event semantics (Figure 3 of the paper), showing how
// per-thread observability evolves: after thread 2's acquiring read
// of the flag, the stale data value is no longer observable.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/axiomatic"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/vis"
)

func main() {
	// Initial state: d = 0, f = 0 (one initialising write each).
	s := core.Init(map[event.Var]event.Val{"d": 0, "f": 0})
	id, _ := s.InitialFor("d")
	iff, _ := s.InitialFor("f")

	// Thread 1: d := 5 (relaxed), then f :=R 1 (release).
	s, wd, err := s.StepWrite(1, false, "d", 5, id)
	check(err)
	s, wf, err := s.StepWrite(1, true, "f", 1, iff)
	check(err)

	// Before synchronising, thread 2 can observe BOTH writes to d.
	fmt.Println("before the acquiring read, thread 2 may read d from:")
	for _, w := range s.ObservableFor(2, "d") {
		fmt.Printf("  %s\n", s.Event(w))
	}

	// Thread 2 acquires the flag: rf ∩ (WrR × RdA) = sw ⊆ hb.
	s, _, err = s.StepRead(2, true, "f", wf.Tag)
	check(err)

	// Now the write d=5 has been *encountered* (it happens-before the
	// read), so the initial d=0 is no longer observable: thread 2 must
	// read 5.
	fmt.Println("after the acquiring read, thread 2 may read d from:")
	for _, w := range s.ObservableFor(2, "d") {
		fmt.Printf("  %s\n", s.Event(w))
	}
	if got := s.ObservableFor(2, "d"); len(got) != 1 || got[0] != wd.Tag {
		log.Fatal("quickstart: unexpected observability")
	}

	// Every state built through the transition rules is a valid C11
	// execution (Theorem 4.4) — check it against the axioms.
	x := axiomatic.FromState(s)
	if v := x.Check(); v != nil {
		log.Fatalf("quickstart: state invalid: %v", v)
	}
	fmt.Println("\nthe state satisfies all axioms of Definition 4.2")

	// Render the execution diagram (paste into Graphviz to draw).
	fmt.Println("\nASCII execution diagram:")
	fmt.Print(vis.ASCII(x))
}

func check(err error) {
	if err != nil {
		log.Fatal("quickstart: ", err)
	}
}
