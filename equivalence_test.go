package repro

// Serial/parallel equivalence of the unified explorer: serial is the
// same sharded engine at Workers=1, and the barrier-free parallel
// configuration deduplicates through the sharded fingerprint-keyed
// seen-set and relaxes depths as shorter paths appear, so on any
// search that runs to completion it must report exactly the serial
// run's Explored, Terminated, Depth and Truncated — on the whole
// litmus catalog under both memory models, and on the Peterson
// verification workload. Property early-exit is nondeterministic in
// *which* violating configuration is reported, so there only the
// verdict is compared.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/litmus"
	"repro/internal/model"
	"repro/internal/model/backends"
	"repro/internal/proof"
)

func TestSerialParallelEquivalenceLitmusSuite(t *testing.T) {
	for _, m := range backends.All() {
		for _, tc := range litmus.Suite() {
			t.Run(m.Name()+"/"+tc.Name, func(t *testing.T) {
				cfg := m.New(tc.Prog, tc.Init)
				s := explore.Run(cfg, explore.Options{MaxEvents: 10, Workers: 1})
				p := explore.Run(cfg, explore.Options{MaxEvents: 10, Workers: 8})
				if s.Explored != p.Explored || s.Terminated != p.Terminated ||
					s.Depth != p.Depth || s.Truncated != p.Truncated {
					t.Fatalf("serial %+v != parallel %+v", s, p)
				}
			})
		}
	}
}

func TestSerialParallelEquivalencePeterson(t *testing.T) {
	p, vars := litmus.Peterson()
	property := func(c model.Config) bool {
		return len(proof.CheckPetersonInvariants(c.(core.Config))) == 0
	}
	s := explore.Run(core.NewConfig(p, vars), explore.Options{
		MaxEvents: 9, Workers: 1, Property: property,
	})
	pr := explore.Run(core.NewConfig(p, vars), explore.Options{
		MaxEvents: 9, Workers: 8, Property: property,
	})
	if s.Violation != nil || pr.Violation != nil {
		t.Fatal("Peterson invariants must hold in both engine configurations")
	}
	if s.Explored != pr.Explored || s.Terminated != pr.Terminated ||
		s.Depth != pr.Depth || s.Truncated != pr.Truncated {
		t.Fatalf("serial %+v != parallel %+v", s, pr)
	}
}

func TestSerialParallelEquivalencePetersonSC(t *testing.T) {
	p, vars := litmus.Peterson()
	m, err := backends.Get("sc")
	if err != nil {
		t.Fatal(err)
	}
	s := explore.Run(m.New(p, vars), explore.Options{Workers: 1, Property: litmus.MutualExclusion})
	pr := explore.Run(m.New(p, vars), explore.Options{Workers: 8, Property: litmus.MutualExclusion})
	if s.Violation != nil || pr.Violation != nil {
		t.Fatal("Peterson is mutually exclusive under SC")
	}
	if s.Explored != pr.Explored || s.Terminated != pr.Terminated ||
		s.Depth != pr.Depth || s.Truncated != pr.Truncated {
		t.Fatalf("serial %+v != parallel %+v", s, pr)
	}
}

func TestSerialParallelVerdictWeakTurn(t *testing.T) {
	// The broken variant must be caught at every worker count.
	p, vars := litmus.PetersonWeakTurn()
	for _, workers := range []int{1, 8} {
		res := explore.Run(core.NewConfig(p, vars), explore.Options{
			MaxEvents: 12,
			Workers:   workers,
			Property:  litmus.MutualExclusion,
		})
		if res.Violation == nil {
			t.Fatalf("workers=%d: mutual-exclusion violation not found", workers)
		}
		if litmus.MutualExclusion(res.Violation) {
			t.Fatalf("workers=%d: reported violation does not falsify the property", workers)
		}
	}
}
