package repro

// Serial/parallel equivalence of the explorer: the barrier-free
// parallel engine deduplicates through a sharded fingerprint-keyed
// seen-set and relaxes depths as shorter paths appear, so on any
// search that runs to completion it must report exactly the serial
// engine's Explored, Terminated, Depth and Truncated — on the whole
// litmus catalog and on the Peterson verification workload. Property
// early-exit is nondeterministic in *which* violating configuration is
// reported, so there only the verdict is compared.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/litmus"
	"repro/internal/proof"
)

func TestSerialParallelEquivalenceLitmusSuite(t *testing.T) {
	for _, tc := range litmus.Suite() {
		t.Run(tc.Name, func(t *testing.T) {
			cfg := core.NewConfig(tc.Prog, tc.Init)
			s := explore.Run(cfg, explore.Options{MaxEvents: 10, Workers: 1})
			p := explore.Run(cfg, explore.Options{MaxEvents: 10, Workers: 8})
			if s.Explored != p.Explored || s.Terminated != p.Terminated ||
				s.Depth != p.Depth || s.Truncated != p.Truncated {
				t.Fatalf("serial %+v != parallel %+v", s, p)
			}
		})
	}
}

func TestSerialParallelEquivalencePeterson(t *testing.T) {
	p, vars := litmus.Peterson()
	property := func(c core.Config) bool {
		return len(proof.CheckPetersonInvariants(c)) == 0
	}
	s := explore.Run(core.NewConfig(p, vars), explore.Options{
		MaxEvents: 9, Workers: 1, Property: property,
	})
	pr := explore.Run(core.NewConfig(p, vars), explore.Options{
		MaxEvents: 9, Workers: 8, Property: property,
	})
	if s.Violation != nil || pr.Violation != nil {
		t.Fatal("Peterson invariants must hold in both engines")
	}
	if s.Explored != pr.Explored || s.Terminated != pr.Terminated ||
		s.Depth != pr.Depth || s.Truncated != pr.Truncated {
		t.Fatalf("serial %+v != parallel %+v", s, pr)
	}
}

func TestSerialParallelVerdictWeakTurn(t *testing.T) {
	// The broken variant must be caught by both engines.
	p, vars := litmus.PetersonWeakTurn()
	for _, workers := range []int{1, 8} {
		res := explore.Run(core.NewConfig(p, vars), explore.Options{
			MaxEvents: 12,
			Workers:   workers,
			Property:  litmus.MutualExclusion,
		})
		if res.Violation == nil {
			t.Fatalf("workers=%d: mutual-exclusion violation not found", workers)
		}
		if litmus.MutualExclusion(*res.Violation) {
			t.Fatalf("workers=%d: reported violation does not falsify the property", workers)
		}
	}
}
