#!/bin/sh
# Docs gate: every internal package must carry a package doc comment
# ("// Package <name> ..." directly above its package clause) so
# `go doc repro/internal/<name>` is useful. Run from the repo root;
# exits non-zero listing the offenders.
set -eu

fail=0
for dir in internal/*/; do
    pkg=$(basename "$dir")
    found=0
    for f in "$dir"*.go; do
        case "$f" in
        *_test.go) continue ;;
        esac
        if grep -q "^// Package $pkg " "$f"; then
            found=1
            break
        fi
    done
    if [ "$found" -eq 0 ]; then
        echo "missing package doc comment: $dir" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "add a '// Package <name> ...' comment (see ARCHITECTURE.md for the package map)" >&2
fi
exit "$fail"
