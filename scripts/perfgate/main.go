// Command perfgate compares a fresh bench-snapshot JSON against a
// committed baseline and fails on perf regressions. It is the CI
// perf-regression gate: for every benchmark present in both files it
// requires states/op to match exactly (the searches are deterministic
// — a drifted count means the state space itself changed, which is a
// correctness question, not a perf one) and allocs/op to stay within
// a tolerance band of the baseline (default +20%; ns/op is left
// ungated because shared CI runners make wall-clock too noisy to
// gate on).
//
// Usage:
//
//	perfgate -baseline BENCH_pr9.json -current BENCH_ci.json
//	perfgate -baseline ... -current ... -tolerance 10   # percent
//
// Exit status: 0 when every common benchmark is within band, 1 on any
// regression or states/op drift, 2 on malformed input or when the two
// snapshots share no benchmarks (an empty comparison must not pass).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type snapshot struct {
	Label      string                       `json:"label"`
	Commit     string                       `json:"commit"`
	Benchmarks []map[string]json.RawMessage `json:"benchmarks"`
}

// row is one benchmark's gated metrics. Metrics a row lacks (e.g.
// kernel micro-benchmarks report no states/op) are simply not gated.
type row struct {
	states, allocs float64
	hasStates      bool
	hasAllocs      bool
}

func load(path string) (map[string]row, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, "", fmt.Errorf("%s: %v", path, err)
	}
	out := make(map[string]row, len(s.Benchmarks))
	for _, b := range s.Benchmarks {
		var name string
		if err := json.Unmarshal(b["name"], &name); err != nil {
			return nil, "", fmt.Errorf("%s: benchmark without a name", path)
		}
		var r row
		if raw, ok := b["states/op"]; ok {
			if err := json.Unmarshal(raw, &r.states); err != nil {
				return nil, "", fmt.Errorf("%s: %s: bad states/op", path, name)
			}
			r.hasStates = true
		}
		if raw, ok := b["allocs/op"]; ok {
			if err := json.Unmarshal(raw, &r.allocs); err != nil {
				return nil, "", fmt.Errorf("%s: %s: bad allocs/op", path, name)
			}
			r.hasAllocs = true
		}
		out[name] = r
	}
	return out, s.Label + "@" + s.Commit, nil
}

func main() {
	baseline := flag.String("baseline", "", "committed baseline snapshot JSON")
	current := flag.String("current", "", "freshly measured snapshot JSON")
	tolerance := flag.Float64("tolerance", 20, "allowed allocs/op regression in percent")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "perfgate: -baseline and -current are both required")
		os.Exit(2)
	}

	base, baseID, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}
	cur, curID, err := load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}

	var names []string
	for name := range cur {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "perfgate: no common benchmarks between %s and %s — refusing to pass an empty comparison\n",
			*baseline, *current)
		os.Exit(2)
	}
	sort.Strings(names)

	failures := 0
	for _, name := range names {
		b, c := base[name], cur[name]
		if b.hasStates && c.hasStates && b.states != c.states {
			fmt.Printf("FAIL %s: states/op %v -> %v (state space drifted; the search is deterministic, so this is a semantics change, not noise)\n",
				name, b.states, c.states)
			failures++
			continue
		}
		if b.hasAllocs && c.hasAllocs && b.allocs > 0 {
			delta := (c.allocs - b.allocs) / b.allocs * 100
			if delta > *tolerance {
				fmt.Printf("FAIL %s: allocs/op %v -> %v (+%.1f%% > %.0f%% tolerance)\n",
					name, b.allocs, c.allocs, delta, *tolerance)
				failures++
				continue
			}
			fmt.Printf("ok   %s: allocs/op %v -> %v (%+.1f%%)\n", name, b.allocs, c.allocs, delta)
			continue
		}
		fmt.Printf("ok   %s\n", name)
	}
	fmt.Printf("perfgate: %d benchmarks compared (%s vs %s), %d failing\n",
		len(names), baseID, curID, failures)
	if failures > 0 {
		os.Exit(1)
	}
}
