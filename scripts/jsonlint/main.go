// Command jsonlint validates that stdin is one well-formed JSON value
// (with nothing trailing) and exits non-zero otherwise. It is the
// bench-snapshot script's guard against committing a malformed
// BENCH_*.json: the snapshot is built by awk, so a quoting slip would
// otherwise go unnoticed until a downstream diff tool choked on it.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

func main() {
	dec := json.NewDecoder(os.Stdin)
	var v any
	if err := dec.Decode(&v); err != nil {
		fmt.Fprintf(os.Stderr, "jsonlint: %v\n", err)
		os.Exit(1)
	}
	if err := dec.Decode(new(any)); err != io.EOF {
		fmt.Fprintln(os.Stderr, "jsonlint: trailing data after the JSON value")
		os.Exit(1)
	}
}
