#!/usr/bin/env bash
# Bench snapshot: runs the top-level benchmark harness and writes a
# machine-readable BENCH_<label>.json next to PERF.md, so perf numbers
# can be tracked across commits and diffed by tooling instead of being
# copied into prose by hand.
#
# Usage (from the repo root):
#
#   bash scripts/bench-snapshot.sh                 # full harness, label = short commit
#   bash scripts/bench-snapshot.sh -bench 'E13'    # one family
#   BENCH_LABEL=baseline bash scripts/bench-snapshot.sh
#
# Extra arguments are passed through to `go test` (e.g. -benchtime 3x).
# BENCH_TIME overrides the iteration count (default 10x: single-digit
# iteration counts made per-op metrics of the fast DS benchmarks too
# noisy to diff across commits — see the iterations field of each row).
# The output JSON carries one record per benchmark with every metric Go
# reported (ns/op, B/op, allocs/op, states/op, ...) plus run metadata.
# The E13_MetricsPeterson family additionally reports search-shape
# ratios from the telemetry registry (por-pruned/op, dedup-hits/op) —
# those land in the snapshot like any other metric, so a diff between
# two BENCH_*.json files shows whether a timing shift came with a
# change in what the search explored.
# The script fails loudly — pipefail, an empty-output check, and a JSON
# validation of the snapshot — instead of committing a truncated or
# malformed file when the bench run breaks.
set -euo pipefail

pattern='.'
args=''
while [ $# -gt 0 ]; do
    case "$1" in
    -bench)
        pattern="$2"
        shift 2
        ;;
    *)
        args="$args $1"
        shift
        ;;
    esac
done

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
label="${BENCH_LABEL:-$commit}"
out="BENCH_${label}.json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# shellcheck disable=SC2086  # $args is intentionally word-split
go test -run='^$' -bench="$pattern" -benchtime="${BENCH_TIME:-10x}" $args . | tee "$raw"

# A bench run that produced no benchmark lines (bad -bench pattern,
# build drift, go test quirk) must not write an empty snapshot.
nbench=$(grep -c '^Benchmark' "$raw" || true)
if [ "$nbench" -eq 0 ]; then
    echo "bench-snapshot: no benchmark output for pattern '$pattern' — refusing to write $out" >&2
    exit 1
fi

awk -v commit="$commit" -v label="$label" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v goversion="$(go env GOVERSION)" -v goos="$(go env GOOS)" -v goarch="$(go env GOARCH)" '
function jsonstr(s) { gsub(/\\/, "\\\\", s); gsub(/"/, "\\\"", s); return s }
/^cpu: /  { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    # "BenchmarkName-8  N  v1 unit1  v2 unit2 ..." — every value/unit
    # pair after the iteration count is a metric.
    name = $1; sub(/-[0-9]+$/, "", name)
    rec = sprintf("    {\"name\": \"%s\", \"iterations\": %s", jsonstr(name), $2)
    for (i = 3; i + 1 <= NF; i += 2)
        rec = rec sprintf(", \"%s\": %s", jsonstr($(i + 1)), $i)
    rec = rec "}"
    recs[++n] = rec
}
END {
    printf "{\n"
    printf "  \"label\": \"%s\",\n", jsonstr(label)
    printf "  \"commit\": \"%s\",\n", jsonstr(commit)
    printf "  \"date\": \"%s\",\n", jsonstr(date)
    printf "  \"go\": \"%s\",\n", jsonstr(goversion)
    printf "  \"os\": \"%s\",\n", jsonstr(goos)
    printf "  \"arch\": \"%s\",\n", jsonstr(goarch)
    printf "  \"cpu\": \"%s\",\n", jsonstr(cpu)
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++)
        printf "%s%s\n", recs[i], (i < n ? "," : "")
    printf "  ]\n}\n"
}' "$raw" >"$out"

# Never publish a malformed snapshot: the file must parse as one JSON
# value before we report success.
if ! go run ./scripts/jsonlint <"$out"; then
    echo "bench-snapshot: generated $out is not valid JSON — removing it" >&2
    rm -f "$out"
    exit 1
fi

echo "wrote $out ($nbench benchmarks)"
