package repro

// Equivalence sweeps over the data-structure workload tier
// (testdata/ds): the same POR, incremental-closure and
// serial-vs-parallel contracts the flat litmus testdata suite pins,
// re-run over programs with arrays, CAS-retry loops and spin loops —
// the shapes the DS tier introduced. Each .lit file carries its own
// maxevents bound (the bound its expectations were calibrated at);
// the sweeps explore at that bound under RAR and unbounded under SC,
// whose state spaces are finite.

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/model/backends"
	"repro/internal/parser"
)

// dsFiles parses every program under testdata/ds.
func dsFiles(t *testing.T) map[string]*parser.File {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "ds", "*.lit"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata/ds programs: %v", err)
	}
	out := make(map[string]*parser.File, len(files))
	for _, fn := range files {
		out[filepath.Base(fn)] = parseFile(t, filepath.Join("ds", filepath.Base(fn)))
	}
	return out
}

func TestDSCheckPOR(t *testing.T) {
	for name, f := range dsFiles(t) {
		name, f := name, f
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prog, err := f.Prog()
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.NewConfig(prog, f.Init)
			for _, workers := range []int{1, 8} {
				a := explore.CheckPOR(cfg, explore.Options{MaxEvents: f.MaxEvents, Workers: workers})
				if !a.SetsCompared {
					t.Fatalf("workers=%d: audit did not compare fingerprint sets", workers)
				}
				if n := a.Divergences(); n != 0 {
					t.Fatalf("workers=%d: %d divergences: %s", workers, n, a)
				}
				if a.Reduced.Explored > a.Full.Explored {
					t.Fatalf("workers=%d: reduced explored more than full: %s", workers, a)
				}
			}
		})
	}
}

func TestDSCheckPORSC(t *testing.T) {
	m, err := backends.Get("sc")
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range dsFiles(t) {
		name, f := name, f
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prog, err := f.Prog()
			if err != nil {
				t.Fatal(err)
			}
			cfg := m.New(prog, f.Init)
			for _, workers := range []int{1, 8} {
				a := explore.CheckPOR(cfg, explore.Options{Workers: workers})
				if !a.SetsCompared {
					t.Fatalf("workers=%d: audit did not compare fingerprint sets", workers)
				}
				if n := a.Divergences(); n != 0 {
					t.Fatalf("workers=%d: %d divergences: %s", workers, n, a)
				}
				if a.Reduced.Explored > a.Full.Explored {
					t.Fatalf("workers=%d: reduced explored more than full: %s", workers, a)
				}
			}
		})
	}
}

func TestDSIncrementalEquivalence(t *testing.T) {
	for name, f := range dsFiles(t) {
		name, f := name, f
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prog, err := f.Prog()
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.NewConfig(prog, f.Init)
			for _, workers := range []int{1, 8} {
				plain := explore.Run(cfg, explore.Options{
					MaxEvents: f.MaxEvents, Workers: workers,
				})
				audited := explore.Run(cfg, explore.Options{
					MaxEvents: f.MaxEvents, Workers: workers, CheckIncremental: true,
				})
				if audited.ClosureMismatches != 0 {
					t.Fatalf("workers=%d: %d closure mismatches", workers, audited.ClosureMismatches)
				}
				if plain.Explored != audited.Explored ||
					plain.Terminated != audited.Terminated ||
					plain.Depth != audited.Depth ||
					plain.Truncated != audited.Truncated {
					t.Fatalf("workers=%d: audit changed the exploration: %+v != %+v",
						workers, plain, audited)
				}
			}
		})
	}
}

func TestDSSerialParallelEquivalence(t *testing.T) {
	for _, m := range backends.All() {
		for name, f := range dsFiles(t) {
			m, name, f := m, name, f
			t.Run(m.Name()+"/"+name, func(t *testing.T) {
				t.Parallel()
				prog, err := f.Prog()
				if err != nil {
					t.Fatal(err)
				}
				cfg := m.New(prog, f.Init)
				s := explore.Run(cfg, explore.Options{MaxEvents: f.MaxEvents, Workers: 1, POR: true})
				p := explore.Run(cfg, explore.Options{MaxEvents: f.MaxEvents, Workers: 8, POR: true})
				if s.Explored != p.Explored || s.Terminated != p.Terminated ||
					s.Depth != p.Depth || s.Truncated != p.Truncated {
					t.Fatalf("serial %+v != parallel %+v", s, p)
				}
			})
		}
	}
}
