// Package event defines the vocabulary of the C11 RAR fragment:
// threads, variables, values, the five action kinds of the paper
// (relaxed/acquire reads, relaxed/release writes, release-acquire
// updates), and tagged events Evt = G × Act × T (§3.1).
package event

import "fmt"

// Thread identifies a thread. Thread 0 is reserved for the initialising
// thread that writes the initial value of every variable (§3.1).
type Thread int

// InitThread is the special thread 0 that performs initialising writes.
const InitThread Thread = 0

// Var is a shared-memory variable (a location).
type Var string

// Val is the value domain. The paper leaves Val abstract; integers
// suffice for every program in the paper (booleans are 0/1).
type Val int

// Boolean values, used by flag variables in Peterson's algorithm.
const (
	False Val = 0
	True  Val = 1
)

// Kind enumerates the action kinds of Act (§2.2):
// rd(x,n), rdA(x,n), wr(x,n), wrR(x,n), updRA(x,m,n).
type Kind uint8

const (
	// RdX is a relaxed read rd(x, n).
	RdX Kind = iota
	// RdAcq is an acquiring read rdA(x, n).
	RdAcq
	// WrX is a relaxed write wr(x, n).
	WrX
	// WrRel is a releasing write wrR(x, n).
	WrRel
	// UpdRA is a release-acquire update updRA(x, m, n): an RMW that
	// atomically reads m and writes n.
	UpdRA
	// RdNA is a non-atomic read rdNA(x, n). Non-atomic accesses are
	// the extension the paper notes is straightforward (§2.1): they
	// behave like relaxed accesses in the memory model but racing on
	// them is undefined behaviour (see internal/races).
	RdNA
	// WrNA is a non-atomic write wrNA(x, n).
	WrNA
)

func (k Kind) String() string {
	switch k {
	case RdX:
		return "rd"
	case RdAcq:
		return "rdA"
	case WrX:
		return "wr"
	case WrRel:
		return "wrR"
	case UpdRA:
		return "updRA"
	case RdNA:
		return "rdNA"
	case WrNA:
		return "wrNA"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsRead reports whether the kind reads memory (Rd = RdX ∪ RdA ∪ U,
// plus non-atomic reads in the extended language).
func (k Kind) IsRead() bool {
	return k == RdX || k == RdAcq || k == UpdRA || k == RdNA
}

// IsWrite reports whether the kind writes memory (Wr = WrX ∪ WrR ∪ U,
// plus non-atomic writes in the extended language).
func (k Kind) IsWrite() bool {
	return k == WrX || k == WrRel || k == UpdRA || k == WrNA
}

// Atomic reports whether the kind is an atomic access; only
// non-atomic accesses may race (undefined behaviour).
func (k Kind) Atomic() bool { return k != RdNA && k != WrNA }

// IsUpdate reports whether the kind is an RMW update (U).
func (k Kind) IsUpdate() bool { return k == UpdRA }

// Acquiring reports whether the kind carries acquire synchronisation
// (RdA ⊇ U: updates are acquiring).
func (k Kind) Acquiring() bool { return k == RdAcq || k == UpdRA }

// Releasing reports whether the kind carries release synchronisation
// (WrR ⊇ U: updates are releasing).
func (k Kind) Releasing() bool { return k == WrRel || k == UpdRA }

// Action is an element of Act: a memory access description. For reads,
// RVal is the value read; for writes, WVal is the value written;
// updates use both.
type Action struct {
	Kind Kind
	Loc  Var
	RVal Val // value read (RdX, RdAcq, UpdRA)
	WVal Val // value written (WrX, WrRel, UpdRA)
}

// Rd returns the relaxed read action rd(x, n).
func Rd(x Var, n Val) Action { return Action{Kind: RdX, Loc: x, RVal: n} }

// RdA returns the acquiring read action rdA(x, n).
func RdA(x Var, n Val) Action { return Action{Kind: RdAcq, Loc: x, RVal: n} }

// Wr returns the relaxed write action wr(x, n).
func Wr(x Var, n Val) Action { return Action{Kind: WrX, Loc: x, WVal: n} }

// WrR returns the releasing write action wrR(x, n).
func WrR(x Var, n Val) Action { return Action{Kind: WrRel, Loc: x, WVal: n} }

// Upd returns the release-acquire update action updRA(x, m, n).
func Upd(x Var, m, n Val) Action {
	return Action{Kind: UpdRA, Loc: x, RVal: m, WVal: n}
}

// RdN returns the non-atomic read action rdNA(x, n).
func RdN(x Var, n Val) Action { return Action{Kind: RdNA, Loc: x, RVal: n} }

// WrN returns the non-atomic write action wrNA(x, n).
func WrN(x Var, n Val) Action { return Action{Kind: WrNA, Loc: x, WVal: n} }

// Var returns var(a), the variable accessed.
func (a Action) Var() Var { return a.Loc }

// RdVal returns rdval(a). It panics for non-reads, mirroring the
// partiality of rdval in the paper.
func (a Action) RdVal() Val {
	if !a.Kind.IsRead() {
		panic("event: RdVal of non-read action " + a.String())
	}
	return a.RVal
}

// WrVal returns wrval(a). It panics for non-writes.
func (a Action) WrVal() Val {
	if !a.Kind.IsWrite() {
		panic("event: WrVal of non-write action " + a.String())
	}
	return a.WVal
}

func (a Action) String() string {
	switch a.Kind {
	case RdX, RdAcq, RdNA:
		return fmt.Sprintf("%s(%s,%d)", a.Kind, a.Loc, a.RVal)
	case WrX, WrRel, WrNA:
		return fmt.Sprintf("%s(%s,%d)", a.Kind, a.Loc, a.WVal)
	case UpdRA:
		return fmt.Sprintf("%s(%s,%d,%d)", a.Kind, a.Loc, a.RVal, a.WVal)
	default:
		return fmt.Sprintf("act(%d)", a.Kind)
	}
}

// Tag uniquely identifies an event within an execution (the set G).
// In this implementation tags are the event's index in the execution's
// event arena, so Tag doubles as the carrier element for the relation
// engine.
type Tag int

// Event is an element of Evt = G × Act × T.
type Event struct {
	Tag Tag
	Act Action
	TID Thread
}

// Var, RdVal, WrVal lift the action accessors to events (§3.1).

// Var returns var(e).
func (e Event) Var() Var { return e.Act.Var() }

// RdVal returns rdval(e).
func (e Event) RdVal() Val { return e.Act.RdVal() }

// WrVal returns wrval(e).
func (e Event) WrVal() Val { return e.Act.WrVal() }

// IsRead reports e ∈ Rd.
func (e Event) IsRead() bool { return e.Act.Kind.IsRead() }

// IsWrite reports e ∈ Wr.
func (e Event) IsWrite() bool { return e.Act.Kind.IsWrite() }

// IsUpdate reports e ∈ U.
func (e Event) IsUpdate() bool { return e.Act.Kind.IsUpdate() }

// IsInit reports e ∈ IWr: an initialising write by thread 0.
func (e Event) IsInit() bool { return e.TID == InitThread && e.IsWrite() }

// Acquiring reports e ∈ RdA (which includes updates).
func (e Event) Acquiring() bool { return e.Act.Kind.Acquiring() }

// Atomic reports whether the event is an atomic access.
func (e Event) Atomic() bool { return e.Act.Kind.Atomic() }

// Releasing reports e ∈ WrR (which includes updates).
func (e Event) Releasing() bool { return e.Act.Kind.Releasing() }

func (e Event) String() string {
	return fmt.Sprintf("%d:%s@%s", e.TID, e.Act, tagString(e.Tag))
}

func tagString(g Tag) string { return fmt.Sprintf("g%d", int(g)) }
