package event

import (
	"testing"
	"testing/quick"
)

func TestKindPredicates(t *testing.T) {
	cases := []struct {
		k                             Kind
		read, write, update, acq, rel bool
		name                          string
	}{
		{RdX, true, false, false, false, false, "rd"},
		{RdAcq, true, false, false, true, false, "rdA"},
		{WrX, false, true, false, false, false, "wr"},
		{WrRel, false, true, false, false, true, "wrR"},
		{UpdRA, true, true, true, true, true, "updRA"},
	}
	for _, c := range cases {
		if c.k.IsRead() != c.read {
			t.Errorf("%v.IsRead = %v", c.k, c.k.IsRead())
		}
		if c.k.IsWrite() != c.write {
			t.Errorf("%v.IsWrite = %v", c.k, c.k.IsWrite())
		}
		if c.k.IsUpdate() != c.update {
			t.Errorf("%v.IsUpdate = %v", c.k, c.k.IsUpdate())
		}
		if c.k.Acquiring() != c.acq {
			t.Errorf("%v.Acquiring = %v", c.k, c.k.Acquiring())
		}
		if c.k.Releasing() != c.rel {
			t.Errorf("%v.Releasing = %v", c.k, c.k.Releasing())
		}
		if c.k.String() != c.name {
			t.Errorf("%v.String = %q, want %q", c.k, c.k.String(), c.name)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestActionConstructors(t *testing.T) {
	a := Rd("x", 5)
	if a.Kind != RdX || a.Var() != "x" || a.RdVal() != 5 {
		t.Fatalf("Rd broken: %+v", a)
	}
	b := RdA("y", 7)
	if b.Kind != RdAcq || b.RdVal() != 7 {
		t.Fatalf("RdA broken: %+v", b)
	}
	c := Wr("x", 3)
	if c.Kind != WrX || c.WrVal() != 3 {
		t.Fatalf("Wr broken: %+v", c)
	}
	d := WrR("z", 9)
	if d.Kind != WrRel || d.WrVal() != 9 {
		t.Fatalf("WrR broken: %+v", d)
	}
	u := Upd("t", 1, 2)
	if u.Kind != UpdRA || u.RdVal() != 1 || u.WrVal() != 2 {
		t.Fatalf("Upd broken: %+v", u)
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("RdVal of write", func() { Wr("x", 1).RdVal() })
	mustPanic("WrVal of read", func() { Rd("x", 1).WrVal() })
}

func TestActionString(t *testing.T) {
	cases := map[string]Action{
		"rd(x,1)":      Rd("x", 1),
		"rdA(y,2)":     RdA("y", 2),
		"wr(x,3)":      Wr("x", 3),
		"wrR(z,4)":     WrR("z", 4),
		"updRA(t,1,2)": Upd("t", 1, 2),
	}
	for want, a := range cases {
		if got := a.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestEventLifting(t *testing.T) {
	e := Event{Tag: 3, Act: Upd("turn", 1, 2), TID: 2}
	if e.Var() != "turn" || e.RdVal() != 1 || e.WrVal() != 2 {
		t.Fatal("event lifting broken")
	}
	if !e.IsRead() || !e.IsWrite() || !e.IsUpdate() {
		t.Fatal("update predicates broken")
	}
	if !e.Acquiring() || !e.Releasing() {
		t.Fatal("update must be acquiring and releasing")
	}
	if e.IsInit() {
		t.Fatal("thread-2 event misreported as init")
	}
	iw := Event{Tag: 0, Act: Wr("x", 0), TID: InitThread}
	if !iw.IsInit() {
		t.Fatal("initialising write not detected")
	}
	// A read by thread 0 is not an initialising *write*.
	ir := Event{Tag: 1, Act: Rd("x", 0), TID: InitThread}
	if ir.IsInit() {
		t.Fatal("init-thread read misreported as IWr")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Tag: 4, Act: Rd("x", 0), TID: 1}
	if got := e.String(); got != "1:rd(x,0)@g4" {
		t.Fatalf("String = %q", got)
	}
}

// Property: updates are exactly the actions that are both reads and
// writes; acquire implies read, release implies write.
func TestQuickKindLattice(t *testing.T) {
	f := func(k uint8) bool {
		kind := Kind(k % 7)
		if kind.IsUpdate() != (kind.IsRead() && kind.IsWrite()) {
			return false
		}
		if kind.Acquiring() && !kind.IsRead() {
			return false
		}
		if kind.Releasing() && !kind.IsWrite() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
