package races

import (
	"strings"
	"testing"

	"repro/internal/axiomatic"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/model"
)

// naMP builds message passing with non-atomic data accesses: the data
// variable d is written and read non-atomically; the flag f carries
// the synchronisation. sync selects the flag annotations.
func naMP(sync bool) (lang.Prog, map[event.Var]event.Val) {
	flagWrite := lang.AssignC("f", lang.V(1))
	flagRead := lang.X("f")
	if sync {
		flagWrite = lang.AssignRelC("f", lang.V(1))
		flagRead = lang.XA("f")
	}
	p := lang.Prog{
		lang.SeqC(lang.AssignNAC("d", lang.V(5)), flagWrite),
		lang.SeqC(
			lang.WhileC(lang.Eq(flagRead, lang.V(0)), lang.SkipC()),
			lang.AssignC("r", lang.XNA("d")),
		),
	}
	return p, map[event.Var]event.Val{"d": 0, "f": 0, "r": 0}
}

func TestNAEventsFlowThroughSemantics(t *testing.T) {
	s := core.Init(map[event.Var]event.Val{"d": 0})
	id, _ := s.InitialFor("d")
	s1, e, err := s.StepWriteKind(1, event.WrNA, "d", 5, id)
	if err != nil {
		t.Fatal(err)
	}
	if e.Act.Kind != event.WrNA || e.Atomic() {
		t.Fatalf("event = %v", e)
	}
	s2, r, err := s1.StepReadKind(2, event.RdNA, "d", e.Tag)
	if err != nil {
		t.Fatal(err)
	}
	if r.Act.Kind != event.RdNA || r.RdVal() != 5 {
		t.Fatalf("read = %v", r)
	}
	// NA accesses never synchronise.
	if !s2.SW().Empty() {
		t.Fatal("non-atomic rf must not synchronise")
	}
	// The state still satisfies the axioms (NA behaves like relaxed).
	if v := axiomatic.FromState(s2).Check(); v != nil {
		t.Fatalf("NA state invalid: %v", v)
	}
}

func TestStepKindRejectsWrongKinds(t *testing.T) {
	s := core.Init(map[event.Var]event.Val{"d": 0})
	id, _ := s.InitialFor("d")
	if _, _, err := s.StepReadKind(1, event.WrX, "d", id); err == nil {
		t.Fatal("read with write kind accepted")
	}
	if _, _, err := s.StepWriteKind(1, event.RdX, "d", 1, id); err == nil {
		t.Fatal("write with read kind accepted")
	}
	if _, _, err := s.StepReadKind(1, event.UpdRA, "d", id); err == nil {
		t.Fatal("read with update kind accepted")
	}
}

func TestOfDetectsUnorderedConflict(t *testing.T) {
	// Two threads touch d; thread 1 writes NA, thread 2 reads NA, no
	// synchronisation: racy.
	s := core.Init(map[event.Var]event.Val{"d": 0})
	id, _ := s.InitialFor("d")
	s, w, _ := s.StepWriteKind(1, event.WrNA, "d", 5, id)
	s, _, _ = s.StepReadKind(2, event.RdNA, "d", id)
	_ = w
	races := Of(axiomatic.FromState(s))
	if len(races) != 1 {
		t.Fatalf("races = %v", races)
	}
	if !strings.Contains(races[0].String(), "race between") {
		t.Fatal("String rendering")
	}
	if !Racy(axiomatic.FromState(s)) || !RacyState(s) {
		t.Fatal("Racy predicates disagree")
	}
}

func TestNoRaceWhenOrdered(t *testing.T) {
	// Same accesses but ordered through a release/acquire flag: no race.
	s := core.Init(map[event.Var]event.Val{"d": 0, "f": 0})
	id, _ := s.InitialFor("d")
	iff, _ := s.InitialFor("f")
	s, wd, _ := s.StepWriteKind(1, event.WrNA, "d", 5, id)
	s, wf, _ := s.StepWrite(1, true, "f", 1, iff)
	s, _, _ = s.StepRead(2, true, "f", wf.Tag)
	s, _, err := s.StepReadKind(2, event.RdNA, "d", wd.Tag)
	if err != nil {
		t.Fatal(err)
	}
	if Racy(axiomatic.FromState(s)) {
		t.Fatalf("hb-ordered NA accesses reported racy: %v", Of(axiomatic.FromState(s)))
	}
}

func TestNoRaceBetweenAtomics(t *testing.T) {
	// Concurrent relaxed atomics conflict but never race.
	s := core.Init(map[event.Var]event.Val{"x": 0})
	ix, _ := s.InitialFor("x")
	s, _, _ = s.StepWrite(1, false, "x", 1, ix)
	s, _, _ = s.StepRead(2, false, "x", ix)
	if Racy(axiomatic.FromState(s)) {
		t.Fatal("atomic accesses reported racy")
	}
}

func TestNoRaceSameThread(t *testing.T) {
	s := core.Init(map[event.Var]event.Val{"d": 0})
	id, _ := s.InitialFor("d")
	s, w, _ := s.StepWriteKind(1, event.WrNA, "d", 1, id)
	s, _, _ = s.StepReadKind(1, event.RdNA, "d", w.Tag)
	if Racy(axiomatic.FromState(s)) {
		t.Fatal("same-thread NA accesses reported racy")
	}
}

func TestReadReadNANotARace(t *testing.T) {
	// Two concurrent NA reads of the same location: no write, no race.
	s := core.Init(map[event.Var]event.Val{"d": 0})
	id, _ := s.InitialFor("d")
	s, _, _ = s.StepReadKind(1, event.RdNA, "d", id)
	s, _, _ = s.StepReadKind(2, event.RdNA, "d", id)
	if Racy(axiomatic.FromState(s)) {
		t.Fatal("read-read reported racy")
	}
}

// Synchronised NA message passing is race-free at every reachable
// state; the unsynchronised variant has a reachable race (undefined
// behaviour), with a short witness.
func TestNAMessagePassingRaceVerdicts(t *testing.T) {
	pSync, varsSync := naMP(true)
	free, truncated := RaceFree(core.NewConfig(pSync, varsSync), explore.Options{MaxEvents: 12})
	if !free {
		t.Fatal("synchronised NA message passing reported racy")
	}
	_ = truncated

	pRace, varsRace := naMP(false)
	trace, races, found := FindRace(core.NewConfig(pRace, varsRace), explore.Options{MaxEvents: 12})
	if !found {
		t.Fatal("unsynchronised NA message passing reported race-free")
	}
	if len(races) == 0 || len(trace.Configs) < 3 {
		t.Fatalf("degenerate witness: %v", races)
	}
	// The racy pair involves the NA data accesses.
	r := races[0]
	if r.A.Var() != "d" || r.A.Atomic() && r.B.Atomic() {
		t.Fatalf("unexpected race %v", r)
	}
}

// The language front end: NA assignments and loads round-trip through
// the interpreted semantics.
func TestNALanguageIntegration(t *testing.T) {
	p := lang.Prog{
		lang.AssignNAC("d", lang.V(1)),
		lang.AssignC("r", lang.XNA("d")),
	}
	cfg := core.NewConfig(p, map[event.Var]event.Val{"d": 0, "r": 0})
	// Workers 1: the closure mutates local state and the explorer
	// calls the property concurrently in parallel mode.
	sawNAWrite, sawNARead := false, false
	res := explore.Run(cfg, explore.Options{
		MaxEvents: 8,
		Workers:   1,
		Property: func(c model.Config) bool {
			for _, e := range c.(core.Config).S.Events() {
				switch e.Act.Kind {
				case event.WrNA:
					sawNAWrite = true
				case event.RdNA:
					sawNARead = true
				}
			}
			return true
		},
	})
	if res.Explored == 0 || !sawNAWrite || !sawNARead {
		t.Fatalf("NA events missing: write=%v read=%v", sawNAWrite, sawNARead)
	}
}

func BenchmarkRaceDetection(b *testing.B) {
	p, vars := naMP(true)
	cfg := core.NewConfig(p, vars)
	for i := 0; i < 8; i++ {
		succ := cfg.Successors()
		cfg = succ[len(succ)-1].C
	}
	x := axiomatic.FromState(cfg.S)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Racy(x) {
			b.Fatal("unexpected race")
		}
	}
}
