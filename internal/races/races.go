// Package races implements the data-race detection of the extended
// language with non-atomic accesses. The paper restricts its formal
// development to atomic (relaxed/release/acquire) accesses and notes
// that non-atomics are a straightforward extension that "potentially
// generate undefined behaviour" (§2.1); the accompanying cat model
// (c11_base_rar.cat, Appendix E) defines the race relation we
// implement here:
//
//	cnf = (((W×M) ∪ (M×W)) ∩ loc) \ id     conflicting accesses
//	dr  = (cnf \ (A×A)) \ thd \ (hb ∪ hb⁻¹) data races
//
// where A is the set of atomic events and thd relates same-thread
// events. An execution with a non-empty dr makes the whole program
// undefined ("undefined_unless empty dr as Dr").
package races

import (
	"fmt"

	"repro/internal/axiomatic"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/model"
)

// Race is one racy pair of events.
type Race struct {
	A, B event.Event
}

func (r Race) String() string {
	return fmt.Sprintf("race between %s and %s", r.A, r.B)
}

// Of returns the data races of an execution: conflicting accesses
// (same variable, at least one write, at least one non-atomic) from
// different threads unordered by happens-before. Each unordered pair
// is reported once, with the smaller tag first.
func Of(x axiomatic.Exec) []Race {
	hb := x.HB()
	var out []Race
	n := x.N()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			ea, eb := x.Events[a], x.Events[b]
			if ea.Var() != eb.Var() {
				continue
			}
			if !ea.IsWrite() && !eb.IsWrite() {
				continue // cnf needs at least one write
			}
			if ea.Atomic() && eb.Atomic() {
				continue // cnf \ (A×A)
			}
			if ea.TID == eb.TID {
				continue // \ thd
			}
			if hb.Has(a, b) || hb.Has(b, a) {
				continue // \ (hb ∪ hb⁻¹)
			}
			out = append(out, Race{A: ea, B: eb})
		}
	}
	return out
}

// Racy reports whether the execution contains a data race.
func Racy(x axiomatic.Exec) bool { return len(Of(x)) > 0 }

// RacyState reports whether the reachable state contains a data race.
func RacyState(s *core.State) bool { return Racy(axiomatic.FromState(s)) }

// FindRace explores the program's bounded state space for a reachable
// racy state and returns the shortest witness trace. A program with a
// reachable race has undefined behaviour under C11. Race detection is
// specific to the RAR backend: the happens-before order that renders
// a conflicting pair benign lives in the C11 state.
func FindRace(cfg core.Config, opts explore.Options) (explore.Trace, []Race, bool) {
	trace, found := explore.FindTrace(cfg, opts, func(c model.Config) bool {
		return RacyState(c.(core.Config).S)
	})
	if !found {
		return explore.Trace{}, nil, false
	}
	last := trace.Configs[len(trace.Configs)-1].(core.Config)
	return trace, Of(axiomatic.FromState(last.S)), true
}

// RaceFree verifies that no reachable state within the bounds is racy.
// The second result reports whether the search was truncated (absence
// of races is then relative to the bound).
func RaceFree(cfg core.Config, opts explore.Options) (bool, bool) {
	o := opts
	o.Property = func(c model.Config) bool { return !RacyState(c.(core.Config).S) }
	res := explore.Run(cfg, o)
	return res.Violation == nil, res.Truncated
}
