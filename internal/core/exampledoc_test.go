package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/lang"
)

// Building an execution step by step through the event semantics: the
// release/acquire handshake hides the stale initial value.
func ExampleState_StepRead() {
	s := core.Init(map[event.Var]event.Val{"d": 0, "f": 0})
	id, _ := s.InitialFor("d")
	iff, _ := s.InitialFor("f")

	s, _, _ = s.StepWrite(1, false, "d", 5, id)
	s, wf, _ := s.StepWrite(1, true, "f", 1, iff)
	s, _, _ = s.StepRead(2, true, "f", wf.Tag)

	for _, w := range s.ObservableFor(2, "d") {
		fmt.Println(s.Event(w).Act)
	}
	// Output:
	// wr(d,5)
}

// The interpreted semantics enumerates all memory-model choices for a
// program step; the explorer uses this to cover the state space.
func ExampleConfig_Successors() {
	p := lang.Prog{lang.AssignC("r", lang.X("x"))}
	c := core.NewConfig(p, map[event.Var]event.Val{"x": 7, "r": 0})
	for _, s := range c.Successors() {
		fmt.Println(s.E.Act)
	}
	// Output:
	// rd(x,7)
}

// Updates may not observe covered writes: the second swap is forced to
// read the first.
func ExampleState_StepRMW() {
	s := core.Init(map[event.Var]event.Val{"turn": 1})
	w0, _ := s.Last("turn")
	s, u1, _ := s.StepRMW(1, "turn", 2, w0)
	if _, _, err := s.StepRMW(2, "turn", 1, w0); err != nil {
		fmt.Println("covered:", err != nil)
	}
	s, u2, _ := s.StepRMW(2, "turn", 1, u1.Tag)
	fmt.Println(u2.Act)
	_ = s
	// Output:
	// covered: true
	// updRA(turn,2,1)
}
