package core

import (
	"sync"

	"repro/internal/event"
	"repro/internal/fingerprint"
	"repro/internal/lang"
)

// This file implements the interpreted semantics of §3.3: the
// uninterpreted program semantics (internal/lang) coupled with the RA
// event semantics. A configuration is a pair (P, σ); the memory model
// constrains which read values are possible.

// Config is a configuration (P, σ).
type Config struct {
	P lang.Prog
	S *State
}

// NewConfig pairs a program with an initial state for the given
// variable initialisation.
func NewConfig(p lang.Prog, vars map[event.Var]event.Val) Config {
	return Config{P: p, S: Init(vars)}
}

// Succ is one interpreted transition (P, σ) ==(w,e)==>_RA (P', σ').
type Succ struct {
	C Config
	// Silent reports a τ step (no event generated; W and E are unset).
	Silent bool
	// W is the write observed by the transition (⊥ never occurs here:
	// silent steps carry no observation).
	W event.Tag
	// E is the event generated.
	E event.Event
	// T is the thread that moved.
	T event.Thread
}

// Successors returns every interpreted transition enabled in c,
// combining each uninterpreted program step with each memory-model
// choice of observed write. Per-step expansion (used by the explorer's
// partial-order reduction to expand only a persistent subset of the
// enabled threads) is StepSuccessors in por.go.
func (c Config) Successors() []Succ {
	steps := lang.ProgSteps(c.P)
	out := make([]Succ, 0, 2*len(steps))
	for _, ps := range steps {
		out = c.appendStepSuccessors(out, ps)
	}
	return out
}

// Key returns a canonical string identity for the configuration, used
// for exact state-space deduplication. It identifies configurations up
// to the interleaving that produced them (see
// State.CanonicalSignature): same per-thread residual programs +
// isomorphic C11 state ⇒ same futures, so exploring one representative
// suffices. The explorer's hot path uses Fingerprint instead; Key is
// the exact slow path kept for collision cross-checking.
func (c Config) Key() string {
	return c.P.String() + "\x00" + c.S.CanonicalSignature()
}

// progBufPool recycles the scratch buffers for program signatures.
var progBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// Fingerprint returns a 128-bit canonical identity for the
// configuration — the hashed equivalent of Key, computed without fmt
// or intermediate signature strings. Two configurations with equal
// keys always have equal fingerprints; distinct keys collide only with
// 128-bit hash probability, which the explorer's collision-check mode
// can audit against Key.
func (c Config) Fingerprint() fingerprint.FP {
	h := fingerprint.NewHasher()
	sfp := c.S.Fingerprint()
	h.Word(sfp.Hi)
	h.Word(sfp.Lo)
	bp := progBufPool.Get().(*[]byte)
	buf := lang.AppendProgSig((*bp)[:0], c.P)
	h.Bytes(buf)
	*bp = buf
	progBufPool.Put(bp)
	return h.Sum()
}

// Terminated reports whether every thread of the configuration has
// terminated.
func (c Config) Terminated() bool { return c.P.Terminated() }
