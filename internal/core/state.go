// Package core implements the paper's primary contribution: the
// operational semantics for the RAR fragment of C11 (§3).
//
// A C11 state is a triple ((D, sb), rf, mo) of an event set with
// sequenced-before, reads-from and modification-order relations
// (Definition 3.1). The event semantics (Figure 3) adds one event per
// step, validating reads on the fly against the per-thread observable
// writes derived from the encountered-write set — the paper's central
// notion of observability (§3.2). The interpreted semantics (§3.3)
// couples this with the uninterpreted command semantics of
// internal/lang.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/bits"
	"repro/internal/event"
	"repro/internal/fingerprint"
	"repro/internal/relation"
)

// State is a C11 state ((D, sb), rf, mo). States are immutable once
// built: the transition functions return new states. Derived orders
// (sw, hb, fr, eco), the per-thread observability sets and the
// canonical fingerprint are memoised on first use, guarded by a mutex
// because silent program steps share the state between configurations
// that a parallel explorer may expand concurrently.
type State struct {
	events []event.Event // D; index is the event's Tag
	sb     relation.Rel  // sequenced-before
	rf     relation.Rel  // reads-from (Wr × Rd)
	mo     relation.Rel  // modification order (Wr × Wr)

	memo struct {
		mu      sync.Mutex
		hb, eco *relation.Rel
		comb    *relation.Rel // (eco? ; hb?) — thread-independent EW kernel
		wr      *bits.Set     // all writes
		covered *bits.Set     // CW
		ow      map[event.Thread]*bits.Set
		fp      fingerprint.FP
		fpOK    bool
	}
}

// Init returns an initial state σ₀ = ((I, ∅), ∅, ∅) with one
// initialising write per variable (§3.1). Variables are sorted so that
// equal initialisations produce identical tag assignments.
func Init(vars map[event.Var]event.Val) *State {
	names := make([]event.Var, 0, len(vars))
	for x := range vars {
		names = append(names, x)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })

	n := len(names)
	s := &State{
		events: make([]event.Event, 0, n),
		sb:     relation.New(n),
		rf:     relation.New(n),
		mo:     relation.New(n),
	}
	for i, x := range names {
		s.events = append(s.events, event.Event{
			Tag: event.Tag(i),
			Act: event.Wr(x, vars[x]),
			TID: event.InitThread,
		})
	}
	return s
}

// NumEvents returns |D|.
func (s *State) NumEvents() int { return len(s.events) }

// Event returns the event with the given tag.
func (s *State) Event(g event.Tag) event.Event { return s.events[int(g)] }

// Events returns a copy of D in tag order.
func (s *State) Events() []event.Event {
	out := make([]event.Event, len(s.events))
	copy(out, s.events)
	return out
}

// SB returns a copy of the sequenced-before relation.
func (s *State) SB() relation.Rel { return s.sb.Clone() }

// RF returns a copy of the reads-from relation.
func (s *State) RF() relation.Rel { return s.rf.Clone() }

// MO returns a copy of the modification order.
func (s *State) MO() relation.Rel { return s.mo.Clone() }

// sbHas etc. give cheap read access without cloning.

// SBHas reports (a, b) ∈ sb.
func (s *State) SBHas(a, b event.Tag) bool { return s.sb.Has(int(a), int(b)) }

// RFHas reports (a, b) ∈ rf.
func (s *State) RFHas(a, b event.Tag) bool { return s.rf.Has(int(a), int(b)) }

// MOHas reports (a, b) ∈ mo.
func (s *State) MOHas(a, b event.Tag) bool { return s.mo.Has(int(a), int(b)) }

// Writes returns the set of write events Wr ∩ D (includes updates and
// initialising writes) as tags.
func (s *State) Writes() bits.Set {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	return s.writesLocked().Clone()
}

// writesLocked returns the memoised write set; memo.mu must be held.
func (s *State) writesLocked() *bits.Set {
	if s.memo.wr == nil {
		w := bits.New(len(s.events))
		for i, e := range s.events {
			if e.IsWrite() {
				w.Set(i)
			}
		}
		s.memo.wr = &w
	}
	return s.memo.wr
}

// WritesTo returns the tags of writes to variable x in mo-respecting
// tag order (unsorted by mo; use Last or MO for ordering).
func (s *State) WritesTo(x event.Var) []event.Tag {
	var out []event.Tag
	for i, e := range s.events {
		if e.IsWrite() && e.Var() == x {
			out = append(out, event.Tag(i))
		}
	}
	return out
}

// Initials returns I_σ = D ∩ IWr.
func (s *State) Initials() []event.Tag {
	var out []event.Tag
	for i, e := range s.events {
		if e.IsInit() {
			out = append(out, event.Tag(i))
		}
	}
	return out
}

// InitialFor returns the initialising write to x.
func (s *State) InitialFor(x event.Var) (event.Tag, bool) {
	for i, e := range s.events {
		if e.IsInit() && e.Var() == x {
			return event.Tag(i), true
		}
	}
	return 0, false
}

// Vars returns the variables written anywhere in the state, sorted.
func (s *State) Vars() []event.Var {
	seen := map[event.Var]bool{}
	for _, e := range s.events {
		if e.IsWrite() {
			seen[e.Var()] = true
		}
	}
	out := make([]event.Var, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ThreadEvents returns the tags of thread t's events in sb order
// (which coincides with tag order since events are appended).
func (s *State) ThreadEvents(t event.Thread) []event.Tag {
	var out []event.Tag
	for i, e := range s.events {
		if e.TID == t {
			out = append(out, event.Tag(i))
		}
	}
	return out
}

// clone returns a deep copy of s with relation carriers grown to
// accommodate one more event, and memoised orders dropped.
func (s *State) cloneGrow() *State {
	n := len(s.events) + 1
	out := &State{
		events: make([]event.Event, len(s.events), n),
		sb:     s.sb.Grow(n),
		rf:     s.rf.Grow(n),
		mo:     s.mo.Grow(n),
	}
	copy(out.events, s.events)
	return out
}

// addEvent implements (D, sb) + e: e is appended and sb gains
// {e' | tid(e') ∈ {tid(e), 0}} × {e} (Figure 3).
func (s *State) addEvent(a event.Action, t event.Thread) event.Tag {
	g := event.Tag(len(s.events))
	s.events = append(s.events, event.Event{Tag: g, Act: a, TID: t})
	for i, e := range s.events[:int(g)] {
		if e.TID == t || e.TID == event.InitThread {
			s.sb.Add(i, int(g))
		}
	}
	return g
}

// Fingerprint returns a 128-bit canonical identity of the state up to
// the interleaving that built it — the binary, allocation-free
// equivalent of CanonicalSignature (same renaming, same identified
// states, modulo hash collisions over the 128-bit key). The explorer
// keys its seen-set by this value; CanonicalSignature remains the
// exact slow path behind the collision-checking debug option.
func (s *State) Fingerprint() fingerprint.FP {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	if !s.memo.fpOK {
		s.memo.fp = fingerprint.Canonical(s.events, s.rf, s.mo)
		s.memo.fpOK = true
	}
	return s.memo.fp
}

// Signature returns a canonical string identifying the state up to
// event identity: the event list plus the rf and mo relations (sb is
// determined by the event order and thread structure). Tag order —
// i.e. the interleaving that built the state — is visible in this
// signature; use CanonicalSignature to identify states up to
// interleaving.
func (s *State) Signature() string {
	var b strings.Builder
	for _, e := range s.events {
		fmt.Fprintf(&b, "%d:%s|", e.TID, e.Act)
	}
	b.WriteString("rf")
	b.WriteString(s.rf.String())
	b.WriteString("mo")
	b.WriteString(s.mo.String())
	return b.String()
}

// CanonicalSignature identifies the state up to the interleaving that
// built it: events are renamed to (thread, position-in-thread) — with
// initialising writes ordered by variable — and rf/mo are printed over
// the renamed events. Two interleavings of the same per-thread event
// sequences producing the same relations share a canonical signature;
// by Propositions 2.3/4.1 such states also have identical futures, so
// the explorer uses this as its deduplication key (a symmetry
// reduction the operational semantics enables: a state is a C11
// state, not an interleaving).
func (s *State) CanonicalSignature() string {
	n := len(s.events)
	type keyed struct {
		tid  event.Thread
		pos  int
		name event.Var
		tag  int
	}
	ks := make([]keyed, n)
	perThread := map[event.Thread]int{}
	for i, e := range s.events {
		ks[i] = keyed{tid: e.TID, pos: perThread[e.TID], name: e.Var(), tag: i}
		perThread[e.TID]++
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].tid != ks[j].tid {
			return ks[i].tid < ks[j].tid
		}
		if ks[i].tid == event.InitThread && ks[i].name != ks[j].name {
			return ks[i].name < ks[j].name
		}
		return ks[i].pos < ks[j].pos
	})
	canon := make([]int, n)
	var b strings.Builder
	for i, k := range ks {
		canon[k.tag] = i
		fmt.Fprintf(&b, "%d:%s|", k.tid, s.events[k.tag].Act)
	}
	appendRel := func(label string, r relation.Rel) {
		pairs := r.Pairs()
		renamed := make([][2]int, 0, len(pairs))
		for _, p := range pairs {
			renamed = append(renamed, [2]int{canon[p[0]], canon[p[1]]})
		}
		sort.Slice(renamed, func(i, j int) bool {
			if renamed[i][0] != renamed[j][0] {
				return renamed[i][0] < renamed[j][0]
			}
			return renamed[i][1] < renamed[j][1]
		})
		b.WriteString(label)
		for _, p := range renamed {
			fmt.Fprintf(&b, "(%d,%d)", p[0], p[1])
		}
	}
	appendRel("rf", s.rf)
	appendRel("mo", s.mo)
	return b.String()
}

// String renders a readable summary of the state.
func (s *State) String() string {
	var b strings.Builder
	b.WriteString("events:\n")
	for _, e := range s.events {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	fmt.Fprintf(&b, "sb: %s\nrf: %s\nmo: %s\n", s.sb, s.rf, s.mo)
	return b.String()
}
