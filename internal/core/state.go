// Package core implements the paper's primary contribution: the
// operational semantics for the RAR fragment of C11 (§3).
//
// A C11 state is a triple ((D, sb), rf, mo) of an event set with
// sequenced-before, reads-from and modification-order relations
// (Definition 3.1). The event semantics (Figure 3) adds one event per
// step, validating reads on the fly against the per-thread observable
// writes derived from the encountered-write set — the paper's central
// notion of observability (§3.2). The interpreted semantics (§3.3)
// couples this with the uninterpreted command semantics of
// internal/lang.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/bits"
	"repro/internal/event"
	"repro/internal/fingerprint"
	"repro/internal/relation"
)

// State is a C11 state ((D, sb), rf, mo). States are immutable once
// built: the transition functions return new states. Derived orders
// (sw, hb, fr, eco), the per-thread observability sets and the
// canonical fingerprint are memoised on first use, guarded by a mutex
// because silent program steps share the state between configurations
// that a parallel explorer may expand concurrently.
//
// Successor states are cheap on two axes. First, sb/rf/mo are
// copy-on-write (relation.ShareGrow): a successor aliases its parent's
// rows and copies only the rows its one new event touches. Second, a
// successor records its provenance (the inc field) so the derived
// closures hb/eco/comb are not recomputed from scratch but inherited
// from the parent's memoised closures and extended by the new event's
// edges alone — see incremental.go.
type State struct {
	events []event.Event // D; index is the event's Tag
	// sbP is sequenced-before stored transposed: row g holds the
	// sb-*predecessors* of g. Every sb edge ends at the newest event
	// (earlier events of the stepping thread and the initialising
	// writes precede it), so in predecessor form a step writes exactly
	// one freshly-carved row — the row-major form copied one COW row
	// per predecessor. The derived closures hb/eco/comb are memoised
	// in the same orientation (see orders.go); rf and mo stay
	// row-major, as the step rules and observability kernels consume
	// their successor rows.
	sbP relation.Rel
	rf  relation.Rel // reads-from (Wr × Rd)
	mo  relation.Rel // modification order (Wr × Wr)

	// Eagerly-maintained indexes, extended by addEvent/insertMO and
	// immutable once the building step returns. They replace the
	// full-event rescans previously hidden in EncounteredWrites,
	// HBCone, Last, WritesTo and sb construction.
	threads  []threadEvents // per-thread event sets, in order of first action
	writes   bits.Set       // Wr ∩ D
	writesBy []varWrites    // per-variable writes in tag order
	lastW    []lastWrite    // mo-maximal write per variable

	// inc links a successor to the parent it was derived from, until
	// the derived orders have been inherited (see incremental.go).
	inc incProvenance

	// alloc backs the copy-on-write rows of this state's relations and
	// inherited closures. Embedded so a successor costs one fewer
	// allocation; carving happens only while the state is being built
	// (single goroutine) and later under memo.mu (deriveIncLocked).
	alloc relation.Allocator

	// fpAcc is the eagerly-maintained canonical fingerprint
	// accumulator: a commutative multiset hash over the events and
	// rf/mo pairs under the (thread, position-in-thread) renaming of
	// CanonicalSignature. Appending an event never changes the
	// canonical name of an existing one, so a successor's identity is
	// the parent's accumulator plus the new event's items — the
	// explorer's deduplication key costs O(new edges) per state instead
	// of an O(n + pairs) canonical rehash.
	fpAcc fingerprint.Acc

	memo struct {
		mu         sync.Mutex
		hbP, ecoP  relation.Rel // transposed closures: row g = predecessors of g
		combP      relation.Rel // (eco? ; hb?)⁻¹ — thread-independent EW kernel
		covered    bits.Set     // CW
		hbOK    bool
		ecoOK   bool
		combOK  bool
		cwOK    bool
		ew      []threadSet // EW_σ(t), appended on first query per thread
		ow      []threadSet // OW_σ(t), likewise
		// ewBuf/owBuf are the inline backing of ew/ow for the common
		// thread counts — the lists spill to the heap past four
		// threads. Pooled shells reuse the arrays across successors.
		ewBuf, owBuf [4]threadSet
	}
}

// threadSet is one memoised per-thread set (EW or OW); a slice of
// these beats a map for the handful of threads a program has.
type threadSet struct {
	tid event.Thread
	set bits.Set
}

// threadEvents is one per-thread entry of the event index.
type threadEvents struct {
	tid event.Thread
	evs bits.Set
}

// varWrites lists the writes to one variable in tag order.
type varWrites struct {
	x    event.Var
	tags []event.Tag
}

// lastWrite records σ.last(x), the mo-maximal write to x.
type lastWrite struct {
	x event.Var
	w event.Tag
}

// threadEvs returns the event set of thread t (the zero set when t has
// no events). The result aliases the index; do not mutate.
func (s *State) threadEvs(t event.Thread) bits.Set {
	for i := range s.threads {
		if s.threads[i].tid == t {
			return s.threads[i].evs
		}
	}
	return bits.Set{}
}

// writesTo returns the write-tag list for x (aliases the index).
func (s *State) writesTo(x event.Var) []event.Tag {
	for i := range s.writesBy {
		if s.writesBy[i].x == x {
			return s.writesBy[i].tags
		}
	}
	return nil
}

// Init returns an initial state σ₀ = ((I, ∅), ∅, ∅) with one
// initialising write per variable (§3.1). Variables are sorted so that
// equal initialisations produce identical tag assignments.
func Init(vars map[event.Var]event.Val) *State {
	names := make([]event.Var, 0, len(vars))
	for x := range vars {
		names = append(names, x)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })

	n := len(names)
	s := &State{
		events: make([]event.Event, 0, n),
		sbP:    relation.New(n),
		rf:     relation.New(n),
		mo:     relation.New(n),
		writes: bits.New(n),
	}
	s.alloc.Init(n)
	for i, x := range names {
		s.events = append(s.events, event.Event{
			Tag: event.Tag(i),
			Act: event.Wr(x, vars[x]),
			TID: event.InitThread,
		})
		s.noteEvent(event.InitThread, i, n)
		s.noteWrite(x, event.Tag(i))
		// Canonical position of an initialising write is its index in
		// the variable-sorted order — exactly the construction order.
		s.fpAcc.Add(fingerprint.EventItem(event.InitThread, i, s.events[i].Act))
	}
	return s
}

// recycle returns a dead state's reusable allocations to the arena
// (see arena.go). The caller guarantees nothing references s anymore:
// the explorer only discards successors that deduplicated against its
// seen set or were suppressed by the progress bound — never expanded,
// never audited, never stored — so no other state aliases rows carved
// from s's allocator.
func (s *State) recycle() {
	releaseState(s)
}

// NumEvents returns |D|.
func (s *State) NumEvents() int { return len(s.events) }

// Event returns the event with the given tag.
func (s *State) Event(g event.Tag) event.Event { return s.events[int(g)] }

// Events returns a copy of D in tag order.
func (s *State) Events() []event.Event {
	out := make([]event.Event, len(s.events))
	copy(out, s.events)
	return out
}

// SB returns a copy of the sequenced-before relation (in successor
// orientation; the maintained form is transposed).
func (s *State) SB() relation.Rel { return s.sbP.Converse() }

// RF returns a copy of the reads-from relation.
func (s *State) RF() relation.Rel { return s.rf.Clone() }

// MO returns a copy of the modification order.
func (s *State) MO() relation.Rel { return s.mo.Clone() }

// sbHas etc. give cheap read access without cloning.

// SBHas reports (a, b) ∈ sb.
func (s *State) SBHas(a, b event.Tag) bool { return s.sbP.Has(int(b), int(a)) }

// RFHas reports (a, b) ∈ rf.
func (s *State) RFHas(a, b event.Tag) bool { return s.rf.Has(int(a), int(b)) }

// MOHas reports (a, b) ∈ mo.
func (s *State) MOHas(a, b event.Tag) bool { return s.mo.Has(int(a), int(b)) }

// Writes returns the set of write events Wr ∩ D (includes updates and
// initialising writes) as tags. The set is maintained incrementally on
// every addEvent, so this is a copy, not a scan.
func (s *State) Writes() bits.Set { return s.writes.Clone() }

// WritesTo returns the tags of writes to variable x in mo-respecting
// tag order (unsorted by mo; use Last or MO for ordering). Served from
// the per-variable write index.
func (s *State) WritesTo(x event.Var) []event.Tag {
	tags := s.writesTo(x)
	if tags == nil {
		return nil
	}
	out := make([]event.Tag, len(tags))
	copy(out, tags)
	return out
}

// Initials returns I_σ = D ∩ IWr.
func (s *State) Initials() []event.Tag {
	init := s.threadEvs(event.InitThread)
	out := make([]event.Tag, 0, init.Count())
	init.ForEach(func(i int) { out = append(out, event.Tag(i)) })
	return out
}

// InitialFor returns the initialising write to x.
func (s *State) InitialFor(x event.Var) (event.Tag, bool) {
	for i, e := range s.events {
		if e.IsInit() && e.Var() == x {
			return event.Tag(i), true
		}
	}
	return 0, false
}

// Vars returns the variables written anywhere in the state, sorted.
func (s *State) Vars() []event.Var {
	out := make([]event.Var, 0, len(s.writesBy))
	for i := range s.writesBy {
		out = append(out, s.writesBy[i].x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ThreadEvents returns the tags of thread t's events in sb order
// (which coincides with tag order since events are appended).
func (s *State) ThreadEvents(t event.Thread) []event.Tag {
	evs := s.threadEvs(t)
	out := make([]event.Tag, 0, evs.Count())
	evs.ForEach(func(i int) { out = append(out, event.Tag(i)) })
	return out
}

// cloneGrow returns a copy of s with relation carriers grown to
// accommodate one more event. The copy is shallow where immutability
// allows: sb/rf/mo share the parent's rows copy-on-write through one
// shared allocator, the index slices alias the parent outright (the
// note* helpers below replace them copy-on-write when they extend an
// entry), and the memoised orders are left to be inherited through the
// inc provenance set by the caller.
func (s *State) cloneGrow() *State {
	n := len(s.events) + 1
	out := newState(n)
	out.events = out.events[:len(s.events)]
	out.threads = s.threads
	out.writes = s.writes
	out.writesBy = s.writesBy
	out.lastW = s.lastW
	out.fpAcc = s.fpAcc
	out.alloc.Init(n)
	out.sbP = s.sbP.ShareGrowAlloc(n, &out.alloc)
	out.rf = s.rf.ShareGrowAlloc(n, &out.alloc)
	out.mo = s.mo.ShareGrowAlloc(n, &out.alloc)
	copy(out.events, s.events)
	return out
}

// noteEvent records event i of thread t in the per-thread index; n is
// the carrier size to grow the thread's set to. Neither the parent's
// slice nor its sets are mutated: the outer slice and the one extended
// entry are replaced by copies.
func (s *State) noteEvent(t event.Thread, i, n int) {
	out := make([]threadEvents, len(s.threads), len(s.threads)+1)
	copy(out, s.threads)
	s.threads = out
	for k := range s.threads {
		if s.threads[k].tid == t {
			// Successors alias the index outright, so the replacement
			// set is carved shared (slab-backed), not inline.
			evs := s.alloc.NewSharedSet(n)
			evs.Or(s.threads[k].evs)
			evs.Set(i)
			s.threads[k].evs = evs
			return
		}
	}
	evs := s.alloc.NewSharedSet(n)
	evs.Set(i)
	s.threads = append(s.threads, threadEvents{tid: t, evs: evs})
}

// noteWrite records write g to x in the write indexes, replacing the
// aliased parent slices copy-on-write (read steps never touch them). A
// first write to x is trivially mo-maximal; insertMO keeps lastW
// current for subsequent writes.
func (s *State) noteWrite(x event.Var, g event.Tag) {
	c := int(g) + 1
	if l := s.writes.Len(); l > c {
		c = l
	}
	w := s.alloc.NewSharedSet(c)
	w.Or(s.writes)
	w.Set(int(g))
	s.writes = w
	for i := range s.writesBy {
		if s.writesBy[i].x == x {
			out := make([]varWrites, len(s.writesBy))
			copy(out, s.writesBy)
			old := out[i].tags
			tags := make([]event.Tag, len(old)+1)
			copy(tags, old)
			tags[len(old)] = g
			out[i].tags = tags
			s.writesBy = out
			return
		}
	}
	s.writesBy = append(append([]varWrites(nil), s.writesBy...), varWrites{x: x, tags: []event.Tag{g}})
	s.lastW = append(append([]lastWrite(nil), s.lastW...), lastWrite{x: x, w: g})
}

// addEvent implements (D, sb) + e: e is appended and sb gains
// {e' | tid(e') ∈ {tid(e), 0}} × {e} (Figure 3). The sb predecessors
// are read off the per-thread index instead of rescanning D.
func (s *State) addEvent(a event.Action, t event.Thread) event.Tag {
	g := event.Tag(len(s.events))
	gi := int(g)
	n := gi + 1
	s.events = append(s.events, event.Event{Tag: g, Act: a, TID: t})
	// In predecessor orientation the new sb edges are one word-parallel
	// row fill: g's row gains the initialising writes and the stepping
	// thread's events. (Row-major sb paid one copy-on-write row copy
	// per predecessor here.)
	s.sbP.UnionRow(gi, s.threadEvs(event.InitThread))
	pos := 0
	if t != event.InitThread {
		tEvs := s.threadEvs(t)
		s.sbP.UnionRow(gi, tEvs)
		pos = tEvs.Count()
	}
	s.noteEvent(t, gi, n)
	if a.Kind.IsWrite() {
		s.noteWrite(a.Loc, g)
	}
	s.fpAcc.Add(fingerprint.EventItem(t, pos, a))
	return g
}

// Fingerprint returns a 128-bit canonical identity of the state up to
// the interleaving that built it — the binary, allocation-free
// equivalent of CanonicalSignature (same renaming, same identified
// states, modulo hash collisions over the 128-bit key). The underlying
// multiset accumulator is maintained incrementally as events and edges
// are added, so this is a finalisation, not a computation. The
// explorer keys its seen-set by this value; CanonicalSignature remains
// the exact slow path behind the collision-checking debug option.
func (s *State) Fingerprint() fingerprint.FP {
	return fingerprint.Finalize(s.fpAcc, len(s.events))
}

// posOf returns the canonical position of event g: its index within
// its thread's event sequence (for initialising writes, the
// variable-sorted index — which coincides with tag order).
func (s *State) posOf(g int) int {
	return s.threadEvs(s.events[g].TID).Rank(g)
}

// notePair accumulates a new rf/mo pair (a, b) into the fingerprint;
// both events must already be indexed.
func (s *State) notePair(label uint64, a, b int) {
	s.fpAcc.Add(fingerprint.PairItem(label,
		s.events[a].TID, s.posOf(a),
		s.events[b].TID, s.posOf(b)))
}

// Signature returns a canonical string identifying the state up to
// event identity: the event list plus the rf and mo relations (sb is
// determined by the event order and thread structure). Tag order —
// i.e. the interleaving that built the state — is visible in this
// signature; use CanonicalSignature to identify states up to
// interleaving.
func (s *State) Signature() string {
	var b strings.Builder
	for _, e := range s.events {
		fmt.Fprintf(&b, "%d:%s|", e.TID, e.Act)
	}
	b.WriteString("rf")
	b.WriteString(s.rf.String())
	b.WriteString("mo")
	b.WriteString(s.mo.String())
	return b.String()
}

// CanonicalSignature identifies the state up to the interleaving that
// built it: events are renamed to (thread, position-in-thread) — with
// initialising writes ordered by variable — and rf/mo are printed over
// the renamed events. Two interleavings of the same per-thread event
// sequences producing the same relations share a canonical signature;
// by Propositions 2.3/4.1 such states also have identical futures, so
// the explorer uses this as its deduplication key (a symmetry
// reduction the operational semantics enables: a state is a C11
// state, not an interleaving).
func (s *State) CanonicalSignature() string {
	n := len(s.events)
	type keyed struct {
		tid  event.Thread
		pos  int
		name event.Var
		tag  int
	}
	ks := make([]keyed, n)
	perThread := map[event.Thread]int{}
	for i, e := range s.events {
		ks[i] = keyed{tid: e.TID, pos: perThread[e.TID], name: e.Var(), tag: i}
		perThread[e.TID]++
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].tid != ks[j].tid {
			return ks[i].tid < ks[j].tid
		}
		if ks[i].tid == event.InitThread && ks[i].name != ks[j].name {
			return ks[i].name < ks[j].name
		}
		return ks[i].pos < ks[j].pos
	})
	canon := make([]int, n)
	var b strings.Builder
	for i, k := range ks {
		canon[k.tag] = i
		fmt.Fprintf(&b, "%d:%s|", k.tid, s.events[k.tag].Act)
	}
	appendRel := func(label string, r relation.Rel) {
		pairs := r.Pairs()
		renamed := make([][2]int, 0, len(pairs))
		for _, p := range pairs {
			renamed = append(renamed, [2]int{canon[p[0]], canon[p[1]]})
		}
		sort.Slice(renamed, func(i, j int) bool {
			if renamed[i][0] != renamed[j][0] {
				return renamed[i][0] < renamed[j][0]
			}
			return renamed[i][1] < renamed[j][1]
		})
		b.WriteString(label)
		for _, p := range renamed {
			fmt.Fprintf(&b, "(%d,%d)", p[0], p[1])
		}
	}
	appendRel("rf", s.rf)
	appendRel("mo", s.mo)
	return b.String()
}

// String renders a readable summary of the state.
func (s *State) String() string {
	var b strings.Builder
	b.WriteString("events:\n")
	for _, e := range s.events {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	fmt.Fprintf(&b, "sb: %s\nrf: %s\nmo: %s\n", s.sbP.Converse(), s.rf, s.mo)
	return b.String()
}
