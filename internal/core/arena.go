package core

// Arena recycling for successor state. The exploration hot path
// allocates one *State per memory-step successor (shell, event slice,
// relation row slabs); a large fraction of those successors are
// fingerprint duplicates the explorer discards immediately, so their
// allocations are pure garbage. The explorer hands provably-dead
// successors back through Config.Discard → State.recycle, and
// cloneGrow draws replacement shells from a pool whose allocators
// recarve their retained slabs (relation.Allocator.Release) instead
// of allocating fresh ones.
//
// Safety: a discarded successor was never expanded, never audited and
// never stored, so no other state aliases rows carved from its
// allocator (children would — but it has none). Parent rows it
// aliased copy-on-write are untouched: recycling clears only the
// successor's own headers and slabs.

import (
	"sync"

	"repro/internal/bits"
	"repro/internal/event"
	"repro/internal/fingerprint"
	"repro/internal/relation"
)

// statePool recycles State shells together with their embedded
// allocator's slabs and their events slice. The index slices alias
// parents and are simply dropped.
var statePool = sync.Pool{New: func() any { return new(State) }}

// releaseState resets s and returns it to the pool. The relation and
// memo headers are zeroed (their row storage lives in the allocator's
// retained slabs or in ancestors, and the allocator clears its own
// slabs in Release).
func releaseState(s *State) {
	s.events = s.events[:0]
	s.sbP, s.rf, s.mo = relation.Rel{}, relation.Rel{}, relation.Rel{}
	s.threads = nil
	s.writes = bits.Set{}
	s.writesBy = nil
	s.lastW = nil
	s.inc = incProvenance{}
	s.fpAcc = fingerprint.Acc{}
	// A discarded successor has no concurrent users, so the memo can
	// be reset without taking its mutex.
	s.memo.hbP, s.memo.ecoP, s.memo.combP = relation.Rel{}, relation.Rel{}, relation.Rel{}
	s.memo.covered = bits.Set{}
	s.memo.hbOK, s.memo.ecoOK, s.memo.combOK, s.memo.cwOK = false, false, false, false
	s.memo.ew = nil
	s.memo.ow = nil
	s.memo.ewBuf = [4]threadSet{}
	s.memo.owBuf = [4]threadSet{}
	s.alloc.Release()
	statePool.Put(s)
}

// newState returns a pooled shell (or a fresh one) whose events slice
// has capacity for nEvents. The caller initialises every other field.
func newState(nEvents int) *State {
	s := statePool.Get().(*State)
	if cap(s.events) < nEvents {
		s.events = make([]event.Event, 0, nEvents)
	}
	return s
}
