package core

import (
	"testing"

	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/model"
)

// snapshotProg exercises every replayed step kind: relaxed and
// releasing writes, relaxed and acquiring reads, non-atomic accesses,
// and an RMW update.
func snapshotProg() (lang.Prog, map[event.Var]event.Val) {
	p := lang.Prog{
		lang.SeqC(
			lang.AssignNAC("d", lang.V(5)),
			lang.AssignC("x", lang.V(1)),
			lang.AssignRelC("y", lang.V(1)),
		),
		lang.SeqC(
			lang.IfC(lang.Eq(lang.XA("y"), lang.V(1)),
				lang.AssignC("a", lang.Add(lang.X("x"), lang.XNA("d"))),
				lang.SkipC()),
			lang.SwapC("l", 1),
		),
	}
	vars := map[event.Var]event.Val{"x": 0, "y": 0, "a": 0, "d": 0, "l": 0}
	return p, vars
}

// collectConfigs explores breadth-first (unreduced) up to limit
// configurations, deduplicating by fingerprint.
func collectConfigs(root model.Config, limit int) []model.Config {
	seen := map[string]bool{root.Key(): true}
	queue := []model.Config{root}
	out := []model.Config{root}
	for len(queue) > 0 && len(out) < limit {
		c := queue[0]
		queue = queue[1:]
		for _, s := range c.Expand(nil) {
			if k := s.Key(); !seen[k] {
				seen[k] = true
				out = append(out, s)
				queue = append(queue, s)
			}
		}
	}
	return out
}

func TestSnapshotRoundTrip(t *testing.T) {
	p, vars := snapshotProg()
	root := Model.New(p, vars)
	cfgs := collectConfigs(root, 400)
	if len(cfgs) < 30 {
		t.Fatalf("exploration too small to be meaningful: %d configs", len(cfgs))
	}
	for i, c := range cfgs {
		blob := c.AppendSnapshot(nil)
		r, err := Model.Restore(blob)
		if err != nil {
			t.Fatalf("config %d: restore: %v", i, err)
		}
		if got, want := r.Fingerprint(), c.Fingerprint(); got != want {
			t.Fatalf("config %d: fingerprint drifted: got %v want %v", i, got, want)
		}
		// Key is the exact canonical identity (CanonicalSignature) —
		// stronger than the 128-bit fingerprint.
		if got, want := r.Key(), c.Key(); got != want {
			t.Fatalf("config %d: key drifted:\n got %q\nwant %q", i, got, want)
		}
		if msgs := r.AuditIncremental(); len(msgs) != 0 {
			t.Fatalf("config %d: restored state fails incremental audit: %v", i, msgs)
		}
	}
}

// TestSnapshotRoundTripSuccessors checks a restored configuration
// expands to the same successor set as the original — i.e. the replay
// reconstructs observability, not just the fingerprinted structure.
func TestSnapshotRoundTripSuccessors(t *testing.T) {
	p, vars := snapshotProg()
	root := Model.New(p, vars)
	for i, c := range collectConfigs(root, 60) {
		r, err := Model.Restore(c.AppendSnapshot(nil))
		if err != nil {
			t.Fatalf("config %d: restore: %v", i, err)
		}
		want := map[string]int{}
		for _, s := range c.Expand(nil) {
			want[s.Key()]++
		}
		got := map[string]int{}
		for _, s := range r.Expand(nil) {
			got[s.Key()]++
		}
		if len(got) != len(want) {
			t.Fatalf("config %d: successor count drifted: got %d want %d", i, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("config %d: successor multiset drifted at %q", i, k)
			}
		}
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	p, vars := snapshotProg()
	c := Model.New(p, vars)
	for _, s := range c.Expand(nil) {
		c = s // one step in, so the blob has a replayed event
		break
	}
	blob := c.AppendSnapshot(nil)
	if _, err := Model.Restore(nil); err == nil {
		t.Fatal("empty blob restored without error")
	}
	if _, err := Model.Restore([]byte{'S', 1}); err == nil {
		t.Fatal("wrong backend tag restored without error")
	}
	if _, err := Model.Restore([]byte{'R', 99}); err == nil {
		t.Fatal("unknown version restored without error")
	}
	for n := 0; n < len(blob); n++ {
		if _, err := Model.Restore(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes restored without error", n)
		}
	}
	if _, err := Model.Restore(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("trailing garbage restored without error")
	}
}
