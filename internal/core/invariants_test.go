package core

import (
	"math/rand"
	"testing"

	"repro/internal/event"
)

// Structural invariants of the event semantics, checked along random
// reachable transition sequences. These back several claims the paper
// makes in passing: the last write is never covered and always
// observable (§5.1), updates are rf/mo-adjacent to their predecessor,
// encountered writes only grow, and new events are sb-maximal.

type walkStep struct {
	before *State
	m      event.Tag
	e      event.Event
	after  *State
}

func randomWalkCore(t *testing.T, rng *rand.Rand, steps int, visit func(walkStep)) {
	t.Helper()
	vars := []event.Var{"x", "y"}
	s := Init(map[event.Var]event.Val{"x": 0, "y": 0})
	for i := 0; i < steps; i++ {
		th := event.Thread(1 + rng.Intn(3))
		x := vars[rng.Intn(len(vars))]
		var (
			ns  *State
			e   event.Event
			m   event.Tag
			err error
		)
		switch rng.Intn(4) {
		case 0:
			obs := s.ObservableFor(th, x)
			if len(obs) == 0 {
				continue
			}
			m = obs[rng.Intn(len(obs))]
			kinds := []event.Kind{event.RdX, event.RdAcq, event.RdNA}
			ns, e, err = s.StepReadKind(th, kinds[rng.Intn(3)], x, m)
		case 1, 2:
			pts := s.InsertionPointsFor(th, x)
			if len(pts) == 0 {
				continue
			}
			m = pts[rng.Intn(len(pts))]
			kinds := []event.Kind{event.WrX, event.WrRel, event.WrNA}
			ns, e, err = s.StepWriteKind(th, kinds[rng.Intn(3)], x, event.Val(rng.Intn(4)), m)
		case 3:
			pts := s.InsertionPointsFor(th, x)
			if len(pts) == 0 {
				continue
			}
			m = pts[rng.Intn(len(pts))]
			ns, e, err = s.StepRMW(th, x, event.Val(rng.Intn(4)), m)
		}
		if err != nil {
			t.Fatal(err)
		}
		visit(walkStep{before: s, m: m, e: e, after: ns})
		s = ns
	}
}

func TestInvariantLastObservableUncovered(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		randomWalkCore(t, rng, 10, func(w walkStep) {
			s := w.after
			for _, x := range s.Vars() {
				last, ok := s.Last(x)
				if !ok {
					t.Fatalf("no last write for %s", x)
				}
				if s.CoveredWrites().Test(int(last)) {
					t.Fatalf("last write %v covered", s.Event(last))
				}
				for th := event.Thread(1); th <= 3; th++ {
					if !s.ObservableWrites(th).Test(int(last)) {
						t.Fatalf("last write %v not observable by %d", s.Event(last), th)
					}
				}
			}
		})
	}
}

func TestInvariantObservableAreWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		randomWalkCore(t, rng, 10, func(w walkStep) {
			s := w.after
			wr := s.Writes()
			for th := event.Thread(1); th <= 3; th++ {
				if !s.ObservableWrites(th).IsSubsetOf(wr) {
					t.Fatal("OW ⊄ Wr")
				}
				if !s.EncounteredWrites(th).IsSubsetOf(wr) {
					t.Fatal("EW ⊄ Wr")
				}
			}
			if !s.CoveredWrites().IsSubsetOf(wr) {
				t.Fatal("CW ⊄ Wr")
			}
		})
	}
}

func TestInvariantEncounteredMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		randomWalkCore(t, rng, 10, func(w walkStep) {
			for th := event.Thread(1); th <= 3; th++ {
				before := w.before.EncounteredWrites(th).Grow(w.after.NumEvents())
				after := w.after.EncounteredWrites(th)
				if !before.IsSubsetOf(after) {
					t.Fatalf("EW(%d) shrank across %v", th, w.e)
				}
			}
		})
	}
}

func TestInvariantNewEventSBMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		randomWalkCore(t, rng, 10, func(w walkStep) {
			s := w.after
			g := int(w.e.Tag)
			// No outgoing sb edge from the fresh event.
			if !s.SB().Row(g).Empty() {
				t.Fatalf("fresh event %v has sb successors", w.e)
			}
			// All earlier same-thread events and initials precede it.
			for i := 0; i < g; i++ {
				pe := s.Event(event.Tag(i))
				want := pe.TID == w.e.TID || pe.TID == event.InitThread
				if s.SBHas(event.Tag(i), w.e.Tag) != want {
					t.Fatalf("sb edge (%v, %v) = %v, want %v", pe, w.e, !want, want)
				}
			}
		})
	}
}

func TestInvariantUpdateAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		randomWalkCore(t, rng, 12, func(w walkStep) {
			s := w.after
			// Every update reads its immediate mo predecessor: no write
			// strictly between them in mo.
			for _, e := range s.Events() {
				if !e.IsUpdate() {
					continue
				}
				var src event.Tag = -1
				for _, p := range s.RF().Pairs() {
					if p[1] == int(e.Tag) {
						src = event.Tag(p[0])
					}
				}
				if src < 0 {
					t.Fatalf("update %v has no rf source", e)
				}
				for _, o := range s.Events() {
					if o.IsWrite() && s.MOHas(src, o.Tag) && s.MOHas(o.Tag, e.Tag) {
						t.Fatalf("write %v between update %v and its source", o, e)
					}
				}
			}
		})
	}
}

func TestInvariantReadsPreserveMO(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		randomWalkCore(t, rng, 10, func(w walkStep) {
			if !w.e.IsRead() || w.e.IsWrite() {
				return
			}
			if w.before.MO().Count() != w.after.MO().Count() {
				t.Fatalf("read %v changed mo", w.e)
			}
			if !w.after.RFHas(w.m, w.e.Tag) {
				t.Fatalf("read %v missing rf from observation", w.e)
			}
			if w.e.RdVal() != w.before.Event(w.m).WrVal() {
				t.Fatalf("read %v value mismatch", w.e)
			}
		})
	}
}

func TestInvariantRFFunctional(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		randomWalkCore(t, rng, 12, func(w walkStep) {
			s := w.after
			incoming := map[int]int{}
			for _, p := range s.RF().Pairs() {
				incoming[p[1]]++
			}
			for _, e := range s.Events() {
				if e.IsRead() {
					if incoming[int(e.Tag)] != 1 {
						t.Fatalf("read %v has %d rf sources", e, incoming[int(e.Tag)])
					}
				} else if incoming[int(e.Tag)] != 0 {
					t.Fatalf("non-read %v has rf source", e)
				}
			}
		})
	}
}

func TestInvariantCanonicalSignatureStable(t *testing.T) {
	// Interleaving invariance: executing two independent writes in
	// either order gives the same canonical signature when the mo
	// placement matches.
	s := Init(map[event.Var]event.Val{"x": 0, "y": 0})
	ix, _ := s.InitialFor("x")
	iy, _ := s.InitialFor("y")

	a1, _, _ := s.StepWrite(1, false, "x", 1, ix)
	a2, _, _ := a1.StepWrite(2, false, "y", 2, iy)

	b1, _, _ := s.StepWrite(2, false, "y", 2, iy)
	b2, _, _ := b1.StepWrite(1, false, "x", 1, ix)

	if a2.CanonicalSignature() != b2.CanonicalSignature() {
		t.Fatal("canonical signatures differ across commuting steps")
	}
	if a2.Signature() == b2.Signature() {
		t.Fatal("plain signatures should expose the interleaving")
	}
}
