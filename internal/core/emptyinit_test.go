package core

import (
	"testing"

	"repro/internal/event"
)

// Init with no variables must build a valid inert state (regression:
// the embedded allocator divided by a zero stride).
func TestInitEmptyVars(t *testing.T) {
	s := Init(map[event.Var]event.Val{})
	if s.NumEvents() != 0 {
		t.Fatalf("empty init has %d events", s.NumEvents())
	}
	if bad := s.AuditIncremental(); len(bad) != 0 {
		t.Fatalf("empty init audit: %v", bad)
	}
}
