package core

// This file is the incremental derived-order engine. A transition
// σ --(w,e)-->_RA σ' changes the state by exactly one event g := e and
// at most three edge groups: sb gains P×{g} for the sb-predecessors P
// of g, rf may gain (w,g), and mo may be spliced to mo[w,g]. Every new
// edge is incident to g, and g is sb/sw-maximal, so the derived
// closures of σ' are the closures of σ extended by g's row and column
// alone — no pair between old events changes:
//
//   - hb:  g has no outgoing sb/sw edge, so hb' = hb ∪ (reach⁻¹(g) × {g})
//     where reach⁻¹(g) = {i | i ∈ D ∨ hb[i] ∩ D ≠ ∅} for the direct
//     predecessors D (sb-predecessors, plus w when (w,g) synchronises).
//   - eco: g's direct successors are the old mo-successors of w in
//     every rule (mo and fr edges out of a spliced write/update, fr
//     edges out of a read), and its direct predecessors are w (rf) and,
//     under a splice, mo⁺w = {w} ∪ mo⁻¹[w] together with their rf
//     readers (fr). A path between old events through g would factor
//     through v ⊑_mo w <_mo k, which eco already contained, so old
//     pairs are untouched.
//   - comb = eco?;hb?: old pairs are compositions of old pairs; g's
//     row and column follow from the hb/eco extensions above.
//   - CW gains at most {w}, when g is an update.
//
// The engine therefore inherits the parent's memoised hb/eco/comb/CW
// (sharing their rows copy-on-write) and propagates only g's edges, at
// O(n²/64) word operations per state instead of the O(n³/64)
// Floyd–Warshall closures the scratch path pays. The scratch path
// survives for root states and for the audit mode: AuditIncremental
// recomputes everything from first principles and reports any
// disagreement (explore.Options.CheckIncremental counts these; the
// expected count is zero).

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/event"
	"repro/internal/relation"
)

// incProvenance links a successor to the parent it was derived from:
// the appended event g, the observed write w, the stepping thread, and
// which edge groups the rule added. parent is cleared once the derived
// orders have been inherited, releasing the ancestor chain.
type incProvenance struct {
	parent   *State
	g        int          // index of the event this step appended
	w        int          // index of the observed write (in the parent)
	t        event.Thread // the stepping thread
	rfEdge   bool         // rf gained (w, g): READ and RMW
	moSplice bool         // mo became mo[w, g]: WRITE and RMW
}

// linkParent records the provenance of a freshly-built successor.
func (s *State) linkParent(parent *State, g event.Tag, w event.Tag, t event.Thread, rfEdge, moSplice bool) {
	s.inc = incProvenance{
		parent: parent, g: int(g), w: int(w), t: t,
		rfEdge: rfEdge, moSplice: moSplice,
	}
}

// hbRef, ecoRef, combRef and cwRef return the state's memoised derived
// values, computing them first if needed. The returned values are
// immutable once memoised, so a child may read them after the parent's
// lock is released. Lock order is strictly child → parent, and parents
// never lock children, so the order is acyclic.

func (s *State) hbRef() *relation.Rel {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	return s.hbLocked()
}

func (s *State) ecoRef() *relation.Rel {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	return s.ecoLocked()
}

func (s *State) combRef() *relation.Rel {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	return s.combLocked()
}

func (s *State) cwRef() *bits.Set {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	return s.coveredLocked()
}

// maybeDetachLocked drops the parent link once every derived value has
// been inherited, releasing the ancestor State (its events, indexes
// and memo); the inherited rows keep aliasing ancestor slabs. The
// derivations are split per closure — a configuration only visited by
// a property check typically needs hb alone, and deriving eco/comb for
// it would triple the cost of the frontier.
func (s *State) maybeDetachLocked() {
	if s.memo.hbOK && s.memo.ecoOK && s.memo.combOK && s.memo.cwOK {
		s.inc.parent = nil
	}
}

// deriveHBLocked computes hb' = hb ∪ reach⁻¹(g) × {g} from the
// parent's memoised (transposed) hb. The direct predecessors of g are
// its sb-predecessors — the parent's events of the stepping thread
// and the initialising writes — plus w when the new rf edge
// synchronises (sw = rf ∩ (WrR × RdA)). g itself is hb-maximal: every
// new sb/sw edge ends at g, so no pair between old events changes —
// and in predecessor orientation the whole extension is one owned
// row, assembled by word-parallel unions. Initialising writes have no
// hb-predecessors, and the stepping thread's earlier events fold into
// its sb-last event's row (hb is monotone along sb), so three row
// unions suffice where the row-major form walked and copy-on-write
// copied every predecessor row.
func (s *State) deriveHBLocked(p *State) {
	phb := p.hbRef()
	n := len(s.events)
	g, w := s.inc.g, s.inc.w

	hb := phb.ShareGrowAlloc(n, &s.alloc)
	hb.UnionRow(g, p.threadEvs(event.InitThread))
	tEvs := p.threadEvs(s.inc.t)
	if last := tEvs.Max(); last >= 0 {
		hb.UnionRow(g, tEvs)
		hb.UnionRow(g, phb.Row(last))
	}
	if s.inc.rfEdge && s.events[w].Releasing() && s.events[g].Acquiring() {
		hb.Add(g, w)
		hb.UnionRow(g, phb.Row(w))
	}
	s.memo.hbP = hb
	s.memo.hbOK = true
	s.maybeDetachLocked()
}

// deriveECOLocked extends the parent's memoised eco. g's direct
// successors are the old mo-successors of w in every rule — the
// targets of the mo and fr edges out of a spliced write or update, and
// of the fr edges out of a read. Its direct predecessors are w along
// the new rf edge and, under a splice, mo⁺w = {w} ∪ mo⁻¹[w] together
// with every rf reader of a write in mo⁺w (new fr edges). A path
// between old events through g would factor through v ⊑_mo w <_mo k,
// which eco already contained, so old pairs are untouched.
// In predecessor orientation the incoming side (g's eco-predecessors:
// w, mo⁺w and its readers, and their own predecessors) is one owned
// row; the outgoing side (g precedes the old mo-successors of w and
// their eco-successors) touches old rows, but only when w is not
// mo-maximal — the common case (reading or splicing after the latest
// write to the variable) leaves every old row shared.
func (s *State) deriveECOLocked(p *State) {
	peco := p.ecoRef()
	n := len(s.events)
	g, w := s.inc.g, s.inc.w

	eco := peco.ShareGrowAlloc(n, &s.alloc)
	direct := s.alloc.NewSet(n)
	if s.inc.rfEdge {
		direct.Set(w)
	}
	if s.inc.moSplice {
		direct.Set(w)
		x := s.events[w].Var()
		for _, v := range p.writesTo(x) {
			vi := int(v)
			if vi == w || p.mo.Has(vi, w) {
				direct.Set(vi)
				direct.Or(p.rf.Row(vi))
			}
		}
	}
	eco.UnionRow(g, direct)
	for d := direct.Next(0); d >= 0; d = direct.Next(d + 1) {
		eco.UnionRow(g, peco.Row(d))
	}
	moSucc := p.mo.Row(w)
	if !moSucc.Empty() {
		for j := 0; j < g; j++ {
			if moSucc.Test(j) || peco.Row(j).Intersects(moSucc) {
				eco.Add(j, g)
			}
		}
	}
	s.memo.ecoP = eco
	s.memo.ecoOK = true
	s.maybeDetachLocked()
}

// deriveCombLocked extends the parent's memoised (transposed)
// comb = eco? ; hb?. Old pairs are compositions of old pairs and stay
// unchanged. The new predecessor row is assembled by unions alone:
//
//	combP'[g] = {g} ∪ ecoP'[g] ∪ hbP'[g] ∪ combP[lastT] ∪ (combP[w] if sw)
//
// The definitional fold ⋃ ecoP[m] over every hb-predecessor m of g
// collapses because comb is monotone along hb (comb(i,m) ∧ hb(m,g) ⟹
// comb(i,g)): each m is the stepping thread's sb-last event lastT,
// the synchronising write w, an initialising write, or an
// hb-predecessor of one of those, so its contribution is inside
// combP[lastT] ∪ combP[w] — initialising writes have no eco- or
// hb-predecessors, and their singleton rows sit inside hbP'[g]. The
// reverse inclusion is hb-monotonicity again. The audit
// (AuditIncremental) checks this derivation against the definitional
// composition on every explored state under -checkincremental.
//
// Old rows change only when g has eco-successors (w not mo-maximal):
// those rows — K and its hb-successors — gain the bit g.
func (s *State) deriveCombLocked(p *State) {
	pcomb := p.combRef()
	n := len(s.events)
	g, w := s.inc.g, s.inc.w
	hb := s.hbLocked()
	eco := s.ecoLocked()

	comb := pcomb.ShareGrowAlloc(n, &s.alloc)
	comb.Add(g, g)
	comb.UnionRow(g, eco.Row(g))
	comb.UnionRow(g, hb.Row(g))
	tEvs := p.threadEvs(s.inc.t)
	if last := tEvs.Max(); last >= 0 {
		comb.UnionRow(g, pcomb.Row(last))
	}
	if s.inc.rfEdge && s.events[w].Releasing() && s.events[g].Acquiring() {
		comb.UnionRow(g, pcomb.Row(w))
	}

	if !p.mo.Row(w).Empty() {
		// g's eco-successors K are exactly the old rows that gained g
		// in deriveECOLocked; g reaches them and their hb-successors.
		k := s.alloc.NewSet(n)
		for j := 0; j < g; j++ {
			if eco.Row(j).Test(g) {
				k.Set(j)
			}
		}
		for j := 0; j < g; j++ {
			if k.Test(j) || hb.Row(j).Intersects(k) {
				comb.Add(j, g)
			}
		}
	}
	s.memo.combP = comb
	s.memo.combOK = true
	s.maybeDetachLocked()
}

// deriveCWLocked extends the parent's CW: an update covers the write
// it reads, so CW' = CW ∪ {w | g ∈ U}.
func (s *State) deriveCWLocked(p *State) {
	pcw := p.cwRef()
	n := len(s.events)
	cov := s.alloc.NewSet(n)
	cov.Or(*pcw)
	if s.events[s.inc.g].IsUpdate() {
		cov.Set(s.inc.w)
	}
	s.memo.covered = cov
	s.memo.cwOK = true
	s.maybeDetachLocked()
}

// AuditIncremental recomputes every derived order and maintained index
// from first principles and compares them with the incrementally
// maintained values, returning one description per mismatch. It is the
// correctness guard behind explore.Options.CheckIncremental and the
// c11explore/c11verify -checkincremental flags; the expected result is
// always empty.
func (s *State) AuditIncremental() []string {
	var bad []string
	report := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}

	s.memo.mu.Lock()
	hb := s.hbLocked()
	eco := s.ecoLocked()
	comb := s.combLocked()
	cw := s.coveredLocked()
	s.memo.mu.Unlock()

	sHB := s.scratchHB()
	if !hb.Equal(sHB) {
		report("hb: incremental %s != scratch %s", hb, sHB)
	}
	sECO := s.scratchECO()
	if !eco.Equal(sECO) {
		report("eco: incremental %s != scratch %s", eco, sECO)
	}
	sComb := scratchComb(sECO, sHB)
	if !comb.Equal(sComb) {
		report("comb: incremental %s != scratch %s", comb, sComb)
	}
	sCW := s.auditScratchCW()
	if !cw.Equal(sCW) {
		report("cw: incremental %s != scratch %s", cw, sCW)
	}

	// sb is reconstructible from the event list: a program event j is
	// preceded exactly by the earlier events of its own thread and of
	// thread 0; initialising writes are sb-unordered among themselves.
	// Reconstructed directly in the maintained predecessor orientation
	// (row j = sb-predecessors of j).
	n := len(s.events)
	sSB := relation.New(n)
	for j := 0; j < n; j++ {
		if s.events[j].TID == event.InitThread {
			continue
		}
		for i := 0; i < j; i++ {
			if s.events[i].TID == s.events[j].TID || s.events[i].TID == event.InitThread {
				sSB.Add(j, i)
			}
		}
	}
	if !s.sbP.Equal(sSB) {
		report("sb: maintained %s != reconstructed %s", s.sbP, sSB)
	}

	// Per-thread EW/OW against the scratch kernel.
	for i := range s.threads {
		t := s.threads[i].tid
		ewS := s.scratchEW(&sComb, t)
		if ew := s.EncounteredWrites(t); !ew.Equal(ewS) {
			report("ew(%d): memoised %s != scratch %s", t, ew, ewS)
		}
		owS := s.scratchOW(ewS)
		if ow := s.ObservableWrites(t); !ow.Equal(owS) {
			report("ow(%d): memoised %s != scratch %s", t, ow, owS)
		}
	}

	// Eager indexes against event scans.
	wr := bits.New(n)
	for i, e := range s.events {
		if e.IsWrite() {
			wr.Set(i)
		}
		if !s.threadEvs(e.TID).Test(i) {
			report("threads: event %d missing from thread %d index", i, e.TID)
		}
	}
	if !s.writes.Equal(wr) {
		report("writes: maintained %s != scan %s", s.writes, wr)
	}
	total := 0
	for i := range s.threads {
		total += s.threads[i].evs.Count()
	}
	if total != n {
		report("threads: index holds %d events, state has %d", total, n)
	}
	for _, vw := range s.writesBy {
		for _, g := range vw.tags {
			if e := s.events[int(g)]; !e.IsWrite() || e.Var() != vw.x {
				report("writesBy[%s]: tag %d is %s", vw.x, g, e)
			}
		}
		if got := len(vw.tags); got != len(s.WritesTo(vw.x)) {
			report("writesBy[%s]: %d tags vs WritesTo %d", vw.x, got, len(s.WritesTo(vw.x)))
		}
	}
	for _, lw := range s.lastW {
		// σ.last(x) is the unique write to x with no mo successor.
		if !s.writes.Test(int(lw.w)) || s.events[int(lw.w)].Var() != lw.x {
			report("lastW[%s]: %d is not a write to %s", lw.x, lw.w, lw.x)
			continue
		}
		for _, g := range s.writesTo(lw.x) {
			if s.mo.Has(int(lw.w), int(g)) {
				report("lastW[%s]: %d has mo successor %d", lw.x, lw.w, g)
			}
		}
	}
	return bad
}

// auditScratchCW is scratchCW over an event scan (not the write
// index), so the audit does not trust the index it also checks.
func (s *State) auditScratchCW() bits.Set {
	out := bits.New(len(s.events))
	for i, e := range s.events {
		if !e.IsWrite() {
			continue
		}
		row := s.rf.Row(i)
		for j := row.Next(0); j >= 0; j = row.Next(j + 1) {
			if s.events[j].IsUpdate() {
				out.Set(i)
				break
			}
		}
	}
	return out
}
