package core

import (
	"testing"

	"repro/internal/event"
)

func initXYZ() *State {
	return Init(map[event.Var]event.Val{"x": 0, "y": 0, "z": 0})
}

func TestInitShape(t *testing.T) {
	s := initXYZ()
	if s.NumEvents() != 3 {
		t.Fatalf("NumEvents = %d", s.NumEvents())
	}
	// Sorted variable order gives deterministic tags.
	for i, x := range []event.Var{"x", "y", "z"} {
		e := s.Event(event.Tag(i))
		if !e.IsInit() || e.Var() != x || e.WrVal() != 0 {
			t.Fatalf("event %d = %v", i, e)
		}
	}
	// Initial writes are unordered amongst themselves (§3.1).
	if !s.SB().Empty() || !s.RF().Empty() || !s.MO().Empty() {
		t.Fatal("initial relations must be empty")
	}
	if len(s.Initials()) != 3 {
		t.Fatal("Initials wrong")
	}
	g, ok := s.InitialFor("y")
	if !ok || s.Event(g).Var() != "y" {
		t.Fatal("InitialFor wrong")
	}
	if _, ok := s.InitialFor("nope"); ok {
		t.Fatal("InitialFor found missing variable")
	}
}

func TestVarsAndWrites(t *testing.T) {
	s := initXYZ()
	vars := s.Vars()
	if len(vars) != 3 || vars[0] != "x" || vars[2] != "z" {
		t.Fatalf("Vars = %v", vars)
	}
	if s.Writes().Count() != 3 {
		t.Fatal("Writes wrong")
	}
	if len(s.WritesTo("x")) != 1 {
		t.Fatal("WritesTo wrong")
	}
}

func TestAddEventSBShape(t *testing.T) {
	s := initXYZ()
	// Thread 1 writes x twice; a thread-2 event is not sb-related to
	// thread 1's but is after all initials.
	s1, e1, err := s.StepWrite(1, false, "x", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, e2, err := s1.StepWrite(1, false, "x", 2, e1.Tag)
	if err != nil {
		t.Fatal(err)
	}
	s3, e3, err := s2.StepWrite(2, false, "y", 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Initials sb-before every non-initial event.
	for _, ini := range s3.Initials() {
		for _, e := range []event.Event{e1, e2, e3} {
			if !s3.SBHas(ini, e.Tag) {
				t.Fatalf("init %v not sb-before %v", ini, e)
			}
		}
	}
	if !s3.SBHas(e1.Tag, e2.Tag) {
		t.Fatal("program order lost")
	}
	if s3.SBHas(e1.Tag, e3.Tag) || s3.SBHas(e3.Tag, e1.Tag) {
		t.Fatal("cross-thread sb edge")
	}
	if got := s3.ThreadEvents(1); len(got) != 2 || got[0] != e1.Tag {
		t.Fatalf("ThreadEvents = %v", got)
	}
}

func TestStatesAreImmutable(t *testing.T) {
	s := initXYZ()
	sig := s.Signature()
	s1, _, err := s.StepWrite(1, false, "x", 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Signature() != sig {
		t.Fatal("StepWrite mutated the source state")
	}
	if s1.Signature() == sig {
		t.Fatal("successor state has unchanged signature")
	}
	if s.NumEvents() != 3 || s1.NumEvents() != 4 {
		t.Fatal("event counts wrong")
	}
}

func TestSignatureDistinguishesMO(t *testing.T) {
	// Two writes to x by different threads can be mo-ordered both
	// ways; the signatures must differ.
	s := initXYZ()
	a, e1, _ := s.StepWrite(1, false, "x", 1, 0)
	b1, _, err := a.StepWrite(2, false, "x", 2, e1.Tag) // after t1's write
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := a.StepWrite(2, false, "x", 2, 0) // between init and t1's write
	if err != nil {
		t.Fatal(err)
	}
	if b1.Signature() == b2.Signature() {
		t.Fatal("signatures do not distinguish mo placement")
	}
}

func TestStringRendering(t *testing.T) {
	s := initXYZ()
	out := s.String()
	if out == "" || len(out) < 10 {
		t.Fatalf("String too short: %q", out)
	}
}

func TestLast(t *testing.T) {
	s := initXYZ()
	g, ok := s.Last("x")
	if !ok || s.Event(g).WrVal() != 0 {
		t.Fatal("Last of init state wrong")
	}
	s1, e1, _ := s.StepWrite(1, false, "x", 1, g)
	g1, _ := s1.Last("x")
	if g1 != e1.Tag {
		t.Fatal("Last not updated")
	}
	// Insert a write *before* e1: last stays e1.
	s2, _, err := s1.StepWrite(2, false, "x", 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := s2.Last("x")
	if g2 != e1.Tag {
		t.Fatal("Last should remain the mo-maximal write")
	}
	if _, ok := s.Last("w"); ok {
		t.Fatal("Last of unknown variable should fail")
	}
}

func TestUpdateOnly(t *testing.T) {
	s := Init(map[event.Var]event.Val{"turn": 1, "flag": 0})
	if !s.UpdateOnly("turn") || !s.UpdateOnly("flag") {
		t.Fatal("all variables update-only initially")
	}
	g, _ := s.Last("turn")
	s1, e1, err := s.StepRMW(1, "turn", 2, g)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.UpdateOnly("turn") {
		t.Fatal("turn must stay update-only after RMW")
	}
	iflag, _ := s1.InitialFor("flag")
	s2, _, err := s1.StepWrite(2, false, "flag", 1, iflag)
	if err != nil {
		t.Fatal(err)
	}
	if s2.UpdateOnly("flag") {
		t.Fatal("flag written plainly must not be update-only")
	}
	_ = e1
}
