package core

import (
	"testing"

	"repro/internal/event"
	"repro/internal/fingerprint"
	"repro/internal/lang"
)

// stepOf returns thread t's enabled program step.
func stepOf(t *testing.T, c Config, tid event.Thread) lang.ProgStep {
	t.Helper()
	for _, ps := range lang.ProgSteps(c.P) {
		if ps.T == tid {
			return ps
		}
	}
	t.Fatalf("thread %d has no enabled step", tid)
	return lang.ProgStep{}
}

func TestStepsCommuteOracle(t *testing.T) {
	mk := func(c1, c2 lang.Com, vars ...event.Var) Config {
		m := map[event.Var]event.Val{}
		for _, x := range vars {
			m[x] = 0
		}
		return NewConfig(lang.Prog{c1, c2}, m)
	}
	cases := []struct {
		name    string
		cfg     Config
		commute bool
	}{
		{"write-x/write-y", mk(lang.AssignC("x", lang.V(1)), lang.AssignC("y", lang.V(2)), "x", "y"), true},
		{"write-x/write-x", mk(lang.AssignC("x", lang.V(1)), lang.AssignC("x", lang.V(2)), "x"), false},
		{"write-x/read-x", mk(lang.AssignC("x", lang.V(1)), lang.AssignC("a", lang.X("x")), "x", "a"), false},
		{"read-x/read-x", mk(lang.AssignC("a", lang.X("x")), lang.AssignC("b", lang.X("x")), "x", "a", "b"), true},
		{"silent/write-x", mk(lang.SeqC(lang.SkipC(), lang.SkipC(), lang.AssignC("x", lang.V(1))), lang.AssignC("x", lang.V(2)), "x"), true},
		{"update-x/read-x", mk(lang.SwapC("x", 1), lang.AssignC("a", lang.X("x")), "x", "a"), false},
		{"update-x/write-y", mk(lang.SwapC("x", 1), lang.AssignC("y", lang.V(2)), "x", "y"), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := stepOf(t, tc.cfg, 1)
			b := stepOf(t, tc.cfg, 2)
			if got := StepsCommute(a, b); got != tc.commute {
				t.Fatalf("StepsCommute = %v, want %v", got, tc.commute)
			}
			if got := StepsCommute(b, a); got != tc.commute {
				t.Fatalf("StepsCommute (swapped) = %v, want %v", got, tc.commute)
			}
			if StepsCommute(a, a) {
				t.Fatal("a step must not commute with itself (same thread)")
			}
		})
	}
}

// twoStepFrontier returns the canonical fingerprints reachable by
// executing one transition of thread first and then one transition of
// thread second (re-reading second's enabled step in each intermediate
// configuration).
func twoStepFrontier(t *testing.T, c Config, first, second event.Thread) map[fingerprint.FP]bool {
	t.Helper()
	out := map[fingerprint.FP]bool{}
	for _, s1 := range c.StepSuccessors(stepOf(t, c, first)) {
		for _, s2 := range s1.C.StepSuccessors(stepOf(t, s1.C, second)) {
			out[s2.C.Fingerprint()] = true
		}
	}
	return out
}

// TestStepsCommuteDiamond checks the oracle against the semantics:
// when StepsCommute holds, executing the two steps in either order
// must close the diamond — the same set of canonical configurations,
// with each thread offered the same choices.
func TestStepsCommuteDiamond(t *testing.T) {
	progs := []struct {
		name string
		p    lang.Prog
		vars map[event.Var]event.Val
	}{
		{
			"disjoint-writes-and-reads",
			lang.Prog{
				lang.SeqC(lang.AssignC("x", lang.V(1)), lang.AssignRelC("f", lang.V(1))),
				lang.SeqC(lang.AssignC("a", lang.XA("g")), lang.AssignC("y", lang.V(2))),
			},
			map[event.Var]event.Val{"x": 0, "y": 0, "f": 0, "g": 0, "a": 0},
		},
		{
			"shared-reads",
			lang.Prog{
				lang.AssignC("a", lang.X("x")),
				lang.AssignC("b", lang.X("x")),
				lang.SwapC("x", 7),
			},
			map[event.Var]event.Val{"x": 0, "a": 0, "b": 0},
		},
	}
	for _, tc := range progs {
		t.Run(tc.name, func(t *testing.T) {
			c := NewConfig(tc.p, tc.vars)
			steps := lang.ProgSteps(c.P)
			for i := range steps {
				for j := range steps {
					if i == j || !StepsCommute(steps[i], steps[j]) {
						continue
					}
					ab := twoStepFrontier(t, c, steps[i].T, steps[j].T)
					ba := twoStepFrontier(t, c, steps[j].T, steps[i].T)
					if len(ab) != len(ba) {
						t.Fatalf("threads %d,%d: diamond frontier sizes differ: %d vs %d",
							steps[i].T, steps[j].T, len(ab), len(ba))
					}
					for fp := range ab {
						if !ba[fp] {
							t.Fatalf("threads %d,%d: diamond does not close", steps[i].T, steps[j].T)
						}
					}
				}
			}
		})
	}
}

func TestCommutesSucc(t *testing.T) {
	c := NewConfig(lang.Prog{
		lang.AssignC("x", lang.V(1)),
		lang.AssignC("y", lang.V(2)),
		lang.AssignC("a", lang.X("x")),
	}, map[event.Var]event.Val{"x": 0, "y": 0, "a": 0})
	succs := c.Successors()
	byThread := map[event.Thread]Succ{}
	for _, s := range succs {
		byThread[s.T] = s
	}
	if !Commutes(byThread[1], byThread[2]) {
		t.Fatal("writes to distinct variables must commute")
	}
	if Commutes(byThread[1], byThread[3]) {
		t.Fatal("write and read of the same variable must not commute")
	}
	if Commutes(byThread[1], byThread[1]) {
		t.Fatal("same-thread transitions must not commute")
	}
}
