package core

import (
	"fmt"
	"strings"

	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/model"
)

// This file plugs the RAR semantics into the pluggable memory-model
// seam (internal/model): Config implements model.Config, and Model is
// the backend the frontends select with -model rar. The typed API
// (Successors, StepSuccessors, State accessors) remains the primary
// surface for the axiomatic cross-checks and the proof layer; the
// adapter below is what the generic explorer drives.

// Model is the RAR backend: the paper's release-acquire fragment of
// C11 behind the model.Model interface.
var Model model.Model = rarModel{}

type rarModel struct{}

func (rarModel) Name() string { return "rar" }

func (rarModel) New(p lang.Prog, vars map[event.Var]event.Val) model.Config {
	return NewConfig(p, vars)
}

var _ model.Config = Config{}

// Program returns the residual program.
func (c Config) Program() lang.Prog { return c.P }

// Progress counts the events of the state: each transition appends at
// most one, so it is the monotone measure Options.MaxEvents bounds
// (the engine subtracts the initial configuration's count).
func (c Config) Progress() int { return c.S.NumEvents() }

// Expand appends every enabled interpreted transition's target. The
// per-thread steps are taken via StepOf directly (no ProgSteps slice)
// and the successor configurations are constructed straight into out
// — the engine calls this once per explored state, so the transient
// []ProgStep and []Succ boxes the convenience API builds were a
// measurable slice of the exploration allocation profile (see the
// interface-seam note in PERF.md).
func (c Config) Expand(out []model.Config) []model.Config {
	for i, com := range c.P {
		if s, ok := lang.StepOf(com); ok {
			out = c.appendConfigSuccessors(out, lang.ProgStep{T: event.Thread(i + 1), S: s})
		}
	}
	return out
}

// ExpandStep appends the targets of one program step — one successor
// per observable write the RA semantics lets the step see.
func (c Config) ExpandStep(out []model.Config, ps lang.ProgStep) []model.Config {
	return c.appendConfigSuccessors(out, ps)
}

// StepsAcyclic: every memory step appends an event, so non-silent
// transitions strictly grow Progress and never close a cycle.
func (c Config) StepsAcyclic() bool { return true }

// StepsCommute exposes the package-level oracle through the interface.
func (c Config) StepsCommute(a, b lang.ProgStep) bool { return StepsCommute(a, b) }

// AuditIncremental recomputes the state's derived orders from scratch
// (see State.AuditIncremental).
func (c Config) AuditIncremental() []string { return c.S.AuditIncremental() }

// DeltaLabel renders the event the transition prev → c added, or τ
// for a silent step.
func (c Config) DeltaLabel(prev model.Config) string {
	p, ok := prev.(Config)
	if !ok || c.S.NumEvents() <= p.S.NumEvents() {
		return "τ"
	}
	return c.S.Event(event.Tag(c.S.NumEvents() - 1)).String()
}

// Summarise renders the final (mo-maximal) values of the observed
// variables in the shared cross-model outcome format.
func (c Config) Summarise(observe []event.Var) string {
	var b strings.Builder
	for _, x := range observe {
		g, ok := c.S.Last(x)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%s=%d;", x, c.S.Event(g).WrVal())
	}
	return b.String()
}
