package core

import (
	"fmt"
	"strings"

	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/model"
)

// This file plugs the RAR semantics into the pluggable memory-model
// seam (internal/model): Config implements model.Config, and Model is
// the backend the frontends select with -model rar. The typed API
// (Successors, StepSuccessors, State accessors) remains the primary
// surface for the axiomatic cross-checks and the proof layer; the
// adapter below is what the generic explorer drives.

// Model is the RAR backend: the paper's release-acquire fragment of
// C11 behind the model.Model interface.
var Model model.Model = rarModel{}

type rarModel struct{}

func (rarModel) Name() string { return "rar" }

func (rarModel) New(p lang.Prog, vars map[event.Var]event.Val) model.Config {
	return NewConfig(p, vars)
}

var _ model.Config = Config{}

// Program returns the residual program.
func (c Config) Program() lang.Prog { return c.P }

// Progress counts the events of the state: each transition appends at
// most one, so it is the monotone measure Options.MaxEvents bounds
// (the engine subtracts the initial configuration's count).
func (c Config) Progress() int { return c.S.NumEvents() }

// AppendSuccessors appends every enabled interpreted transition's
// target as a concrete Config. The per-thread steps are taken via
// StepOf directly (no ProgSteps slice) and the successor
// configurations are constructed straight into out — this is the
// monomorphised explorer's expansion entry point, called once per
// explored state, with zero interface boxing on the path.
func (c Config) AppendSuccessors(out []Config) []Config {
	for i, com := range c.P {
		if s, ok := lang.StepOf(com); ok {
			out = c.AppendStepSuccessors(out, lang.ProgStep{T: event.Thread(i + 1), S: s})
		}
	}
	return out
}

// Expand is the boxed form of AppendSuccessors for the model.Config
// seam (traces, unknown-backend fallback); the engine's hot path uses
// the typed form.
func (c Config) Expand(out []model.Config) []model.Config {
	succ := c.AppendSuccessors(nil)
	for _, s := range succ {
		out = append(out, s)
	}
	return out
}

// ExpandStep is the boxed form of AppendStepSuccessors — one successor
// per observable write the RA semantics lets the step see.
func (c Config) ExpandStep(out []model.Config, ps lang.ProgStep) []model.Config {
	succ := c.AppendStepSuccessors(nil, ps)
	for _, s := range succ {
		out = append(out, s)
	}
	return out
}

// Discard hands back a successor the explorer proved it will never
// use again — a fingerprint duplicate or a bound-suppressed successor
// — so its state can be recycled. c is the configuration succ was
// expanded from; successors of silent steps share its state and own
// nothing recyclable.
func (c Config) Discard(succ Config) {
	if succ.S == c.S {
		return
	}
	succ.S.recycle()
}

// StepsAcyclic: every memory step appends an event, so non-silent
// transitions strictly grow Progress and never close a cycle.
func (c Config) StepsAcyclic() bool { return true }

// StepsCommute exposes the package-level oracle through the interface.
func (c Config) StepsCommute(a, b lang.ProgStep) bool { return StepsCommute(a, b) }

// AuditIncremental recomputes the state's derived orders from scratch
// (see State.AuditIncremental).
func (c Config) AuditIncremental() []string { return c.S.AuditIncremental() }

// DeltaLabel renders the event the transition prev → c added, or τ
// for a silent step.
func (c Config) DeltaLabel(prev model.Config) string {
	p, ok := prev.(Config)
	if !ok || c.S.NumEvents() <= p.S.NumEvents() {
		return "τ"
	}
	return c.S.Event(event.Tag(c.S.NumEvents() - 1)).String()
}

// Summarise renders the final (mo-maximal) values of the observed
// variables in the shared cross-model outcome format.
func (c Config) Summarise(observe []event.Var) string {
	var b strings.Builder
	for _, x := range observe {
		g, ok := c.S.Last(x)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%s=%d;", x, c.S.Event(g).WrVal())
	}
	return b.String()
}
