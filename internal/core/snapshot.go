package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/model"
)

// Snapshot support for the checkpoint layer (internal/explore). A RAR
// configuration is serialised as its residual program plus a replay
// script for its state: the initial valuation followed by every
// non-initialising event in tag order, each recorded as (kind, thread,
// variable, written value, observed write). Restore re-executes the
// script through the same Figure 3 step functions that built the state
// originally — the rules are deterministic given the observed write,
// so replay reconstructs the exact event graph, relations, indexes and
// fingerprint accumulator, with no second serialization format to keep
// in sync with the state representation.
//
// The observed write of each event is not stored explicitly in the
// state but is recoverable from the final relations:
//
//   - a read's (or update's) observation is its unique rf source;
//   - a write's observation is the write it was inserted immediately
//     after in mo. Later insertions can slot between the two in the
//     final order, but every later insertion has a larger tag, so
//     restricting candidates to mo-predecessors with smaller tags
//     makes the mo-maximal one exactly the original insertion point.

const (
	snapshotTag     byte = 'R'
	snapshotVersion byte = 1
)

func appendSnapString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func snapString(data []byte) (string, []byte, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 || n > uint64(len(data)-k) {
		return "", nil, fmt.Errorf("core: truncated string in snapshot")
	}
	return string(data[k : k+int(n)]), data[k+int(n):], nil
}

func snapUvarint(data []byte) (uint64, []byte, error) {
	v, k := binary.Uvarint(data)
	if k <= 0 {
		return 0, nil, fmt.Errorf("core: truncated uvarint in snapshot")
	}
	return v, data[k:], nil
}

func snapVarint(data []byte) (int64, []byte, error) {
	v, k := binary.Varint(data)
	if k <= 0 {
		return 0, nil, fmt.Errorf("core: truncated varint in snapshot")
	}
	return v, data[k:], nil
}

// observedWrite recovers the write observed by event g (the w of the
// Figure 3 rule that added g) from the final rf/mo relations.
func (s *State) observedWrite(g event.Tag) (event.Tag, error) {
	e := s.events[int(g)]
	if e.IsRead() {
		for _, v := range s.writesTo(e.Var()) {
			if s.rf.Has(int(v), int(g)) {
				return v, nil
			}
		}
		return 0, fmt.Errorf("core: event %s has no rf source", e)
	}
	best := event.Tag(-1)
	for _, v := range s.writesTo(e.Var()) {
		if v >= g || !s.mo.Has(int(v), int(g)) {
			continue
		}
		if best < 0 || s.mo.Has(int(best), int(v)) {
			best = v
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("core: write %s has no mo predecessor", e)
	}
	return best, nil
}

// AppendSnapshot appends a self-contained serialization of the
// configuration (see the file comment for the format).
func (c Config) AppendSnapshot(buf []byte) []byte {
	buf = append(buf, snapshotTag, snapshotVersion)
	buf = lang.AppendProgSig(buf, c.P)
	s := c.S
	nInit := 0
	for nInit < len(s.events) && s.events[nInit].TID == event.InitThread {
		nInit++
	}
	buf = binary.AppendUvarint(buf, uint64(nInit))
	for i := 0; i < nInit; i++ {
		e := s.events[i]
		buf = appendSnapString(buf, string(e.Var()))
		buf = binary.AppendVarint(buf, int64(e.WrVal()))
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.events)-nInit))
	for g := nInit; g < len(s.events); g++ {
		e := s.events[g]
		buf = append(buf, byte(e.Act.Kind))
		buf = binary.AppendUvarint(buf, uint64(e.TID))
		buf = appendSnapString(buf, string(e.Var()))
		if e.IsWrite() {
			buf = binary.AppendVarint(buf, int64(e.WrVal()))
		}
		w, err := s.observedWrite(event.Tag(g))
		if err != nil {
			// Unreachable on states built by the step functions: every
			// non-initialising event records its observation in rf/mo.
			panic(err)
		}
		buf = binary.AppendUvarint(buf, uint64(w))
	}
	return buf
}

// Restore rebuilds a configuration from a snapshot blob by replaying
// its event script through the step functions.
func (rarModel) Restore(data []byte) (model.Config, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("core: snapshot too short")
	}
	if data[0] != snapshotTag {
		return nil, fmt.Errorf("core: snapshot tag %q is not a RAR snapshot", data[0])
	}
	if data[1] != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", data[1])
	}
	p, rest, err := lang.DecodeProgSig(data[2:])
	if err != nil {
		return nil, fmt.Errorf("core: snapshot program: %w", err)
	}
	nInit, rest, err := snapUvarint(rest)
	if err != nil {
		return nil, err
	}
	vars := make(map[event.Var]event.Val, nInit)
	for i := uint64(0); i < nInit; i++ {
		var x string
		var v int64
		if x, rest, err = snapString(rest); err != nil {
			return nil, err
		}
		if v, rest, err = snapVarint(rest); err != nil {
			return nil, err
		}
		vars[event.Var(x)] = event.Val(v)
	}
	if uint64(len(vars)) != nInit {
		return nil, fmt.Errorf("core: duplicate variable in snapshot initialisation")
	}
	s := Init(vars)
	count, rest, err := snapUvarint(rest)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < count; i++ {
		if len(rest) == 0 {
			return nil, fmt.Errorf("core: truncated event %d", i)
		}
		k := event.Kind(rest[0])
		rest = rest[1:]
		if k > event.WrNA {
			return nil, fmt.Errorf("core: invalid event kind %d", k)
		}
		var tid uint64
		var x string
		if tid, rest, err = snapUvarint(rest); err != nil {
			return nil, err
		}
		if x, rest, err = snapString(rest); err != nil {
			return nil, err
		}
		var wval int64
		if k.IsWrite() {
			if wval, rest, err = snapVarint(rest); err != nil {
				return nil, err
			}
		}
		var w uint64
		if w, rest, err = snapUvarint(rest); err != nil {
			return nil, err
		}
		t := event.Thread(tid)
		loc := event.Var(x)
		switch {
		case k.IsUpdate():
			s, _, err = s.StepRMW(t, loc, event.Val(wval), event.Tag(w))
		case k.IsWrite():
			s, _, err = s.StepWriteKind(t, k, loc, event.Val(wval), event.Tag(w))
		default:
			s, _, err = s.StepReadKind(t, k, loc, event.Tag(w))
		}
		if err != nil {
			return nil, fmt.Errorf("core: replaying event %d: %w", i, err)
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes after snapshot", len(rest))
	}
	return Config{P: p, S: s}, nil
}
