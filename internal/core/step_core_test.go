package core

import (
	"errors"
	"testing"

	"repro/internal/event"
)

func TestStepReadBasics(t *testing.T) {
	s := Init(map[event.Var]event.Val{"x": 7})
	w, _ := s.Last("x")
	ns, e, err := s.StepRead(1, false, "x", w)
	if err != nil {
		t.Fatal(err)
	}
	if e.Act != event.Rd("x", 7) {
		t.Fatalf("event = %v", e)
	}
	if !ns.RFHas(w, e.Tag) {
		t.Fatal("rf edge missing")
	}
	if !ns.MO().Empty() {
		t.Fatal("read must not change mo")
	}
	// Acquire flavour.
	ns2, e2, err := s.StepRead(1, true, "x", w)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Act != event.RdA("x", 7) {
		t.Fatalf("event = %v", e2)
	}
	_ = ns2
}

func TestStepReadErrors(t *testing.T) {
	s := Init(map[event.Var]event.Val{"x": 0, "y": 0})
	wx, _ := s.Last("x")
	// Variable mismatch.
	if _, _, err := s.StepRead(1, false, "y", wx); !errors.Is(err, ErrVarMismatch) {
		t.Fatalf("err = %v, want ErrVarMismatch", err)
	}
	// Tag out of range.
	if _, _, err := s.StepRead(1, false, "x", 99); !errors.Is(err, ErrNotWrite) {
		t.Fatalf("err = %v, want ErrNotWrite", err)
	}
	// Observed event not a write.
	s1, re, _ := s.StepRead(1, false, "x", wx)
	if _, _, err := s1.StepRead(1, false, "x", re.Tag); !errors.Is(err, ErrNotWrite) {
		t.Fatalf("err = %v, want ErrNotWrite", err)
	}
	// Not observable: thread 1 writes x twice; the first write is then
	// hidden from thread 1 itself.
	s2, e1, _ := s.StepWrite(1, false, "x", 1, wx)
	s3, _, _ := s2.StepWrite(1, false, "x", 2, e1.Tag)
	if _, _, err := s3.StepRead(1, false, "x", e1.Tag); !errors.Is(err, ErrNotObservable) {
		t.Fatalf("err = %v, want ErrNotObservable", err)
	}
	// The init write is doubly hidden.
	if _, _, err := s3.StepRead(1, false, "x", wx); !errors.Is(err, ErrNotObservable) {
		t.Fatalf("err = %v, want ErrNotObservable", err)
	}
}

func TestStepWriteMOInsertion(t *testing.T) {
	s := Init(map[event.Var]event.Val{"x": 0})
	w0, _ := s.Last("x")
	s1, a, _ := s.StepWrite(1, false, "x", 1, w0)
	s2, b, _ := s1.StepWrite(1, false, "x", 2, a.Tag)
	// Thread 2 inserts between init and a: mo must become w0 < c < a < b.
	s3, c, err := s2.StepWrite(2, false, "x", 9, w0)
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := [][2]event.Tag{
		{w0, c.Tag}, {w0, a.Tag}, {w0, b.Tag},
		{c.Tag, a.Tag}, {c.Tag, b.Tag}, {a.Tag, b.Tag},
	}
	for _, p := range wantPairs {
		if !s3.MOHas(p[0], p[1]) {
			t.Errorf("mo missing (%v,%v)", s3.Event(p[0]), s3.Event(p[1]))
		}
		if s3.MOHas(p[1], p[0]) {
			t.Errorf("mo has converse (%v,%v)", s3.Event(p[1]), s3.Event(p[0]))
		}
	}
	if got := s3.MO().Count(); got != len(wantPairs) {
		t.Fatalf("mo count = %d, want %d", got, len(wantPairs))
	}
}

func TestStepWriteObservabilityConstraint(t *testing.T) {
	// Thread 2 reads thread 1's second write; it may then not insert
	// its own write before that write in mo.
	s := Init(map[event.Var]event.Val{"x": 0})
	w0, _ := s.Last("x")
	s1, a, _ := s.StepWrite(1, false, "x", 1, w0)
	s2, b, _ := s1.StepWrite(1, false, "x", 2, a.Tag)
	s3, _, err := s2.StepRead(2, false, "x", b.Tag)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s3.StepWrite(2, false, "x", 5, a.Tag); !errors.Is(err, ErrNotObservable) {
		t.Fatalf("insert after encountered-overwritten write: err = %v", err)
	}
	if _, _, err := s3.StepWrite(2, false, "x", 5, b.Tag); err != nil {
		t.Fatalf("insert after last write should succeed: %v", err)
	}
}

func TestStepRMWBasics(t *testing.T) {
	s := Init(map[event.Var]event.Val{"t": 1})
	w0, _ := s.Last("t")
	s1, u, err := s.StepRMW(1, "t", 2, w0)
	if err != nil {
		t.Fatal(err)
	}
	if u.Act != event.Upd("t", 1, 2) {
		t.Fatalf("event = %v", u)
	}
	if !s1.RFHas(w0, u.Tag) || !s1.MOHas(w0, u.Tag) {
		t.Fatal("update must be rf- and mo-adjacent to its predecessor")
	}
	// The predecessor is now covered: a second RMW must target u.
	if _, _, err := s1.StepRMW(2, "t", 3, w0); !errors.Is(err, ErrCovered) {
		t.Fatalf("err = %v, want ErrCovered", err)
	}
	s2, u2, err := s1.StepRMW(2, "t", 3, u.Tag)
	if err != nil {
		t.Fatal(err)
	}
	if u2.RdVal() != 2 {
		t.Fatalf("second update read %d, want 2", u2.RdVal())
	}
	if s2.CoveredWrites().Count() != 2 {
		t.Fatal("both non-final writes should be covered")
	}
}

func TestWriteAfterCoveredFails(t *testing.T) {
	s := Init(map[event.Var]event.Val{"t": 0})
	w0, _ := s.Last("t")
	s1, _, _ := s.StepRMW(1, "t", 1, w0)
	// Plain write insertion directly after the covered w0 is illegal;
	// reading w0 is still fine.
	if _, _, err := s1.StepWrite(2, false, "t", 9, w0); !errors.Is(err, ErrCovered) {
		t.Fatalf("err = %v, want ErrCovered", err)
	}
	if _, _, err := s1.StepRead(2, false, "t", w0); err != nil {
		t.Fatalf("reading a covered write must be allowed: %v", err)
	}
}

func TestUpdateChainStaysAtomic(t *testing.T) {
	// A chain of updates on an update-only variable: every write but
	// the last is covered, so new updates always read the last.
	s := Init(map[event.Var]event.Val{"t": 0})
	last, _ := s.Last("t")
	for i := 1; i <= 5; i++ {
		th := event.Thread(i%2 + 1)
		var u event.Event
		var err error
		s, u, err = s.StepRMW(th, "t", event.Val(i), last)
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if u.RdVal() != event.Val(i-1) {
			t.Fatalf("update %d read %d", i, u.RdVal())
		}
		last = u.Tag
	}
	cw := s.CoveredWrites()
	if cw.Count() != 5 { // all but the final update
		t.Fatalf("covered count = %d, want 5", cw.Count())
	}
	if cw.Test(int(last)) {
		t.Fatal("final update must not be covered")
	}
}

func TestHBConeAndSW(t *testing.T) {
	// Message passing: d := 5; f :=R 1 || rdA(f,1). After the acquire
	// read, thread 1's writes are in thread 2's hb cone.
	s := Init(map[event.Var]event.Val{"d": 0, "f": 0})
	id, _ := s.InitialFor("d")
	iff, _ := s.InitialFor("f")
	s, wd, _ := s.StepWrite(1, false, "d", 5, id)
	s, wf, _ := s.StepWrite(1, true, "f", 1, iff)
	s2, rf2, err := s.StepRead(2, true, "f", wf.Tag)
	if err != nil {
		t.Fatal(err)
	}
	cone := s2.HBCone(2)
	if !cone.Test(int(wd.Tag)) || !cone.Test(int(wf.Tag)) {
		t.Fatal("release-acquire sync must pull writer events into the cone")
	}
	if !cone.Test(int(rf2.Tag)) {
		t.Fatal("own events must be in the cone")
	}
	// Relaxed read would not synchronise: rebuild with relaxed read.
	s3, _, _ := s.StepRead(2, false, "f", wf.Tag)
	cone3 := s3.HBCone(2)
	if cone3.Test(int(wd.Tag)) {
		t.Fatal("relaxed read must not create hb")
	}
	// After the acquire read, thread 2 must read d = 5.
	obs := s2.ObservableFor(2, "d")
	if len(obs) != 1 || s2.Event(obs[0]).WrVal() != 5 {
		t.Fatalf("thread 2 observes d = %v", obs)
	}
	// After the relaxed read, thread 2 may still read d = 0 or 5.
	if len(s3.ObservableFor(2, "d")) != 2 {
		t.Fatal("relaxed read must leave both d writes observable")
	}
}
