package core

import (
	"testing"

	"repro/internal/event"
)

// buildExample32 constructs the C11 state of Example 3.2 step by step
// through the event semantics (so the construction itself exercises
// the Figure 3 rules). Thread 2 executes wrR(x,2) before wr(y,1), as
// drawn in the paper's figure. The execution order is one of the many
// that produce the state:
//
//	t2: wrR(x,2); wr(y,1)   t3: rdA(x,2); wr(z,3)
//	t1: updRA(x,2,4)        t4: updRA(y,0,5); rd(z,3)
//
// with updRA(y,0,5) inserting in mo between wr0(y,0) and wr2(y,1).
func buildExample32(t *testing.T) (*State, map[string]event.Tag) {
	t.Helper()
	s := Init(map[event.Var]event.Val{"x": 0, "y": 0, "z": 0})
	tags := map[string]event.Tag{}
	ix, _ := s.InitialFor("x")
	iy, _ := s.InitialFor("y")
	iz, _ := s.InitialFor("z")
	tags["ix"], tags["iy"], tags["iz"] = ix, iy, iz

	step := func(name string, f func() (*State, event.Event, error)) {
		t.Helper()
		ns, e, err := f()
		if err != nil {
			t.Fatalf("step %s: %v", name, err)
		}
		s = ns
		tags[name] = e.Tag
	}

	step("wrR2x2", func() (*State, event.Event, error) { return s.StepWrite(2, true, "x", 2, ix) })
	step("wr2y1", func() (*State, event.Event, error) { return s.StepWrite(2, false, "y", 1, iy) })
	step("rdA3x2", func() (*State, event.Event, error) { return s.StepRead(3, true, "x", tags["wrR2x2"]) })
	step("wr3z3", func() (*State, event.Event, error) { return s.StepWrite(3, false, "z", 3, iz) })
	step("upd1x24", func() (*State, event.Event, error) { return s.StepRMW(1, "x", 4, tags["wrR2x2"]) })
	step("upd4y05", func() (*State, event.Event, error) { return s.StepRMW(4, "y", 5, iy) })
	step("rd4z3", func() (*State, event.Event, error) { return s.StepRead(4, false, "z", tags["wr3z3"]) })
	return s, tags
}

// TestExample32Relations checks the rf/mo/sw/fr structure of the state
// in Example 3.2.
func TestExample32Relations(t *testing.T) {
	s, g := buildExample32(t)

	// rf: wrR2(x,2) → rdA3(x,2) and → updRA1(x,2,4); wr0(y,0) →
	// updRA4(y,0,5); wr3(z,3) → rd4(z,3).
	rfWant := [][2]event.Tag{
		{g["wrR2x2"], g["rdA3x2"]},
		{g["wrR2x2"], g["upd1x24"]},
		{g["iy"], g["upd4y05"]},
		{g["wr3z3"], g["rd4z3"]},
	}
	rf := s.RF()
	if rf.Count() != len(rfWant) {
		t.Fatalf("rf has %d edges, want %d: %v", rf.Count(), len(rfWant), rf)
	}
	for _, p := range rfWant {
		if !s.RFHas(p[0], p[1]) {
			t.Errorf("missing rf (%v, %v)", s.Event(p[0]), s.Event(p[1]))
		}
	}

	// mo per variable: x: init → wrR2 → upd1; y: init → upd4 → wr2;
	// z: init → wr3.
	moChains := map[event.Var][]event.Tag{
		"x": {g["ix"], g["wrR2x2"], g["upd1x24"]},
		"y": {g["iy"], g["upd4y05"], g["wr2y1"]},
		"z": {g["iz"], g["wr3z3"]},
	}
	for x, chain := range moChains {
		for i := 0; i < len(chain); i++ {
			for j := i + 1; j < len(chain); j++ {
				if !s.MOHas(chain[i], chain[j]) {
					t.Errorf("mo|%s missing (%v, %v)", x, s.Event(chain[i]), s.Event(chain[j]))
				}
				if s.MOHas(chain[j], chain[i]) {
					t.Errorf("mo|%s has converse (%v, %v)", x, s.Event(chain[j]), s.Event(chain[i]))
				}
			}
		}
	}

	// sw: the releasing write wrR2(x,2) synchronises with the acquiring
	// read rdA3(x,2) and the update updRA1(x,2,4); the relaxed initial
	// write wr0(y,0) does NOT synchronise with updRA4 (init writes are
	// relaxed).
	sw := s.SW()
	if !sw.Has(int(g["wrR2x2"]), int(g["rdA3x2"])) {
		t.Error("missing sw to rdA3")
	}
	if !sw.Has(int(g["wrR2x2"]), int(g["upd1x24"])) {
		t.Error("missing sw to updRA1")
	}
	if sw.Has(int(g["iy"]), int(g["upd4y05"])) {
		t.Error("relaxed initial write must not synchronise")
	}

	// fr: rdA3(x,2) and updRA1 relate to later x writes; updRA1 is
	// mo-maximal so only rdA3 → upd1 fr edge exists on x. On y,
	// updRA4 → wr2(y,1).
	fr := s.FR()
	if !fr.Has(int(g["rdA3x2"]), int(g["upd1x24"])) {
		t.Error("missing fr rdA3 → updRA1")
	}
	if !fr.Has(int(g["upd4y05"]), int(g["wr2y1"])) {
		t.Error("missing fr updRA4 → wr2(y,1)")
	}
	// fr is irreflexive even for updates (Id subtracted).
	if !fr.Irreflexive() {
		t.Error("fr must be irreflexive")
	}
}

// TestExample34EncounteredObservable reproduces the EW/OW computation
// of Example 3.4 and the covered writes of Example 3.5.
//
// Errata (recorded in EXPERIMENTS.md): the paper's printed sets for
// threads 2 and 3 deviate from Definition §3.2 on the state as drawn.
// With thread 2's program order wrR2(x,2) ; wr2(y,1) (as in the
// figure, and as required to make the printed EW(1)/OW(1)/EW(2)/EW(4)/
// OW(4) come out right):
//   - OW(2) additionally contains wrR2(x,2): its only mo successor
//     updRA1(x,2,4) is not in EW(2);
//   - EW(3) does not contain wr2(y,1) or updRA4(y,0,5): neither has an
//     eco?;hb? path to a thread-3 event;
//   - consequently OW(3) additionally contains wr0(y,0) and
//     updRA4(y,0,5).
//
// The assertions below are definition-faithful.
func TestExample34EncounteredObservable(t *testing.T) {
	s, g := buildExample32(t)
	name := func(tag event.Tag) string { return s.Event(tag).String() }

	wantEW := map[event.Thread][]string{
		1: {name(g["ix"]), name(g["iy"]), name(g["iz"]), name(g["wrR2x2"]), name(g["upd1x24"])},
		2: {name(g["ix"]), name(g["iy"]), name(g["iz"]), name(g["wr2y1"]), name(g["wrR2x2"]), name(g["upd4y05"])},
		3: {name(g["ix"]), name(g["iy"]), name(g["iz"]), name(g["wrR2x2"]), name(g["wr3z3"])},
		4: {name(g["ix"]), name(g["iy"]), name(g["iz"]), name(g["wr3z3"]), name(g["upd4y05"])},
	}
	for th, want := range wantEW {
		got := map[string]bool{}
		s.EncounteredWrites(th).ForEach(func(i int) { got[name(event.Tag(i))] = true })
		if len(got) != len(want) {
			t.Errorf("EW(%d): got %v, want %v", th, got, want)
			continue
		}
		for _, w := range want {
			if !got[w] {
				t.Errorf("EW(%d) missing %s", th, w)
			}
		}
	}

	wantOW := map[event.Thread][]string{
		1: {name(g["iy"]), name(g["iz"]), name(g["wr2y1"]), name(g["wr3z3"]), name(g["upd1x24"]), name(g["upd4y05"])},
		2: {name(g["iz"]), name(g["wr2y1"]), name(g["wr3z3"]), name(g["upd1x24"]), name(g["wrR2x2"])},
		3: {name(g["iy"]), name(g["wr2y1"]), name(g["wrR2x2"]), name(g["wr3z3"]), name(g["upd1x24"]), name(g["upd4y05"])},
		4: {name(g["ix"]), name(g["wr2y1"]), name(g["wrR2x2"]), name(g["wr3z3"]), name(g["upd1x24"]), name(g["upd4y05"])},
	}
	for th, want := range wantOW {
		got := map[string]bool{}
		s.ObservableWrites(th).ForEach(func(i int) { got[name(event.Tag(i))] = true })
		if len(got) != len(want) {
			t.Errorf("OW(%d): got %v, want %v", th, got, want)
			continue
		}
		for _, w := range want {
			if !got[w] {
				t.Errorf("OW(%d) missing %s", th, w)
			}
		}
	}

	// Example 3.4/3.5: CW = {wr0(y,0), wrR2(x,2)}.
	cw := s.CoveredWrites()
	if cw.Count() != 2 || !cw.Test(int(g["iy"])) || !cw.Test(int(g["wrR2x2"])) {
		t.Fatalf("CW = %v", cw)
	}

	// Example 3.5: no thread may insert a write between the covered
	// writes and their updates.
	for th := event.Thread(1); th <= 4; th++ {
		for _, w := range s.InsertionPointsFor(th, "x") {
			if w == g["wrR2x2"] {
				t.Errorf("thread %d may insert after covered wrR2(x,2)", th)
			}
		}
		for _, w := range s.InsertionPointsFor(th, "y") {
			if w == g["iy"] {
				t.Errorf("thread %d may insert after covered wr0(y,0)", th)
			}
		}
	}
}

// TestExample33EcoShape checks the closed-form structure of eco over a
// single variable (Example 3.3): writes are mo-ordered; each read is
// rf-after its write and fr-before the next write; the update u is
// rf-adjacent to its predecessor and fr/mo-before its successor.
func TestExample33EcoShape(t *testing.T) {
	s := Init(map[event.Var]event.Val{"x": 0})
	w0, _ := s.Last("x")

	// w1=init. Build w2, w3, u=upd, w4 in mo order with reads off w1
	// and w3.
	s, r1e, err := s.StepRead(2, false, "x", w0)
	if err != nil {
		t.Fatal(err)
	}
	s, w2e, err := s.StepWrite(1, false, "x", 2, w0)
	if err != nil {
		t.Fatal(err)
	}
	s, w3e, err := s.StepWrite(1, false, "x", 3, w2e.Tag)
	if err != nil {
		t.Fatal(err)
	}
	s, ue, err := s.StepRMW(1, "x", 4, w3e.Tag)
	if err != nil {
		t.Fatal(err)
	}
	s, w4e, err := s.StepWrite(1, false, "x", 5, ue.Tag)
	if err != nil {
		t.Fatal(err)
	}
	s, r2e, err := s.StepRead(2, false, "x", w3e.Tag)
	if err != nil {
		t.Fatal(err)
	}

	eco := s.ECO()
	// The full chain is eco-ordered: w1 < r1 < w2 < w3 < r2 < u < w4
	// modulo reads being eco-incomparable with each other.
	chain := []event.Tag{w0, w2e.Tag, w3e.Tag, ue.Tag, w4e.Tag}
	for i := 0; i < len(chain); i++ {
		for j := i + 1; j < len(chain); j++ {
			if !eco.Has(int(chain[i]), int(chain[j])) {
				t.Errorf("eco missing (%v, %v)", s.Event(chain[i]), s.Event(chain[j]))
			}
		}
	}
	// r1 reads w1: eco-after w1 (rf) and eco-before w2 (fr).
	if !eco.Has(int(w0), int(r1e.Tag)) || !eco.Has(int(r1e.Tag), int(w2e.Tag)) {
		t.Error("read r1 not between its write and the next write in eco")
	}
	// r2 reads w3: fr to u and to w4.
	fr := s.FR()
	if !fr.Has(int(r2e.Tag), int(ue.Tag)) || !fr.Has(int(r2e.Tag), int(w4e.Tag)) {
		t.Error("read r2 missing fr edges")
	}
	// u reads w3: rf(w3, u) and fr(u, w4) — via mo adjacency.
	if !s.RFHas(w3e.Tag, ue.Tag) {
		t.Error("update must read its immediate mo predecessor")
	}
	if !fr.Has(int(ue.Tag), int(w4e.Tag)) {
		t.Error("update missing fr to mo successor")
	}
	// eco is irreflexive (Coherence half).
	if !eco.Irreflexive() {
		t.Error("eco must be irreflexive")
	}
}

// TestExample36Peterson reproduces the observability argument of
// Example 3.6 on the Peterson state.
func TestExample36Peterson(t *testing.T) {
	s := Init(map[event.Var]event.Val{"flag1": 0, "flag2": 0, "turn": 1})
	iturn, _ := s.InitialFor("turn")
	if1, _ := s.InitialFor("flag1")
	if2, _ := s.InitialFor("flag2")

	// Thread 1: flag1 := true; turn.swap(2)^RA. Thread 2: flag2 := true.
	s, _, err := s.StepWrite(1, false, "flag1", event.True, if1)
	if err != nil {
		t.Fatal(err)
	}
	s, upd1, err := s.StepRMW(1, "turn", 2, iturn)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err = s.StepWrite(2, false, "flag2", event.True, if2)
	if err != nil {
		t.Fatal(err)
	}

	// Thread 2 is about to execute turn.swap(1)^RA. It can READ from
	// wr0(turn,1) ...
	obs := s.ObservableFor(2, "turn")
	found := false
	for _, w := range obs {
		if w == iturn {
			found = true
		}
	}
	if !found {
		t.Fatal("wr0(turn,1) should be readable by thread 2")
	}
	// ... but cannot UPDATE it: wr0(turn,1) is covered by updRA1.
	if _, _, err := s.StepRMW(2, "turn", 1, iturn); err == nil {
		t.Fatal("update of covered write wr0(turn,1) must fail")
	}
	// The update must instead read updRA1(turn,1,2), updating 2 → 1.
	s2, upd2, err := s.StepRMW(2, "turn", 1, upd1.Tag)
	if err != nil {
		t.Fatal(err)
	}
	if upd2.RdVal() != 2 || upd2.WrVal() != 1 {
		t.Fatalf("updRA2 = %v", upd2)
	}
	// mo, sw and fr edges from updRA1 to updRA2.
	if !s2.MOHas(upd1.Tag, upd2.Tag) {
		t.Error("missing mo updRA1 → updRA2")
	}
	if !s2.SW().Has(int(upd1.Tag), int(upd2.Tag)) {
		t.Error("missing sw updRA1 → updRA2")
	}

	// Continuation: thread 2 has encountered wr1(flag1,true) (via the
	// sw from updRA1) so it can no longer observe wr0(flag1,false);
	// its guard must evaluate to true (spin).
	obsFlag1 := s2.ObservableFor(2, "flag1")
	if len(obsFlag1) != 1 || s2.Event(obsFlag1[0]).WrVal() != event.True {
		t.Fatalf("thread 2 observes flag1 = %v", obsFlag1)
	}
	// Thread 2 can only observe updRA2 for turn (value 1): guard
	// turn=1 is true — spins.
	obsTurn2 := s2.ObservableFor(2, "turn")
	if len(obsTurn2) != 1 || obsTurn2[0] != upd2.Tag {
		t.Fatalf("thread 2 observes turn = %v", obsTurn2)
	}

	// Thread 1 has not encountered wr2(flag2,true) nor updRA2, so it
	// can read both flag2 values and both updates of turn.
	obsFlag2 := s2.ObservableFor(1, "flag2")
	if len(obsFlag2) != 2 {
		t.Fatalf("thread 1 flag2 choices = %v", obsFlag2)
	}
	obsTurn1 := s2.ObservableFor(1, "turn")
	if len(obsTurn1) != 2 {
		t.Fatalf("thread 1 turn choices = %v", obsTurn1)
	}
}
