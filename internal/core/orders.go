package core

import (
	"repro/internal/bits"
	"repro/internal/event"
	"repro/internal/relation"
)

// This file derives the orders of §3.1–§3.2 from a state:
//
//	sw  = rf ∩ (WrR × RdA)
//	hb  = (sb ∪ sw)⁺
//	fr  = (rf⁻¹ ; mo) \ Id
//	eco = (fr ∪ mo ∪ rf)⁺
//
// and the three write sets of §3.2: encountered writes EW_σ(t),
// observable writes OW_σ(t) and covered writes CW_σ.
//
// The derived orders and the per-thread observability sets are
// memoised: a state is interrogated once per enabled thread and per
// transition premise during successor generation, and recomputing the
// closures each time dominated the explorer's profile. Public
// accessors return defensive copies; the unexported *Locked variants
// return the memoised values directly and require memo.mu held.
//
// For successor states the memos are not computed from scratch at all:
// the *Locked getters delegate to the incremental engine
// (incremental.go), which extends the parent's memoised closures by
// the one new event's edges. The from-scratch formulas survive as the
// scratch* functions, used by root states and by the audit mode
// (AuditIncremental).

// SW returns the synchronises-with relation sw = rf ∩ (WrR × RdA).
// Update events are both releasing and acquiring, so rf edges into or
// out of updates synchronise when the other side is annotated.
func (s *State) SW() relation.Rel {
	return s.rf.FilterPairs(func(a, b int) bool {
		return s.events[a].Releasing() && s.events[b].Acquiring()
	})
}

// HB returns happens-before hb = (sb ∪ sw)⁺ (in successor
// orientation; the maintained closure is transposed).
func (s *State) HB() relation.Rel {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	return s.hbLocked().Converse()
}

// HBHas reports (a, b) ∈ hb without cloning the closure — the
// assertion checkers (internal/proof) interrogate single pairs on
// every explored configuration.
func (s *State) HBHas(a, b event.Tag) bool {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	return s.hbLocked().Has(int(b), int(a))
}

// hbLocked returns the memoised happens-before closure in predecessor
// orientation: row g holds {i | (i, g) ∈ hb}.
func (s *State) hbLocked() *relation.Rel {
	if !s.memo.hbOK {
		if p := s.inc.parent; p != nil {
			s.deriveHBLocked(p)
		} else {
			s.memo.hbP = s.scratchHB()
			s.memo.hbOK = true
		}
	}
	return &s.memo.hbP
}

// scratchHB computes the transposed hb from first principles, without
// touching the memo or the incremental provenance. Transposition
// commutes with union and transitive closure, so the predecessor
// closure is the closure of the predecessor edges.
func (s *State) scratchHB() relation.Rel {
	return relation.UnionOf(s.sbP, s.SW().Converse()).TransitiveClosure()
}

// FR returns the from-read relation fr = (rf⁻¹ ; mo) \ Id. The
// identity is subtracted to cope with update events, which read from
// their immediate mo-predecessor and would otherwise be fr-related to
// themselves (§3.1).
func (s *State) FR() relation.Rel {
	return relation.Compose(s.rf.Converse(), s.mo).WithoutIdentity()
}

// ECO returns the extended coherence order eco = (fr ∪ mo ∪ rf)⁺ [19]
// (in successor orientation; the maintained closure is transposed).
func (s *State) ECO() relation.Rel {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	return s.ecoLocked().Converse()
}

// ecoLocked returns the memoised eco closure in predecessor
// orientation: row g holds {i | (i, g) ∈ eco}.
func (s *State) ecoLocked() *relation.Rel {
	if !s.memo.ecoOK {
		if p := s.inc.parent; p != nil {
			s.deriveECOLocked(p)
		} else {
			s.memo.ecoP = s.scratchECO()
			s.memo.ecoOK = true
		}
	}
	return &s.memo.ecoP
}

// scratchECO computes the transposed eco from first principles.
func (s *State) scratchECO() relation.Rel {
	return relation.UnionOf(s.FR(), s.mo, s.rf).Converse().TransitiveClosure()
}

// combLocked returns the thread-independent kernel of the encountered-
// write computation, comb = eco? ; hb?, in predecessor orientation:
// row e holds {w | (w, e) ∈ comb}. EW_σ(t) is then one fused
// word-parallel operation — writes ∩ comb-predecessors of t's last
// event (see ewInto) — so memoising comb once per state makes every
// per-thread observability query a handful of word operations.
func (s *State) combLocked() *relation.Rel {
	if !s.memo.combOK {
		if p := s.inc.parent; p != nil {
			s.deriveCombLocked(p)
		} else {
			s.memo.combP = scratchComb(*s.ecoLocked(), *s.hbLocked())
			s.memo.combOK = true
		}
	}
	return &s.memo.combP
}

// scratchComb computes the transposed eco? ; hb? from the given
// transposed closures: (eco? ; hb?)⁻¹ = hb?⁻¹ ; eco?⁻¹.
func scratchComb(ecoP, hbP relation.Rel) relation.Rel {
	return relation.UnionOf(ecoP, hbP, relation.Compose(hbP, ecoP)).ReflexiveClosure()
}

// EncounteredWrites returns EW_σ(t): the writes w ∈ Wr ∩ D such that
// some event e of thread t has (w, e) ∈ eco? ; hb? (§3.2). The set is
// empty when t has executed no action.
func (s *State) EncounteredWrites(t event.Thread) bits.Set {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	return s.ewLocked(t).Clone()
}

// ewLocked returns the memoised EW_σ(t); memo.mu must be held and the
// result must not be mutated. With comb held transposed the set is
// one fused word-parallel operation over the maintained write set and
// the comb-predecessor row of t's last event — no per-write scan.
func (s *State) ewLocked(t event.Thread) bits.Set {
	for i := range s.memo.ew {
		if s.memo.ew[i].tid == t {
			return s.memo.ew[i].set
		}
	}
	out := s.ewInto(s.alloc.NewSet(len(s.events)), s.combLocked(), t)
	if s.memo.ew == nil {
		s.memo.ew = s.memo.ewBuf[:0]
	}
	s.memo.ew = append(s.memo.ew, threadSet{tid: t, set: out})
	return out
}

// scratchEW computes EW_σ(t) from the given eco?;hb? kernel into fresh
// heap storage (safe without the memo lock — used by the audit). It is
// deliberately definitional — a union over every event of t rather
// than the sb-monotonicity shortcut ewInto takes — so the audit checks
// that shortcut instead of repeating it.
func (s *State) scratchEW(comb *relation.Rel, t event.Thread) bits.Set {
	out := bits.New(len(s.events))
	tEvs := s.threadEvs(t)
	for e := tEvs.Next(0); e >= 0; e = tEvs.Next(e + 1) {
		out.OrAnd(comb.Row(e), s.writes)
	}
	return out
}

// ewInto fills out (an empty set of carrier capacity) with EW_σ(t):
// writes ∩ comb-predecessors of t's sb-last event. comb is monotone
// along sb — (w, e) ∈ eco?;hb? and (e, e') ∈ sb extend to (w, e')
// through hb — so the last event's predecessor row subsumes the rows
// of t's earlier events, and the per-thread set is one fused OrAnd.
// The initialising writes are sb-unordered among themselves, so for
// the init thread every row contributes.
func (s *State) ewInto(out bits.Set, comb *relation.Rel, t event.Thread) bits.Set {
	tEvs := s.threadEvs(t)
	if t == event.InitThread {
		for e := tEvs.Next(0); e >= 0; e = tEvs.Next(e + 1) {
			out.OrAnd(comb.Row(e), s.writes)
		}
		return out
	}
	last := tEvs.Max()
	if last < 0 {
		return out
	}
	out.OrAnd(comb.Row(last), s.writes)
	return out
}

// ObservableWrites returns OW_σ(t): writes not succeeded in mo by any
// encountered write of t (§3.2) — the writes t may read next.
func (s *State) ObservableWrites(t event.Thread) bits.Set {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	return s.observableLocked(t).Clone()
}

// observableLocked returns the memoised OW_σ(t); memo.mu must be held
// and the result must not be mutated.
func (s *State) observableLocked(t event.Thread) bits.Set {
	for i := range s.memo.ow {
		if s.memo.ow[i].tid == t {
			return s.memo.ow[i].set
		}
	}
	out := s.owInto(s.alloc.NewSet(len(s.events)), s.ewLocked(t))
	if s.memo.ow == nil {
		s.memo.ow = s.memo.owBuf[:0]
	}
	s.memo.ow = append(s.memo.ow, threadSet{tid: t, set: out})
	return out
}

// scratchOW computes OW from the given encountered-write set into
// fresh heap storage (safe without the memo lock — used by the audit).
func (s *State) scratchOW(ew bits.Set) bits.Set {
	return s.owInto(bits.New(len(s.events)), ew)
}

// owInto fills out (an empty set of carrier capacity) with OW.
func (s *State) owInto(out bits.Set, ew bits.Set) bits.Set {
	wr := s.writes
	for i := wr.Next(0); i >= 0; i = wr.Next(i + 1) {
		if !s.mo.Row(i).Intersects(ew) {
			out.Set(i)
		}
	}
	return out
}

// CoveredWrites returns CW_σ: writes immediately followed in rf by an
// update (§3.2). Inserting after a covered write would break update
// atomicity, so writes and updates may not be placed there.
func (s *State) CoveredWrites() bits.Set {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	return s.coveredLocked().Clone()
}

// coveredLocked returns the memoised CW_σ; memo.mu must be held and
// the result must not be mutated. Successors inherit the parent's CW
// through the incremental derivation (a step extends CW by at most the
// observed write, when the new event is an update).
func (s *State) coveredLocked() *bits.Set {
	if !s.memo.cwOK {
		if p := s.inc.parent; p != nil {
			s.deriveCWLocked(p)
		} else {
			s.memo.covered = s.scratchCW()
			s.memo.cwOK = true
		}
	}
	return &s.memo.covered
}

// scratchCW computes CW from first principles.
func (s *State) scratchCW() bits.Set {
	out := bits.New(len(s.events))
	wr := s.writes
	for i := wr.Next(0); i >= 0; i = wr.Next(i + 1) {
		row := s.rf.Row(i)
		for j := row.Next(0); j >= 0; j = row.Next(j + 1) {
			if s.events[j].IsUpdate() {
				out.Set(i)
				break
			}
		}
	}
	return out
}

// ObservableFor returns the writes to x observable by thread t,
// i.e. OW_σ(t)|ₓ, as sorted tags. These are the legal reads-from
// choices for a read of x by t (rule READ).
func (s *State) ObservableFor(t event.Thread, x event.Var) []event.Tag {
	return s.AppendObservableFor(nil, t, x)
}

// AppendObservableFor is ObservableFor into a caller-provided buffer —
// the successor hot path calls it once per read step per state, and
// the fresh slice the convenience form allocates was measurable.
func (s *State) AppendObservableFor(dst []event.Tag, t event.Thread, x event.Var) []event.Tag {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	ow := s.observableLocked(t)
	for i := ow.Next(0); i >= 0; i = ow.Next(i + 1) {
		if s.events[i].Var() == x {
			dst = append(dst, event.Tag(i))
		}
	}
	return dst
}

// InsertionPointsFor returns (OW_σ(t) \ CW_σ)|ₓ: the writes after
// which thread t may insert a new write or update to x in mo (rules
// WRITE and RMW).
func (s *State) InsertionPointsFor(t event.Thread, x event.Var) []event.Tag {
	return s.AppendInsertionPointsFor(nil, t, x)
}

// AppendInsertionPointsFor is InsertionPointsFor into a caller-provided
// buffer.
func (s *State) AppendInsertionPointsFor(dst []event.Tag, t event.Thread, x event.Var) []event.Tag {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	ow := s.observableLocked(t)
	cw := s.coveredLocked()
	for i := ow.Next(0); i >= 0; i = ow.Next(i + 1) {
		if !cw.Test(i) && s.events[i].Var() == x {
			dst = append(dst, event.Tag(i))
		}
	}
	return dst
}

// Last returns σ.last(x): the mo-maximal write to x (well-defined in
// any valid state; §5.1). The maximum is maintained on every mo splice
// (insertMO), so this is an index lookup, not an O(writes²) mo scan.
func (s *State) Last(x event.Var) (event.Tag, bool) {
	for i := range s.lastW {
		if s.lastW[i].x == x {
			return s.lastW[i].w, true
		}
	}
	return 0, false
}

// UpdateOnly reports whether x is an update-only variable in σ: every
// modification of x is an update or an initialising write (§5.1).
// Update-only variables admit the last-modification lemma (Lemma 5.6).
func (s *State) UpdateOnly(x event.Var) bool {
	for _, g := range s.writesTo(x) {
		if e := s.events[int(g)]; !e.IsUpdate() && !e.IsInit() {
			return false
		}
	}
	return true
}

// InHBCone reports g ∈ σ.hbc(t) without materialising the cone: g is
// initial, g is t's own, or g happens-before one of t's events. The
// per-configuration determinate-value assertions ask about exactly one
// event (the last write), so building the full cone per query was pure
// overhead.
func (s *State) InHBCone(t event.Thread, g event.Tag) bool {
	e := s.events[int(g)]
	if e.IsInit() || e.TID == t {
		return true
	}
	last := s.threadEvs(t).Max()
	if last < 0 {
		return false
	}
	// hb is monotone along sb, so "g happens-before some event of t"
	// collapses to one membership test against the last event's
	// predecessor row.
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	return s.hbLocked().Row(last).Test(int(g))
}

// HBCone returns σ.hbc(t) = I_σ ∪ {e | ∃e'. tid(e') = t ∧ (e, e') ∈
// hb?} — the happens-before cone of t (Appendix B). Determinate-value
// assertions require the last write to lie in this cone. Initials and
// t's events come from the per-thread index.
func (s *State) HBCone(t event.Thread) bits.Set {
	n := len(s.events)
	out := bits.New(n)
	out.Or(s.threadEvs(event.InitThread)) // I_σ (thread 0 only writes)
	tEvents := s.threadEvs(t)
	out.Or(tEvents) // (e,e) ∈ hb? with tid(e)=t
	last := tEvents.Max()
	if last < 0 {
		return out
	}
	// By sb-monotonicity of hb, the cone is the last event's
	// predecessor row — one word-parallel union instead of an
	// intersection test per event.
	s.memo.mu.Lock()
	out.Or(s.hbLocked().Row(last))
	s.memo.mu.Unlock()
	return out
}
