package core

import (
	"repro/internal/bits"
	"repro/internal/event"
	"repro/internal/relation"
)

// This file derives the orders of §3.1–§3.2 from a state:
//
//	sw  = rf ∩ (WrR × RdA)
//	hb  = (sb ∪ sw)⁺
//	fr  = (rf⁻¹ ; mo) \ Id
//	eco = (fr ∪ mo ∪ rf)⁺
//
// and the three write sets of §3.2: encountered writes EW_σ(t),
// observable writes OW_σ(t) and covered writes CW_σ.
//
// The derived orders and the per-thread observability sets are
// memoised: a state is interrogated once per enabled thread and per
// transition premise during successor generation, and recomputing the
// closures each time dominated the explorer's profile. Public
// accessors return defensive copies; the unexported *Locked variants
// return the memoised values directly and require memo.mu held.

// SW returns the synchronises-with relation sw = rf ∩ (WrR × RdA).
// Update events are both releasing and acquiring, so rf edges into or
// out of updates synchronise when the other side is annotated.
func (s *State) SW() relation.Rel {
	return s.rf.FilterPairs(func(a, b int) bool {
		return s.events[a].Releasing() && s.events[b].Acquiring()
	})
}

// HB returns happens-before hb = (sb ∪ sw)⁺.
func (s *State) HB() relation.Rel {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	return s.hbLocked().Clone()
}

func (s *State) hbLocked() *relation.Rel {
	if s.memo.hb == nil {
		u := relation.UnionOf(s.sb, s.SW())
		hb := u.TransitiveClosure()
		s.memo.hb = &hb
	}
	return s.memo.hb
}

// FR returns the from-read relation fr = (rf⁻¹ ; mo) \ Id. The
// identity is subtracted to cope with update events, which read from
// their immediate mo-predecessor and would otherwise be fr-related to
// themselves (§3.1).
func (s *State) FR() relation.Rel {
	return relation.Compose(s.rf.Converse(), s.mo).WithoutIdentity()
}

// ECO returns the extended coherence order eco = (fr ∪ mo ∪ rf)⁺ [19].
func (s *State) ECO() relation.Rel {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	return s.ecoLocked().Clone()
}

func (s *State) ecoLocked() *relation.Rel {
	if s.memo.eco == nil {
		u := relation.UnionOf(s.FR(), s.mo, s.rf)
		eco := u.TransitiveClosure()
		s.memo.eco = &eco
	}
	return s.memo.eco
}

// combLocked returns the thread-independent kernel of the encountered-
// write computation, eco? ; hb? = Id ∪ eco ∪ hb ∪ eco;hb. EW_σ(t) is
// this relation's image restricted to writes and intersected with
// thread t's events, so memoising comb once per state makes every
// per-thread observability query a cheap row scan.
func (s *State) combLocked() *relation.Rel {
	if s.memo.comb == nil {
		eco := s.ecoLocked()
		hb := s.hbLocked()
		comb := relation.UnionOf(*eco, *hb, relation.Compose(*eco, *hb)).ReflexiveClosure()
		s.memo.comb = &comb
	}
	return s.memo.comb
}

// EncounteredWrites returns EW_σ(t): the writes w ∈ Wr ∩ D such that
// some event e of thread t has (w, e) ∈ eco? ; hb? (§3.2). The set is
// empty when t has executed no action.
func (s *State) EncounteredWrites(t event.Thread) bits.Set {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	return s.encounteredLocked(t)
}

// encounteredLocked computes EW_σ(t) into a fresh set; memo.mu held.
func (s *State) encounteredLocked(t event.Thread) bits.Set {
	n := len(s.events)
	out := bits.New(n)

	tEvents := bits.New(n)
	for i := range s.events {
		if s.events[i].TID == t {
			tEvents.Set(i)
		}
	}
	if tEvents.Empty() {
		return out
	}
	comb := s.combLocked()
	for i := range s.events {
		if !s.events[i].IsWrite() {
			continue
		}
		// w encountered iff comb row of w intersects t's events.
		if comb.Row(i).Intersects(tEvents) {
			out.Set(i)
		}
	}
	return out
}

// ObservableWrites returns OW_σ(t): writes not succeeded in mo by any
// encountered write of t (§3.2) — the writes t may read next.
func (s *State) ObservableWrites(t event.Thread) bits.Set {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	return s.observableLocked(t).Clone()
}

// observableLocked returns the memoised OW_σ(t); memo.mu must be held
// and the result must not be mutated.
func (s *State) observableLocked(t event.Thread) *bits.Set {
	if ow, ok := s.memo.ow[t]; ok {
		return ow
	}
	ew := s.encounteredLocked(t)
	out := bits.New(len(s.events))
	for i := range s.events {
		if !s.events[i].IsWrite() {
			continue
		}
		if !s.mo.Row(i).Intersects(ew) {
			out.Set(i)
		}
	}
	if s.memo.ow == nil {
		s.memo.ow = make(map[event.Thread]*bits.Set, 4)
	}
	s.memo.ow[t] = &out
	return &out
}

// CoveredWrites returns CW_σ: writes immediately followed in rf by an
// update (§3.2). Inserting after a covered write would break update
// atomicity, so writes and updates may not be placed there.
func (s *State) CoveredWrites() bits.Set {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	return s.coveredLocked().Clone()
}

// coveredLocked returns the memoised CW_σ; memo.mu must be held and
// the result must not be mutated.
func (s *State) coveredLocked() *bits.Set {
	if s.memo.covered == nil {
		out := bits.New(len(s.events))
		for i := range s.events {
			if !s.events[i].IsWrite() {
				continue
			}
			row := s.rf.Row(i)
			for j := row.Next(0); j >= 0; j = row.Next(j + 1) {
				if s.events[j].IsUpdate() {
					out.Set(i)
					break
				}
			}
		}
		s.memo.covered = &out
	}
	return s.memo.covered
}

// ObservableFor returns the writes to x observable by thread t,
// i.e. OW_σ(t)|ₓ, as sorted tags. These are the legal reads-from
// choices for a read of x by t (rule READ).
func (s *State) ObservableFor(t event.Thread, x event.Var) []event.Tag {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	ow := s.observableLocked(t)
	var out []event.Tag
	for i := ow.Next(0); i >= 0; i = ow.Next(i + 1) {
		if s.events[i].Var() == x {
			out = append(out, event.Tag(i))
		}
	}
	return out
}

// InsertionPointsFor returns (OW_σ(t) \ CW_σ)|ₓ: the writes after
// which thread t may insert a new write or update to x in mo (rules
// WRITE and RMW).
func (s *State) InsertionPointsFor(t event.Thread, x event.Var) []event.Tag {
	s.memo.mu.Lock()
	defer s.memo.mu.Unlock()
	ow := s.observableLocked(t)
	cw := s.coveredLocked()
	var out []event.Tag
	for i := ow.Next(0); i >= 0; i = ow.Next(i + 1) {
		if !cw.Test(i) && s.events[i].Var() == x {
			out = append(out, event.Tag(i))
		}
	}
	return out
}

// Last returns σ.last(x): the mo-maximal write to x (well-defined in
// any valid state; §5.1).
func (s *State) Last(x event.Var) (event.Tag, bool) {
	var found bool
	var last event.Tag
	for i, e := range s.events {
		if !e.IsWrite() || e.Var() != x {
			continue
		}
		g := event.Tag(i)
		if !found {
			found, last = true, g
			continue
		}
		if s.mo.Has(int(last), int(g)) {
			last = g
		}
	}
	return last, found
}

// UpdateOnly reports whether x is an update-only variable in σ: every
// modification of x is an update or an initialising write (§5.1).
// Update-only variables admit the last-modification lemma (Lemma 5.6).
func (s *State) UpdateOnly(x event.Var) bool {
	for _, e := range s.events {
		if e.IsWrite() && e.Var() == x && !e.IsUpdate() && !e.IsInit() {
			return false
		}
	}
	return true
}

// HBCone returns σ.hbc(t) = I_σ ∪ {e | ∃e'. tid(e') = t ∧ (e, e') ∈
// hb?} — the happens-before cone of t (Appendix B). Determinate-value
// assertions require the last write to lie in this cone.
func (s *State) HBCone(t event.Thread) bits.Set {
	n := len(s.events)
	out := bits.New(n)
	tEvents := bits.New(n)
	for i, e := range s.events {
		if e.IsInit() {
			out.Set(i)
		}
		if e.TID == t {
			tEvents.Set(i)
			out.Set(i) // (e,e) ∈ hb? with tid(e)=t
		}
	}
	s.memo.mu.Lock()
	hb := s.hbLocked()
	for i := 0; i < n; i++ {
		if hb.Row(i).Intersects(tEvents) {
			out.Set(i)
		}
	}
	s.memo.mu.Unlock()
	return out
}
