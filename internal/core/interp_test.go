package core

import (
	"testing"

	"repro/internal/event"
	"repro/internal/lang"
)

// collectOutcomes explores all maximal runs of a configuration and
// returns the set of final-state summaries produced by summarise.
func collectOutcomes(t *testing.T, c Config, summarise func(Config) string) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	seen := map[string]bool{}
	var dfs func(Config)
	dfs = func(cfg Config) {
		key := cfg.Key()
		if seen[key] {
			return
		}
		seen[key] = true
		succ := cfg.Successors()
		if len(succ) == 0 {
			if !cfg.Terminated() {
				t.Fatalf("stuck non-terminated configuration: %s", cfg.P)
			}
			out[summarise(cfg)] = true
			return
		}
		for _, s := range succ {
			dfs(s.C)
		}
	}
	dfs(c)
	return out
}

func TestInterpSilentStep(t *testing.T) {
	c := NewConfig(lang.Prog{lang.SeqC(lang.SkipC(), lang.SkipC())},
		map[event.Var]event.Val{"x": 0})
	succ := c.Successors()
	if len(succ) != 1 || !succ[0].Silent {
		t.Fatalf("succ = %+v", succ)
	}
	if succ[0].C.S != c.S {
		t.Fatal("silent step must not change the state")
	}
}

// Example 4.5's program: thread 1: z := x, thread 2: x := 5. Under the
// RA semantics the read of x can only return 0 (init) or 5, and 5 only
// after thread 2's write — never "out of thin air".
func TestExample45NoThinAirOperationally(t *testing.T) {
	p := lang.Prog{
		lang.AssignC("z", lang.X("x")),
		lang.AssignC("x", lang.V(5)),
	}
	c := NewConfig(p, map[event.Var]event.Val{"x": 0, "z": 0})
	outcomes := collectOutcomes(t, c, func(fc Config) string {
		g, _ := fc.S.Last("z")
		return fc.S.Event(g).Act.String()
	})
	want := map[string]bool{"wr(z,0)": true, "wr(z,5)": true}
	if len(outcomes) != len(want) {
		t.Fatalf("outcomes = %v", outcomes)
	}
	for k := range want {
		if !outcomes[k] {
			t.Errorf("missing outcome %s", k)
		}
	}
}

// The read-read coherence shape: a thread that reads the new value of
// x can never subsequently read the old value.
func TestCoherenceReadRead(t *testing.T) {
	p := lang.Prog{
		lang.AssignC("x", lang.V(1)),
		lang.SeqC(
			lang.AssignC("a", lang.X("x")),
			lang.AssignC("b", lang.X("x")),
		),
	}
	c := NewConfig(p, map[event.Var]event.Val{"x": 0, "a": 0, "b": 0})
	outcomes := collectOutcomes(t, c, func(fc Config) string {
		ga, _ := fc.S.Last("a")
		gb, _ := fc.S.Last("b")
		return fc.S.Event(ga).Act.String() + fc.S.Event(gb).Act.String()
	})
	if outcomes["wr(a,1)wr(b,0)"] {
		t.Fatal("coherence violation: read 1 then 0")
	}
	for _, ok := range []string{"wr(a,0)wr(b,0)", "wr(a,0)wr(b,1)", "wr(a,1)wr(b,1)"} {
		if !outcomes[ok] {
			t.Errorf("missing legal outcome %s", ok)
		}
	}
}

// Message passing with release/acquire forbids the stale-data outcome;
// see Example 5.7.
func TestMessagePassingRA(t *testing.T) {
	p := lang.Prog{
		lang.SeqC(
			lang.AssignC("d", lang.V(5)),
			lang.AssignRelC("f", lang.V(1)),
		),
		lang.SeqC(
			lang.AssignC("rf", lang.XA("f")),
			lang.AssignC("rd", lang.X("d")),
		),
	}
	c := NewConfig(p, map[event.Var]event.Val{"d": 0, "f": 0, "rf": 0, "rd": 0})
	outcomes := collectOutcomes(t, c, func(fc Config) string {
		gf, _ := fc.S.Last("rf")
		gd, _ := fc.S.Last("rd")
		return fc.S.Event(gf).Act.String() + "," + fc.S.Event(gd).Act.String()
	})
	if outcomes["wr(rf,1),wr(rd,0)"] {
		t.Fatal("MP violation: flag seen but data stale under release/acquire")
	}
	if !outcomes["wr(rf,1),wr(rd,5)"] || !outcomes["wr(rf,0),wr(rd,0)"] {
		t.Fatalf("expected outcomes missing: %v", outcomes)
	}
}

// Fully relaxed message passing allows the stale read.
func TestMessagePassingRelaxedAllowsStale(t *testing.T) {
	p := lang.Prog{
		lang.SeqC(
			lang.AssignC("d", lang.V(5)),
			lang.AssignC("f", lang.V(1)), // relaxed flag write
		),
		lang.SeqC(
			lang.AssignC("rf", lang.X("f")), // relaxed flag read
			lang.AssignC("rd", lang.X("d")),
		),
	}
	c := NewConfig(p, map[event.Var]event.Val{"d": 0, "f": 0, "rf": 0, "rd": 0})
	outcomes := collectOutcomes(t, c, func(fc Config) string {
		gf, _ := fc.S.Last("rf")
		gd, _ := fc.S.Last("rd")
		return fc.S.Event(gf).Act.String() + "," + fc.S.Event(gd).Act.String()
	})
	if !outcomes["wr(rf,1),wr(rd,0)"] {
		t.Fatal("relaxed MP must allow the stale-data outcome")
	}
}

// Store buffering: the both-read-zero outcome is allowed even with
// release/acquire annotations (RA is weaker than SC).
func TestStoreBufferingWeakOutcomeAllowed(t *testing.T) {
	p := lang.Prog{
		lang.SeqC(
			lang.AssignRelC("x", lang.V(1)),
			lang.AssignC("a", lang.XA("y")),
		),
		lang.SeqC(
			lang.AssignRelC("y", lang.V(1)),
			lang.AssignC("b", lang.XA("x")),
		),
	}
	c := NewConfig(p, map[event.Var]event.Val{"x": 0, "y": 0, "a": 0, "b": 0})
	outcomes := collectOutcomes(t, c, func(fc Config) string {
		ga, _ := fc.S.Last("a")
		gb, _ := fc.S.Last("b")
		return fc.S.Event(ga).Act.String() + fc.S.Event(gb).Act.String()
	})
	if !outcomes["wr(a,0)wr(b,0)"] {
		t.Fatal("SB weak outcome must be allowed under RA")
	}
}

// Load buffering is excluded in the RAR fragment: sb ∪ rf is acyclic,
// so both threads cannot read the other's (later) write.
func TestLoadBufferingForbidden(t *testing.T) {
	p := lang.Prog{
		lang.SeqC(lang.AssignC("a", lang.X("x")), lang.AssignC("y", lang.V(1))),
		lang.SeqC(lang.AssignC("b", lang.X("y")), lang.AssignC("x", lang.V(1))),
	}
	c := NewConfig(p, map[event.Var]event.Val{"x": 0, "y": 0, "a": 0, "b": 0})
	outcomes := collectOutcomes(t, c, func(fc Config) string {
		ga, _ := fc.S.Last("a")
		gb, _ := fc.S.Last("b")
		return fc.S.Event(ga).Act.String() + fc.S.Event(gb).Act.String()
	})
	if outcomes["wr(a,1)wr(b,1)"] {
		t.Fatal("LB outcome must be forbidden in the RAR fragment")
	}
}

func TestConfigKeyDistinguishes(t *testing.T) {
	p := lang.Prog{lang.AssignC("x", lang.V(1))}
	c := NewConfig(p, map[event.Var]event.Val{"x": 0})
	succ := c.Successors()
	if len(succ) != 1 {
		t.Fatalf("succ = %d", len(succ))
	}
	if succ[0].C.Key() == c.Key() {
		t.Fatal("keys must differ after a step")
	}
	if succ[0].E.Act != event.Wr("x", 1) || succ[0].T != 1 {
		t.Fatalf("succ meta = %+v", succ[0])
	}
}

func BenchmarkSuccessors(b *testing.B) {
	p := lang.Prog{
		lang.SeqC(lang.AssignRelC("x", lang.V(1)), lang.AssignC("a", lang.XA("y"))),
		lang.SeqC(lang.AssignRelC("y", lang.V(1)), lang.AssignC("b", lang.XA("x"))),
	}
	c := NewConfig(p, map[event.Var]event.Val{"x": 0, "y": 0, "a": 0, "b": 0})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(c.Successors()) == 0 {
			b.Fatal("no successors")
		}
	}
}

func BenchmarkStepRMWChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := Init(map[event.Var]event.Val{"t": 0})
		last, _ := s.Last("t")
		for j := 1; j <= 8; j++ {
			var u event.Event
			var err error
			s, u, err = s.StepRMW(event.Thread(j%2+1), "t", event.Val(j), last)
			if err != nil {
				b.Fatal(err)
			}
			last = u.Tag
		}
	}
}
