package core

import (
	"errors"
	"fmt"

	"repro/internal/event"
	"repro/internal/fingerprint"
)

// This file implements the event semantics of Figure 3: the transition
// relation σ --(w,e)-->_RA σ', where w is the write observed by the
// new event e. Each rule validates its premises and returns an error
// when the transition is not enabled, so every constructed state is a
// valid C11 state (Theorem 4.4 is checked in the test suite).

// Transition errors.
var (
	// ErrNotObservable: the chosen write is not in OW_σ(t).
	ErrNotObservable = errors.New("core: write not observable by thread")
	// ErrCovered: the chosen write is covered by an update (CW_σ).
	ErrCovered = errors.New("core: write covered by an update")
	// ErrVarMismatch: the chosen write is to a different variable.
	ErrVarMismatch = errors.New("core: variable mismatch")
	// ErrNotWrite: the chosen event is not a write.
	ErrNotWrite = errors.New("core: observed event is not a write")
)

// StepRead implements rule READ: thread t reads variable x from the
// observable write w, adding event e with action rd(x, wrval(w)) (or
// rdA when acq). It returns the successor state and the new event.
func (s *State) StepRead(t event.Thread, acq bool, x event.Var, w event.Tag) (*State, event.Event, error) {
	k := event.RdX
	if acq {
		k = event.RdAcq
	}
	return s.StepReadKind(t, k, x, w)
}

// StepReadKind is StepRead generalised over the read kind (RdX, RdAcq
// or the extended RdNA). Non-atomic reads follow the same READ rule —
// they behave like relaxed reads in the model; racing on them is
// flagged by internal/races.
func (s *State) StepReadKind(t event.Thread, k event.Kind, x event.Var, w event.Tag) (*State, event.Event, error) {
	if !k.IsRead() || k.IsUpdate() {
		return nil, event.Event{}, fmt.Errorf("core: StepReadKind with kind %v", k)
	}
	if err := s.checkObserved(t, x, w, false); err != nil {
		return nil, event.Event{}, err
	}
	v := s.events[int(w)].WrVal()
	a := event.Action{Kind: k, Loc: x, RVal: v}
	out := s.cloneGrow()
	g := out.addEvent(a, t)
	out.rf.Add(int(w), int(g)) // rf' = rf ∪ {(w, e)}
	out.notePair(fingerprint.LabelRF, int(w), int(g))
	out.linkParent(s, g, w, t, true, false)
	return out, out.events[int(g)], nil
}

// StepWrite implements rule WRITE: thread t writes value v to x,
// inserting the new event immediately after w in mo (mo' = mo[w, e]).
// w must be observable and not covered.
func (s *State) StepWrite(t event.Thread, rel bool, x event.Var, v event.Val, w event.Tag) (*State, event.Event, error) {
	k := event.WrX
	if rel {
		k = event.WrRel
	}
	return s.StepWriteKind(t, k, x, v, w)
}

// StepWriteKind is StepWrite generalised over the write kind (WrX,
// WrRel or the extended WrNA).
func (s *State) StepWriteKind(t event.Thread, k event.Kind, x event.Var, v event.Val, w event.Tag) (*State, event.Event, error) {
	if !k.IsWrite() || k.IsUpdate() {
		return nil, event.Event{}, fmt.Errorf("core: StepWriteKind with kind %v", k)
	}
	if err := s.checkObserved(t, x, w, true); err != nil {
		return nil, event.Event{}, err
	}
	a := event.Action{Kind: k, Loc: x, WVal: v}
	out := s.cloneGrow()
	g := out.addEvent(a, t)
	out.insertMO(w, g)
	out.linkParent(s, g, w, t, false, true)
	return out, out.events[int(g)], nil
}

// StepRMW implements rule RMW: thread t atomically reads wrval(w) from
// x and writes v, with rf' = rf ∪ {(w, e)} and mo' = mo[w, e]. w must
// be observable and not covered.
func (s *State) StepRMW(t event.Thread, x event.Var, v event.Val, w event.Tag) (*State, event.Event, error) {
	if err := s.checkObserved(t, x, w, true); err != nil {
		return nil, event.Event{}, err
	}
	m := s.events[int(w)].WrVal()
	a := event.Upd(x, m, v)
	out := s.cloneGrow()
	g := out.addEvent(a, t)
	out.rf.Add(int(w), int(g))
	out.notePair(fingerprint.LabelRF, int(w), int(g))
	out.insertMO(w, g)
	out.linkParent(s, g, w, t, true, true)
	return out, out.events[int(g)], nil
}

// checkObserved validates the common premises of the Figure 3 rules.
func (s *State) checkObserved(t event.Thread, x event.Var, w event.Tag, excludeCovered bool) error {
	if int(w) < 0 || int(w) >= len(s.events) {
		return fmt.Errorf("%w: tag %d out of range", ErrNotWrite, w)
	}
	we := s.events[int(w)]
	if !we.IsWrite() {
		return ErrNotWrite
	}
	if we.Var() != x {
		return fmt.Errorf("%w: %s writes %s, not %s", ErrVarMismatch, we, we.Var(), x)
	}
	s.memo.mu.Lock()
	observable := s.observableLocked(t).Test(int(w))
	covered := excludeCovered && s.coveredLocked().Test(int(w))
	s.memo.mu.Unlock()
	if !observable {
		return fmt.Errorf("%w: %s by thread %d", ErrNotObservable, we, t)
	}
	if covered {
		return fmt.Errorf("%w: %s", ErrCovered, we)
	}
	return nil
}

// insertMO performs mo := mo[w, e] = mo ∪ (mo⁺w × {e}) ∪ ({e} × mo[w])
// where mo⁺w = {w} ∪ mo⁻¹[w] (§3.2): e is placed immediately after w.
// Only writes to w's variable can be mo-related to it, so candidates
// come from the per-variable write index, not a scan of D. The index
// includes e itself (appended by addEvent), which is skipped.
func (s *State) insertMO(w, e event.Tag) {
	wi, ei := int(w), int(e)
	x := s.events[wi].Var()
	// {e' | (e', w) ∈ mo} ∪ {w} all precede e.
	for _, v := range s.writesTo(x) {
		vi := int(v)
		if vi != ei && (vi == wi || s.mo.Has(vi, wi)) {
			s.mo.Add(vi, ei)
			s.notePair(fingerprint.LabelMO, vi, ei)
		}
	}
	// e precedes everything w preceded. Iterating w's row directly is
	// safe: the loop only mutates e's row, and e ≠ w (e is the fresh
	// maximal tag), so the row being walked never changes under us.
	row := s.mo.Row(wi)
	for j := row.Next(0); j >= 0; j = row.Next(j + 1) {
		if j != ei {
			s.mo.Add(ei, j)
			s.notePair(fingerprint.LabelMO, ei, j)
		}
	}
	// e is the new mo-maximal write to x iff it was inserted after the
	// previous maximum. The lastW slice may still alias the parent's,
	// so it is replaced, not mutated.
	for i := range s.lastW {
		if s.lastW[i].x == x {
			if s.lastW[i].w == w {
				out := make([]lastWrite, len(s.lastW))
				copy(out, s.lastW)
				out[i].w = e
				s.lastW = out
			}
			break
		}
	}
}
