package core

// Property tests for the incremental derived-order engine: along any
// transition sequence, the inherited-and-extended hb/eco/comb/CW and
// the maintained indexes must agree exactly with from-scratch
// recomputation (AuditIncremental returns nothing).

import (
	"math/rand"
	"testing"

	"repro/internal/event"
)

func mustAudit(t *testing.T, s *State, at string) {
	t.Helper()
	if bad := s.AuditIncremental(); len(bad) != 0 {
		t.Fatalf("%s: %d incremental mismatches:\n%s\nstate:\n%s",
			at, len(bad), bad[0], s)
	}
}

// TestIncrementalExample32 walks the paper's Example 3.2 — the
// richest worked example, mixing releasing writes, acquiring reads and
// two updates — auditing after every step.
func TestIncrementalExample32(t *testing.T) {
	s := Init(map[event.Var]event.Val{"x": 0, "y": 0, "z": 0})
	mustAudit(t, s, "init")
	ix, _ := s.InitialFor("x")
	iy, _ := s.InitialFor("y")
	iz, _ := s.InitialFor("z")

	step := func(name string, f func() (*State, event.Event, error)) event.Tag {
		t.Helper()
		ns, e, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s = ns
		mustAudit(t, s, name)
		return e.Tag
	}
	wx := step("wrR x2", func() (*State, event.Event, error) { return s.StepWrite(2, true, "x", 2, ix) })
	step("wr y1", func() (*State, event.Event, error) { return s.StepWrite(2, false, "y", 1, iy) })
	step("rdA x", func() (*State, event.Event, error) { return s.StepRead(3, true, "x", wx) })
	wz := step("wr z3", func() (*State, event.Event, error) { return s.StepWrite(3, false, "z", 3, iz) })
	step("upd x", func() (*State, event.Event, error) { return s.StepRMW(1, "x", 4, wx) })
	step("upd y", func() (*State, event.Event, error) { return s.StepRMW(4, "y", 5, iy) })
	step("rd z", func() (*State, event.Event, error) { return s.StepRead(4, false, "z", wz) })
}

// TestIncrementalRandomWalks drives long random transition sequences
// over every rule and annotation mix and audits each state. The walk
// picks among all enabled read/write/update transitions uniformly, so
// mo splices into the middle of long mo chains, covered writes and
// multi-variable rf/fr fans all occur.
func TestIncrementalRandomWalks(t *testing.T) {
	rng := rand.New(rand.NewSource(1912))
	vars := []event.Var{"x", "y", "z"}
	for walk := 0; walk < 40; walk++ {
		s := Init(map[event.Var]event.Val{"x": 0, "y": 0, "z": 0})
		for step := 0; step < 14; step++ {
			th := event.Thread(1 + rng.Intn(3))
			x := vars[rng.Intn(len(vars))]
			var (
				ns  *State
				err error
			)
			switch rng.Intn(4) {
			case 0: // read (relaxed or acquiring)
				ow := s.ObservableFor(th, x)
				if len(ow) == 0 {
					continue
				}
				ns, _, err = s.StepRead(th, rng.Intn(2) == 0, x, ow[rng.Intn(len(ow))])
			case 1, 2: // write (relaxed or releasing)
				pts := s.InsertionPointsFor(th, x)
				if len(pts) == 0 {
					continue
				}
				ns, _, err = s.StepWrite(th, rng.Intn(2) == 0, x, event.Val(step+1), pts[rng.Intn(len(pts))])
			default: // update
				pts := s.InsertionPointsFor(th, x)
				if len(pts) == 0 {
					continue
				}
				ns, _, err = s.StepRMW(th, x, event.Val(step+1), pts[rng.Intn(len(pts))])
			}
			if err != nil {
				t.Fatalf("walk %d step %d: %v", walk, step, err)
			}
			s = ns
			mustAudit(t, s, "random walk")
		}
	}
}

// TestIncrementalColdAncestors forces derivation through a chain whose
// ancestors were never interrogated: closures must recurse up the
// provenance chain and still agree with scratch recomputation.
func TestIncrementalColdAncestors(t *testing.T) {
	s := Init(map[event.Var]event.Val{"x": 0, "y": 0})
	ix, _ := s.InitialFor("x")
	iy, _ := s.InitialFor("y")
	// Build a chain without querying any derived order in between:
	// drive the raw step functions with known-observable writes (each
	// new write is inserted after the current mo-maximum).
	s1, w1, err := s.StepWrite(1, true, "x", 1, ix)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := s1.StepRead(2, true, "x", w1.Tag)
	if err != nil {
		t.Fatal(err)
	}
	s3, u, err := s2.StepRMW(2, "y", 7, iy)
	if err != nil {
		t.Fatal(err)
	}
	s4, _, err := s3.StepRMW(1, "y", 8, u.Tag)
	if err != nil {
		t.Fatal(err)
	}
	// Only now interrogate the deepest state.
	mustAudit(t, s4, "cold chain head")
	// And ancestors afterwards (their memos were warmed recursively).
	mustAudit(t, s3, "cold chain s3")
	mustAudit(t, s1, "cold chain s1")
}
