package core

import (
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/fingerprint"
	"repro/internal/lang"
)

// The 128-bit fingerprints must refine exactly the equivalence the
// canonical string signatures induce: equal signatures ⇒ equal
// fingerprints (same renaming, same encoding), and distinct signatures
// ⇒ distinct fingerprints at every state this suite can reach (a hash
// collision here would be a 2⁻¹²⁸ event, so any failure indicates an
// encoding bug rather than bad luck).

func TestFingerprintMatchesCanonicalSignature(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	bySig := map[string]fingerprint.FP{}
	byFP := map[fingerprint.FP]string{}
	states := 0
	for trial := 0; trial < 40; trial++ {
		randomWalkCore(t, rng, 12, func(w walkStep) {
			s := w.after
			sig := s.CanonicalSignature()
			fp := s.Fingerprint()
			if prev, ok := bySig[sig]; ok && prev != fp {
				t.Fatalf("one signature, two fingerprints:\n%s", sig)
			}
			if prev, ok := byFP[fp]; ok && prev != sig {
				t.Fatalf("fingerprint collision:\n%s\n%s", prev, sig)
			}
			bySig[sig] = fp
			byFP[fp] = sig
			states++
		})
	}
	if states < 100 {
		t.Fatalf("walked only %d states", states)
	}
}

func TestFingerprintInterleavingInvariance(t *testing.T) {
	// Mirror of TestInvariantCanonicalSignatureStable: commuting two
	// independent writes must not change the fingerprint.
	s := Init(map[event.Var]event.Val{"x": 0, "y": 0})
	ix, _ := s.InitialFor("x")
	iy, _ := s.InitialFor("y")

	a1, _, _ := s.StepWrite(1, false, "x", 1, ix)
	a2, _, _ := a1.StepWrite(2, false, "y", 2, iy)

	b1, _, _ := s.StepWrite(2, false, "y", 2, iy)
	b2, _, _ := b1.StepWrite(1, false, "x", 1, ix)

	if a2.Fingerprint() != b2.Fingerprint() {
		t.Fatal("fingerprints differ across commuting steps")
	}
	// A dependent difference must be visible.
	c2, _, _ := b1.StepWrite(1, false, "x", 3, ix)
	if a2.Fingerprint() == c2.Fingerprint() {
		t.Fatal("fingerprint blind to differing write value")
	}
}

func TestConfigFingerprintMatchesKey(t *testing.T) {
	// Configuration keys pair the residual program with the state;
	// fingerprints must induce the same equivalence over both parts.
	p := lang.Prog{
		lang.SeqC(lang.AssignC("d", lang.V(5)), lang.AssignRelC("f", lang.V(1))),
		lang.SeqC(lang.AssignC("a", lang.XA("f")), lang.AssignC("b", lang.X("d"))),
	}
	cfg := NewConfig(p, map[event.Var]event.Val{"d": 0, "f": 0, "a": 0, "b": 0})
	byKey := map[string]fingerprint.FP{}
	byFP := map[fingerprint.FP]string{}
	var dfs func(Config)
	dfs = func(c Config) {
		k := c.Key()
		fp := c.Fingerprint()
		if prev, seen := byKey[k]; seen {
			if prev != fp {
				t.Fatalf("one key, two fingerprints: %s", k)
			}
			return
		}
		if prev, seen := byFP[fp]; seen && prev != k {
			t.Fatalf("fingerprint collision:\n%s\n%s", prev, k)
		}
		byKey[k] = fp
		byFP[fp] = k
		for _, s := range c.Successors() {
			dfs(s.C)
		}
	}
	dfs(cfg)
	if len(byKey) < 30 {
		t.Fatalf("visited only %d configurations", len(byKey))
	}
}
