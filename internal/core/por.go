package core

import (
	"sync"

	"repro/internal/event"
	"repro/internal/lang"
)

// This file exposes the independence structure of the interpreted
// semantics — the input of the explorer's partial-order reduction.
//
// A transition of the interpreted semantics is a program step of one
// thread coupled with one memory-model choice (the observed write).
// Two enabled steps of *different* threads commute when every concrete
// transition of one composes with every concrete transition of the
// other in either order to the same canonical state, and neither step
// changes the other's set of enabled choices. In the RA semantics this
// holds whenever the steps touch no common variable with at least one
// write on it, mirroring how the derived orders are built: a
// transition appends one event whose new hb/eco/comb pairs are all
// incident to that event (the invariant the incremental engine of
// incremental.go maintains), so it can only change another thread's
// observable-write set OW(t)|x — served from the eager per-variable
// write indexes — by inserting or covering a write to x itself.
// Concretely:
//
//   - a silent step touches no memory at all and commutes with
//     everything;
//   - steps on distinct variables commute: OW(t)|x and the covered
//     set CW|x are invariant under events on y ≠ x;
//   - two plain reads of the same variable commute: a read adds no
//     write and covers nothing, so neither read changes the other's
//     choices, and the resulting event sets and relations agree in
//     either order;
//   - everything else (same variable, at least one write or update)
//     is dependent: a write to x inserted into mo can enter another
//     thread's encountered set and shrink OW(u)|x, an update covers
//     its observed write, and two writes to x order themselves in mo
//     differently depending on who goes first.

// StepsCommute reports whether two enabled program steps of different
// threads commute in the sense above. Steps of the same thread never
// commute (program order is observable). This is the dependence oracle
// the explorer's sleep sets filter with.
func StepsCommute(a, b lang.ProgStep) bool {
	if a.T == b.T {
		return false
	}
	if a.S.Kind == lang.StepSilent || b.S.Kind == lang.StepSilent {
		return true
	}
	if a.S.Loc != b.S.Loc {
		return true
	}
	return a.S.Kind == lang.StepRead && b.S.Kind == lang.StepRead
}

// Commutes reports whether two generated transitions commute — the
// a-posteriori counterpart of StepsCommute, phrased over the events
// the transitions produced. Used by tests and audits to cross-check
// the step-level oracle against actual successor states.
func Commutes(a, b Succ) bool {
	if a.T == b.T {
		return false
	}
	if a.Silent || b.Silent {
		return true
	}
	if a.E.Var() != b.E.Var() {
		return true
	}
	return !a.E.Act.Kind.IsWrite() && !b.E.Act.Kind.IsWrite()
}

// StepSuccessors expands one enabled program step into its interpreted
// transitions — each memory-model choice of observed write (a single
// τ transition for silent steps). Successors is the union of
// StepSuccessors over ProgSteps(c.P); the explorer's partial-order
// reduction calls this per selected thread so pruned threads never
// pay successor construction.
func (c Config) StepSuccessors(ps lang.ProgStep) []Succ {
	return c.appendStepSuccessors(nil, ps)
}

// tagBufPool recycles the observed-write scratch buffers of the
// successor hot path: one Get/Put per memory step instead of one
// slice allocation per step per state.
var tagBufPool = sync.Pool{New: func() any { b := make([]event.Tag, 0, 16); return &b }}

// AppendStepSuccessors is appendStepSuccessors for the engine-facing
// hot path: it constructs the successor configurations directly into a
// concrete-typed slice, skipping the Succ metadata (observed write,
// event, thread) the engine never reads and drawing the observed-write
// candidates into a pooled buffer. The monomorphised explorer calls
// this (and AppendSuccessors) instead of the boxed model.Config
// expansion, so the states themselves are the only allocations — no
// interface box per successor.
func (c Config) AppendStepSuccessors(out []Config, ps lang.ProgStep) []Config {
	t, s := ps.T, ps.S
	if s.Kind == lang.StepSilent {
		return append(out, Config{P: c.P.WithThread(t, s.Apply(0)), S: c.S})
	}
	bp := tagBufPool.Get().(*[]event.Tag)
	tags := (*bp)[:0]
	switch s.Kind {
	case lang.StepRead:
		k := event.RdX
		switch {
		case s.Acq:
			k = event.RdAcq
		case s.NA:
			k = event.RdNA
		}
		tags = c.S.AppendObservableFor(tags, t, s.Loc)
		for _, w := range tags {
			v := c.S.Event(w).WrVal()
			ns, _, err := c.S.StepReadKind(t, k, s.Loc, w)
			if err != nil {
				continue // unreachable: w drawn from OW
			}
			out = append(out, Config{P: c.P.WithThread(t, s.Apply(v)), S: ns})
		}

	case lang.StepWrite:
		k := event.WrX
		switch {
		case s.Rel:
			k = event.WrRel
		case s.NA:
			k = event.WrNA
		}
		tags = c.S.AppendInsertionPointsFor(tags, t, s.Loc)
		for _, w := range tags {
			ns, _, err := c.S.StepWriteKind(t, k, s.Loc, s.WVal, w)
			if err != nil {
				continue
			}
			out = append(out, Config{P: c.P.WithThread(t, s.Apply(0)), S: ns})
		}

	case lang.StepUpdate:
		tags = c.S.AppendInsertionPointsFor(tags, t, s.Loc)
		for _, w := range tags {
			ns, _, err := c.S.StepRMW(t, s.Loc, s.WVal, w)
			if err != nil {
				continue
			}
			out = append(out, Config{P: c.P.WithThread(t, s.Apply(c.S.Event(w).WrVal())), S: ns})
		}

	case lang.StepCas:
		// Success face: the CAS reads its expected value from a write it
		// can atomically follow, producing updRA — only insertion points
		// whose write value matches Exp qualify (a matching observable
		// write that cannot be immediately followed in mo is simply not
		// readable by an update; it does not turn into a failure).
		tags = c.S.AppendInsertionPointsFor(tags, t, s.Loc)
		for _, w := range tags {
			if c.S.Event(w).WrVal() != s.Exp {
				continue
			}
			ns, _, err := c.S.StepRMW(t, s.Loc, s.WVal, w)
			if err != nil {
				continue
			}
			out = append(out, Config{P: c.P.WithThread(t, s.Apply(s.Exp)), S: ns})
		}
		// Failure face: reading any non-matching observable write is an
		// acquiring load (strong CAS: a matching value can never fail).
		tags = c.S.AppendObservableFor(tags[:0], t, s.Loc)
		for _, w := range tags {
			v := c.S.Event(w).WrVal()
			if v == s.Exp {
				continue
			}
			ns, _, err := c.S.StepReadKind(t, event.RdAcq, s.Loc, w)
			if err != nil {
				continue
			}
			out = append(out, Config{P: c.P.WithThread(t, s.Apply(v)), S: ns})
		}
	}
	*bp = tags
	tagBufPool.Put(bp)
	return out
}

func (c Config) appendStepSuccessors(out []Succ, ps lang.ProgStep) []Succ {
	t, s := ps.T, ps.S
	switch s.Kind {
	case lang.StepSilent:
		out = append(out, Succ{
			C:      Config{P: c.P.WithThread(t, s.Apply(0)), S: c.S},
			Silent: true,
			T:      t,
		})

	case lang.StepRead:
		k := event.RdX
		switch {
		case s.Acq:
			k = event.RdAcq
		case s.NA:
			k = event.RdNA
		}
		for _, w := range c.S.ObservableFor(t, s.Loc) {
			v := c.S.Event(w).WrVal()
			ns, e, err := c.S.StepReadKind(t, k, s.Loc, w)
			if err != nil {
				continue // unreachable: w drawn from OW
			}
			out = append(out, Succ{
				C: Config{P: c.P.WithThread(t, s.Apply(v)), S: ns},
				W: w, E: e, T: t,
			})
		}

	case lang.StepWrite:
		k := event.WrX
		switch {
		case s.Rel:
			k = event.WrRel
		case s.NA:
			k = event.WrNA
		}
		for _, w := range c.S.InsertionPointsFor(t, s.Loc) {
			ns, e, err := c.S.StepWriteKind(t, k, s.Loc, s.WVal, w)
			if err != nil {
				continue
			}
			out = append(out, Succ{
				C: Config{P: c.P.WithThread(t, s.Apply(0)), S: ns},
				W: w, E: e, T: t,
			})
		}

	case lang.StepUpdate:
		for _, w := range c.S.InsertionPointsFor(t, s.Loc) {
			ns, e, err := c.S.StepRMW(t, s.Loc, s.WVal, w)
			if err != nil {
				continue
			}
			out = append(out, Succ{
				C: Config{P: c.P.WithThread(t, s.Apply(c.S.Event(w).WrVal())), S: ns},
				W: w, E: e, T: t,
			})
		}

	case lang.StepCas:
		// Mirrors appendConfigSuccessors: success = updRA from a
		// matching insertion point, failure = acquiring read of a
		// non-matching observable write.
		for _, w := range c.S.InsertionPointsFor(t, s.Loc) {
			if c.S.Event(w).WrVal() != s.Exp {
				continue
			}
			ns, e, err := c.S.StepRMW(t, s.Loc, s.WVal, w)
			if err != nil {
				continue
			}
			out = append(out, Succ{
				C: Config{P: c.P.WithThread(t, s.Apply(s.Exp)), S: ns},
				W: w, E: e, T: t,
			})
		}
		for _, w := range c.S.ObservableFor(t, s.Loc) {
			v := c.S.Event(w).WrVal()
			if v == s.Exp {
				continue
			}
			ns, e, err := c.S.StepReadKind(t, event.RdAcq, s.Loc, w)
			if err != nil {
				continue
			}
			out = append(out, Succ{
				C: Config{P: c.P.WithThread(t, s.Apply(v)), S: ns},
				W: w, E: e, T: t,
			})
		}
	}
	return out
}
