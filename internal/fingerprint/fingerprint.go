// Package fingerprint computes compact 128-bit identities for
// canonical executions. The explorer visits hundreds of thousands of
// states per run and previously keyed its seen-set by a
// fmt.Fprintf-built canonical string (sorted event list plus rf/mo
// pair list) — the single hottest allocation site in the whole
// checker. This package replaces that string with a binary encoding:
// events are renamed to (thread, position-in-thread) exactly as in the
// canonical signatures, encoded as fixed-width words with no
// intermediate strings, and absorbed into two independent 64-bit hash
// lanes. Collisions over a 128-bit key are vanishingly unlikely at
// reachable state counts; the explorer retains the exact string
// signature as a slow path behind a collision-checking debug option.
package fingerprint

import (
	"sync"

	"repro/internal/event"
	"repro/internal/relation"
)

// FP is a 128-bit fingerprint, usable directly as a map key.
type FP struct {
	Hi, Lo uint64
}

// Lane constants: the Lo lane is word-wise FNV-1a (xor, then multiply
// by the FNV prime); the Hi lane is an add-multiply chain with xxhash
// constants. The lanes use different combining operations and
// different odd multipliers, so one lane's collisions are uncorrelated
// with the other's.
const (
	seedLo = 0xcbf29ce484222325 // FNV-1a 64 offset basis
	seedHi = 0x9e3779b97f4a7c15 // golden gamma
	mulLo  = 0x00000100000001b3 // FNV-1a 64 prime
	mulHi  = 0xc2b2ae3d27d4eb4f // xxhash PRIME64_2
)

// Hasher accumulates words into the two lanes. The zero value is not
// ready for use; call NewHasher.
type Hasher struct {
	hi, lo uint64
}

// NewHasher returns a hasher with both lanes seeded.
func NewHasher() Hasher { return Hasher{hi: seedHi, lo: seedLo} }

// Word absorbs one 64-bit word.
func (h *Hasher) Word(w uint64) {
	lo := (h.lo ^ w) * mulLo
	h.lo = lo ^ lo>>31
	hi := (h.hi + w) * mulHi
	h.hi = hi ^ hi>>29
}

// absorb packs a length-prefixed byte sequence eight bytes per word.
// The length prefix keeps the encoding prefix-free.
func absorb[T ~string | ~[]byte](h *Hasher, s T) {
	h.Word(uint64(len(s)))
	var w uint64
	var nb uint
	for i := 0; i < len(s); i++ {
		w |= uint64(s[i]) << (8 * nb)
		nb++
		if nb == 8 {
			h.Word(w)
			w, nb = 0, 0
		}
	}
	if nb > 0 {
		h.Word(w)
	}
}

// String absorbs a length-prefixed string.
func (h *Hasher) String(s string) { absorb(h, s) }

// Bytes absorbs a length-prefixed byte slice.
func (h *Hasher) Bytes(b []byte) { absorb(h, b) }

// fmix64 is the murmur3 finalizer: a full-avalanche bijection.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Sum finalizes both lanes.
func (h *Hasher) Sum() FP {
	return FP{Hi: fmix64(h.hi), Lo: fmix64(h.lo)}
}

// scratch holds the reusable buffers of one Canonical invocation.
type scratch struct {
	canon  []int32 // tag -> canonical index
	order  []int32 // canonical index -> tag
	counts []int32 // per-thread event counts / offsets
	row    []int32 // renamed members of one relation row
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

func (sc *scratch) resize(n, threads int) {
	if cap(sc.canon) < n {
		sc.canon = make([]int32, n)
		sc.order = make([]int32, n)
		sc.row = make([]int32, n)
	}
	sc.canon = sc.canon[:n]
	sc.order = sc.order[:n]
	sc.row = sc.row[:n]
	if cap(sc.counts) < threads {
		sc.counts = make([]int32, threads)
	}
	sc.counts = sc.counts[:threads]
	for i := range sc.counts {
		sc.counts[i] = 0
	}
}

// Canonical fingerprints an execution ((D, sb), rf, mo) up to the
// interleaving that built it, matching the renaming of the string
// CanonicalSignature implementations: events are ordered by thread id,
// within the initialising thread by variable name, and within every
// other thread by position (per-thread events appear in tag order);
// rf and mo are absorbed as sorted renamed pairs. sb is omitted — it
// is determined by the event order and thread structure. The relations
// must have carrier len(events), with events[i] at tag i.
func Canonical(events []event.Event, rf, mo relation.Rel) FP {
	n := len(events)
	maxT := 0
	for i := range events {
		if t := int(events[i].TID); t > maxT {
			maxT = t
		}
	}
	sc := pool.Get().(*scratch)
	sc.resize(n, maxT+1)

	// Counting sort by thread id; per-thread order is tag order.
	for i := range events {
		sc.counts[int(events[i].TID)]++
	}
	off := int32(0)
	for t := range sc.counts {
		c := sc.counts[t]
		sc.counts[t] = off
		off += c
	}
	nInit := 0
	if maxT >= 0 && len(sc.counts) > 1 {
		nInit = int(sc.counts[1])
	} else {
		nInit = n // all events initialising
	}
	for i := range events {
		t := int(events[i].TID)
		sc.order[sc.counts[t]] = int32(i)
		sc.counts[t]++
	}
	// Initialising writes sort by variable name (stable: equal names
	// keep tag order), mirroring the canonical signatures.
	initOrder := sc.order[:nInit]
	for i := 1; i < len(initOrder); i++ {
		for j := i; j > 0 && events[initOrder[j]].Var() < events[initOrder[j-1]].Var(); j-- {
			initOrder[j], initOrder[j-1] = initOrder[j-1], initOrder[j]
		}
	}
	for ci, tag := range sc.order {
		sc.canon[tag] = int32(ci)
	}

	h := NewHasher()
	h.Word(uint64(n))
	for _, tag := range sc.order {
		e := &events[tag]
		h.Word(uint64(e.TID)<<8 | uint64(e.Act.Kind))
		h.String(string(e.Act.Loc))
		h.Word(uint64(int64(e.Act.RVal)))
		h.Word(uint64(int64(e.Act.WVal)))
	}
	absorbRel := func(label uint64, r relation.Rel) {
		h.Word(label)
		for _, tag := range sc.order {
			row := r.Row(int(tag))
			m := 0
			for b := row.Next(0); b >= 0; b = row.Next(b + 1) {
				sc.row[m] = sc.canon[b]
				m++
			}
			// Insertion sort: rows are tiny (per-variable write chains).
			for i := 1; i < m; i++ {
				for j := i; j > 0 && sc.row[j] < sc.row[j-1]; j-- {
					sc.row[j], sc.row[j-1] = sc.row[j-1], sc.row[j]
				}
			}
			h.Word(uint64(m))
			for i := 0; i < m; i++ {
				h.Word(uint64(sc.row[i]))
			}
		}
	}
	absorbRel(1, rf)
	absorbRel(2, mo)
	pool.Put(sc)
	return h.Sum()
}
