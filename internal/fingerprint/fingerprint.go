// Package fingerprint computes compact 128-bit identities for
// canonical executions. The explorer visits hundreds of thousands of
// states per run and previously keyed its seen-set by a
// fmt.Fprintf-built canonical string (sorted event list plus rf/mo
// pair list) — the single hottest allocation site in the whole
// checker. This package replaces that string with a binary encoding:
// events are renamed to (thread, position-in-thread) exactly as in the
// canonical signatures, encoded as fixed-width words with no
// intermediate strings, and absorbed into two independent 64-bit hash
// lanes. Collisions over a 128-bit key are vanishingly unlikely at
// reachable state counts; the explorer retains the exact string
// signature as a slow path behind a collision-checking debug option.
package fingerprint

import (
	"sync"

	"repro/internal/event"
	"repro/internal/relation"
)

// FP is a 128-bit fingerprint, usable directly as a map key.
type FP struct {
	Hi, Lo uint64
}

// Lane constants: the Lo lane is word-wise FNV-1a (xor, then multiply
// by the FNV prime); the Hi lane is an add-multiply chain with xxhash
// constants. The lanes use different combining operations and
// different odd multipliers, so one lane's collisions are uncorrelated
// with the other's.
const (
	seedLo = 0xcbf29ce484222325 // FNV-1a 64 offset basis
	seedHi = 0x9e3779b97f4a7c15 // golden gamma
	mulLo  = 0x00000100000001b3 // FNV-1a 64 prime
	mulHi  = 0xc2b2ae3d27d4eb4f // xxhash PRIME64_2
)

// Hasher accumulates words into the two lanes. The zero value is not
// ready for use; call NewHasher.
type Hasher struct {
	hi, lo uint64
}

// NewHasher returns a hasher with both lanes seeded.
func NewHasher() Hasher { return Hasher{hi: seedHi, lo: seedLo} }

// Word absorbs one 64-bit word.
func (h *Hasher) Word(w uint64) {
	lo := (h.lo ^ w) * mulLo
	h.lo = lo ^ lo>>31
	hi := (h.hi + w) * mulHi
	h.hi = hi ^ hi>>29
}

// String and Bytes pack a length-prefixed byte sequence eight bytes
// per word. The length prefix keeps the encoding prefix-free. The two
// bodies are duplicated rather than shared through a generic helper:
// a call through a shape dictionary leaks its pointer parameters, so
// the generic form made every caller's Hasher escape to the heap —
// one allocation per fingerprint on the explorer's admit path.

// String absorbs a length-prefixed string.
func (h *Hasher) String(s string) {
	h.Word(uint64(len(s)))
	var w uint64
	var nb uint
	for i := 0; i < len(s); i++ {
		w |= uint64(s[i]) << (8 * nb)
		nb++
		if nb == 8 {
			h.Word(w)
			w, nb = 0, 0
		}
	}
	if nb > 0 {
		h.Word(w)
	}
}

// Bytes absorbs a length-prefixed byte slice.
func (h *Hasher) Bytes(b []byte) {
	h.Word(uint64(len(b)))
	var w uint64
	var nb uint
	for i := 0; i < len(b); i++ {
		w |= uint64(b[i]) << (8 * nb)
		nb++
		if nb == 8 {
			h.Word(w)
			w, nb = 0, 0
		}
	}
	if nb > 0 {
		h.Word(w)
	}
}

// fmix64 is the murmur3 finalizer: a full-avalanche bijection.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Sum finalizes both lanes.
func (h *Hasher) Sum() FP {
	return FP{Hi: fmix64(h.hi), Lo: fmix64(h.lo)}
}

// Acc is a commutative accumulator of item fingerprints: a multiset
// hash. Each item is hashed to a full-avalanche FP (via Hasher.Sum)
// and the lanes are combined by wrapping addition, so the accumulated
// value is independent of the order items are added — exactly what an
// incrementally maintained canonical state identity needs, since the
// canonical renaming (thread, position-in-thread) of an event never
// changes as later events are appended.
type Acc struct {
	Hi, Lo uint64
}

// Add absorbs one item fingerprint into the accumulator.
func (a *Acc) Add(fp FP) {
	a.Hi += fp.Hi
	a.Lo += fp.Lo
}

// Finalize seals an accumulator of n items into a fingerprint.
func Finalize(a Acc, n int) FP {
	h := NewHasher()
	h.Word(uint64(n))
	h.Word(a.Hi)
	h.Word(a.Lo)
	return h.Sum()
}

// Item labels of the canonical encoding, shared by the incremental
// accumulator on core.State and the from-scratch Canonical below.
const (
	// LabelRF tags reads-from pairs.
	LabelRF = 2
	// LabelMO tags modification-order pairs.
	LabelMO = 3
)

// EventItem hashes one event under its canonical name: the pair
// (thread, position-in-thread), with initialising writes positioned by
// variable-sorted order.
func EventItem(t event.Thread, pos int, a event.Action) FP {
	h := NewHasher()
	h.Word(1)
	h.Word(uint64(t)<<32 | uint64(uint32(pos)))
	h.Word(uint64(a.Kind))
	h.String(string(a.Loc))
	h.Word(uint64(int64(a.RVal)))
	h.Word(uint64(int64(a.WVal)))
	return h.Sum()
}

// PairItem hashes one relation pair (LabelRF or LabelMO) under
// canonical names.
func PairItem(label uint64, ta event.Thread, pa int, tb event.Thread, pb int) FP {
	h := NewHasher()
	h.Word(label)
	h.Word(uint64(ta)<<32 | uint64(uint32(pa)))
	h.Word(uint64(tb)<<32 | uint64(uint32(pb)))
	return h.Sum()
}

// Set is a set of fingerprints — the currency of cross-run state-space
// comparison. The explorer's partial-order-reduction audit
// (explore.CheckPOR) collects the reachable and terminated fingerprint
// sets of a reduced and a full search and diffs them: the reduced
// reachable set must be contained in the full one (its transitions are
// a subset) and the terminated sets must coincide (the reduction
// preserves terminated configurations). The zero value is not ready;
// call NewSet. Set is not safe for concurrent use — guard it with a
// mutex when collecting from a parallel exploration.
type Set struct {
	m map[FP]struct{}
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{m: make(map[FP]struct{}, 1024)} }

// Add inserts fp.
func (s *Set) Add(fp FP) { s.m[fp] = struct{}{} }

// Has reports fp ∈ s.
func (s *Set) Has(fp FP) bool {
	_, ok := s.m[fp]
	return ok
}

// Len returns |s|.
func (s *Set) Len() int { return len(s.m) }

// MissingFrom counts the elements of s absent from other — zero iff
// s ⊆ other.
func (s *Set) MissingFrom(other *Set) int {
	n := 0
	for fp := range s.m {
		if !other.Has(fp) {
			n++
		}
	}
	return n
}

// scratch holds the reusable buffers of one Canonical invocation.
type scratch struct {
	pos    []int32 // tag -> canonical position within its thread
	inits  []int32 // initialising-write tags, for the variable sort
	counts []int32 // per-thread position counters
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

func (sc *scratch) resize(n, threads int) {
	if cap(sc.pos) < n {
		sc.pos = make([]int32, n)
		sc.inits = make([]int32, n)
	}
	sc.pos = sc.pos[:n]
	sc.inits = sc.inits[:0]
	if cap(sc.counts) < threads {
		sc.counts = make([]int32, threads)
	}
	sc.counts = sc.counts[:threads]
	for i := range sc.counts {
		sc.counts[i] = 0
	}
}

// Canonical fingerprints an execution ((D, sb), rf, mo) up to the
// interleaving that built it, using the same multiset encoding that
// core.State accumulates incrementally: every event contributes
// EventItem under its (thread, position-in-thread) name — with
// initialising writes positioned by variable-sorted order — and every
// rf/mo pair contributes PairItem over the renamed endpoints; the
// items combine commutatively (Acc) and Finalize seals the result. sb
// is omitted — it is determined by the event order and thread
// structure. The relations must have carrier len(events), with
// events[i] at tag i.
func Canonical(events []event.Event, rf, mo relation.Rel) FP {
	n := len(events)
	maxT := 0
	for i := range events {
		if t := int(events[i].TID); t > maxT {
			maxT = t
		}
	}
	sc := pool.Get().(*scratch)
	sc.resize(n, maxT+1)

	// Canonical positions: per-thread appearance order (tag order),
	// except initialising writes, which sort by variable name (stable).
	for i := range events {
		if t := int(events[i].TID); t != int(event.InitThread) {
			sc.pos[i] = sc.counts[t]
			sc.counts[t]++
		} else {
			sc.inits = append(sc.inits, int32(i))
		}
	}
	for i := 1; i < len(sc.inits); i++ {
		for j := i; j > 0 && events[sc.inits[j]].Var() < events[sc.inits[j-1]].Var(); j-- {
			sc.inits[j], sc.inits[j-1] = sc.inits[j-1], sc.inits[j]
		}
	}
	for p, tag := range sc.inits {
		sc.pos[tag] = int32(p)
	}

	var acc Acc
	for i := range events {
		acc.Add(EventItem(events[i].TID, int(sc.pos[i]), events[i].Act))
	}
	absorbRel := func(label uint64, r relation.Rel) {
		for a := 0; a < n; a++ {
			row := r.Row(a)
			for b := row.Next(0); b >= 0; b = row.Next(b + 1) {
				acc.Add(PairItem(label,
					events[a].TID, int(sc.pos[a]),
					events[b].TID, int(sc.pos[b])))
			}
		}
	}
	absorbRel(LabelRF, rf)
	absorbRel(LabelMO, mo)
	pool.Put(sc)
	return Finalize(acc, n)
}
