package lang

import "encoding/binary"

// This file provides a canonical binary encoding of commands and
// expressions, used by the explorer to fingerprint residual programs.
// It distinguishes exactly the structure that the String renderings
// canonicalise (node kinds, annotations, variables, literal values)
// but appends raw bytes instead of running fmt — program re-rendering
// was the hottest remaining allocation site on the exploration hot
// path once states were fingerprinted. The encoding is prefix-free:
// every node starts with a kind tag and all variable-length fields are
// length- or varint-encoded, so distinct programs cannot share an
// encoding.

// Node kind tags for the signature encoding.
const (
	sigSkip byte = iota + 1
	sigAssign
	sigSwap
	sigSeq
	sigIf
	sigWhile
	sigLabel
	sigLit
	sigLoad
	sigUn
	sigBin
	// Appended after the original tag set (PR 8): decoding order is
	// part of the checkpoint format, so new nodes extend, never renumber.
	sigCas
	sigIdxLoad
)

// Assign signature flags. Rel/NA mirror the command's annotations;
// the index bit marks a symbolically indexed store, whose index
// expression is encoded between the variable and the right-hand side.
const (
	sigAssignRel   byte = 1
	sigAssignNA    byte = 2
	sigAssignIdx   byte = 4
	sigAssignFlags byte = sigAssignRel | sigAssignNA | sigAssignIdx
)

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// AppendStringSig appends a length-prefixed string — the signature
// format's shared variable-length field encoding — so callers
// composing higher-level signatures (the litmus-test cache identity of
// the verification service) stay within the same prefix-free
// discipline instead of inventing a second framing.
func AppendStringSig(buf []byte, s string) []byte {
	return appendString(buf, s)
}

// AppendExprSig appends the canonical encoding of e to buf.
func AppendExprSig(buf []byte, e Expr) []byte {
	switch x := e.(type) {
	case Lit:
		buf = append(buf, sigLit)
		return binary.AppendVarint(buf, int64(x.V))
	case Load:
		var flags byte
		if x.Acq {
			flags |= 1
		}
		if x.NA {
			flags |= 2
		}
		buf = append(buf, sigLoad, flags)
		return appendString(buf, string(x.X))
	case IdxLoad:
		var flags byte
		if x.Acq {
			flags |= 1
		}
		if x.NA {
			flags |= 2
		}
		buf = append(buf, sigIdxLoad, flags)
		buf = appendString(buf, string(x.A))
		return AppendExprSig(buf, x.I)
	case Un:
		buf = append(buf, sigUn, byte(x.Op))
		return AppendExprSig(buf, x.E)
	case Bin:
		buf = append(buf, sigBin, byte(x.Op))
		buf = AppendExprSig(buf, x.L)
		return AppendExprSig(buf, x.R)
	default:
		panic("lang: AppendExprSig of unknown expression")
	}
}

// AppendComSig appends the canonical encoding of c to buf.
func AppendComSig(buf []byte, c Com) []byte {
	switch x := c.(type) {
	case Skip:
		return append(buf, sigSkip)
	case Assign:
		var flags byte
		if x.Rel {
			flags |= sigAssignRel
		}
		if x.NA {
			flags |= sigAssignNA
		}
		if x.Idx != nil {
			flags |= sigAssignIdx
		}
		buf = append(buf, sigAssign, flags)
		buf = appendString(buf, string(x.X))
		if x.Idx != nil {
			buf = AppendExprSig(buf, x.Idx)
		}
		return AppendExprSig(buf, x.E)
	case Swap:
		buf = append(buf, sigSwap)
		buf = appendString(buf, string(x.X))
		return binary.AppendVarint(buf, int64(x.N))
	case Cas:
		var flags byte
		if x.Idx != nil {
			flags |= 1
		}
		buf = append(buf, sigCas, flags)
		buf = appendString(buf, string(x.X))
		if x.Idx != nil {
			buf = AppendExprSig(buf, x.Idx)
		}
		buf = AppendExprSig(buf, x.Old)
		buf = AppendExprSig(buf, x.New)
		buf = AppendComSig(buf, x.Then)
		return AppendComSig(buf, x.Else)
	case Seq:
		buf = append(buf, sigSeq)
		buf = AppendComSig(buf, x.C1)
		return AppendComSig(buf, x.C2)
	case If:
		buf = append(buf, sigIf)
		buf = AppendExprSig(buf, x.B)
		buf = AppendComSig(buf, x.Then)
		return AppendComSig(buf, x.Else)
	case While:
		buf = append(buf, sigWhile)
		buf = AppendExprSig(buf, x.Guard)
		buf = AppendExprSig(buf, x.Cur)
		return AppendComSig(buf, x.Body)
	case Label:
		buf = append(buf, sigLabel)
		buf = appendString(buf, x.Name)
		return AppendComSig(buf, x.C)
	default:
		panic("lang: AppendComSig of unknown command")
	}
}

// AppendProgSig appends the canonical encoding of p to buf: the thread
// count followed by each thread's command.
func AppendProgSig(buf []byte, p Prog) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(p)))
	for _, c := range p {
		buf = AppendComSig(buf, c)
	}
	return buf
}
