package lang

// Bounded arrays and compare-and-swap, the language growth the
// concurrent-data-structure tier (internal/ds) runs on.
//
// Arrays are not a new storage concept: a cell a[3] is an ordinary
// shared variable whose name is the rendering "a[3]", produced by
// Cell. The memory models never change — they see one location per
// cell. What is new is *symbolic* indexing: the IdxLoad expression
// a[I] and the indexed Assign/Cas forms first resolve the index
// expression I through ordinary read steps and only then touch the
// concrete cell, so a program can traverse nodes it discovered at run
// time (the next-pointer chase of a Michael-Scott dequeue). A scalar
// identifier can never contain '[', so cell names collide with no
// scalar variable.
//
// Cas is the if-form compare-and-swap over the existing RMW
// machinery: "if (x.cas(Old, New)) {Then} else {Else}". Once Old and
// New are resolved to values it takes a single StepCas transition
// whose two faces mirror C11's strong CAS under release-acquire:
//
//   - success: the step reads a write with value Old and becomes an
//     updRA event (exactly a swap's update: acquire the read,
//     release the write, mo-immediately after the read-from write);
//   - failure: the step is an acquiring read of a write with value
//     ≠ Old, and no write is performed.
//
// The CAS is strong: reading a matching value always succeeds, so a
// failure can never be justified by a write of the expected value.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/event"
)

// Cell returns the shared variable naming cell i of array a.
func Cell(a event.Var, i event.Val) event.Var {
	return event.Var(fmt.Sprintf("%s[%d]", a, i))
}

// CellOf inverts Cell: it reports the array base of a cell variable,
// with ok=false when x does not name a cell.
func CellOf(x event.Var) (base event.Var, ok bool) {
	s := string(x)
	open := strings.IndexByte(s, '[')
	if open <= 0 || s[len(s)-1] != ']' {
		return "", false
	}
	if _, err := strconv.Atoi(s[open+1 : len(s)-1]); err != nil {
		return "", false
	}
	return event.Var(s[:open]), true
}

// IdxLoad is a symbolically indexed load a[I] (optionally a[I]^A or
// a[I]^NA). The index expression resolves first, through ordinary
// read steps; the load then behaves exactly like a Load of the
// concrete cell Cell(A, [[I]]). Constructors normalise literal
// indexes into plain cell Loads, so an IdxLoad in a parsed program
// always carries a genuinely symbolic index.
type IdxLoad struct {
	A   event.Var
	I   Expr
	Acq bool
	NA  bool
}

func (IdxLoad) isExpr() {}

func (l IdxLoad) String() string {
	s := string(l.A) + "[" + l.I.String() + "]"
	switch {
	case l.Acq:
		return s + "^A"
	case l.NA:
		return s + "^NA"
	}
	return s
}

// XAt returns a relaxed load of a[i], normalising literal indexes to
// a plain cell load.
func XAt(a event.Var, i Expr) Expr { return idxLoad(a, i, false, false) }

// XAtA returns an acquiring load of a[i].
func XAtA(a event.Var, i Expr) Expr { return idxLoad(a, i, true, false) }

// XAtNA returns a non-atomic load of a[i].
func XAtNA(a event.Var, i Expr) Expr { return idxLoad(a, i, false, true) }

func idxLoad(a event.Var, i Expr, acq, na bool) Expr {
	if l, ok := i.(Lit); ok {
		return Load{X: Cell(a, l.V), Acq: acq, NA: na}
	}
	return IdxLoad{A: a, I: i, Acq: acq, NA: na}
}

// Cas is the compare-and-swap command
//
//	if (x.cas(Old, New)) { Then } else { Else }
//
// over a scalar location X, or over the cell X[Idx] when Idx is
// non-nil. Old and New resolve through read steps (substituting each
// read value into both, like an Assign's right-hand side); the
// comparison itself is then one atomic StepCas transition. The
// statement form "x.cas(o, n);" is a Cas with skip branches.
type Cas struct {
	X        event.Var
	Idx      Expr // nil for a scalar location
	Old, New Expr
	Then     Com
	Else     Com
}

func (Cas) isCom() {}

func (c Cas) String() string {
	loc := string(c.X)
	if c.Idx != nil {
		loc += "[" + c.Idx.String() + "]"
	}
	return fmt.Sprintf("if %s.cas(%s,%s) then {%s} else {%s}",
		loc, c.Old, c.New, c.Then, c.Else)
}

// CasC returns if (x.cas(old, new)) {then} else {els}.
func CasC(x event.Var, old, new Expr, then, els Com) Com {
	return Cas{X: x, Old: old, New: new, Then: then, Else: els}
}

// CasStmtC returns the statement form x.cas(old, new); — a CAS whose
// outcome is ignored.
func CasStmtC(x event.Var, old, new Expr) Com {
	return Cas{X: x, Old: old, New: new, Then: Skip{}, Else: Skip{}}
}

// CasAtC returns if (a[i].cas(old, new)) {then} else {els},
// normalising literal indexes to the concrete cell.
func CasAtC(a event.Var, i Expr, old, new Expr, then, els Com) Com {
	if l, ok := i.(Lit); ok {
		return Cas{X: Cell(a, l.V), Old: old, New: new, Then: then, Else: els}
	}
	return Cas{X: a, Idx: i, Old: old, New: new, Then: then, Else: els}
}

// AssignAtC returns a[i] := e, normalising literal indexes.
func AssignAtC(a event.Var, i Expr, e Expr) Com { return assignAt(a, i, e, false, false) }

// AssignAtRelC returns a[i] :=^R e.
func AssignAtRelC(a event.Var, i Expr, e Expr) Com { return assignAt(a, i, e, true, false) }

// AssignAtNAC returns a[i] :=^NA e.
func AssignAtNAC(a event.Var, i Expr, e Expr) Com { return assignAt(a, i, e, false, true) }

func assignAt(a event.Var, i Expr, e Expr, rel, na bool) Com {
	if l, ok := i.(Lit); ok {
		return Assign{X: Cell(a, l.V), E: e, Rel: rel, NA: na}
	}
	return Assign{X: a, Idx: i, E: e, Rel: rel, NA: na}
}
