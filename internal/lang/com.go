package lang

import (
	"fmt"

	"repro/internal/event"
)

// Com is a command of the grammar (§2.1):
//
//	Com ::= skip | x.swap(n)^RA | x := Exp | x :=^R Exp
//	      | Com;Com | if B then Com else Com | while B do Com
//
// plus a transparent Label command used by the verification layer to
// name program points (program counters in the paper's proofs).
type Com interface {
	isCom()
	// String renders a canonical form used for configuration hashing.
	String() string
}

// Skip is the terminated command.
type Skip struct{}

// Assign is x := E (relaxed), x :=^R E (releasing) when Rel is set,
// or x :=^NA E (non-atomic) when NA is set. A non-nil Idx makes it
// the symbolically indexed store X[Idx] := E: the index resolves
// through read steps first, then the write targets the concrete cell
// Cell(X, [[Idx]]) (array.go). Constructors normalise literal
// indexes, so a parsed Assign with Idx ≠ nil is genuinely symbolic.
type Assign struct {
	X   event.Var
	Idx Expr // nil for a scalar (or literal-index cell) store
	E   Expr
	Rel bool
	NA  bool
}

// Swap is x.swap(n)^RA, generating a release-acquire update event.
type Swap struct {
	X event.Var
	N event.Val
}

// Seq is C1 ; C2.
type Seq struct{ C1, C2 Com }

// If is if B then C1 else C2. The guard is partially evaluated in
// place, one read per free variable, left to right.
type If struct {
	B          Expr
	Then, Else Com
}

// While is while B do C. Guard is the pristine loop guard; Cur is the
// partially evaluated copy for the current iteration. When the guard
// evaluates to true the loop unfolds to Body ; while Guard do Body with
// the guard reset, so each iteration re-reads its variables. (This is
// the standard reading of the WHILE rules of Figure 2: the "while B do
// C" in the true-continuation denotes the original loop.)
type While struct {
	Guard Expr
	Cur   Expr
	Body  Com
}

// Label names a program point; it takes one silent step to its body.
// Labels let the verifier and explorer observe "the thread is at line
// i" exactly as the paper's pc_t function does.
type Label struct {
	Name string
	C    Com
}

func (Skip) isCom()   {}
func (Assign) isCom() {}
func (Swap) isCom()   {}
func (Seq) isCom()    {}
func (If) isCom()     {}
func (While) isCom()  {}
func (Label) isCom()  {}

func (Skip) String() string { return "skip" }

func (a Assign) String() string {
	op := ":="
	switch {
	case a.Rel:
		op = ":=R"
	case a.NA:
		op = ":=NA"
	}
	loc := string(a.X)
	if a.Idx != nil {
		loc += "[" + a.Idx.String() + "]"
	}
	return fmt.Sprintf("%s %s %s", loc, op, a.E)
}

func (s Swap) String() string {
	return fmt.Sprintf("%s.swap(%d)^RA", s.X, s.N)
}

func (s Seq) String() string {
	return s.C1.String() + "; " + s.C2.String()
}

func (c If) String() string {
	return fmt.Sprintf("if %s then {%s} else {%s}", c.B, c.Then, c.Else)
}

func (w While) String() string {
	if w.Cur.String() == w.Guard.String() {
		return fmt.Sprintf("while %s do {%s}", w.Guard, w.Body)
	}
	return fmt.Sprintf("while[%s] %s do {%s}", w.Cur, w.Guard, w.Body)
}

func (l Label) String() string {
	return "@" + l.Name + ":" + l.C.String()
}

// Constructors.

// SkipC returns skip.
func SkipC() Com { return Skip{} }

// AssignC returns x := E.
func AssignC(x event.Var, e Expr) Com { return Assign{X: x, E: e} }

// AssignRelC returns x :=^R E.
func AssignRelC(x event.Var, e Expr) Com { return Assign{X: x, E: e, Rel: true} }

// AssignNAC returns the non-atomic assignment x :=^NA E.
func AssignNAC(x event.Var, e Expr) Com { return Assign{X: x, E: e, NA: true} }

// SwapC returns x.swap(n)^RA.
func SwapC(x event.Var, n event.Val) Com { return Swap{X: x, N: n} }

// SeqC sequences the given commands. Nested sequences are flattened
// into the right-nested canonical form, so SeqC(SeqC(a, b), c) and
// SeqC(a, SeqC(b, c)) build the same term: sequencing is associative
// operationally, and the canonical shape keeps the program signature
// (and hence cache keys) independent of how a program was composed —
// a parsed statement block and the equivalent builder composition
// agree.
func SeqC(cs ...Com) Com {
	var flat []Com
	var push func(c Com)
	push = func(c Com) {
		if s, ok := c.(Seq); ok {
			push(s.C1)
			push(s.C2)
			return
		}
		flat = append(flat, c)
	}
	for _, c := range cs {
		push(c)
	}
	if len(flat) == 0 {
		return Skip{}
	}
	out := flat[len(flat)-1]
	for i := len(flat) - 2; i >= 0; i-- {
		out = Seq{C1: flat[i], C2: out}
	}
	return out
}

// IfC returns if B then c1 else c2.
func IfC(b Expr, c1, c2 Com) Com { return If{B: b, Then: c1, Else: c2} }

// WhileC returns while B do body.
func WhileC(b Expr, body Com) Com {
	return While{Guard: b, Cur: b, Body: body}
}

// LabelC returns a labelled command.
func LabelC(name string, c Com) Com { return Label{Name: name, C: c} }

// AtLabel returns the label name at the head of c, or "" when the head
// of c is not labelled. For Seq the head of C1 is inspected.
func AtLabel(c Com) string {
	switch x := c.(type) {
	case Label:
		return x.Name
	case Seq:
		return AtLabel(x.C1)
	default:
		return ""
	}
}

// Terminated reports whether c is (equivalent to) skip.
func Terminated(c Com) bool {
	_, ok := c.(Skip)
	return ok
}
