package lang

import (
	"encoding/binary"
	"fmt"

	"repro/internal/event"
)

// This file inverts the signature encoding of sig.go. The encoding was
// introduced purely for fingerprinting, but because it is prefix-free
// and records every distinguishing field it doubles as a compact
// serialization of residual programs — which the checkpoint layer
// (internal/explore) needs to persist frontier configurations across
// process restarts. The decoder is strict: any unknown tag, truncated
// field, or out-of-range operator is an error, never a panic, so a
// corrupted checkpoint fails loudly at load time.

func decodeUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("lang: truncated uvarint")
	}
	return v, data[n:], nil
}

func decodeVarint(data []byte) (int64, []byte, error) {
	v, n := binary.Varint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("lang: truncated varint")
	}
	return v, data[n:], nil
}

func decodeString(data []byte) (string, []byte, error) {
	n, rest, err := decodeUvarint(data)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, fmt.Errorf("lang: string length %d exceeds remaining %d bytes", n, len(rest))
	}
	return string(rest[:n]), rest[n:], nil
}

// DecodeExprSig decodes one expression from the front of data,
// returning the expression and the unconsumed remainder.
func DecodeExprSig(data []byte) (Expr, []byte, error) {
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("lang: truncated expression")
	}
	tag, rest := data[0], data[1:]
	switch tag {
	case sigLit:
		v, rest, err := decodeVarint(rest)
		if err != nil {
			return nil, nil, err
		}
		return Lit{V: event.Val(v)}, rest, nil
	case sigLoad:
		if len(rest) == 0 {
			return nil, nil, fmt.Errorf("lang: truncated load flags")
		}
		flags := rest[0]
		if flags > 3 {
			return nil, nil, fmt.Errorf("lang: invalid load flags %#x", flags)
		}
		x, rest, err := decodeString(rest[1:])
		if err != nil {
			return nil, nil, err
		}
		return Load{X: event.Var(x), Acq: flags&1 != 0, NA: flags&2 != 0}, rest, nil
	case sigIdxLoad:
		if len(rest) == 0 {
			return nil, nil, fmt.Errorf("lang: truncated indexed-load flags")
		}
		flags := rest[0]
		if flags > 3 {
			return nil, nil, fmt.Errorf("lang: invalid indexed-load flags %#x", flags)
		}
		a, rest, err := decodeString(rest[1:])
		if err != nil {
			return nil, nil, err
		}
		i, rest, err := DecodeExprSig(rest)
		if err != nil {
			return nil, nil, err
		}
		return IdxLoad{A: event.Var(a), I: i, Acq: flags&1 != 0, NA: flags&2 != 0}, rest, nil
	case sigUn:
		if len(rest) == 0 {
			return nil, nil, fmt.Errorf("lang: truncated unary operator")
		}
		op := UnOp(rest[0])
		if op > OpNeg {
			return nil, nil, fmt.Errorf("lang: invalid unary operator %d", op)
		}
		e, rest, err := DecodeExprSig(rest[1:])
		if err != nil {
			return nil, nil, err
		}
		return Un{Op: op, E: e}, rest, nil
	case sigBin:
		if len(rest) == 0 {
			return nil, nil, fmt.Errorf("lang: truncated binary operator")
		}
		op := BinOp(rest[0])
		if op > OpSub {
			return nil, nil, fmt.Errorf("lang: invalid binary operator %d", op)
		}
		l, rest, err := DecodeExprSig(rest[1:])
		if err != nil {
			return nil, nil, err
		}
		r, rest, err := DecodeExprSig(rest)
		if err != nil {
			return nil, nil, err
		}
		return Bin{Op: op, L: l, R: r}, rest, nil
	default:
		return nil, nil, fmt.Errorf("lang: unknown expression tag %d", tag)
	}
}

// DecodeComSig decodes one command from the front of data, returning
// the command and the unconsumed remainder.
func DecodeComSig(data []byte) (Com, []byte, error) {
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("lang: truncated command")
	}
	tag, rest := data[0], data[1:]
	switch tag {
	case sigSkip:
		return Skip{}, rest, nil
	case sigAssign:
		if len(rest) == 0 {
			return nil, nil, fmt.Errorf("lang: truncated assign flags")
		}
		flags := rest[0]
		if flags&^sigAssignFlags != 0 {
			return nil, nil, fmt.Errorf("lang: invalid assign flags %#x", flags)
		}
		x, rest, err := decodeString(rest[1:])
		if err != nil {
			return nil, nil, err
		}
		var idx Expr
		if flags&sigAssignIdx != 0 {
			idx, rest, err = DecodeExprSig(rest)
			if err != nil {
				return nil, nil, err
			}
		}
		e, rest, err := DecodeExprSig(rest)
		if err != nil {
			return nil, nil, err
		}
		return Assign{X: event.Var(x), Idx: idx, E: e,
			Rel: flags&sigAssignRel != 0, NA: flags&sigAssignNA != 0}, rest, nil
	case sigSwap:
		x, rest, err := decodeString(rest)
		if err != nil {
			return nil, nil, err
		}
		n, rest, err := decodeVarint(rest)
		if err != nil {
			return nil, nil, err
		}
		return Swap{X: event.Var(x), N: event.Val(n)}, rest, nil
	case sigCas:
		if len(rest) == 0 {
			return nil, nil, fmt.Errorf("lang: truncated cas flags")
		}
		flags := rest[0]
		if flags > 1 {
			return nil, nil, fmt.Errorf("lang: invalid cas flags %#x", flags)
		}
		x, rest, err := decodeString(rest[1:])
		if err != nil {
			return nil, nil, err
		}
		var idx Expr
		if flags&1 != 0 {
			idx, rest, err = DecodeExprSig(rest)
			if err != nil {
				return nil, nil, err
			}
		}
		old, rest, err := DecodeExprSig(rest)
		if err != nil {
			return nil, nil, err
		}
		nw, rest, err := DecodeExprSig(rest)
		if err != nil {
			return nil, nil, err
		}
		then, rest, err := DecodeComSig(rest)
		if err != nil {
			return nil, nil, err
		}
		els, rest, err := DecodeComSig(rest)
		if err != nil {
			return nil, nil, err
		}
		return Cas{X: event.Var(x), Idx: idx, Old: old, New: nw, Then: then, Else: els}, rest, nil
	case sigSeq:
		c1, rest, err := DecodeComSig(rest)
		if err != nil {
			return nil, nil, err
		}
		c2, rest, err := DecodeComSig(rest)
		if err != nil {
			return nil, nil, err
		}
		return Seq{C1: c1, C2: c2}, rest, nil
	case sigIf:
		b, rest, err := DecodeExprSig(rest)
		if err != nil {
			return nil, nil, err
		}
		then, rest, err := DecodeComSig(rest)
		if err != nil {
			return nil, nil, err
		}
		els, rest, err := DecodeComSig(rest)
		if err != nil {
			return nil, nil, err
		}
		return If{B: b, Then: then, Else: els}, rest, nil
	case sigWhile:
		guard, rest, err := DecodeExprSig(rest)
		if err != nil {
			return nil, nil, err
		}
		cur, rest, err := DecodeExprSig(rest)
		if err != nil {
			return nil, nil, err
		}
		body, rest, err := DecodeComSig(rest)
		if err != nil {
			return nil, nil, err
		}
		return While{Guard: guard, Cur: cur, Body: body}, rest, nil
	case sigLabel:
		name, rest, err := decodeString(rest)
		if err != nil {
			return nil, nil, err
		}
		c, rest, err := DecodeComSig(rest)
		if err != nil {
			return nil, nil, err
		}
		return Label{Name: name, C: c}, rest, nil
	default:
		return nil, nil, fmt.Errorf("lang: unknown command tag %d", tag)
	}
}

// DecodeProgSig decodes a program from the front of data, returning
// the program and the unconsumed remainder. It is the exact inverse of
// AppendProgSig: for every program p, DecodeProgSig(AppendProgSig(nil,
// p)) returns a program with the same signature (and hence the same
// canonical rendering and fingerprint).
func DecodeProgSig(data []byte) (Prog, []byte, error) {
	n, rest, err := decodeUvarint(data)
	if err != nil {
		return nil, nil, err
	}
	const maxThreads = 1 << 16 // sanity cap against corrupted length prefixes
	if n > maxThreads {
		return nil, nil, fmt.Errorf("lang: implausible thread count %d", n)
	}
	p := make(Prog, n)
	for i := range p {
		p[i], rest, err = DecodeComSig(rest)
		if err != nil {
			return nil, nil, fmt.Errorf("lang: thread %d: %w", i, err)
		}
	}
	return p, rest, nil
}
