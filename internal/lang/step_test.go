package lang

import (
	"testing"

	"repro/internal/event"
)

func single(t *testing.T, c Com) Step {
	t.Helper()
	ss := Steps(c)
	if len(ss) != 1 {
		t.Fatalf("Steps(%s) returned %d steps, want 1", c, len(ss))
	}
	return ss[0]
}

func TestSkipHasNoSteps(t *testing.T) {
	if len(Steps(Skip{})) != 0 {
		t.Fatal("skip should be terminated")
	}
	if !Terminated(Skip{}) || Terminated(SwapC("x", 1)) {
		t.Fatal("Terminated wrong")
	}
}

func TestAssignClosedIsWrite(t *testing.T) {
	s := single(t, AssignC("x", Add(V(2), V(3))))
	if s.Kind != StepWrite || s.Loc != "x" || s.WVal != 5 || s.Rel {
		t.Fatalf("step = %+v", s)
	}
	a, ok := s.Action(0)
	if !ok || a != event.Wr("x", 5) {
		t.Fatalf("action = %v", a)
	}
	if !Terminated(s.Apply(0)) {
		t.Fatal("assignment should reduce to skip")
	}
}

func TestAssignReleaseWrite(t *testing.T) {
	s := single(t, AssignRelC("f", B(false)))
	if s.Kind != StepWrite || !s.Rel {
		t.Fatalf("step = %+v", s)
	}
	a, _ := s.Action(0)
	if a != event.WrR("f", 0) {
		t.Fatalf("action = %v", a)
	}
}

func TestAssignOpenIsRead(t *testing.T) {
	// z := x : first a read of x, then a write of the value read.
	s := single(t, AssignC("z", X("x")))
	if s.Kind != StepRead || s.Loc != "x" || s.Acq {
		t.Fatalf("step = %+v", s)
	}
	a, _ := s.Action(5)
	if a != event.Rd("x", 5) {
		t.Fatalf("action = %v", a)
	}
	c2 := s.Apply(5)
	s2 := single(t, c2)
	if s2.Kind != StepWrite || s2.WVal != 5 {
		t.Fatalf("second step = %+v", s2)
	}
}

func TestAcquireReadAction(t *testing.T) {
	s := single(t, AssignC("r", XA("f")))
	if !s.Acq {
		t.Fatal("acquire flag lost")
	}
	a, _ := s.Action(1)
	if a != event.RdA("f", 1) {
		t.Fatalf("action = %v", a)
	}
}

func TestSwapIsUpdate(t *testing.T) {
	s := single(t, SwapC("turn", 2))
	if s.Kind != StepUpdate || s.Loc != "turn" || s.WVal != 2 {
		t.Fatalf("step = %+v", s)
	}
	a, _ := s.Action(1)
	if a != event.Upd("turn", 1, 2) {
		t.Fatalf("action = %v", a)
	}
	if !Terminated(s.Apply(7)) {
		t.Fatal("swap should reduce to skip")
	}
}

func TestSeqRules(t *testing.T) {
	// skip; C --τ--> C
	c := Seq{C1: Skip{}, C2: SwapC("x", 1)}
	s := single(t, c)
	if s.Kind != StepSilent {
		t.Fatalf("step = %+v", s)
	}
	if s.Apply(0).String() != "x.swap(1)^RA" {
		t.Fatal("skip;C should step to C")
	}
	// Steps of C1 lift into C1;C2.
	c2 := SeqC(AssignC("x", V(1)), AssignC("y", V(2)))
	s2 := single(t, c2)
	if s2.Kind != StepWrite || s2.Loc != "x" {
		t.Fatalf("lifted step = %+v", s2)
	}
	next := s2.Apply(0)
	if next.String() != "skip; y := 2" {
		t.Fatalf("next = %q", next)
	}
	// Read steps lift too.
	c3 := SeqC(AssignC("z", X("x")), SkipC())
	s3 := single(t, c3)
	if s3.Kind != StepRead {
		t.Fatalf("step = %+v", s3)
	}
	if got := s3.Apply(9).String(); got != "z := 9; skip" {
		t.Fatalf("next = %q", got)
	}
}

func TestIfGuardEvaluation(t *testing.T) {
	c := IfC(Eq(X("x"), V(1)), AssignC("a", V(1)), AssignC("b", V(2)))
	s := single(t, c)
	if s.Kind != StepRead || s.Loc != "x" {
		t.Fatalf("step = %+v", s)
	}
	// Read 1: guard true -> silent into then.
	cTrue := s.Apply(1)
	st := single(t, cTrue)
	if st.Kind != StepSilent {
		t.Fatalf("expected silent, got %+v", st)
	}
	if st.Apply(0).String() != "a := 1" {
		t.Fatal("then branch not taken")
	}
	// Read 0: guard false -> silent into else.
	cFalse := s.Apply(0)
	sf := single(t, cFalse)
	if sf.Apply(0).String() != "b := 2" {
		t.Fatal("else branch not taken")
	}
}

func TestWhileUnfoldAndReset(t *testing.T) {
	// while (f = 1) do skip
	w := WhileC(Eq(X("f"), V(1)), SkipC())
	s := single(t, w)
	if s.Kind != StepRead || s.Loc != "f" {
		t.Fatalf("step = %+v", s)
	}
	// Guard true: unfold, and crucially the guard is RESET so the next
	// iteration re-reads f (busy-wait loops must re-read their guard).
	cTrue := s.Apply(1)
	st := single(t, cTrue)
	if st.Kind != StepSilent {
		t.Fatalf("expected silent unfold, got %+v", st)
	}
	unfolded := st.Apply(0)
	seq, ok := unfolded.(Seq)
	if !ok {
		t.Fatalf("unfold shape = %T", unfolded)
	}
	w2, ok := seq.C2.(While)
	if !ok {
		t.Fatalf("continuation shape = %T", seq.C2)
	}
	if w2.Cur.String() != w2.Guard.String() {
		t.Fatal("loop guard not reset after unfolding")
	}
	// Guard false: loop exits to skip.
	cFalse := s.Apply(0)
	sf := single(t, cFalse)
	if sf.Kind != StepSilent || !Terminated(sf.Apply(0)) {
		t.Fatal("false guard should exit loop")
	}
}

func TestWhileConjunctionGuardTwoReads(t *testing.T) {
	// Peterson guard: while (flag^A = true) && (turn = 2) do skip.
	w := WhileC(And(Eq(XA("flag2"), B(true)), Eq(X("turn"), V(2))), SkipC())
	s1 := single(t, w)
	if s1.Loc != "flag2" || !s1.Acq {
		t.Fatalf("first guard read = %+v", s1)
	}
	c2 := s1.Apply(1)
	s2 := single(t, c2)
	if s2.Kind != StepRead || s2.Loc != "turn" || s2.Acq {
		t.Fatalf("second guard read = %+v", s2)
	}
	c3 := s2.Apply(2)
	s3 := single(t, c3)
	if s3.Kind != StepSilent {
		t.Fatal("fully evaluated guard should be silent")
	}
}

func TestLabelStepsSilentlyAndAtLabel(t *testing.T) {
	c := SeqC(LabelC("cs", SkipC()), AssignRelC("f", B(false)))
	if AtLabel(c) != "cs" {
		t.Fatalf("AtLabel = %q", AtLabel(c))
	}
	s := single(t, c)
	if s.Kind != StepSilent {
		t.Fatalf("label step = %+v", s)
	}
	next := s.Apply(0)
	if AtLabel(next) != "" {
		t.Fatal("label should be consumed")
	}
	if AtLabel(SkipC()) != "" {
		t.Fatal("skip has no label")
	}
}

// Proposition 2.2: read transitions exist for every value with the
// same (post-application) continuation structure, and an update's
// successor is independent of the value read.
func TestProp22ValueAgnosticReads(t *testing.T) {
	c := AssignC("z", X("x"))
	s := single(t, c)
	for v := event.Val(-3); v <= 3; v++ {
		next := s.Apply(v)
		// The continuation must be the assignment with v substituted:
		// the rule applies uniformly at every value.
		want := Assign{X: "z", E: Lit{V: v}}
		if next.String() != want.String() {
			t.Fatalf("Apply(%d) = %s, want %s", v, next, want)
		}
	}
	u := single(t, SwapC("x", 9))
	if u.Apply(0).String() != u.Apply(42).String() {
		t.Fatal("update continuation depends on value read")
	}
}

// Proposition 2.3: steps of distinct threads commute in the
// uninterpreted program semantics.
func TestProp23ThreadCommutation(t *testing.T) {
	p := Prog{AssignC("x", V(1)), AssignC("y", V(2))}
	steps := ProgSteps(p)
	if len(steps) != 2 {
		t.Fatalf("enabled steps = %d, want 2", len(steps))
	}
	// Order 1: t1 then t2.
	p1 := p.WithThread(steps[0].T, steps[0].S.Apply(0))
	s2after := ProgSteps(p1)
	var p12 Prog
	for _, ps := range s2after {
		if ps.T == steps[1].T {
			p12 = p1.WithThread(ps.T, ps.S.Apply(0))
		}
	}
	// Order 2: t2 then t1.
	p2 := p.WithThread(steps[1].T, steps[1].S.Apply(0))
	s1after := ProgSteps(p2)
	var p21 Prog
	for _, ps := range s1after {
		if ps.T == steps[0].T {
			p21 = p2.WithThread(ps.T, ps.S.Apply(0))
		}
	}
	if p12 == nil || p21 == nil {
		t.Fatal("commuted step not enabled")
	}
	if p12.String() != p21.String() {
		t.Fatalf("orders disagree: %q vs %q", p12, p21)
	}
}

func TestProgHelpers(t *testing.T) {
	p := Prog{SkipC(), SwapC("x", 1)}
	if p.Terminated() {
		t.Fatal("program with live thread reported terminated")
	}
	if p.Thread(2).String() != "x.swap(1)^RA" {
		t.Fatal("Thread accessor wrong")
	}
	q := p.WithThread(2, SkipC())
	if !q.Terminated() {
		t.Fatal("all-skip program not terminated")
	}
	if p.Thread(2).String() != "x.swap(1)^RA" {
		t.Fatal("WithThread mutated original")
	}
	if q.String() != "skip ||| skip" {
		t.Fatalf("String = %q", q.String())
	}
}

func TestSeqCConstruction(t *testing.T) {
	if !Terminated(SeqC()) {
		t.Fatal("empty SeqC should be skip")
	}
	c := SeqC(AssignC("a", V(1)), AssignC("b", V(2)), AssignC("c", V(3)))
	if c.String() != "a := 1; b := 2; c := 3" {
		t.Fatalf("SeqC = %q", c)
	}
	if SeqC(SwapC("x", 1)).String() != "x.swap(1)^RA" {
		t.Fatal("singleton SeqC wrong")
	}
}

func TestStepKindString(t *testing.T) {
	for k, want := range map[StepKind]string{
		StepSilent: "τ", StepRead: "read", StepWrite: "write", StepUpdate: "update",
	} {
		if k.String() != want {
			t.Fatalf("String(%d) = %q", k, k.String())
		}
	}
	if StepKind(99).String() == "" {
		t.Fatal("unknown kind renders empty")
	}
}

func TestWhileStringForms(t *testing.T) {
	w := WhileC(Eq(X("f"), V(1)), SkipC())
	if w.String() != "while (f==1) do {skip}" {
		t.Fatalf("pristine while = %q", w)
	}
	s := single(t, w)
	part := s.Apply(1) // guard now closed literal
	if part.String() == w.String() {
		t.Fatal("partially evaluated while should render differently")
	}
}

func BenchmarkProgSteps(b *testing.B) {
	p := Prog{
		SeqC(AssignC("x", V(1)), SwapC("t", 2), WhileC(Eq(XA("y"), V(1)), SkipC())),
		SeqC(AssignC("y", V(1)), SwapC("t", 1), WhileC(Eq(XA("x"), V(1)), SkipC())),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(ProgSteps(p)) == 0 {
			b.Fatal("no steps")
		}
	}
}
