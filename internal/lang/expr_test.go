package lang

import (
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func TestFreeVarsAndClosed(t *testing.T) {
	e := And(Eq(XA("flag2"), B(true)), Eq(X("turn"), V(2)))
	fv := FreeVars(e)
	if len(fv) != 2 || !fv["flag2"] || !fv["turn"] {
		t.Fatalf("fv = %v", fv)
	}
	if Closed(e) {
		t.Fatal("open expression reported closed")
	}
	if !Closed(And(B(true), V(2))) {
		t.Fatal("closed expression reported open")
	}
	if !Closed(Not(V(0))) {
		t.Fatal("closed Not reported open")
	}
}

func TestSubst(t *testing.T) {
	e := And(Eq(X("x"), V(1)), Eq(X("x"), X("y")))
	s := Subst(e, "x", 5)
	if Closed(s) {
		t.Fatal("y should remain free")
	}
	fv := FreeVars(s)
	if fv["x"] || !fv["y"] {
		t.Fatalf("fv after subst = %v", fv)
	}
	s2 := Subst(s, "y", 5)
	if !Closed(s2) {
		t.Fatal("all vars substituted but still open")
	}
	if Eval(s2) != event.False { // (5=1) && (5=5) = false
		t.Fatal("wrong value after substitution")
	}
}

func TestEval(t *testing.T) {
	cases := []struct {
		e Expr
		v event.Val
	}{
		{V(7), 7},
		{Not(V(0)), 1},
		{Not(V(3)), 0},
		{Un{Op: OpNeg, E: V(4)}, -4},
		{And(V(1), V(1)), 1},
		{And(V(1), V(0)), 0},
		{Or(V(0), V(1)), 1},
		{Or(V(0), V(0)), 0},
		{Eq(V(2), V(2)), 1},
		{Eq(V(2), V(3)), 0},
		{Ne(V(2), V(3)), 1},
		{Bin{Op: OpLt, L: V(1), R: V(2)}, 1},
		{Bin{Op: OpLt, L: V(2), R: V(1)}, 0},
		{Add(V(2), V(3)), 5},
		{Bin{Op: OpSub, L: V(2), R: V(3)}, -1},
	}
	for _, c := range cases {
		if got := Eval(c.e); got != c.v {
			t.Errorf("Eval(%s) = %d, want %d", c.e, got, c.v)
		}
	}
}

func TestEvalOpenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Eval of open expression did not panic")
		}
	}()
	Eval(X("x"))
}

func TestEvalTargetLeftToRight(t *testing.T) {
	// Figure 1: the leftmost free variable is read first.
	e := And(Eq(XA("a"), V(1)), Eq(X("b"), V(2)))
	x, acq, ok := EvalTarget(e)
	if !ok || x != "a" || !acq {
		t.Fatalf("first target = %v acq=%v ok=%v", x, acq, ok)
	}
	// After substituting a, the right operand is evaluated.
	e2 := Subst(e, "a", 1)
	x2, acq2, ok2 := EvalTarget(e2)
	if !ok2 || x2 != "b" || acq2 {
		t.Fatalf("second target = %v acq=%v", x2, acq2)
	}
	// Closed expression has no target.
	if _, _, ok := EvalTarget(V(3)); ok {
		t.Fatal("closed expression has a target")
	}
	// Unary wraps.
	if x, _, _ := EvalTarget(Not(X("z"))); x != "z" {
		t.Fatal("target under Not wrong")
	}
}

func TestExprString(t *testing.T) {
	e := And(Eq(XA("f"), V(1)), Not(X("t")))
	want := "((f^A==1)&&!(t))"
	if got := e.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if (Un{Op: OpNeg, E: V(2)}).String() != "-(2)" {
		t.Fatal("neg string wrong")
	}
	for _, op := range []BinOp{OpOr, OpNe, OpLt, OpAdd, OpSub} {
		if (Bin{Op: op, L: V(1), R: V(2)}).String() == "" {
			t.Fatalf("op %d renders empty", op)
		}
	}
}

// Property: substitution eliminates the variable and Eval after full
// substitution never panics.
func TestQuickSubstEliminates(t *testing.T) {
	f := func(a, b int8) bool {
		e := And(Eq(X("x"), V(event.Val(a))), Or(X("y"), Eq(X("x"), X("y"))))
		e = Subst(e, "x", event.Val(b))
		if FreeVars(e)["x"] {
			return false
		}
		e = Subst(e, "y", event.Val(a))
		if !Closed(e) {
			return false
		}
		Eval(e) // must not panic
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: evaluation order — repeatedly substituting the EvalTarget
// terminates in exactly |occurrences| distinct variable reads and
// yields a closed expression.
func TestQuickEvalTargetTerminates(t *testing.T) {
	f := func(n uint8) bool {
		e := Expr(Eq(X("a"), V(1)))
		for i := 0; i < int(n%4); i++ {
			e = And(e, Ne(X("b"), X("c")))
		}
		steps := 0
		for !Closed(e) {
			x, _, ok := EvalTarget(e)
			if !ok {
				return false
			}
			e = Subst(e, x, 0)
			steps++
			if steps > 20 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEval(b *testing.B) {
	e := And(Eq(V(1), V(1)), Or(Ne(V(2), V(3)), Bin{Op: OpLt, L: V(1), R: V(5)}))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Eval(e) != 1 {
			b.Fatal("wrong value")
		}
	}
}

func BenchmarkSubst(b *testing.B) {
	e := And(Eq(XA("f"), B(true)), Eq(X("t"), V(2)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Subst(e, "f", 1)
	}
}
