package lang

import (
	"bytes"
	"testing"
)

// codecPrograms covers every node kind, both annotation flags on
// loads and assigns, nesting, and multi-thread programs.
func codecPrograms() []Prog {
	return []Prog{
		{},
		{Skip{}},
		{AssignC("x", V(1))},
		{AssignRelC("y", Add(X("x"), V(2)))},
		{AssignNAC("d", XNA("d"))},
		{SwapC("l", 1), SwapC("l", -3)},
		{SeqC(AssignC("x", V(1)), AssignRelC("y", V(1)), SkipC())},
		{IfC(Eq(XA("y"), V(1)), AssignC("a", X("x")), SkipC())},
		{WhileC(Ne(XA("f"), V(0)), AssignC("x", Add(X("x"), V(1))))},
		{LabelC("cs", AssignC("x", V(7)))},
		{
			SeqC(
				AssignC("x", V(1)),
				WhileC(Not(And(Eq(X("a"), V(0)), Or(X("b"), Un{Op: OpNeg, E: V(5)}))),
					LabelC("body", SeqC(SwapC("m", 1), AssignNAC("z", XNA("z"))))),
			),
			IfC(Bin{Op: OpLt, L: X("i"), R: Bin{Op: OpSub, L: V(10), R: V(3)}},
				SeqC(AssignRelC("y", V(2)), SkipC()),
				LabelC("else", SkipC())),
		},
		// The array/CAS constructs: bare and branching CAS, a CAS on a
		// symbolically indexed cell, symbolic loads in every annotation
		// mix, and indexed assignments (a literal index canonicalises to
		// a plain cell assignment through the constructors — both forms
		// appear).
		{CasStmtC("x", V(0), V(1))},
		{CasC("top", X("obs"), Add(X("obs"), V(1)),
			AssignC("done", V(1)), AssignC("r", XA("top")))},
		{CasAtC("slot", X("i"), V(0), V(7), SkipC(), CasStmtC("slot", V(1), V(7)))},
		{
			AssignC("r", XAt("buf", X("i"))),
			AssignC("s", XAtA("buf", Add(X("i"), V(1)))),
			AssignC("t", XAtNA("buf", X("j"))),
		},
		{
			AssignAtC("buf", X("i"), V(5)),
			AssignAtRelC("buf", X("i"), X("r")),
			AssignAtNAC("buf", X("j"), V(0)),
			AssignAtC("buf", V(3), V(9)), // canonicalises to buf[3] := 9
		},
	}
}

func TestProgSigRoundTrip(t *testing.T) {
	for i, p := range codecPrograms() {
		enc := AppendProgSig(nil, p)
		dec, rest, err := DecodeProgSig(enc)
		if err != nil {
			t.Fatalf("program %d: decode: %v", i, err)
		}
		if len(rest) != 0 {
			t.Fatalf("program %d: %d unconsumed bytes", i, len(rest))
		}
		// The encoding is canonical, so round-tripping must reproduce
		// it byte for byte — this is stronger than structural equality
		// and is exactly what fingerprint stability needs.
		re := AppendProgSig(nil, dec)
		if !bytes.Equal(enc, re) {
			t.Fatalf("program %d: re-encoding differs\n  orig %x\n  re   %x", i, enc, re)
		}
		if got, want := dec.String(), p.String(); got != want {
			t.Fatalf("program %d: rendering differs: got %q want %q", i, got, want)
		}
	}
}

// TestProgSigRoundTripWhileMidIteration checks the partially evaluated
// loop guard (While.Cur ≠ While.Guard) survives the round trip — mid-
// exploration configurations carry exactly this shape.
func TestProgSigRoundTripWhileMidIteration(t *testing.T) {
	w := While{Guard: Ne(XA("f"), V(0)), Cur: Ne(V(1), V(0)), Body: SkipC()}
	p := Prog{w}
	dec, rest, err := DecodeProgSig(AppendProgSig(nil, p))
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: err=%v rest=%d", err, len(rest))
	}
	got, ok := dec[0].(While)
	if !ok {
		t.Fatalf("decoded %T, want While", dec[0])
	}
	if got.Cur.String() != w.Cur.String() || got.Guard.String() != w.Guard.String() {
		t.Fatalf("guard state lost: got cur=%q guard=%q", got.Cur, got.Guard)
	}
}

func TestDecodeProgSigRejectsCorruption(t *testing.T) {
	// Both the kitchen-sink program and the CAS-on-indexed-cell one:
	// the latter drives the strict decoders of the new tags.
	for _, p := range []Prog{codecPrograms()[10], codecPrograms()[13]} {
		enc := AppendProgSig(nil, p)
		// Truncation at every prefix length must error, never panic.
		for n := 0; n < len(enc); n++ {
			if _, _, err := DecodeProgSig(enc[:n]); err == nil {
				// A strict prefix can only decode cleanly if the dropped
				// suffix was a whole trailing unit — impossible here since
				// the thread count pins the number of commands.
				t.Fatalf("truncation to %d bytes decoded without error", n)
			}
		}
		// Flipping a kind tag to garbage must error.
		bad := append([]byte(nil), enc...)
		bad[1] = 0xff
		if _, _, err := DecodeProgSig(bad); err == nil {
			t.Fatal("corrupted tag decoded without error")
		}
	}
}

// TestSigDistinguishesArrayCells pins the cache-key property the
// array naming scheme has to provide: distinct cells, distinct index
// expressions, and a symbolic versus concretised access all encode to
// distinct signatures — no pair of them may collide, or the
// exploration caches would conflate their configurations.
func TestSigDistinguishesArrayCells(t *testing.T) {
	progs := map[string]Prog{
		"read-a1":        {AssignC("r", X(Cell("a", 1)))},
		"read-a11":       {AssignC("r", X(Cell("a", 11)))},
		"read-a111":      {AssignC("r", X(Cell("a", 111)))},
		"read-sym-i":     {AssignC("r", XAt("a", X("i")))},
		"read-sym-j":     {AssignC("r", XAt("a", X("j")))},
		"read-sym-acq":   {AssignC("r", XAtA("a", X("i")))},
		"write-a1":       {AssignAtC("a", V(1), V(1))},
		"write-a11":      {AssignAtC("a", V(11), V(1))},
		"write-sym":      {AssignAtC("a", X("i"), V(1))},
		"cas-a1":         {CasStmtC(Cell("a", 1), V(0), V(1))},
		"cas-a11":        {CasStmtC(Cell("a", 11), V(0), V(1))},
		"cas-sym":        {CasAtC("a", X("i"), V(0), V(1), SkipC(), SkipC())},
		"cas-branches":   {CasC(Cell("a", 1), V(0), V(1), AssignC("d", V(1)), SkipC())},
		"plain-var-a":    {AssignC("r", X("a"))},
		"bracket-in-mid": {AssignC("r", X(Cell("a[1]", 2)))}, // pathological nested name
	}
	seen := map[string]string{}
	for name, p := range progs {
		sig := string(AppendProgSig(nil, p))
		if prev, dup := seen[sig]; dup {
			t.Errorf("programs %s and %s share a signature", prev, name)
		}
		seen[sig] = name
	}
}
