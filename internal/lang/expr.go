// Package lang implements the command language of §2 of the paper: the
// Exp/Com grammar (§2.1), expression evaluation (Figure 1), and the
// uninterpreted operational semantics of commands and programs
// (Figure 2). "Uninterpreted" means read steps may return any value;
// the memory model (internal/core) later constrains which values are
// actually observable.
package lang

import (
	"fmt"

	"repro/internal/event"
)

// Expr is an expression of the grammar
//
//	Exp ::= Val | Exp^A | ⊖Exp | Exp ⊗ Exp
//
// Variables occur as Load nodes; Load{Acq: true} is the acquiring form
// x^A. Boolean values are encoded as 0 (false) and 1 (true).
type Expr interface {
	isExpr()
	// String renders a canonical form used for configuration hashing.
	String() string
}

// Lit is a value literal.
type Lit struct{ V event.Val }

// Load is a variable occurrence; Acq marks an acquiring load (x^A)
// and NA a non-atomic load (x^NA) of the extended language.
type Load struct {
	X   event.Var
	Acq bool
	NA  bool
}

// UnOp enumerates unary operators (⊖).
type UnOp uint8

// Unary operators.
const (
	OpNot UnOp = iota // logical negation (¬)
	OpNeg             // arithmetic negation (-)
)

// Un is a unary operator application ⊖E.
type Un struct {
	Op UnOp
	E  Expr
}

// BinOp enumerates binary operators (⊗).
type BinOp uint8

// Binary operators.
const (
	OpAnd BinOp = iota // logical conjunction (∧)
	OpOr               // logical disjunction (∨)
	OpEq               // equality (=)
	OpNe               // disequality (≠)
	OpLt               // less-than (<)
	OpAdd              // addition (+)
	OpSub              // subtraction (−)
)

// Bin is a binary operator application E1 ⊗ E2.
type Bin struct {
	Op   BinOp
	L, R Expr
}

func (Lit) isExpr()  {}
func (Load) isExpr() {}
func (Un) isExpr()   {}
func (Bin) isExpr()  {}

func (l Lit) String() string { return fmt.Sprintf("%d", l.V) }

func (l Load) String() string {
	switch {
	case l.Acq:
		return string(l.X) + "^A"
	case l.NA:
		return string(l.X) + "^NA"
	default:
		return string(l.X)
	}
}

func (u Un) String() string {
	op := "!"
	if u.Op == OpNeg {
		op = "-"
	}
	return op + "(" + u.E.String() + ")"
}

func (b Bin) String() string {
	var op string
	switch b.Op {
	case OpAnd:
		op = "&&"
	case OpOr:
		op = "||"
	case OpEq:
		op = "=="
	case OpNe:
		op = "!="
	case OpLt:
		op = "<"
	case OpAdd:
		op = "+"
	case OpSub:
		op = "-"
	}
	return "(" + b.L.String() + op + b.R.String() + ")"
}

// Convenience constructors.

// V returns a value literal.
func V(v event.Val) Expr { return Lit{V: v} }

// B returns a boolean literal (0/1 encoding).
func B(b bool) Expr {
	if b {
		return Lit{V: event.True}
	}
	return Lit{V: event.False}
}

// X returns a relaxed load of x.
func X(x event.Var) Expr { return Load{X: x} }

// XA returns an acquiring load of x.
func XA(x event.Var) Expr { return Load{X: x, Acq: true} }

// XNA returns a non-atomic load of x.
func XNA(x event.Var) Expr { return Load{X: x, NA: true} }

// Not returns ¬e.
func Not(e Expr) Expr { return Un{Op: OpNot, E: e} }

// And returns e1 ∧ e2.
func And(e1, e2 Expr) Expr { return Bin{Op: OpAnd, L: e1, R: e2} }

// Or returns e1 ∨ e2.
func Or(e1, e2 Expr) Expr { return Bin{Op: OpOr, L: e1, R: e2} }

// Eq returns e1 = e2.
func Eq(e1, e2 Expr) Expr { return Bin{Op: OpEq, L: e1, R: e2} }

// Ne returns e1 ≠ e2.
func Ne(e1, e2 Expr) Expr { return Bin{Op: OpNe, L: e1, R: e2} }

// Add returns e1 + e2.
func Add(e1, e2 Expr) Expr { return Bin{Op: OpAdd, L: e1, R: e2} }

// FreeVars returns fv(E), the set of variables occurring in E.
func FreeVars(e Expr) map[event.Var]bool {
	out := map[event.Var]bool{}
	collectVars(e, out)
	return out
}

func collectVars(e Expr, out map[event.Var]bool) {
	switch x := e.(type) {
	case Lit:
	case Load:
		out[x.X] = true
	case IdxLoad:
		// The cell read is not known until the index resolves; only
		// the index's own variables are free here. Static footprints
		// (footprint.go) account for the whole array separately.
		collectVars(x.I, out)
	case Un:
		collectVars(x.E, out)
	case Bin:
		collectVars(x.L, out)
		collectVars(x.R, out)
	default:
		panic(fmt.Sprintf("lang: unknown expression %T", e))
	}
}

// Closed reports fv(E) = ∅.
func Closed(e Expr) bool {
	switch x := e.(type) {
	case Lit:
		return true
	case Load:
		return false
	case IdxLoad:
		// Even with a closed index the cell still has to be read.
		return false
	case Un:
		return Closed(x.E)
	case Bin:
		return Closed(x.L) && Closed(x.R)
	default:
		panic(fmt.Sprintf("lang: unknown expression %T", e))
	}
}

// Subst returns E[n/x]: E with every occurrence of variable x replaced
// by the literal n.
// litCache interns the boxed literals of the small value domain:
// substitution runs once per read successor across the whole state
// space, and boxing a fresh Lit for every replaced load was a
// measurable slice of the explorer's allocation profile.
var litCache = func() [16]Expr {
	var out [16]Expr
	for i := range out {
		out[i] = Lit{V: event.Val(i)}
	}
	return out
}()

func litExpr(n event.Val) Expr {
	if n >= 0 && int(n) < len(litCache) {
		return litCache[n]
	}
	return Lit{V: n}
}

func Subst(e Expr, x event.Var, n event.Val) Expr {
	switch ex := e.(type) {
	case Lit:
		return e // the original boxed value: no re-boxing
	case Load:
		if ex.X == x {
			return litExpr(n)
		}
		return e
	case IdxLoad:
		// Substitute inside the index first (x may occur there); once
		// the index closes the node denotes one concrete cell and
		// normalises to a plain Load of it — keeping residual programs
		// canonical: no IdxLoad ever carries a closed index after a
		// step. If the cell is x itself, the read replaces the load.
		inner := Subst(ex.I, x, n)
		if Closed(inner) {
			cell := Cell(ex.A, Eval(inner))
			if cell == x {
				return litExpr(n)
			}
			return Load{X: cell, Acq: ex.Acq, NA: ex.NA}
		}
		if inner == ex.I {
			return e
		}
		return IdxLoad{A: ex.A, I: inner, Acq: ex.Acq, NA: ex.NA}
	case Un:
		inner := Subst(ex.E, x, n)
		if inner == ex.E {
			return e // untouched subtree: keep the original box
		}
		return Un{Op: ex.Op, E: inner}
	case Bin:
		l := Subst(ex.L, x, n)
		r := Subst(ex.R, x, n)
		if l == ex.L && r == ex.R {
			return e
		}
		return Bin{Op: ex.Op, L: l, R: r}
	default:
		panic(fmt.Sprintf("lang: unknown expression %T", e))
	}
}

// Eval returns [[E]] for a variable-free expression. It panics when E
// has free variables, mirroring the partiality of [[·]] in the paper.
// Boolean operators treat 0 as false and anything else as true, and
// produce 0/1.
func Eval(e Expr) event.Val {
	switch x := e.(type) {
	case Lit:
		return x.V
	case Load:
		panic("lang: Eval of open expression (free variable " + string(x.X) + ")")
	case IdxLoad:
		panic("lang: Eval of open expression (unresolved cell of " + string(x.A) + ")")
	case Un:
		v := Eval(x.E)
		switch x.Op {
		case OpNot:
			return boolVal(v == 0)
		case OpNeg:
			return -v
		}
	case Bin:
		l, r := Eval(x.L), Eval(x.R)
		switch x.Op {
		case OpAnd:
			return boolVal(l != 0 && r != 0)
		case OpOr:
			return boolVal(l != 0 || r != 0)
		case OpEq:
			return boolVal(l == r)
		case OpNe:
			return boolVal(l != r)
		case OpLt:
			return boolVal(l < r)
		case OpAdd:
			return l + r
		case OpSub:
			return l - r
		}
	}
	panic(fmt.Sprintf("lang: unknown expression %T", e))
}

func boolVal(b bool) event.Val {
	if b {
		return event.True
	}
	return event.False
}

// EvalTarget implements the eval(E, a, E') relation of Figure 1 up to
// the choice of value: it locates the leftmost free variable of E
// (evaluation proceeds left to right) and reports the variable and
// whether the load is acquiring. ok is false when E is closed.
//
// Given a value n chosen for the read, the successor expression E' is
// Subst(E, x, n) — exactly E[n/x] as in the READ rules of Figure 1.
func EvalTarget(e Expr) (x event.Var, acq bool, ok bool) {
	l, ok := EvalTargetLoad(e)
	return l.X, l.Acq, ok
}

// EvalTargetLoad is EvalTarget returning the full load (including the
// non-atomic marker of the extended language).
func EvalTargetLoad(e Expr) (Load, bool) {
	switch ex := e.(type) {
	case Lit:
		return Load{}, false
	case Load:
		return ex, true
	case IdxLoad:
		// The index resolves first; once it is closed the read targets
		// the concrete cell with the load's own annotations.
		if !Closed(ex.I) {
			return EvalTargetLoad(ex.I)
		}
		return Load{X: Cell(ex.A, Eval(ex.I)), Acq: ex.Acq, NA: ex.NA}, true
	case Un:
		return EvalTargetLoad(ex.E)
	case Bin:
		if !Closed(ex.L) {
			return EvalTargetLoad(ex.L)
		}
		return EvalTargetLoad(ex.R)
	default:
		panic(fmt.Sprintf("lang: unknown expression %T", e))
	}
}
