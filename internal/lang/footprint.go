package lang

import "repro/internal/event"

// This file computes static variable footprints of commands — the
// over-approximation of the variables a residual program may ever read
// or write. The explorer's partial-order reduction (internal/explore)
// uses footprints to justify singleton persistent sets: a thread whose
// next access can never conflict with any variable another live thread
// may touch can be explored alone, because every deferred transition
// of the other threads commutes with it (see core.StepsCommute for the
// per-step notion of commutation the footprints over-approximate).

// VarSet is a small set of variables backed by a sorted slice — the
// programs of the command language touch a handful of variables, so a
// slice beats a map on both footprint construction and lookup.
type VarSet []event.Var

// Has reports x ∈ s.
func (s VarSet) Has(x event.Var) bool {
	for _, y := range s {
		if y == x {
			return true
		}
		if y > x {
			return false
		}
	}
	return false
}

// add inserts x, keeping the slice sorted and duplicate-free.
func (s *VarSet) add(x event.Var) {
	v := *s
	for i, y := range v {
		if y == x {
			return
		}
		if y > x {
			v = append(v, "")
			copy(v[i+1:], v[i:])
			v[i] = x
			*s = v
			return
		}
	}
	*s = append(v, x)
}

// Footprint is the static may-access footprint of a command: the
// variables it may read and the variables it may write (updates —
// x.swap and x.cas — count as both) anywhere in its remaining
// execution. It is an over-approximation: branches not taken and loop
// bodies never entered still contribute. Symbolically indexed
// accesses (a[I] with I not yet a value) may touch any cell of the
// array, so they contribute the array *base* to the wildcard sets
// ReadArrays/WriteArrays instead of a concrete variable; a
// literal-index access is an ordinary cell variable and lands in
// Reads/Writes.
type Footprint struct {
	Reads  VarSet
	Writes VarSet
	// ReadArrays and WriteArrays hold array bases whose cells may be
	// read/written through a symbolic index.
	ReadArrays  VarSet
	WriteArrays VarSet
}

// ConflictsWith reports whether an access to x — a write access when
// wr is set, a plain read otherwise — may conflict with this
// footprint: two accesses to the same variable conflict when at least
// one of them is a write. An access to a cell additionally conflicts
// with the wildcard footprint of its array base.
func (f Footprint) ConflictsWith(x event.Var, wr bool) bool {
	if f.Writes.Has(x) {
		return true
	}
	if wr && f.Reads.Has(x) {
		return true
	}
	if len(f.ReadArrays) == 0 && len(f.WriteArrays) == 0 {
		return false
	}
	base, ok := CellOf(x)
	if !ok {
		return false
	}
	if f.WriteArrays.Has(base) {
		return true
	}
	return wr && f.ReadArrays.Has(base)
}

// MayAccess returns the static footprint of c.
func MayAccess(c Com) Footprint {
	var f Footprint
	comFootprint(c, &f)
	return f
}

func comFootprint(c Com, f *Footprint) {
	switch x := c.(type) {
	case Skip:
	case Assign:
		if x.Idx != nil {
			f.WriteArrays.add(x.X)
			exprFootprint(x.Idx, f)
		} else {
			f.Writes.add(x.X)
		}
		exprFootprint(x.E, f)
	case Swap:
		f.Reads.add(x.X)
		f.Writes.add(x.X)
	case Cas:
		if x.Idx != nil {
			f.ReadArrays.add(x.X)
			f.WriteArrays.add(x.X)
			exprFootprint(x.Idx, f)
		} else {
			f.Reads.add(x.X)
			f.Writes.add(x.X)
		}
		exprFootprint(x.Old, f)
		exprFootprint(x.New, f)
		comFootprint(x.Then, f)
		comFootprint(x.Else, f)
	case Seq:
		comFootprint(x.C1, f)
		comFootprint(x.C2, f)
	case If:
		exprFootprint(x.B, f)
		comFootprint(x.Then, f)
		comFootprint(x.Else, f)
	case While:
		exprFootprint(x.Guard, f)
		exprFootprint(x.Cur, f)
		comFootprint(x.Body, f)
	case Label:
		comFootprint(x.C, f)
	}
}

// exprFootprint accumulates the variables (and array wildcards)
// loaded by e.
func exprFootprint(e Expr, f *Footprint) {
	switch x := e.(type) {
	case Lit:
	case Load:
		f.Reads.add(x.X)
	case IdxLoad:
		f.ReadArrays.add(x.A)
		exprFootprint(x.I, f)
	case Un:
		exprFootprint(x.E, f)
	case Bin:
		exprFootprint(x.L, f)
		exprFootprint(x.R, f)
	}
}

// Target returns the unique successor command of a non-read step. For
// read and CAS steps the successor depends on the value read (call
// Apply); ok is false there.
func (s Step) Target() (Com, bool) {
	if s.Kind == StepRead || s.Kind == StepCas {
		return nil, false
	}
	return s.next, true
}

// SilentProgress reports whether the deterministic chain of silent
// steps from c reaches a memory step or termination within limit τ
// steps. A false result flags (possible) silent divergence — a command
// like "while (1) { skip }" whose silent steps cycle without ever
// touching memory. The explorer's partial-order reduction must not
// pick such a step as a reducing singleton: every cycle of the
// configuration graph consists of silent transitions (memory steps
// strictly grow the event set), so reducing to a diverging silent
// thread at every state of its cycle would postpone the other threads
// forever — the classic "ignoring problem" of stateful partial-order
// reduction. Requiring progress breaks exactly those cycles: any
// all-silent cycle contains a thread whose command sequence repeats
// without a memory step, and that thread fails this check. The limit
// bounds the walk; chains longer than it are conservatively treated
// as diverging (costing reduction, never soundness).
func SilentProgress(c Com, limit int) bool {
	for i := 0; i < limit; i++ {
		s, ok := StepOf(c)
		if !ok || s.Kind != StepSilent {
			return true
		}
		c = s.Apply(0)
	}
	return false
}

// VisibleStep reports whether taking step s from command c can change
// the label at the head of the command — the program-counter
// observation AtLabel that safety properties such as mutual exclusion
// read. A step is visible when the head is currently labelled (the
// step leaves the label) or when its successor's head is labelled (the
// step arrives at one). Read steps never expose a label: they rewrite
// an expression in place, keeping the same head command. The
// partial-order reduction never prunes around visible steps, so
// label-based properties see the same interleavings as the full
// search.
func VisibleStep(c Com, s Step) bool {
	if AtLabel(c) != "" {
		return true
	}
	if t, ok := s.Target(); ok {
		return AtLabel(t) != ""
	}
	if s.Kind == StepCas {
		// A CAS branches on the value read: either face may arrive at
		// a labelled command, and both must count.
		return AtLabel(s.Apply(s.Exp)) != "" || AtLabel(s.Apply(s.Exp+1)) != ""
	}
	return false
}
