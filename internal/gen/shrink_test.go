package gen

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/parser"
)

// assertMinimal checks 1-minimality: no single enumerated edit of f
// still satisfies keep.
func assertMinimal(t *testing.T, f *parser.File, keep func(*parser.File) bool) {
	t.Helper()
	for _, cand := range fileVariants(f) {
		if keep(normalize(cand)) {
			t.Fatalf("not minimal: an edit preserves the predicate\nminimal:\n%s\nedit:\n%s",
				f.Format(), normalize(cand).Format())
		}
	}
}

// Shrinking against a syntactic predicate: the result is minimal,
// still failing, and deterministic.
func TestShrinkSyntacticPredicate(t *testing.T) {
	keep := func(f *parser.File) bool {
		s := f.Format()
		return strings.Contains(s, ":=R") && strings.Contains(s, "^A")
	}
	p := Generate(8, Params{PRel: 70, PAcq: 70, Stmts: 5})
	if !keep(p.File) {
		t.Skip("seed lost the required annotations; pick another seed")
	}
	m1 := Shrink(p.File, keep)
	if !keep(m1) {
		t.Fatal("shrunk program no longer satisfies the predicate")
	}
	if len(m1.Format()) >= len(p.File.Format()) {
		t.Fatalf("shrinking did not shrink:\n%s", m1.Format())
	}
	assertMinimal(t, m1, keep)

	m2 := Shrink(p.File, keep)
	if m1.Format() != m2.Format() {
		t.Fatalf("shrinking is not deterministic:\n%s\nvs\n%s", m1.Format(), m2.Format())
	}
}

// Shrinking against a semantic predicate (the program exhibits a weak
// behaviour: an outcome reachable under RA but not SC): the shrinker
// preserves it, the result is minimal, and re-running is
// byte-identical — the determinism contract for real oracle failures.
func TestShrinkWeakBehaviourPredicate(t *testing.T) {
	weak := func(f *parser.File) bool {
		tc, err := f.Test()
		if err != nil || len(tc.Observe) == 0 {
			return false
		}
		rep := Check(f, CheckOpts{MaxEvents: 24, Workers: 2})
		return rep.Failure == nil && len(rep.Weak) > 0 && !rep.TruncatedRA
	}

	// Find a seed with a weak behaviour (they are common).
	var prog Program
	found := false
	for seed := int64(1); seed <= 40; seed++ {
		prog = Generate(seed, Params{})
		if weak(prog.File) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no weakly-behaving program in the first 40 seeds")
	}

	m1 := Shrink(prog.File, weak)
	if !weak(m1) {
		t.Fatal("shrunk program lost its weak behaviour")
	}
	assertMinimal(t, m1, weak)
	m2 := Shrink(prog.File, weak)
	if m1.Format() != m2.Format() {
		t.Fatalf("semantic shrink not deterministic:\n%s\nvs\n%s", m1.Format(), m2.Format())
	}
}

// Shrinking a CAS/array program against a syntactic predicate: the
// minimum keeps a CAS and a symbolic indexed load (what the predicate
// demands) while everything else — spare threads, the retry scaffold,
// unrelated accesses — is gone, the result stays canonical (it
// round-trips through the grammar), and array cells referenced only
// through the symbolic index survive init trimming.
func TestShrinkCasArrayPredicate(t *testing.T) {
	keep := func(f *parser.File) bool {
		s := f.Format()
		return strings.Contains(s, ".cas(") && strings.Contains(s, "a[ix]")
	}
	var prog Program
	found := false
	for seed := int64(1); seed <= 60; seed++ {
		prog = Generate(seed, Params{PCas: 60, PArr: 60, Stmts: 5})
		if keep(prog.File) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no seed produced both a CAS and a symbolic indexed load")
	}
	m := Shrink(prog.File, keep)
	if !keep(m) {
		t.Fatal("shrunk program lost the required constructs")
	}
	if fail := roundTrip(m); fail != nil {
		t.Fatalf("shrunk program not canonical: %s\n%s", fail, m.Format())
	}
	// The indexed load's cells must stay initialised.
	tc, err := m.Test()
	if err != nil {
		t.Fatalf("shrunk program not runnable: %v\n%s", err, m.Format())
	}
	cells := 0
	for v := range tc.Init {
		if base, ok := lang.CellOf(v); ok && base == "a" {
			cells++
		}
	}
	if cells == 0 {
		t.Fatalf("array cells trimmed out from under a[ix]:\n%s", m.Format())
	}
	assertMinimal(t, m, keep)
	if m2 := Shrink(prog.File, keep); m2.Format() != m.Format() {
		t.Fatalf("cas/array shrink not deterministic:\n%s\nvs\n%s", m.Format(), m2.Format())
	}
}

// The shrinker returns the input unchanged when the predicate fails on
// it, and normalisation drops dead declarations.
func TestShrinkEdgeCases(t *testing.T) {
	p := Generate(3, Params{})
	same := Shrink(p.File, func(*parser.File) bool { return false })
	if same != p.File {
		t.Fatal("failing predicate must return the input")
	}

	src := "init x = 0 y = 3 z = 9\nthread 1 { skip; x := 1; skip; }\nthread 2 { skip; }\nobserve x y\n"
	f, err := parser.Parse("n.lit", src)
	if err != nil {
		t.Fatal(err)
	}
	n := normalize(f)
	if len(n.Threads) != 1 {
		t.Fatalf("skip-only thread not dropped: %v", n.Threads)
	}
	if _, ok := n.Init["y"]; ok {
		t.Fatal("dead init entry survived")
	}
	if len(n.Observe) != 1 || n.Observe[0] != "x" {
		t.Fatalf("observe not trimmed: %v", n.Observe)
	}
	if out := n.Format(); strings.Contains(out, "skip") {
		t.Fatalf("skips survived normalisation:\n%s", out)
	}
}
