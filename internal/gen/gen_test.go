package gen

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/model"
)

// Same seed ⇒ byte-identical program; different seeds diverge.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := Generate(seed, Params{})
		b := Generate(seed, Params{})
		if a.File.Format() != b.File.Format() {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
		if a.Bound != b.Bound {
			t.Fatalf("seed %d: bound drifted %d vs %d", seed, a.Bound, b.Bound)
		}
	}
	if Generate(1, Params{}).File.Format() == Generate(2, Params{}).File.Format() {
		t.Fatal("distinct seeds produced identical programs")
	}
}

// Every generated program round-trips parse → print → reparse and is
// runnable (threads contiguous, everything initialised, observables
// declared).
func TestGenerateRoundTripsAndRuns(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		p := Generate(seed, Params{})
		if fail := roundTrip(p.File); fail != nil {
			t.Fatalf("seed %d: %s\n%s", seed, fail, p.File.Format())
		}
		tc, err := p.File.Test()
		if err != nil {
			t.Fatalf("seed %d: not runnable: %v", seed, err)
		}
		if len(tc.Observe) == 0 {
			t.Fatalf("seed %d: nothing observed", seed)
		}
		used := map[event.Var]bool{}
		for _, c := range tc.Prog {
			collectComVars(c, used)
		}
		for x := range used {
			if _, ok := tc.Init[x]; ok {
				continue
			}
			// An array base stands for its cells: initialised when
			// every declared cell of the base is.
			cells := 0
			for v := range tc.Init {
				if b, isCell := lang.CellOf(v); isCell && b == x {
					cells++
				}
			}
			if cells == 0 {
				t.Fatalf("seed %d: variable %s used but not initialised", seed, x)
			}
		}
	}
}

// The static Bound dominates the actual worst-case event count:
// exploring with a bound above it never truncates on the progress
// measure, so generated loops provably terminate within the budget.
func TestGenerateBoundIsSound(t *testing.T) {
	seeds := int64(25)
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= seeds; seed++ {
		p := Generate(seed, Params{})
		tc, err := p.File.Test()
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.NewConfig(tc.Prog, tc.Init)
		nInit := cfg.Progress()
		var mu sync.Mutex
		maxP := 0
		res := explore.Run(cfg, explore.Options{
			MaxEvents: p.Bound + 8, MaxConfigs: 1 << 17,
			Property: func(c model.Config) bool {
				mu.Lock()
				if v := c.Progress() - nInit; v > maxP {
					maxP = v
				}
				mu.Unlock()
				return true
			},
		})
		if res.Truncated && res.Explored < 1<<17 {
			t.Fatalf("seed %d: truncated below the generous bound", seed)
		}
		if maxP > p.Bound {
			t.Fatalf("seed %d: static bound %d < actual %d", seed, p.Bound, maxP)
		}
	}
}

// Loop counters are thread-private (only their own thread mentions
// them) and never observed — the termination argument rests on it.
func TestGenerateCountersPrivate(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		p := Generate(seed, Params{PWhile: 60})
		for _, x := range p.File.Observe {
			if strings.HasPrefix(string(x), "c") {
				t.Fatalf("seed %d: loop counter %s observed", seed, x)
			}
		}
		for _, id := range threadIDs(p.File) {
			used := map[event.Var]bool{}
			collectComVars(p.File.Threads[id], used)
			for x := range used {
				s := string(x)
				if !strings.HasPrefix(s, "c") {
					continue
				}
				if !strings.HasPrefix(s, "c"+itoa(id)+"_") {
					t.Fatalf("seed %d: thread %d touches foreign counter %s", seed, id, s)
				}
			}
		}
	}
}

func itoa(i int) string { return string(rune('0' + i)) }

// The new construct kinds actually come out of the generator: over a
// modest seed window with their densities raised, some program
// contains a CAS, some a bounded CAS-retry loop, some a symbolic
// indexed load, and some a literal cell write — and every one still
// round-trips and runs.
func TestGenerateEmitsCasAndArrays(t *testing.T) {
	found := map[string]bool{}
	for seed := int64(1); seed <= 80; seed++ {
		p := Generate(seed, Params{PCas: 50, PArr: 50, PWhile: 30, Stmts: 5})
		if fail := roundTrip(p.File); fail != nil {
			t.Fatalf("seed %d: %s\n%s", seed, fail, p.File.Format())
		}
		src := p.File.Format()
		if strings.Contains(src, ".cas(") {
			found["cas"] = true
		}
		if strings.Contains(src, "if (") && strings.Contains(src, ".cas(") &&
			strings.Contains(src, "while (") {
			found["cas-retry"] = true
		}
		if strings.Contains(src, "a[ix]") {
			found["idxload"] = true
		}
		if strings.Contains(src, "a[0] :=") || strings.Contains(src, "a[1] :=") {
			found["cell-write"] = true
		}
	}
	for _, want := range []string{"cas", "cas-retry", "idxload", "cell-write"} {
		if !found[want] {
			t.Errorf("no generated program contains a %s", want)
		}
	}
}

// Static bounds stay sound with the CAS/array constructs forced high
// — the analogue of TestGenerateBoundIsSound on the new statement
// kinds.
func TestGenerateBoundIsSoundWithCas(t *testing.T) {
	seeds := int64(15)
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(1); seed <= seeds; seed++ {
		p := Generate(seed, Params{PCas: 60, PArr: 60, Budget: 12})
		tc, err := p.File.Test()
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.NewConfig(tc.Prog, tc.Init)
		nInit := cfg.Progress()
		var mu sync.Mutex
		maxP := 0
		res := explore.Run(cfg, explore.Options{
			MaxEvents: p.Bound + 8, MaxConfigs: 1 << 17,
			Property: func(c model.Config) bool {
				mu.Lock()
				if v := c.Progress() - nInit; v > maxP {
					maxP = v
				}
				mu.Unlock()
				return true
			},
		})
		if res.Truncated && res.Explored < 1<<17 {
			t.Fatalf("seed %d: truncated below the generous bound", seed)
		}
		if maxP > p.Bound {
			t.Fatalf("seed %d: static bound %d < actual %d\n%s",
				seed, p.Bound, maxP, p.File.Format())
		}
	}
}
