// Package gen synthesises random well-formed litmus programs and
// differentially fuzzes the memory-model backends with them. It closes
// the loop the hand-written catalog of internal/litmus leaves open:
// instead of ~20 curated scenarios, a seeded, deterministic generator
// (Generate) produces an unbounded stream of terminating .lit programs
// — configurable thread/variable counts, RMW/branch/loop densities,
// annotation mix — each of which is run through a battery of oracles
// (Check) layered on the existing machinery: SC ⊆ RA outcome
// refinement, the partial-order-reduction audit, the incremental-
// closure audit, the fingerprint-collision audit, and serial-vs-
// parallel engine equivalence. Any discrepancy is minimised by a
// greedy delta-debugging shrinker (Shrink) that preserves the failure
// while the program still shrinks, and written to a reproducible
// corpus (WriteRepro) keyed by its seed. cmd/c11fuzz is the front end.
//
// Programs are emitted through the parser's grammar printer, so every
// artifact round-trips parse → print → reparse (Check enforces this as
// its first oracle), and every generated loop is bounded by a
// thread-private counter — only the generating thread ever touches it,
// so under any memory model the guard reads the thread's own latest
// write (coherence) and the loop terminates after its configured
// iteration count. Generation tracks a worst-case memory-event budget
// per thread, so exploration bounds derived from Program.Bound are
// never hit and verdicts are exhaustive, not bound-relative.
package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/parser"
)

// Params configures the generator. The zero value of any field selects
// the default noted on it; probabilities are percentages clamped to
// [0,100]. The same Params and seed always produce the same program.
type Params struct {
	// Threads is the maximum thread count; each program draws its
	// count uniformly from 2..Threads (default 3).
	Threads int
	// Vars is the number of shared variables x0..x{Vars-1} (default 2).
	Vars int
	// Stmts is the maximum top-level statement count per thread; each
	// thread draws from 2..Stmts (default 4).
	Stmts int
	// Values bounds written values, drawn from 1..Values (default 2).
	// Small domains maximise read-write collisions, which is where the
	// weak behaviours live.
	Values int
	// Budget is the per-thread worst-case memory-event budget; nested
	// constructs are charged their worst-case path so the whole
	// program's event count is statically bounded (default 6).
	Budget int
	// Depth bounds if/while nesting (default 2).
	Depth int
	// LoopIters is the iteration count of generated bounded loops,
	// drawn from 1..LoopIters (default 2).
	LoopIters int
	// ArrLen is the cell count of the shared array a[0..ArrLen-1]
	// (default 2). Every cell starts at zero and is observed; the
	// shared index variable ix only ever receives literals below
	// ArrLen, so symbolic loads a[ix] always hit an initialised cell.
	ArrLen int

	// Densities, in percent.
	PSwap  int // RMW swap statements (default 15)
	PIf    int // branches (default 20)
	PWhile int // bounded loops (default 10)
	PRel   int // release annotation on writes (default 30)
	PAcq   int // acquire annotation on loads (default 30)
	PNA    int // non-atomic accesses (default 10)
	PNeg   int // negative write values (default 5)
	PExpr  int // compound write expressions like x := y + 1 (default 15)
	PCas   int // CAS statements, branches and bounded retry loops (default 10)
	PArr   int // array accesses: cell writes, index moves, a[ix] loads (default 10)
}

func defInt(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

func (p Params) withDefaults() Params {
	p.Threads = defInt(p.Threads, 3)
	p.Vars = defInt(p.Vars, 2)
	p.Stmts = defInt(p.Stmts, 4)
	if p.Threads < 2 {
		p.Threads = 2
	}
	if p.Stmts < 2 {
		p.Stmts = 2
	}
	p.Values = defInt(p.Values, 2)
	p.Budget = defInt(p.Budget, 6)
	p.Depth = defInt(p.Depth, 2)
	p.LoopIters = defInt(p.LoopIters, 2)
	p.ArrLen = defInt(p.ArrLen, 2)
	p.PSwap = defInt(p.PSwap, 15)
	p.PIf = defInt(p.PIf, 20)
	p.PWhile = defInt(p.PWhile, 10)
	p.PRel = defInt(p.PRel, 30)
	p.PAcq = defInt(p.PAcq, 30)
	p.PNA = defInt(p.PNA, 10)
	p.PNeg = defInt(p.PNeg, 5)
	p.PExpr = defInt(p.PExpr, 15)
	p.PCas = defInt(p.PCas, 10)
	p.PArr = defInt(p.PArr, 10)
	return p
}

// String renders the parameters in flag form, for corpus headers.
func (p Params) String() string {
	p = p.withDefaults()
	return fmt.Sprintf(
		"-threads %d -vars %d -stmts %d -values %d -evbudget %d -depth %d -loopiters %d -arrlen %d "+
			"-pswap %d -pif %d -pwhile %d -prel %d -pacq %d -pna %d -pneg %d -pexpr %d -pcas %d -parr %d",
		p.Threads, p.Vars, p.Stmts, p.Values, p.Budget, p.Depth, p.LoopIters, p.ArrLen,
		p.PSwap, p.PIf, p.PWhile, p.PRel, p.PAcq, p.PNA, p.PNeg, p.PExpr, p.PCas, p.PArr)
}

// Program is one generated artifact: the file, the seed that produced
// it, and the worst-case number of memory events along any execution
// path — the exploration bound that makes verdicts exhaustive.
type Program struct {
	File *parser.File
	Seed int64
	// Bound is the static worst-case memory-event count summed over
	// all threads (reads, writes and updates; silent steps are free).
	Bound int
}

// gens carries the generation state of one program.
type gens struct {
	rng    *rand.Rand
	p      Params
	shared []event.Var
	// init accumulates every variable the program mentions; all start
	// at zero so the file is closed (no uninitialised reads).
	init map[event.Var]event.Val
	// regs and counters are per-thread private-variable counters.
	thread  int
	regN    int
	ctrN    int
	observe []event.Var
	// arr and idx are the shared array and its index variable; writes
	// to idx are always literals in [0, ArrLen), so a[ix] stays inside
	// the initialised cells.
	arr event.Var
	idx event.Var
}

func (g *gens) pct(p int) bool { return g.rng.Intn(100) < p }

// Generate synthesises one program from the seed. Same seed and
// params ⇒ byte-identical file; distinct seeds draw independent rngs,
// so a fuzzing run over seeds s..s+n-1 is reproducible per program.
func Generate(seed int64, params Params) Program {
	p := params.withDefaults()
	g := &gens{
		rng:  rand.New(rand.NewSource(seed)),
		p:    p,
		init: map[event.Var]event.Val{},
	}
	for i := 0; i < p.Vars; i++ {
		x := event.Var(fmt.Sprintf("x%d", i))
		g.shared = append(g.shared, x)
		g.init[x] = 0
		g.observe = append(g.observe, x)
	}
	if p.PArr > 0 {
		g.arr, g.idx = "a", "ix"
		g.init[g.idx] = 0
		for i := 0; i < p.ArrLen; i++ {
			cell := lang.Cell(g.arr, event.Val(i))
			g.init[cell] = 0
			g.observe = append(g.observe, cell)
		}
	}

	nThreads := 2 + g.rng.Intn(p.Threads-1)
	f := &parser.File{
		Name:    fmt.Sprintf("gen-seed%d", seed),
		Init:    g.init,
		Threads: map[int]lang.Com{},
	}
	total := 0
	for t := 1; t <= nThreads; t++ {
		g.thread = t
		g.regN, g.ctrN = 0, 0
		budget := p.Budget
		body := g.block(2+g.rng.Intn(p.Stmts-1), 0, &budget)
		f.Threads[t] = body
		total += p.Budget - budget
	}
	sort.Slice(g.observe, func(i, j int) bool { return g.observe[i] < g.observe[j] })
	f.Observe = g.observe
	return Program{File: f, Seed: seed, Bound: total}
}

// block generates up to n statements at nesting depth d within the
// remaining event budget.
func (g *gens) block(n, d int, budget *int) lang.Com {
	var stmts []lang.Com
	for i := 0; i < n && *budget > 0; i++ {
		stmts = append(stmts, g.stmt(d, budget))
	}
	if len(stmts) == 0 {
		return lang.SkipC()
	}
	return lang.SeqC(stmts...)
}

func (g *gens) stmt(d int, budget *int) lang.Com {
	switch {
	case d < g.p.Depth && *budget >= 6 && g.pct(g.p.PWhile):
		return g.loop(d, budget)
	case d < g.p.Depth && *budget >= 2 && g.pct(g.p.PIf):
		return g.branch(d, budget)
	case *budget >= 1 && g.pct(g.p.PSwap):
		*budget--
		return lang.SwapC(g.sharedVar(), g.val())
	case *budget >= 1 && g.pct(g.p.PCas):
		return g.cas(d, budget)
	case g.arr != "" && *budget >= 1 && g.pct(g.p.PArr):
		return g.arrayStmt(budget)
	default:
		return g.access(budget)
	}
}

// cas emits a compare-and-swap construct: a bounded CAS-retry
// fetch-add when the budget allows one, an if (x.cas(o,n)) branch,
// or a bare x.cas(o,n); statement. A CAS with literal operands is
// one memory event (the update on success, the failing acquiring
// read otherwise); register operands add one read each.
func (g *gens) cas(d int, budget *int) lang.Com {
	x := g.sharedVar()
	switch {
	case d < g.p.Depth && *budget >= 9 && g.pct(35):
		return g.casRetry(x, budget)
	case d < g.p.Depth && *budget >= 3 && g.pct(50):
		*budget--
		then := g.block(1, d+1, budget)
		els := lang.SkipC()
		if g.pct(40) {
			els = g.block(1, d+1, budget)
		}
		return lang.CasC(x, lang.V(g.casExp()), lang.V(g.val()), then, els)
	default:
		*budget--
		return lang.CasStmtC(x, lang.V(g.casExp()), lang.V(g.val()))
	}
}

// casRetry emits the idiomatic bounded CAS-retry fetch-add:
//
//	while (c < iters) {
//	  r := x;
//	  if (x.cas(r, r + 1)) { c := iters; } else { c := c + 1; }
//	}
//
// The private counter bounds the retries, so the loop terminates
// under every model. Worst-case events per iteration: the guard read
// (1), r := x (2), the CAS with its two register reads (3), and the
// losing branch's counter bump (2) — 8 — plus the final guard read.
func (g *gens) casRetry(x event.Var, budget *int) lang.Com {
	iters := 1 + g.rng.Intn(g.p.LoopIters)
	for iters > 1 && *budget < 8*iters+1 {
		iters--
	}
	if *budget < 8*iters+1 {
		return g.access(budget)
	}
	*budget -= 8*iters + 1
	c := event.Var(fmt.Sprintf("c%d_%d", g.thread, g.ctrN))
	g.ctrN++
	g.init[c] = 0
	r := g.reg()
	body := lang.SeqC(
		lang.AssignC(r, g.load(x)),
		lang.CasC(x, lang.X(r), lang.Add(lang.X(r), lang.V(1)),
			lang.AssignC(c, lang.V(event.Val(iters))),
			lang.AssignC(c, lang.Add(lang.X(c), lang.V(1)))),
	)
	guard := lang.Bin{Op: lang.OpLt, L: lang.X(c), R: lang.V(event.Val(iters))}
	return lang.WhileC(guard, body)
}

// casExp draws a CAS expected value from 0..Values — zero included,
// so expectations matching the initial store are generated.
func (g *gens) casExp() event.Val {
	return event.Val(g.rng.Intn(g.p.Values + 1))
}

// arrayStmt emits an array access: a symbolic load r := a[ix] (three
// events: the index read, the cell read, the register write), a
// literal-index cell write, or a move of the shared index variable.
func (g *gens) arrayStmt(budget *int) lang.Com {
	switch {
	case *budget >= 3 && g.pct(40):
		*budget -= 3
		return lang.AssignC(g.reg(), g.idxLoad())
	case g.pct(50):
		*budget--
		return g.writeAt(g.arr, lang.V(g.idxVal()), lang.V(g.val()))
	default:
		*budget--
		return g.write(g.idx, lang.V(g.idxVal()))
	}
}

// idxVal draws a literal index inside the array.
func (g *gens) idxVal() event.Val {
	return event.Val(g.rng.Intn(g.p.ArrLen))
}

// idxLoad builds a[ix] with the usual annotation mix.
func (g *gens) idxLoad() lang.Expr {
	i := lang.X(g.idx)
	switch {
	case g.pct(g.p.PAcq):
		return lang.XAtA(g.arr, i)
	case g.pct(g.p.PNA):
		return lang.XAtNA(g.arr, i)
	default:
		return lang.XAt(g.arr, i)
	}
}

// writeAt mirrors write for indexed assignments.
func (g *gens) writeAt(a event.Var, idx, e lang.Expr) lang.Com {
	switch {
	case g.pct(g.p.PRel):
		return lang.AssignAtRelC(a, idx, e)
	case g.pct(g.p.PNA):
		return lang.AssignAtNAC(a, idx, e)
	default:
		return lang.AssignAtC(a, idx, e)
	}
}

// access emits a plain memory statement: a write, a read into a fresh
// register, or a compound read-then-write.
func (g *gens) access(budget *int) lang.Com {
	x := g.sharedVar()
	switch {
	case *budget >= 2 && g.pct(g.p.PExpr):
		// x := y ⊗ v — one read plus one write.
		*budget -= 2
		e := g.binExpr(g.load(g.sharedVar()), g.val())
		return g.write(x, e)
	case *budget >= 2 && !g.pct(50):
		// r := x is two events: the read and the register write.
		*budget -= 2
		return lang.AssignC(g.reg(), g.load(x))
	default:
		*budget--
		return g.write(x, lang.V(g.val()))
	}
}

// loop emits a terminating bounded loop: a thread-private counter
// guards the body, so every model reads the thread's own latest
// counter write and the loop runs exactly iters times. Worst-case
// cost: iters+1 guard reads, plus per iteration the body and the
// counter increment (one read, one write).
func (g *gens) loop(d int, budget *int) lang.Com {
	iters := 1 + g.rng.Intn(g.p.LoopIters)
	// Reserve the fixed overhead, hand the body what is left for one
	// iteration, then charge the body's actual cost once per iteration.
	overhead := (iters + 1) + 2*iters
	bodyBudget := (*budget - overhead) / iters
	if bodyBudget < 1 {
		return g.access(budget)
	}
	c := event.Var(fmt.Sprintf("c%d_%d", g.thread, g.ctrN))
	g.ctrN++
	g.init[c] = 0
	left := bodyBudget
	body := g.block(1+g.rng.Intn(2), d+1, &left)
	used := bodyBudget - left
	*budget -= overhead + iters*used
	inc := lang.AssignC(c, lang.Add(lang.X(c), lang.V(1)))
	guard := lang.Bin{Op: lang.OpLt, L: lang.X(c), R: lang.V(event.Val(iters))}
	return lang.WhileC(guard, lang.SeqC(body, inc))
}

// branch emits if (load ⊗ v) { … } else { … }; the guard costs one
// read, the branches are charged their worst case (the max, but both
// are generated from the same remaining budget, so the sum bound used
// here is safely conservative).
func (g *gens) branch(d int, budget *int) lang.Com {
	*budget--
	guard := g.binExpr(g.load(g.sharedVar()), g.val())
	then := g.block(1+g.rng.Intn(2), d+1, budget)
	els := lang.SkipC()
	if g.pct(40) {
		els = g.block(1, d+1, budget)
	}
	return lang.IfC(guard, then, els)
}

func (g *gens) write(x event.Var, e lang.Expr) lang.Com {
	switch {
	case g.pct(g.p.PRel):
		return lang.AssignRelC(x, e)
	case g.pct(g.p.PNA):
		return lang.AssignNAC(x, e)
	default:
		return lang.AssignC(x, e)
	}
}

func (g *gens) load(x event.Var) lang.Expr {
	switch {
	case g.pct(g.p.PAcq):
		return lang.XA(x)
	case g.pct(g.p.PNA):
		return lang.XNA(x)
	default:
		return lang.X(x)
	}
}

func (g *gens) binExpr(l lang.Expr, v event.Val) lang.Expr {
	ops := []lang.BinOp{lang.OpEq, lang.OpNe, lang.OpLt, lang.OpAdd, lang.OpSub}
	return lang.Bin{Op: ops[g.rng.Intn(len(ops))], L: l, R: lang.V(v)}
}

func (g *gens) sharedVar() event.Var {
	return g.shared[g.rng.Intn(len(g.shared))]
}

func (g *gens) val() event.Val {
	v := event.Val(1 + g.rng.Intn(g.p.Values))
	if g.pct(g.p.PNeg) {
		v = -v
	}
	return v
}

// reg allocates a fresh thread-private observation register.
func (g *gens) reg() event.Var {
	r := event.Var(fmt.Sprintf("r%d_%d", g.thread, g.regN))
	g.regN++
	g.init[r] = 0
	g.observe = append(g.observe, r)
	return r
}
