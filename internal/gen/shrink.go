package gen

// Greedy delta-debugging shrinker. Shrink repeatedly enumerates every
// single-step reduction of the current file — drop a thread, delete a
// statement, collapse a branch or loop, weaken an annotation, simplify
// an expression — in a fixed deterministic order, takes the first one
// that still satisfies the caller's predicate (".. still fails"), and
// restarts. At the fixpoint no enumerated edit preserves the
// predicate, so the result is 1-minimal with respect to the edit set,
// and the whole procedure is deterministic: the same input and
// predicate always produce the same (byte-identical) minimal file.
//
// Every candidate is normalised before the predicate runs: skips are
// pruned out of sequences, threads reduced to skip are dropped (with
// the remaining threads renumbered contiguously), and the init and
// observe clauses are trimmed to the variables the program still
// mentions — so the minimal file carries no dead declarations.

import (
	"sort"

	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/parser"
)

// Shrink greedily minimises f while keep holds. keep must hold on f
// itself (otherwise f is returned unchanged). The predicate is
// re-evaluated on whole candidate files, so it may run arbitrary
// oracles; determinism of the result requires determinism of keep.
func Shrink(f *parser.File, keep func(*parser.File) bool) *parser.File {
	if !keep(f) {
		return f
	}
	if n := normalize(f); keep(n) {
		f = n
	}
	for {
		improved := false
		for _, cand := range fileVariants(f) {
			cand = normalize(cand)
			if keep(cand) {
				f = cand
				improved = true
				break
			}
		}
		if !improved {
			return f
		}
	}
}

// fileVariants enumerates every single-step reduction of the file, in
// a fixed order: thread drops first (the biggest cuts), then per-
// thread command reductions in thread order.
func fileVariants(f *parser.File) []*parser.File {
	var out []*parser.File
	ids := threadIDs(f)
	if len(ids) > 1 {
		for _, id := range ids {
			out = append(out, withoutThread(f, id))
		}
	}
	for _, id := range ids {
		for _, v := range comVariants(f.Threads[id]) {
			out = append(out, withThread(f, id, v))
		}
	}
	return out
}

func threadIDs(f *parser.File) []int {
	ids := make([]int, 0, len(f.Threads))
	for id := range f.Threads {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func withoutThread(f *parser.File, drop int) *parser.File {
	out := shallow(f)
	for _, id := range threadIDs(f) {
		if id == drop {
			continue
		}
		nid := id
		if id > drop {
			nid = id - 1
		}
		out.Threads[nid] = f.Threads[id]
	}
	return out
}

func withThread(f *parser.File, id int, c lang.Com) *parser.File {
	out := shallow(f)
	for oid, oc := range f.Threads {
		out.Threads[oid] = oc
	}
	out.Threads[id] = c
	return out
}

func shallow(f *parser.File) *parser.File {
	return &parser.File{
		Name:      f.Name,
		Init:      f.Init,
		Threads:   map[int]lang.Com{},
		Observe:   f.Observe,
		Allow:     f.Allow,
		Forbid:    f.Forbid,
		AllowSC:   f.AllowSC,
		ForbidSC:  f.ForbidSC,
		MaxEvents: f.MaxEvents,
	}
}

// comVariants enumerates single-step reductions of a command: the
// whole command replaced by skip, then node-specific collapses, then
// reductions inside each child, left to right.
func comVariants(c lang.Com) []lang.Com {
	var out []lang.Com
	switch x := c.(type) {
	case lang.Skip:
		return nil

	case lang.Seq:
		// Statement deletion is "replace with skip" on a child plus
		// skip pruning during normalisation; the Seq node itself only
		// recurses.
		for _, v := range comVariants(x.C1) {
			out = append(out, lang.Seq{C1: v, C2: x.C2})
		}
		for _, v := range comVariants(x.C2) {
			out = append(out, lang.Seq{C1: x.C1, C2: v})
		}

	case lang.Assign:
		out = append(out, lang.Skip{})
		if x.Rel || x.NA {
			out = append(out, assignWith(x.X, x.Idx, x.E, false, false))
		}
		for _, e := range exprVariants(x.E) {
			out = append(out, assignWith(x.X, x.Idx, e, x.Rel, x.NA))
		}
		if x.Idx != nil {
			// Collapse the index: first to its simplifications, which
			// bottom out in literals and hence (through the
			// constructors) in plain cell assignments.
			for _, i := range exprVariants(x.Idx) {
				out = append(out, assignWith(x.X, i, x.E, x.Rel, x.NA))
			}
		}

	case lang.Swap:
		out = append(out,
			lang.Skip{},
			// Weaken the RMW to a plain write of the same value.
			lang.Assign{X: x.X, E: lang.V(x.N)})

	case lang.Cas:
		out = append(out, lang.Skip{}, x.Then, x.Else)
		// Weaken the CAS to the unconditional write of its new value
		// followed by the success branch — keeps the write and the
		// control flow while dropping the arbitration.
		out = append(out, lang.SeqC(assignWith(x.X, x.Idx, x.New, false, false), x.Then))
		for _, e := range exprVariants(x.Old) {
			out = append(out, casWith(x, x.Idx, e, x.New, x.Then, x.Else))
		}
		for _, e := range exprVariants(x.New) {
			out = append(out, casWith(x, x.Idx, x.Old, e, x.Then, x.Else))
		}
		if x.Idx != nil {
			for _, i := range exprVariants(x.Idx) {
				out = append(out, casWith(x, i, x.Old, x.New, x.Then, x.Else))
			}
		}
		for _, v := range comVariants(x.Then) {
			out = append(out, casWith(x, x.Idx, x.Old, x.New, v, x.Else))
		}
		for _, v := range comVariants(x.Else) {
			out = append(out, casWith(x, x.Idx, x.Old, x.New, x.Then, v))
		}

	case lang.If:
		out = append(out, lang.Skip{}, x.Then, x.Else)
		for _, e := range exprVariants(x.B) {
			out = append(out, lang.If{B: e, Then: x.Then, Else: x.Else})
		}
		for _, v := range comVariants(x.Then) {
			out = append(out, lang.If{B: x.B, Then: v, Else: x.Else})
		}
		for _, v := range comVariants(x.Else) {
			out = append(out, lang.If{B: x.B, Then: x.Then, Else: v})
		}

	case lang.While:
		out = append(out, lang.Skip{}, x.Body)
		for _, e := range exprVariants(x.Guard) {
			out = append(out, lang.WhileC(e, x.Body))
		}
		for _, v := range comVariants(x.Body) {
			out = append(out, lang.WhileC(x.Guard, v))
		}

	case lang.Label:
		out = append(out, lang.Skip{}, x.C)
		for _, v := range comVariants(x.C) {
			out = append(out, lang.Label{Name: x.Name, C: v})
		}
	}
	return out
}

// assignWith rebuilds an assignment through the canonicalising
// constructors, so a literal index collapses into a plain cell
// assignment rather than a non-canonical Assign{Idx: Lit}.
func assignWith(x event.Var, idx, e lang.Expr, rel, na bool) lang.Com {
	switch {
	case idx == nil && rel:
		return lang.AssignRelC(x, e)
	case idx == nil && na:
		return lang.AssignNAC(x, e)
	case idx == nil:
		return lang.AssignC(x, e)
	case rel:
		return lang.AssignAtRelC(x, idx, e)
	case na:
		return lang.AssignAtNAC(x, idx, e)
	default:
		return lang.AssignAtC(x, idx, e)
	}
}

// casWith rebuilds a CAS through the canonicalising constructors.
func casWith(x lang.Cas, idx, old, nw lang.Expr, then, els lang.Com) lang.Com {
	if idx == nil {
		return lang.CasC(x.X, old, nw, then, els)
	}
	return lang.CasAtC(x.X, idx, old, nw, then, els)
}

// exprVariants enumerates single-step simplifications of an
// expression: the whole expression to a literal, annotation drops on
// loads, operand hoisting, then recursion into operands.
func exprVariants(e lang.Expr) []lang.Expr {
	var out []lang.Expr
	switch x := e.(type) {
	case lang.Lit:
		return nil
	case lang.Load:
		out = append(out, lang.V(0), lang.V(1))
		if x.Acq || x.NA {
			out = append(out, lang.X(x.X))
		}
	case lang.IdxLoad:
		out = append(out, lang.V(0), lang.V(1), x.I)
		if x.Acq || x.NA {
			out = append(out, lang.XAt(x.A, x.I))
		}
		// Index simplifications bottom out in literals, which the XAt
		// constructors canonicalise into plain cell loads.
		for _, i := range exprVariants(x.I) {
			out = append(out, idxLoadWith(x, i))
		}
	case lang.Un:
		out = append(out, lang.V(0), x.E)
		for _, v := range exprVariants(x.E) {
			out = append(out, lang.Un{Op: x.Op, E: v})
		}
	case lang.Bin:
		out = append(out, lang.V(0), lang.V(1), x.L, x.R)
		for _, v := range exprVariants(x.L) {
			out = append(out, lang.Bin{Op: x.Op, L: v, R: x.R})
		}
		for _, v := range exprVariants(x.R) {
			out = append(out, lang.Bin{Op: x.Op, L: x.L, R: v})
		}
	}
	return out
}

// idxLoadWith rebuilds an indexed load through the canonicalising
// constructors.
func idxLoadWith(x lang.IdxLoad, i lang.Expr) lang.Expr {
	switch {
	case x.Acq:
		return lang.XAtA(x.A, i)
	case x.NA:
		return lang.XAtNA(x.A, i)
	default:
		return lang.XAt(x.A, i)
	}
}

// normalize prunes skips, drops skip-only threads (keeping at least
// one, renumbered contiguously) and trims init/observe to the
// variables the residual program mentions.
func normalize(f *parser.File) *parser.File {
	out := shallow(f)
	used := map[event.Var]bool{}
	live := make([]lang.Com, 0, len(f.Threads))
	for _, id := range threadIDs(f) {
		c := pruneSkips(f.Threads[id])
		if lang.Terminated(c) && len(f.Threads) > 1 {
			continue
		}
		live = append(live, c)
		collectComVars(c, used)
	}
	if len(live) == 0 {
		live = append(live, lang.SkipC())
	}
	for i, c := range live {
		out.Threads[i+1] = c
	}

	// A symbolically indexed access marks the array base as used; its
	// cells cannot be trimmed individually, since the index is only
	// known at run time.
	keep := func(x event.Var) bool {
		if used[x] {
			return true
		}
		base, ok := lang.CellOf(x)
		return ok && used[base]
	}
	out.Init = map[event.Var]event.Val{}
	for x, v := range f.Init {
		if keep(x) {
			out.Init[x] = v
		}
	}
	out.Observe = nil
	for _, x := range f.Observe {
		if keep(x) {
			out.Observe = append(out.Observe, x)
		}
	}
	return out
}

// pruneSkips removes skip units from sequence spines.
func pruneSkips(c lang.Com) lang.Com {
	switch x := c.(type) {
	case lang.Seq:
		c1, c2 := pruneSkips(x.C1), pruneSkips(x.C2)
		if lang.Terminated(c1) {
			return c2
		}
		if lang.Terminated(c2) {
			return c1
		}
		return lang.Seq{C1: c1, C2: c2}
	case lang.If:
		return lang.If{B: x.B, Then: pruneSkips(x.Then), Else: pruneSkips(x.Else)}
	case lang.While:
		return lang.WhileC(x.Guard, pruneSkips(x.Body))
	case lang.Cas:
		x.Then, x.Else = pruneSkips(x.Then), pruneSkips(x.Else)
		return x
	case lang.Label:
		return lang.Label{Name: x.Name, C: pruneSkips(x.C)}
	default:
		return c
	}
}

// collectComVars accumulates every variable the command mentions. A
// symbolically indexed access contributes its array *base* — normalize
// then keeps every initialised cell of that base alive.
func collectComVars(c lang.Com, out map[event.Var]bool) {
	switch x := c.(type) {
	case lang.Assign:
		out[x.X] = true
		collectExprVars(x.E, out)
		if x.Idx != nil {
			collectExprVars(x.Idx, out)
		}
	case lang.Swap:
		out[x.X] = true
	case lang.Cas:
		out[x.X] = true
		collectExprVars(x.Old, out)
		collectExprVars(x.New, out)
		if x.Idx != nil {
			collectExprVars(x.Idx, out)
		}
		collectComVars(x.Then, out)
		collectComVars(x.Else, out)
	case lang.Seq:
		collectComVars(x.C1, out)
		collectComVars(x.C2, out)
	case lang.If:
		collectExprVars(x.B, out)
		collectComVars(x.Then, out)
		collectComVars(x.Else, out)
	case lang.While:
		collectExprVars(x.Guard, out)
		collectComVars(x.Body, out)
	case lang.Label:
		collectComVars(x.C, out)
	}
}

// collectExprVars is FreeVars plus array bases: an IdxLoad reads some
// cell of its array, so the base is recorded alongside the index's
// own variables.
func collectExprVars(e lang.Expr, out map[event.Var]bool) {
	switch x := e.(type) {
	case lang.Load:
		out[x.X] = true
	case lang.IdxLoad:
		out[x.A] = true
		collectExprVars(x.I, out)
	case lang.Un:
		collectExprVars(x.E, out)
	case lang.Bin:
		collectExprVars(x.L, out)
		collectExprVars(x.R, out)
	}
}
