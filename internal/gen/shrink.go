package gen

// Greedy delta-debugging shrinker. Shrink repeatedly enumerates every
// single-step reduction of the current file — drop a thread, delete a
// statement, collapse a branch or loop, weaken an annotation, simplify
// an expression — in a fixed deterministic order, takes the first one
// that still satisfies the caller's predicate (".. still fails"), and
// restarts. At the fixpoint no enumerated edit preserves the
// predicate, so the result is 1-minimal with respect to the edit set,
// and the whole procedure is deterministic: the same input and
// predicate always produce the same (byte-identical) minimal file.
//
// Every candidate is normalised before the predicate runs: skips are
// pruned out of sequences, threads reduced to skip are dropped (with
// the remaining threads renumbered contiguously), and the init and
// observe clauses are trimmed to the variables the program still
// mentions — so the minimal file carries no dead declarations.

import (
	"sort"

	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/parser"
)

// Shrink greedily minimises f while keep holds. keep must hold on f
// itself (otherwise f is returned unchanged). The predicate is
// re-evaluated on whole candidate files, so it may run arbitrary
// oracles; determinism of the result requires determinism of keep.
func Shrink(f *parser.File, keep func(*parser.File) bool) *parser.File {
	if !keep(f) {
		return f
	}
	if n := normalize(f); keep(n) {
		f = n
	}
	for {
		improved := false
		for _, cand := range fileVariants(f) {
			cand = normalize(cand)
			if keep(cand) {
				f = cand
				improved = true
				break
			}
		}
		if !improved {
			return f
		}
	}
}

// fileVariants enumerates every single-step reduction of the file, in
// a fixed order: thread drops first (the biggest cuts), then per-
// thread command reductions in thread order.
func fileVariants(f *parser.File) []*parser.File {
	var out []*parser.File
	ids := threadIDs(f)
	if len(ids) > 1 {
		for _, id := range ids {
			out = append(out, withoutThread(f, id))
		}
	}
	for _, id := range ids {
		for _, v := range comVariants(f.Threads[id]) {
			out = append(out, withThread(f, id, v))
		}
	}
	return out
}

func threadIDs(f *parser.File) []int {
	ids := make([]int, 0, len(f.Threads))
	for id := range f.Threads {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func withoutThread(f *parser.File, drop int) *parser.File {
	out := shallow(f)
	for _, id := range threadIDs(f) {
		if id == drop {
			continue
		}
		nid := id
		if id > drop {
			nid = id - 1
		}
		out.Threads[nid] = f.Threads[id]
	}
	return out
}

func withThread(f *parser.File, id int, c lang.Com) *parser.File {
	out := shallow(f)
	for oid, oc := range f.Threads {
		out.Threads[oid] = oc
	}
	out.Threads[id] = c
	return out
}

func shallow(f *parser.File) *parser.File {
	return &parser.File{
		Name:    f.Name,
		Init:    f.Init,
		Threads: map[int]lang.Com{},
		Observe: f.Observe,
		Allow:   f.Allow,
		Forbid:  f.Forbid,
	}
}

// comVariants enumerates single-step reductions of a command: the
// whole command replaced by skip, then node-specific collapses, then
// reductions inside each child, left to right.
func comVariants(c lang.Com) []lang.Com {
	var out []lang.Com
	switch x := c.(type) {
	case lang.Skip:
		return nil

	case lang.Seq:
		// Statement deletion is "replace with skip" on a child plus
		// skip pruning during normalisation; the Seq node itself only
		// recurses.
		for _, v := range comVariants(x.C1) {
			out = append(out, lang.Seq{C1: v, C2: x.C2})
		}
		for _, v := range comVariants(x.C2) {
			out = append(out, lang.Seq{C1: x.C1, C2: v})
		}

	case lang.Assign:
		out = append(out, lang.Skip{})
		if x.Rel || x.NA {
			out = append(out, lang.Assign{X: x.X, E: x.E})
		}
		for _, e := range exprVariants(x.E) {
			out = append(out, lang.Assign{X: x.X, E: e, Rel: x.Rel, NA: x.NA})
		}

	case lang.Swap:
		out = append(out,
			lang.Skip{},
			// Weaken the RMW to a plain write of the same value.
			lang.Assign{X: x.X, E: lang.V(x.N)})

	case lang.If:
		out = append(out, lang.Skip{}, x.Then, x.Else)
		for _, e := range exprVariants(x.B) {
			out = append(out, lang.If{B: e, Then: x.Then, Else: x.Else})
		}
		for _, v := range comVariants(x.Then) {
			out = append(out, lang.If{B: x.B, Then: v, Else: x.Else})
		}
		for _, v := range comVariants(x.Else) {
			out = append(out, lang.If{B: x.B, Then: x.Then, Else: v})
		}

	case lang.While:
		out = append(out, lang.Skip{}, x.Body)
		for _, e := range exprVariants(x.Guard) {
			out = append(out, lang.WhileC(e, x.Body))
		}
		for _, v := range comVariants(x.Body) {
			out = append(out, lang.WhileC(x.Guard, v))
		}

	case lang.Label:
		out = append(out, lang.Skip{}, x.C)
		for _, v := range comVariants(x.C) {
			out = append(out, lang.Label{Name: x.Name, C: v})
		}
	}
	return out
}

// exprVariants enumerates single-step simplifications of an
// expression: the whole expression to a literal, annotation drops on
// loads, operand hoisting, then recursion into operands.
func exprVariants(e lang.Expr) []lang.Expr {
	var out []lang.Expr
	switch x := e.(type) {
	case lang.Lit:
		return nil
	case lang.Load:
		out = append(out, lang.V(0), lang.V(1))
		if x.Acq || x.NA {
			out = append(out, lang.X(x.X))
		}
	case lang.Un:
		out = append(out, lang.V(0), x.E)
		for _, v := range exprVariants(x.E) {
			out = append(out, lang.Un{Op: x.Op, E: v})
		}
	case lang.Bin:
		out = append(out, lang.V(0), lang.V(1), x.L, x.R)
		for _, v := range exprVariants(x.L) {
			out = append(out, lang.Bin{Op: x.Op, L: v, R: x.R})
		}
		for _, v := range exprVariants(x.R) {
			out = append(out, lang.Bin{Op: x.Op, L: x.L, R: v})
		}
	}
	return out
}

// normalize prunes skips, drops skip-only threads (keeping at least
// one, renumbered contiguously) and trims init/observe to the
// variables the residual program mentions.
func normalize(f *parser.File) *parser.File {
	out := shallow(f)
	used := map[event.Var]bool{}
	live := make([]lang.Com, 0, len(f.Threads))
	for _, id := range threadIDs(f) {
		c := pruneSkips(f.Threads[id])
		if lang.Terminated(c) && len(f.Threads) > 1 {
			continue
		}
		live = append(live, c)
		collectComVars(c, used)
	}
	if len(live) == 0 {
		live = append(live, lang.SkipC())
	}
	for i, c := range live {
		out.Threads[i+1] = c
	}

	out.Init = map[event.Var]event.Val{}
	for x, v := range f.Init {
		if used[x] {
			out.Init[x] = v
		}
	}
	out.Observe = nil
	for _, x := range f.Observe {
		if used[x] {
			out.Observe = append(out.Observe, x)
		}
	}
	return out
}

// pruneSkips removes skip units from sequence spines.
func pruneSkips(c lang.Com) lang.Com {
	switch x := c.(type) {
	case lang.Seq:
		c1, c2 := pruneSkips(x.C1), pruneSkips(x.C2)
		if lang.Terminated(c1) {
			return c2
		}
		if lang.Terminated(c2) {
			return c1
		}
		return lang.Seq{C1: c1, C2: c2}
	case lang.If:
		return lang.If{B: x.B, Then: pruneSkips(x.Then), Else: pruneSkips(x.Else)}
	case lang.While:
		return lang.WhileC(x.Guard, pruneSkips(x.Body))
	case lang.Label:
		return lang.Label{Name: x.Name, C: pruneSkips(x.C)}
	default:
		return c
	}
}

// collectComVars accumulates every variable the command mentions.
func collectComVars(c lang.Com, out map[event.Var]bool) {
	switch x := c.(type) {
	case lang.Assign:
		out[x.X] = true
		for v := range lang.FreeVars(x.E) {
			out[v] = true
		}
	case lang.Swap:
		out[x.X] = true
	case lang.Seq:
		collectComVars(x.C1, out)
		collectComVars(x.C2, out)
	case lang.If:
		for v := range lang.FreeVars(x.B) {
			out[v] = true
		}
		collectComVars(x.Then, out)
		collectComVars(x.Else, out)
	case lang.While:
		for v := range lang.FreeVars(x.Guard) {
			out[v] = true
		}
		collectComVars(x.Body, out)
	case lang.Label:
		collectComVars(x.C, out)
	}
}
