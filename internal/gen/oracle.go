package gen

// The oracle battery: every generated (or replayed) program is run
// through each cross-check the repository already knows how to make,
// all in-process — no shelling out to the binaries. A nil Failure
// means every oracle passed; the Kind taxonomy is what the shrinker
// preserves and the corpus files record.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/model/backends"
	"repro/internal/parser"
	"repro/internal/telemetry"
)

// Kind classifies an oracle failure.
type Kind string

// Failure kinds, most specific first.
const (
	// FailRoundTrip: the file does not survive parse → print →
	// reparse with an identical program and expectations.
	FailRoundTrip Kind = "roundtrip"
	// FailRefinement: an outcome is reachable under SC but not under
	// RA — SC refines RA, so this is a backend bug by construction.
	FailRefinement Kind = "refinement"
	// FailPOR: the reduced search diverged from the full one
	// (explore.CheckPOR found missing/extra terminated states, unsound
	// reachability, or a verdict flip).
	FailPOR Kind = "por-divergence"
	// FailIncremental: the incrementally maintained derived structures
	// disagreed with their from-scratch recomputation.
	FailIncremental Kind = "incremental-mismatch"
	// FailCollision: two distinct canonical keys shared a 128-bit
	// fingerprint.
	FailCollision Kind = "fingerprint-collision"
	// FailWorkers: the serial and parallel engines disagreed on a
	// completed search.
	FailWorkers Kind = "serial-parallel"
	// FailPanic: some oracle crashed; the stack is in the detail.
	FailPanic Kind = "panic"
)

// Failure is one oracle discrepancy.
type Failure struct {
	Kind   Kind
	Detail string
}

func (f *Failure) String() string { return string(f.Kind) + ": " + f.Detail }

// CheckOpts bounds the oracle explorations.
type CheckOpts struct {
	// MaxEvents bounds the RAR searches (default 18). Fuzzing derives
	// it from Program.Bound so generated programs are never truncated
	// and verdicts are exhaustive.
	MaxEvents int
	// MaxConfigs caps each search (default 1<<15). A program that
	// hits the cap skips the bound-sensitive oracles instead of
	// reporting spurious divergences.
	MaxConfigs int
	// Workers is the parallel width of the serial-vs-parallel oracle
	// (default 8).
	Workers int
	// Deadline, when non-zero, bounds every oracle exploration by
	// wall-clock time through the engine's budget machinery. A search
	// the deadline cuts reports through the audits as budget-cut: the
	// set comparisons are skipped rather than reported as spurious
	// divergences, and the refinement check is relative to what was
	// explored (Report.TruncatedRA).
	Deadline time.Time
	// Context, when non-nil, cancels every oracle exploration — the
	// frontend threads its signal context here so an interrupted fuzz
	// run stops at the engine's next admission check.
	Context context.Context
	// Metrics, when non-nil, receives the engine counters of every
	// oracle search; one registry accumulates across the whole fuzzing
	// run, so its progress line measures the campaign, not a program.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, receives the search spans of every oracle
	// exploration.
	Tracer *telemetry.Tracer
}

func (o CheckOpts) withDefaults() CheckOpts {
	o.MaxEvents = defInt(o.MaxEvents, 18)
	o.MaxConfigs = defInt(o.MaxConfigs, 1<<15)
	o.Workers = defInt(o.Workers, 8)
	return o
}

// Report is the result of running the oracle battery on one program.
type Report struct {
	// Failure is the first oracle discrepancy, nil when all passed.
	Failure *Failure
	// Weak lists outcomes reachable under RA but not SC — the
	// program's weak behaviours (not a failure; the interesting case).
	Weak []string
	// ExploredRA and ExploredSC are the differential searches' sizes.
	ExploredRA, ExploredSC int
	// TruncatedRA reports that the RA search hit a bound, making the
	// refinement check (and Weak) relative to it.
	TruncatedRA bool
}

// Check runs the full oracle battery over the file. Any panic inside
// an oracle is caught and reported as FailPanic.
func Check(f *parser.File, opts CheckOpts) (rep Report) {
	opts = opts.withDefaults()
	defer func() {
		if r := recover(); r != nil {
			rep.Failure = &Failure{Kind: FailPanic, Detail: fmt.Sprint(r)}
		}
	}()

	if fail := roundTrip(f); fail != nil {
		rep.Failure = fail
		return rep
	}

	test, err := f.Test()
	if err != nil {
		rep.Failure = &Failure{Kind: FailRoundTrip, Detail: "not runnable: " + err.Error()}
		return rep
	}
	rar, _ := backends.Get("rar")
	sc, _ := backends.Get("sc")
	eopts := explore.Options{
		MaxEvents: opts.MaxEvents, MaxConfigs: opts.MaxConfigs,
		Deadline: opts.Deadline, Context: opts.Context,
		Metrics: opts.Metrics, Tracer: opts.Tracer,
	}

	for _, m := range []model.Model{rar, sc} {
		cfg := m.New(test.Prog, test.Init)

		// Incremental-maintenance and fingerprint audits ride one full
		// (unreduced) search; both count expected-zero quantities.
		ao := eopts
		ao.CheckIncremental = true
		ao.CheckCollisions = true
		res := explore.Run(cfg, ao)
		if res.ClosureMismatches > 0 {
			rep.Failure = &Failure{Kind: FailIncremental,
				Detail: fmt.Sprintf("%s: %d closure mismatches", m.Name(), res.ClosureMismatches)}
			return rep
		}
		if res.FingerprintCollisions > 0 {
			rep.Failure = &Failure{Kind: FailCollision,
				Detail: fmt.Sprintf("%s: %d colliding keys", m.Name(), res.FingerprintCollisions)}
			return rep
		}

		// Reduced vs full search.
		if audit := explore.CheckPOR(cfg, eopts); audit.Divergences() > 0 {
			rep.Failure = &Failure{Kind: FailPOR,
				Detail: fmt.Sprintf("%s: %s", m.Name(), audit)}
			return rep
		}

		// Serial vs parallel engine, under the reduction (the sleep-mask
		// relaxation machinery is exactly what this stresses).
		wo := eopts
		wo.POR = true
		if audit := explore.CheckWorkers(cfg, wo, opts.Workers); audit.Divergences() > 0 {
			rep.Failure = &Failure{Kind: FailWorkers,
				Detail: fmt.Sprintf("%s: %s", m.Name(), audit)}
			return rep
		}
	}

	// Differential outcome comparison: SC ⊆ RA refinement.
	d := test.Diff(rar, sc, eopts)
	rep.Weak = d.OnlyA
	rep.ExploredRA, rep.ExploredSC = d.ExploredA, d.ExploredB
	rep.TruncatedRA = d.TruncatedA
	if len(d.OnlyB) > 0 && !d.TruncatedA {
		rep.Failure = &Failure{Kind: FailRefinement,
			Detail: "sc-only outcomes: " + strings.Join(d.OnlyB, " ")}
	}
	return rep
}

// roundTrip checks parse∘print identity: the printed file must
// reparse, reach a printing fixed point immediately, and denote the
// same program and expectations.
func roundTrip(f *parser.File) *Failure {
	txt := f.Format()
	f2, err := parser.Parse(f.Name, txt)
	if err != nil {
		return &Failure{Kind: FailRoundTrip, Detail: "printed file does not reparse: " + err.Error()}
	}
	if txt2 := f2.Format(); txt2 != txt {
		return &Failure{Kind: FailRoundTrip, Detail: "printing is not a fixed point"}
	}
	p1, err1 := f.Prog()
	p2, err2 := f2.Prog()
	if (err1 == nil) != (err2 == nil) {
		return &Failure{Kind: FailRoundTrip, Detail: "program validity drifted"}
	}
	if err1 == nil && p1.String() != p2.String() {
		return &Failure{Kind: FailRoundTrip,
			Detail: fmt.Sprintf("program drifted:\n%s\nvs\n%s", p1, p2)}
	}
	if len(f2.Observe) != len(f.Observe) {
		return &Failure{Kind: FailRoundTrip, Detail: "observe clause drifted"}
	}
	return nil
}

// Predicate returns the shrinker predicate that preserves the given
// failure kind under the same oracle options: a candidate is kept
// when the battery still reports a failure of that kind.
func Predicate(kind Kind, opts CheckOpts) func(*parser.File) bool {
	return func(f *parser.File) bool {
		rep := Check(f, opts)
		return rep.Failure != nil && rep.Failure.Kind == kind
	}
}
