package gen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/parser"
)

// The differential fuzz smoke: a fixed seed window through the whole
// oracle battery, zero failures expected. This is the in-tree version
// of the CI c11fuzz run, small enough for `go test ./...`.
func TestDifferentialFuzzSmoke(t *testing.T) {
	n := int64(12)
	if testing.Short() {
		n = 4
	}
	weak := 0
	for seed := int64(1); seed <= n; seed++ {
		p := Generate(seed, Params{})
		rep := Check(p.File, CheckOpts{MaxEvents: p.Bound + 1, Workers: 4})
		if rep.Failure != nil {
			t.Fatalf("seed %d failed %s\n%s", seed, rep.Failure, p.File.Format())
		}
		if len(rep.Weak) > 0 {
			weak++
		}
	}
	t.Logf("%d/%d programs with weak behaviours", weak, n)
}

// A predicate for a kind that does not occur reports false.
func TestPredicateOnPassingProgram(t *testing.T) {
	p := Generate(5, Params{})
	if Predicate(FailRefinement, CheckOpts{MaxEvents: p.Bound + 1})(p.File) {
		t.Fatal("passing program judged failing")
	}
}

// The round-trip oracle rejects a file whose printed form denotes a
// different program (simulated by a printer-hostile AST is impossible
// through the public surface, so check the pass direction plus the
// corpus write/load cycle instead).
func TestCorpusWriteLoad(t *testing.T) {
	dir := t.TempDir()
	p := Generate(9, Params{})
	fail := &Failure{Kind: FailPOR, Detail: "synthetic detail\nsecond line"}
	path, err := WriteRepro(dir, Repro{
		Seed: 9, Params: Params{}, Fail: fail, Shrunk: p.File, Orig: p.File,
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"por-divergence", "seed 9", "synthetic detail", "second line", "-replay"} {
		if !strings.Contains(string(src), want) {
			t.Fatalf("header missing %q:\n%s", want, src)
		}
	}

	files, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("loaded %d files", len(files))
	}
	// The reproducer body is the shrunk program; the commented-out
	// original must not leak into the parse.
	got, _ := files[0].Prog()
	want, _ := p.File.Prog()
	if got.String() != want.String() {
		t.Fatalf("corpus round trip drifted:\n%s\nvs\n%s", got, want)
	}
	if base := filepath.Base(path); base != "por-divergence-seed9.lit" {
		t.Fatalf("unexpected corpus name %s", base)
	}

	// A missing directory is an empty corpus.
	none, err := LoadCorpus(filepath.Join(dir, "absent"))
	if err != nil || len(none) != 0 {
		t.Fatalf("missing dir: %v %v", none, err)
	}
}

// Replayed corpus files go through the same battery as generated
// ones: a hand-written weak-behaviour program must pass all oracles.
func TestCheckHandWrittenProgram(t *testing.T) {
	src := `
init x = 0 y = 0 a = 0 b = 0
thread 1 { x := 1; a := y; }
thread 2 { y := 1; b := x; }
observe a b
`
	f, err := parser.Parse("sb.lit", src)
	if err != nil {
		t.Fatal(err)
	}
	rep := Check(f, CheckOpts{MaxEvents: 8})
	if rep.Failure != nil {
		t.Fatalf("store buffering failed the battery: %s", rep.Failure)
	}
	// SB's a=0;b=0 is the canonical weak behaviour.
	found := false
	for _, w := range rep.Weak {
		if w == "a=0;b=0;" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected the store-buffering weak outcome, got %v", rep.Weak)
	}
}
