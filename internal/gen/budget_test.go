package gen

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/explore"
	"repro/internal/fingerprint"
	"repro/internal/model"
	"repro/internal/model/backends"
)

type cancelHook struct {
	after  int32
	calls  atomic.Int32
	cancel context.CancelFunc
}

func (h *cancelHook) BeforeExpand(fingerprint.FP, int) {
	if h.calls.Add(1) == h.after {
		h.cancel()
	}
}

// TestViolationsUnderRandomBudgetsReplay is the partial-result
// soundness property, over generated programs: whatever budget or
// cancellation point cuts a search, any violation it reports is a
// really-reached configuration — an unbudgeted witness search replays
// it to the same fingerprint, where the property is indeed false. And
// no budget-cut search ever reports PROVED.
func TestViolationsUnderRandomBudgetsReplay(t *testing.T) {
	rar, _ := backends.Get("rar")
	replayed := 0
	for seed := int64(1); seed <= 25; seed++ {
		prog := Generate(seed, Params{})
		test, err := prog.File.Test()
		if err != nil {
			continue
		}
		rng := rand.New(rand.NewSource(seed))
		maxEv := prog.Bound + 1

		// A property false on a random slice of the space: "fewer than
		// K events issued", violated by any sufficiently long execution.
		root := rar.New(test.Prog, test.Init)
		threshold := root.Progress() + 1 + rng.Intn(prog.Bound+1)
		prop := func(c model.Config) bool { return c.Progress() < threshold }

		opts := explore.Options{MaxEvents: maxEv, Property: prop, Workers: 1 + rng.Intn(4)}
		var cancel context.CancelFunc
		switch rng.Intn(3) {
		case 0: // state budget
			opts.MaxConfigs = 1 + rng.Intn(300)
		case 1: // cancellation at a random expansion
			var ctx context.Context
			ctx, cancel = context.WithCancel(context.Background())
			opts.Context = ctx
			opts.Hooks = &cancelHook{after: int32(1 + rng.Intn(40)), cancel: cancel}
		case 2: // wall-clock budget, sometimes brutally tight
			opts.Timeout = time.Duration(1+rng.Intn(2000)) * time.Microsecond
		}
		res := explore.Run(rar.New(test.Prog, test.Init), opts)
		if cancel != nil {
			cancel()
		}

		if res.Stop != explore.StopNone && res.Stop != explore.StopViolation &&
			res.Verdict == explore.VerdictProved {
			t.Fatalf("seed %d: budget-cut search (stop %v) reported PROVED", seed, res.Stop)
		}
		if res.Violation == nil {
			continue
		}
		if res.Verdict != explore.VerdictViolated {
			t.Fatalf("seed %d: violation present but verdict %v", seed, res.Verdict)
		}
		if prop(res.Violation) {
			t.Fatalf("seed %d: reported violation satisfies the property", seed)
		}
		want := res.Violation.Fingerprint()
		tr, found := explore.FindTrace(rar.New(test.Prog, test.Init),
			explore.Options{MaxEvents: maxEv},
			func(c model.Config) bool { return c.Fingerprint() == want })
		if !found {
			t.Fatalf("seed %d: violation %v not replayable without a budget", seed, want)
		}
		last := tr.Configs[len(tr.Configs)-1]
		if last.Fingerprint() != want || prop(last) {
			t.Fatalf("seed %d: replayed witness diverged", seed)
		}
		replayed++
	}
	if replayed == 0 {
		t.Fatal("no violation was ever reported — the property never bit; tighten it")
	}
}

// TestOracleDeadline: a deadline threaded through CheckOpts cuts the
// battery without spurious failures — budget-cut audits compare
// nothing, and the refinement check degrades to truncated.
func TestOracleDeadline(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		prog := Generate(seed, Params{})
		rep := Check(prog.File, CheckOpts{
			MaxEvents: prog.Bound + 1,
			Deadline:  time.Now().Add(500 * time.Microsecond),
		})
		if rep.Failure != nil {
			t.Fatalf("seed %d: deadline-cut battery reported a failure: %s", seed, rep.Failure)
		}
	}
}
