package serve

// Tests for the /metrics exposition and the registry-backed /statz:
// the two surfaces are views over the same snapshot, so their numbers
// must agree; the cache counts its evictions; singleflight joins are
// observable.

import (
	"bufio"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// scrapeMetrics fetches /metrics and parses the exposition into a
// name → value map, checking the line format as it goes (counters and
// gauges alike; no labels are emitted by this server).
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	hr, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", hr.StatusCode)
	}
	if ct := hr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q, want text/plain exposition", ct)
	}
	vals := map[string]float64{}
	sc := bufio.NewScanner(hr.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed exposition line %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("non-numeric sample %q: %v", line, err)
		}
		vals[name] = f
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return vals
}

func TestMetricsAgreeWithStatz(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// Generate traffic across several counter families: a miss + run,
	// a hit, and a bad request.
	postVerify(t, ts, Request{Name: "a", Program: mpSync})
	postVerify(t, ts, Request{Name: "b", Program: mpSync})
	http.Post(ts.URL+"/v1/verify", "application/json", strings.NewReader("{broken"))

	vals := scrapeMetrics(t, ts.URL)
	st := s.Stats()
	for name, want := range map[string]int64{
		"c11serve_requests_total":     st.Requests,
		"c11serve_completed_total":    st.Completed,
		"c11serve_cache_hits_total":   st.CacheHits,
		"c11serve_cache_misses_total": st.CacheMisses,
		"c11serve_bad_requests_total": st.BadRequests,
		"c11serve_shed_total":         st.Shed,
	} {
		got, ok := vals[name]
		if !ok {
			t.Errorf("family %s missing from /metrics", name)
			continue
		}
		if int64(got) != want {
			t.Errorf("%s = %v, /statz says %d", name, got, want)
		}
	}
	if st.Requests != 2 || st.CacheHits != 1 || st.CacheMisses != 1 || st.BadRequests != 1 {
		t.Fatalf("unexpected traffic totals: %+v", st)
	}

	// The cumulative engine registry saw the one real search: at least
	// one expansion and one admitted state, and the engine totals are
	// exposed under their own prefix.
	if vals["c11serve_engine_expansions_total"] < 1 {
		t.Errorf("engine expansions = %v, want >= 1", vals["c11serve_engine_expansions_total"])
	}
	if vals["c11serve_engine_states_admitted_total"] < 1 {
		t.Errorf("engine states_admitted = %v, want >= 1", vals["c11serve_engine_states_admitted_total"])
	}

	// Scrape-time gauges are present and sane on an idle server.
	if vals["c11serve_running"] != 0 || vals["c11serve_queued"] != 0 {
		t.Errorf("idle server reports running=%v queued=%v", vals["c11serve_running"], vals["c11serve_queued"])
	}
	if vals["c11serve_draining"] != 0 {
		t.Errorf("draining gauge = %v on a live server", vals["c11serve_draining"])
	}
	if _, ok := vals["c11serve_uptime_seconds"]; !ok {
		t.Error("uptime gauge missing")
	}
}

func TestCacheEvictionCounted(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheEntries: 1})

	// Two distinct cacheable queries through a 1-entry cache: the
	// second insert displaces the first.
	postVerify(t, ts, Request{Program: mpSync})
	postVerify(t, ts, Request{Program: mpRelaxed})
	st := s.Stats()
	if st.CacheEvictions != 1 {
		t.Fatalf("cache_evictions = %d after overflowing a 1-entry cache, want 1", st.CacheEvictions)
	}
	if st.CacheEntries != 1 {
		t.Fatalf("cache_entries = %d, want 1", st.CacheEntries)
	}

	// The displaced entry misses again — and its reinsert displaces in
	// turn.
	postVerify(t, ts, Request{Program: mpSync})
	if st = s.Stats(); st.CacheEvictions != 2 {
		t.Fatalf("cache_evictions = %d after a third distinct insert, want 2", st.CacheEvictions)
	}

	vals := scrapeMetrics(t, ts.URL)
	if got := int64(vals["c11serve_cache_evictions_total"]); got != st.CacheEvictions {
		t.Fatalf("/metrics evictions %d != /statz %d", got, st.CacheEvictions)
	}
}

func TestSingleflightDedupCounted(t *testing.T) {
	// Drive the flight group directly: the HTTP path's dedup timing is
	// racy (the winner may finish before the joiner arrives), but the
	// hook's contract is not.
	s := New(Config{})
	joined := make(chan struct{})
	countJoin := s.flights.onJoin
	s.flights.onJoin = func() { countJoin(); close(joined) }

	var calls int
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		s.flights.do(t.Context(), "k", func() (*Response, int) {
			calls++
			close(started)
			<-release // hold the flight open until the joiner arrives
			return &Response{}, http.StatusOK
		})
	}()
	go func() {
		defer wg.Done()
		<-started
		s.flights.do(t.Context(), "k", func() (*Response, int) {
			calls++
			return &Response{}, http.StatusOK
		})
	}()
	<-joined
	close(release)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("search ran %d times under singleflight, want 1", calls)
	}
	if got := s.Stats().FlightDedup; got != 1 {
		t.Fatalf("singleflight_dedup = %d, want 1", got)
	}
}
