package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/faultinject"
	"repro/internal/lang"
	"repro/internal/model"
)

// mpSync is message passing with release/acquire synchronisation: the
// forbidden stale read is unreachable, so the RAR verdict is PROVED
// and every expectation holds.
const mpSync = `init d=0 f=0 a=0 b=0
thread 1 { d := 5; f :=R 1; }
thread 2 { a := f^A; b := d; }
observe a b
allow a=0 b=0
allow a=0 b=5
allow a=1 b=5
forbid a=1 b=0
`

// mpRelaxed drops the annotations: under RAR the stale read a=1 b=0
// is reachable, so the forbid refutes — verdict VIOLATED.
const mpRelaxed = `init d=0 f=0 a=0 b=0
thread 1 { d := 5; f := 1; }
thread 2 { a := f; b := d; }
observe a b
forbid a=1 b=0
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postVerify(t *testing.T, ts *httptest.Server, req Request) (*Response, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/verify: %v", err)
	}
	defer hr.Body.Close()
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return &resp, hr.StatusCode
}

func TestVerifyProved(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, status := postVerify(t, ts, Request{Name: "mp", Program: mpSync})
	if status != http.StatusOK {
		t.Fatalf("status = %d, resp %+v", status, resp)
	}
	if resp.Verdict != "PROVED" || resp.Pass == nil || !*resp.Pass {
		t.Fatalf("verdict %s pass %v, want PROVED/true (%+v)", resp.Verdict, resp.Pass, resp)
	}
	if resp.Cached {
		t.Fatal("first query claimed a cache hit")
	}
	if len(resp.Outcomes) != 3 {
		t.Fatalf("outcomes %v, want the three allowed ones", resp.Outcomes)
	}
	if resp.MaxEvents == 0 || resp.MaxStates == 0 || resp.TimeoutMS == 0 {
		t.Fatalf("effective budgets missing from response: %+v", resp)
	}
}

func TestVerifyViolatedWithTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, status := postVerify(t, ts, Request{Program: mpRelaxed, Trace: true})
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if resp.Verdict != "VIOLATED" || resp.Pass == nil || *resp.Pass {
		t.Fatalf("verdict %s pass %v, want VIOLATED/false", resp.Verdict, resp.Pass)
	}
	if len(resp.ReachedForbidden) != 1 || resp.ReachedForbidden[0] != "a=1;b=0;" {
		t.Fatalf("reached_forbidden = %v", resp.ReachedForbidden)
	}
	if !strings.Contains(resp.Trace, "start:") {
		t.Fatalf("witness trace missing: %q", resp.Trace)
	}
}

func TestRawLitmusBody(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	hr, err := http.Post(ts.URL+"/v1/verify", "text/plain", strings.NewReader(mpSync))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusOK || resp.Verdict != "PROVED" {
		t.Fatalf("raw body: status %d verdict %s", hr.StatusCode, resp.Verdict)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, req := range map[string]Request{
		"empty":         {},
		"syntax":        {Program: "init x=\nthread"},
		"unknown model": {Program: mpSync, Model: "tso"},
		"bad artifact":  {Resume: "../../etc/passwd"},
	} {
		resp, status := postVerify(t, ts, req)
		if status != http.StatusBadRequest || resp.Error == "" {
			t.Errorf("%s: status %d error %q, want 400 with message", name, status, resp.Error)
		}
	}
}

func TestResumeUnknownArtifact(t *testing.T) {
	_, ts := newTestServer(t, Config{SpillDir: t.TempDir()})
	resp, status := postVerify(t, ts, Request{Resume: "deadbeef"})
	if status != http.StatusNotFound {
		t.Fatalf("status = %d (%+v), want 404", status, resp)
	}
}

func TestCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	first, _ := postVerify(t, ts, Request{Program: mpSync})
	second, _ := postVerify(t, ts, Request{Program: mpSync})
	if first.Cached || !second.Cached {
		t.Fatalf("cached flags = %v, %v; want false, true", first.Cached, second.Cached)
	}
	if second.Verdict != first.Verdict || len(second.Outcomes) != len(first.Outcomes) {
		t.Fatalf("cached answer drifted: %+v vs %+v", second, first)
	}
	// A different model is a different query.
	sc, _ := postVerify(t, ts, Request{Program: mpSync, Model: "sc"})
	if sc.Cached {
		t.Fatal("query under a different model hit the cache")
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 2 {
		t.Fatalf("stats hits=%d misses=%d, want 1/2", st.CacheHits, st.CacheMisses)
	}
	if st.CacheHitRate == 0 {
		t.Fatal("hit rate not computed")
	}
}

func TestBudgetClamping(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxEvents: 8, MaxStates: 500, MaxTimeout: 2 * time.Second})
	resp, _ := postVerify(t, ts, Request{
		Program: mpSync, MaxEvents: 10_000, MaxStates: 1 << 30, TimeoutMS: 1 << 30,
	})
	if resp.MaxEvents != 8 || resp.MaxStates != 500 || resp.TimeoutMS != 2000 {
		t.Fatalf("budgets not clamped: %+v", resp)
	}
}

func TestTimingCutNotCachedNeverProved(t *testing.T) {
	// A 1ms deadline with injected latency cuts the search; the answer
	// must be BOUNDED (never PROVED) and must not be cached.
	_, ts := newTestServer(t, Config{
		Hooks: faultinject.New(faultinject.Spec{LatencyEvery: 1, Latency: 5 * time.Millisecond}),
	})
	for i := 0; i < 2; i++ {
		resp, status := postVerify(t, ts, Request{Program: mpSync, TimeoutMS: 1})
		if status != http.StatusOK {
			t.Fatalf("status = %d", status)
		}
		if resp.Verdict != "BOUNDED" {
			t.Fatalf("cut search verdict = %s, want BOUNDED", resp.Verdict)
		}
		if resp.Pass != nil {
			t.Fatalf("cut search pass = %v, want inconclusive (absent)", *resp.Pass)
		}
		if resp.Cached {
			t.Fatal("timing-cut result was served from cache")
		}
	}
}

func TestStateBudgetCutIsCached(t *testing.T) {
	// A MaxConfigs cut is deterministic (serial engine), so it is
	// cacheable — unlike the timing cuts above.
	_, ts := newTestServer(t, Config{})
	first, _ := postVerify(t, ts, Request{Program: mpSync, MaxStates: 3})
	second, _ := postVerify(t, ts, Request{Program: mpSync, MaxStates: 3})
	if first.Verdict != "BOUNDED" || first.Stop != "max-configs" {
		t.Fatalf("state-cut first response: %+v", first)
	}
	if !second.Cached {
		t.Fatal("deterministic state-budget cut was not cached")
	}
}

func TestSheddingUnderLoad(t *testing.T) {
	// One worker, queue of one, slow searches: concurrent distinct
	// queries beyond two must be shed with 503 + Retry-After.
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 1,
		Hooks: faultinject.New(faultinject.Spec{LatencyEvery: 1, Latency: 10 * time.Millisecond}),
	})
	const n = 8
	statuses := make([]int, n)
	retryAfter := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct init values make distinct cache keys, so
			// singleflight cannot merge these.
			prog := fmt.Sprintf("init x=%d y=0\nthread 1 { x := 1; }\nthread 2 { y := x; }\nobserve x y\n", i+2)
			body, _ := json.Marshal(Request{Program: prog})
			hr, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer hr.Body.Close()
			statuses[i] = hr.StatusCode
			retryAfter[i] = hr.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()
	ok, shed := 0, 0
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
			if retryAfter[i] == "" {
				t.Error("shed response missing Retry-After")
			}
		default:
			t.Errorf("request %d: unexpected status %d", i, st)
		}
	}
	if shed == 0 {
		t.Fatalf("no request shed across %d concurrent (ok=%d)", n, ok)
	}
	if got := s.Stats().Shed; got != int64(shed) {
		t.Fatalf("stats.shed = %d, observed %d", got, shed)
	}
}

func TestSingleflightSharesOneSearch(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 2,
		Hooks:   faultinject.New(faultinject.Spec{LatencyEvery: 1, Latency: 5 * time.Millisecond}),
	})
	results := make(chan *Response, 2)
	go func() {
		resp, _ := postVerify(t, ts, Request{Program: mpSync})
		results <- resp
	}()
	// Wait for the leader's search to be running, then send the
	// identical query: it must join, not start a second search.
	waitFor(t, func() bool { return s.Stats().Running >= 1 })
	go func() {
		resp, _ := postVerify(t, ts, Request{Program: mpSync})
		results <- resp
	}()
	a, b := <-results, <-results
	if a.Verdict != "PROVED" || b.Verdict != "PROVED" {
		t.Fatalf("verdicts %s/%s", a.Verdict, b.Verdict)
	}
	st := s.Stats()
	if st.CacheShared != 1 {
		t.Fatalf("cache_shared = %d, want 1 (completed=%d)", st.CacheShared, st.Completed)
	}
	if st.Completed != 1 {
		t.Fatalf("completed = %d searches for two identical queries, want 1", st.Completed)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHealthReadyStatz(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	get := func(path string) (int, string) {
		hr, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer hr.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(hr.Body)
		return hr.StatusCode, b.String()
	}
	if st, body := get("/healthz"); st != 200 || body != "ok\n" {
		t.Fatalf("healthz: %d %q", st, body)
	}
	if st, _ := get("/readyz"); st != 200 {
		t.Fatalf("readyz before drain: %d", st)
	}
	st, body := get("/statz")
	if st != 200 {
		t.Fatalf("statz: %d", st)
	}
	var z Statz
	if err := json.Unmarshal([]byte(body), &z); err != nil {
		t.Fatalf("statz not JSON: %v\n%s", err, body)
	}
	if z.Workers == 0 || z.QueueDepth == 0 {
		t.Fatalf("statz missing pool config: %+v", z)
	}
	s.StartDrain()
	if st, _ := get("/readyz"); st != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", st)
	}
	if st, _ := get("/healthz"); st != 200 {
		t.Fatalf("healthz while draining: %d, want 200", st)
	}
}

func TestBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(BatchRequest{Requests: []Request{
		{Name: "good", Program: mpSync},
		{Name: "bad", Program: "not a litmus file"},
		{Name: "violated", Program: mpRelaxed},
	}})
	hr, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", hr.StatusCode)
	}
	var batch BatchResponse
	if err := json.NewDecoder(hr.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Responses) != 3 {
		t.Fatalf("%d responses for 3 requests", len(batch.Responses))
	}
	if batch.Responses[0].Verdict != "PROVED" || batch.Responses[0].Name != "good" {
		t.Fatalf("item 0: %+v", batch.Responses[0])
	}
	if batch.Responses[1].Error == "" {
		t.Fatalf("item 1 should have failed: %+v", batch.Responses[1])
	}
	if batch.Responses[2].Verdict != "VIOLATED" {
		t.Fatalf("item 2: %+v", batch.Responses[2])
	}
}

// panicModel is a Model whose factory panics: a stand-in for any bug
// on the request path, driving the isolation seam.
type panicModel struct{ model.Model }

func (panicModel) Name() string { return "panic" }
func (panicModel) New(p lang.Prog, vars map[event.Var]event.Val) model.Config {
	panic("injected model bug")
}

func TestRequestPanicIsolation(t *testing.T) {
	spill := t.TempDir()
	s, ts := newTestServer(t, Config{SpillDir: spill})
	// Drive runQuery directly with a poisoned query: the HTTP layer
	// cannot construct one (backends are fixed), but a bug anywhere on
	// the execution path lands in the same recover.
	q, err := s.prepare(&Request{Name: "boom", Program: mpSync})
	if err != nil {
		t.Fatal(err)
	}
	q.model = panicModel{}
	resp, status := s.runQuery(t.Context(), q)
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", status)
	}
	if !strings.Contains(resp.Error, "injected model bug") {
		t.Fatalf("error = %q", resp.Error)
	}
	if resp.Artifact == "" {
		t.Fatal("no replay artifact for the panic")
	}
	if s.Stats().Panics != 1 {
		t.Fatalf("panics stat = %d", s.Stats().Panics)
	}
	// The server is still alive and serving.
	after, st := postVerify(t, ts, Request{Program: mpSync})
	if st != http.StatusOK || after.Verdict != "PROVED" {
		t.Fatalf("server unhealthy after panic: %d %+v", st, after)
	}
}

func TestDrainCheckpointResume(t *testing.T) {
	spill := t.TempDir()
	// Ground truth: the uninterrupted verdict.
	_, clean := newTestServer(t, Config{})
	want, _ := postVerify(t, clean, Request{Program: mpSync})
	if want.Verdict != "PROVED" {
		t.Fatalf("ground truth: %+v", want)
	}

	// A slow server: the search is mid-flight when drain begins.
	s, ts := newTestServer(t, Config{
		SpillDir: spill,
		Hooks:    faultinject.New(faultinject.Spec{LatencyEvery: 1, Latency: 20 * time.Millisecond}),
	})
	got := make(chan *Response, 1)
	go func() {
		resp, _ := postVerify(t, ts, Request{Program: mpSync})
		got <- resp
	}()
	waitFor(t, func() bool { return s.Stats().Running >= 1 })
	if clean := s.Drain(time.Millisecond); clean {
		t.Fatal("drain claims clean although a slow search was running")
	}
	resp := <-got
	if resp.Verdict != "BOUNDED" {
		t.Fatalf("drained search verdict = %s, want BOUNDED", resp.Verdict)
	}
	if !strings.Contains(resp.Stop, "cancel") {
		t.Fatalf("drained search stop = %q", resp.Stop)
	}
	if resp.Artifact == "" {
		t.Fatal("drained search left no resumable artifact")
	}

	// New queries are shed while draining.
	shedResp, shedStatus := postVerify(t, ts, Request{Program: mpRelaxed})
	if shedStatus != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: %d %+v", shedStatus, shedResp)
	}

	// A restarted server resumes the artifact to the uninterrupted
	// verdict, and the finished result lands in the cache.
	s2, ts2 := newTestServer(t, Config{SpillDir: spill})
	resumed, status := postVerify(t, ts2, Request{Resume: resp.Artifact})
	if status != http.StatusOK {
		t.Fatalf("resume status %d: %+v", status, resumed)
	}
	if !resumed.Resumed {
		t.Fatal("resumed response not marked as resumed")
	}
	if resumed.Verdict != want.Verdict || *resumed.Pass != *want.Pass {
		t.Fatalf("resumed to %s/%v, uninterrupted run gave %s/%v",
			resumed.Verdict, *resumed.Pass, want.Verdict, *want.Pass)
	}
	if len(resumed.Outcomes) != len(want.Outcomes) {
		t.Fatalf("resumed outcomes %v, want %v", resumed.Outcomes, want.Outcomes)
	}
	fresh, _ := postVerify(t, ts2, Request{Program: mpSync})
	if !fresh.Cached {
		t.Fatal("identical query after resume missed the cache")
	}
	if s2.Stats().Resumes != 1 {
		t.Fatalf("resumes stat = %d", s2.Stats().Resumes)
	}
}
