package serve

// Service metrics: the counters behind /statz and the Prometheus
// exposition behind /metrics. The service counters live in one
// telemetry.Registry (the same striped store the engine uses), so
// /statz is a thin JSON view over the registry snapshot and /metrics
// is the text exposition of the very same numbers — the two surfaces
// cannot drift. A second, engine-schema registry aggregates the
// explore counters of every search the server runs, giving the
// service a cumulative view of engine work (expansions, POR pruning,
// dedup hits) across all requests.

import (
	"net/http"
	"time"

	"repro/internal/telemetry"
)

// Service counter indices into the serve-schema registry. Order must
// match serveSchema's name list.
const (
	ctrRequests telemetry.Counter = iota
	ctrCompleted
	ctrShed
	ctrBadRequests
	ctrPanics
	ctrCheckpoints
	ctrResumes
	ctrCacheHits
	ctrCacheMisses
	ctrCacheShared
	ctrCacheEvictions
	ctrFlightDedup
)

// serveSchema names the service counters; the names are the /metrics
// family names (prefixed, with _total appended) and the Statz fields.
func serveSchema() telemetry.Schema {
	return telemetry.Schema{Counters: []string{
		"requests",           // verification queries received (incl. batch items)
		"completed",          // searches run to a terminal response
		"shed",               // rejected by admission control
		"bad_requests",       // malformed queries
		"panics",             // request-level panics caught
		"checkpoints",        // drain/cut checkpoints written
		"resumes",            // searches resumed from a checkpoint
		"cache_hits",         // answered from the result cache
		"cache_misses",       // result cache lookups that missed
		"cache_shared",       // answered by joining an in-flight identical query
		"cache_evictions",    // LRU entries displaced by capacity
		"singleflight_dedup", // callers that joined an existing flight
	}}
}

// handleMetrics is GET /metrics: Prometheus text exposition 0.0.4.
// Three groups share the page: the c11serve_* service counters (the
// /statz numbers), the c11serve_engine_* cumulative engine counters
// of every search run so far, and a few scrape-time liveness gauges
// (pool occupancy, drain state, uptime) that are computed per scrape
// rather than stored.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.PrometheusContentType)
	s.metrics.Snapshot().WritePrometheus(w, "c11serve")
	s.engine.Snapshot().WritePrometheus(w, "c11serve_engine")

	st := s.Stats()
	telemetry.WritePrometheusGauge(w, "c11serve_running", float64(st.Running))
	telemetry.WritePrometheusGauge(w, "c11serve_queued", float64(st.Queued))
	telemetry.WritePrometheusGauge(w, "c11serve_workers", float64(st.Workers))
	telemetry.WritePrometheusGauge(w, "c11serve_queue_capacity", float64(st.QueueDepth))
	telemetry.WritePrometheusGauge(w, "c11serve_cache_entries", float64(st.CacheEntries))
	draining := 0.0
	if st.Draining {
		draining = 1
	}
	telemetry.WritePrometheusGauge(w, "c11serve_draining", draining)
	telemetry.WritePrometheusGauge(w, "c11serve_uptime_seconds",
		time.Since(s.start).Seconds())
}

// Metrics exposes the service-counter registry (for embedding servers
// that aggregate their own exposition).
func (s *Server) Metrics() *telemetry.Registry { return s.metrics }

// EngineMetrics exposes the cumulative engine-counter registry fed by
// every search the server runs.
func (s *Server) EngineMetrics() *telemetry.Registry { return s.engine }
