package serve

// Soak: the acceptance drill for the service. Over a hundred
// concurrent mixed queries run against a server with injected worker
// panics and aggressive budget cuts; every one of them must come back
// with a terminal response, nothing may claim PROVED that the clean
// ground truth does not prove, identical queries must hit the cache,
// and a drain mid-flight must leave checkpoints a restarted server
// resumes to the ground-truth verdict. Run it under -race: the whole
// point is the concurrent path.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// soakProg builds one of a family of distinct litmus programs:
// message passing with a per-index payload (distinct cache keys),
// synchronised for even i (ground truth PROVED) and relaxed for odd i
// (ground truth VIOLATED under RAR).
func soakProg(i int) string {
	payload := i + 1
	if i%2 == 0 {
		return fmt.Sprintf(`init d=0 f=0 a=0 b=0
thread 1 { d := %d; f :=R 1; }
thread 2 { a := f^A; b := d; }
observe a b
allow a=0 b=0
allow a=0 b=%d
allow a=1 b=%d
forbid a=1 b=0
`, payload, payload, payload)
	}
	return fmt.Sprintf(`init d=0 f=0 a=0 b=0
thread 1 { d := %d; f := 1; }
thread 2 { a := f; b := d; }
observe a b
forbid a=1 b=0
`, payload)
}

func soakPost(t *testing.T, url string, req Request) (*Response, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	hr, err := client.Post(url+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer hr.Body.Close()
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return &resp, hr.StatusCode
}

func TestSoakConcurrentFaultyLoad(t *testing.T) {
	const nProgs = 12

	// Phase 0: clean ground truth per program, from a fault-free
	// server with generous budgets.
	_, cleanTS := newTestServer(t, Config{Workers: 4})
	truth := make([]*Response, nProgs)
	for i := range truth {
		resp, status := soakPost(t, cleanTS.URL, Request{Program: soakProg(i)})
		if status != http.StatusOK || resp.Verdict == "BOUNDED" {
			t.Fatalf("ground truth %d: status %d, %+v", i, status, resp)
		}
		truth[i] = resp
	}

	// Phase 1: ≥100 concurrent mixed requests against a server with
	// injected panics and latency, under per-request budget cuts.
	spill := t.TempDir()
	s, ts := newTestServer(t, Config{
		Workers:    8,
		QueueDepth: 200, // soak measures isolation, not shedding
		SpillDir:   spill,
		Hooks: faultinject.New(faultinject.Spec{
			Seed:         7,
			PanicEvery:   3,
			LatencyEvery: 4,
			Latency:      200 * time.Microsecond,
		}),
	})
	const nReqs = 120
	type outcome struct {
		resp   *Response
		status int
	}
	results := make([]outcome, nReqs)
	var wg sync.WaitGroup
	for i := 0; i < nReqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := Request{Name: fmt.Sprintf("soak-%d", i), Program: soakProg(i % nProgs)}
			switch i % 3 {
			case 1:
				req.MaxStates = 4 // state-budget cut
			case 2:
				req.TimeoutMS = 1 // deadline cut
			}
			resp, status := soakPost(t, ts.URL, req)
			results[i] = outcome{resp, status}
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.resp == nil {
			t.Fatalf("request %d got no terminal response", i)
		}
		switch r.status {
		case http.StatusOK, http.StatusServiceUnavailable:
		default:
			t.Errorf("request %d: status %d (%+v)", i, r.status, r.resp)
		}
		if r.status != http.StatusOK {
			continue
		}
		// No spurious PROVED: a degraded or cut search must stay
		// BOUNDED, and a PROVED answer must agree with ground truth.
		gt := truth[i%nProgs]
		if r.resp.Verdict == "PROVED" {
			if r.resp.Panics > 0 || r.resp.Stop != "none" {
				t.Errorf("request %d: PROVED from a degraded search (%+v)", i, r.resp)
			}
			if gt.Verdict != "PROVED" {
				t.Errorf("request %d: PROVED but ground truth is %s", i, gt.Verdict)
			}
		}
		if r.resp.Verdict == "VIOLATED" && gt.Verdict != "VIOLATED" {
			t.Errorf("request %d: VIOLATED but ground truth is %s", i, gt.Verdict)
		}
	}
	if st := s.Stats(); st.Requests < nReqs || st.Running != 0 || st.Queued != 0 {
		t.Fatalf("pool did not quiesce: %+v", st)
	}

	// Phase 2: identical queries are cache hits. On the clean server
	// the first pass populated the cache; a second identical request
	// must be answered from it.
	again, _ := soakPost(t, cleanTS.URL, Request{Program: soakProg(0)})
	if !again.Cached {
		t.Fatal("second identical request missed the cache")
	}
	if again.Verdict != truth[0].Verdict {
		t.Fatalf("cached verdict %s, ground truth %s", again.Verdict, truth[0].Verdict)
	}

	// Phase 3: drain mid-flight (the SIGTERM path), restart on the
	// same spill directory, resume every artifact to the ground-truth
	// verdict.
	spill2 := t.TempDir()
	s3, ts3 := newTestServer(t, Config{
		Workers:  4,
		SpillDir: spill2,
		Hooks:    faultinject.New(faultinject.Spec{LatencyEvery: 1, Latency: 20 * time.Millisecond}),
	})
	const nSlow = 4
	type drained struct {
		resp *Response
		prog int
	}
	slow := make(chan drained, nSlow)
	for i := 0; i < nSlow; i++ {
		go func(i int) {
			prog := (2 * i) % nProgs
			resp, _ := soakPost(t, ts3.URL, Request{Program: soakProg(prog)})
			slow <- drained{resp, prog}
		}(i)
	}
	waitFor(t, func() bool { return s3.Stats().Running >= nSlow })
	if clean := s3.Drain(time.Millisecond); clean {
		t.Fatal("drain claims clean with slow searches in flight")
	}
	cut := make([]drained, 0, nSlow)
	for i := 0; i < nSlow; i++ {
		d := <-slow
		if d.resp.Verdict != "BOUNDED" || d.resp.Artifact == "" {
			t.Fatalf("drained search for program %d: %+v", d.prog, d.resp)
		}
		cut = append(cut, d)
	}

	// Restart: a clean server over the same spill directory resumes
	// every artifact to the verdict the uninterrupted run produces.
	_, ts4 := newTestServer(t, Config{Workers: 4, SpillDir: spill2})
	for _, d := range cut {
		resumed, status := soakPost(t, ts4.URL, Request{Resume: d.resp.Artifact})
		if status != http.StatusOK || !resumed.Resumed {
			t.Fatalf("resume %s: status %d, %+v", d.resp.Artifact, status, resumed)
		}
		gt := truth[d.prog]
		if resumed.Verdict != gt.Verdict {
			t.Fatalf("artifact %s resumed to %s, ground truth %s",
				d.resp.Artifact, resumed.Verdict, gt.Verdict)
		}
		if gt.Pass != nil && (resumed.Pass == nil || *resumed.Pass != *gt.Pass) {
			t.Fatalf("artifact %s resumed pass %v, ground truth %v",
				d.resp.Artifact, resumed.Pass, *gt.Pass)
		}
	}
}
