// Package serve implements verification-as-a-service: an HTTP/JSON
// front end over the exploration engine that accepts litmus programs,
// runs the bounded search under a chosen memory model and returns the
// tri-state verdict with outcome and coverage detail. It is built for
// hostile load, not just correct answers:
//
//   - Admission control. A bounded worker pool runs the searches; a
//     bounded queue holds the overflow; anything beyond that is shed
//     immediately with 503 + Retry-After. The server never spawns an
//     unbounded goroutine per request.
//   - Budget clamping. Client-requested event bounds, state budgets
//     and timeouts are clamped to server-configured ceilings before
//     they reach explore.Options, so one request cannot monopolise
//     the process.
//   - Result cache + singleflight. Queries are identified by the
//     canonical test signature × model × effective options; identical
//     concurrent queries share one search, and reproducible results
//     are answered from a bounded LRU.
//   - Request isolation. A panic while serving one request is caught,
//     written to a replayable .lit artifact, and answered with 500;
//     the server stays up.
//   - Graceful drain. Shutdown stops admitting, lets in-flight
//     searches finish under a deadline, then cancels the rest — which
//     checkpoint their partial state (with the original request and
//     outcome set embedded) so a restarted server can resume them to
//     the same verdict an uninterrupted run would have produced.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/explore"
	"repro/internal/telemetry"
)

// Config tunes a Server. The zero value is usable: every field has a
// working default (see New).
type Config struct {
	// Workers bounds how many searches run concurrently. Default 4.
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a
	// worker slot; beyond Workers+QueueDepth requests are shed.
	// Default 64.
	QueueDepth int
	// EngineWorkers is the worker count inside each search. The pool
	// provides cross-request parallelism, so the default is 1, which
	// also keeps per-query results deterministic.
	EngineWorkers int
	// CacheEntries bounds the result cache; 0 means the default
	// (1024), negative disables caching.
	CacheEntries int

	// MaxEvents is the ceiling (and default) for a request's
	// per-thread event bound. Default 16.
	MaxEvents int
	// MaxStates is the ceiling (and default) for a request's explored
	// configuration budget. Default 1<<20.
	MaxStates int
	// MaxTimeout is the ceiling (and default) for a request's
	// wall-clock budget. Default 30s.
	MaxTimeout time.Duration
	// MaxMemMB, when positive, sets a process-heap watermark
	// (explore.Options.MaxMemBytes) on every search.
	MaxMemMB int

	// SpillDir is where panic artifacts and drain checkpoints are
	// written. Empty disables both (panics are still isolated; cut
	// searches are still answered, just without a resumable artifact).
	SpillDir string

	// Hooks, when non-nil, is installed into every search. It exists
	// so tests can inject faults (internal/faultinject) under the full
	// service stack.
	Hooks explore.Hooks
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.EngineWorkers <= 0 {
		c.EngineWorkers = 1
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 16
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 1 << 20
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	return c
}

// Server is the verification service. Create with New, mount
// Handler, and call Drain before exit.
type Server struct {
	cfg     Config
	cache   *lruCache
	flights flightGroup

	sem      chan struct{} // worker slots; len(sem) = running searches
	admitted admitGate     // queued + running; Drain waits for zero
	draining atomic.Bool

	// hardCtx is cancelled when the drain grace expires: every
	// running search stops (StopCancelled) and checkpoints.
	hardCtx    context.Context
	hardCancel context.CancelFunc

	start time.Time
	// metrics holds the service counters (the /statz and /metrics
	// numbers); engine accumulates the explore counters of every
	// search the server runs. See metrics.go for the schema.
	metrics *telemetry.Registry
	engine  *telemetry.Registry
}

// New builds a Server from cfg (zero fields defaulted).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   newLRUCache(cfg.CacheEntries),
		sem:     make(chan struct{}, cfg.Workers),
		start:   time.Now(),
		metrics: telemetry.New(serveSchema()),
		engine:  telemetry.NewEngineRegistry(),
	}
	// Singleflight joins are counted at the point of joining — the
	// execute path separately counts the subset that produced a shared
	// answer (cache_shared); a joiner that abandons mid-wait still
	// deduplicated a search.
	s.flights.onJoin = func() { s.metrics.Add(ctrFlightDedup, 1) }
	s.hardCtx, s.hardCancel = context.WithCancel(context.Background())
	return s
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statz", s.handleStatz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// maxBodyBytes bounds request bodies; litmus programs are tiny, and
// an unbounded read is a free memory bomb.
const maxBodyBytes = 1 << 20

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r)
	if err != nil {
		s.metrics.Add(ctrBadRequests, 1)
		writeJSON(w, http.StatusBadRequest, &Response{Error: err.Error()})
		return
	}
	resp, status := s.execute(r.Context(), req)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, resp)
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Requests []Request `json:"requests"`
}

// BatchResponse is the body of a batch reply: one Response per
// request, in order. Items that were shed or failed carry their error
// inline; the batch itself is 200 whenever it was well-formed.
type BatchResponse struct {
	Responses []*Response `json:"responses"`
}

// maxBatch bounds the fan-out a single batch request may ask for.
const maxBatch = 256

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.metrics.Add(ctrBadRequests, 1)
		writeJSON(w, http.StatusBadRequest, &Response{Error: "read body: " + err.Error()})
		return
	}
	var batch BatchRequest
	if err := json.Unmarshal(body, &batch); err != nil {
		s.metrics.Add(ctrBadRequests, 1)
		writeJSON(w, http.StatusBadRequest, &Response{Error: "parse batch: " + err.Error()})
		return
	}
	if len(batch.Requests) == 0 {
		s.metrics.Add(ctrBadRequests, 1)
		writeJSON(w, http.StatusBadRequest, &Response{Error: "empty batch"})
		return
	}
	if len(batch.Requests) > maxBatch {
		s.metrics.Add(ctrBadRequests, 1)
		writeJSON(w, http.StatusBadRequest, &Response{Error: fmt.Sprintf("batch of %d exceeds limit %d", len(batch.Requests), maxBatch)})
		return
	}
	// Fan out; each item passes admission control individually, so a
	// big batch degrades into per-item shedding, never into unbounded
	// concurrency: the waiters here are bounded by maxBatch and the
	// searches by the worker pool.
	out := make([]*Response, len(batch.Requests))
	var wg sync.WaitGroup
	for i := range batch.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := s.execute(r.Context(), &batch.Requests[i])
			out[i] = resp
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchResponse{Responses: out})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ready\n")
}

// Statz is the JSON shape of GET /statz.
type Statz struct {
	UptimeSec      int64   `json:"uptime_sec"`
	Draining       bool    `json:"draining"`
	Workers        int     `json:"workers"`
	QueueDepth     int     `json:"queue_depth"`
	Running        int     `json:"running"`
	Queued         int     `json:"queued"`
	Requests       int64   `json:"requests"`
	Completed      int64   `json:"completed"`
	Shed           int64   `json:"shed"`
	BadRequests    int64   `json:"bad_requests"`
	Panics         int64   `json:"panics"`
	Checkpoints    int64   `json:"checkpoints"`
	Resumes        int64   `json:"resumes"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheShared    int64   `json:"cache_shared"`
	CacheEvictions int64   `json:"cache_evictions"`
	FlightDedup    int64   `json:"singleflight_dedup"`
	CacheEntries   int     `json:"cache_entries"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
}

// Stats snapshots the service counters (the /statz payload). It is a
// thin view over the metrics registry — the same snapshot /metrics
// exposes — plus the scrape-time pool occupancy.
func (s *Server) Stats() Statz {
	running := len(s.sem)
	queued := s.admitted.count() - running
	if queued < 0 {
		queued = 0
	}
	snap := s.metrics.Snapshot()
	st := Statz{
		UptimeSec:      int64(time.Since(s.start).Seconds()),
		Draining:       s.draining.Load(),
		Workers:        s.cfg.Workers,
		QueueDepth:     s.cfg.QueueDepth,
		Running:        running,
		Queued:         queued,
		Requests:       int64(snap.Counter("requests")),
		Completed:      int64(snap.Counter("completed")),
		Shed:           int64(snap.Counter("shed")),
		BadRequests:    int64(snap.Counter("bad_requests")),
		Panics:         int64(snap.Counter("panics")),
		Checkpoints:    int64(snap.Counter("checkpoints")),
		Resumes:        int64(snap.Counter("resumes")),
		CacheHits:      int64(snap.Counter("cache_hits")),
		CacheMisses:    int64(snap.Counter("cache_misses")),
		CacheShared:    int64(snap.Counter("cache_shared")),
		CacheEvictions: int64(snap.Counter("cache_evictions")),
		FlightDedup:    int64(snap.Counter("singleflight_dedup")),
		CacheEntries:   s.cache.len(),
	}
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		st.CacheHitRate = float64(st.CacheHits) / float64(lookups)
	}
	return st
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// admitGate counts admitted (queued + running) requests and lets the
// drain path wait for the count to reach zero. A plain WaitGroup
// cannot do this: Add would race Wait whenever the pool momentarily
// empties mid-drain.
type admitGate struct {
	mu   sync.Mutex
	n    int
	zero chan struct{} // non-nil while someone waits for n == 0
}

// tryAdd admits one request unless the count is at limit.
func (g *admitGate) tryAdd(limit int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.n >= limit {
		return false
	}
	g.n++
	return true
}

func (g *admitGate) done() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n--
	if g.n == 0 && g.zero != nil {
		close(g.zero)
		g.zero = nil
	}
}

func (g *admitGate) count() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// idle returns a channel closed when the admitted count is (or
// becomes) zero.
func (g *admitGate) idle() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.n == 0 {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	if g.zero == nil {
		g.zero = make(chan struct{})
	}
	return g.zero
}

// errShed is returned by acquire when admission control rejects.
var errShed = errors.New("serve: overloaded")

// errDraining is returned by acquire once drain has begun.
var errDraining = errors.New("serve: draining")

// acquire admits the caller into the worker pool, waiting in the
// bounded queue if all slots are busy. It fails fast when the queue
// is full, the server is draining, or the caller's context ends.
func (s *Server) acquire(ctx context.Context) error {
	if s.draining.Load() {
		return errDraining
	}
	if !s.admitted.tryAdd(s.cfg.Workers + s.cfg.QueueDepth) {
		return errShed
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.admitted.done()
		return ctx.Err()
	case <-s.hardCtx.Done():
		s.admitted.done()
		return errDraining
	}
}

func (s *Server) release() {
	<-s.sem
	s.admitted.done()
}

// StartDrain flips the server to draining: /readyz turns 503 and new
// queries are shed. In-flight and already-queued work keeps running.
func (s *Server) StartDrain() { s.draining.Store(true) }

// CancelSearches cuts every running search: each stops at its next
// admission check with StopCancelled and — when a spill directory is
// configured — writes a resumable checkpoint before its handler
// responds.
func (s *Server) CancelSearches() { s.hardCancel() }

// Drain performs the graceful-shutdown sequence: stop admitting, wait
// up to grace for admitted (queued and running) searches to finish on
// their own, then cancel the stragglers and wait for them to
// checkpoint and respond. It returns true when everything finished
// within grace (nothing was cut). Call it before shutting the HTTP
// listener down; once Drain returns, every handler has its response
// ready.
func (s *Server) Drain(grace time.Duration) (clean bool) {
	s.StartDrain()
	select {
	case <-s.admitted.idle():
		return true
	case <-time.After(grace):
	}
	s.CancelSearches()
	<-s.admitted.idle()
	return false
}

// newID mints a request/artifact identifier: URL- and path-safe by
// construction (hex only).
func (s *Server) newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to a
		// coarse uniqueness source rather than taking the service down.
		return fmt.Sprintf("t%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// decodeRequest reads a verify request. JSON bodies carry the full
// Request shape; any other content type is taken as a raw litmus
// program with server defaults, so `curl --data-binary @mp.lit` works
// without wrapping.
func decodeRequest(r *http.Request) (*Request, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("read body: %w", err)
	}
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") || (ct == "" && looksLikeJSON(body)) {
		var req Request
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, fmt.Errorf("parse request: %w", err)
		}
		return &req, nil
	}
	return &Request{Program: string(body)}, nil
}

func looksLikeJSON(body []byte) bool {
	trimmed := strings.TrimLeft(string(body), " \t\r\n")
	return strings.HasPrefix(trimmed, "{")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
