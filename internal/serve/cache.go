package serve

import (
	"container/list"
	"context"
	"sync"
)

// Result cache and singleflight, hand-rolled on the standard library
// (the service takes no dependencies beyond it). The cache is a
// bounded LRU keyed by the canonical query identity — the litmus
// test's signature hashed together with the model name and effective
// search options — so identical queries are answered from memory and
// retries are idempotent. Only results whose stop cause is
// reproducible are admitted: a deadline- or cancellation-cut search
// says something about this run's timing, not about the query, and
// caching it would pin a transient answer (see cacheable).

// lruCache is a fixed-capacity LRU map from cache key to Response.
// Cached responses are shared: callers must treat them as immutable
// and respond with a shallow copy (the slices inside are never
// mutated after construction).
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key  string
	resp *Response
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

func (c *lruCache) get(key string) (*Response, bool) {
	if c == nil || c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).resp, true
}

// put stores resp under key and returns how many entries capacity
// displaced (0 or 1 in practice; the loop is defensive). The caller
// owns counting evictions — the cache stays metrics-free.
func (c *lruCache) put(key string, resp *Response) (evicted int) {
	if c == nil || c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*lruEntry).resp = resp
		return 0
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, resp: resp})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
		evicted++
	}
	return evicted
}

func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flightGroup deduplicates concurrent identical queries: the first
// caller for a key runs the search, later callers for the same key
// block on its completion and share the answer instead of burning a
// second worker slot on the same work.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
	// onJoin, when non-nil, is called each time a caller joins an
	// already-in-flight identical query (the singleflight_dedup
	// metric), whether or not it stays for the answer.
	onJoin func()
}

type flight struct {
	done   chan struct{}
	resp   *Response
	status int
}

// do runs fn for key, unless an identical call is already in flight,
// in which case it waits for that call and returns its result with
// shared=true. A waiting caller whose context ends first gets
// (nil, 0, false) and must answer for itself.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*Response, int)) (resp *Response, status int, shared, abandoned bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		if g.onJoin != nil {
			g.onJoin()
		}
		select {
		case <-f.done:
			return f.resp, f.status, true, false
		case <-ctx.Done():
			return nil, 0, false, true
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.resp, f.status = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.resp, f.status, false, false
}
