package serve

// Query execution: parsing and clamping a request into engine
// options, running the search with panic isolation, building the JSON
// response, and the drain-checkpoint/resume round trip.

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/model"
	"repro/internal/model/backends"
	"repro/internal/parser"
)

// Request is one verification query. Program is litmus-file source
// (init/thread/observe/allow/forbid); the budget fields are clamped
// to the server's ceilings, with 0 meaning "server default". Resume
// names an artifact from an earlier cut run instead of a program.
type Request struct {
	// Name labels the query in responses and artifacts.
	Name string `json:"name,omitempty"`
	// Program is the litmus source to verify.
	Program string `json:"program,omitempty"`
	// Model selects the memory-model backend (default "rar").
	Model string `json:"model,omitempty"`
	// MaxEvents bounds per-thread progress (clamped; 0 = default).
	MaxEvents int `json:"max_events,omitempty"`
	// MaxStates bounds explored configurations (clamped; 0 = default).
	MaxStates int `json:"max_states,omitempty"`
	// TimeoutMS bounds wall clock (clamped; 0 = default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// POR toggles partial-order reduction (default on).
	POR *bool `json:"por,omitempty"`
	// Trace asks for a shortest witness when a forbidden outcome is
	// reached.
	Trace bool `json:"trace,omitempty"`
	// Resume continues the search behind the named artifact ID (from
	// an earlier response's "artifact" field) instead of starting one.
	Resume string `json:"resume,omitempty"`
}

// Response is the answer to one query. Verdict is the engine's
// tri-state; Pass folds in the file's allow/forbid expectations when
// the verdict is conclusive and is omitted (null) when it is not.
type Response struct {
	Name    string `json:"name,omitempty"`
	Model   string `json:"model,omitempty"`
	Verdict string `json:"verdict,omitempty"`
	Stop    string `json:"stop,omitempty"`
	// Pass: true = all allowed outcomes reached and no forbidden one;
	// false = an expectation failed; absent = inconclusive (BOUNDED).
	Pass             *bool    `json:"pass,omitempty"`
	Outcomes         []string `json:"outcomes,omitempty"`
	MissingAllowed   []string `json:"missing_allowed,omitempty"`
	ReachedForbidden []string `json:"reached_forbidden,omitempty"`

	// Effective (post-clamp) budgets the search ran under.
	MaxEvents int `json:"max_events,omitempty"`
	MaxStates int `json:"max_states,omitempty"`
	TimeoutMS int `json:"timeout_ms,omitempty"`

	// Coverage detail from the engine.
	Explored   int  `json:"explored"`
	Terminated int  `json:"terminated"`
	Frontier   int  `json:"frontier"`
	Depth      int  `json:"depth"`
	Truncated  bool `json:"truncated"`
	Panics     int  `json:"panics,omitempty"`

	Cached    bool  `json:"cached"`
	Resumed   bool  `json:"resumed,omitempty"`
	ElapsedMS int64 `json:"elapsed_ms"`

	// Artifact identifies a replayable spill file: a drain/cut
	// checkpoint (resume with {"resume": id}) or a panic repro.
	Artifact string `json:"artifact,omitempty"`
	Trace    string `json:"trace,omitempty"`
	Error    string `json:"error,omitempty"`
}

// query is a fully validated, clamped request: everything a search
// needs, independent of the HTTP layer.
type query struct {
	req       Request
	test      *litmus.Test
	model     model.Model
	maxEvents int
	maxStates int
	timeout   time.Duration
	por       bool
	key       string
}

func clamp(v, def, ceil int) int {
	if v <= 0 {
		return def
	}
	if v > ceil {
		return ceil
	}
	return v
}

// prepare validates req against the server's ceilings and resolves
// the program and model.
func (s *Server) prepare(req *Request) (*query, error) {
	if req.Program == "" {
		return nil, fmt.Errorf("empty program")
	}
	name := req.Name
	if name == "" {
		name = "request"
	}
	f, err := parser.Parse(name, req.Program)
	if err != nil {
		return nil, fmt.Errorf("parse program: %w", err)
	}
	test, err := f.Test()
	if err != nil {
		return nil, fmt.Errorf("assemble program: %w", err)
	}
	if len(test.Observe) == 0 {
		// Default to observing every initialised variable, in sorted
		// order, so the outcome keys are well defined.
		for x := range test.Init {
			test.Observe = append(test.Observe, x)
		}
		sort.Slice(test.Observe, func(i, j int) bool { return test.Observe[i] < test.Observe[j] })
	}
	modelName := req.Model
	if modelName == "" {
		modelName = "rar"
	}
	m, err := backends.Get(modelName)
	if err != nil {
		return nil, err
	}
	q := &query{
		req:       *req,
		test:      test,
		model:     m,
		maxEvents: clamp(req.MaxEvents, s.cfg.MaxEvents, s.cfg.MaxEvents),
		maxStates: clamp(req.MaxStates, s.cfg.MaxStates, s.cfg.MaxStates),
		por:       req.POR == nil || *req.POR,
	}
	maxMS := int(s.cfg.MaxTimeout / time.Millisecond)
	q.timeout = time.Duration(clamp(req.TimeoutMS, maxMS, maxMS)) * time.Millisecond
	q.key = s.cacheKey(q)
	return q, nil
}

// cacheKey hashes the canonical query identity: the test signature
// (program, init, observe, expectations), the model, and every
// effective option that changes what the search computes. The timeout
// is excluded — it changes whether the search finishes, not what a
// finished search means — and timing-cut results are never cached.
func (s *Server) cacheKey(q *query) string {
	buf := q.test.AppendSig(nil)
	buf = lang.AppendStringSig(buf, q.model.Name())
	buf = binary.AppendVarint(buf, int64(q.maxEvents))
	buf = binary.AppendVarint(buf, int64(q.maxStates))
	buf = binary.AppendVarint(buf, int64(s.cfg.EngineWorkers))
	if q.por {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}

// cacheable reports whether resp may be served to future identical
// queries: only results whose stop cause is reproducible (quiescence,
// a violation, or a deterministic state-budget cut) and that saw no
// worker panics qualify. Deadline, cancellation and memory cuts
// depend on this run's timing and are answered fresh every time.
func cacheable(res explore.Result) bool {
	return !res.Stop.TimingDependent() && len(res.Panics) == 0
}

// execute answers one query end to end: validation, cache,
// singleflight, admission, search. It returns the response and the
// HTTP status to send.
func (s *Server) execute(ctx context.Context, req *Request) (*Response, int) {
	s.metrics.Add(ctrRequests, 1)
	if req.Resume != "" {
		return s.executeResume(ctx, req)
	}
	q, err := s.prepare(req)
	if err != nil {
		s.metrics.Add(ctrBadRequests, 1)
		return &Response{Name: req.Name, Error: err.Error()}, http.StatusBadRequest
	}
	if resp, ok := s.cache.get(q.key); ok {
		s.metrics.Add(ctrCacheHits, 1)
		hit := *resp
		hit.Cached = true
		hit.Name = req.Name
		return &hit, http.StatusOK
	}
	s.metrics.Add(ctrCacheMisses, 1)
	resp, status, shared, abandoned := s.flights.do(ctx, q.key, func() (*Response, int) {
		return s.runQuery(ctx, q)
	})
	if abandoned {
		return &Response{Name: req.Name, Error: "request cancelled"}, statusClientClosedRequest
	}
	if shared {
		s.metrics.Add(ctrCacheShared, 1)
		cp := *resp
		cp.Name = req.Name
		return &cp, status
	}
	return resp, status
}

// statusClientClosedRequest mirrors nginx's 499: the client went away
// before the answer existed. Nothing is usually listening, but the
// handler must still pick a status.
const statusClientClosedRequest = 499

// runQuery runs the search for a prepared query (as singleflight
// leader): admission, isolation, checkpoint wiring, response.
func (s *Server) runQuery(ctx context.Context, q *query) (resp *Response, status int) {
	if err := s.acquire(ctx); err != nil {
		return s.shedResponse(q.req.Name, err)
	}
	defer s.release()

	id := s.newID()
	start := time.Now()
	defer func() {
		if v := recover(); v != nil {
			resp, status = s.panicResponse(q.req.Name, q.req.Program, id, v)
		}
	}()

	// The search obeys the request context (client gone → stop) and
	// the server's hard-drain context.
	searchCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(s.hardCtx, cancel)
	defer stop()

	// Outcome collection doubles as the violation detector: admitting
	// a terminated configuration whose outcome is forbidden falsifies
	// the property and stops the search with a witness.
	var mu sync.Mutex
	outcomes := map[string]bool{}
	_, forbidden := q.test.Expectations(q.model.Name())
	forbiddenKeys := make(map[string]bool, len(forbidden))
	for _, o := range forbidden {
		forbiddenKeys[o.Key(q.test.Observe)] = true
	}

	opts := explore.Options{
		MaxEvents:   q.maxEvents,
		MaxConfigs:  q.maxStates,
		Workers:     s.cfg.EngineWorkers,
		POR:         q.por,
		Timeout:     q.timeout,
		Context:     searchCtx,
		MaxMemBytes: uint64(s.cfg.MaxMemMB) << 20,
		Hooks:       s.cfg.Hooks,
		// One cumulative engine registry across all requests: /metrics
		// exposes the total engine work the service has done.
		Metrics: s.engine,
		Property: func(c model.Config) bool {
			if !c.Terminated() {
				return true
			}
			k := c.Summarise(q.test.Observe)
			mu.Lock()
			outcomes[k] = true
			mu.Unlock()
			return !forbiddenKeys[k]
		},
	}
	s.wireCheckpoint(&opts, id, &q.req, outcomes, &mu)

	cfg := q.model.New(q.test.Prog, q.test.Init)
	res := explore.Run(cfg, opts)
	s.metrics.Add(ctrCompleted, 1)

	resp = s.buildResponse(q, id, res, outcomes, start)
	if cacheable(res) {
		s.cachePut(q.key, resp)
	}
	return resp, http.StatusOK
}

// cachePut stores a reproducible response and counts any LRU
// displacement the insert caused.
func (s *Server) cachePut(key string, resp *Response) {
	if evicted := s.cache.put(key, resp); evicted > 0 {
		s.metrics.Add(ctrCacheEvictions, uint64(evicted))
	}
}

func (s *Server) shedResponse(name string, err error) (*Response, int) {
	s.metrics.Add(ctrShed, 1)
	msg := "overloaded: worker pool and queue are full"
	if err == errDraining {
		msg = "draining: server is shutting down"
	} else if err == context.Canceled || err == context.DeadlineExceeded {
		return &Response{Name: name, Error: "request cancelled while queued"}, statusClientClosedRequest
	}
	return &Response{Name: name, Error: msg}, http.StatusServiceUnavailable
}

// panicResponse isolates a request-level panic: counted, spilled to a
// replayable .lit artifact, answered with 500. The server keeps
// serving.
func (s *Server) panicResponse(name, program, id string, v any) (*Response, int) {
	s.metrics.Add(ctrPanics, 1)
	resp := &Response{Name: name, Error: fmt.Sprintf("internal error: %v", v)}
	if s.cfg.SpillDir != "" && program != "" {
		art := fmt.Sprintf("// c11serve panic artifact %s\n// error: %v\n// replay: c11explore -f this-file\n%s", id, v, program)
		if err := os.WriteFile(filepath.Join(s.cfg.SpillDir, id+".lit"), []byte(art), 0o644); err == nil {
			resp.Artifact = id
		}
	}
	return resp, http.StatusInternalServerError
}

// ckExtra is the blob embedded in a drain/cut checkpoint: everything
// the restarted server needs to finish the query — the original
// request (program, model, budgets) and the outcomes admitted so far
// (checkpoints store fingerprints, not summaries, so without this the
// resumed leg would rebuild only a partial outcome set).
type ckExtra struct {
	Request  Request  `json:"request"`
	Outcomes []string `json:"outcomes"`
}

// wireCheckpoint arms cut-checkpointing for a search when a spill
// directory is configured: any cut (drain cancellation, budget,
// panic) persists the frontier plus the ckExtra blob under the
// request ID.
func (s *Server) wireCheckpoint(opts *explore.Options, id string, req *Request, outcomes map[string]bool, mu *sync.Mutex) {
	if s.cfg.SpillDir == "" {
		return
	}
	opts.CheckpointPath = filepath.Join(s.cfg.SpillDir, id+".ckpt")
	opts.CheckpointOnCut = true
	opts.CheckpointExtra = func() []byte {
		mu.Lock()
		keys := make([]string, 0, len(outcomes))
		for k := range outcomes {
			keys = append(keys, k)
		}
		mu.Unlock()
		sort.Strings(keys)
		blob, err := json.Marshal(ckExtra{Request: *req, Outcomes: keys})
		if err != nil {
			return nil
		}
		return blob
	}
}

// artifactID validates a client-supplied artifact name. IDs are hex
// (or the clock fallback), so anything else — and in particular
// anything with path structure — is rejected before it touches the
// filesystem.
var artifactID = regexp.MustCompile(`^[a-z0-9]{1,32}$`)

// executeResume continues a checkpointed search: the stored request
// is re-validated against current ceilings, the stored outcome set is
// preloaded, and the engine resumes from the persisted frontier. The
// finished result is cached under the same key a fresh identical
// query would use.
func (s *Server) executeResume(ctx context.Context, req *Request) (resp *Response, status int) {
	if s.cfg.SpillDir == "" {
		return &Response{Name: req.Name, Error: "resume unsupported: no spill directory configured"}, http.StatusBadRequest
	}
	if !artifactID.MatchString(req.Resume) {
		s.metrics.Add(ctrBadRequests, 1)
		return &Response{Name: req.Name, Error: "malformed artifact id"}, http.StatusBadRequest
	}
	path := filepath.Join(s.cfg.SpillDir, req.Resume+".ckpt")
	blob, err := explore.PeekExtra(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return &Response{Name: req.Name, Error: "unknown artifact " + req.Resume}, http.StatusNotFound
		}
		return &Response{Name: req.Name, Error: "load artifact: " + err.Error()}, http.StatusBadRequest
	}
	var extra ckExtra
	if err := json.Unmarshal(blob, &extra); err != nil {
		return &Response{Name: req.Name, Error: "artifact has no resumable request"}, http.StatusBadRequest
	}
	q, err := s.prepare(&extra.Request)
	if err != nil {
		return &Response{Name: req.Name, Error: "stored request invalid: " + err.Error()}, http.StatusBadRequest
	}
	if req.Name != "" {
		q.req.Name = req.Name
	}

	// Concurrent resumes of the same artifact share one search.
	resp, status, shared, abandoned := s.flights.do(ctx, "resume:"+req.Resume, func() (*Response, int) {
		return s.runResume(ctx, q, req.Resume, path, extra.Outcomes)
	})
	if abandoned {
		return &Response{Name: req.Name, Error: "request cancelled"}, statusClientClosedRequest
	}
	if shared {
		cp := *resp
		return &cp, status
	}
	return resp, status
}

func (s *Server) runResume(ctx context.Context, q *query, id, path string, prior []string) (resp *Response, status int) {
	if err := s.acquire(ctx); err != nil {
		return s.shedResponse(q.req.Name, err)
	}
	defer s.release()

	start := time.Now()
	defer func() {
		if v := recover(); v != nil {
			resp, status = s.panicResponse(q.req.Name, q.req.Program, id, v)
		}
	}()

	searchCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(s.hardCtx, cancel)
	defer stop()

	var mu sync.Mutex
	outcomes := make(map[string]bool, len(prior))
	for _, k := range prior {
		outcomes[k] = true
	}
	_, forbidden := q.test.Expectations(q.model.Name())
	forbiddenKeys := make(map[string]bool, len(forbidden))
	for _, o := range forbidden {
		forbiddenKeys[o.Key(q.test.Observe)] = true
	}

	opts := explore.Options{
		// MaxEvents and POR come from the checkpoint inside Resume.
		MaxConfigs:  q.maxStates,
		Workers:     s.cfg.EngineWorkers,
		Timeout:     q.timeout,
		Context:     searchCtx,
		MaxMemBytes: uint64(s.cfg.MaxMemMB) << 20,
		Hooks:       s.cfg.Hooks,
		Metrics:     s.engine,
		Property: func(c model.Config) bool {
			if !c.Terminated() {
				return true
			}
			k := c.Summarise(q.test.Observe)
			mu.Lock()
			outcomes[k] = true
			mu.Unlock()
			return !forbiddenKeys[k]
		},
	}
	// A resumed search that is cut again checkpoints again, under the
	// same artifact ID: resumption is repeatable until it finishes.
	s.wireCheckpoint(&opts, id, &q.req, outcomes, &mu)

	res, err := explore.Resume(path, q.model, opts)
	if err != nil {
		return &Response{Name: q.req.Name, Error: "resume: " + err.Error()}, http.StatusBadRequest
	}
	s.metrics.Add(ctrResumes, 1)
	s.metrics.Add(ctrCompleted, 1)

	resp = s.buildResponse(q, id, res, outcomes, start)
	resp.Resumed = true
	if cacheable(res) {
		s.cachePut(q.key, resp)
	}
	return resp, http.StatusOK
}

// buildResponse folds an engine result and outcome set into the JSON
// answer: verdict, expectation check, coverage, artifact, optional
// witness trace.
func (s *Server) buildResponse(q *query, id string, res explore.Result, outcomes map[string]bool, start time.Time) *Response {
	resp := &Response{
		Name:       q.req.Name,
		Model:      q.model.Name(),
		Verdict:    res.Verdict.String(),
		Stop:       res.Stop.String(),
		MaxEvents:  q.maxEvents,
		MaxStates:  q.maxStates,
		TimeoutMS:  int(q.timeout / time.Millisecond),
		Explored:   res.Explored,
		Terminated: res.Terminated,
		Frontier:   res.Frontier,
		Depth:      res.Depth,
		Truncated:  res.Truncated,
		Panics:     len(res.Panics),
		ElapsedMS:  time.Since(start).Milliseconds(),
	}
	for k := range outcomes {
		resp.Outcomes = append(resp.Outcomes, k)
	}
	sort.Strings(resp.Outcomes)

	switch res.Verdict {
	case explore.VerdictProved:
		// Conclusive: the outcome set is complete, so the allow/forbid
		// expectations are decidable.
		missing, reached := q.test.CheckOutcomes(q.model.Name(), outcomes)
		resp.MissingAllowed = missing
		resp.ReachedForbidden = reached
		pass := len(missing) == 0 && len(reached) == 0
		resp.Pass = &pass
	case explore.VerdictViolated:
		// A forbidden outcome was reached; that refutation is final
		// even though the outcome set may be partial.
		if res.Violation != nil {
			resp.ReachedForbidden = []string{res.Violation.Summarise(q.test.Observe)}
		}
		pass := false
		resp.Pass = &pass
		if q.req.Trace {
			resp.Trace = s.witness(q, res)
		}
	}

	// A cut search that wrote a checkpoint hands back the artifact ID
	// so the client (or a restarted server) can resume it.
	if s.cfg.SpillDir != "" && res.Stop != explore.StopNone && res.CheckpointErr == nil {
		if _, err := os.Stat(filepath.Join(s.cfg.SpillDir, id+".ckpt")); err == nil {
			resp.Artifact = id
			s.metrics.Add(ctrCheckpoints, 1)
		}
	}
	return resp
}

// witness renders the shortest trace to the violating configuration.
func (s *Server) witness(q *query, res explore.Result) string {
	if res.Violation == nil {
		return ""
	}
	want := res.Violation.Fingerprint()
	tr, ok := explore.FindTrace(
		q.model.New(q.test.Prog, q.test.Init),
		explore.Options{MaxEvents: q.maxEvents, MaxConfigs: q.maxStates},
		func(c model.Config) bool { return c.Terminated() && c.Fingerprint() == want },
	)
	if !ok {
		return ""
	}
	return tr.Describe()
}
