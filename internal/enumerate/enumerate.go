// Package enumerate generates candidate executions (Definition C.1)
// up to a bounded size — this repository's substitution for the
// paper's Memalloy/Alloy mechanisation (Appendix E). Where the paper
// compares .cat models symbolically for all executions up to size 7,
// we enumerate candidates explicitly (exhaustively at small bounds,
// randomly at larger ones) and evaluate both consistency predicates on
// each: the eco-based Coherence of Definition 4.2 and the weak
// canonical RAR consistency of Definition C.3. Theorem C.5 asserts
// they agree on every candidate.
//
// Symmetry reduction keeps the space tractable: write values are fixed
// to the event's global index (value symmetry), read values are forced
// by the rf source (RF-Complete holds by construction), and initial
// writes always carry value 0.
package enumerate

import (
	"math/rand"

	"repro/internal/axiomatic"
	"repro/internal/event"
)

// Params bounds the candidate space.
type Params struct {
	// Threads is the number of non-initialising threads (≥ 1).
	Threads int
	// Vars is the set of variables; one initialising write per
	// variable is always present.
	Vars []event.Var
	// Events is the total number of non-initialising events.
	Events int
	// Kinds restricts the action kinds generated; nil means all five.
	Kinds []event.Kind
}

func (p Params) kinds() []event.Kind {
	if p.Kinds != nil {
		return p.Kinds
	}
	return []event.Kind{event.RdX, event.RdAcq, event.WrX, event.WrRel, event.UpdRA}
}

// Candidates enumerates every candidate execution within the bounds,
// calling yield for each. Enumeration stops early if yield returns
// false. The number of candidates yielded is returned.
//
// Candidates satisfy SB-Total, MO-Valid and RF-Complete by
// construction (Definition C.1); coherence is deliberately left open —
// that is the property under comparison.
func Candidates(p Params, yield func(axiomatic.Exec) bool) int {
	count := 0
	stopped := false

	// 1. Distribute Events over Threads (composition with zeros).
	sizes := make([]int, p.Threads)
	var compose func(i, left int)

	// 2. For a fixed distribution, choose kind and var per event.
	type slot struct {
		tid  event.Thread
		kind event.Kind
		loc  event.Var
	}
	slots := make([]slot, p.Events)

	var fill func(i int)
	var assignRF func(x axiomatic.Exec, reads []event.Tag, ri int)
	var assignMO func(x axiomatic.Exec, vars []event.Var, vi int)

	buildBase := func() axiomatic.Exec {
		events := make([]event.Event, 0, len(p.Vars)+p.Events)
		for _, v := range p.Vars {
			events = append(events, event.Event{
				Tag: event.Tag(len(events)), Act: event.Wr(v, 0), TID: event.InitThread,
			})
		}
		nInit := len(events)
		for i, s := range slots {
			val := event.Val(i + 1) // canonical distinct write values
			var a event.Action
			switch s.kind {
			case event.RdX:
				a = event.Rd(s.loc, 0) // patched by rf assignment
			case event.RdAcq:
				a = event.RdA(s.loc, 0)
			case event.WrX:
				a = event.Wr(s.loc, val)
			case event.WrRel:
				a = event.WrR(s.loc, val)
			case event.UpdRA:
				a = event.Upd(s.loc, 0, val)
			}
			events = append(events, event.Event{
				Tag: event.Tag(len(events)), Act: a, TID: s.tid,
			})
		}
		x := axiomatic.NewExec(events)
		// sb: initials before everything; per-thread slot order.
		for i := 0; i < nInit; i++ {
			for j := nInit; j < len(events); j++ {
				x.SB.Add(i, j)
			}
		}
		for i := nInit; i < len(events); i++ {
			for j := i + 1; j < len(events); j++ {
				if events[i].TID == events[j].TID {
					x.SB.Add(i, j)
				}
			}
		}
		return x
	}

	assignMO = func(x axiomatic.Exec, vars []event.Var, vi int) {
		if stopped {
			return
		}
		if vi == len(vars) {
			count++
			if !yield(x.Clone()) {
				stopped = true
			}
			return
		}
		v := vars[vi]
		var init event.Tag
		var rest []event.Tag
		for _, e := range x.Events {
			if e.IsWrite() && e.Var() == v {
				if e.IsInit() {
					init = e.Tag
				} else {
					rest = append(rest, e.Tag)
				}
			}
		}
		permuteTags(rest, func(order []event.Tag) bool {
			chain := append([]event.Tag{init}, order...)
			for i := 0; i < len(chain); i++ {
				for j := i + 1; j < len(chain); j++ {
					x.MO.Add(int(chain[i]), int(chain[j]))
				}
			}
			assignMO(x, vars, vi+1)
			for i := 0; i < len(chain); i++ {
				for j := i + 1; j < len(chain); j++ {
					x.MO.Remove(int(chain[i]), int(chain[j]))
				}
			}
			return !stopped
		})
	}

	assignRF = func(x axiomatic.Exec, reads []event.Tag, ri int) {
		if stopped {
			return
		}
		if ri == len(reads) {
			assignMO(x, p.Vars, 0)
			return
		}
		r := reads[ri]
		re := x.Events[int(r)]
		for wi, w := range x.Events {
			if !w.IsWrite() || w.Var() != re.Var() || event.Tag(wi) == r {
				continue
			}
			// Patch the read's value to match the source.
			old := x.Events[int(r)]
			patched := old
			patched.Act.RVal = w.WrVal()
			x.Events[int(r)] = patched
			x.RF.Add(wi, int(r))
			assignRF(x, reads, ri+1)
			x.RF.Remove(wi, int(r))
			x.Events[int(r)] = old
			if stopped {
				return
			}
		}
	}

	fill = func(i int) {
		if stopped {
			return
		}
		if i == p.Events {
			x := buildBase()
			assignRF(x, x.Reads(), 0)
			return
		}
		// Thread for slot i follows the distribution.
		tid, idx := event.Thread(1), i
		for t := 0; t < p.Threads; t++ {
			if idx < sizes[t] {
				tid = event.Thread(t + 1)
				break
			}
			idx -= sizes[t]
		}
		for _, k := range p.kinds() {
			for _, v := range p.Vars {
				slots[i] = slot{tid: tid, kind: k, loc: v}
				fill(i + 1)
				if stopped {
					return
				}
			}
		}
	}

	compose = func(i, left int) {
		if stopped {
			return
		}
		if i == p.Threads-1 {
			sizes[i] = left
			// Symmetry: thread sizes non-increasing (threads are
			// interchangeable up to renaming).
			for j := 1; j < p.Threads; j++ {
				if sizes[j] > sizes[j-1] {
					return
				}
			}
			fill(0)
			return
		}
		for k := left; k >= 0; k-- {
			sizes[i] = k
			compose(i+1, left-k)
		}
	}

	compose(0, p.Events)
	return count
}

// Random returns a uniformly-ish random candidate execution within the
// bounds, for randomized sweeps beyond exhaustive sizes.
func Random(rng *rand.Rand, p Params) axiomatic.Exec {
	kinds := p.kinds()
	events := make([]event.Event, 0, len(p.Vars)+p.Events)
	for _, v := range p.Vars {
		events = append(events, event.Event{
			Tag: event.Tag(len(events)), Act: event.Wr(v, 0), TID: event.InitThread,
		})
	}
	nInit := len(events)
	for i := 0; i < p.Events; i++ {
		k := kinds[rng.Intn(len(kinds))]
		v := p.Vars[rng.Intn(len(p.Vars))]
		val := event.Val(i + 1)
		var a event.Action
		switch k {
		case event.RdX:
			a = event.Rd(v, 0)
		case event.RdAcq:
			a = event.RdA(v, 0)
		case event.WrX:
			a = event.Wr(v, val)
		case event.WrRel:
			a = event.WrR(v, val)
		case event.UpdRA:
			a = event.Upd(v, 0, val)
		}
		events = append(events, event.Event{
			Tag: event.Tag(len(events)),
			Act: a,
			TID: event.Thread(1 + rng.Intn(p.Threads)),
		})
	}
	x := axiomatic.NewExec(events)
	for i := 0; i < nInit; i++ {
		for j := nInit; j < len(events); j++ {
			x.SB.Add(i, j)
		}
	}
	for i := nInit; i < len(events); i++ {
		for j := i + 1; j < len(events); j++ {
			if events[i].TID == events[j].TID {
				x.SB.Add(i, j)
			}
		}
	}
	// rf: each read picks a random same-variable write.
	for _, r := range x.Reads() {
		re := x.Events[int(r)]
		var cands []int
		for wi, w := range x.Events {
			if w.IsWrite() && w.Var() == re.Var() && event.Tag(wi) != r {
				cands = append(cands, wi)
			}
		}
		w := cands[rng.Intn(len(cands))]
		patched := re
		patched.Act.RVal = x.Events[w].WrVal()
		x.Events[int(r)] = patched
		x.RF.Add(w, int(r))
	}
	// mo: random permutation per variable, init first.
	for _, v := range p.Vars {
		var init event.Tag
		var rest []event.Tag
		for _, e := range x.Events {
			if e.IsWrite() && e.Var() == v {
				if e.IsInit() {
					init = e.Tag
				} else {
					rest = append(rest, e.Tag)
				}
			}
		}
		rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
		chain := append([]event.Tag{init}, rest...)
		for i := 0; i < len(chain); i++ {
			for j := i + 1; j < len(chain); j++ {
				x.MO.Add(int(chain[i]), int(chain[j]))
			}
		}
	}
	return x
}

func permuteTags(xs []event.Tag, f func([]event.Tag) bool) bool {
	n := len(xs)
	if n == 0 {
		return f(nil)
	}
	perm := append([]event.Tag(nil), xs...)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			return f(perm)
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if !rec(k + 1) {
				return false
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return true
	}
	return rec(0)
}
