package enumerate

import (
	"math/rand"
	"testing"

	"repro/internal/axiomatic"
	"repro/internal/event"
)

func TestCandidatesAreWellFormed(t *testing.T) {
	p := Params{Threads: 2, Vars: []event.Var{"x"}, Events: 2}
	n := Candidates(p, func(x axiomatic.Exec) bool {
		if !x.IsCandidate() {
			t.Fatalf("ill-formed candidate:\n%s", x)
		}
		return true
	})
	if n == 0 {
		t.Fatal("no candidates generated")
	}
}

func TestCandidatesEarlyStop(t *testing.T) {
	p := Params{Threads: 2, Vars: []event.Var{"x"}, Events: 2}
	n := Candidates(p, func(x axiomatic.Exec) bool { return false })
	if n != 1 {
		t.Fatalf("early stop yielded %d candidates", n)
	}
}

func TestCandidateCountSmall(t *testing.T) {
	// 1 thread, 1 var, 1 event: 5 kinds; reads/updates have exactly
	// one rf source (the init write); single write mo position.
	p := Params{Threads: 1, Vars: []event.Var{"x"}, Events: 1}
	n := Candidates(p, func(x axiomatic.Exec) bool {
		if x.N() != 2 {
			t.Fatalf("candidate size = %d", x.N())
		}
		return true
	})
	if n != 5 {
		t.Fatalf("count = %d, want 5", n)
	}
}

func TestCandidatesKindRestriction(t *testing.T) {
	p := Params{
		Threads: 1, Vars: []event.Var{"x"}, Events: 2,
		Kinds: []event.Kind{event.WrX},
	}
	n := Candidates(p, func(x axiomatic.Exec) bool {
		for _, e := range x.Events {
			if !e.IsInit() && e.Act.Kind != event.WrX {
				t.Fatalf("unexpected kind %v", e)
			}
		}
		return true
	})
	// Two plain writes: 1 kind-var combo, mo: 2 orders of the two
	// writes. One composition ([2] — [1,1] pruned by symmetry? threads=1).
	if n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
}

func TestThreadSizeSymmetryReduction(t *testing.T) {
	// With 2 threads and 1 event, only the [1,0] distribution is kept
	// ([0,1] is a thread renaming).
	p := Params{Threads: 2, Vars: []event.Var{"x"}, Events: 1,
		Kinds: []event.Kind{event.WrX}}
	n := Candidates(p, func(x axiomatic.Exec) bool {
		for _, e := range x.Events {
			if !e.IsInit() && e.TID != 1 {
				t.Fatalf("event on thread %d, want 1", e.TID)
			}
		}
		return true
	})
	if n != 1 {
		t.Fatalf("count = %d, want 1", n)
	}
}

// Theorem C.5 exhaustively at small bounds: Definition 4.2 coherence
// coincides with weak canonical RAR consistency on every candidate.
func TestTheoremC5Exhaustive(t *testing.T) {
	cases := []Params{
		{Threads: 2, Vars: []event.Var{"x"}, Events: 3},
		{Threads: 2, Vars: []event.Var{"x", "y"}, Events: 2},
		{Threads: 3, Vars: []event.Var{"x"}, Events: 3,
			Kinds: []event.Kind{event.WrX, event.RdX, event.UpdRA}},
	}
	for _, p := range cases {
		consistent, total := 0, 0
		Candidates(p, func(x axiomatic.Exec) bool {
			total++
			a := x.CoherentDef42()
			b := x.WeakCanonicalConsistent()
			if a != b {
				t.Fatalf("Theorem C.5 counterexample (def42=%v canonical=%v):\n%s", a, b, x)
			}
			if a {
				consistent++
			}
			return true
		})
		if total == 0 || consistent == 0 || consistent == total {
			t.Fatalf("degenerate comparison: %d/%d consistent", consistent, total)
		}
		t.Logf("params %+v: %d/%d consistent", p, consistent, total)
	}
}

// Theorem C.5 randomized at larger bounds (the Alloy bound-7 regime).
func TestTheoremC5Random(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := Params{Threads: 3, Vars: []event.Var{"x", "y"}, Events: 7}
	for i := 0; i < 3000; i++ {
		x := Random(rng, p)
		if !x.IsCandidate() {
			t.Fatalf("random candidate ill-formed:\n%s", x)
		}
		if x.CoherentDef42() != x.WeakCanonicalConsistent() {
			t.Fatalf("Theorem C.5 counterexample:\n%s", x)
		}
	}
}

// Lemma C.9: on consistent executions, the closed form of eco equals
// the transitive closure.
func TestLemmaC9ClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := Params{Threads: 2, Vars: []event.Var{"x", "y"}, Events: 6}
	checked := 0
	for i := 0; i < 4000 && checked < 300; i++ {
		x := Random(rng, p)
		if !x.UpdateAtomic() {
			continue
		}
		checked++
		if !x.ECO().Equal(x.ECOClosedForm()) {
			t.Fatalf("Lemma C.9 counterexample:\n%s", x)
		}
	}
	if checked < 50 {
		t.Fatalf("too few update-atomic candidates: %d", checked)
	}
}

// Lemma C.10 direction: weak canonical consistency implies eco
// irreflexivity — spot-check on random candidates.
func TestLemmaC10(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := Params{Threads: 2, Vars: []event.Var{"x"}, Events: 5}
	for i := 0; i < 2000; i++ {
		x := Random(rng, p)
		if x.WeakCanonicalConsistent() && !x.ECO().Irreflexive() {
			t.Fatalf("Lemma C.10 counterexample:\n%s", x)
		}
	}
}

func BenchmarkCandidates(b *testing.B) {
	p := Params{Threads: 2, Vars: []event.Var{"x"}, Events: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Candidates(p, func(x axiomatic.Exec) bool {
			_ = x.CoherentDef42()
			return true
		})
	}
}

func BenchmarkTheoremC5Random(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := Params{Threads: 3, Vars: []event.Var{"x", "y"}, Events: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x := Random(rng, p)
		if x.CoherentDef42() != x.WeakCanonicalConsistent() {
			b.Fatal("mismatch")
		}
	}
}
