package enumerate

import (
	"math/rand"
	"testing"

	"repro/internal/axiomatic"
	"repro/internal/event"
	"repro/internal/fingerprint"
)

// The explorer's seen-set is keyed by 128-bit fingerprints while the
// exact identity of a candidate execution remains its canonical string
// signature. These tests sweep the candidate spaces the Appendix E
// comparison quantifies over and assert the two identities induce the
// same equivalence — a fingerprint collision or split here would make
// the fingerprint-keyed deduplication diverge from the exact one.

type crossCheck struct {
	t     *testing.T
	bySig map[string]fingerprint.FP
	byFP  map[fingerprint.FP]string
}

func newCrossCheck(t *testing.T) *crossCheck {
	return &crossCheck{
		t:     t,
		bySig: map[string]fingerprint.FP{},
		byFP:  map[fingerprint.FP]string{},
	}
}

func (c *crossCheck) add(x axiomatic.Exec) {
	c.t.Helper()
	sig := x.CanonicalSignature()
	fp := x.Fingerprint()
	if prev, ok := c.bySig[sig]; ok && prev != fp {
		c.t.Fatalf("one signature, two fingerprints:\n%s", sig)
	}
	if prev, ok := c.byFP[fp]; ok && prev != sig {
		c.t.Fatalf("fingerprint collision:\n%s\n%s", prev, sig)
	}
	c.bySig[sig] = fp
	c.byFP[fp] = sig
}

func TestCandidatesFingerprintCrossCheck(t *testing.T) {
	check := newCrossCheck(t)
	n := Candidates(Params{
		Threads: 2, Vars: []event.Var{"x"}, Events: 3,
	}, func(x axiomatic.Exec) bool {
		check.add(x)
		return true
	})
	if n < 100 {
		t.Fatalf("only %d candidates enumerated", n)
	}
}

func TestRandomFingerprintCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	check := newCrossCheck(t)
	params := Params{Threads: 3, Vars: []event.Var{"x", "y"}, Events: 7}
	for i := 0; i < 1500; i++ {
		check.add(Random(rng, params))
	}
	if len(check.bySig) < 500 {
		t.Fatalf("random sweep too repetitive: %d distinct", len(check.bySig))
	}
}
