package explore

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/model"
)

// hookFunc adapts a function to the Hooks interface for tests.
type hookFunc func(fp fingerprint.FP, depth int)

func (f hookFunc) BeforeExpand(fp fingerprint.FP, depth int) { f(fp, depth) }

// sleepHook delays every expansion so that wall-clock budgets have
// something to cut.
func sleepHook(d time.Duration) Hooks {
	return hookFunc(func(fingerprint.FP, int) { time.Sleep(d) })
}

func TestMaxConfigsStop(t *testing.T) {
	full := Run(mpConfig(), Options{Workers: 1})
	res := Run(mpConfig(), Options{Workers: 1, MaxConfigs: 5})
	if res.Stop != StopMaxConfigs {
		t.Fatalf("Stop = %v, want %v", res.Stop, StopMaxConfigs)
	}
	if res.Verdict != VerdictBounded {
		t.Fatalf("Verdict = %v, want %v", res.Verdict, VerdictBounded)
	}
	if !res.Truncated {
		t.Fatal("a MaxConfigs cut must set Truncated")
	}
	if res.Explored != 5 {
		t.Fatalf("Explored = %d, want exactly the budget 5", res.Explored)
	}
	if res.Frontier == 0 {
		t.Fatal("a cut search must leave a frontier")
	}
	if res.Explored >= full.Explored {
		t.Fatalf("budgeted run explored %d >= full run's %d", res.Explored, full.Explored)
	}
}

func TestDeadlineStop(t *testing.T) {
	res := Run(mpConfig(), Options{
		Workers: 1,
		Timeout: 5 * time.Millisecond,
		Hooks:   sleepHook(2 * time.Millisecond),
	})
	if res.Stop != StopDeadline {
		t.Fatalf("Stop = %v, want %v", res.Stop, StopDeadline)
	}
	if res.Verdict != VerdictBounded {
		t.Fatalf("Verdict = %v, want %v", res.Verdict, VerdictBounded)
	}
	if !res.Stop.TimingDependent() {
		t.Fatal("a deadline cut must be timing-dependent")
	}
}

func TestAbsoluteDeadlineStop(t *testing.T) {
	res := Run(mpConfig(), Options{
		Workers:  1,
		Deadline: time.Now().Add(5 * time.Millisecond),
		Hooks:    sleepHook(2 * time.Millisecond),
	})
	if res.Stop != StopDeadline || res.Verdict != VerdictBounded {
		t.Fatalf("Stop = %v, Verdict = %v", res.Stop, res.Verdict)
	}
}

func TestContextCancellation(t *testing.T) {
	// Cancel mid-search, from the property hook: after a handful of
	// admissions the context is done and the monitor stops the search.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int32
	res := Run(mpConfig(), Options{
		Workers: 4,
		Context: ctx,
		Hooks:   sleepHook(time.Millisecond),
		Property: func(model.Config) bool {
			if calls.Add(1) == 3 {
				cancel()
			}
			return true
		},
	})
	if res.Stop != StopCancelled {
		t.Fatalf("Stop = %v, want %v", res.Stop, StopCancelled)
	}
	if res.Verdict != VerdictBounded {
		t.Fatalf("Verdict = %v, want %v", res.Verdict, VerdictBounded)
	}
	if res.Violation != nil {
		t.Fatal("cancellation is not a violation")
	}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Run(mpConfig(), Options{
		Workers: 1,
		Context: ctx,
		Hooks:   sleepHook(time.Millisecond),
	})
	if res.Stop != StopCancelled || res.Verdict != VerdictBounded {
		t.Fatalf("Stop = %v, Verdict = %v", res.Stop, res.Verdict)
	}
}

func TestMemoryBudgetStop(t *testing.T) {
	// Any live heap exceeds a 1-byte budget, so the first poll cuts the
	// search; the latency hook keeps it alive until then.
	res := Run(mpConfig(), Options{
		Workers:     1,
		MaxMemBytes: 1,
		MemPoll:     time.Millisecond,
		Hooks:       sleepHook(time.Millisecond),
	})
	if res.Stop != StopMemory {
		t.Fatalf("Stop = %v, want %v", res.Stop, StopMemory)
	}
	if res.Verdict != VerdictBounded {
		t.Fatalf("Verdict = %v, want %v", res.Verdict, VerdictBounded)
	}
}

func TestBudgetCutResultIsSound(t *testing.T) {
	// Coverage accounting of a partial result: every admitted
	// configuration is either fully expanded, non-expandable, or on the
	// frontier — so Explored with a non-empty Frontier and a BOUNDED
	// verdict, never a spurious PROVED.
	for _, workers := range []int{1, 8} {
		res := Run(mpConfig(), Options{Workers: workers, MaxConfigs: 7})
		if res.Verdict == VerdictProved {
			t.Fatalf("workers=%d: budget-cut search reported PROVED", workers)
		}
		if res.Explored == 0 || res.Explored > 7 {
			t.Fatalf("workers=%d: Explored = %d under budget 7", workers, res.Explored)
		}
		if len(res.ShardDepths) != numShards {
			t.Fatalf("workers=%d: ShardDepths has %d entries, want %d", workers, len(res.ShardDepths), numShards)
		}
		maxShard := 0
		for _, d := range res.ShardDepths {
			if d > maxShard {
				maxShard = d
			}
		}
		if maxShard != res.Depth {
			t.Fatalf("workers=%d: max shard depth %d != Depth %d", workers, maxShard, res.Depth)
		}
	}
}

func TestViolationWinsOverBudget(t *testing.T) {
	// A violation found before the budget bites yields VIOLATED, and
	// the reported configuration is real: a fresh unbudgeted witness
	// search reaches the same fingerprint.
	prop := func(c model.Config) bool { return c.(core.Config).S.NumEvents() < 6 }
	res := Run(mpConfig(), Options{Workers: 1, MaxConfigs: 1 << 16, Property: prop})
	if res.Verdict != VerdictViolated || res.Stop != StopViolation {
		t.Fatalf("Verdict = %v, Stop = %v", res.Verdict, res.Stop)
	}
	want := res.Violation.Fingerprint()
	tr, found := FindTrace(mpConfig(), Options{}, func(c model.Config) bool {
		return c.Fingerprint() == want
	})
	if !found {
		t.Fatal("violation not replayable without a budget")
	}
	if got := tr.Configs[len(tr.Configs)-1].Fingerprint(); got != want {
		t.Fatalf("replayed fingerprint %v != reported %v", got, want)
	}
}

func TestPanicIsolationRoot(t *testing.T) {
	// The root expansion panics every time: the search degrades to
	// exactly the root, with the panic captured as a repro artifact and
	// the root left on the frontier for a post-fix resume.
	boom := hookFunc(func(fingerprint.FP, int) { panic("injected") })
	res := Run(mpConfig(), Options{Workers: 1, Hooks: boom})
	if res.Verdict != VerdictBounded {
		t.Fatalf("Verdict = %v, want %v", res.Verdict, VerdictBounded)
	}
	if res.Stop != StopNone {
		t.Fatalf("Stop = %v: panics degrade, they do not stop", res.Stop)
	}
	if res.Explored != 1 || res.Frontier != 1 {
		t.Fatalf("Explored = %d, Frontier = %d, want 1 and 1", res.Explored, res.Frontier)
	}
	if len(res.Panics) != 1 {
		t.Fatalf("got %d panic records, want 1", len(res.Panics))
	}
	rec := res.Panics[0]
	if rec.Err != "injected" || rec.Program == "" || rec.Stack == "" {
		t.Fatalf("panic record incomplete: %+v", rec)
	}
	// The snapshot is the repro: it restores to the panicking
	// configuration.
	c, err := core.Model.Restore(rec.Snapshot)
	if err != nil {
		t.Fatalf("panic snapshot does not restore: %v", err)
	}
	if c.Fingerprint() != rec.FP {
		t.Fatalf("restored fingerprint %v != recorded %v", c.Fingerprint(), rec.FP)
	}
}

func TestPanicIsolationDegradedCompletion(t *testing.T) {
	// One mid-search panic: the remaining work still completes, the
	// verdict honestly degrades to BOUNDED, and the panicked
	// configuration is on the frontier.
	full := Run(mpConfig(), Options{Workers: 1})
	var calls atomic.Int32
	boom := hookFunc(func(fingerprint.FP, int) {
		if calls.Add(1) == 4 {
			panic("injected once")
		}
	})
	res := Run(mpConfig(), Options{Workers: 1, Hooks: boom})
	if res.Verdict != VerdictBounded {
		t.Fatalf("Verdict = %v, want %v", res.Verdict, VerdictBounded)
	}
	if len(res.Panics) != 1 {
		t.Fatalf("got %d panic records, want 1", len(res.Panics))
	}
	if res.Explored <= 1 || res.Explored >= full.Explored {
		t.Fatalf("degraded run explored %d, full run %d: expected strictly between", res.Explored, full.Explored)
	}
	if res.Frontier == 0 {
		t.Fatal("the panicked configuration must stay on the frontier")
	}
}

func TestPanicIsolationParallel(t *testing.T) {
	// Panics from several workers at once: every one is isolated, no
	// spurious PROVED, and the engine still quiesces.
	var calls atomic.Int32
	boom := hookFunc(func(fingerprint.FP, int) {
		if calls.Add(1)%5 == 0 {
			panic("periodic injected panic")
		}
	})
	res := Run(mpConfig(), Options{Workers: 8, Hooks: boom})
	if len(res.Panics) == 0 {
		t.Fatal("expected at least one panic record")
	}
	if res.Verdict == VerdictProved {
		t.Fatal("degraded run reported PROVED")
	}
	if res.Explored == 0 {
		t.Fatal("degraded run explored nothing")
	}
}

func TestCompletedRunIsProved(t *testing.T) {
	// Sanity for the other side of the tri-state: no budget, no panic,
	// no violation → PROVED with an empty frontier.
	res := Run(mpConfig(), Options{Workers: 1})
	if res.Verdict != VerdictProved || res.Stop != StopNone {
		t.Fatalf("Verdict = %v, Stop = %v", res.Verdict, res.Stop)
	}
	if res.Frontier != 0 {
		t.Fatalf("Frontier = %d at quiescence", res.Frontier)
	}
}

func TestGenerousBudgetsDoNotCut(t *testing.T) {
	// Budgets far above what the search needs must not change the
	// result.
	full := Run(mpConfig(), Options{Workers: 1})
	res := Run(mpConfig(), Options{
		Workers:     1,
		Timeout:     time.Hour,
		MaxConfigs:  1 << 20,
		MaxMemBytes: 1 << 40,
		Context:     context.Background(),
	})
	if res.Verdict != VerdictProved || res.Stop != StopNone {
		t.Fatalf("Verdict = %v, Stop = %v", res.Verdict, res.Stop)
	}
	if res.Explored != full.Explored || res.Terminated != full.Terminated || res.Depth != full.Depth {
		t.Fatalf("generous budgets changed the result: %+v vs %+v", res, full)
	}
}

func TestStopCauseStrings(t *testing.T) {
	for c, want := range map[StopCause]string{
		StopNone: "none", StopViolation: "violation", StopMaxConfigs: "max-configs",
		StopDeadline: "deadline", StopCancelled: "cancelled", StopMemory: "memory",
	} {
		if c.String() != want {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	for v, want := range map[Verdict]string{
		VerdictProved: "PROVED", VerdictViolated: "VIOLATED", VerdictBounded: "BOUNDED",
	} {
		if v.String() != want {
			t.Fatalf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
}
