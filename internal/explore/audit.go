package explore

import (
	"fmt"
	"sync"

	"repro/internal/fingerprint"
	"repro/internal/model"
)

// PORAudit is the result of auditing a partial-order-reduced search
// against the full search on the same workload (CheckPOR). The
// reduction's contract has three checkable parts:
//
//   - soundness: every configuration the reduced search explores is
//     reachable in the full search (the reduced transition relation is
//     a subset of the full one), so UnsoundExplored must be zero;
//   - terminated-state preservation: the reduced search reaches
//     exactly the terminated configurations of the full search, so
//     MissingTerminated and ExtraTerminated must be zero;
//   - verdict agreement: the property verdicts coincide, so
//     VerdictDiverged must be false. (For properties that inspect
//     arbitrary intermediate state this is an empirical check — the
//     reduction only guarantees it for label-visible and
//     terminated-state properties.)
//
// The fingerprint-set comparisons are only meaningful when both runs
// complete (no violation, no MaxConfigs cut); CheckPOR skips them —
// leaving the counts zero — when either run stops early.
type PORAudit struct {
	// Full and Reduced are the two runs' results.
	Full, Reduced Result
	// MissingTerminated counts terminated configurations of the full
	// search the reduced search never reached (must be zero).
	MissingTerminated int
	// ExtraTerminated counts terminated configurations of the reduced
	// search absent from the full search (must be zero).
	ExtraTerminated int
	// UnsoundExplored counts configurations the reduced search
	// explored that the full search cannot reach (must be zero).
	UnsoundExplored int
	// VerdictDiverged reports disagreement on whether a property
	// violation exists.
	VerdictDiverged bool
	// SetsCompared reports whether the fingerprint sets were diffed
	// (false when a violation or the MaxConfigs cap stopped a run).
	SetsCompared bool
}

// Divergences returns the total number of contract violations.
func (a PORAudit) Divergences() int {
	n := a.MissingTerminated + a.ExtraTerminated + a.UnsoundExplored
	if a.VerdictDiverged {
		n++
	}
	return n
}

// String renders a one-line audit summary.
func (a PORAudit) String() string {
	return fmt.Sprintf(
		"por audit: full=%d reduced=%d (%.1f%%) divergences=%d (missing-term=%d extra-term=%d unsound=%d verdict-diverged=%v)",
		a.Full.Explored, a.Reduced.Explored,
		100*float64(a.Reduced.Explored)/float64(max(a.Full.Explored, 1)),
		a.Divergences(), a.MissingTerminated, a.ExtraTerminated,
		a.UnsoundExplored, a.VerdictDiverged)
}

// budgetCut reports whether the run was cut at a scheduling-dependent
// point — by a timing-dependent budget or by isolated panics — making
// its statistics incomparable to another run's.
func budgetCut(res Result) bool {
	return res.Stop.TimingDependent() || len(res.Panics) > 0
}

// fpCollector gathers the reachable and terminated fingerprint sets of
// one run, mutex-guarded for parallel workers.
type fpCollector struct {
	mu         sync.Mutex
	explored   *fingerprint.Set
	terminated *fingerprint.Set
}

func newFPCollector() *fpCollector {
	return &fpCollector{
		explored:   fingerprint.NewSet(),
		terminated: fingerprint.NewSet(),
	}
}

func (c *fpCollector) observe(fp fingerprint.FP, terminated bool) {
	c.mu.Lock()
	c.explored.Add(fp)
	if terminated {
		c.terminated.Add(fp)
	}
	c.mu.Unlock()
}

// WorkersAudit is the result of auditing the engine's serial/parallel
// equivalence contract on one workload (CheckWorkers): at quiescence
// the sharded engine's results are documented to be independent of the
// worker count whenever no MaxConfigs cut occurred. Explored and
// Truncated must agree even under a cut; Terminated, Depth and the
// terminated-state fingerprint sets are only compared (SetsCompared)
// when both runs completed.
type WorkersAudit struct {
	// Serial and Parallel are the Workers=1 and Workers=N results.
	Serial, Parallel Result
	// StatsDiverged lists the result fields that disagreed.
	StatsDiverged []string
	// MissingTerminated and ExtraTerminated count terminated-state
	// fingerprints reached by exactly one of the runs (must be zero).
	MissingTerminated, ExtraTerminated int
	// SetsCompared reports whether the full comparison ran (false when
	// a violation or the MaxConfigs cap stopped a run).
	SetsCompared bool
}

// Divergences returns the total number of contract violations.
func (a WorkersAudit) Divergences() int {
	return len(a.StatsDiverged) + a.MissingTerminated + a.ExtraTerminated
}

// String renders a one-line audit summary.
func (a WorkersAudit) String() string {
	return fmt.Sprintf(
		"workers audit: serial=%d parallel=%d divergences=%d (stats=%v missing-term=%d extra-term=%d)",
		a.Serial.Explored, a.Parallel.Explored, a.Divergences(),
		a.StatsDiverged, a.MissingTerminated, a.ExtraTerminated)
}

// CheckWorkers runs the workload serially (Workers=1) and with the
// given parallelism and diffs the results — the oracle behind the
// fuzzing harness's serial-vs-parallel equivalence check, and the
// programmatic form of the equivalence the repository's root tests
// assert on the hand-written suite. workers ≤ 1 defaults to
// GOMAXPROCS-sized parallelism (Options.Workers = 0).
func CheckWorkers(c model.Config, opts Options, workers int) WorkersAudit {
	serialFPs := newFPCollector()
	so := opts
	so.Workers = 1
	so.collect = serialFPs.observe
	parFPs := newFPCollector()
	po := opts
	po.Workers = workers
	if workers <= 1 {
		po.Workers = 0
	}
	po.collect = parFPs.observe

	var a WorkersAudit
	a.Serial = Run(c, so)
	a.Parallel = Run(c, po)

	// A timing-dependent budget cut (deadline, cancellation, memory)
	// or a degraded run stops each search at an arbitrary,
	// scheduling-dependent point: no statistic is comparable, so the
	// audit reports nothing rather than noise.
	if budgetCut(a.Serial) || budgetCut(a.Parallel) {
		return a
	}

	diverged := func(field string, ok bool) {
		if !ok {
			a.StatsDiverged = append(a.StatsDiverged, field)
		}
	}
	diverged("explored", a.Serial.Explored == a.Parallel.Explored)
	diverged("truncated", a.Serial.Truncated == a.Parallel.Truncated)
	diverged("verdict", (a.Serial.Violation == nil) == (a.Parallel.Violation == nil))

	complete := a.Serial.Violation == nil && a.Parallel.Violation == nil &&
		a.Serial.Stop == StopNone && a.Parallel.Stop == StopNone
	if complete {
		a.SetsCompared = true
		diverged("terminated", a.Serial.Terminated == a.Parallel.Terminated)
		diverged("depth", a.Serial.Depth == a.Parallel.Depth)
		a.MissingTerminated = serialFPs.terminated.MissingFrom(parFPs.terminated)
		a.ExtraTerminated = parFPs.terminated.MissingFrom(serialFPs.terminated)
	}
	return a
}

// CheckPOR runs the workload twice — once with partial-order reduction
// and once without, both under the given options — and diffs the
// searches: reachable- and terminated-state fingerprint sets and the
// property verdicts, in the style of the CheckIncremental and
// CheckCollisions audits. Zero Divergences certifies the reduction on
// this workload. The cost is the full search plus the reduced one.
func CheckPOR(c model.Config, opts Options) PORAudit {
	full := newFPCollector()
	fo := opts
	fo.POR = false
	fo.collect = full.observe
	reduced := newFPCollector()
	ro := opts
	ro.POR = true
	ro.collect = reduced.observe

	var a PORAudit
	a.Full = Run(c, fo)
	a.Reduced = Run(c, ro)

	// Under a timing-dependent budget cut or a degraded run the
	// verdicts legitimately differ (one search may be cut before the
	// violation); report nothing.
	if budgetCut(a.Full) || budgetCut(a.Reduced) {
		return a
	}
	a.VerdictDiverged = (a.Full.Violation == nil) != (a.Reduced.Violation == nil)

	// Set diffs only make sense when both searches ran to their bound:
	// an early stop (violation, MaxConfigs) leaves the sets arbitrary
	// prefixes.
	complete := a.Full.Violation == nil && a.Reduced.Violation == nil &&
		a.Full.Stop == StopNone && a.Reduced.Stop == StopNone
	if complete {
		a.SetsCompared = true
		a.MissingTerminated = full.terminated.MissingFrom(reduced.terminated)
		a.ExtraTerminated = reduced.terminated.MissingFrom(full.terminated)
		a.UnsoundExplored = reduced.explored.MissingFrom(full.explored)
	}
	return a
}
