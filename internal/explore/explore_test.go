package explore

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/model"
)

func mpConfig() core.Config {
	p := lang.Prog{
		lang.SeqC(lang.AssignC("d", lang.V(5)), lang.AssignRelC("f", lang.V(1))),
		lang.SeqC(lang.AssignC("a", lang.XA("f")), lang.AssignC("b", lang.X("d"))),
	}
	return core.NewConfig(p, map[event.Var]event.Val{"d": 0, "f": 0, "a": 0, "b": 0})
}

func TestRunSerialBasics(t *testing.T) {
	res := Run(mpConfig(), Options{Workers: 1})
	if res.Explored == 0 || res.Terminated == 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.Truncated {
		t.Fatal("loop-free program should not truncate")
	}
	if res.Violation != nil {
		t.Fatal("no property given, yet violation reported")
	}
	if res.Depth < 6 { // 6 statements minimum
		t.Fatalf("depth = %d", res.Depth)
	}
}

func TestRunParallelMatchesSerial(t *testing.T) {
	s := Run(mpConfig(), Options{Workers: 1})
	p := Run(mpConfig(), Options{Workers: 8})
	if s.Explored != p.Explored || s.Terminated != p.Terminated ||
		s.Depth != p.Depth || s.Truncated != p.Truncated {
		t.Fatalf("serial %+v != parallel %+v", s, p)
	}
}

func TestCheckCollisionsMatchesFastPath(t *testing.T) {
	// The exact-key slow path must visit the same state space as the
	// fingerprint fast path, and the audit must find no collisions.
	fast := Run(mpConfig(), Options{Workers: 1})
	for _, workers := range []int{1, 8} {
		slow := Run(mpConfig(), Options{Workers: workers, CheckCollisions: true})
		if slow.FingerprintCollisions != 0 {
			t.Fatalf("workers=%d: %d fingerprint collisions", workers, slow.FingerprintCollisions)
		}
		if slow.Explored != fast.Explored || slow.Terminated != fast.Terminated ||
			slow.Depth != fast.Depth {
			t.Fatalf("workers=%d: slow %+v != fast %+v", workers, slow, fast)
		}
	}
}

func TestPropertyViolationStopsSearch(t *testing.T) {
	res := Run(mpConfig(), Options{
		Workers:  1,
		Property: func(c model.Config) bool { return c.(core.Config).S.NumEvents() < 6 },
	})
	if res.Violation == nil {
		t.Fatal("expected a violation")
	}
	if res.Violation.(core.Config).S.NumEvents() < 6 {
		t.Fatal("violation config does not falsify the property")
	}
	// Parallel flavour too.
	res2 := Run(mpConfig(), Options{
		Workers:  4,
		Property: func(c model.Config) bool { return c.(core.Config).S.NumEvents() < 6 },
	})
	if res2.Violation == nil {
		t.Fatal("parallel run missed the violation")
	}
}

func TestEventBoundTruncates(t *testing.T) {
	// Infinite loop: while (x = 0) skip. Must truncate, not hang.
	p := lang.Prog{lang.WhileC(lang.Eq(lang.X("x"), lang.V(0)), lang.SkipC())}
	c := core.NewConfig(p, map[event.Var]event.Val{"x": 0})
	res := Run(c, Options{MaxEvents: 5, Workers: 1})
	if !res.Truncated {
		t.Fatal("unbounded loop did not truncate")
	}
	res2 := Run(c, Options{MaxEvents: 5, Workers: 4})
	if !res2.Truncated {
		t.Fatal("parallel run did not truncate")
	}
}

func TestMaxConfigsBound(t *testing.T) {
	res := Run(mpConfig(), Options{MaxConfigs: 10, Workers: 1})
	if !res.Truncated {
		t.Fatal("config bound not honoured")
	}
	res2 := Run(mpConfig(), Options{MaxConfigs: 10, Workers: 4})
	if !res2.Truncated {
		t.Fatal("parallel config bound not honoured")
	}
}

func TestFindTraceShortestWitness(t *testing.T) {
	// Find a terminated state; trace must start at the root and end at
	// a terminated configuration, with strictly growing event counts
	// on non-silent steps.
	trace, found := FindTrace(mpConfig(), Options{}, func(c model.Config) bool {
		return c.Terminated()
	})
	if !found {
		t.Fatal("no terminated state found")
	}
	first := trace.Configs[0].(core.Config)
	if first.S.NumEvents() != 4 {
		t.Fatalf("trace does not start at the root: %d events", first.S.NumEvents())
	}
	if !trace.Configs[len(trace.Configs)-1].Terminated() {
		t.Fatal("trace does not end at a goal state")
	}
	// BFS gives a shortest path: MP needs 6 actions + ≥0 silent steps.
	if len(trace.Configs) < 7 {
		t.Fatalf("trace too short: %d", len(trace.Configs))
	}
}

func TestFindTraceAbsent(t *testing.T) {
	if _, found := FindTrace(mpConfig(), Options{}, func(c model.Config) bool {
		return c.(core.Config).S.NumEvents() > 1000
	}); found {
		t.Fatal("found impossible goal")
	}
}

func TestOutcomes(t *testing.T) {
	out := Outcomes(mpConfig(), Options{}, func(c model.Config) string {
		s := c.(core.Config).S
		ga, _ := s.Last("a")
		gb, _ := s.Last("b")
		return s.Event(ga).Act.String() + s.Event(gb).Act.String()
	})
	if len(out) != 3 {
		t.Fatalf("outcomes = %v", out)
	}
	if out["wr(a,1)wr(b,0)"] {
		t.Fatal("MP stale outcome reachable")
	}
}

func TestDefaultOptionValues(t *testing.T) {
	var o Options
	if o.maxEvents() != 24 || o.maxConfigs() != 1<<20 || o.workers() < 1 {
		t.Fatalf("defaults: %d %d %d", o.maxEvents(), o.maxConfigs(), o.workers())
	}
	o = Options{MaxEvents: 3, MaxConfigs: 7, Workers: 2}
	if o.maxEvents() != 3 || o.maxConfigs() != 7 || o.workers() != 2 {
		t.Fatal("explicit options not honoured")
	}
}

func TestTraceDescribe(t *testing.T) {
	trace, found := FindTrace(mpConfig(), Options{}, func(c model.Config) bool {
		return c.Terminated()
	})
	if !found {
		t.Fatal("no trace")
	}
	out := trace.Describe()
	if !strings.Contains(out, "start:") {
		t.Fatalf("missing start line:\n%s", out)
	}
	// Both event-labelled and τ steps appear.
	if !strings.Contains(out, "wr(d,5)") || !strings.Contains(out, "τ") {
		t.Fatalf("missing step labels:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != len(trace.Configs) {
		t.Fatalf("line count %d != %d configs", lines, len(trace.Configs))
	}
}
