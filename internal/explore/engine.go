package explore

// The generic engine. Everything on the per-successor hot path — the
// work pool, the seen-set admission, expansion, the POR loop — is
// generic over the configuration type C, and Run instantiates it at
// each backend's concrete type (core.Config, sc.Config; see
// dispatch.go). Successors then flow through []C slices of struct
// values and item[C] queue entries with zero interface boxing; the
// boxed model.Config seam is only crossed at the edges (violation
// reporting, checkpoint restore, trace output), which are cold.
//
// The operations whose signatures mention the configuration type
// itself (expansion, property, boxing) cannot live on model.Base, so
// each instantiation carries them as an ops[C] value; the methods that
// don't mention it are called directly through the model.Base
// constraint.

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/lang"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// ops carries one backend's typed operations: the expansion methods,
// the (optional) monomorphised property, the conversions across the
// boxed seam, and the (optional) discard hook that recycles successor
// state the engine proves dead (fingerprint duplicates, bound-
// suppressed successors).
type ops[C model.Base] struct {
	// expand appends every enabled transition's target to out.
	expand func(c C, out []C) []C
	// expandStep appends the targets of one enabled program step.
	expandStep func(c C, out []C, ps lang.ProgStep) []C
	// property is the per-state safety check; nil when none.
	property func(C) bool
	// box crosses into the boxed seam (violations, checkpoints).
	box func(C) model.Config
	// unbox crosses back (checkpoint resume); reports failure when the
	// boxed configuration is not a C.
	unbox func(model.Config) (C, bool)
	// discard, when non-nil, is told about successors the engine will
	// never use again: a successor that deduplicated against the seen
	// set without being re-queued, was suppressed by the progress
	// bound, or was rejected by the MaxConfigs cap. The backend may
	// recycle its allocations; parent is the configuration it was
	// expanded from (successors of silent steps share state with it).
	discard func(parent, succ C)
}

// entry is one seen-set record: the best depth and smallest sleep mask
// the configuration has been reached with, and the values it was last
// expanded at (expandedAt -1 if never). Non-expandable configurations
// (terminated or at the progress bound) only track depth.
type entry struct {
	depth         int32
	expandedAt    int32
	sleep         threadMask
	expandedSleep threadMask
	expandable    bool
	term          bool
}

// relax folds a re-discovery at depth d with sleep mask sleep into
// the entry and reports whether the entry must be re-expanded: its
// depth or sleep mask improved below what it was last expanded with.
func (e *entry) relax(d int32, sleep threadMask) (requeue bool) {
	if d < e.depth {
		e.depth = d
		requeue = e.expandable && e.expandedAt >= 0 && e.expandedAt > d
	}
	if ns := e.sleep & sleep; ns != e.sleep {
		e.sleep = ns
		requeue = requeue || (e.expandable && e.expandedAt >= 0 && e.expandedSleep&^ns != 0)
	}
	return requeue
}

// expanded reports whether the entry has already been expanded at its
// current best depth and with a sleep mask no larger than the current
// one (so a queued item for it is stale).
func (e *entry) expanded() bool {
	return e.expandedAt >= 0 && e.expandedAt <= e.depth && e.expandedSleep&^e.sleep == 0
}

const numShards = 64

type shard struct {
	mu   sync.Mutex
	byFP map[fingerprint.FP]*entry
	// Collision-check mode state (nil otherwise).
	byKey map[string]*entry
	fpOf  map[fingerprint.FP]string
}

// lookup returns the seen-set entry for the given identity (nil if
// absent). The caller must hold the shard lock.
func (sh *shard) lookup(fp fingerprint.FP, key string, checkCollisions bool) *entry {
	if checkCollisions {
		return sh.byKey[key]
	}
	return sh.byFP[fp]
}

type item[C model.Base] struct {
	cfg C
	fp  fingerprint.FP
	key string // only set under CheckCollisions
}

// pool is the shared work pool: a FIFO of discovered configurations
// plus the in-flight counter that detects quiescence.
type pool[C model.Base] struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []item[C]
	head    int
	pending int // queued + currently-processing items
	stopped bool
	// tel, when non-nil, mirrors pending into the frontier gauge.
	tel *telemetry.Registry
}

func (p *pool[C]) push(it item[C]) {
	p.mu.Lock()
	p.pending++
	pending := p.pending
	p.queue = append(p.queue, it)
	p.mu.Unlock()
	if p.tel != nil {
		p.tel.SetGauge(telemetry.EngineGaugeFrontier, int64(pending))
	}
	p.cond.Signal()
}

// pop blocks until an item is available, the pool quiesces, or the
// search is stopped. ok=false means the worker should exit.
func (p *pool[C]) pop() (item[C], bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.head == len(p.queue) && p.pending > 0 && !p.stopped {
		p.cond.Wait()
	}
	if p.stopped || p.head == len(p.queue) {
		return item[C]{}, false
	}
	it := p.queue[p.head]
	p.queue[p.head] = item[C]{} // release the config for GC
	p.head++
	// Keep the backing array proportional to the live frontier.
	if p.head > 1024 && p.head > len(p.queue)/2 {
		n := copy(p.queue, p.queue[p.head:])
		p.queue = p.queue[:n]
		p.head = 0
	}
	return it, true
}

func (p *pool[C]) done() {
	p.mu.Lock()
	p.pending--
	pending := p.pending
	p.mu.Unlock()
	if p.tel != nil {
		p.tel.SetGauge(telemetry.EngineGaugeFrontier, int64(pending))
	}
	if pending == 0 {
		p.cond.Broadcast()
	}
}

func (p *pool[C]) stop() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// resume clears the stop flag after a checkpoint suspension; the
// re-started workers drain the queue the suspension left behind
// (pending == queued items again, since every in-flight item was
// either completed or unclaimed and re-queued before the workers
// exited).
func (p *pool[C]) resume() {
	p.mu.Lock()
	p.stopped = false
	p.mu.Unlock()
}

type run[C model.Base] struct {
	opts     Options
	ops      ops[C]
	nInit    int
	maxEv    int
	maxCfg   int
	deadline time.Time

	shards [numShards]shard
	pool   pool[C]

	explored   atomic.Int64
	terminated atomic.Int64
	truncated  atomic.Bool
	collisions atomic.Int64
	mismatches atomic.Int64
	violation  atomic.Pointer[model.Config]

	// requested is the sticky first real stop cause; stop is the live
	// signal workers poll (may transiently hold stopCheckpoint). See
	// budget.go.
	requested atomic.Int32
	stop      atomic.Int32

	panicMu    sync.Mutex
	panics     []PanicRecord
	panicItems []item[C]

	// tel and tracer are the observability sinks (both may be nil; the
	// telemetry package's methods are nil-safe, so the hot path calls
	// them unconditionally and the disabled configuration costs only
	// nil checks).
	tel    *telemetry.Registry
	tracer *telemetry.Tracer

	ckErr error
}

// newRun builds the engine state for opts without admitting anything.
func newRun[C model.Base](opts Options, bk ops[C]) *run[C] {
	r := &run[C]{
		opts:   opts,
		ops:    bk,
		maxEv:  opts.maxEvents(),
		maxCfg: opts.maxConfigs(),
		tel:    opts.Metrics,
		tracer: opts.Tracer,
	}
	r.deadline = opts.effectiveDeadline(time.Now())
	r.pool.cond = sync.NewCond(&r.pool.mu)
	r.pool.tel = opts.Metrics
	for i := range r.shards {
		if opts.CheckCollisions {
			r.shards[i].byKey = make(map[string]*entry)
			r.shards[i].fpOf = make(map[fingerprint.FP]string)
		} else {
			r.shards[i].byFP = make(map[fingerprint.FP]*entry)
		}
	}
	return r
}

// runAs explores the state space of c through one backend's typed
// operations. Run (dispatch.go) picks the instantiation.
func runAs[C model.Base](c C, opts Options, bk ops[C]) Result {
	if opts.CheckCollisions && opts.CheckpointPath != "" {
		// The exact-key seen-set is not serialised; fail loudly rather
		// than write a checkpoint that cannot restore the debug mode.
		return Result{CheckpointErr: fmt.Errorf("explore: CheckCollisions is incompatible with checkpointing")}
	}
	r := newRun[C](opts, bk)
	r.nInit = c.Progress()
	if r.tracer != nil {
		r.tracer.Emit(telemetry.Record{Type: "begin", Name: "search", Worker: -1,
			Args: map[string]any{"workers": opts.workers(), "max_events": r.maxEv, "por": opts.POR}})
	}
	r.admit(r.tel.Cell(0), c, 0, 0)
	r.execute()
	res := r.finalize()
	if r.tracer != nil {
		r.tracer.End("search", -1, map[string]any{
			"verdict": res.Verdict.String(), "stop": res.Stop.String(),
			"explored": res.Explored, "frontier": res.Frontier})
	}
	return res
}

func (r *run[C]) shardOf(fp fingerprint.FP) *shard {
	return &r.shards[fp.Lo%numShards]
}

// admit deduplicates and registers cfg at depth d with sleep mask
// sleep, updating counters and queueing it when expandable.
// Re-discoveries at a shorter depth or with a smaller sleep mask relax
// the recorded values and re-queue already-expanded entries so the
// improvements propagate. cont=false means the caller must stop
// expanding: the admission was rejected by the MaxConfigs budget or
// cfg violated the property — either way the search is stopping and
// the parent must stay on the frontier. retained=false means the
// engine holds no reference to cfg (it deduplicated without being
// re-queued, or was rejected) and the caller may recycle it. cell is
// the calling worker's telemetry cell (nil when metrics are
// disabled).
func (r *run[C]) admit(cell *telemetry.Cell, cfg C, d int32, sleep threadMask) (cont, retained bool) {
	// Everything that calls into model code runs outside the shard
	// lock: model methods may be expensive, and under fault injection
	// they may panic — a panic below never wedges a shard mutex.
	fp := cfg.Fingerprint()
	var key string
	if r.opts.CheckCollisions {
		key = cfg.Key()
	}
	term := cfg.Terminated()
	atBound := cfg.Progress()-r.nInit >= r.maxEv
	sh := r.shardOf(fp)

	sh.mu.Lock()
	e := sh.lookup(fp, key, r.opts.CheckCollisions)
	if e != nil {
		// Known configuration: relax depth and sleep mask.
		requeue := e.relax(d, sleep)
		sh.mu.Unlock()
		cell.Add(telemetry.EngineDedupHits, 1)
		if requeue {
			cell.Add(telemetry.EngineRequeues, 1)
			r.pool.push(item[C]{cfg: cfg, fp: fp, key: key})
		}
		return true, requeue
	}
	// Fresh configuration: honour the MaxConfigs admission cap.
	n := r.explored.Add(1)
	if int(n) > r.maxCfg {
		r.explored.Add(-1)
		r.truncated.Store(true)
		sh.mu.Unlock()
		// The rejected configuration is not recorded anywhere, so the
		// parent's expansion is incomplete: the caller re-queues it,
		// keeping the frontier sound for checkpoint/resume under a
		// larger budget.
		r.stopWith(StopMaxConfigs)
		return false, false
	}
	// Configurations at the progress bound stay expandable: their
	// memory successors are suppressed (expand filters them), but
	// silent steps add no events and must keep draining — otherwise
	// whether a terminated configuration at exactly the bound is found
	// would depend on which interleaving the search (full or reduced)
	// happens to take to it, since only some orders leave silent steps
	// for last. Draining makes the bounded terminated set a function
	// of the bound alone, which the POR and worker audits rely on.
	e = &entry{depth: d, expandedAt: -1, sleep: sleep, expandable: !term, term: term}
	if r.opts.CheckCollisions {
		sh.byKey[key] = e
		// Audit once per distinct canonical key.
		if prev, ok := sh.fpOf[fp]; ok {
			if prev != key {
				r.collisions.Add(1)
			}
		} else {
			sh.fpOf[fp] = key
		}
	} else {
		sh.byFP[fp] = e
	}
	sh.mu.Unlock()

	cell.Add(telemetry.EngineAdmitted, 1)
	r.tel.MaxGauge(telemetry.EngineGaugeDepth, int64(d))
	if term {
		r.terminated.Add(1)
		cell.Add(telemetry.EngineTerminated, 1)
	} else if atBound {
		r.truncated.Store(true)
	}
	// The hooks run outside every lock, like the property: the audit
	// only touches the admitted configuration's own state, and the
	// collector is documented as concurrently callable.
	if r.opts.collect != nil {
		r.opts.collect(fp, term)
	}
	if r.opts.CheckIncremental {
		if bad := cfg.AuditIncremental(); len(bad) > 0 {
			r.mismatches.Add(int64(len(bad)))
		}
	}
	// The property runs outside every lock; it may be expensive and is
	// documented as concurrently callable.
	if r.ops.property != nil && !r.ops.property(cfg) {
		mc := r.ops.box(cfg)
		r.violation.CompareAndSwap(nil, &mc)
		r.stopWith(StopViolation)
		// The violating configuration is admitted (it is in the seen
		// set), but the parent's remaining successors are not: the
		// parent returns to the frontier with the rest of its work.
		return false, true
	}
	if e.expandable {
		r.pool.push(item[C]{cfg: cfg, fp: fp, key: key})
	}
	return true, true
}

// claim marks it as being expanded and returns the depth and sleep
// mask to expand at, or ok=false when the entry has already been
// expanded at its current best depth and sleep mask (a stale
// re-queue).
func (r *run[C]) claim(it item[C]) (int32, threadMask, bool) {
	sh := r.shardOf(it.fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.lookup(it.fp, it.key, r.opts.CheckCollisions)
	if e == nil || e.expanded() {
		return 0, 0, false
	}
	e.expandedAt = e.depth
	e.expandedSleep = e.sleep
	return e.depth, e.sleep, true
}

// unclaim reverts a claim whose expansion did not complete (stop
// signal or budget rejection mid-expansion): the entry becomes
// unexpanded again so a re-queued item — or a resumed run — picks it
// back up. Monotonicity is preserved: un-expanding never invalidates
// relaxations already propagated through admitted successors.
func (r *run[C]) unclaim(it item[C]) {
	sh := r.shardOf(it.fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.lookup(it.fp, it.key, r.opts.CheckCollisions); e != nil {
		e.expandedAt = -1
		e.expandedSleep = 0
	}
}

// recordPanic captures an isolated worker panic as a repro artifact.
// The entry stays claimed, so the live run does not retry what is
// likely a deterministic panic; the checkpoint writer re-opens it (and
// queues its snapshot) so an operator resume retries it after a fix.
func (r *run[C]) recordPanic(it item[C], d int32, v any) {
	rec := PanicRecord{
		FP:      it.fp,
		Depth:   int(d),
		Program: it.cfg.Program().String(),
		Err:     fmt.Sprint(v),
		Stack:   string(debug.Stack()),
	}
	// Snapshotting calls model code on a configuration whose expansion
	// just panicked; guard it so one bad state cannot take down the
	// degraded-mode guarantee.
	func() {
		defer func() { recover() }() //nolint:errcheck // best-effort artifact
		rec.Snapshot = it.cfg.AppendSnapshot(nil)
	}()
	r.panicMu.Lock()
	r.panics = append(r.panics, rec)
	r.panicItems = append(r.panicItems, it)
	r.panicMu.Unlock()
	r.tel.Add(telemetry.EnginePanics, 1)
	if r.tracer != nil {
		r.tracer.Instant("panic", -1, map[string]any{"depth": int(d), "err": rec.Err})
	}
}

// discard hands a successor the engine will never use again back to
// the backend for recycling.
func (r *run[C]) discard(cell *telemetry.Cell, parent, succ C) {
	if r.ops.discard != nil {
		cell.Add(telemetry.EngineDiscards, 1)
		r.ops.discard(parent, succ)
	}
}

// expand generates the successors of cfg at depth d under sleep mask
// sl, applying the POR plan when enabled. At the progress bound only
// silent successors (same Progress) are admitted — the bound
// suppresses memory steps but silent chains drain to termination, in
// the full and the reduced search alike (the reduction is bypassed
// there: the handful of silent-only frontier states is not worth
// planning over). scratch is the worker's reusable successor buffer;
// the (possibly regrown) buffer is returned for the next expansion,
// along with whether every successor was admitted (false when a stop
// signal or budget rejection aborted the expansion).
func (r *run[C]) expand(cell *telemetry.Cell, cfg C, d int32, sl threadMask, scratch []C) ([]C, bool) {
	complete := true
	var zero C
	cell.Add(telemetry.EngineExpansions, 1)
	emit := func(s C, cs threadMask) bool {
		if r.stop.Load() != 0 {
			complete = false
			return false
		}
		cont, retained := r.admit(cell, s, d+1, cs)
		if !retained {
			r.discard(cell, cfg, s)
		}
		if !cont {
			complete = false
			return false
		}
		return true
	}
	if atBound := cfg.Progress()-r.nInit >= r.maxEv; atBound {
		base := cfg.Progress()
		scratch = r.ops.expand(cfg, scratch[:0])
		cell.Add(telemetry.EngineSuccessors, uint64(len(scratch)))
		for i, s := range scratch {
			scratch[i] = zero
			if s.Progress() > base {
				// Memory step: suppressed by the bound, never seen by
				// anything else — recyclable.
				cell.Add(telemetry.EngineBoundSuppressed, 1)
				r.discard(cell, cfg, s)
				continue
			}
			if !emit(s, 0) {
				break
			}
		}
		return scratch[:0], complete
	}
	if r.opts.POR && r.forEachReducedSucc(cfg, sl, cell, emit) {
		return scratch, complete
	}
	scratch = r.ops.expand(cfg, scratch[:0])
	cell.Add(telemetry.EngineSuccessors, uint64(len(scratch)))
	for i, s := range scratch {
		scratch[i] = zero // release for GC once admitted
		if !emit(s, 0) {
			break
		}
	}
	return scratch[:0], complete
}

// process claims and expands one item, isolating panics from model
// code: a panic is captured as a repro artifact (the entry stays
// claimed) and the worker moves on — the rest of the search finishes
// in degraded mode. An expansion aborted by a stop signal or budget
// rejection is unclaimed and re-queued so the frontier stays sound.
func (r *run[C]) process(cell *telemetry.Cell, it item[C], scratch *[]C) {
	d, sl, live := r.claim(it)
	if !live {
		cell.Add(telemetry.EngineStaleClaims, 1)
		return
	}
	completed := false
	defer func() {
		if v := recover(); v != nil {
			r.recordPanic(it, d, v)
			return
		}
		if !completed {
			r.unclaim(it)
			r.pool.push(it)
		}
	}()
	if r.opts.Hooks != nil {
		r.opts.Hooks.BeforeExpand(it.fp, int(d))
	}
	*scratch, completed = r.expand(cell, it.cfg, d, sl, *scratch)
}

// traceBatchEvery is how many processed items a worker batches
// between expansion-batch trace samples — coarse enough that tracing
// a large search stays cheap.
const traceBatchEvery = 1024

func (r *run[C]) worker(id int) {
	cell := r.tel.Cell(id)
	r.tracer.Begin("worker", id)
	var scratch []C
	var processed uint64
	for {
		it, ok := r.pool.pop()
		if !ok {
			break
		}
		if r.stop.Load() != 0 {
			// A stop signal raced past the pool flag (e.g. it fired in
			// the narrow window of a checkpoint resume): hand the item
			// back untouched, re-stop and exit.
			r.pool.push(it)
			r.pool.done()
			r.pool.stop()
			break
		}
		cell.Add(telemetry.EnginePoolClaims, 1)
		r.process(cell, it, &scratch)
		r.pool.done()
		if processed++; r.tracer != nil && processed%traceBatchEvery == 0 {
			r.tracer.Count("expansion_batch", id, map[string]any{
				"expansions": cell.Get(telemetry.EngineExpansions),
				"explored":   r.explored.Load(),
			})
		}
	}
	if r.tracer != nil {
		r.tracer.End("worker", id, map[string]any{"claims": cell.Get(telemetry.EnginePoolClaims)})
	}
}

// runWorkers runs one pool-draining leg: the workers exit when the
// pool quiesces or a stop signal drains it.
func (r *run[C]) runWorkers() {
	if w := r.opts.workers(); w <= 1 {
		// Serial is the same engine with the one worker run inline:
		// the FIFO pool makes the search breadth-first and the
		// truncated prefix deterministic.
		r.worker(0)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < r.opts.workers(); i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r.worker(id)
		}(i)
	}
	wg.Wait()
}

// execute drives worker legs until quiescence or a real stop,
// suspending and resuming around periodic checkpoints. The budget
// monitor (if any budget is set) runs across all legs.
func (r *run[C]) execute() {
	var monDone chan struct{}
	if r.needMonitor() {
		monDone = make(chan struct{})
		go r.monitor(monDone)
	}
	for {
		r.runWorkers()
		if StopCause(r.stop.Load()) != stopCheckpoint {
			break
		}
		// Periodic checkpoint: the pool is suspended and every entry
		// is either fully expanded or back on the queue, so the
		// snapshot is a consistent cut of the search.
		if err := r.writeCheckpoint(); err != nil && r.ckErr == nil {
			r.ckErr = err
		}
		// A real cause may have fired during the suspension: adopt it
		// instead of resuming. stopWith cannot overwrite the live
		// stopCheckpoint signal, so requested is the one place a raced
		// cause can be.
		if req := r.requested.Load(); req != 0 {
			r.stop.Store(req)
			break
		}
		r.stop.Store(0)
		if req := r.requested.Load(); req != 0 {
			// stopWith raced into the cleared window; re-adopt.
			r.stop.Store(req)
			break
		}
		r.pool.resume()
	}
	if monDone != nil {
		close(monDone)
	}
	if r.opts.CheckpointPath != "" && r.wantFinalCheckpoint() {
		if err := r.writeCheckpoint(); err != nil && r.ckErr == nil {
			r.ckErr = err
		}
	}
}

// wantFinalCheckpoint decides whether the end-of-run checkpoint is
// written: always, unless CheckpointOnCut restricts it to runs that
// ended with resumable unexpanded work (a budget/cancellation stop or
// isolated panics). Quiescent and violated runs are then skipped —
// their verdict is final and a resume would be a no-op.
func (r *run[C]) wantFinalCheckpoint() bool {
	if !r.opts.CheckpointOnCut {
		return true
	}
	switch StopCause(r.requested.Load()) {
	case StopMaxConfigs, StopDeadline, StopCancelled, StopMemory:
		return true
	}
	return len(r.panics) > 0
}

// finalize computes the Result after all workers have exited.
func (r *run[C]) finalize() Result {
	var res Result
	res.Explored = int(r.explored.Load())
	res.Terminated = int(r.terminated.Load())
	res.Truncated = r.truncated.Load()
	if v := r.violation.Load(); v != nil {
		res.Violation = *v
	}
	res.Stop = StopCause(r.requested.Load())
	res.Panics = r.panics
	res.CheckpointErr = r.ckErr
	res.FingerprintCollisions = int(r.collisions.Load())
	res.ClosureMismatches = int(r.mismatches.Load())
	res.ShardDepths = make([]int, numShards)
	for i := range r.shards {
		sh := &r.shards[i]
		scan := func(e *entry) {
			if int(e.depth) > res.ShardDepths[i] {
				res.ShardDepths[i] = int(e.depth)
			}
		}
		if r.opts.CheckCollisions {
			for _, e := range sh.byKey {
				scan(e)
			}
		} else {
			for _, e := range sh.byFP {
				scan(e)
			}
		}
		if res.ShardDepths[i] > res.Depth {
			res.Depth = res.ShardDepths[i]
		}
	}
	res.Frontier = len(r.frontierItems())
	switch {
	case res.Violation != nil:
		res.Verdict = VerdictViolated
	case res.Stop != StopNone || len(res.Panics) > 0:
		res.Verdict = VerdictBounded
	default:
		res.Verdict = VerdictProved
	}
	return res
}

// frontierItems returns the configurations admitted but not fully
// expanded, deduplicated by fingerprint: the queue remainder (minus
// stale re-queues) plus panicked configurations. Only called after
// the workers have exited — it reads the pool and shards unlocked.
func (r *run[C]) frontierItems() []item[C] {
	seen := make(map[fingerprint.FP]bool)
	var out []item[C]
	add := func(it item[C]) {
		if seen[it.fp] {
			return
		}
		sh := r.shardOf(it.fp)
		e := sh.lookup(it.fp, it.key, r.opts.CheckCollisions)
		if e == nil || !e.expandable {
			return
		}
		seen[it.fp] = true
		out = append(out, it)
	}
	for _, it := range r.pool.queue[r.pool.head:] {
		sh := r.shardOf(it.fp)
		if e := sh.lookup(it.fp, it.key, r.opts.CheckCollisions); e != nil && e.expanded() {
			continue // stale re-queue
		}
		add(it)
	}
	// Panicked configurations stay claimed in the live run (no retry),
	// but they are unexpanded work: a resume retries them.
	for _, it := range r.panicItems {
		add(it)
	}
	return out
}
