package explore

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/fingerprint"
	"repro/internal/lang"
	"repro/internal/model"
	"repro/internal/sc"
)

// petersonProg is Peterson's mutual-exclusion algorithm in its correct
// release-acquire form — the E13 workload, rebuilt here because the
// litmus catalog sits above this package. Kept structurally identical
// to litmus.Peterson.
func petersonProg() (lang.Prog, map[event.Var]event.Val) {
	thread := func(t int) lang.Com {
		other := 3 - t
		me := event.Var(fmt.Sprintf("flag%d", t))
		you := event.Var(fmt.Sprintf("flag%d", other))
		guard := lang.And(
			lang.Eq(lang.XA(you), lang.B(true)),
			lang.Eq(lang.X("turn"), lang.V(event.Val(other))),
		)
		return lang.SeqC(
			lang.AssignC(me, lang.B(true)),
			lang.SwapC("turn", event.Val(other)),
			lang.WhileC(guard, lang.SkipC()),
			lang.LabelC("cs", lang.SkipC()),
			lang.AssignRelC(me, lang.B(false)),
		)
	}
	return lang.Prog{thread(1), thread(2)},
		map[event.Var]event.Val{"flag1": 0, "flag2": 0, "turn": 1}
}

// petersonWeakProg is the broken variant (plain relaxed write to turn
// instead of the RA swap), which violates mutual exclusion under RAR.
func petersonWeakProg() (lang.Prog, map[event.Var]event.Val) {
	p, vars := petersonProg()
	for t := 1; t <= 2; t++ {
		seq := p[t-1].(lang.Seq)
		inner := seq.C2.(lang.Seq)
		inner.C1 = lang.AssignC("turn", lang.V(event.Val(3-t)))
		seq.C2 = inner
		p[t-1] = seq
	}
	return p, vars
}

func mutualExclusion(c model.Config) bool {
	p := c.Program()
	return !(lang.AtLabel(p.Thread(1)) == "cs" && lang.AtLabel(p.Thread(2)) == "cs")
}

// cancelAfter returns Hooks that cancel ctx after n expansions — a
// deterministic-count (but schedule-arbitrary) interruption point.
func cancelAfter(n int32, cancel context.CancelFunc) Hooks {
	var calls atomic.Int32
	return hookFunc(func(fingerprint.FP, int) {
		if calls.Add(1) == n {
			cancel()
		}
	})
}

// resumeUntilDone drives a checkpointed search to its fixpoint by
// resuming with fresh random interruption points until a leg finishes
// uninterrupted, and returns the final result plus the final leg's
// collector (Resume replays the checkpointed seen-set into it, so it
// holds the complete sets).
func resumeUntilDone(t *testing.T, path string, m model.Model, opts Options, rng *rand.Rand) (Result, *fpCollector) {
	t.Helper()
	for leg := 0; leg < 200; leg++ {
		ctx, cancel := context.WithCancel(context.Background())
		fps := newFPCollector()
		o := opts
		o.Context = ctx
		o.Hooks = cancelAfter(int32(1+rng.Intn(60)), cancel)
		o.collect = fps.observe
		res, err := Resume(path, m, o)
		cancel()
		if err != nil {
			t.Fatalf("resume leg %d: %v", leg, err)
		}
		if res.Stop != StopCancelled {
			return res, fps
		}
	}
	t.Fatal("search did not converge in 200 resume legs")
	return Result{}, nil
}

// TestCheckpointResumeEquivalence is the E13 equivalence gate:
// Peterson at MaxEvents=12, interrupted at a random point and resumed
// (repeatedly, each leg interrupted again at random) must reach
// exactly the fixpoint of an uninterrupted run — same Explored,
// Terminated, Depth, Truncated, verdict and terminated-state
// fingerprint set — serially and in parallel, under both memory
// models.
func TestCheckpointResumeEquivalence(t *testing.T) {
	p, vars := petersonProg()
	cases := []struct {
		name string
		m    model.Model
		opts Options
	}{
		{"rar-serial", core.Model, Options{MaxEvents: 12, Workers: 1}},
		{"rar-parallel", core.Model, Options{MaxEvents: 12, Workers: 8}},
		{"rar-serial-por", core.Model, Options{MaxEvents: 12, Workers: 1, POR: true}},
		{"sc-serial", sc.Model, Options{MaxEvents: 12, Workers: 1}},
		{"sc-parallel", sc.Model, Options{MaxEvents: 12, Workers: 8}},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(42 + i)))

			wantFPs := newFPCollector()
			wo := tc.opts
			wo.Property = mutualExclusion
			wo.collect = wantFPs.observe
			want := Run(tc.m.New(p, vars), wo)
			if want.Verdict != VerdictProved {
				t.Fatalf("uninterrupted run: %v (stop %v)", want.Verdict, want.Stop)
			}

			// Interrupted initial leg: cancel after a random number of
			// expansions, with a final checkpoint on the way out.
			path := filepath.Join(t.TempDir(), "search.ckpt")
			ctx, cancel := context.WithCancel(context.Background())
			io := tc.opts
			io.Property = mutualExclusion
			io.Context = ctx
			io.Hooks = cancelAfter(int32(1+rng.Intn(60)), cancel)
			io.CheckpointPath = path
			first := Run(tc.m.New(p, vars), io)
			cancel()
			if first.CheckpointErr != nil {
				t.Fatalf("checkpoint: %v", first.CheckpointErr)
			}
			if first.Stop == StopCancelled && first.Verdict != VerdictBounded {
				t.Fatalf("interrupted run: Verdict = %v", first.Verdict)
			}

			ro := tc.opts
			ro.Property = mutualExclusion
			ro.CheckpointPath = path
			got, gotFPs := resumeUntilDone(t, path, tc.m, ro, rng)

			if got.Verdict != want.Verdict || got.Stop != want.Stop {
				t.Fatalf("resumed verdict %v/%v != uninterrupted %v/%v", got.Verdict, got.Stop, want.Verdict, want.Stop)
			}
			if got.Explored != want.Explored || got.Terminated != want.Terminated ||
				got.Depth != want.Depth || got.Truncated != want.Truncated {
				t.Fatalf("resumed fixpoint diverged:\n got explored=%d term=%d depth=%d trunc=%v\nwant explored=%d term=%d depth=%v trunc=%v",
					got.Explored, got.Terminated, got.Depth, got.Truncated,
					want.Explored, want.Terminated, want.Depth, want.Truncated)
			}
			if got.Frontier != 0 {
				t.Fatalf("resumed run finished with Frontier = %d", got.Frontier)
			}
			if n := wantFPs.terminated.MissingFrom(gotFPs.terminated); n != 0 {
				t.Fatalf("%d terminated fingerprints missing from the resumed run", n)
			}
			if n := gotFPs.terminated.MissingFrom(wantFPs.terminated); n != 0 {
				t.Fatalf("%d extra terminated fingerprints in the resumed run", n)
			}
		})
	}
}

func TestPeriodicCheckpointing(t *testing.T) {
	// A run that checkpoints every millisecond (with enough injected
	// latency that several suspensions actually happen) must still
	// reach the uninterrupted fixpoint, and the final checkpoint must
	// resume idempotently.
	p, vars := petersonProg()
	want := Run(core.Model.New(p, vars), Options{MaxEvents: 10, Workers: 4})

	path := filepath.Join(t.TempDir(), "periodic.ckpt")
	res := Run(core.Model.New(p, vars), Options{
		MaxEvents:       10,
		Workers:         4,
		Hooks:           sleepHook(20 * time.Microsecond),
		CheckpointPath:  path,
		CheckpointEvery: 5 * time.Millisecond,
	})
	if res.CheckpointErr != nil {
		t.Fatalf("checkpoint: %v", res.CheckpointErr)
	}
	if res.Verdict != VerdictProved || res.Stop != StopNone {
		t.Fatalf("Verdict = %v, Stop = %v", res.Verdict, res.Stop)
	}
	if res.Explored != want.Explored || res.Terminated != want.Terminated || res.Depth != want.Depth {
		t.Fatalf("periodic checkpointing changed the result: %+v vs %+v", res, want)
	}

	// Resuming a finished checkpoint is a no-op returning the same
	// fixpoint.
	again, err := Resume(path, core.Model, Options{Workers: 4})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if again.Explored != want.Explored || again.Terminated != want.Terminated ||
		again.Verdict != VerdictProved || again.Frontier != 0 {
		t.Fatalf("finished checkpoint did not resume idempotently: %+v", again)
	}
}

func TestViolationCheckpointResume(t *testing.T) {
	// A violated search checkpoints its verdict: resuming restores the
	// violating configuration immediately, without re-searching.
	p, vars := petersonWeakProg()
	path := filepath.Join(t.TempDir(), "violation.ckpt")
	res := Run(core.Model.New(p, vars), Options{
		MaxEvents:      12,
		Workers:        1,
		Property:       mutualExclusion,
		CheckpointPath: path,
	})
	if res.Verdict != VerdictViolated {
		t.Fatalf("weak Peterson should violate mutual exclusion, got %v", res.Verdict)
	}
	if res.CheckpointErr != nil {
		t.Fatalf("checkpoint: %v", res.CheckpointErr)
	}
	got, err := Resume(path, core.Model, Options{Workers: 1, Property: mutualExclusion})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got.Verdict != VerdictViolated || got.Stop != StopViolation || got.Violation == nil {
		t.Fatalf("resumed verdict: %+v", got)
	}
	if got.Violation.Fingerprint() != res.Violation.Fingerprint() {
		t.Fatalf("resumed violation %v != original %v", got.Violation.Fingerprint(), res.Violation.Fingerprint())
	}
	if !mutualExclusion(got.Violation) == false {
		t.Fatal("restored violation does not falsify the property")
	}
}

func TestCheckpointAfterPanicReopensWork(t *testing.T) {
	// A panicked expansion is not retried live, but the checkpoint
	// re-opens it: a resume without the fault finishes the search.
	want := Run(mpConfig(), Options{Workers: 1})
	path := filepath.Join(t.TempDir(), "panic.ckpt")
	var calls atomic.Int32
	res := Run(mpConfig(), Options{
		Workers: 1,
		Hooks: hookFunc(func(fingerprint.FP, int) {
			if calls.Add(1) == 3 {
				panic("injected")
			}
		}),
		CheckpointPath: path,
	})
	if len(res.Panics) != 1 || res.Verdict != VerdictBounded {
		t.Fatalf("degraded run: %d panics, verdict %v", len(res.Panics), res.Verdict)
	}
	got, err := Resume(path, core.Model, Options{Workers: 1})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got.Verdict != VerdictProved || got.Explored != want.Explored ||
		got.Terminated != want.Terminated || got.Depth != want.Depth {
		t.Fatalf("post-fix resume did not reach the clean fixpoint: %+v vs %+v", got, want)
	}
}

func TestResumeErrors(t *testing.T) {
	if _, err := Resume(filepath.Join(t.TempDir(), "missing.ckpt"), core.Model, Options{}); err == nil {
		t.Fatal("resume of a missing file succeeded")
	}

	// A checkpoint written by one backend must not restore under
	// another.
	path := filepath.Join(t.TempDir(), "cross.ckpt")
	res := Run(mpConfig(), Options{Workers: 1, MaxConfigs: 5, CheckpointPath: path})
	if res.CheckpointErr != nil {
		t.Fatalf("checkpoint: %v", res.CheckpointErr)
	}
	if _, err := Resume(path, sc.Model, Options{Workers: 1}); err == nil {
		t.Fatal("RAR checkpoint resumed under the SC backend")
	}

	if _, err := Resume(path, core.Model, Options{CheckCollisions: true}); err == nil {
		t.Fatal("CheckCollisions resume succeeded")
	}
	if res := Run(mpConfig(), Options{CheckCollisions: true, CheckpointPath: path}); res.CheckpointErr == nil {
		t.Fatal("CheckCollisions run with a checkpoint path succeeded")
	}

	if err := CheckpointInterval("", time.Second); err == nil {
		t.Fatal("interval without a path validated")
	}
	if err := CheckpointInterval("x", time.Second); err != nil {
		t.Fatalf("valid interval rejected: %v", err)
	}
}

// TestResumeLargerBudget: a MaxConfigs-cut search resumed with a
// larger budget loses nothing — it reaches the full fixpoint.
func TestResumeLargerBudget(t *testing.T) {
	want := Run(mpConfig(), Options{Workers: 1})
	path := filepath.Join(t.TempDir(), "budget.ckpt")
	res := Run(mpConfig(), Options{Workers: 1, MaxConfigs: 5, CheckpointPath: path})
	if res.Stop != StopMaxConfigs {
		t.Fatalf("Stop = %v", res.Stop)
	}
	got, err := Resume(path, core.Model, Options{Workers: 1})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got.Verdict != VerdictProved || got.Explored != want.Explored ||
		got.Terminated != want.Terminated || got.Depth != want.Depth {
		t.Fatalf("budget-cut resume did not reach the full fixpoint: %+v vs %+v", got, want)
	}
	// The MaxConfigs cut marked Truncated; the flag is sticky across
	// the resume (the cut really happened), so only the state counts
	// are compared above.
}
