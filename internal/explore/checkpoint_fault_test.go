package explore

// Fault injection against the checkpoint atomic-write path: a write
// killed mid-stream must remove its temp file and leave any previous
// checkpoint untouched, and no proper prefix of a checkpoint (the
// residue of a crash without the temp-file discipline) may ever load.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// tmpResidue lists the temp files the checkpoint writer may have left
// next to path.
func tmpResidue(t *testing.T, path string) []string {
	t.Helper()
	glob := filepath.Join(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	m, err := filepath.Glob(glob)
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	return m
}

func TestCheckpointWriteKilledMidStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "search.ckpt")

	// A good checkpoint first: this is what a later failed write must
	// not clobber.
	res := Run(mpConfig(), Options{Workers: 1, MaxConfigs: 5, CheckpointPath: path})
	if res.CheckpointErr != nil {
		t.Fatalf("baseline checkpoint: %v", res.CheckpointErr)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the next write mid-stream: truncate the temp file to half
	// and fail, as a crashed writer would.
	ckWriteFault = func(tmp string) error {
		fi, err := os.Stat(tmp)
		if err != nil {
			return err
		}
		if err := os.Truncate(tmp, fi.Size()/2); err != nil {
			return err
		}
		return fmt.Errorf("injected mid-stream kill")
	}
	defer func() { ckWriteFault = nil }()

	res = Run(mpConfig(), Options{Workers: 1, MaxConfigs: 7, CheckpointPath: path})
	if res.CheckpointErr == nil {
		t.Fatal("killed write reported no CheckpointErr")
	}
	if !strings.Contains(res.CheckpointErr.Error(), "injected mid-stream kill") {
		t.Fatalf("CheckpointErr = %v", res.CheckpointErr)
	}
	ckWriteFault = nil

	// The temp file is gone and the previous checkpoint survives,
	// byte-identical and loadable.
	if residue := tmpResidue(t, path); len(residue) != 0 {
		t.Fatalf("temp residue after killed write: %v", residue)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("previous checkpoint unreadable after killed write: %v", err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("killed write modified the previous checkpoint")
	}
	got, err := Resume(path, core.Model, Options{Workers: 1})
	if err != nil {
		t.Fatalf("resume of the surviving checkpoint: %v", err)
	}
	want := Run(mpConfig(), Options{Workers: 1})
	if got.Explored != want.Explored || got.Verdict != want.Verdict {
		t.Fatalf("surviving checkpoint resumed to %+v, want %+v", got, want)
	}
}

func TestCheckpointWriteErrorBranchesRemoveTemp(t *testing.T) {
	// Every error branch of writeCheckpointFile must clean up: rename
	// failure (target is a directory) and temp creation failure
	// (unwritable directory) leave nothing behind.
	dir := t.TempDir()
	asDir := filepath.Join(dir, "target-is-a-dir")
	if err := os.Mkdir(asDir, 0o755); err != nil {
		t.Fatal(err)
	}
	res := Run(mpConfig(), Options{Workers: 1, MaxConfigs: 5, CheckpointPath: asDir})
	if res.CheckpointErr == nil {
		t.Fatal("rename onto a directory succeeded")
	}
	if residue := tmpResidue(t, asDir); len(residue) != 0 {
		t.Fatalf("temp residue after rename failure: %v", residue)
	}

	if os.Getuid() != 0 { // root ignores permission bits
		ro := filepath.Join(dir, "readonly")
		if err := os.Mkdir(ro, 0o555); err != nil {
			t.Fatal(err)
		}
		res = Run(mpConfig(), Options{Workers: 1, MaxConfigs: 5, CheckpointPath: filepath.Join(ro, "c.ckpt")})
		if res.CheckpointErr == nil {
			t.Fatal("checkpoint into a read-only directory succeeded")
		}
	}
}

func TestCheckpointPrefixNeverLoads(t *testing.T) {
	// No proper prefix of a checkpoint is loadable: a crash that left
	// partial bytes at the final path (which the temp+rename discipline
	// rules out, but this is the backstop the discipline is for) must
	// fail loudly at load, never restore a half-seen-set silently.
	dir := t.TempDir()
	path := filepath.Join(dir, "full.ckpt")
	res := Run(mpConfig(), Options{Workers: 1, MaxConfigs: 9, CheckpointPath: path})
	if res.CheckpointErr != nil {
		t.Fatalf("checkpoint: %v", res.CheckpointErr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpointFile(path); err != nil {
		t.Fatalf("full checkpoint must load: %v", err)
	}
	part := filepath.Join(dir, "partial.ckpt")
	for n := 0; n < len(data); n++ {
		if err := os.WriteFile(part, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadCheckpointFile(part); err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded as a checkpoint", n, len(data))
		}
	}
}

func TestCheckpointExtraRoundTrip(t *testing.T) {
	// The opaque caller blob survives the checkpoint and is handed back
	// on resume, before exploration continues.
	path := filepath.Join(t.TempDir(), "extra.ckpt")
	blob := []byte("outcome-set v1: a=1;b=0;")
	res := Run(mpConfig(), Options{
		Workers:         1,
		MaxConfigs:      5,
		CheckpointPath:  path,
		CheckpointExtra: func() []byte { return blob },
	})
	if res.CheckpointErr != nil {
		t.Fatalf("checkpoint: %v", res.CheckpointErr)
	}
	var got []byte
	restored := false
	if _, err := Resume(path, core.Model, Options{
		Workers:     1,
		ResumeExtra: func(b []byte) { got = b; restored = true },
	}); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !restored || !bytes.Equal(got, blob) {
		t.Fatalf("ResumeExtra got %q (called=%v), want %q", got, restored, blob)
	}
}

func TestCheckpointOnCut(t *testing.T) {
	// With CheckpointOnCut, only runs that end with resumable
	// unexpanded work write the final checkpoint.
	dir := t.TempDir()

	clean := filepath.Join(dir, "clean.ckpt")
	res := Run(mpConfig(), Options{Workers: 1, CheckpointPath: clean, CheckpointOnCut: true})
	if res.Verdict != VerdictProved || res.CheckpointErr != nil {
		t.Fatalf("clean run: %+v", res)
	}
	if _, err := os.Stat(clean); !os.IsNotExist(err) {
		t.Fatalf("quiescent run wrote a checkpoint (stat err %v)", err)
	}

	cut := filepath.Join(dir, "cut.ckpt")
	res = Run(mpConfig(), Options{Workers: 1, MaxConfigs: 5, CheckpointPath: cut, CheckpointOnCut: true})
	if res.Stop != StopMaxConfigs || res.CheckpointErr != nil {
		t.Fatalf("cut run: %+v", res)
	}
	if _, err := os.Stat(cut); err != nil {
		t.Fatalf("budget-cut run wrote no checkpoint: %v", err)
	}
	// And the checkpoint it wrote completes to the clean fixpoint.
	want := Run(mpConfig(), Options{Workers: 1})
	got, err := Resume(cut, core.Model, Options{Workers: 1})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got.Explored != want.Explored || got.Verdict != want.Verdict {
		t.Fatalf("resumed %+v, want %+v", got, want)
	}
}
