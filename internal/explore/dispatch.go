package explore

// Dispatch from the boxed model.Config seam into the monomorphised
// engine. Run type-switches on the concrete configuration type and
// instantiates the generic engine at it, so the two shipped backends
// explore with zero interface boxing on the successor path; any other
// model.Config implementation falls back to an instantiation at the
// boxed interface itself, which behaves exactly like the pre-generic
// engine. The switch is explicit — mirroring internal/model/backends —
// so the dependency from the engine to the backends stays visible in
// the imports (neither backend imports explore, so the edge is
// acyclic).

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/model"
	"repro/internal/sc"
)

// Run explores the state space of c under the given options.
func Run(c model.Config, opts Options) Result {
	switch cc := c.(type) {
	case core.Config:
		return runAs(cc, opts, coreOps(opts))
	case sc.Config:
		return runAs(cc, opts, scOps(opts))
	default:
		return runAs(c, opts, boxedOps(opts))
	}
}

// typedProperty resolves the property for an instantiation at C:
// TypedProperty when set (and of the right type — anything else is a
// loud programming error), otherwise the boxed Property wrapped in a
// per-call boxing adapter, otherwise nil.
func typedProperty[C model.Base](opts Options) func(C) bool {
	if opts.TypedProperty != nil {
		p, ok := opts.TypedProperty.(func(C) bool)
		if !ok {
			panic(fmt.Sprintf("explore: TypedProperty has type %T, want func(%T) bool",
				opts.TypedProperty, *new(C)))
		}
		return p
	}
	if opts.Property == nil {
		return nil
	}
	p := opts.Property
	return func(c C) bool { return p(any(c).(model.Config)) }
}

func coreOps(opts Options) ops[core.Config] {
	return ops[core.Config]{
		expand: func(c core.Config, out []core.Config) []core.Config {
			return c.AppendSuccessors(out)
		},
		expandStep: func(c core.Config, out []core.Config, ps lang.ProgStep) []core.Config {
			return c.AppendStepSuccessors(out, ps)
		},
		property: typedProperty[core.Config](opts),
		box:      func(c core.Config) model.Config { return c },
		unbox: func(mc model.Config) (core.Config, bool) {
			c, ok := mc.(core.Config)
			return c, ok
		},
		discard: core.Config.Discard,
	}
}

func scOps(opts Options) ops[sc.Config] {
	return ops[sc.Config]{
		expand: func(c sc.Config, out []sc.Config) []sc.Config {
			return c.AppendSuccessors(out)
		},
		expandStep: func(c sc.Config, out []sc.Config, ps lang.ProgStep) []sc.Config {
			return c.AppendStepSuccessors(out, ps)
		},
		property: typedProperty[sc.Config](opts),
		box:      func(c sc.Config) model.Config { return c },
		unbox: func(mc model.Config) (sc.Config, bool) {
			c, ok := mc.(sc.Config)
			return c, ok
		},
	}
}

// boxedOps is the fallback instantiation at the boxed interface, for
// model.Config implementations outside this repository's backends.
func boxedOps(opts Options) ops[model.Config] {
	return ops[model.Config]{
		expand: func(c model.Config, out []model.Config) []model.Config {
			return c.Expand(out)
		},
		expandStep: func(c model.Config, out []model.Config, ps lang.ProgStep) []model.Config {
			return c.ExpandStep(out, ps)
		},
		property: typedProperty[model.Config](opts),
		box:      func(c model.Config) model.Config { return c },
		unbox:    func(mc model.Config) (model.Config, bool) { return mc, true },
	}
}
