package explore

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// petersonRun runs the E13 Peterson workload with the given options
// and returns the result.
func petersonRun(t *testing.T, opts Options) Result {
	t.Helper()
	p, vars := petersonProg()
	res := Run(core.NewConfig(p, vars), opts)
	if res.Verdict != VerdictProved {
		t.Fatalf("Peterson run: verdict %v (stop %v)", res.Verdict, res.Stop)
	}
	return res
}

// TestTelemetryAccuracySerial pins the registry's totals against the
// Result a serial run reports — the ground truth for the parallel
// hammer below.
func TestTelemetryAccuracySerial(t *testing.T) {
	reg := telemetry.NewEngineRegistry()
	res := petersonRun(t, Options{MaxEvents: 10, Workers: 1, POR: true, Metrics: reg})
	snap := reg.Snapshot()
	if got := snap.Counter("states_admitted"); got != uint64(res.Explored) {
		t.Errorf("states_admitted = %d, Result.Explored = %d", got, res.Explored)
	}
	if got := snap.Counter("states_terminated"); got != uint64(res.Terminated) {
		t.Errorf("states_terminated = %d, Result.Terminated = %d", got, res.Terminated)
	}
	for _, name := range []string{"expansions", "successors", "dedup_hits", "por_pruned_steps"} {
		if snap.Counter(name) == 0 {
			t.Errorf("counter %q is zero after a POR Peterson run", name)
		}
	}
	// Quiescence: the frontier gauge drained to zero; serial BFS
	// admits states at their shortest depth, so the depth gauge is
	// exactly Result.Depth.
	if got := snap.Gauge("frontier"); got != 0 {
		t.Errorf("frontier gauge = %d after quiescence", got)
	}
	if got := snap.Gauge("max_depth"); got != int64(res.Depth) {
		t.Errorf("max_depth gauge = %d, Result.Depth = %d", got, res.Depth)
	}
	// Bookkeeping identity: every admission is a successor or the
	// root, and every generated successor is admitted, deduplicated,
	// or suppressed by the bound.
	succ := snap.Counter("successors")
	accounted := snap.Counter("states_admitted") - 1 + snap.Counter("dedup_hits") + snap.Counter("bound_suppressed")
	if succ != accounted {
		t.Errorf("successors = %d but admitted-1 + dedup + suppressed = %d", succ, accounted)
	}
}

// TestTelemetryAccuracyParallel hammers one registry from 8 workers
// (run under -race in CI) and checks the striped totals against the
// serial ground truth: admissions and terminations are fixpoint
// properties, identical across worker counts.
func TestTelemetryAccuracyParallel(t *testing.T) {
	serialReg := telemetry.NewEngineRegistry()
	serial := petersonRun(t, Options{MaxEvents: 10, Workers: 1, POR: true, Metrics: serialReg})
	par := telemetry.NewEngineRegistry()
	res := petersonRun(t, Options{MaxEvents: 10, Workers: 8, POR: true, Metrics: par})
	if res.Explored != serial.Explored || res.Terminated != serial.Terminated {
		t.Fatalf("parallel result drifted from serial: %+v vs %+v", res, serial)
	}
	snap := par.Snapshot()
	if got := snap.Counter("states_admitted"); got != uint64(serial.Explored) {
		t.Errorf("parallel states_admitted = %d, serial ground truth = %d", got, serial.Explored)
	}
	if got := snap.Counter("states_terminated"); got != uint64(serial.Terminated) {
		t.Errorf("parallel states_terminated = %d, serial ground truth = %d", got, serial.Terminated)
	}
	if got := snap.Gauge("frontier"); got != 0 {
		t.Errorf("frontier gauge = %d after quiescence", got)
	}
	// First discovery may happen along a non-shortest path, so the
	// depth gauge can only exceed the relaxed fixpoint depth.
	if got := snap.Gauge("max_depth"); got < int64(res.Depth) {
		t.Errorf("max_depth gauge = %d < Result.Depth = %d", got, res.Depth)
	}
}

// TestTelemetrySharedRegistryAccumulates covers the c11litmus/serve
// usage: one registry across several searches accumulates totals.
func TestTelemetrySharedRegistryAccumulates(t *testing.T) {
	reg := telemetry.NewEngineRegistry()
	res1 := Run(mpConfig(), Options{Workers: 1, Metrics: reg})
	after1 := reg.Total(telemetry.EngineAdmitted)
	res2 := Run(mpConfig(), Options{Workers: 4, Metrics: reg})
	after2 := reg.Total(telemetry.EngineAdmitted)
	if after1 != uint64(res1.Explored) {
		t.Errorf("first run admitted %d, Result.Explored %d", after1, res1.Explored)
	}
	if after2 != uint64(res1.Explored+res2.Explored) {
		t.Errorf("accumulated admitted %d, want %d", after2, res1.Explored+res2.Explored)
	}
}

// TestTelemetryCheckpointCounter: a checkpointing run counts its
// writes.
func TestTelemetryCheckpointCounter(t *testing.T) {
	reg := telemetry.NewEngineRegistry()
	p, vars := petersonProg()
	res := Run(core.NewConfig(p, vars), Options{
		MaxEvents: 8, Workers: 1, Metrics: reg,
		CheckpointPath: filepath.Join(t.TempDir(), "ck.gob"),
	})
	if res.CheckpointErr != nil {
		t.Fatal(res.CheckpointErr)
	}
	if got := reg.Total(telemetry.EngineCheckpointWrites); got != 1 {
		t.Errorf("checkpoint_writes = %d, want 1 (the final checkpoint)", got)
	}
}

// TestTelemetryTraceRoundTrip runs a traced search and requires the
// stream to be schema-valid JSONL that converts to Chrome format.
func TestTelemetryTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := telemetry.NewTracer(&buf)
	petersonRun(t, Options{MaxEvents: 10, Workers: 2, POR: true, Tracer: tr})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var names []string
	for i, line := range lines {
		var rec telemetry.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace line %d is not valid JSON: %v", i+1, err)
		}
		names = append(names, rec.Type+":"+rec.Name)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"begin:search", "begin:worker", "end:worker", "end:search"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace lacks %q record; got %s", want, joined)
		}
	}
	var chrome bytes.Buffer
	if err := telemetry.ConvertChrome(bytes.NewReader(buf.Bytes()), &chrome); err != nil {
		t.Fatalf("Chrome conversion failed: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(lines) {
		t.Errorf("Chrome trace has %d events for %d records", len(doc.TraceEvents), len(lines))
	}
}

// TestTelemetryZeroAllocOverhead holds the tentpole's hard line: the
// telemetry-disabled engine allocates exactly what it allocated
// before telemetry existed, and even the enabled registry path adds
// nothing on this workload (all cells are preallocated). The
// perfgate CI job additionally pins the absolute allocs/op of the
// serial E13 row against the committed baseline.
func TestTelemetryZeroAllocOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement")
	}
	p, vars := petersonProg()
	// AllocsPerRun on identical options jitters by a couple of allocs
	// (map-growth and GC-assist timing), so measure each configuration
	// several times and compare the minima: a real per-state cost
	// would add hundreds of allocs on this workload (~500 states), far
	// outside the noise band.
	measure := func(opts Options) float64 {
		best := testing.AllocsPerRun(5, func() {
			opts := opts
			Run(core.NewConfig(p, vars), opts)
		})
		for i := 0; i < 3; i++ {
			a := testing.AllocsPerRun(5, func() {
				opts := opts
				Run(core.NewConfig(p, vars), opts)
			})
			if a < best {
				best = a
			}
		}
		return best
	}
	base := Options{MaxEvents: 8, Workers: 1, POR: true}
	off := measure(base)
	withReg := base
	withReg.Metrics = telemetry.NewEngineRegistry()
	on := measure(withReg)
	if on > off+3 {
		t.Errorf("metrics enabled adds allocations: %v allocs/run with vs %v without", on, off)
	}
}
