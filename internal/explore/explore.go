// Package explore is a bounded explicit-state model checker, generic
// over the pluggable memory models of internal/model (the RAR
// semantics of internal/core, the SC semantics of internal/sc). It
// enumerates the configurations reachable from an initial one,
// deduplicating by canonical 128-bit configuration fingerprints, and
// checks safety properties at every state. Under the RAR backend,
// programs with loops have unbounded executions (each loop iteration
// appends read events), so exploration is bounded by the model's
// Progress measure; within that bound the search is exhaustive. Under
// SC the configuration space is finite and MaxConfigs alone bounds it.
//
// With Options.POR the search applies independence-based partial-order
// reduction (por.go): a persistent-set heuristic expands only a subset
// of the enabled threads where one is provably conflict-free (by the
// model's StepsCommute oracle and static program footprints), and
// sleep sets prune commuting interleavings that are covered elsewhere.
// The reduced search preserves every terminated configuration and all
// label-visible interleavings, but not every intermediate
// configuration; CheckPOR (audit.go) diffs a reduced against a full
// search.
//
// There is exactly one engine: a sharded, barrier-free search in which
// workers pull configurations from a shared pool and push successors
// as they find them, deduplicating through a seen-set sharded by
// fingerprint bits. Serial exploration is the same engine at
// Workers=1 (the single worker drains the FIFO pool in breadth-first
// order, so a state's recorded depth is its shortest distance from the
// root, exactly like the dedicated serial engine this replaced). With
// more workers, discovery order is nondeterministic, so a state may
// first be reached along a non-shortest path; when a shorter path is
// found later the state's depth is relaxed and — if it was already
// expanded — it is re-queued so the improvement propagates. Sleep
// masks relax the same way, by intersection: re-reaching a known state
// with a smaller sleep set weakens the stored mask and re-queues the
// state. Both relaxations are monotone, so at quiescence every state
// carries its shortest-path depth and its final (smallest) sleep mask,
// making Explored, Terminated, Depth and the Truncated flag identical
// across worker counts whenever the search runs to completion (no
// budget cut, no early property exit) — with or without POR, for
// every backend.
//
// The engine is resource-governed (budget.go): wall-clock deadlines,
// context cancellation, state and memory budgets all cut the search at
// a safe point and yield a sound partial Result with a tri-state
// Verdict; worker panics in model code are isolated per configuration
// while the remaining shards finish in degraded mode; and a search can
// periodically checkpoint its seen-set and frontier to disk and later
// resume (checkpoint.go), provably reaching the same fixpoint as an
// uninterrupted run — the relaxation fixpoint is monotone and
// re-admission idempotent, so where the search stopped does not matter.
package explore

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/model"
)

// Options bounds and configures an exploration.
type Options struct {
	// MaxEvents bounds the model's Progress measure per state
	// (non-initialising events under RAR; SC configurations make no
	// progress and are unbounded here); configurations at the bound
	// are not expanded further. Zero means 24.
	MaxEvents int
	// MaxConfigs bounds the number of distinct configurations
	// explored; once reached, no further configurations are admitted,
	// the search stops with StopMaxConfigs and the configuration whose
	// expansion was rejected stays on the frontier (so a resumed run
	// with a larger budget loses nothing). When the cap cuts a
	// parallel search, *which* configurations were admitted depends on
	// scheduling, so Terminated and Depth (unlike Explored and
	// Truncated) may vary between runs; use Workers 1 for a
	// deterministic truncated prefix.
	MaxConfigs int
	// Workers sets the parallelism; 0 means GOMAXPROCS, 1 is serial.
	Workers int
	// POR enables independence-based partial-order reduction: sleep
	// sets plus a persistent-set heuristic driven by the model's
	// per-step commutation oracle (see por.go). The reduced search
	// reaches every terminated configuration of the full search and
	// preserves interleavings around labelled program points, but
	// skips intermediate configurations whose interleavings commute —
	// a Property that inspects arbitrary state components may
	// therefore miss violations that only occur at skipped
	// configurations (a reported violation is always real). CheckPOR
	// audits a workload's reduced search against its full search.
	POR bool
	// Property, when non-nil, is evaluated once at every distinct
	// reachable configuration; the first configuration where it
	// returns false is reported as a violation and stops the search.
	// With Workers > 1 the property is called concurrently from
	// multiple workers and must be safe for concurrent use.
	Property func(model.Config) bool

	// Context, when non-nil, cancels the search: when it is done the
	// engine stops with StopCancelled and returns a sound partial
	// Result.
	Context context.Context
	// Timeout, when positive, bounds the wall-clock time of the
	// search relative to its start; Deadline, when non-zero, bounds it
	// absolutely. The earlier of the two applies; exceeding it stops
	// the search with StopDeadline.
	Timeout time.Duration
	// Deadline is the absolute form of Timeout.
	Deadline time.Time
	// MaxMemBytes, when positive, bounds the process heap: a watcher
	// polls runtime.MemStats every MemPoll and stops the search with
	// StopMemory when HeapAlloc exceeds the bound. The bound is
	// process-global and advisory (polling can overshoot by up to one
	// interval of allocation).
	MaxMemBytes uint64
	// MemPoll is the MemStats polling interval; zero means 25ms.
	MemPoll time.Duration
	// Hooks, when non-nil, observes the engine on the expansion path
	// (see Hooks); internal/faultinject implements it to inject worker
	// panics, latency and allocation pressure.
	Hooks Hooks
	// CheckpointPath, when non-empty, makes the engine write a
	// checkpoint of the sharded seen-set and frontier to this path
	// when the search ends (for whatever cause), atomically via a
	// temp-file rename. With CheckpointEvery > 0 the engine also
	// suspends periodically and snapshots mid-search. Resume continues
	// a checkpointed search and provably reaches the same fixpoint as
	// an uninterrupted run. Incompatible with CheckCollisions (the
	// exact-key seen-set is not serialised).
	CheckpointPath string
	// CheckpointEvery is the periodic checkpoint interval; zero means
	// only the final checkpoint is written.
	CheckpointEvery time.Duration
	// CheckpointOnCut, when true, suppresses the final checkpoint
	// unless the search was actually cut short with unexpanded work —
	// a budget stop, a cancellation, or isolated panics. A run that
	// reached quiescence or a definite violation has nothing a resume
	// could add, so callers that checkpoint only as a drain/crash
	// safety net (the verification service) skip the serialisation
	// cost on every clean completion. Periodic checkpoints
	// (CheckpointEvery) are unaffected.
	CheckpointOnCut bool
	// CheckpointExtra, when non-nil, contributes an opaque caller blob
	// to every checkpoint written (periodic and final). It is called
	// at the checkpoint's quiescent cut — no workers are running — so
	// it may read state the Property mutates without extra locking.
	// Resume hands the blob back through ResumeExtra; the engine never
	// interprets it. Callers use it to persist search-adjacent state
	// the seen-set cannot reconstruct (e.g. the outcome set a property
	// accumulated before the interruption).
	CheckpointExtra func() []byte
	// ResumeExtra, when non-nil, receives the CheckpointExtra blob of
	// the checkpoint being resumed (nil when the checkpoint carried
	// none) before exploration continues.
	ResumeExtra func([]byte)

	// CheckCollisions switches deduplication to the exact canonical
	// string keys (model.Config.Key) and audits the fingerprints
	// against them, counting distinct keys whose 128-bit fingerprints
	// coincide in Result.FingerprintCollisions. This is a debug mode:
	// it restores the allocation-heavy slow path the fingerprints
	// replaced.
	CheckCollisions bool
	// CheckIncremental audits the model's incrementally maintained
	// derived structures: at every admitted configuration
	// model.Config.AuditIncremental recomputes them from first
	// principles, and the number of disagreements accumulates in
	// Result.ClosureMismatches. Under the RAR backend this restores
	// the from-scratch Floyd–Warshall cost per state (hb/eco/comb
	// closures, observability sets, indexes); under SC it re-hashes
	// the store. The expected mismatch count is always zero.
	CheckIncremental bool

	// collect, when non-nil, observes every admitted configuration's
	// fingerprint and whether it is terminated. Used by CheckPOR to
	// gather reachable sets; must be safe for concurrent use when
	// Workers > 1. On Resume it is replayed over the checkpointed
	// seen-set before exploration continues.
	collect func(fp fingerprint.FP, terminated bool)
}

func (o Options) maxEvents() int {
	if o.MaxEvents <= 0 {
		return 24
	}
	return o.MaxEvents
}

func (o Options) maxConfigs() int {
	if o.MaxConfigs <= 0 {
		return 1 << 20
	}
	return o.MaxConfigs
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result summarises an exploration.
type Result struct {
	// Verdict is the tri-state outcome: PROVED (space exhausted within
	// the progress bound, no violation), VIOLATED (violation found) or
	// BOUNDED (a resource budget cut the search or panics degraded
	// it). A degraded or budget-cut search never reports PROVED.
	Verdict Verdict
	// Stop records which budget (if any) stopped the search.
	Stop StopCause
	// Explored counts distinct configurations visited.
	Explored int
	// Terminated counts configurations where every thread has
	// terminated.
	Terminated int
	// Truncated reports whether the progress or configuration bound
	// cut the search (so absence of a violation is relative to the
	// bound).
	Truncated bool
	// Violation is a configuration falsifying the property, nil if
	// none was found. It is always a really-reached configuration —
	// replayable by FindTrace with no budget — whatever budgets were
	// in force.
	Violation model.Config
	// Depth is the maximum over explored configurations of the
	// shortest transition distance from the initial configuration
	// (under POR: the shortest distance in the reduced graph).
	Depth int
	// Frontier counts configurations admitted but not yet (fully)
	// expanded when the search ended: zero at quiescence, positive
	// after a budget cut. Together with Explored it is the coverage
	// statistic of a partial result.
	Frontier int
	// ShardDepths is the per-shard maximum depth (numShards entries),
	// the coverage profile of the sharded seen-set.
	ShardDepths []int
	// Panics holds one repro artifact per isolated worker panic; the
	// rest of the search continued in degraded mode.
	Panics []PanicRecord
	// CheckpointErr reports a failure to write a requested checkpoint
	// (the exploration result itself is unaffected).
	CheckpointErr error
	// FingerprintCollisions counts distinct canonical keys that
	// shared a fingerprint; only populated under CheckCollisions.
	FingerprintCollisions int
	// ClosureMismatches counts disagreements between the model's
	// incrementally maintained structures and their from-scratch
	// recomputation across all admitted configurations; only
	// populated under CheckIncremental.
	ClosureMismatches int
}

// newRun builds the engine state for opts without admitting anything.
func newRun(opts Options) *run {
	r := &run{
		opts:   opts,
		maxEv:  opts.maxEvents(),
		maxCfg: opts.maxConfigs(),
	}
	r.deadline = opts.effectiveDeadline(time.Now())
	r.pool.cond = sync.NewCond(&r.pool.mu)
	for i := range r.shards {
		if opts.CheckCollisions {
			r.shards[i].byKey = make(map[string]*entry)
			r.shards[i].fpOf = make(map[fingerprint.FP]string)
		} else {
			r.shards[i].byFP = make(map[fingerprint.FP]*entry)
		}
	}
	return r
}

// Run explores the state space of c under the given options.
func Run(c model.Config, opts Options) Result {
	if opts.CheckCollisions && opts.CheckpointPath != "" {
		// The exact-key seen-set is not serialised; fail loudly rather
		// than write a checkpoint that cannot restore the debug mode.
		return Result{CheckpointErr: fmt.Errorf("explore: CheckCollisions is incompatible with checkpointing")}
	}
	r := newRun(opts)
	r.nInit = c.Progress()
	r.admit(c, 0, 0)
	r.execute()
	return r.finalize()
}

// entry is one seen-set record: the best depth and smallest sleep mask
// the configuration has been reached with, and the values it was last
// expanded at (expandedAt -1 if never). Non-expandable configurations
// (terminated or at the progress bound) only track depth.
type entry struct {
	depth         int32
	expandedAt    int32
	sleep         threadMask
	expandedSleep threadMask
	expandable    bool
	term          bool
}

// relax folds a re-discovery at depth d with sleep mask sleep into
// the entry and reports whether the entry must be re-expanded: its
// depth or sleep mask improved below what it was last expanded with.
func (e *entry) relax(d int32, sleep threadMask) (requeue bool) {
	if d < e.depth {
		e.depth = d
		requeue = e.expandable && e.expandedAt >= 0 && e.expandedAt > d
	}
	if ns := e.sleep & sleep; ns != e.sleep {
		e.sleep = ns
		requeue = requeue || (e.expandable && e.expandedAt >= 0 && e.expandedSleep&^ns != 0)
	}
	return requeue
}

// expanded reports whether the entry has already been expanded at its
// current best depth and with a sleep mask no larger than the current
// one (so a queued item for it is stale).
func (e *entry) expanded() bool {
	return e.expandedAt >= 0 && e.expandedAt <= e.depth && e.expandedSleep&^e.sleep == 0
}

const numShards = 64

type shard struct {
	mu   sync.Mutex
	byFP map[fingerprint.FP]*entry
	// Collision-check mode state (nil otherwise).
	byKey map[string]*entry
	fpOf  map[fingerprint.FP]string
}

type item struct {
	cfg model.Config
	fp  fingerprint.FP
	key string // only set under CheckCollisions
}

// pool is the shared work pool: a FIFO of discovered configurations
// plus the in-flight counter that detects quiescence.
type pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []item
	head    int
	pending int // queued + currently-processing items
	stopped bool
}

func (p *pool) push(it item) {
	p.mu.Lock()
	p.pending++
	p.queue = append(p.queue, it)
	p.mu.Unlock()
	p.cond.Signal()
}

// pop blocks until an item is available, the pool quiesces, or the
// search is stopped. ok=false means the worker should exit.
func (p *pool) pop() (item, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.head == len(p.queue) && p.pending > 0 && !p.stopped {
		p.cond.Wait()
	}
	if p.stopped || p.head == len(p.queue) {
		return item{}, false
	}
	it := p.queue[p.head]
	p.queue[p.head] = item{} // release the config for GC
	p.head++
	// Keep the backing array proportional to the live frontier.
	if p.head > 1024 && p.head > len(p.queue)/2 {
		n := copy(p.queue, p.queue[p.head:])
		p.queue = p.queue[:n]
		p.head = 0
	}
	return it, true
}

func (p *pool) done() {
	p.mu.Lock()
	p.pending--
	quiesced := p.pending == 0
	p.mu.Unlock()
	if quiesced {
		p.cond.Broadcast()
	}
}

func (p *pool) stop() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// resume clears the stop flag after a checkpoint suspension; the
// re-started workers drain the queue the suspension left behind
// (pending == queued items again, since every in-flight item was
// either completed or unclaimed and re-queued before the workers
// exited).
func (p *pool) resume() {
	p.mu.Lock()
	p.stopped = false
	p.mu.Unlock()
}

type run struct {
	opts     Options
	nInit    int
	maxEv    int
	maxCfg   int
	deadline time.Time

	shards [numShards]shard
	pool   pool

	explored   atomic.Int64
	terminated atomic.Int64
	truncated  atomic.Bool
	collisions atomic.Int64
	mismatches atomic.Int64
	violation  atomic.Pointer[model.Config]

	// requested is the sticky first real stop cause; stop is the live
	// signal workers poll (may transiently hold stopCheckpoint). See
	// budget.go.
	requested atomic.Int32
	stop      atomic.Int32

	panicMu    sync.Mutex
	panics     []PanicRecord
	panicItems []item

	ckErr error
}

func (r *run) shardOf(fp fingerprint.FP) *shard {
	return &r.shards[fp.Lo%numShards]
}

// lookup returns the seen-set entry for it (nil if absent). The
// caller must hold the item's shard lock.
func (sh *shard) lookup(it item, checkCollisions bool) *entry {
	if checkCollisions {
		return sh.byKey[it.key]
	}
	return sh.byFP[it.fp]
}

// admit deduplicates and registers cfg at depth d with sleep mask
// sleep, updating counters and queueing it when expandable.
// Re-discoveries at a shorter depth or with a smaller sleep mask relax
// the recorded values and re-queue already-expanded entries so the
// improvements propagate. It reports whether the caller may continue
// expanding: false when the admission was rejected by the MaxConfigs
// budget or cfg violated the property — either way the search is
// stopping and the parent must stay on the frontier.
func (r *run) admit(cfg model.Config, d int32, sleep threadMask) bool {
	// Everything that calls into model code runs outside the shard
	// lock: model methods may be expensive, and under fault injection
	// they may panic — a panic below never wedges a shard mutex.
	fp := cfg.Fingerprint()
	var key string
	if r.opts.CheckCollisions {
		key = cfg.Key()
	}
	term := cfg.Terminated()
	atBound := cfg.Progress()-r.nInit >= r.maxEv
	sh := r.shardOf(fp)

	sh.mu.Lock()
	e := sh.lookup(item{fp: fp, key: key}, r.opts.CheckCollisions)
	if e != nil {
		// Known configuration: relax depth and sleep mask.
		requeue := e.relax(d, sleep)
		sh.mu.Unlock()
		if requeue {
			r.pool.push(item{cfg: cfg, fp: fp, key: key})
		}
		return true
	}
	// Fresh configuration: honour the MaxConfigs admission cap.
	n := r.explored.Add(1)
	if int(n) > r.maxCfg {
		r.explored.Add(-1)
		r.truncated.Store(true)
		sh.mu.Unlock()
		// The rejected configuration is not recorded anywhere, so the
		// parent's expansion is incomplete: the caller re-queues it,
		// keeping the frontier sound for checkpoint/resume under a
		// larger budget.
		r.stopWith(StopMaxConfigs)
		return false
	}
	// Configurations at the progress bound stay expandable: their
	// memory successors are suppressed (expand filters them), but
	// silent steps add no events and must keep draining — otherwise
	// whether a terminated configuration at exactly the bound is found
	// would depend on which interleaving the search (full or reduced)
	// happens to take to it, since only some orders leave silent steps
	// for last. Draining makes the bounded terminated set a function
	// of the bound alone, which the POR and worker audits rely on.
	e = &entry{depth: d, expandedAt: -1, sleep: sleep, expandable: !term, term: term}
	if r.opts.CheckCollisions {
		sh.byKey[key] = e
		// Audit once per distinct canonical key.
		if prev, ok := sh.fpOf[fp]; ok {
			if prev != key {
				r.collisions.Add(1)
			}
		} else {
			sh.fpOf[fp] = key
		}
	} else {
		sh.byFP[fp] = e
	}
	sh.mu.Unlock()

	if term {
		r.terminated.Add(1)
	} else if atBound {
		r.truncated.Store(true)
	}
	// The hooks run outside every lock, like the property: the audit
	// only touches the admitted configuration's own state, and the
	// collector is documented as concurrently callable.
	if r.opts.collect != nil {
		r.opts.collect(fp, term)
	}
	if r.opts.CheckIncremental {
		if bad := cfg.AuditIncremental(); len(bad) > 0 {
			r.mismatches.Add(int64(len(bad)))
		}
	}
	// The property runs outside every lock; it may be expensive and is
	// documented as concurrently callable.
	if r.opts.Property != nil && !r.opts.Property(cfg) {
		c := cfg
		r.violation.CompareAndSwap(nil, &c)
		r.stopWith(StopViolation)
		// The violating configuration is admitted (it is in the seen
		// set), but the parent's remaining successors are not: the
		// parent returns to the frontier with the rest of its work.
		return false
	}
	if e.expandable {
		r.pool.push(item{cfg: cfg, fp: fp, key: key})
	}
	return true
}

// claim marks it as being expanded and returns the depth and sleep
// mask to expand at, or ok=false when the entry has already been
// expanded at its current best depth and sleep mask (a stale
// re-queue).
func (r *run) claim(it item) (int32, threadMask, bool) {
	sh := r.shardOf(it.fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.lookup(it, r.opts.CheckCollisions)
	if e == nil || e.expanded() {
		return 0, 0, false
	}
	e.expandedAt = e.depth
	e.expandedSleep = e.sleep
	return e.depth, e.sleep, true
}

// unclaim reverts a claim whose expansion did not complete (stop
// signal or budget rejection mid-expansion): the entry becomes
// unexpanded again so a re-queued item — or a resumed run — picks it
// back up. Monotonicity is preserved: un-expanding never invalidates
// relaxations already propagated through admitted successors.
func (r *run) unclaim(it item) {
	sh := r.shardOf(it.fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.lookup(it, r.opts.CheckCollisions); e != nil {
		e.expandedAt = -1
		e.expandedSleep = 0
	}
}

// recordPanic captures an isolated worker panic as a repro artifact.
// The entry stays claimed, so the live run does not retry what is
// likely a deterministic panic; the checkpoint writer re-opens it (and
// queues its snapshot) so an operator resume retries it after a fix.
func (r *run) recordPanic(it item, d int32, v any) {
	rec := PanicRecord{
		FP:      it.fp,
		Depth:   int(d),
		Program: it.cfg.Program().String(),
		Err:     fmt.Sprint(v),
		Stack:   string(debug.Stack()),
	}
	// Snapshotting calls model code on a configuration whose expansion
	// just panicked; guard it so one bad state cannot take down the
	// degraded-mode guarantee.
	func() {
		defer func() { recover() }() //nolint:errcheck // best-effort artifact
		rec.Snapshot = it.cfg.AppendSnapshot(nil)
	}()
	r.panicMu.Lock()
	r.panics = append(r.panics, rec)
	r.panicItems = append(r.panicItems, it)
	r.panicMu.Unlock()
}

// expand generates the successors of cfg at depth d under sleep mask
// sl, applying the POR plan when enabled. At the progress bound only
// silent successors (same Progress) are admitted — the bound
// suppresses memory steps but silent chains drain to termination, in
// the full and the reduced search alike (the reduction is bypassed
// there: the handful of silent-only frontier states is not worth
// planning over). scratch is the worker's reusable successor buffer;
// the (possibly regrown) buffer is returned for the next expansion,
// along with whether every successor was admitted (false when a stop
// signal or budget rejection aborted the expansion).
func (r *run) expand(cfg model.Config, d int32, sl threadMask, scratch []model.Config) ([]model.Config, bool) {
	complete := true
	emit := func(s model.Config, cs threadMask) bool {
		if r.stop.Load() != 0 || !r.admit(s, d+1, cs) {
			complete = false
			return false
		}
		return true
	}
	if atBound := cfg.Progress()-r.nInit >= r.maxEv; atBound {
		base := cfg.Progress()
		scratch = cfg.Expand(scratch[:0])
		for i, s := range scratch {
			scratch[i] = nil
			if s.Progress() > base {
				continue // memory step: suppressed by the bound
			}
			if !emit(s, 0) {
				break
			}
		}
		return scratch[:0], complete
	}
	if r.opts.POR && forEachReducedSucc(cfg, sl, emit) {
		return scratch, complete
	}
	scratch = cfg.Expand(scratch[:0])
	for i, s := range scratch {
		scratch[i] = nil // release for GC once admitted
		if !emit(s, 0) {
			break
		}
	}
	return scratch[:0], complete
}

// process claims and expands one item, isolating panics from model
// code: a panic is captured as a repro artifact (the entry stays
// claimed) and the worker moves on — the rest of the search finishes
// in degraded mode. An expansion aborted by a stop signal or budget
// rejection is unclaimed and re-queued so the frontier stays sound.
func (r *run) process(it item, scratch *[]model.Config) {
	d, sl, live := r.claim(it)
	if !live {
		return
	}
	completed := false
	defer func() {
		if v := recover(); v != nil {
			r.recordPanic(it, d, v)
			return
		}
		if !completed {
			r.unclaim(it)
			r.pool.push(it)
		}
	}()
	if r.opts.Hooks != nil {
		r.opts.Hooks.BeforeExpand(it.fp, int(d))
	}
	*scratch, completed = r.expand(it.cfg, d, sl, *scratch)
}

func (r *run) worker() {
	var scratch []model.Config
	for {
		it, ok := r.pool.pop()
		if !ok {
			return
		}
		if r.stop.Load() != 0 {
			// A stop signal raced past the pool flag (e.g. it fired in
			// the narrow window of a checkpoint resume): hand the item
			// back untouched, re-stop and exit.
			r.pool.push(it)
			r.pool.done()
			r.pool.stop()
			return
		}
		r.process(it, &scratch)
		r.pool.done()
	}
}

// runWorkers runs one pool-draining leg: the workers exit when the
// pool quiesces or a stop signal drains it.
func (r *run) runWorkers() {
	if w := r.opts.workers(); w <= 1 {
		// Serial is the same engine with the one worker run inline:
		// the FIFO pool makes the search breadth-first and the
		// truncated prefix deterministic.
		r.worker()
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < r.opts.workers(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.worker()
		}()
	}
	wg.Wait()
}

// execute drives worker legs until quiescence or a real stop,
// suspending and resuming around periodic checkpoints. The budget
// monitor (if any budget is set) runs across all legs.
func (r *run) execute() {
	var monDone chan struct{}
	if r.needMonitor() {
		monDone = make(chan struct{})
		go r.monitor(monDone)
	}
	for {
		r.runWorkers()
		if StopCause(r.stop.Load()) != stopCheckpoint {
			break
		}
		// Periodic checkpoint: the pool is suspended and every entry
		// is either fully expanded or back on the queue, so the
		// snapshot is a consistent cut of the search.
		if err := r.writeCheckpoint(); err != nil && r.ckErr == nil {
			r.ckErr = err
		}
		// A real cause may have fired during the suspension: adopt it
		// instead of resuming. stopWith cannot overwrite the live
		// stopCheckpoint signal, so requested is the one place a raced
		// cause can be.
		if req := r.requested.Load(); req != 0 {
			r.stop.Store(req)
			break
		}
		r.stop.Store(0)
		if req := r.requested.Load(); req != 0 {
			// stopWith raced into the cleared window; re-adopt.
			r.stop.Store(req)
			break
		}
		r.pool.resume()
	}
	if monDone != nil {
		close(monDone)
	}
	if r.opts.CheckpointPath != "" && r.wantFinalCheckpoint() {
		if err := r.writeCheckpoint(); err != nil && r.ckErr == nil {
			r.ckErr = err
		}
	}
}

// wantFinalCheckpoint decides whether the end-of-run checkpoint is
// written: always, unless CheckpointOnCut restricts it to runs that
// ended with resumable unexpanded work (a budget/cancellation stop or
// isolated panics). Quiescent and violated runs are then skipped —
// their verdict is final and a resume would be a no-op.
func (r *run) wantFinalCheckpoint() bool {
	if !r.opts.CheckpointOnCut {
		return true
	}
	switch StopCause(r.requested.Load()) {
	case StopMaxConfigs, StopDeadline, StopCancelled, StopMemory:
		return true
	}
	return len(r.panics) > 0
}

// finalize computes the Result after all workers have exited.
func (r *run) finalize() Result {
	var res Result
	res.Explored = int(r.explored.Load())
	res.Terminated = int(r.terminated.Load())
	res.Truncated = r.truncated.Load()
	if v := r.violation.Load(); v != nil {
		res.Violation = *v
	}
	res.Stop = StopCause(r.requested.Load())
	res.Panics = r.panics
	res.CheckpointErr = r.ckErr
	res.FingerprintCollisions = int(r.collisions.Load())
	res.ClosureMismatches = int(r.mismatches.Load())
	res.ShardDepths = make([]int, numShards)
	for i := range r.shards {
		sh := &r.shards[i]
		scan := func(e *entry) {
			if int(e.depth) > res.ShardDepths[i] {
				res.ShardDepths[i] = int(e.depth)
			}
		}
		if r.opts.CheckCollisions {
			for _, e := range sh.byKey {
				scan(e)
			}
		} else {
			for _, e := range sh.byFP {
				scan(e)
			}
		}
		if res.ShardDepths[i] > res.Depth {
			res.Depth = res.ShardDepths[i]
		}
	}
	res.Frontier = len(r.frontierItems())
	switch {
	case res.Violation != nil:
		res.Verdict = VerdictViolated
	case res.Stop != StopNone || len(res.Panics) > 0:
		res.Verdict = VerdictBounded
	default:
		res.Verdict = VerdictProved
	}
	return res
}

// frontierItems returns the configurations admitted but not fully
// expanded, deduplicated by fingerprint: the queue remainder (minus
// stale re-queues) plus panicked configurations. Only called after
// the workers have exited — it reads the pool and shards unlocked.
func (r *run) frontierItems() []item {
	seen := make(map[fingerprint.FP]bool)
	var out []item
	add := func(it item) {
		if seen[it.fp] {
			return
		}
		sh := r.shardOf(it.fp)
		e := sh.lookup(it, r.opts.CheckCollisions)
		if e == nil || !e.expandable {
			return
		}
		seen[it.fp] = true
		out = append(out, it)
	}
	for _, it := range r.pool.queue[r.pool.head:] {
		sh := r.shardOf(it.fp)
		if e := sh.lookup(it, r.opts.CheckCollisions); e != nil && e.expanded() {
			continue // stale re-queue
		}
		add(it)
	}
	// Panicked configurations stay claimed in the live run (no retry),
	// but they are unexpanded work: a resume retries them.
	for _, it := range r.panicItems {
		add(it)
	}
	return out
}

// Trace is a witness path through the state space.
type Trace struct {
	Configs []model.Config
}

// Describe renders the trace step by step: for each transition, the
// model's label for it (the event added under RAR, the store entry
// written under SC, τ otherwise) and the resulting per-thread residual
// programs.
func (tr Trace) Describe() string {
	var b []byte
	appendLine := func(s string) { b = append(b, s...); b = append(b, '\n') }
	for i, c := range tr.Configs {
		if i == 0 {
			appendLine("start: " + c.Program().String())
			continue
		}
		label := c.DeltaLabel(tr.Configs[i-1])
		appendLine(fmt.Sprintf("%3d. %-22s %s", i, label, c.Program()))
	}
	return string(b)
}

// FindTrace searches (serially, breadth-first, always without
// partial-order reduction — a witness search must see every
// intermediate configuration) for a configuration satisfying pred and
// returns the shortest witness trace to it. found is false when no
// such configuration exists within the bounds.
func FindTrace(c model.Config, opts Options, pred func(model.Config) bool) (Trace, bool) {
	nInit := c.Progress()
	maxEv := opts.maxEvents()
	maxCfg := opts.maxConfigs()

	type node struct {
		cfg    model.Config
		parent int
	}
	nodes := []node{{cfg: c, parent: -1}}
	seen := map[fingerprint.FP]bool{c.Fingerprint(): true}

	mk := func(i int) Trace {
		var rev []model.Config
		for j := i; j >= 0; j = nodes[j].parent {
			rev = append(rev, nodes[j].cfg)
		}
		out := Trace{Configs: make([]model.Config, 0, len(rev))}
		for k := len(rev) - 1; k >= 0; k-- {
			out.Configs = append(out.Configs, rev[k])
		}
		return out
	}

	var succ []model.Config
	for i := 0; i < len(nodes); i++ {
		n := nodes[i]
		if pred(n.cfg) {
			return mk(i), true
		}
		if len(nodes) >= maxCfg {
			continue
		}
		// Like the engine, at the progress bound only silent
		// successors are followed (memory steps are suppressed, silent
		// chains drain), so the witness search sees the same bounded
		// graph as Run.
		atBound := n.cfg.Progress()-nInit >= maxEv
		succ = n.cfg.Expand(succ[:0])
		for _, s := range succ {
			if atBound && s.Progress() > n.cfg.Progress() {
				continue
			}
			k := s.Fingerprint()
			if seen[k] {
				continue
			}
			seen[k] = true
			nodes = append(nodes, node{cfg: s, parent: i})
		}
	}
	return Trace{}, false
}

// Outcomes explores to termination and returns the multiplicity-free
// set of summaries of terminated configurations, as produced by
// summarise. Terminated configurations are preserved by the
// partial-order reduction, so Outcomes is reduction-safe: opts.POR
// changes the work, not the answer. A budget-cut run yields a partial
// set; inspect Run's Result directly when that matters.
func Outcomes(c model.Config, opts Options, summarise func(model.Config) string) map[string]bool {
	out := map[string]bool{}
	var mu sync.Mutex
	o := opts
	o.Property = func(cfg model.Config) bool {
		if cfg.Terminated() {
			key := summarise(cfg)
			mu.Lock()
			out[key] = true
			mu.Unlock()
		}
		return true
	}
	Run(c, o)
	return out
}
