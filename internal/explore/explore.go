// Package explore is a bounded explicit-state model checker, generic
// over the pluggable memory models of internal/model (the RAR
// semantics of internal/core, the SC semantics of internal/sc). It
// enumerates the configurations reachable from an initial one,
// deduplicating by canonical 128-bit configuration fingerprints, and
// checks safety properties at every state. Under the RAR backend,
// programs with loops have unbounded executions (each loop iteration
// appends read events), so exploration is bounded by the model's
// Progress measure; within that bound the search is exhaustive. Under
// SC the configuration space is finite and MaxConfigs alone bounds it.
//
// With Options.POR the search applies independence-based partial-order
// reduction (por.go): a persistent-set heuristic expands only a subset
// of the enabled threads where one is provably conflict-free (by the
// model's StepsCommute oracle and static program footprints), and
// sleep sets prune commuting interleavings that are covered elsewhere.
// The reduced search preserves every terminated configuration and all
// label-visible interleavings, but not every intermediate
// configuration; CheckPOR (audit.go) diffs a reduced against a full
// search.
//
// There is exactly one engine: a sharded, barrier-free search in which
// workers pull configurations from a shared pool and push successors
// as they find them, deduplicating through a seen-set sharded by
// fingerprint bits. Serial exploration is the same engine at
// Workers=1 (the single worker drains the FIFO pool in breadth-first
// order, so a state's recorded depth is its shortest distance from the
// root, exactly like the dedicated serial engine this replaced). With
// more workers, discovery order is nondeterministic, so a state may
// first be reached along a non-shortest path; when a shorter path is
// found later the state's depth is relaxed and — if it was already
// expanded — it is re-queued so the improvement propagates. Sleep
// masks relax the same way, by intersection: re-reaching a known state
// with a smaller sleep set weakens the stored mask and re-queues the
// state. Both relaxations are monotone, so at quiescence every state
// carries its shortest-path depth and its final (smallest) sleep mask,
// making Explored, Terminated, Depth and the Truncated flag identical
// across worker counts whenever the search runs to completion (no
// budget cut, no early property exit) — with or without POR, for
// every backend.
//
// The engine is resource-governed (budget.go): wall-clock deadlines,
// context cancellation, state and memory budgets all cut the search at
// a safe point and yield a sound partial Result with a tri-state
// Verdict; worker panics in model code are isolated per configuration
// while the remaining shards finish in degraded mode; and a search can
// periodically checkpoint its seen-set and frontier to disk and later
// resume (checkpoint.go), provably reaching the same fixpoint as an
// uninterrupted run — the relaxation fixpoint is monotone and
// re-admission idempotent, so where the search stopped does not matter.
package explore

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// Options bounds and configures an exploration.
type Options struct {
	// MaxEvents bounds the model's Progress measure per state
	// (non-initialising events under RAR; SC configurations make no
	// progress and are unbounded here); configurations at the bound
	// are not expanded further. Zero means 24.
	MaxEvents int
	// MaxConfigs bounds the number of distinct configurations
	// explored; once reached, no further configurations are admitted,
	// the search stops with StopMaxConfigs and the configuration whose
	// expansion was rejected stays on the frontier (so a resumed run
	// with a larger budget loses nothing). When the cap cuts a
	// parallel search, *which* configurations were admitted depends on
	// scheduling, so Terminated and Depth (unlike Explored and
	// Truncated) may vary between runs; use Workers 1 for a
	// deterministic truncated prefix.
	MaxConfigs int
	// Workers sets the parallelism; 0 means GOMAXPROCS, 1 is serial.
	Workers int
	// POR enables independence-based partial-order reduction: sleep
	// sets plus a persistent-set heuristic driven by the model's
	// per-step commutation oracle (see por.go). The reduced search
	// reaches every terminated configuration of the full search and
	// preserves interleavings around labelled program points, but
	// skips intermediate configurations whose interleavings commute —
	// a Property that inspects arbitrary state components may
	// therefore miss violations that only occur at skipped
	// configurations (a reported violation is always real). CheckPOR
	// audits a workload's reduced search against its full search.
	POR bool
	// Property, when non-nil, is evaluated once at every distinct
	// reachable configuration; the first configuration where it
	// returns false is reported as a violation and stops the search.
	// With Workers > 1 the property is called concurrently from
	// multiple workers and must be safe for concurrent use.
	Property func(model.Config) bool
	// TypedProperty is the monomorphised form of Property: a
	// func(C) bool where C is the concrete configuration type of the
	// backend being explored (core.Config or sc.Config). When set it
	// replaces Property on the hot path, sparing the engine one
	// interface boxing per explored configuration. Setting it with a
	// function type that does not match the backend is a programming
	// error and panics — a silently ignored property would turn
	// violations into spurious PROVED verdicts. The same concurrency
	// contract as Property applies.
	TypedProperty any

	// Context, when non-nil, cancels the search: when it is done the
	// engine stops with StopCancelled and returns a sound partial
	// Result.
	Context context.Context
	// Timeout, when positive, bounds the wall-clock time of the
	// search relative to its start; Deadline, when non-zero, bounds it
	// absolutely. The earlier of the two applies; exceeding it stops
	// the search with StopDeadline.
	Timeout time.Duration
	// Deadline is the absolute form of Timeout.
	Deadline time.Time
	// MaxMemBytes, when positive, bounds the process heap: a watcher
	// polls runtime.MemStats every MemPoll and stops the search with
	// StopMemory when HeapAlloc exceeds the bound. The bound is
	// process-global and advisory (polling can overshoot by up to one
	// interval of allocation).
	MaxMemBytes uint64
	// MemPoll is the MemStats polling interval; zero means 25ms.
	MemPoll time.Duration
	// Hooks, when non-nil, observes the engine on the expansion path
	// (see Hooks); internal/faultinject implements it to inject worker
	// panics, latency and allocation pressure.
	Hooks Hooks
	// Metrics, when non-nil, receives engine counters through
	// per-worker telemetry cells — expansions, successors, admissions,
	// fingerprint dedup hits, POR-pruned steps, arena recycles,
	// checkpoint writes — plus live frontier and max-depth gauges.
	// Build it with telemetry.NewEngineRegistry; snapshot it during or
	// after the search (the registry is safe for concurrent use and
	// may be shared across searches, accumulating totals). When nil,
	// all metric accounting is disabled and the hot path takes only
	// nil-check branches: zero added allocations, enforced by the
	// perfgate CI job.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, receives structured JSONL trace records:
	// search and worker lifecycle spans, periodic expansion-batch
	// counter samples, and stop/checkpoint/panic instants. The stream
	// converts to Chrome trace_event format via cmd/c11trace. Tracing
	// is deliberately coarse (never per-successor), so it stays cheap
	// on large searches. Nil disables it.
	Tracer *telemetry.Tracer
	// CheckpointPath, when non-empty, makes the engine write a
	// checkpoint of the sharded seen-set and frontier to this path
	// when the search ends (for whatever cause), atomically via a
	// temp-file rename. With CheckpointEvery > 0 the engine also
	// suspends periodically and snapshots mid-search. Resume continues
	// a checkpointed search and provably reaches the same fixpoint as
	// an uninterrupted run. Incompatible with CheckCollisions (the
	// exact-key seen-set is not serialised).
	CheckpointPath string
	// CheckpointEvery is the periodic checkpoint interval; zero means
	// only the final checkpoint is written.
	CheckpointEvery time.Duration
	// CheckpointOnCut, when true, suppresses the final checkpoint
	// unless the search was actually cut short with unexpanded work —
	// a budget stop, a cancellation, or isolated panics. A run that
	// reached quiescence or a definite violation has nothing a resume
	// could add, so callers that checkpoint only as a drain/crash
	// safety net (the verification service) skip the serialisation
	// cost on every clean completion. Periodic checkpoints
	// (CheckpointEvery) are unaffected.
	CheckpointOnCut bool
	// CheckpointExtra, when non-nil, contributes an opaque caller blob
	// to every checkpoint written (periodic and final). It is called
	// at the checkpoint's quiescent cut — no workers are running — so
	// it may read state the Property mutates without extra locking.
	// Resume hands the blob back through ResumeExtra; the engine never
	// interprets it. Callers use it to persist search-adjacent state
	// the seen-set cannot reconstruct (e.g. the outcome set a property
	// accumulated before the interruption).
	CheckpointExtra func() []byte
	// ResumeExtra, when non-nil, receives the CheckpointExtra blob of
	// the checkpoint being resumed (nil when the checkpoint carried
	// none) before exploration continues.
	ResumeExtra func([]byte)

	// CheckCollisions switches deduplication to the exact canonical
	// string keys (model.Config.Key) and audits the fingerprints
	// against them, counting distinct keys whose 128-bit fingerprints
	// coincide in Result.FingerprintCollisions. This is a debug mode:
	// it restores the allocation-heavy slow path the fingerprints
	// replaced.
	CheckCollisions bool
	// CheckIncremental audits the model's incrementally maintained
	// derived structures: at every admitted configuration
	// model.Config.AuditIncremental recomputes them from first
	// principles, and the number of disagreements accumulates in
	// Result.ClosureMismatches. Under the RAR backend this restores
	// the from-scratch Floyd–Warshall cost per state (hb/eco/comb
	// closures, observability sets, indexes); under SC it re-hashes
	// the store. The expected mismatch count is always zero.
	CheckIncremental bool

	// collect, when non-nil, observes every admitted configuration's
	// fingerprint and whether it is terminated. Used by CheckPOR to
	// gather reachable sets; must be safe for concurrent use when
	// Workers > 1. On Resume it is replayed over the checkpointed
	// seen-set before exploration continues.
	collect func(fp fingerprint.FP, terminated bool)
}

func (o Options) maxEvents() int {
	if o.MaxEvents <= 0 {
		return 24
	}
	return o.MaxEvents
}

func (o Options) maxConfigs() int {
	if o.MaxConfigs <= 0 {
		return 1 << 20
	}
	return o.MaxConfigs
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result summarises an exploration.
type Result struct {
	// Verdict is the tri-state outcome: PROVED (space exhausted within
	// the progress bound, no violation), VIOLATED (violation found) or
	// BOUNDED (a resource budget cut the search or panics degraded
	// it). A degraded or budget-cut search never reports PROVED.
	Verdict Verdict
	// Stop records which budget (if any) stopped the search.
	Stop StopCause
	// Explored counts distinct configurations visited.
	Explored int
	// Terminated counts configurations where every thread has
	// terminated.
	Terminated int
	// Truncated reports whether the progress or configuration bound
	// cut the search (so absence of a violation is relative to the
	// bound).
	Truncated bool
	// Violation is a configuration falsifying the property, nil if
	// none was found. It is always a really-reached configuration —
	// replayable by FindTrace with no budget — whatever budgets were
	// in force.
	Violation model.Config
	// Depth is the maximum over explored configurations of the
	// shortest transition distance from the initial configuration
	// (under POR: the shortest distance in the reduced graph).
	Depth int
	// Frontier counts configurations admitted but not yet (fully)
	// expanded when the search ended: zero at quiescence, positive
	// after a budget cut. Together with Explored it is the coverage
	// statistic of a partial result.
	Frontier int
	// ShardDepths is the per-shard maximum depth (numShards entries),
	// the coverage profile of the sharded seen-set.
	ShardDepths []int
	// Panics holds one repro artifact per isolated worker panic; the
	// rest of the search continued in degraded mode.
	Panics []PanicRecord
	// CheckpointErr reports a failure to write a requested checkpoint
	// (the exploration result itself is unaffected).
	CheckpointErr error
	// FingerprintCollisions counts distinct canonical keys that
	// shared a fingerprint; only populated under CheckCollisions.
	FingerprintCollisions int
	// ClosureMismatches counts disagreements between the model's
	// incrementally maintained structures and their from-scratch
	// recomputation across all admitted configurations; only
	// populated under CheckIncremental.
	ClosureMismatches int
}

// Trace is a witness path through the state space.
type Trace struct {
	Configs []model.Config
}

// Describe renders the trace step by step: for each transition, the
// model's label for it (the event added under RAR, the store entry
// written under SC, τ otherwise) and the resulting per-thread residual
// programs.
func (tr Trace) Describe() string {
	var b []byte
	appendLine := func(s string) { b = append(b, s...); b = append(b, '\n') }
	for i, c := range tr.Configs {
		if i == 0 {
			appendLine("start: " + c.Program().String())
			continue
		}
		label := c.DeltaLabel(tr.Configs[i-1])
		appendLine(fmt.Sprintf("%3d. %-22s %s", i, label, c.Program()))
	}
	return string(b)
}

// FindTrace searches (serially, breadth-first, always without
// partial-order reduction — a witness search must see every
// intermediate configuration) for a configuration satisfying pred and
// returns the shortest witness trace to it. found is false when no
// such configuration exists within the bounds.
func FindTrace(c model.Config, opts Options, pred func(model.Config) bool) (Trace, bool) {
	nInit := c.Progress()
	maxEv := opts.maxEvents()
	maxCfg := opts.maxConfigs()

	type node struct {
		cfg    model.Config
		parent int
	}
	nodes := []node{{cfg: c, parent: -1}}
	seen := map[fingerprint.FP]bool{c.Fingerprint(): true}

	mk := func(i int) Trace {
		var rev []model.Config
		for j := i; j >= 0; j = nodes[j].parent {
			rev = append(rev, nodes[j].cfg)
		}
		out := Trace{Configs: make([]model.Config, 0, len(rev))}
		for k := len(rev) - 1; k >= 0; k-- {
			out.Configs = append(out.Configs, rev[k])
		}
		return out
	}

	var succ []model.Config
	for i := 0; i < len(nodes); i++ {
		n := nodes[i]
		if pred(n.cfg) {
			return mk(i), true
		}
		if len(nodes) >= maxCfg {
			continue
		}
		// Like the engine, at the progress bound only silent
		// successors are followed (memory steps are suppressed, silent
		// chains drain), so the witness search sees the same bounded
		// graph as Run.
		atBound := n.cfg.Progress()-nInit >= maxEv
		succ = n.cfg.Expand(succ[:0])
		for _, s := range succ {
			if atBound && s.Progress() > n.cfg.Progress() {
				continue
			}
			k := s.Fingerprint()
			if seen[k] {
				continue
			}
			seen[k] = true
			nodes = append(nodes, node{cfg: s, parent: i})
		}
	}
	return Trace{}, false
}

// Outcomes explores to termination and returns the multiplicity-free
// set of summaries of terminated configurations, as produced by
// summarise. Terminated configurations are preserved by the
// partial-order reduction, so Outcomes is reduction-safe: opts.POR
// changes the work, not the answer. A budget-cut run yields a partial
// set; inspect Run's Result directly when that matters.
func Outcomes(c model.Config, opts Options, summarise func(model.Config) string) map[string]bool {
	out := map[string]bool{}
	var mu sync.Mutex
	o := opts
	o.Property = func(cfg model.Config) bool {
		if cfg.Terminated() {
			key := summarise(cfg)
			mu.Lock()
			out[key] = true
			mu.Unlock()
		}
		return true
	}
	Run(c, o)
	return out
}
