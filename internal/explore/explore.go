// Package explore is a bounded explicit-state model checker, generic
// over the pluggable memory models of internal/model (the RAR
// semantics of internal/core, the SC semantics of internal/sc). It
// enumerates the configurations reachable from an initial one,
// deduplicating by canonical 128-bit configuration fingerprints, and
// checks safety properties at every state. Under the RAR backend,
// programs with loops have unbounded executions (each loop iteration
// appends read events), so exploration is bounded by the model's
// Progress measure; within that bound the search is exhaustive. Under
// SC the configuration space is finite and MaxConfigs alone bounds it.
//
// With Options.POR the search applies independence-based partial-order
// reduction (por.go): a persistent-set heuristic expands only a subset
// of the enabled threads where one is provably conflict-free (by the
// model's StepsCommute oracle and static program footprints), and
// sleep sets prune commuting interleavings that are covered elsewhere.
// The reduced search preserves every terminated configuration and all
// label-visible interleavings, but not every intermediate
// configuration; CheckPOR (audit.go) diffs a reduced against a full
// search.
//
// There is exactly one engine: a sharded, barrier-free search in which
// workers pull configurations from a shared pool and push successors
// as they find them, deduplicating through a seen-set sharded by
// fingerprint bits. Serial exploration is the same engine at
// Workers=1 (the single worker drains the FIFO pool in breadth-first
// order, so a state's recorded depth is its shortest distance from the
// root, exactly like the dedicated serial engine this replaced). With
// more workers, discovery order is nondeterministic, so a state may
// first be reached along a non-shortest path; when a shorter path is
// found later the state's depth is relaxed and — if it was already
// expanded — it is re-queued so the improvement propagates. Sleep
// masks relax the same way, by intersection: re-reaching a known state
// with a smaller sleep set weakens the stored mask and re-queues the
// state. Both relaxations are monotone, so at quiescence every state
// carries its shortest-path depth and its final (smallest) sleep mask,
// making Explored, Terminated, Depth and the Truncated flag identical
// across worker counts whenever the search runs to completion (no
// MaxConfigs cut, no early property exit) — with or without POR, for
// every backend.
package explore

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/fingerprint"
	"repro/internal/model"
)

// Options bounds and configures an exploration.
type Options struct {
	// MaxEvents bounds the model's Progress measure per state
	// (non-initialising events under RAR; SC configurations make no
	// progress and are unbounded here); configurations at the bound
	// are not expanded further. Zero means 24.
	MaxEvents int
	// MaxConfigs bounds the number of distinct configurations
	// explored; once reached, no further configurations are admitted
	// and the search is reported truncated. Zero means 1 << 20. When
	// the cap cuts a parallel search, *which* configurations were
	// admitted depends on scheduling, so Terminated and Depth (unlike
	// Explored and Truncated) may vary between runs; use Workers 1
	// for a deterministic truncated prefix.
	MaxConfigs int
	// Workers sets the parallelism; 0 means GOMAXPROCS, 1 is serial.
	Workers int
	// POR enables independence-based partial-order reduction: sleep
	// sets plus a persistent-set heuristic driven by the model's
	// per-step commutation oracle (see por.go). The reduced search
	// reaches every terminated configuration of the full search and
	// preserves interleavings around labelled program points, but
	// skips intermediate configurations whose interleavings commute —
	// a Property that inspects arbitrary state components may
	// therefore miss violations that only occur at skipped
	// configurations (a reported violation is always real). CheckPOR
	// audits a workload's reduced search against its full search.
	POR bool
	// Property, when non-nil, is evaluated once at every distinct
	// reachable configuration; the first configuration where it
	// returns false is reported as a violation and stops the search.
	// With Workers > 1 the property is called concurrently from
	// multiple workers and must be safe for concurrent use.
	Property func(model.Config) bool
	// CheckCollisions switches deduplication to the exact canonical
	// string keys (model.Config.Key) and audits the fingerprints
	// against them, counting distinct keys whose 128-bit fingerprints
	// coincide in Result.FingerprintCollisions. This is a debug mode:
	// it restores the allocation-heavy slow path the fingerprints
	// replaced.
	CheckCollisions bool
	// CheckIncremental audits the model's incrementally maintained
	// derived structures: at every admitted configuration
	// model.Config.AuditIncremental recomputes them from first
	// principles, and the number of disagreements accumulates in
	// Result.ClosureMismatches. Under the RAR backend this restores
	// the from-scratch Floyd–Warshall cost per state (hb/eco/comb
	// closures, observability sets, indexes); under SC it re-hashes
	// the store. The expected mismatch count is always zero.
	CheckIncremental bool

	// collect, when non-nil, observes every admitted configuration's
	// fingerprint and whether it is terminated. Used by CheckPOR to
	// gather reachable sets; must be safe for concurrent use when
	// Workers > 1.
	collect func(fp fingerprint.FP, terminated bool)
}

func (o Options) maxEvents() int {
	if o.MaxEvents <= 0 {
		return 24
	}
	return o.MaxEvents
}

func (o Options) maxConfigs() int {
	if o.MaxConfigs <= 0 {
		return 1 << 20
	}
	return o.MaxConfigs
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result summarises an exploration.
type Result struct {
	// Explored counts distinct configurations visited.
	Explored int
	// Terminated counts configurations where every thread has
	// terminated.
	Terminated int
	// Truncated reports whether the progress or configuration bound
	// cut the search (so absence of a violation is relative to the
	// bound).
	Truncated bool
	// Violation is a configuration falsifying the property, nil if
	// none was found.
	Violation model.Config
	// Depth is the maximum over explored configurations of the
	// shortest transition distance from the initial configuration
	// (under POR: the shortest distance in the reduced graph).
	Depth int
	// FingerprintCollisions counts distinct canonical keys that
	// shared a fingerprint; only populated under CheckCollisions.
	FingerprintCollisions int
	// ClosureMismatches counts disagreements between the model's
	// incrementally maintained structures and their from-scratch
	// recomputation across all admitted configurations; only
	// populated under CheckIncremental.
	ClosureMismatches int
}

// Run explores the state space of c under the given options.
func Run(c model.Config, opts Options) Result {
	r := &run{
		opts:   opts,
		nInit:  c.Progress(),
		maxEv:  opts.maxEvents(),
		maxCfg: opts.maxConfigs(),
	}
	r.pool.cond = sync.NewCond(&r.pool.mu)
	for i := range r.shards {
		if opts.CheckCollisions {
			r.shards[i].byKey = make(map[string]*entry)
			r.shards[i].fpOf = make(map[fingerprint.FP]string)
		} else {
			r.shards[i].byFP = make(map[fingerprint.FP]*entry)
		}
	}

	r.admit(c, 0, 0)
	if w := opts.workers(); w <= 1 {
		// Serial is the same engine with the one worker run inline:
		// the FIFO pool makes the search breadth-first and the
		// truncated prefix deterministic.
		r.worker()
	} else {
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				r.worker()
			}()
		}
		wg.Wait()
	}

	var res Result
	res.Explored = int(r.explored.Load())
	res.Terminated = int(r.terminated.Load())
	res.Truncated = r.truncated.Load()
	if v := r.violation.Load(); v != nil {
		res.Violation = *v
	}
	res.FingerprintCollisions = int(r.collisions.Load())
	res.ClosureMismatches = int(r.mismatches.Load())
	for i := range r.shards {
		sh := &r.shards[i]
		if opts.CheckCollisions {
			for _, e := range sh.byKey {
				if int(e.depth) > res.Depth {
					res.Depth = int(e.depth)
				}
			}
		} else {
			for _, e := range sh.byFP {
				if int(e.depth) > res.Depth {
					res.Depth = int(e.depth)
				}
			}
		}
	}
	return res
}

// entry is one seen-set record: the best depth and smallest sleep mask
// the configuration has been reached with, and the values it was last
// expanded at (expandedAt -1 if never). Non-expandable configurations
// (terminated or at the progress bound) only track depth.
type entry struct {
	depth         int32
	expandedAt    int32
	sleep         threadMask
	expandedSleep threadMask
	expandable    bool
}

// relax folds a re-discovery at depth d with sleep mask sleep into
// the entry and reports whether the entry must be re-expanded: its
// depth or sleep mask improved below what it was last expanded with.
func (e *entry) relax(d int32, sleep threadMask) (requeue bool) {
	if d < e.depth {
		e.depth = d
		requeue = e.expandable && e.expandedAt >= 0 && e.expandedAt > d
	}
	if ns := e.sleep & sleep; ns != e.sleep {
		e.sleep = ns
		requeue = requeue || (e.expandable && e.expandedAt >= 0 && e.expandedSleep&^ns != 0)
	}
	return requeue
}

// expanded reports whether the entry has already been expanded at its
// current best depth and with a sleep mask no larger than the current
// one (so a queued item for it is stale).
func (e *entry) expanded() bool {
	return e.expandedAt >= 0 && e.expandedAt <= e.depth && e.expandedSleep&^e.sleep == 0
}

const numShards = 64

type shard struct {
	mu   sync.Mutex
	byFP map[fingerprint.FP]*entry
	// Collision-check mode state (nil otherwise).
	byKey map[string]*entry
	fpOf  map[fingerprint.FP]string
}

type item struct {
	cfg model.Config
	fp  fingerprint.FP
	key string // only set under CheckCollisions
}

// pool is the shared work pool: a FIFO of discovered configurations
// plus the in-flight counter that detects quiescence.
type pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []item
	head    int
	pending int // queued + currently-processing items
	stopped bool
}

func (p *pool) push(it item) {
	p.mu.Lock()
	p.pending++
	p.queue = append(p.queue, it)
	p.mu.Unlock()
	p.cond.Signal()
}

// pop blocks until an item is available, the pool quiesces, or the
// search is stopped. ok=false means the worker should exit.
func (p *pool) pop() (item, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.head == len(p.queue) && p.pending > 0 && !p.stopped {
		p.cond.Wait()
	}
	if p.stopped || p.head == len(p.queue) {
		return item{}, false
	}
	it := p.queue[p.head]
	p.queue[p.head] = item{} // release the config for GC
	p.head++
	// Keep the backing array proportional to the live frontier.
	if p.head > 1024 && p.head > len(p.queue)/2 {
		n := copy(p.queue, p.queue[p.head:])
		p.queue = p.queue[:n]
		p.head = 0
	}
	return it, true
}

func (p *pool) done() {
	p.mu.Lock()
	p.pending--
	quiesced := p.pending == 0
	p.mu.Unlock()
	if quiesced {
		p.cond.Broadcast()
	}
}

func (p *pool) stop() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

type run struct {
	opts   Options
	nInit  int
	maxEv  int
	maxCfg int

	shards [numShards]shard
	pool   pool

	explored   atomic.Int64
	terminated atomic.Int64
	truncated  atomic.Bool
	collisions atomic.Int64
	mismatches atomic.Int64
	violation  atomic.Pointer[model.Config]
}

func (r *run) shardOf(fp fingerprint.FP) *shard {
	return &r.shards[fp.Lo%numShards]
}

// admit deduplicates and registers cfg at depth d with sleep mask
// sleep, updating counters and queueing it when expandable.
// Re-discoveries at a shorter depth or with a smaller sleep mask relax
// the recorded values and re-queue already-expanded entries so the
// improvements propagate.
func (r *run) admit(cfg model.Config, d int32, sleep threadMask) {
	fp := cfg.Fingerprint()
	var key string
	if r.opts.CheckCollisions {
		key = cfg.Key()
	}
	sh := r.shardOf(fp)

	sh.mu.Lock()
	var e *entry
	if r.opts.CheckCollisions {
		e = sh.byKey[key]
	} else {
		e = sh.byFP[fp]
	}
	if e != nil {
		// Known configuration: relax depth and sleep mask.
		requeue := e.relax(d, sleep)
		sh.mu.Unlock()
		if requeue {
			r.pool.push(item{cfg: cfg, fp: fp, key: key})
		}
		return
	}
	// Fresh configuration: honour the MaxConfigs admission cap.
	n := r.explored.Add(1)
	if int(n) > r.maxCfg {
		r.explored.Add(-1)
		r.truncated.Store(true)
		sh.mu.Unlock()
		// The cap has both filled and rejected an admission: no
		// further expansion can change any result field (fresh
		// successors are rejected before the property runs,
		// duplicates only relax metadata), so the remaining work is
		// abandoned.
		r.pool.stop()
		return
	}
	term := cfg.Terminated()
	atBound := cfg.Progress()-r.nInit >= r.maxEv
	// Configurations at the progress bound stay expandable: their
	// memory successors are suppressed (expand filters them), but
	// silent steps add no events and must keep draining — otherwise
	// whether a terminated configuration at exactly the bound is found
	// would depend on which interleaving the search (full or reduced)
	// happens to take to it, since only some orders leave silent steps
	// for last. Draining makes the bounded terminated set a function
	// of the bound alone, which the POR and worker audits rely on.
	e = &entry{depth: d, expandedAt: -1, sleep: sleep, expandable: !term}
	if r.opts.CheckCollisions {
		sh.byKey[key] = e
		// Audit once per distinct canonical key.
		if prev, ok := sh.fpOf[fp]; ok {
			if prev != key {
				r.collisions.Add(1)
			}
		} else {
			sh.fpOf[fp] = key
		}
	} else {
		sh.byFP[fp] = e
	}
	sh.mu.Unlock()

	if term {
		r.terminated.Add(1)
	} else if atBound {
		r.truncated.Store(true)
	}
	// The hooks run outside every lock, like the property: the audit
	// only touches the admitted configuration's own state, and the
	// collector is documented as concurrently callable.
	if r.opts.collect != nil {
		r.opts.collect(fp, term)
	}
	if r.opts.CheckIncremental {
		if bad := cfg.AuditIncremental(); len(bad) > 0 {
			r.mismatches.Add(int64(len(bad)))
		}
	}
	// The property runs outside every lock; it may be expensive and is
	// documented as concurrently callable.
	if r.opts.Property != nil && !r.opts.Property(cfg) {
		c := cfg
		r.violation.CompareAndSwap(nil, &c)
		r.pool.stop()
		return
	}
	if e.expandable {
		r.pool.push(item{cfg: cfg, fp: fp, key: key})
	}
}

// claim marks it as being expanded and returns the depth and sleep
// mask to expand at, or ok=false when the entry has already been
// expanded at its current best depth and sleep mask (a stale
// re-queue).
func (r *run) claim(it item) (int32, threadMask, bool) {
	sh := r.shardOf(it.fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var e *entry
	if r.opts.CheckCollisions {
		e = sh.byKey[it.key]
	} else {
		e = sh.byFP[it.fp]
	}
	if e == nil || e.expanded() {
		return 0, 0, false
	}
	e.expandedAt = e.depth
	e.expandedSleep = e.sleep
	return e.depth, e.sleep, true
}

// expand generates the successors of cfg at depth d under sleep mask
// sl, applying the POR plan when enabled. At the progress bound only
// silent successors (same Progress) are admitted — the bound
// suppresses memory steps but silent chains drain to termination, in
// the full and the reduced search alike (the reduction is bypassed
// there: the handful of silent-only frontier states is not worth
// planning over). scratch is the worker's reusable successor buffer;
// the (possibly regrown) buffer is returned for the next expansion.
func (r *run) expand(cfg model.Config, d int32, sl threadMask, scratch []model.Config) []model.Config {
	emit := func(s model.Config, cs threadMask) bool {
		if r.violation.Load() != nil {
			return false
		}
		r.admit(s, d+1, cs)
		return true
	}
	if atBound := cfg.Progress()-r.nInit >= r.maxEv; atBound {
		base := cfg.Progress()
		scratch = cfg.Expand(scratch[:0])
		for i, s := range scratch {
			scratch[i] = nil
			if s.Progress() > base {
				continue // memory step: suppressed by the bound
			}
			if !emit(s, 0) {
				break
			}
		}
		return scratch[:0]
	}
	if r.opts.POR && forEachReducedSucc(cfg, sl, emit) {
		return scratch
	}
	scratch = cfg.Expand(scratch[:0])
	for i, s := range scratch {
		scratch[i] = nil // release for GC once admitted
		if !emit(s, 0) {
			break
		}
	}
	return scratch[:0]
}

func (r *run) worker() {
	var scratch []model.Config
	for {
		it, ok := r.pool.pop()
		if !ok {
			return
		}
		if d, sl, live := r.claim(it); live {
			scratch = r.expand(it.cfg, d, sl, scratch)
		}
		r.pool.done()
	}
}

// Trace is a witness path through the state space.
type Trace struct {
	Configs []model.Config
}

// Describe renders the trace step by step: for each transition, the
// model's label for it (the event added under RAR, the store entry
// written under SC, τ otherwise) and the resulting per-thread residual
// programs.
func (tr Trace) Describe() string {
	var b []byte
	appendLine := func(s string) { b = append(b, s...); b = append(b, '\n') }
	for i, c := range tr.Configs {
		if i == 0 {
			appendLine("start: " + c.Program().String())
			continue
		}
		label := c.DeltaLabel(tr.Configs[i-1])
		appendLine(fmt.Sprintf("%3d. %-22s %s", i, label, c.Program()))
	}
	return string(b)
}

// FindTrace searches (serially, breadth-first, always without
// partial-order reduction — a witness search must see every
// intermediate configuration) for a configuration satisfying pred and
// returns the shortest witness trace to it. found is false when no
// such configuration exists within the bounds.
func FindTrace(c model.Config, opts Options, pred func(model.Config) bool) (Trace, bool) {
	nInit := c.Progress()
	maxEv := opts.maxEvents()
	maxCfg := opts.maxConfigs()

	type node struct {
		cfg    model.Config
		parent int
	}
	nodes := []node{{cfg: c, parent: -1}}
	seen := map[fingerprint.FP]bool{c.Fingerprint(): true}

	mk := func(i int) Trace {
		var rev []model.Config
		for j := i; j >= 0; j = nodes[j].parent {
			rev = append(rev, nodes[j].cfg)
		}
		out := Trace{Configs: make([]model.Config, 0, len(rev))}
		for k := len(rev) - 1; k >= 0; k-- {
			out.Configs = append(out.Configs, rev[k])
		}
		return out
	}

	var succ []model.Config
	for i := 0; i < len(nodes); i++ {
		n := nodes[i]
		if pred(n.cfg) {
			return mk(i), true
		}
		if len(nodes) >= maxCfg {
			continue
		}
		// Like the engine, at the progress bound only silent
		// successors are followed (memory steps are suppressed, silent
		// chains drain), so the witness search sees the same bounded
		// graph as Run.
		atBound := n.cfg.Progress()-nInit >= maxEv
		succ = n.cfg.Expand(succ[:0])
		for _, s := range succ {
			if atBound && s.Progress() > n.cfg.Progress() {
				continue
			}
			k := s.Fingerprint()
			if seen[k] {
				continue
			}
			seen[k] = true
			nodes = append(nodes, node{cfg: s, parent: i})
		}
	}
	return Trace{}, false
}

// Outcomes explores to termination and returns the multiplicity-free
// set of summaries of terminated configurations, as produced by
// summarise. Terminated configurations are preserved by the
// partial-order reduction, so Outcomes is reduction-safe: opts.POR
// changes the work, not the answer.
func Outcomes(c model.Config, opts Options, summarise func(model.Config) string) map[string]bool {
	out := map[string]bool{}
	var mu sync.Mutex
	o := opts
	o.Property = func(cfg model.Config) bool {
		if cfg.Terminated() {
			key := summarise(cfg)
			mu.Lock()
			out[key] = true
			mu.Unlock()
		}
		return true
	}
	Run(c, o)
	return out
}
