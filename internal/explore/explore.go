// Package explore is a bounded explicit-state model checker for the
// interpreted RA semantics (internal/core). It enumerates the
// configurations reachable from an initial (P, σ) pair, deduplicating
// by canonical configuration keys, and checks safety properties at
// every state. Programs with loops have unbounded executions (each
// loop iteration appends read events), so exploration is bounded by a
// maximum number of non-initialising events per state; within that
// bound the search is exhaustive.
//
// The frontier can be expanded in parallel: successor computation is
// by far the dominant cost (each successor clones the relation
// matrices), and successors of distinct configurations are
// independent, so a worker pool over the frontier scales with
// GOMAXPROCS.
package explore

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/event"
)

// Options bounds and configures an exploration.
type Options struct {
	// MaxEvents bounds the number of non-initialising events per
	// state; configurations at the bound are not expanded further.
	// Zero means 24.
	MaxEvents int
	// MaxConfigs aborts the search after this many distinct
	// configurations. Zero means 1 << 20.
	MaxConfigs int
	// Workers sets the parallelism; 0 means GOMAXPROCS, 1 is serial.
	Workers int
	// Property, when non-nil, is evaluated at every reachable
	// configuration; the first configuration where it returns false
	// is reported as a violation and stops the search.
	Property func(core.Config) bool
}

func (o Options) maxEvents() int {
	if o.MaxEvents <= 0 {
		return 24
	}
	return o.MaxEvents
}

func (o Options) maxConfigs() int {
	if o.MaxConfigs <= 0 {
		return 1 << 20
	}
	return o.MaxConfigs
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result summarises an exploration.
type Result struct {
	// Explored counts distinct configurations visited.
	Explored int
	// Terminated counts configurations where every thread has
	// terminated.
	Terminated int
	// Truncated reports whether the event or configuration bound cut
	// the search (so absence of a violation is relative to the bound).
	Truncated bool
	// Violation is a configuration falsifying the property, nil if
	// none was found.
	Violation *core.Config
	// Depth is the maximum number of transitions along any explored
	// path.
	Depth int
}

// Run explores the state space of c under the given options.
func Run(c core.Config, opts Options) Result {
	if opts.workers() <= 1 {
		return runSerial(c, opts)
	}
	return runParallel(c, opts)
}

type item struct {
	cfg   core.Config
	depth int
}

func runSerial(c core.Config, opts Options) Result {
	var res Result
	nInit := c.S.NumEvents()
	maxEv := opts.maxEvents()
	maxCfg := opts.maxConfigs()

	seen := map[string]bool{c.Key(): true}
	frontier := []item{{cfg: c}}

	for len(frontier) > 0 {
		it := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]

		res.Explored++
		if it.depth > res.Depth {
			res.Depth = it.depth
		}
		if opts.Property != nil && !opts.Property(it.cfg) {
			cfg := it.cfg
			res.Violation = &cfg
			return res
		}
		if it.cfg.Terminated() {
			res.Terminated++
			continue
		}
		if it.cfg.S.NumEvents()-nInit >= maxEv {
			res.Truncated = true
			continue
		}
		if res.Explored+len(frontier) >= maxCfg {
			res.Truncated = true
			continue
		}
		for _, s := range it.cfg.Successors() {
			k := s.C.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			frontier = append(frontier, item{cfg: s.C, depth: it.depth + 1})
		}
	}
	return res
}

func runParallel(c core.Config, opts Options) Result {
	var res Result
	nInit := c.S.NumEvents()
	maxEv := opts.maxEvents()
	maxCfg := opts.maxConfigs()
	workers := opts.workers()

	var mu sync.Mutex
	seen := map[string]bool{c.Key(): true}

	frontier := []item{{cfg: c}}
	for len(frontier) > 0 {
		// Evaluate the property and termination status of the whole
		// level, then expand it in parallel.
		next := make([][]item, len(frontier))
		var truncated bool
		var violation *core.Config

		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := range frontier {
			it := frontier[i]
			res.Explored++
			if it.depth > res.Depth {
				res.Depth = it.depth
			}
			if opts.Property != nil && !opts.Property(it.cfg) {
				cfg := it.cfg
				violation = &cfg
				break
			}
			if it.cfg.Terminated() {
				res.Terminated++
				continue
			}
			if it.cfg.S.NumEvents()-nInit >= maxEv {
				truncated = true
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, it item) {
				defer wg.Done()
				defer func() { <-sem }()
				var local []item
				for _, s := range it.cfg.Successors() {
					k := s.C.Key()
					mu.Lock()
					dup := seen[k]
					if !dup {
						seen[k] = true
					}
					mu.Unlock()
					if !dup {
						local = append(local, item{cfg: s.C, depth: it.depth + 1})
					}
				}
				next[i] = local
			}(i, it)
		}
		wg.Wait()

		if violation != nil {
			res.Violation = violation
			return res
		}
		res.Truncated = res.Truncated || truncated

		frontier = frontier[:0]
		for _, l := range next {
			frontier = append(frontier, l...)
		}
		if res.Explored+len(frontier) >= maxCfg {
			res.Truncated = true
			// Finish counting the frontier as explored states but do
			// not expand further.
			for _, it := range frontier {
				res.Explored++
				if opts.Property != nil && !opts.Property(it.cfg) {
					cfg := it.cfg
					res.Violation = &cfg
					return res
				}
				if it.cfg.Terminated() {
					res.Terminated++
				}
			}
			return res
		}
	}
	return res
}

// Trace is a witness path through the state space.
type Trace struct {
	Configs []core.Config
}

// Describe renders the trace step by step: for each transition, the
// event added (or τ) and the resulting per-thread residual programs.
func (tr Trace) Describe() string {
	var b []byte
	appendLine := func(s string) { b = append(b, s...); b = append(b, '\n') }
	for i, c := range tr.Configs {
		if i == 0 {
			appendLine("start: " + c.P.String())
			continue
		}
		prev := tr.Configs[i-1]
		label := "τ"
		if c.S.NumEvents() > prev.S.NumEvents() {
			e := c.S.Event(event.Tag(c.S.NumEvents() - 1))
			label = e.String()
		}
		appendLine(fmt.Sprintf("%3d. %-22s %s", i, label, c.P))
	}
	return string(b)
}

// FindTrace searches (serially, breadth-first) for a configuration
// satisfying pred and returns the shortest witness trace to it. found
// is false when no such configuration exists within the bounds.
func FindTrace(c core.Config, opts Options, pred func(core.Config) bool) (Trace, bool) {
	nInit := c.S.NumEvents()
	maxEv := opts.maxEvents()
	maxCfg := opts.maxConfigs()

	type node struct {
		cfg    core.Config
		parent int
	}
	nodes := []node{{cfg: c, parent: -1}}
	seen := map[string]bool{c.Key(): true}

	mk := func(i int) Trace {
		var rev []core.Config
		for j := i; j >= 0; j = nodes[j].parent {
			rev = append(rev, nodes[j].cfg)
		}
		out := Trace{Configs: make([]core.Config, 0, len(rev))}
		for k := len(rev) - 1; k >= 0; k-- {
			out.Configs = append(out.Configs, rev[k])
		}
		return out
	}

	for i := 0; i < len(nodes); i++ {
		n := nodes[i]
		if pred(n.cfg) {
			return mk(i), true
		}
		if n.cfg.S.NumEvents()-nInit >= maxEv || len(nodes) >= maxCfg {
			continue
		}
		for _, s := range n.cfg.Successors() {
			k := s.C.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			nodes = append(nodes, node{cfg: s.C, parent: i})
		}
	}
	return Trace{}, false
}

// Outcomes explores to termination and returns the multiplicity-free
// set of summaries of terminated configurations, as produced by
// summarise.
func Outcomes(c core.Config, opts Options, summarise func(core.Config) string) map[string]bool {
	out := map[string]bool{}
	o := opts
	o.Property = nil
	collect := func(cfg core.Config) bool {
		if cfg.Terminated() {
			out[summarise(cfg)] = true
		}
		return true
	}
	o.Property = collect
	Run(c, o)
	return out
}
