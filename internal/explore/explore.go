// Package explore is a bounded explicit-state model checker for the
// interpreted RA semantics (internal/core). It enumerates the
// configurations reachable from an initial (P, σ) pair, deduplicating
// by canonical 128-bit configuration fingerprints, and checks safety
// properties at every state. Programs with loops have unbounded
// executions (each loop iteration appends read events), so exploration
// is bounded by a maximum number of non-initialising events per state;
// within that bound the search is exhaustive.
//
// With Options.POR the search applies independence-based partial-order
// reduction (por.go): a persistent-set heuristic expands only a subset
// of the enabled threads where one is provably conflict-free, and
// sleep sets prune commuting interleavings that are covered elsewhere.
// The reduced search preserves every terminated configuration and all
// label-visible interleavings, but not every intermediate
// configuration; CheckPOR (audit.go) diffs a reduced against a full
// search.
//
// The serial engine is a FIFO breadth-first search, so a state's
// recorded depth is its shortest distance from the root. The parallel
// engine has no per-level barrier: workers pull configurations from a
// shared pool and push successors as they find them, deduplicating
// through a sharded seen-set keyed by fingerprint bits. Discovery
// order is nondeterministic, so a state may first be reached along a
// non-shortest path; when a shorter path is found later the state's
// depth is relaxed and — if it was already expanded — it is re-queued
// so the improvement propagates. Sleep masks relax the same way, by
// intersection: re-reaching a known state with a smaller sleep set
// weakens the stored mask and re-queues the state. Both relaxations
// are monotone, so at quiescence every state carries its shortest-path
// depth and its final (smallest) sleep mask, making Explored,
// Terminated, Depth and the Truncated flag identical between the
// serial and parallel engines whenever the search runs to completion
// (no MaxConfigs cut, no early property exit) — with or without POR.
package explore

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/fingerprint"
)

// Options bounds and configures an exploration.
type Options struct {
	// MaxEvents bounds the number of non-initialising events per
	// state; configurations at the bound are not expanded further.
	// Zero means 24.
	MaxEvents int
	// MaxConfigs bounds the number of distinct configurations
	// explored; once reached, no further configurations are admitted
	// and the search is reported truncated. Zero means 1 << 20. When
	// the cap cuts a parallel search, *which* configurations were
	// admitted depends on scheduling, so Terminated and Depth (unlike
	// Explored and Truncated) may vary between runs; use Workers 1
	// for a deterministic truncated prefix.
	MaxConfigs int
	// Workers sets the parallelism; 0 means GOMAXPROCS, 1 is serial.
	Workers int
	// POR enables independence-based partial-order reduction: sleep
	// sets plus a persistent-set heuristic driven by the per-step
	// commutation oracle core.StepsCommute (see por.go). The reduced
	// search reaches every terminated configuration of the full search
	// and preserves interleavings around labelled program points, but
	// skips intermediate configurations whose interleavings commute —
	// a Property that inspects arbitrary state components may
	// therefore miss violations that only occur at skipped
	// configurations (a reported violation is always real). CheckPOR
	// audits a workload's reduced search against its full search.
	POR bool
	// Property, when non-nil, is evaluated once at every distinct
	// reachable configuration; the first configuration where it
	// returns false is reported as a violation and stops the search.
	// With Workers > 1 the property is called concurrently from
	// multiple workers and must be safe for concurrent use.
	Property func(core.Config) bool
	// CheckCollisions switches deduplication to the exact canonical
	// string keys (core.Config.Key) and audits the fingerprints
	// against them, counting distinct keys whose 128-bit fingerprints
	// coincide in Result.FingerprintCollisions. This is a debug mode:
	// it restores the allocation-heavy slow path the fingerprints
	// replaced.
	CheckCollisions bool
	// CheckIncremental audits the incremental derived-order engine: at
	// every admitted configuration the state's hb/eco/comb closures,
	// observability sets and maintained indexes are recomputed from
	// first principles and compared with the inherited-and-extended
	// values (core.State.AuditIncremental), accumulating the number of
	// disagreements in Result.ClosureMismatches. This is a debug mode:
	// it restores the from-scratch Floyd–Warshall cost per state. The
	// expected mismatch count is always zero.
	CheckIncremental bool

	// collect, when non-nil, observes every admitted configuration's
	// fingerprint and whether it is terminated. Used by CheckPOR to
	// gather reachable sets; must be safe for concurrent use when
	// Workers > 1.
	collect func(fp fingerprint.FP, terminated bool)
}

func (o Options) maxEvents() int {
	if o.MaxEvents <= 0 {
		return 24
	}
	return o.MaxEvents
}

func (o Options) maxConfigs() int {
	if o.MaxConfigs <= 0 {
		return 1 << 20
	}
	return o.MaxConfigs
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result summarises an exploration.
type Result struct {
	// Explored counts distinct configurations visited.
	Explored int
	// Terminated counts configurations where every thread has
	// terminated.
	Terminated int
	// Truncated reports whether the event or configuration bound cut
	// the search (so absence of a violation is relative to the bound).
	Truncated bool
	// Violation is a configuration falsifying the property, nil if
	// none was found.
	Violation *core.Config
	// Depth is the maximum over explored configurations of the
	// shortest transition distance from the initial configuration
	// (under POR: the shortest distance in the reduced graph).
	Depth int
	// FingerprintCollisions counts distinct canonical keys that
	// shared a fingerprint; only populated under CheckCollisions.
	FingerprintCollisions int
	// ClosureMismatches counts disagreements between the incremental
	// derived orders and their from-scratch recomputation across all
	// admitted configurations; only populated under CheckIncremental.
	ClosureMismatches int
}

// Run explores the state space of c under the given options.
func Run(c core.Config, opts Options) Result {
	if opts.workers() <= 1 {
		return runSerial(c, opts)
	}
	return runParallel(c, opts)
}

// entry is one seen-set record, shared by both engines: the best
// depth and smallest sleep mask the configuration has been reached
// with, and the values it was last expanded at (expandedAt -1 if
// never). Non-expandable configurations (terminated or at the event
// bound) only track depth.
type entry struct {
	depth         int32
	expandedAt    int32
	sleep         threadMask
	expandedSleep threadMask
	expandable    bool
}

// relax folds a re-discovery at depth d with sleep mask sleep into
// the entry and reports whether the entry must be re-expanded: its
// depth or sleep mask improved below what it was last expanded with.
func (e *entry) relax(d int32, sleep threadMask) (requeue bool) {
	if d < e.depth {
		e.depth = d
		requeue = e.expandable && e.expandedAt >= 0 && e.expandedAt > d
	}
	if ns := e.sleep & sleep; ns != e.sleep {
		e.sleep = ns
		requeue = requeue || (e.expandable && e.expandedAt >= 0 && e.expandedSleep&^ns != 0)
	}
	return requeue
}

// expanded reports whether the entry has already been expanded at its
// current best depth and with a sleep mask no larger than the current
// one (so a queued item for it is stale).
func (e *entry) expanded() bool {
	return e.expandedAt >= 0 && e.expandedAt <= e.depth && e.expandedSleep&^e.sleep == 0
}

func runSerial(c core.Config, opts Options) Result {
	var res Result
	nInit := c.S.NumEvents()
	maxEv := opts.maxEvents()
	maxCfg := opts.maxConfigs()

	// Deduplication: fingerprints on the fast path, exact canonical
	// keys (with fingerprint auditing) under CheckCollisions.
	var (
		byFP  map[fingerprint.FP]*entry
		byKey map[string]*entry
		fpOf  map[fingerprint.FP]string
	)
	if opts.CheckCollisions {
		byKey = make(map[string]*entry, 1024)
		fpOf = make(map[fingerprint.FP]string, 1024)
	} else {
		byFP = make(map[fingerprint.FP]*entry, 1024)
	}

	type sitem struct {
		cfg core.Config
		e   *entry
	}
	var queue []sitem
	head := 0

	// visit admits one configuration: dedup, count, check the
	// property, and enqueue it when expandable. Revisits relax the
	// stored depth and sleep mask and re-queue already-expanded
	// entries so the improvements propagate (without POR the sleep
	// masks are all zero and FIFO order makes first discoveries
	// shortest, so revisits are no-ops, exactly as before). It returns
	// false when the search must stop (property violation).
	visit := func(cfg core.Config, depth int32, sleep threadMask) bool {
		fp := cfg.Fingerprint()
		var e *entry
		var key string
		if opts.CheckCollisions {
			key = cfg.Key()
			e = byKey[key]
		} else {
			e = byFP[fp]
		}
		if e != nil {
			if e.relax(depth, sleep) {
				queue = append(queue, sitem{cfg: cfg, e: e})
			}
			return true
		}
		if res.Explored >= maxCfg {
			res.Truncated = true
			return true
		}
		res.Explored++
		if opts.CheckIncremental {
			res.ClosureMismatches += len(cfg.S.AuditIncremental())
		}
		term := cfg.Terminated()
		atBound := cfg.S.NumEvents()-nInit >= maxEv
		e = &entry{depth: depth, expandedAt: -1, sleep: sleep, expandable: !term && !atBound}
		if opts.CheckCollisions {
			byKey[key] = e
			if prev, ok := fpOf[fp]; ok {
				if prev != key {
					res.FingerprintCollisions++
				}
			} else {
				fpOf[fp] = key
			}
		} else {
			byFP[fp] = e
		}
		if opts.collect != nil {
			opts.collect(fp, term)
		}
		if opts.Property != nil && !opts.Property(cfg) {
			res.Violation = &cfg
			return false
		}
		if term {
			res.Terminated++
			return true
		}
		if atBound {
			res.Truncated = true
			return true
		}
		queue = append(queue, sitem{cfg: cfg, e: e})
		return true
	}

	finishDepth := func() {
		if opts.CheckCollisions {
			for _, e := range byKey {
				if int(e.depth) > res.Depth {
					res.Depth = int(e.depth)
				}
			}
		} else {
			for _, e := range byFP {
				if int(e.depth) > res.Depth {
					res.Depth = int(e.depth)
				}
			}
		}
	}

	if !visit(c, 0, 0) {
		finishDepth()
		return res
	}
	for head < len(queue) {
		// Once the configuration cap has both filled and rejected an
		// admission, no further expansion can change any result field
		// (fresh successors are rejected before the property runs,
		// duplicates only relax metadata), so the remaining queue is
		// abandoned.
		if res.Truncated && res.Explored >= maxCfg {
			break
		}
		// Keep the backing array proportional to the live frontier.
		if head > 1024 && head > len(queue)/2 {
			n := copy(queue, queue[head:])
			queue = queue[:n]
			head = 0
		}
		it := queue[head]
		queue[head] = sitem{} // release the config for GC
		head++
		e := it.e
		if e.expanded() { // stale re-queue
			continue
		}
		d, sl := e.depth, e.sleep
		e.expandedAt, e.expandedSleep = d, sl

		stop := false
		emit := func(s core.Succ, cs threadMask) bool {
			if !visit(s.C, d+1, cs) {
				stop = true
				return false
			}
			return true
		}
		if !opts.POR || !forEachReducedSucc(it.cfg, sl, emit) {
			for _, s := range it.cfg.Successors() {
				if !emit(s, 0) {
					break
				}
			}
		}
		if stop {
			finishDepth()
			return res
		}
	}
	finishDepth()
	return res
}

// --- parallel engine ---

const numShards = 64

type pshard struct {
	mu   sync.Mutex
	byFP map[fingerprint.FP]*entry
	// Collision-check mode state (nil otherwise).
	byKey map[string]*entry
	fpOf  map[fingerprint.FP]string
}

type pitem struct {
	cfg core.Config
	fp  fingerprint.FP
	key string // only set under CheckCollisions
}

// ppool is the shared work pool: a FIFO of discovered configurations
// plus the in-flight counter that detects quiescence.
type ppool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []pitem
	head    int
	pending int // queued + currently-processing items
	stopped bool
}

func (p *ppool) push(it pitem) {
	p.mu.Lock()
	p.pending++
	p.queue = append(p.queue, it)
	p.mu.Unlock()
	p.cond.Signal()
}

// pop blocks until an item is available, the pool quiesces, or the
// search is stopped. ok=false means the worker should exit.
func (p *ppool) pop() (pitem, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.head == len(p.queue) && p.pending > 0 && !p.stopped {
		p.cond.Wait()
	}
	if p.stopped || p.head == len(p.queue) {
		return pitem{}, false
	}
	it := p.queue[p.head]
	p.queue[p.head] = pitem{} // release the config for GC
	p.head++
	// Keep the backing array proportional to the live frontier.
	if p.head > 1024 && p.head > len(p.queue)/2 {
		n := copy(p.queue, p.queue[p.head:])
		p.queue = p.queue[:n]
		p.head = 0
	}
	return it, true
}

func (p *ppool) done() {
	p.mu.Lock()
	p.pending--
	quiesced := p.pending == 0
	p.mu.Unlock()
	if quiesced {
		p.cond.Broadcast()
	}
}

func (p *ppool) stop() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

type prun struct {
	opts   Options
	nInit  int
	maxEv  int
	maxCfg int

	shards [numShards]pshard
	pool   ppool

	explored   atomic.Int64
	terminated atomic.Int64
	truncated  atomic.Bool
	collisions atomic.Int64
	mismatches atomic.Int64
	violation  atomic.Pointer[core.Config]
}

func (r *prun) shardOf(fp fingerprint.FP) *pshard {
	return &r.shards[fp.Lo%numShards]
}

// admit deduplicates and registers cfg at depth d with sleep mask
// sleep, updating counters and queueing it when expandable.
// Re-discoveries at a shorter depth or with a smaller sleep mask relax
// the recorded values and re-queue already-expanded entries so the
// improvements propagate.
func (r *prun) admit(cfg core.Config, d int32, sleep threadMask) {
	fp := cfg.Fingerprint()
	var key string
	if r.opts.CheckCollisions {
		key = cfg.Key()
	}
	sh := r.shardOf(fp)

	sh.mu.Lock()
	var e *entry
	if r.opts.CheckCollisions {
		e = sh.byKey[key]
	} else {
		e = sh.byFP[fp]
	}
	if e != nil {
		// Known configuration: relax depth and sleep mask.
		requeue := e.relax(d, sleep)
		sh.mu.Unlock()
		if requeue {
			r.pool.push(pitem{cfg: cfg, fp: fp, key: key})
		}
		return
	}
	// Fresh configuration: honour the MaxConfigs admission cap.
	n := r.explored.Add(1)
	if int(n) > r.maxCfg {
		r.explored.Add(-1)
		r.truncated.Store(true)
		sh.mu.Unlock()
		// The cap has both filled and rejected an admission: no
		// further expansion can change any result field, so the
		// remaining work is abandoned (mirrors the serial engine).
		r.pool.stop()
		return
	}
	term := cfg.Terminated()
	atBound := cfg.S.NumEvents()-r.nInit >= r.maxEv
	e = &entry{depth: d, expandedAt: -1, sleep: sleep, expandable: !term && !atBound}
	if r.opts.CheckCollisions {
		sh.byKey[key] = e
		// Audit once per distinct canonical key, matching runSerial.
		if prev, ok := sh.fpOf[fp]; ok {
			if prev != key {
				r.collisions.Add(1)
			}
		} else {
			sh.fpOf[fp] = key
		}
	} else {
		sh.byFP[fp] = e
	}
	sh.mu.Unlock()

	if term {
		r.terminated.Add(1)
	} else if atBound {
		r.truncated.Store(true)
	}
	// The hooks run outside every lock, like the property: the audit
	// only touches the admitted configuration's own state, and the
	// collector is documented as concurrently callable.
	if r.opts.collect != nil {
		r.opts.collect(fp, term)
	}
	if r.opts.CheckIncremental {
		if bad := cfg.S.AuditIncremental(); len(bad) > 0 {
			r.mismatches.Add(int64(len(bad)))
		}
	}
	// The property runs outside every lock; it may be expensive and is
	// documented as concurrently callable.
	if r.opts.Property != nil && !r.opts.Property(cfg) {
		c := cfg
		r.violation.CompareAndSwap(nil, &c)
		r.pool.stop()
		return
	}
	if e.expandable {
		r.pool.push(pitem{cfg: cfg, fp: fp, key: key})
	}
}

// claim marks it as being expanded and returns the depth and sleep
// mask to expand at, or ok=false when the entry has already been
// expanded at its current best depth and sleep mask (a stale
// re-queue).
func (r *prun) claim(it pitem) (int32, threadMask, bool) {
	sh := r.shardOf(it.fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var e *entry
	if r.opts.CheckCollisions {
		e = sh.byKey[it.key]
	} else {
		e = sh.byFP[it.fp]
	}
	if e == nil || e.expanded() {
		return 0, 0, false
	}
	e.expandedAt = e.depth
	e.expandedSleep = e.sleep
	return e.depth, e.sleep, true
}

// expand generates the successors of cfg at depth d under sleep mask
// sl, applying the POR plan when enabled.
func (r *prun) expand(cfg core.Config, d int32, sl threadMask) {
	emit := func(s core.Succ, cs threadMask) bool {
		if r.violation.Load() != nil {
			return false
		}
		r.admit(s.C, d+1, cs)
		return true
	}
	if !r.opts.POR || !forEachReducedSucc(cfg, sl, emit) {
		for _, s := range cfg.Successors() {
			if !emit(s, 0) {
				return
			}
		}
	}
}

func (r *prun) worker() {
	for {
		it, ok := r.pool.pop()
		if !ok {
			return
		}
		if d, sl, live := r.claim(it); live {
			r.expand(it.cfg, d, sl)
		}
		r.pool.done()
	}
}

func runParallel(c core.Config, opts Options) Result {
	r := &prun{
		opts:   opts,
		nInit:  c.S.NumEvents(),
		maxEv:  opts.maxEvents(),
		maxCfg: opts.maxConfigs(),
	}
	r.pool.cond = sync.NewCond(&r.pool.mu)
	for i := range r.shards {
		if opts.CheckCollisions {
			r.shards[i].byKey = make(map[string]*entry)
			r.shards[i].fpOf = make(map[fingerprint.FP]string)
		} else {
			r.shards[i].byFP = make(map[fingerprint.FP]*entry)
		}
	}

	r.admit(c, 0, 0)
	var wg sync.WaitGroup
	for i := 0; i < opts.workers(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.worker()
		}()
	}
	wg.Wait()

	var res Result
	res.Explored = int(r.explored.Load())
	res.Terminated = int(r.terminated.Load())
	res.Truncated = r.truncated.Load()
	res.Violation = r.violation.Load()
	res.FingerprintCollisions = int(r.collisions.Load())
	res.ClosureMismatches = int(r.mismatches.Load())
	for i := range r.shards {
		sh := &r.shards[i]
		if opts.CheckCollisions {
			for _, e := range sh.byKey {
				if int(e.depth) > res.Depth {
					res.Depth = int(e.depth)
				}
			}
		} else {
			for _, e := range sh.byFP {
				if int(e.depth) > res.Depth {
					res.Depth = int(e.depth)
				}
			}
		}
	}
	return res
}

// Trace is a witness path through the state space.
type Trace struct {
	Configs []core.Config
}

// Describe renders the trace step by step: for each transition, the
// event added (or τ) and the resulting per-thread residual programs.
func (tr Trace) Describe() string {
	var b []byte
	appendLine := func(s string) { b = append(b, s...); b = append(b, '\n') }
	for i, c := range tr.Configs {
		if i == 0 {
			appendLine("start: " + c.P.String())
			continue
		}
		prev := tr.Configs[i-1]
		label := "τ"
		if c.S.NumEvents() > prev.S.NumEvents() {
			e := c.S.Event(event.Tag(c.S.NumEvents() - 1))
			label = e.String()
		}
		appendLine(fmt.Sprintf("%3d. %-22s %s", i, label, c.P))
	}
	return string(b)
}

// FindTrace searches (serially, breadth-first, always without
// partial-order reduction — a witness search must see every
// intermediate configuration) for a configuration satisfying pred and
// returns the shortest witness trace to it. found is false when no
// such configuration exists within the bounds.
func FindTrace(c core.Config, opts Options, pred func(core.Config) bool) (Trace, bool) {
	nInit := c.S.NumEvents()
	maxEv := opts.maxEvents()
	maxCfg := opts.maxConfigs()

	type node struct {
		cfg    core.Config
		parent int
	}
	nodes := []node{{cfg: c, parent: -1}}
	seen := map[fingerprint.FP]bool{c.Fingerprint(): true}

	mk := func(i int) Trace {
		var rev []core.Config
		for j := i; j >= 0; j = nodes[j].parent {
			rev = append(rev, nodes[j].cfg)
		}
		out := Trace{Configs: make([]core.Config, 0, len(rev))}
		for k := len(rev) - 1; k >= 0; k-- {
			out.Configs = append(out.Configs, rev[k])
		}
		return out
	}

	for i := 0; i < len(nodes); i++ {
		n := nodes[i]
		if pred(n.cfg) {
			return mk(i), true
		}
		if n.cfg.S.NumEvents()-nInit >= maxEv || len(nodes) >= maxCfg {
			continue
		}
		for _, s := range n.cfg.Successors() {
			k := s.C.Fingerprint()
			if seen[k] {
				continue
			}
			seen[k] = true
			nodes = append(nodes, node{cfg: s.C, parent: i})
		}
	}
	return Trace{}, false
}

// Outcomes explores to termination and returns the multiplicity-free
// set of summaries of terminated configurations, as produced by
// summarise. Terminated configurations are preserved by the
// partial-order reduction, so Outcomes is reduction-safe: opts.POR
// changes the work, not the answer.
func Outcomes(c core.Config, opts Options, summarise func(core.Config) string) map[string]bool {
	out := map[string]bool{}
	var mu sync.Mutex
	o := opts
	o.Property = func(cfg core.Config) bool {
		if cfg.Terminated() {
			key := summarise(cfg)
			mu.Lock()
			out[key] = true
			mu.Unlock()
		}
		return true
	}
	Run(c, o)
	return out
}
