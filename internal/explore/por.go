package explore

// Independence-based partial-order reduction. The explorer's state
// count blows up factorially in thread interleavings even when most of
// them are equivalent: two transitions on different threads that touch
// no common variable with a write commute (core.StepsCommute), so the
// n! orders of n pairwise-independent steps all reach the same
// canonical configuration through 2^n intermediate ones. The reduction
// avoids generating the redundant interleavings in the first place,
// with the classic pair of techniques:
//
//   - a persistent-set heuristic chooses, per configuration, a subset
//     of the enabled threads whose exploration provably suffices. The
//     heuristic picks a singleton when some thread's next step can
//     never conflict with anything the other live threads may still
//     do: a silent step (touches no memory), or a memory step on a
//     variable outside every other thread's static may-access
//     footprint (lang.MayAccess). Nothing another thread does can
//     disable, alter or conflict with such a step — in this semantics
//     a live thread is never disabled at all, and OW(t)|x / CW|x are
//     invariant under events on other variables — so exploring it
//     first and the rest after it covers every behaviour. When no
//     thread qualifies, the full enabled set is used.
//   - sleep sets prune transitions whose interleavings are covered
//     elsewhere: when threads u1 < u2 are explored at a configuration
//     and their steps commute, the u2-successor need not explore u1
//     again — the u1·u2 order already covers it. Sleep masks ride the
//     work items, are filtered through StepsCommute on every edge, and
//     interact with deduplication by intersection: re-reaching a known
//     configuration with a smaller sleep set weakens the stored mask
//     and re-queues the configuration, exactly like depth relaxation
//     (the stored mask only ever shrinks, so the fixpoint — and with
//     it the explored set — is engine-order independent).
//
// Label-visibility guard: safety properties observe program counters
// through lang.AtLabel (e.g. mutual exclusion at the "cs" label), so
// steps that arrive at or leave a labelled command are treated as
// visible — never chosen as a reducing singleton, never slept, and
// dependent with everything — keeping the label-interleavings of the
// full search. Properties that inspect other state components can
// still distinguish reduced from full searches (absence of a violation
// is relative to the reduction); CheckPOR audits exactly this.
//
// The reduction preserves: every terminated configuration, the
// violation verdict for label-based and terminated-state properties,
// and soundness (every configuration the reduced search explores is
// reachable in the full search — its edges are a subset). It does not
// preserve the full set of intermediate configurations; that is the
// point.

import (
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/lang"
)

// threadMask is a bitmask over program threads (thread t at bit t-1).
// Masks bound the reduction to 64 threads; wider programs fall back to
// full exploration (plan.ok = false).
type threadMask uint64

const maxPORThreads = 64

func maskBit(t event.Thread) threadMask { return 1 << uint(t-1) }

// porPlan is the reduction decision at one configuration.
type porPlan struct {
	// steps are the enabled program steps, in thread order (the fixed
	// exploration order both engines share, so successor sleep masks
	// are deterministic).
	steps []lang.ProgStep
	// persist marks the threads to expand: a singleton when the
	// heuristic found an independent thread, all enabled otherwise.
	persist threadMask
	// visible marks threads whose step arrives at or leaves a label.
	visible threadMask
	// ok is false when the program is too wide for masks; expand fully.
	ok bool
}

// silentProgressLimit bounds the divergence walk of SilentProgress:
// longer silent chains are conservatively treated as diverging.
const silentProgressLimit = 32

// planPOR computes the reduction at c: the enabled steps, their
// visibility, and a persistent set. The plan is a function of the
// configuration alone (never of the path or sleep mask reaching it),
// which keeps the serial and parallel engines' fixpoints identical.
func planPOR(c core.Config) porPlan {
	pl := porPlan{steps: lang.ProgSteps(c.P), ok: true}
	if len(c.P) > maxPORThreads {
		pl.ok = false
		return pl
	}
	all := threadMask(0)
	for _, ps := range pl.steps {
		b := maskBit(ps.T)
		all |= b
		if lang.VisibleStep(c.P.Thread(ps.T), ps.S) {
			pl.visible |= b
		}
	}

	// Singleton 1: an invisible silent step commutes with everything
	// and is untouchable by other threads. The step must provably make
	// progress (reach a memory step or terminate): every cycle of the
	// configuration graph is all-silent, so reducing to a diverging
	// silent thread would postpone every other thread around that
	// cycle forever (the ignoring problem). A progressing chain ends
	// within silentProgressLimit steps, after which the plan changes.
	for _, ps := range pl.steps {
		if ps.S.Kind == lang.StepSilent && pl.visible&maskBit(ps.T) == 0 &&
			lang.SilentProgress(c.P.Thread(ps.T), silentProgressLimit) {
			pl.persist = maskBit(ps.T)
			return pl
		}
	}

	// Singleton 2: an invisible memory step whose variable no other
	// live thread may ever access conflictingly. Footprints are static
	// over-approximations of the residual programs, so the independence
	// covers every future transition of the other threads, not just the
	// currently enabled ones. Memory steps grow the event set, so they
	// never close a cycle and need no progress check. Footprints are
	// computed once per live thread, lazily — this stage only runs
	// when no silent singleton exists.
	fps := make([]lang.Footprint, len(c.P))
	fpsOK := make([]bool, len(c.P))
	footprint := func(i int) lang.Footprint {
		if !fpsOK[i] {
			fps[i] = lang.MayAccess(c.P[i])
			fpsOK[i] = true
		}
		return fps[i]
	}
	for _, ps := range pl.steps {
		if ps.S.Kind == lang.StepSilent || pl.visible&maskBit(ps.T) != 0 {
			continue
		}
		wr := ps.S.Kind != lang.StepRead
		conflict := false
		for i := range c.P {
			u := event.Thread(i + 1)
			if u == ps.T || lang.Terminated(c.P[i]) {
				continue
			}
			if footprint(i).ConflictsWith(ps.S.Loc, wr) {
				conflict = true
				break
			}
		}
		if !conflict {
			pl.persist = maskBit(ps.T)
			return pl
		}
	}

	pl.persist = all
	return pl
}

// forEachReducedSucc expands cfg under its POR plan: for every
// selected step (persistent, not slept under sl) it generates the
// interpreted successors and calls emit with each successor and its
// child sleep mask. emit returns false to stop the expansion early.
// ok is false when the plan cannot be applied (program too wide for
// masks); callers fall back to full expansion. This is the one
// reduction loop shared by the serial and parallel engines, so a
// change to the pruning logic cannot desynchronise their fixpoints.
func forEachReducedSucc(cfg core.Config, sl threadMask, emit func(core.Succ, threadMask) bool) (ok bool) {
	pl := planPOR(cfg)
	if !pl.ok {
		return false
	}
	for j, ps := range pl.steps {
		b := maskBit(ps.T)
		if pl.persist&b == 0 || sl&b != 0 {
			continue
		}
		cs := childSleep(pl, sl, j)
		for _, s := range cfg.StepSuccessors(ps) {
			if !emit(s, cs) {
				return true
			}
		}
	}
	return true
}

// childSleep computes the sleep mask of successors generated by step j
// of the plan: the threads already covered at the parent — the
// parent's sleep plus the persistent threads ordered before j — whose
// steps commute with step j. Visible steps are never slept and wake
// everything when taken. Monotone in the parent mask, which makes the
// dedup-by-intersection fixpoint well-defined.
func childSleep(pl porPlan, sleep threadMask, j int) threadMask {
	uj := pl.steps[j]
	if pl.visible&maskBit(uj.T) != 0 {
		return 0
	}
	cand := sleep
	for k := 0; k < j; k++ {
		if b := maskBit(pl.steps[k].T); pl.persist&b != 0 {
			cand |= b
		}
	}
	out := threadMask(0)
	for _, ps := range pl.steps {
		b := maskBit(ps.T)
		if cand&b == 0 || pl.visible&b != 0 {
			continue
		}
		if core.StepsCommute(ps, uj) {
			out |= b
		}
	}
	return out
}
