package explore

// Independence-based partial-order reduction, generic over the memory
// model. The explorer's state count blows up factorially in thread
// interleavings even when most of them are equivalent: two transitions
// on different threads that commute under the model's oracle
// (model.Config.StepsCommute) reach the same canonical configuration
// in either order, so the n! orders of n pairwise-independent steps
// all converge through 2^n intermediate states. The reduction avoids
// generating the redundant interleavings in the first place, with the
// classic pair of techniques:
//
//   - a persistent-set heuristic chooses, per configuration, a subset
//     of the enabled threads whose exploration provably suffices. The
//     heuristic picks a singleton when some thread's next step can
//     never conflict with anything the other live threads may still
//     do: a silent step (touches no memory), or a memory step on a
//     variable outside every other thread's static may-access
//     footprint (lang.MayAccess). Nothing another thread does can
//     disable, alter or conflict with such a step — in these
//     semantics a live thread is never disabled by another thread,
//     and the step's choices are invariant under events on other
//     variables — so exploring it first and the rest after it covers
//     every behaviour. When no thread qualifies, the full enabled set
//     is used.
//   - sleep sets prune transitions whose interleavings are covered
//     elsewhere: when threads u1 < u2 are explored at a configuration
//     and their steps commute, the u2-successor need not explore u1
//     again — the u1·u2 order already covers it. Sleep masks ride the
//     work items, are filtered through the commutation oracle on every
//     edge, and interact with deduplication by intersection:
//     re-reaching a known configuration with a smaller sleep set
//     weakens the stored mask and re-queues the configuration, exactly
//     like depth relaxation (the stored mask only ever shrinks, so the
//     fixpoint — and with it the explored set — is engine-order
//     independent).
//
// The ignoring problem: reducing to a singleton thread that can cycle
// solo through the configuration graph would postpone every other
// thread around that cycle forever. Which steps can close cycles is a
// model property (model.Config.StepsAcyclic). Under RAR every memory
// step appends an event, so only all-silent cycles exist and silent
// singletons require a bounded progress walk (lang.SilentProgress).
// Under SC a spin loop re-reads an unchanged store and revisits
// configurations, so memory-step singletons additionally require the
// thread's residual program to be loop-free (loopFree below) — a
// static, conservative guard.
//
// Label-visibility guard: safety properties observe program counters
// through lang.AtLabel (e.g. mutual exclusion at the "cs" label), so
// steps that arrive at or leave a labelled command are treated as
// visible — never chosen as a reducing singleton, never slept, and
// dependent with everything — keeping the label-interleavings of the
// full search. Properties that inspect other state components can
// still distinguish reduced from full searches (absence of a violation
// is relative to the reduction); CheckPOR audits exactly this.
//
// The reduction preserves: every terminated configuration, the
// violation verdict for label-based and terminated-state properties,
// and soundness (every configuration the reduced search explores is
// reachable in the full search — its edges are a subset). It does not
// preserve the full set of intermediate configurations; that is the
// point.

import (
	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// threadMask is a bitmask over program threads (thread t at bit t-1).
// Masks bound the reduction to 64 threads; wider programs fall back to
// full exploration (plan.ok = false).
type threadMask uint64

const maxPORThreads = 64

func maskBit(t event.Thread) threadMask { return 1 << uint(t-1) }

// porPlan is the reduction decision at one configuration.
type porPlan struct {
	// steps are the enabled program steps, in thread order (the fixed
	// exploration order every worker shares, so successor sleep masks
	// are deterministic).
	steps []lang.ProgStep
	// persist marks the threads to expand: a singleton when the
	// heuristic found an independent thread, all enabled otherwise.
	persist threadMask
	// visible marks threads whose step arrives at or leaves a label.
	visible threadMask
	// ok is false when the program is too wide for masks; expand fully.
	ok bool
}

// silentProgressLimit bounds the divergence walk of SilentProgress:
// longer silent chains are conservatively treated as diverging.
const silentProgressLimit = 32

// loopFree reports whether the command contains no While — the static
// guard against memory-step cycles in models whose non-silent
// transitions can revisit configurations.
func loopFree(c lang.Com) bool {
	switch c := c.(type) {
	case lang.Seq:
		return loopFree(c.C1) && loopFree(c.C2)
	case lang.If:
		return loopFree(c.Then) && loopFree(c.Else)
	case lang.Cas:
		return loopFree(c.Then) && loopFree(c.Else)
	case lang.While:
		return false
	case lang.Label:
		return loopFree(c.C)
	}
	return true
}

// planPOR computes the reduction at c: the enabled steps, their
// visibility, and a persistent set. The plan is a function of the
// configuration alone (never of the path or sleep mask reaching it),
// which keeps the engine's fixpoint identical across worker counts.
// Generic so concrete instantiations call the model methods without
// boxing the configuration.
func planPOR[C model.Base](c C) porPlan {
	p := c.Program()
	pl := porPlan{steps: lang.ProgSteps(p), ok: true}
	if len(p) > maxPORThreads {
		pl.ok = false
		return pl
	}
	all := threadMask(0)
	for _, ps := range pl.steps {
		b := maskBit(ps.T)
		all |= b
		if lang.VisibleStep(p.Thread(ps.T), ps.S) {
			pl.visible |= b
		}
	}

	// Singleton 1: an invisible silent step commutes with everything
	// and is untouchable by other threads. The step must provably make
	// progress (reach a memory step or terminate): all-silent cycles
	// exist under every model, so reducing to a diverging silent
	// thread would postpone every other thread around that cycle
	// forever (the ignoring problem). A progressing chain ends within
	// silentProgressLimit steps, after which the plan changes.
	for _, ps := range pl.steps {
		if ps.S.Kind == lang.StepSilent && pl.visible&maskBit(ps.T) == 0 &&
			lang.SilentProgress(p.Thread(ps.T), silentProgressLimit) {
			pl.persist = maskBit(ps.T)
			return pl
		}
	}

	// Singleton 2: an invisible memory step whose variable no other
	// live thread may ever access conflictingly. Footprints are static
	// over-approximations of the residual programs, so the independence
	// covers every future transition of the other threads, not just the
	// currently enabled ones. Under models with StepsAcyclic, memory
	// steps grow the progress measure and never close a cycle; under
	// the others (SC) the thread's residual must additionally be
	// loop-free, or a private spin loop could cycle solo and starve
	// the rest (the ignoring problem again). Footprints are computed
	// once per live thread, lazily — this stage only runs when no
	// silent singleton exists.
	acyclic := c.StepsAcyclic()
	// Footprint caches live on the stack for the typical thread counts;
	// the closure below does not escape, so neither do the arrays.
	var fpsArr [8]lang.Footprint
	var fpsOKArr [8]bool
	fps, fpsOK := fpsArr[:], fpsOKArr[:]
	if len(p) > len(fpsArr) {
		fps = make([]lang.Footprint, len(p))
		fpsOK = make([]bool, len(p))
	}
	footprint := func(i int) lang.Footprint {
		if !fpsOK[i] {
			fps[i] = lang.MayAccess(p[i])
			fpsOK[i] = true
		}
		return fps[i]
	}
	for _, ps := range pl.steps {
		if ps.S.Kind == lang.StepSilent || pl.visible&maskBit(ps.T) != 0 {
			continue
		}
		if !acyclic && !loopFree(p.Thread(ps.T)) {
			continue
		}
		wr := ps.S.Kind != lang.StepRead
		conflict := false
		for i := range p {
			u := event.Thread(i + 1)
			if u == ps.T || lang.Terminated(p[i]) {
				continue
			}
			if footprint(i).ConflictsWith(ps.S.Loc, wr) {
				conflict = true
				break
			}
		}
		if !conflict {
			pl.persist = maskBit(ps.T)
			return pl
		}
	}

	pl.persist = all
	return pl
}

// forEachReducedSucc expands cfg under its POR plan: for every
// selected step (persistent, not slept under sl) it generates the
// model's successors and calls emit with each successor and its child
// sleep mask. emit returns false to stop the expansion early. ok is
// false when the plan cannot be applied (program too wide for masks);
// callers fall back to full expansion. This is the one reduction loop
// of the one engine, for every backend. cell (nil when metrics are
// disabled) counts the enabled steps the reduction skipped and the
// successors generated.
func (r *run[C]) forEachReducedSucc(cfg C, sl threadMask, cell *telemetry.Cell, emit func(C, threadMask) bool) (ok bool) {
	pl := planPOR(cfg)
	if !pl.ok {
		return false
	}
	var pruned uint64
	var succ []C
	for j, ps := range pl.steps {
		b := maskBit(ps.T)
		if pl.persist&b == 0 || sl&b != 0 {
			pruned++
			continue
		}
		cs := childSleep(cfg, pl, sl, j)
		succ = r.ops.expandStep(cfg, succ[:0], ps)
		cell.Add(telemetry.EngineSuccessors, uint64(len(succ)))
		for _, s := range succ {
			if !emit(s, cs) {
				cell.Add(telemetry.EnginePORPruned, pruned)
				return true
			}
		}
	}
	cell.Add(telemetry.EnginePORPruned, pruned)
	return true
}

// childSleep computes the sleep mask of successors generated by step j
// of the plan: the threads already covered at the parent — the
// parent's sleep plus the persistent threads ordered before j — whose
// steps commute with step j under the model's oracle. Visible steps
// are never slept and wake everything when taken. Monotone in the
// parent mask, which makes the dedup-by-intersection fixpoint
// well-defined.
func childSleep[C model.Base](cfg C, pl porPlan, sleep threadMask, j int) threadMask {
	uj := pl.steps[j]
	if pl.visible&maskBit(uj.T) != 0 {
		return 0
	}
	cand := sleep
	for k := 0; k < j; k++ {
		if b := maskBit(pl.steps[k].T); pl.persist&b != 0 {
			cand |= b
		}
	}
	out := threadMask(0)
	for _, ps := range pl.steps {
		b := maskBit(ps.T)
		if cand&b == 0 || pl.visible&b != 0 {
			continue
		}
		if cfg.StepsCommute(ps, uj) {
			out |= b
		}
	}
	return out
}
