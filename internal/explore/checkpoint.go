package explore

// Checkpoint/resume: a search can persist its sharded seen-set and
// frontier to disk and be continued later — across process restarts —
// by Resume. The checkpoint is written at a consistent cut: the pool
// is suspended (periodic checkpoints) or has stopped (final
// checkpoint), so every seen entry is either fully expanded or has its
// configuration on the frontier, and the frontier configurations are
// serialised through the model's snapshot support
// (model.Config.AppendSnapshot / model.Model.Restore).
//
// Resuming reaches the same fixpoint as an uninterrupted run: the
// engine's depth and sleep-mask relaxations are monotone and
// re-admission is idempotent, so the terminated-state fingerprint set,
// Explored, Depth and the verdict are functions of the search
// parameters alone, not of where (or how often) the search was
// interrupted. The checkpoint/resume equivalence test asserts exactly
// this on the E13 workload.
//
// Format: a gob stream of one checkpointFile value, versioned, keyed
// by 128-bit fingerprints. Entry metadata (depth, sleep mask,
// expansion state) restores the relaxation fixpoint-in-progress;
// frontier snapshots restore the pending configurations; a recorded
// violation restores the verdict. Writes are atomic (temp file +
// rename), so a crash mid-write leaves the previous checkpoint intact.

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// checkpointVersion is bumped on any incompatible format change;
// Resume rejects other versions. Version 2 added the opaque Extra
// caller blob (Options.CheckpointExtra/ResumeExtra).
const checkpointVersion = 2

// checkpointEntry is one serialised seen-set record.
type checkpointEntry struct {
	FP            fingerprint.FP
	Depth         int32
	ExpandedAt    int32
	Sleep         uint64
	ExpandedSleep uint64
	Expandable    bool
	Term          bool
}

// checkpointItem is one serialised frontier configuration.
type checkpointItem struct {
	FP       fingerprint.FP
	Snapshot []byte
}

// checkpointFile is the on-disk checkpoint container.
type checkpointFile struct {
	Version    int
	NInit      int
	MaxEvents  int
	POR        bool
	Truncated  bool
	Explored   int
	Terminated int
	// Violation is the snapshot of the violating configuration (nil
	// if none): a violated search resumes to its final verdict
	// immediately.
	Violation []byte
	Entries   []checkpointEntry
	Frontier  []checkpointItem
	// Extra is the opaque caller blob of Options.CheckpointExtra,
	// handed back verbatim through Options.ResumeExtra. The engine
	// never interprets it.
	Extra []byte
}

// writeCheckpoint persists the current search state to
// opts.CheckpointPath. Only called while the pool is stopped or
// suspended (no workers running), so the shards and queue are stable.
func (r *run[C]) writeCheckpoint() error {
	if r.opts.CheckpointPath == "" {
		return nil
	}
	panicked := make(map[fingerprint.FP]bool, len(r.panicItems))
	for _, it := range r.panicItems {
		panicked[it.fp] = true
	}
	ck := checkpointFile{
		Version:    checkpointVersion,
		NInit:      r.nInit,
		MaxEvents:  r.maxEv,
		POR:        r.opts.POR,
		Truncated:  r.truncated.Load(),
		Explored:   int(r.explored.Load()),
		Terminated: int(r.terminated.Load()),
	}
	if v := r.violation.Load(); v != nil {
		ck.Violation = (*v).AppendSnapshot(nil)
	}
	for i := range r.shards {
		for fp, e := range r.shards[i].byFP {
			ce := checkpointEntry{
				FP:            fp,
				Depth:         e.depth,
				ExpandedAt:    e.expandedAt,
				Sleep:         uint64(e.sleep),
				ExpandedSleep: uint64(e.expandedSleep),
				Expandable:    e.expandable,
				Term:          e.term,
			}
			if panicked[fp] {
				// The live run does not retry a panicked expansion,
				// but a resume (after a fix) should: re-open it.
				ce.ExpandedAt, ce.ExpandedSleep = -1, 0
			}
			ck.Entries = append(ck.Entries, ce)
		}
	}
	for _, it := range r.frontierItems() {
		ck.Frontier = append(ck.Frontier, checkpointItem{
			FP:       it.fp,
			Snapshot: it.cfg.AppendSnapshot(nil),
		})
	}
	if r.opts.CheckpointExtra != nil {
		ck.Extra = r.opts.CheckpointExtra()
	}
	if err := writeCheckpointFile(r.opts.CheckpointPath, &ck); err != nil {
		return err
	}
	r.tel.Add(telemetry.EngineCheckpointWrites, 1)
	if r.tracer != nil {
		r.tracer.Instant("checkpoint", -1, map[string]any{
			"entries": len(ck.Entries), "frontier": len(ck.Frontier)})
	}
	return nil
}

// ckWriteFault, when non-nil, runs after the gob stream is written to
// the temp file and before it is synced and renamed into place. It is
// a fault-injection seam for the checkpoint tests: returning an error
// simulates a write killed mid-stream (the test may also corrupt or
// truncate the temp file first), and the write path must then remove
// the temp file and leave any previous checkpoint untouched.
var ckWriteFault func(tmp string) error

func writeCheckpointFile(path string, ck *checkpointFile) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("explore: checkpoint: %w", err)
	}
	tmp := f.Name()
	if err := gob.NewEncoder(f).Encode(ck); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("explore: checkpoint encode: %w", err)
	}
	if ckWriteFault != nil {
		if err := ckWriteFault(tmp); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("explore: checkpoint write: %w", err)
		}
	}
	// Sync before rename: the rename must never make a checkpoint
	// visible whose bytes could still be lost to a crash — a resumed
	// run trusts whatever sits at path.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("explore: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("explore: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("explore: checkpoint rename: %w", err)
	}
	return nil
}

func loadCheckpointFile(path string) (*checkpointFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("explore: checkpoint: %w", err)
	}
	defer f.Close()
	var ck checkpointFile
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return nil, fmt.Errorf("explore: checkpoint decode %s: %w", path, err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("explore: checkpoint %s has version %d, want %d", path, ck.Version, checkpointVersion)
	}
	if ck.Explored != len(ck.Entries) {
		return nil, fmt.Errorf("explore: checkpoint %s is inconsistent: %d entries for Explored=%d",
			path, len(ck.Entries), ck.Explored)
	}
	return &ck, nil
}

// PeekExtra returns the opaque caller blob stored in the checkpoint
// at path (nil when none was recorded) without restoring the search.
// Callers whose blob determines how to resume — the verification
// service stores the original request there, and needs it to pick the
// model and budgets before calling Resume — read it with this first.
func PeekExtra(path string) ([]byte, error) {
	ck, err := loadCheckpointFile(path)
	if err != nil {
		return nil, err
	}
	return ck.Extra, nil
}

// Resume continues a checkpointed search of model m under opts. The
// search-identity parameters (MaxEvents, POR) are taken from the
// checkpoint — they are part of what the seen-set means — while
// budgets, worker count, property, hooks and checkpoint settings come
// from opts. Frontier snapshots are restored through m.Restore and
// verified against their recorded fingerprints, so a checkpoint from a
// different backend or a corrupted file fails loudly. Resuming a
// finished checkpoint is idempotent; resuming a violated one returns
// the violated result immediately.
func Resume(path string, m model.Model, opts Options) (Result, error) {
	if opts.CheckCollisions {
		return Result{}, fmt.Errorf("explore: CheckCollisions is incompatible with checkpointing")
	}
	ck, err := loadCheckpointFile(path)
	if err != nil {
		return Result{}, err
	}
	if opts.ResumeExtra != nil {
		opts.ResumeExtra(ck.Extra)
	}
	opts.MaxEvents = ck.MaxEvents
	opts.POR = ck.POR
	// Monomorphise like Run: the backend's name picks the concrete
	// instantiation (the restored frontier configurations are verified
	// to unbox to it), anything else runs boxed.
	switch m.Name() {
	case "rar":
		return resumeAs(path, ck, m, opts, coreOps(opts))
	case "sc":
		return resumeAs(path, ck, m, opts, scOps(opts))
	default:
		return resumeAs(path, ck, m, opts, boxedOps(opts))
	}
}

// resumeAs restores the checkpointed seen-set and frontier into one
// engine instantiation and continues the search.
func resumeAs[C model.Base](path string, ck *checkpointFile, m model.Model, opts Options, bk ops[C]) (Result, error) {
	r := newRun[C](opts, bk)
	r.nInit = ck.NInit
	nTerm := 0
	for _, ce := range ck.Entries {
		e := &entry{
			depth:         ce.Depth,
			expandedAt:    ce.ExpandedAt,
			sleep:         threadMask(ce.Sleep),
			expandedSleep: threadMask(ce.ExpandedSleep),
			expandable:    ce.Expandable,
			term:          ce.Term,
		}
		sh := r.shardOf(ce.FP)
		if _, dup := sh.byFP[ce.FP]; dup {
			return Result{}, fmt.Errorf("explore: checkpoint %s has duplicate entry %v", path, ce.FP)
		}
		sh.byFP[ce.FP] = e
		if ce.Term {
			nTerm++
		}
	}
	if nTerm != ck.Terminated {
		return Result{}, fmt.Errorf("explore: checkpoint %s is inconsistent: %d terminated entries for Terminated=%d",
			path, nTerm, ck.Terminated)
	}
	r.explored.Store(int64(ck.Explored))
	r.terminated.Store(int64(nTerm))
	r.truncated.Store(ck.Truncated)
	// Replay the seen-set into the collector so audits built on
	// Resume observe the complete reachable set, not just the portion
	// explored after the interruption.
	if r.opts.collect != nil {
		for _, ce := range ck.Entries {
			r.opts.collect(ce.FP, ce.Term)
		}
	}
	for _, fi := range ck.Frontier {
		mc, err := m.Restore(fi.Snapshot)
		if err != nil {
			return Result{}, fmt.Errorf("explore: checkpoint %s frontier: %w", path, err)
		}
		c, ok := r.ops.unbox(mc)
		if !ok {
			return Result{}, fmt.Errorf("explore: checkpoint %s frontier: %s restored a %T, not the backend's configuration type",
				path, m.Name(), mc)
		}
		if got := c.Fingerprint(); got != fi.FP {
			return Result{}, fmt.Errorf("explore: checkpoint %s frontier snapshot drifted: restored %v, recorded %v",
				path, got, fi.FP)
		}
		if e := r.shardOf(fi.FP).byFP[fi.FP]; e == nil {
			return Result{}, fmt.Errorf("explore: checkpoint %s frontier config %v has no seen-set entry", path, fi.FP)
		}
		r.pool.push(item[C]{cfg: c, fp: fi.FP})
	}
	if len(ck.Violation) > 0 {
		c, err := m.Restore(ck.Violation)
		if err != nil {
			return Result{}, fmt.Errorf("explore: checkpoint %s violation: %w", path, err)
		}
		r.violation.Store(&c)
		r.requested.Store(int32(StopViolation))
		r.stop.Store(int32(StopViolation))
		// The verdict is final; nothing further runs.
		return r.finalize(), nil
	}
	if r.tracer != nil {
		r.tracer.Emit(telemetry.Record{Type: "begin", Name: "search", Worker: -1,
			Args: map[string]any{"resume": path, "workers": opts.workers(), "max_events": r.maxEv, "por": opts.POR}})
	}
	r.execute()
	res := r.finalize()
	if r.tracer != nil {
		r.tracer.End("search", -1, map[string]any{
			"verdict": res.Verdict.String(), "stop": res.Stop.String(),
			"explored": res.Explored, "frontier": res.Frontier})
	}
	return res, nil
}

// CheckpointInterval is a convenience guard for CLI flag plumbing: it
// validates that a periodic interval has a path to write to.
func CheckpointInterval(path string, every time.Duration) error {
	if every > 0 && path == "" {
		return fmt.Errorf("explore: a checkpoint interval needs a checkpoint path")
	}
	return nil
}
