package explore

// Resource governance: every exploration can be bounded by wall-clock
// time, context cancellation, a state budget and a memory budget, and
// reports how (and whether) it was cut through a StopCause and a
// tri-state Verdict. The signalling discipline is built around two
// atomics on the run:
//
//   - requested is the sticky first real cause (first-wins CAS): it is
//     what Result.Stop reports, and it is never overwritten;
//   - stop is the live pool signal workers poll between admissions.
//     It may transiently hold stopCheckpoint — the internal cause the
//     periodic-checkpoint monitor uses to suspend the pool — which is
//     cleared again on resume. A real cause arriving during a
//     suspension lands in requested and is adopted when the engine
//     decides whether to resume, so no budget signal can be lost to a
//     checkpoint race.
//
// Soundness under a cut: a worker whose expansion is interrupted (by a
// stop signal, a rejected admission, or a panic in model code) leaves
// its configuration unexpanded — the entry is unclaimed and re-queued
// (or, for panics, captured as a repro artifact) — so the frontier
// always accounts for every configuration whose successors have not
// all been admitted. That is what makes a partial Result honest and a
// checkpoint resumable.

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/fingerprint"
)

// StopCause identifies what cut an exploration short.
type StopCause int32

const (
	// StopNone: the search ran to quiescence (within the MaxEvents
	// progress bound — Result.Truncated reports that cut separately).
	StopNone StopCause = iota
	// StopViolation: a property violation stopped the search.
	StopViolation
	// StopMaxConfigs: the MaxConfigs state budget rejected an
	// admission.
	StopMaxConfigs
	// StopDeadline: the wall-clock budget (Timeout/Deadline) expired.
	StopDeadline
	// StopCancelled: Options.Context was cancelled.
	StopCancelled
	// StopMemory: the heap exceeded MaxMemBytes.
	StopMemory
	// stopCheckpoint suspends the pool for a periodic checkpoint; it
	// never escapes into a Result.
	stopCheckpoint
)

func (c StopCause) String() string {
	switch c {
	case StopNone:
		return "none"
	case StopViolation:
		return "violation"
	case StopMaxConfigs:
		return "max-configs"
	case StopDeadline:
		return "deadline"
	case StopCancelled:
		return "cancelled"
	case StopMemory:
		return "memory"
	case stopCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("StopCause(%d)", int32(c))
	}
}

// TimingDependent reports whether the cause cuts the search at a
// scheduling-dependent point (wall clock, cancellation, memory
// pressure), making per-run statistics non-reproducible. A MaxConfigs
// cut is not timing-dependent: it always rejects exactly the same
// admission count, so Explored and Truncated stay comparable.
func (c StopCause) TimingDependent() bool {
	return c == StopDeadline || c == StopCancelled || c == StopMemory
}

// Verdict is the tri-state outcome of a bounded search.
type Verdict int

const (
	// VerdictProved: the state space was exhausted (within the
	// MaxEvents progress bound) and no violation was found. Absence of
	// a violation is relative to that bound — Result.Truncated reports
	// whether the bound actually cut anything — but not to any resource
	// budget: a budget-cut or degraded search never reports PROVED.
	VerdictProved Verdict = iota
	// VerdictViolated: a property violation was found. The violating
	// configuration is real and replayable regardless of any budget.
	VerdictViolated
	// VerdictBounded: a resource budget (deadline, cancellation,
	// memory, MaxConfigs) cut the search, or worker panics degraded
	// it, before the space was exhausted; the absence of a violation
	// is inconclusive.
	VerdictBounded
)

func (v Verdict) String() string {
	switch v {
	case VerdictProved:
		return "PROVED"
	case VerdictViolated:
		return "VIOLATED"
	case VerdictBounded:
		return "BOUNDED"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Hooks observes the engine from the outside, build-tag-free. The one
// call site is on the expansion path inside the worker's recover
// scope, so a hook that panics exercises exactly the engine's panic
// isolation — which is how internal/faultinject injects worker faults
// without the engine importing it.
type Hooks interface {
	// BeforeExpand runs after a configuration is claimed for expansion
	// and before its successors are generated. It may sleep (latency
	// injection), allocate (memory-pressure injection) or panic (fault
	// injection). Called concurrently when Workers > 1.
	BeforeExpand(fp fingerprint.FP, depth int)
}

// PanicRecord is the shrinkable repro artifact of one isolated worker
// panic: the configuration being expanded when model code panicked.
// Snapshot restores (via Model.Restore) to the offending
// configuration, so `expand the restored config` reproduces a
// deterministic panic; Program is its residual program for human eyes
// and for the shrinker.
type PanicRecord struct {
	// FP is the fingerprint of the configuration whose expansion
	// panicked.
	FP fingerprint.FP
	// Depth is the depth it was claimed at.
	Depth int
	// Program renders the residual program.
	Program string
	// Snapshot is the configuration's binary snapshot
	// (model.Config.AppendSnapshot).
	Snapshot []byte
	// Err renders the recovered panic value.
	Err string
	// Stack is the recovering goroutine's stack (best effort: the
	// frames below the worker have already unwound when the recover
	// runs; the snapshot is the faithful repro).
	Stack string
}

// stopWith signals a real stop cause: the first caller wins the sticky
// requested slot, the live signal is set unless a checkpoint
// suspension holds it (the suspension path adopts requested before
// resuming), and the pool is drained.
func (r *run[C]) stopWith(c StopCause) {
	if r.requested.CompareAndSwap(0, int32(c)) && r.tracer != nil {
		r.tracer.Instant("stop", -1, map[string]any{"cause": c.String()})
	}
	r.stop.CompareAndSwap(0, int32(c))
	r.pool.stop()
}

// suspendForCheckpoint suspends the pool for a periodic checkpoint.
// A no-op when any stop signal (real or checkpoint) is already live:
// real causes write a final checkpoint anyway.
func (r *run[C]) suspendForCheckpoint() {
	if r.stop.CompareAndSwap(0, int32(stopCheckpoint)) {
		r.pool.stop()
	}
}

// effectiveDeadline folds Timeout (relative) and Deadline (absolute)
// into the earliest absolute deadline; zero means none.
func (o Options) effectiveDeadline(now time.Time) time.Time {
	d := o.Deadline
	if o.Timeout > 0 {
		if t := now.Add(o.Timeout); d.IsZero() || t.Before(d) {
			d = t
		}
	}
	return d
}

func (o Options) memPoll() time.Duration {
	if o.MemPoll > 0 {
		return o.MemPoll
	}
	return 25 * time.Millisecond
}

// needMonitor reports whether any budget requires the watcher
// goroutine; without one the engine spawns nothing extra.
func (r *run[C]) needMonitor() bool {
	return !r.deadline.IsZero() || r.opts.Context != nil ||
		r.opts.MaxMemBytes > 0 || (r.opts.CheckpointPath != "" && r.opts.CheckpointEvery > 0)
}

// monitor watches the budgets and converts the first exhaustion into a
// stop signal. It runs for the whole execute loop — across checkpoint
// suspensions — and exits when done closes.
func (r *run[C]) monitor(done <-chan struct{}) {
	var deadlineC <-chan time.Time
	if !r.deadline.IsZero() {
		t := time.NewTimer(time.Until(r.deadline))
		defer t.Stop()
		deadlineC = t.C
	}
	var memC <-chan time.Time
	if r.opts.MaxMemBytes > 0 {
		tk := time.NewTicker(r.opts.memPoll())
		defer tk.Stop()
		memC = tk.C
	}
	var ckC <-chan time.Time
	if r.opts.CheckpointPath != "" && r.opts.CheckpointEvery > 0 {
		tk := time.NewTicker(r.opts.CheckpointEvery)
		defer tk.Stop()
		ckC = tk.C
	}
	var ctxC <-chan struct{}
	if r.opts.Context != nil {
		ctxC = r.opts.Context.Done()
	}
	for {
		select {
		case <-done:
			return
		case <-deadlineC:
			r.stopWith(StopDeadline)
			deadlineC = nil
		case <-ctxC:
			r.stopWith(StopCancelled)
			ctxC = nil
		case <-memC:
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > r.opts.MaxMemBytes {
				r.stopWith(StopMemory)
				memC = nil
			}
		case <-ckC:
			r.suspendForCheckpoint()
		}
	}
}
