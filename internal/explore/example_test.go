package explore_test

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/model"
)

// ExampleRun explores the message-passing idiom: thread 1 publishes
// data and raises a flag with a releasing write, thread 2 reads the
// flag with an acquiring load and then the data. The exploration is
// exhaustive within the event bound, and the final data values show
// the release/acquire guarantee: once the flag read returns 1, the
// stale data value 0 is unobservable.
func ExampleRun() {
	prog := lang.Prog{
		lang.SeqC(
			lang.AssignC("d", lang.V(5)),    // d := 5   (relaxed)
			lang.AssignRelC("f", lang.V(1)), // f :=R 1  (release)
		),
		lang.SeqC(
			lang.AssignC("a", lang.XA("f")), // a := f^A (acquire)
			lang.AssignC("b", lang.X("d")),  // b := d
		),
	}
	cfg := core.NewConfig(prog, map[event.Var]event.Val{
		"d": 0, "f": 0, "a": 0, "b": 0,
	})

	res := explore.Run(cfg, explore.Options{MaxEvents: 10, Workers: 1})
	fmt.Printf("explored=%d terminated=%d truncated=%v\n",
		res.Explored, res.Terminated, res.Truncated)

	// Collect the distinct final (a, b) outcomes. POR prunes commuting
	// interleavings but preserves every terminated configuration, so
	// the outcome set is identical with the reduction on.
	outcomes := explore.Outcomes(cfg, explore.Options{MaxEvents: 10, Workers: 1, POR: true},
		func(c model.Config) string {
			s := c.(core.Config).S
			val := func(x event.Var) event.Val {
				g, _ := s.Last(x)
				return s.Event(g).WrVal()
			}
			return fmt.Sprintf("a=%d b=%d", val("a"), val("b"))
		})
	keys := make([]string, 0, len(outcomes))
	for k := range outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k)
	}
	// Output:
	// explored=35 terminated=3 truncated=false
	// a=0 b=0
	// a=0 b=5
	// a=1 b=5
}
