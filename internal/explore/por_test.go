package explore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/model"
)

func mkConfig(vars map[event.Var]event.Val, coms ...lang.Com) core.Config {
	return core.NewConfig(lang.Prog(coms), vars)
}

func TestPlanPORSilentSingleton(t *testing.T) {
	// Thread 1's next step is the silent Seq advance over the finished
	// skip; thread 2 has a memory step. The silent thread is a
	// persistent singleton.
	c := mkConfig(map[event.Var]event.Val{"x": 0},
		lang.SeqC(lang.SkipC(), lang.SkipC(), lang.AssignC("x", lang.V(1))),
		lang.AssignC("x", lang.V(2)),
	)
	pl := planPOR(c)
	if !pl.ok || pl.persist != maskBit(1) {
		t.Fatalf("want silent singleton {1}, got persist=%b ok=%v", pl.persist, pl.ok)
	}
}

func TestPlanPORFootprintSingleton(t *testing.T) {
	// Thread 1 writes x; thread 2 only ever touches y and a. Thread 1
	// is a persistent singleton by footprint disjointness.
	c := mkConfig(map[event.Var]event.Val{"x": 0, "y": 0, "a": 0},
		lang.AssignC("x", lang.V(1)),
		lang.SeqC(lang.AssignC("a", lang.X("y")), lang.AssignC("y", lang.V(2))),
	)
	pl := planPOR(c)
	if !pl.ok || pl.persist != maskBit(1) {
		t.Fatalf("want footprint singleton {1}, got persist=%b ok=%v", pl.persist, pl.ok)
	}
}

func TestPlanPORConflictFullSet(t *testing.T) {
	// Thread 2 eventually reads x, so writing x is not independent —
	// no singleton, the full enabled set is persistent.
	c := mkConfig(map[event.Var]event.Val{"x": 0, "a": 0},
		lang.AssignC("x", lang.V(1)),
		lang.AssignC("a", lang.X("x")),
	)
	pl := planPOR(c)
	if !pl.ok || pl.persist != (maskBit(1)|maskBit(2)) {
		t.Fatalf("want full persistent set, got persist=%b ok=%v", pl.persist, pl.ok)
	}
}

func TestPlanPORLabelVisible(t *testing.T) {
	// Thread 1 sits at a label: its (silent) step is visible and must
	// not become a reducing singleton even though it commutes with
	// everything.
	c := mkConfig(map[event.Var]event.Val{"x": 0},
		lang.LabelC("cs", lang.SkipC()),
		lang.AssignC("x", lang.V(1)),
	)
	pl := planPOR(c)
	if pl.visible&maskBit(1) == 0 {
		t.Fatal("label step not marked visible")
	}
	if pl.persist == maskBit(1) {
		t.Fatal("visible step chosen as reducing singleton")
	}
}

func TestChildSleep(t *testing.T) {
	// Two independent writers: with the full persistent set, the
	// second-explored thread's successor must sleep the first (the
	// 1·2 order covers 2·1), and the first's successor sleeps nobody.
	c := mkConfig(map[event.Var]event.Val{"x": 0, "y": 0},
		lang.AssignC("x", lang.V(1)),
		lang.AssignC("y", lang.V(2)),
	)
	pl := planPOR(c)
	// Both writers are footprint-independent, so the heuristic picks a
	// singleton; force the full set to exercise the sleep arithmetic.
	pl.persist = maskBit(1) | maskBit(2)
	if got := childSleep(c, pl, 0, 0); got != 0 {
		t.Fatalf("first child sleep = %b, want 0", got)
	}
	if got := childSleep(c, pl, 0, 1); got != maskBit(1) {
		t.Fatalf("second child sleep = %b, want {1}", got)
	}

	// Dependent steps are filtered from the sleep set.
	d := mkConfig(map[event.Var]event.Val{"x": 0},
		lang.AssignC("x", lang.V(1)),
		lang.AssignC("x", lang.V(2)),
	)
	dl := planPOR(d)
	if dl.persist != (maskBit(1) | maskBit(2)) {
		t.Fatalf("conflicting writers: persist=%b, want full set", dl.persist)
	}
	if got := childSleep(d, dl, 0, 1); got != 0 {
		t.Fatalf("dependent step slept: %b", got)
	}
}

// TestPORSilentDivergenceNotReduced regression-tests the ignoring
// problem: a purely silent cycle ("while (1) { skip }") must never be
// chosen as a reducing singleton, or it would postpone every other
// thread forever and hide label-visible violations the reduction
// promises to preserve.
func TestPORSilentDivergenceNotReduced(t *testing.T) {
	prog := lang.Prog{
		lang.WhileC(lang.V(1), lang.SkipC()), // diverges silently
		lang.SeqC(
			lang.AssignC("y", lang.V(1)),
			lang.LabelC("cs", lang.AssignC("y", lang.V(2))),
		),
	}
	vars := map[event.Var]event.Val{"y": 0}
	cfg := core.NewConfig(prog, vars)

	pl := planPOR(cfg)
	if pl.persist == maskBit(1) {
		t.Fatal("diverging silent thread chosen as reducing singleton")
	}

	// Thread 2 reaching its critical-section label must be observable
	// under reduction, at every worker count.
	property := func(c model.Config) bool { return lang.AtLabel(c.Program().Thread(2)) != "cs" }
	for _, workers := range []int{1, 8} {
		res := Run(cfg, Options{MaxEvents: 8, Workers: workers, POR: true, Property: property})
		if res.Violation == nil {
			t.Fatalf("workers=%d: label-visible violation hidden by the reduction", workers)
		}
	}

	// And the audit must agree with the full search end to end.
	a := CheckPOR(cfg, Options{MaxEvents: 8, Workers: 1, Property: property})
	if a.VerdictDiverged {
		t.Fatalf("verdict diverged: %s", a)
	}
}

// TestPORReductionOutcomesPreserved cross-checks Outcomes with and
// without reduction on a program whose interleavings mostly commute.
func TestPORReductionOutcomesPreserved(t *testing.T) {
	prog := lang.Prog{
		lang.SeqC(lang.AssignC("x", lang.V(1)), lang.AssignRelC("f", lang.V(1))),
		lang.SeqC(lang.AssignC("a", lang.XA("f")), lang.AssignC("b", lang.X("x"))),
		lang.AssignC("y", lang.V(3)),
	}
	vars := map[event.Var]event.Val{"x": 0, "y": 0, "f": 0, "a": 0, "b": 0}
	sum := func(c model.Config) string {
		s := c.(core.Config).S
		out := ""
		for _, x := range []event.Var{"a", "b"} {
			g, ok := s.Last(x)
			if !ok {
				continue
			}
			out += string(x) + string(rune('0'+s.Event(g).WrVal())) + ";"
		}
		return out
	}
	full := Outcomes(core.NewConfig(prog, vars), Options{MaxEvents: 12, Workers: 1}, sum)
	red := Outcomes(core.NewConfig(prog, vars), Options{MaxEvents: 12, Workers: 1, POR: true}, sum)
	if len(full) != len(red) {
		t.Fatalf("outcome sets differ: full=%d reduced=%d", len(full), len(red))
	}
	for k := range full {
		if !red[k] {
			t.Fatalf("outcome %q lost under reduction", k)
		}
	}
}
