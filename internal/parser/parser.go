package parser

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/litmus"
)

// File is a parsed litmus file.
type File struct {
	Name    string
	Init    map[event.Var]event.Val
	Threads map[int]lang.Com
	Observe []event.Var
	Allow   []litmus.Outcome
	Forbid  []litmus.Outcome
	// AllowSC and ForbidSC carry the SC-specific expectations
	// (allow_sc/forbid_sc clauses); see litmus.Test.SCAllowed.
	AllowSC  []litmus.Outcome
	ForbidSC []litmus.Outcome
	// MaxEvents pins the exploration bound (maxevents clause, 0 when
	// absent). Outcome sets of unbounded programs — the CAS-retry
	// loops of the data-structure tier — are bound-relative, so files
	// pinning exact outcome sets record the bound they hold under.
	MaxEvents int
}

// Prog assembles the per-thread commands into a lang.Prog; thread
// numbers must be contiguous from 1.
func (f *File) Prog() (lang.Prog, error) {
	var ids []int
	for id := range f.Threads {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for i, id := range ids {
		if id != i+1 {
			return nil, fmt.Errorf("parser: thread ids must be 1..n, got %v", ids)
		}
	}
	p := make(lang.Prog, len(ids))
	for i, id := range ids {
		p[i] = f.Threads[id]
	}
	return p, nil
}

// Test converts the file into a runnable litmus test.
func (f *File) Test() (*litmus.Test, error) {
	p, err := f.Prog()
	if err != nil {
		return nil, err
	}
	return &litmus.Test{
		Name:        f.Name,
		Prog:        p,
		Init:        f.Init,
		Observe:     f.Observe,
		Allowed:     f.Allow,
		Forbidden:   f.Forbid,
		SCAllowed:   f.AllowSC,
		SCForbidden: f.ForbidSC,
		MaxEvents:   f.MaxEvents,
	}, nil
}

type parser struct {
	toks []token
	pos  int
}

// Parse parses a litmus file.
func Parse(name, src string) (*File, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{
		Name:    name,
		Init:    map[event.Var]event.Val{},
		Threads: map[int]lang.Com{},
	}
	for !p.at(tokEOF, "") {
		switch {
		case p.atIdent("init"):
			p.pos++
			if err := p.parseInit(f); err != nil {
				return nil, err
			}
		case p.atIdent("thread"):
			p.pos++
			if err := p.parseThread(f); err != nil {
				return nil, err
			}
		case p.atIdent("maxevents"):
			p.pos++
			v, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			f.MaxEvents = int(v)
		case p.atIdent("observe"):
			p.pos++
			for p.at(tokIdent, "") && !isKeyword(p.cur().text) {
				x, err := p.parseVarRef()
				if err != nil {
					return nil, err
				}
				f.Observe = append(f.Observe, x)
			}
		case p.atIdent("allow"), p.atIdent("forbid"), p.atIdent("allow_sc"), p.atIdent("forbid_sc"):
			kind := p.take().text
			o, err := p.parseOutcome()
			if err != nil {
				return nil, err
			}
			switch kind {
			case "allow":
				f.Allow = append(f.Allow, o)
			case "forbid":
				f.Forbid = append(f.Forbid, o)
			case "allow_sc":
				f.AllowSC = append(f.AllowSC, o)
			default:
				f.ForbidSC = append(f.ForbidSC, o)
			}
		default:
			t := p.cur()
			return nil, fmt.Errorf("%d:%d: unexpected %q at top level", t.line, t.col, t.text)
		}
	}
	return f, nil
}

func isKeyword(s string) bool {
	switch s {
	case "init", "thread", "observe", "allow", "forbid",
		"allow_sc", "forbid_sc", "maxevents":
		return true
	}
	return false
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) take() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k tokenKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) atIdent(name string) bool {
	return p.at(tokIdent, name)
}

func (p *parser) expect(k tokenKind, text string) (token, error) {
	t := p.cur()
	if t.kind != k || (text != "" && t.text != text) {
		want := text
		if want == "" {
			want = map[tokenKind]string{tokIdent: "identifier", tokInt: "integer"}[k]
		}
		return t, fmt.Errorf("%d:%d: expected %s, got %q", t.line, t.col, want, t.text)
	}
	return p.take(), nil
}

// parseVarRef parses a variable reference in init/observe/outcome
// position: a scalar name, or a concrete cell a[3] (the canonical
// name lang.Cell builds).
func (p *parser) parseVarRef() (event.Var, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return "", err
	}
	if !p.at(tokPunct, "[") {
		return event.Var(t.text), nil
	}
	p.take()
	i, err := p.parseInt()
	if err != nil {
		return "", err
	}
	if _, err := p.expect(tokPunct, "]"); err != nil {
		return "", err
	}
	return lang.Cell(event.Var(t.text), i), nil
}

func (p *parser) parseInit(f *File) error {
	for p.at(tokIdent, "") {
		if isKeyword(p.cur().text) {
			return nil
		}
		x, err := p.parseVarRef()
		if err != nil {
			return err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return err
		}
		v, err := p.parseInt()
		if err != nil {
			return err
		}
		f.Init[x] = v
	}
	return nil
}

func (p *parser) parseInt() (event.Val, error) {
	neg := false
	if p.at(tokPunct, "-") {
		p.take()
		neg = true
	}
	t, err := p.expect(tokInt, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("%d:%d: bad integer %q", t.line, t.col, t.text)
	}
	if neg {
		n = -n
	}
	return event.Val(n), nil
}

func (p *parser) parseOutcome() (litmus.Outcome, error) {
	o := litmus.Outcome{}
	for p.at(tokIdent, "") {
		if isKeyword(p.cur().text) {
			return o, nil
		}
		x, err := p.parseVarRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		v, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		o[x] = v
	}
	return o, nil
}

func (p *parser) parseThread(f *File) error {
	idTok, err := p.expect(tokInt, "")
	if err != nil {
		return err
	}
	id, _ := strconv.Atoi(idTok.text)
	if _, dup := f.Threads[id]; dup {
		return fmt.Errorf("%d:%d: duplicate thread %d", idTok.line, idTok.col, id)
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	f.Threads[id] = body
	return nil
}

func (p *parser) parseBlock() (lang.Com, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []lang.Com
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			t := p.cur()
			return nil, fmt.Errorf("%d:%d: unterminated block", t.line, t.col)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.take() // }
	return lang.SeqC(stmts...), nil
}

func (p *parser) parseStmt() (lang.Com, error) {
	t := p.cur()
	switch {
	case p.atIdent("skip"):
		p.take()
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return lang.SkipC(), nil

	case p.atIdent("if"):
		p.take()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		h, isCas, err := p.tryCasHead()
		if err != nil {
			return nil, err
		}
		var b lang.Expr
		if !isCas {
			b, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		els := lang.SkipC()
		if p.atIdent("else") {
			p.take()
			els, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
		if isCas {
			if h.idx != nil {
				return lang.CasAtC(h.x, h.idx, h.old, h.new, then, els), nil
			}
			return lang.CasC(h.x, h.old, h.new, then, els), nil
		}
		return lang.IfC(b, then, els), nil

	case p.atIdent("while"):
		p.take()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		b, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return lang.WhileC(b, body), nil

	case p.atIdent("label"):
		p.take()
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return lang.LabelC(name.text, body), nil

	case t.kind == tokIdent:
		name := p.take().text
		var idx lang.Expr
		if p.at(tokPunct, "[") {
			p.take()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			idx = e
		}
		switch {
		case p.at(tokPunct, "."): // x.swap(n); x.cas(o, n); a[i].cas(o, n);
			p.take()
			op, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			switch op.text {
			case "swap":
				if _, err := p.expect(tokPunct, "("); err != nil {
					return nil, err
				}
				n, err := p.parseInt()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokPunct, ")"); err != nil {
					return nil, err
				}
				if _, err := p.expect(tokPunct, ";"); err != nil {
					return nil, err
				}
				if idx != nil {
					// Swap carries no symbolic index; a concrete cell is
					// just a variable, so a[3].swap(n) is fine.
					l, ok := idx.(lang.Lit)
					if !ok {
						return nil, fmt.Errorf("%d:%d: swap index must be a literal", op.line, op.col)
					}
					return lang.SwapC(lang.Cell(event.Var(name), l.V), n), nil
				}
				return lang.SwapC(event.Var(name), n), nil
			case "cas":
				old, nw, err := p.parseCasArgs()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokPunct, ";"); err != nil {
					return nil, err
				}
				if idx != nil {
					return lang.CasAtC(event.Var(name), idx, old, nw, lang.SkipC(), lang.SkipC()), nil
				}
				return lang.CasStmtC(event.Var(name), old, nw), nil
			}
			return nil, fmt.Errorf("%d:%d: expected swap or cas, got %q", op.line, op.col, op.text)

		case p.at(tokPunct, ":=") || p.at(tokPunct, ":=R") || p.at(tokPunct, ":=NA"):
			op := p.take().text
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			if idx != nil {
				switch op {
				case ":=R":
					return lang.AssignAtRelC(event.Var(name), idx, e), nil
				case ":=NA":
					return lang.AssignAtNAC(event.Var(name), idx, e), nil
				default:
					return lang.AssignAtC(event.Var(name), idx, e), nil
				}
			}
			switch op {
			case ":=R":
				return lang.AssignRelC(event.Var(name), e), nil
			case ":=NA":
				return lang.AssignNAC(event.Var(name), e), nil
			default:
				return lang.AssignC(event.Var(name), e), nil
			}
		}
		return nil, fmt.Errorf("%d:%d: expected :=, :=R, :=NA, .swap or .cas after %q", t.line, t.col, name)
	}
	return nil, fmt.Errorf("%d:%d: unexpected %q in statement position", t.line, t.col, t.text)
}

// casHead is the target and arguments of a cas application.
type casHead struct {
	x        event.Var
	idx      lang.Expr // nil for a scalar location
	old, new lang.Expr
}

// tryCasHead speculatively parses "x.cas(e, e)" or "a[e].cas(e, e)"
// at the current position. Any mismatch before the ".cas" marker
// backtracks and reports ok=false (the caller reparses as an ordinary
// expression); errors after the marker are committed and propagate.
func (p *parser) tryCasHead() (casHead, bool, error) {
	save := p.pos
	fail := func() (casHead, bool, error) {
		p.pos = save
		return casHead{}, false, nil
	}
	if !p.at(tokIdent, "") || isKeyword(p.cur().text) {
		return fail()
	}
	name := p.take().text
	var idx lang.Expr
	if p.at(tokPunct, "[") {
		p.take()
		e, err := p.parseExpr()
		if err != nil {
			return fail()
		}
		if !p.at(tokPunct, "]") {
			return fail()
		}
		p.take()
		idx = e
	}
	if !p.at(tokPunct, ".") {
		return fail()
	}
	p.take()
	if !p.atIdent("cas") {
		return fail()
	}
	p.take()
	old, nw, err := p.parseCasArgs()
	if err != nil {
		return casHead{}, false, err
	}
	return casHead{x: event.Var(name), idx: idx, old: old, new: nw}, true, nil
}

// parseCasArgs parses "(old, new)".
func (p *parser) parseCasArgs() (old, nw lang.Expr, err error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, nil, err
	}
	old, err = p.parseExpr()
	if err != nil {
		return nil, nil, err
	}
	if _, err := p.expect(tokPunct, ","); err != nil {
		return nil, nil, err
	}
	nw, err = p.parseExpr()
	if err != nil {
		return nil, nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, nil, err
	}
	return old, nw, nil
}

// Expression parsing, precedence climbing.

func (p *parser) parseExpr() (lang.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (lang.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "||") {
		p.take()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = lang.Or(l, r)
	}
	return l, nil
}

func (p *parser) parseAnd() (lang.Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "&&") {
		p.take()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = lang.And(l, r)
	}
	return l, nil
}

func (p *parser) parseCmp() (lang.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "==") || p.at(tokPunct, "!=") || p.at(tokPunct, "<") {
		op := p.take().text
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		switch op {
		case "==":
			l = lang.Eq(l, r)
		case "!=":
			l = lang.Ne(l, r)
		case "<":
			l = lang.Bin{Op: lang.OpLt, L: l, R: r}
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (lang.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "+") || p.at(tokPunct, "-") {
		op := p.take().text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if op == "+" {
			l = lang.Add(l, r)
		} else {
			l = lang.Bin{Op: lang.OpSub, L: l, R: r}
		}
	}
	return l, nil
}

func (p *parser) parseUnary() (lang.Expr, error) {
	switch {
	case p.at(tokPunct, "!"):
		p.take()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return lang.Not(e), nil
	case p.at(tokPunct, "-"):
		p.take()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold -<literal> into a negative literal, mirroring parseInt
		// in init/outcome position. Without this, a programmatically
		// built Lit{-1} (the generator emits them) prints as "-1" but
		// reparses as Un{OpNeg, Lit{1}} — an AST drift the round-trip
		// oracle rejects.
		if l, ok := e.(lang.Lit); ok {
			return lang.Lit{V: -l.V}, nil
		}
		return lang.Un{Op: lang.OpNeg, E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (lang.Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.take()
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, fmt.Errorf("%d:%d: bad integer %q", t.line, t.col, t.text)
		}
		return lang.V(event.Val(n)), nil
	case t.kind == tokIdent:
		p.take()
		if p.at(tokPunct, "[") {
			p.take()
			i, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			// The constructors normalise literal indexes to plain cell
			// loads, so "a[0]" and the cell variable a[0] coincide.
			if p.at(tokPunct, "^A") {
				p.take()
				return lang.XAtA(event.Var(t.text), i), nil
			}
			if p.at(tokPunct, "^NA") {
				p.take()
				return lang.XAtNA(event.Var(t.text), i), nil
			}
			return lang.XAt(event.Var(t.text), i), nil
		}
		if p.at(tokPunct, "^A") {
			p.take()
			return lang.XA(event.Var(t.text)), nil
		}
		if p.at(tokPunct, "^NA") {
			p.take()
			return lang.XNA(event.Var(t.text)), nil
		}
		return lang.X(event.Var(t.text)), nil
	case p.at(tokPunct, "("):
		p.take()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, fmt.Errorf("%d:%d: unexpected %q in expression", t.line, t.col, t.text)
}
