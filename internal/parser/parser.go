package parser

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/litmus"
)

// File is a parsed litmus file.
type File struct {
	Name    string
	Init    map[event.Var]event.Val
	Threads map[int]lang.Com
	Observe []event.Var
	Allow   []litmus.Outcome
	Forbid  []litmus.Outcome
}

// Prog assembles the per-thread commands into a lang.Prog; thread
// numbers must be contiguous from 1.
func (f *File) Prog() (lang.Prog, error) {
	var ids []int
	for id := range f.Threads {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for i, id := range ids {
		if id != i+1 {
			return nil, fmt.Errorf("parser: thread ids must be 1..n, got %v", ids)
		}
	}
	p := make(lang.Prog, len(ids))
	for i, id := range ids {
		p[i] = f.Threads[id]
	}
	return p, nil
}

// Test converts the file into a runnable litmus test.
func (f *File) Test() (*litmus.Test, error) {
	p, err := f.Prog()
	if err != nil {
		return nil, err
	}
	return &litmus.Test{
		Name:      f.Name,
		Prog:      p,
		Init:      f.Init,
		Observe:   f.Observe,
		Allowed:   f.Allow,
		Forbidden: f.Forbid,
	}, nil
}

type parser struct {
	toks []token
	pos  int
}

// Parse parses a litmus file.
func Parse(name, src string) (*File, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{
		Name:    name,
		Init:    map[event.Var]event.Val{},
		Threads: map[int]lang.Com{},
	}
	for !p.at(tokEOF, "") {
		switch {
		case p.atIdent("init"):
			p.pos++
			if err := p.parseInit(f); err != nil {
				return nil, err
			}
		case p.atIdent("thread"):
			p.pos++
			if err := p.parseThread(f); err != nil {
				return nil, err
			}
		case p.atIdent("observe"):
			p.pos++
			for p.at(tokIdent, "") && !isKeyword(p.cur().text) {
				f.Observe = append(f.Observe, event.Var(p.take().text))
			}
		case p.atIdent("allow"), p.atIdent("forbid"):
			kind := p.take().text
			o, err := p.parseOutcome()
			if err != nil {
				return nil, err
			}
			if kind == "allow" {
				f.Allow = append(f.Allow, o)
			} else {
				f.Forbid = append(f.Forbid, o)
			}
		default:
			t := p.cur()
			return nil, fmt.Errorf("%d:%d: unexpected %q at top level", t.line, t.col, t.text)
		}
	}
	return f, nil
}

func isKeyword(s string) bool {
	switch s {
	case "init", "thread", "observe", "allow", "forbid":
		return true
	}
	return false
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) take() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k tokenKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) atIdent(name string) bool {
	return p.at(tokIdent, name)
}

func (p *parser) expect(k tokenKind, text string) (token, error) {
	t := p.cur()
	if t.kind != k || (text != "" && t.text != text) {
		want := text
		if want == "" {
			want = map[tokenKind]string{tokIdent: "identifier", tokInt: "integer"}[k]
		}
		return t, fmt.Errorf("%d:%d: expected %s, got %q", t.line, t.col, want, t.text)
	}
	return p.take(), nil
}

func (p *parser) parseInit(f *File) error {
	for p.at(tokIdent, "") {
		if isKeyword(p.cur().text) {
			return nil
		}
		name := p.take().text
		if _, err := p.expect(tokPunct, "="); err != nil {
			return err
		}
		v, err := p.parseInt()
		if err != nil {
			return err
		}
		f.Init[event.Var(name)] = v
	}
	return nil
}

func (p *parser) parseInt() (event.Val, error) {
	neg := false
	if p.at(tokPunct, "-") {
		p.take()
		neg = true
	}
	t, err := p.expect(tokInt, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("%d:%d: bad integer %q", t.line, t.col, t.text)
	}
	if neg {
		n = -n
	}
	return event.Val(n), nil
}

func (p *parser) parseOutcome() (litmus.Outcome, error) {
	o := litmus.Outcome{}
	for p.at(tokIdent, "") {
		if isKeyword(p.cur().text) {
			return o, nil
		}
		name := p.take().text
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		v, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		o[event.Var(name)] = v
	}
	return o, nil
}

func (p *parser) parseThread(f *File) error {
	idTok, err := p.expect(tokInt, "")
	if err != nil {
		return err
	}
	id, _ := strconv.Atoi(idTok.text)
	if _, dup := f.Threads[id]; dup {
		return fmt.Errorf("%d:%d: duplicate thread %d", idTok.line, idTok.col, id)
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	f.Threads[id] = body
	return nil
}

func (p *parser) parseBlock() (lang.Com, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []lang.Com
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			t := p.cur()
			return nil, fmt.Errorf("%d:%d: unterminated block", t.line, t.col)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.take() // }
	return lang.SeqC(stmts...), nil
}

func (p *parser) parseStmt() (lang.Com, error) {
	t := p.cur()
	switch {
	case p.atIdent("skip"):
		p.take()
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return lang.SkipC(), nil

	case p.atIdent("if"):
		p.take()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		b, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		els := lang.SkipC()
		if p.atIdent("else") {
			p.take()
			els, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
		return lang.IfC(b, then, els), nil

	case p.atIdent("while"):
		p.take()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		b, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return lang.WhileC(b, body), nil

	case p.atIdent("label"):
		p.take()
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return lang.LabelC(name.text, body), nil

	case t.kind == tokIdent:
		name := p.take().text
		switch {
		case p.at(tokPunct, "."): // x.swap(n);
			p.take()
			if _, err := p.expect(tokIdent, "swap"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			n, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			return lang.SwapC(event.Var(name), n), nil

		case p.at(tokPunct, ":=") || p.at(tokPunct, ":=R") || p.at(tokPunct, ":=NA"):
			op := p.take().text
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			switch op {
			case ":=R":
				return lang.AssignRelC(event.Var(name), e), nil
			case ":=NA":
				return lang.AssignNAC(event.Var(name), e), nil
			default:
				return lang.AssignC(event.Var(name), e), nil
			}
		}
		return nil, fmt.Errorf("%d:%d: expected :=, :=R, :=NA or .swap after %q", t.line, t.col, name)
	}
	return nil, fmt.Errorf("%d:%d: unexpected %q in statement position", t.line, t.col, t.text)
}

// Expression parsing, precedence climbing.

func (p *parser) parseExpr() (lang.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (lang.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "||") {
		p.take()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = lang.Or(l, r)
	}
	return l, nil
}

func (p *parser) parseAnd() (lang.Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "&&") {
		p.take()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = lang.And(l, r)
	}
	return l, nil
}

func (p *parser) parseCmp() (lang.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "==") || p.at(tokPunct, "!=") || p.at(tokPunct, "<") {
		op := p.take().text
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		switch op {
		case "==":
			l = lang.Eq(l, r)
		case "!=":
			l = lang.Ne(l, r)
		case "<":
			l = lang.Bin{Op: lang.OpLt, L: l, R: r}
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (lang.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "+") || p.at(tokPunct, "-") {
		op := p.take().text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if op == "+" {
			l = lang.Add(l, r)
		} else {
			l = lang.Bin{Op: lang.OpSub, L: l, R: r}
		}
	}
	return l, nil
}

func (p *parser) parseUnary() (lang.Expr, error) {
	switch {
	case p.at(tokPunct, "!"):
		p.take()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return lang.Not(e), nil
	case p.at(tokPunct, "-"):
		p.take()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold -<literal> into a negative literal, mirroring parseInt
		// in init/outcome position. Without this, a programmatically
		// built Lit{-1} (the generator emits them) prints as "-1" but
		// reparses as Un{OpNeg, Lit{1}} — an AST drift the round-trip
		// oracle rejects.
		if l, ok := e.(lang.Lit); ok {
			return lang.Lit{V: -l.V}, nil
		}
		return lang.Un{Op: lang.OpNeg, E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (lang.Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.take()
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, fmt.Errorf("%d:%d: bad integer %q", t.line, t.col, t.text)
		}
		return lang.V(event.Val(n)), nil
	case t.kind == tokIdent:
		p.take()
		if p.at(tokPunct, "^A") {
			p.take()
			return lang.XA(event.Var(t.text)), nil
		}
		if p.at(tokPunct, "^NA") {
			p.take()
			return lang.XNA(event.Var(t.text)), nil
		}
		return lang.X(event.Var(t.text)), nil
	case p.at(tokPunct, "("):
		p.take()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, fmt.Errorf("%d:%d: unexpected %q in expression", t.line, t.col, t.text)
}
