package parser_test

import (
	"fmt"

	"repro/internal/explore"
	"repro/internal/parser"
)

// ExampleParse parses a litmus file (the grammar is documented in
// docs/litmus-format.md), converts it to a runnable test and checks
// its expectations against the RA operational semantics — the in-tree,
// CI-verified counterpart of the examples/ quickstarts.
func ExampleParse() {
	src := `
// Store buffering: both threads may read the other's initial value.
init x=0 y=0 a=0 b=0
thread 1 { x :=R 1; a := y^A; }
thread 2 { y :=R 1; b := x^A; }
observe a b
allow a=0 b=0
allow a=1 b=1
`
	f, err := parser.Parse("sb.lit", src)
	if err != nil {
		fmt.Println("parse error:", err)
		return
	}
	prog, err := f.Prog()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(prog)

	tc, err := f.Test()
	if err != nil {
		fmt.Println(err)
		return
	}
	rep := tc.Run(explore.Options{MaxEvents: 10, Workers: 1})
	fmt.Printf("pass=%v outcomes=%d\n", rep.Pass(), len(rep.Outcomes))
	// Output:
	// x :=R 1; a := y^A ||| y :=R 1; b := x^A
	// pass=true outcomes=4
}
