// Package parser implements a textual front end for the command
// language: litmus-style files declaring initial memory, one block per
// thread, and expected outcomes. It turns the paper's examples into
// runnable artifacts:
//
//	// message passing, Example 5.7
//	init d=0 f=0 r=0
//	thread 1 { d := 5; f :=R 1; }
//	thread 2 { while (f^A == 0) { skip; } r := d; }
//	observe r
//	allow  r=5
//	forbid r=0
//
// Grammar (precedence low to high): ||, &&, {==,!=,<}, {+,-}, unary
// {!,-}, primary (integer, variable, variable^A, a[e], a[e]^A,
// parenthesised). Statements: skip; x := e; x :=R e; x :=NA e;
// a[e] := e (and :=R/:=NA); x.swap(n); x.cas(e, e); a[e].cas(e, e);
// if (e) {..} else {..}; if (x.cas(e, e)) {..} else {..};
// while (e) {..}; label name {..}. Loads may be annotated x^A
// (acquire) or x^NA (non-atomic). Top-level clauses: init, maxevents,
// thread, observe, allow, forbid, allow_sc, forbid_sc; init, observe
// and outcome positions accept concrete cells (a[3]) alongside scalar
// names.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokPunct // one of the punctuation/operator spellings below
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// operators and punctuation, longest first for maximal munch.
var puncts = []string{
	":=NA", ":=R", ":=", "==", "!=", "&&", "||", "^NA", "^A",
	"{", "}", "(", ")", "[", "]", ";", ",", "<", "+", "-", "!", "=", ".",
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(line, col int, format string, args ...interface{}) error {
	return fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if l.pos < len(l.src) && l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance(1)
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line, col: l.col}, nil
	}
	line, col := l.line, l.col
	c := l.src[l.pos]

	if unicode.IsDigit(rune(c)) {
		start := l.pos
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.advance(1)
		}
		return token{kind: tokInt, text: l.src[start:l.pos], line: line, col: col}, nil
	}
	if isIdentStart(c) {
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.advance(1)
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col}, nil
	}
	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.advance(len(p))
			return token{kind: tokPunct, text: p, line: line, col: col}, nil
		}
	}
	return token{}, l.errorf(line, col, "unexpected character %q", c)
}

// tokenize lexes the whole input.
func tokenize(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
