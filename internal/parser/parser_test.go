package parser

import (
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/lang"
)

const mpSrc = `
// message passing, Example 5.7
init d=0 f=0 r=0
thread 1 { d := 5; f :=R 1; }
thread 2 { while (f^A == 0) { skip; } r := d; }
observe r
allow  r=5
forbid r=0
`

func TestParseMP(t *testing.T) {
	f, err := Parse("mp", mpSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Init) != 3 || f.Init["d"] != 0 {
		t.Fatalf("init = %v", f.Init)
	}
	if len(f.Threads) != 2 {
		t.Fatalf("threads = %d", len(f.Threads))
	}
	if got := f.Threads[1].String(); got != "d := 5; f :=R 1" {
		t.Fatalf("thread 1 = %q", got)
	}
	if !strings.Contains(f.Threads[2].String(), "while") {
		t.Fatalf("thread 2 = %q", f.Threads[2])
	}
	if len(f.Observe) != 1 || f.Observe[0] != "r" {
		t.Fatalf("observe = %v", f.Observe)
	}
	if len(f.Allow) != 1 || f.Allow[0]["r"] != 5 {
		t.Fatalf("allow = %v", f.Allow)
	}
	if len(f.Forbid) != 1 || f.Forbid[0]["r"] != 0 {
		t.Fatalf("forbid = %v", f.Forbid)
	}
}

// The parsed MP test runs end to end and passes its expectations —
// the full pipeline from text to verdict.
func TestParsedMPRuns(t *testing.T) {
	f, err := Parse("mp", mpSrc)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := f.Test()
	if err != nil {
		t.Fatal(err)
	}
	rep := tc.Run(explore.Options{MaxEvents: 12})
	if !rep.Pass() {
		t.Fatalf("parsed MP failed: %s", rep.Summary())
	}
}

func TestParseSwapAndControlFlow(t *testing.T) {
	src := `
init turn=1 flag1=0 flag2=0
thread 1 {
  flag1 := 1;
  turn.swap(2);
  while ((flag2^A == 1) && (turn == 2)) { skip; }
  label cs { skip; }
  flag1 :=R 0;
}
thread 2 {
  if (flag1 == 0) { flag2 := 1; } else { skip; }
}
`
	f, err := Parse("pet1", src)
	if err != nil {
		t.Fatal(err)
	}
	t1 := f.Threads[1].String()
	for _, want := range []string{"turn.swap(2)^RA", "while", "@cs:", "flag1 :=R 0"} {
		if !strings.Contains(t1, want) {
			t.Errorf("thread 1 missing %q: %s", want, t1)
		}
	}
	t2 := f.Threads[2].String()
	if !strings.Contains(t2, "if (flag1==0)") {
		t.Errorf("thread 2 = %q", t2)
	}
}

func TestParseIfWithoutElse(t *testing.T) {
	f, err := Parse("t", `thread 1 { if (1) { skip; } }`)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := f.Threads[1].(lang.If)
	if !ok {
		t.Fatalf("shape = %T", f.Threads[1])
	}
	if !lang.Terminated(c.Else) {
		t.Fatal("missing else should default to skip")
	}
}

func TestExpressionPrecedence(t *testing.T) {
	f, err := Parse("t", `thread 1 { r := a == 1 && b == 2 || !c; }`)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Threads[1].String()
	want := "r := (((a==1)&&(b==2))||!(c))"
	if got != want {
		t.Fatalf("precedence: got %q, want %q", got, want)
	}
	// Arithmetic and comparison; the literal -2 is folded to a
	// negative literal (matching parseInt in init/outcome position),
	// not kept as a unary negation.
	f2, err := Parse("t", `thread 1 { r := a + 1 < b - -2; }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f2.Threads[1].String(), "((a+1)<(b--2))") {
		t.Fatalf("arith: %q", f2.Threads[1])
	}
}

func TestParseNegativeInit(t *testing.T) {
	f, err := Parse("t", `init x=-3
thread 1 { skip; }`)
	if err != nil {
		t.Fatal(err)
	}
	if f.Init["x"] != -3 {
		t.Fatalf("init x = %d", f.Init["x"])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad top level":      `frobnicate`,
		"bad char":           `thread 1 { x := $; }`,
		"missing semicolon":  `thread 1 { x := 1 }`,
		"unterminated block": `thread 1 { x := 1;`,
		"duplicate thread":   `thread 1 { skip; } thread 1 { skip; }`,
		"bad statement":      `thread 1 { 42; }`,
		"bad after ident":    `thread 1 { x + 1; }`,
		"bad swap":           `thread 1 { x.swop(1); }`,
		"missing paren":      `thread 1 { if (1 { skip; } }`,
		"bad init":           `init x 3`,
		"bad expr token":     `thread 1 { x := ;; }`,
	}
	for name, src := range cases {
		if _, err := Parse("t", src); err == nil {
			t.Errorf("%s: no error for %q", name, src)
		} else if !strings.Contains(err.Error(), ":") {
			t.Errorf("%s: error lacks position: %v", name, err)
		}
	}
}

// TestParseArrayCasGrammar: table-driven coverage of the array/CAS
// grammar extension. Every accepted source must reach a printing
// fixed point immediately and reparse to the same program signature —
// the sig-stability contract the exploration caches and testdata/ds
// rest on.
func TestParseArrayCasGrammar(t *testing.T) {
	cases := map[string]struct {
		src  string
		want string // substring of thread 1's rendering
	}{
		"cell init and observe": {
			"init a[0]=0 a[1]=3\nthread 1 { r := a[1]; }\nobserve a[0] r\n",
			"r := a[1]",
		},
		"literal index write normalises": {
			"init a[2]=0\nthread 1 { a[2] := 5; }\n",
			"a[2] := 5",
		},
		"symbolic index load": {
			"init a[0]=0 i=0 r=0\nthread 1 { r := a[i]; }\n",
			"r := a[i]",
		},
		"acquire indexed load": {
			"init a[0]=0 i=0 r=0\nthread 1 { r := a[i]^A; }\n",
			"a[i]^A",
		},
		"indexed release write": {
			"init a[0]=0 i=0\nthread 1 { a[i] :=R 7; }\n",
			"a[i] :=R 7",
		},
		"cas statement": {
			"init x=0\nthread 1 { x.cas(0, 1); }\n",
			"x.cas(0,1)",
		},
		"cas branch": {
			"init x=0 d=0\nthread 1 { if (x.cas(0, 1)) { d := 1; } else { d := 2; } }\n",
			"x.cas(0,1)",
		},
		"cas on cell": {
			"init a[1]=0\nthread 1 { a[1].cas(0, 9); }\n",
			"a[1].cas(0,9)",
		},
		"cas with register operands": {
			"init x=0 r=0\nthread 1 { if (x.cas(r, r + 1)) { skip; } else { skip; } }\n",
			"x.cas(r,(r+1))",
		},
		"maxevents and sc clauses": {
			"init x=0\nmaxevents 12\nthread 1 { x := 1; }\nobserve x\nallow x=1\nallow_sc x=1\nforbid_sc x=0\n",
			"x := 1",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			f, err := Parse("t", tc.src)
			if err != nil {
				t.Fatal(err)
			}
			if got := f.Threads[1].String(); !strings.Contains(got, tc.want) {
				t.Fatalf("thread 1 = %q, want substring %q", got, tc.want)
			}
			txt := f.Format()
			f2, err := Parse("t", txt)
			if err != nil {
				t.Fatalf("printed form does not reparse: %v\n%s", err, txt)
			}
			if txt2 := f2.Format(); txt2 != txt {
				t.Fatalf("printing not a fixed point:\n%s\nvs\n%s", txt, txt2)
			}
			p1, err1 := f.Prog()
			p2, err2 := f2.Prog()
			if err1 != nil || err2 != nil {
				t.Fatalf("prog errors: %v / %v", err1, err2)
			}
			s1 := lang.AppendProgSig(nil, p1)
			s2 := lang.AppendProgSig(nil, p2)
			if string(s1) != string(s2) {
				t.Fatal("program signature drifted across parse→print→reparse")
			}
		})
	}
}

// TestParseArrayCasMeta: the new top-level clauses land in the File
// and the built Test.
func TestParseArrayCasMeta(t *testing.T) {
	src := "init x=0\nmaxevents 12\nthread 1 { x := 1; }\nobserve x\nallow x=1\nallow_sc x=1\nforbid_sc x=0\n"
	f, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if f.MaxEvents != 12 {
		t.Fatalf("maxevents = %d", f.MaxEvents)
	}
	if len(f.AllowSC) != 1 || f.AllowSC[0]["x"] != 1 {
		t.Fatalf("allow_sc = %v", f.AllowSC)
	}
	if len(f.ForbidSC) != 1 || f.ForbidSC[0]["x"] != 0 {
		t.Fatalf("forbid_sc = %v", f.ForbidSC)
	}
	tc, err := f.Test()
	if err != nil {
		t.Fatal(err)
	}
	if tc.MaxEvents != 12 || len(tc.SCAllowed) != 1 || len(tc.SCForbidden) != 1 {
		t.Fatalf("test meta lost: %+v", tc)
	}
}

func TestParseArrayCasErrors(t *testing.T) {
	cases := map[string]string{
		"unterminated index":  `thread 1 { r := a[1; }`,
		"missing cas comma":   `thread 1 { x.cas(0 1); }`,
		"missing cas paren":   `thread 1 { x.cas(0, 1; }`,
		"cas missing args":    `thread 1 { x.cas(); }`,
		"symbolic swap index": `thread 1 { a[i].swap(1); }`,
		"bad maxevents":       "maxevents x\nthread 1 { skip; }",
		"bad allow_sc":        "thread 1 { skip; }\nallow_sc x",
		"index in observe":    "thread 1 { skip; }\nobserve a[\n",
	}
	for name, src := range cases {
		if _, err := Parse("t", src); err == nil {
			t.Errorf("%s: no error for %q", name, src)
		}
	}
}

func TestProgThreadNumbering(t *testing.T) {
	f, err := Parse("t", `thread 2 { skip; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Prog(); err == nil {
		t.Fatal("non-contiguous thread ids accepted")
	}
	if _, err := f.Test(); err == nil {
		t.Fatal("Test should propagate the Prog error")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "// leading comment\n# hash comment\ninit x=1\nthread 1 {\n  // inner\n  skip;\n}\n"
	f, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Init["x"] != 1 {
		t.Fatal("init lost")
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].line != 1 || toks[0].col != 1 {
		t.Fatalf("first token at %d:%d", toks[0].line, toks[0].col)
	}
	if toks[1].line != 2 || toks[1].col != 3 {
		t.Fatalf("second token at %d:%d", toks[1].line, toks[1].col)
	}
}

func BenchmarkParseMP(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse("mp", mpSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParseNonAtomicAccesses(t *testing.T) {
	src := `
init d=0 f=0 r=0
thread 1 { d :=NA 5; f :=R 1; }
thread 2 { while (f^A == 0) { skip; } r := d^NA; }
`
	f, err := Parse("na-mp", src)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Threads[1].String(); !strings.Contains(got, "d :=NA 5") {
		t.Fatalf("thread 1 = %q", got)
	}
	if got := f.Threads[2].String(); !strings.Contains(got, "d^NA") {
		t.Fatalf("thread 2 = %q", got)
	}
	// End to end: the parsed program produces NA events.
	prog, err := f.Prog()
	if err != nil {
		t.Fatal(err)
	}
	steps := lang.Steps(prog[0])
	if len(steps) != 1 || !steps[0].NA {
		t.Fatalf("first step = %+v", steps)
	}
}
