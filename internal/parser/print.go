package parser

// Printing: the inverse of Parse. Format renders a File back into the
// .lit grammar of docs/litmus-format.md, deterministically (threads in
// id order, outcome variables sorted), so that Parse∘Format is the
// identity on parser-producible files — the round-trip contract the
// FuzzParse fuzz target enforces. lang's own String methods render a
// debugging syntax (labels as "@name:", unfolded while guards) that
// the parser does not accept; this printer stays inside the grammar.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/litmus"
)

// Format renders the file in the .lit grammar.
func (f *File) Format() string {
	var b strings.Builder
	if len(f.Init) > 0 {
		b.WriteString("init")
		for _, x := range sortedVars(f.Init) {
			fmt.Fprintf(&b, " %s = %d", x, f.Init[x])
		}
		b.WriteString("\n")
	}
	if f.MaxEvents > 0 {
		fmt.Fprintf(&b, "maxevents %d\n", f.MaxEvents)
	}
	ids := make([]int, 0, len(f.Threads))
	for id := range f.Threads {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "thread %d {\n", id)
		formatStmts(&b, f.Threads[id], "  ")
		b.WriteString("}\n")
	}
	if len(f.Observe) > 0 {
		b.WriteString("observe")
		for _, x := range f.Observe {
			fmt.Fprintf(&b, " %s", x)
		}
		b.WriteString("\n")
	}
	for _, o := range f.Allow {
		formatOutcome(&b, "allow", o)
	}
	for _, o := range f.Forbid {
		formatOutcome(&b, "forbid", o)
	}
	for _, o := range f.AllowSC {
		formatOutcome(&b, "allow_sc", o)
	}
	for _, o := range f.ForbidSC {
		formatOutcome(&b, "forbid_sc", o)
	}
	return b.String()
}

func sortedVars[V any](m map[event.Var]V) []event.Var {
	out := make([]event.Var, 0, len(m))
	for x := range m {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func formatOutcome(b *strings.Builder, kind string, o litmus.Outcome) {
	b.WriteString(kind)
	for _, x := range sortedVars(o) {
		fmt.Fprintf(b, " %s = %d", x, o[x])
	}
	b.WriteString("\n")
}

// formatStmts flattens Seq chains into the grammar's statement list.
func formatStmts(b *strings.Builder, c lang.Com, indent string) {
	if s, ok := c.(lang.Seq); ok {
		formatStmts(b, s.C1, indent)
		formatStmts(b, s.C2, indent)
		return
	}
	formatStmt(b, c, indent)
}

func formatStmt(b *strings.Builder, c lang.Com, indent string) {
	switch c := c.(type) {
	case lang.Skip:
		fmt.Fprintf(b, "%sskip;\n", indent)
	case lang.Assign:
		op := ":="
		switch {
		case c.Rel:
			op = ":=R"
		case c.NA:
			op = ":=NA"
		}
		loc := string(c.X)
		if c.Idx != nil {
			loc += "[" + formatExpr(c.Idx) + "]"
		}
		fmt.Fprintf(b, "%s%s %s %s;\n", indent, loc, op, formatExpr(c.E))
	case lang.Swap:
		fmt.Fprintf(b, "%s%s.swap(%d);\n", indent, c.X, c.N)
	case lang.Cas:
		loc := string(c.X)
		if c.Idx != nil {
			loc += "[" + formatExpr(c.Idx) + "]"
		}
		_, thenSkip := c.Then.(lang.Skip)
		_, elseSkip := c.Else.(lang.Skip)
		if thenSkip && elseSkip {
			fmt.Fprintf(b, "%s%s.cas(%s, %s);\n", indent, loc, formatExpr(c.Old), formatExpr(c.New))
			return
		}
		fmt.Fprintf(b, "%sif (%s.cas(%s, %s)) {\n", indent, loc, formatExpr(c.Old), formatExpr(c.New))
		formatStmts(b, c.Then, indent+"  ")
		if !elseSkip {
			fmt.Fprintf(b, "%s} else {\n", indent)
			formatStmts(b, c.Else, indent+"  ")
		}
		fmt.Fprintf(b, "%s}\n", indent)
	case lang.If:
		fmt.Fprintf(b, "%sif (%s) {\n", indent, formatExpr(c.B))
		formatStmts(b, c.Then, indent+"  ")
		if _, skip := c.Else.(lang.Skip); !skip {
			fmt.Fprintf(b, "%s} else {\n", indent)
			formatStmts(b, c.Else, indent+"  ")
		}
		fmt.Fprintf(b, "%s}\n", indent)
	case lang.While:
		// Guard, not Cur: a parsed while is un-unfolded, and the
		// grammar has no syntax for the unfolding state.
		fmt.Fprintf(b, "%swhile (%s) {\n", indent, formatExpr(c.Guard))
		formatStmts(b, c.Body, indent+"  ")
		fmt.Fprintf(b, "%s}\n", indent)
	case lang.Label:
		fmt.Fprintf(b, "%slabel %s {\n", indent, c.Name)
		formatStmts(b, c.C, indent+"  ")
		fmt.Fprintf(b, "%s}\n", indent)
	default:
		// Every Com the parser produces is covered above.
		fmt.Fprintf(b, "%sskip; // unprintable %T\n", indent, c)
	}
}

func formatExpr(e lang.Expr) string {
	switch e := e.(type) {
	case lang.Lit:
		return fmt.Sprintf("%d", e.V)
	case lang.Load:
		switch {
		case e.Acq:
			return string(e.X) + "^A"
		case e.NA:
			return string(e.X) + "^NA"
		}
		return string(e.X)
	case lang.IdxLoad:
		s := string(e.A) + "[" + formatExpr(e.I) + "]"
		switch {
		case e.Acq:
			return s + "^A"
		case e.NA:
			return s + "^NA"
		}
		return s
	case lang.Un:
		op := "!"
		if e.Op == lang.OpNeg {
			op = "-"
		}
		return op + formatExpr(e.E)
	case lang.Bin:
		var op string
		switch e.Op {
		case lang.OpAnd:
			op = " && "
		case lang.OpOr:
			op = " || "
		case lang.OpEq:
			op = " == "
		case lang.OpNe:
			op = " != "
		case lang.OpLt:
			op = " < "
		case lang.OpAdd:
			op = " + "
		case lang.OpSub:
			op = " - "
		}
		return "(" + formatExpr(e.L) + op + formatExpr(e.R) + ")"
	}
	return "0"
}
