package parser

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzParse fuzzes the parse → print → reparse round trip: any input
// the parser accepts must print back into the grammar such that the
// reprint parses, reaches a printing fixed point immediately, and
// preserves the program and expectations — and nothing may panic.
func FuzzParse(f *testing.F) {
	files, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.lit"))
	for _, fn := range files {
		if src, err := os.ReadFile(fn); err == nil {
			f.Add(string(src))
		}
	}
	f.Add("init x = 1\nthread 1 { x := x^A + 1; }\nobserve x\nallow x = 2\n")
	f.Add("thread 1 { while (!(f^A == 0)) { skip; } label cs { t.swap(-3); } }")
	f.Add("thread 2 { if (x < 2 && y != 0 || !z) { x :=NA 1; } else { y :=R 0; } }")

	f.Fuzz(func(t *testing.T, src string) {
		f1, err := Parse("fuzz.lit", src)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		txt := f1.Format()
		f2, err := Parse("fuzz.lit", txt)
		if err != nil {
			t.Fatalf("printed file does not reparse: %v\ninput: %q\nprinted:\n%s", err, src, txt)
		}
		if txt2 := f2.Format(); txt2 != txt {
			t.Fatalf("printing is not a fixed point:\nfirst:\n%s\nsecond:\n%s", txt, txt2)
		}
		if !reflect.DeepEqual(f1.Init, f2.Init) {
			t.Fatalf("init drifted: %v vs %v", f1.Init, f2.Init)
		}
		p1, err1 := f1.Prog()
		p2, err2 := f2.Prog()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Prog validity drifted: %v vs %v", err1, err2)
		}
		if err1 == nil && p1.String() != p2.String() {
			t.Fatalf("program drifted:\n%s\nvs\n%s", p1, p2)
		}
	})
}
