package sc

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/model"
)

// Snapshot support for the checkpoint layer (internal/explore). An SC
// configuration is just (program, store), so the serialization is the
// residual program's signature followed by the store entries in sorted
// variable order. The trace-only label of the producing write (wx/wv)
// deliberately does not survive — it is excluded from the fingerprint
// for the same reason (see State), so a restored configuration is
// fingerprint-identical to the original.

const (
	snapshotTag     byte = 'S'
	snapshotVersion byte = 1
)

// AppendSnapshot appends a self-contained serialization of the
// configuration.
func (c Config) AppendSnapshot(buf []byte) []byte {
	buf = append(buf, snapshotTag, snapshotVersion)
	buf = lang.AppendProgSig(buf, c.P)
	keys := make([]string, 0, len(c.S.store))
	for x := range c.S.store {
		keys = append(keys, string(x))
	}
	sort.Strings(keys)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, x := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		buf = append(buf, x...)
		buf = binary.AppendVarint(buf, int64(c.S.store[event.Var(x)]))
	}
	return buf
}

// Restore rebuilds a configuration from a snapshot blob.
func (scModel) Restore(data []byte) (model.Config, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("sc: snapshot too short")
	}
	if data[0] != snapshotTag {
		return nil, fmt.Errorf("sc: snapshot tag %q is not an SC snapshot", data[0])
	}
	if data[1] != snapshotVersion {
		return nil, fmt.Errorf("sc: unsupported snapshot version %d", data[1])
	}
	p, rest, err := lang.DecodeProgSig(data[2:])
	if err != nil {
		return nil, fmt.Errorf("sc: snapshot program: %w", err)
	}
	n, k := binary.Uvarint(rest)
	if k <= 0 {
		return nil, fmt.Errorf("sc: truncated store size")
	}
	rest = rest[k:]
	vars := make(map[event.Var]event.Val, n)
	for i := uint64(0); i < n; i++ {
		ln, k := binary.Uvarint(rest)
		if k <= 0 || ln > uint64(len(rest)-k) {
			return nil, fmt.Errorf("sc: truncated store entry %d", i)
		}
		x := string(rest[k : k+int(ln)])
		rest = rest[k+int(ln):]
		v, k := binary.Varint(rest)
		if k <= 0 {
			return nil, fmt.Errorf("sc: truncated value of %s", x)
		}
		rest = rest[k:]
		vars[event.Var(x)] = event.Val(v)
	}
	if uint64(len(vars)) != n {
		return nil, fmt.Errorf("sc: duplicate variable in snapshot store")
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("sc: %d trailing bytes after snapshot", len(rest))
	}
	return Config{P: p, S: Init(vars)}, nil
}
