package sc_test

// Engine-driven tests live in an external test package: the explorer
// imports this package for its monomorphised instantiation, so an
// in-package test importing the explorer would be an import cycle.

import (
	"testing"

	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/model"
	"repro/internal/sc"

	coremodel "repro/internal/core"
)

// outcomes explores a config under the unified engine and returns the
// terminated outcome set over the observed variables.
func outcomes(c model.Config, observe []event.Var) map[string]bool {
	return explore.Outcomes(c, explore.Options{MaxEvents: 20}, func(cfg model.Config) string {
		return cfg.Summarise(observe)
	})
}

func TestUpdateAtomicUnderSC(t *testing.T) {
	p := lang.Prog{lang.SwapC("t", 1), lang.SwapC("t", 2)}
	out := outcomes(sc.NewConfig(p, map[event.Var]event.Val{"t": 0}), []event.Var{"t"})
	if len(out) != 2 || !out["t=1;"] || !out["t=2;"] {
		t.Fatalf("outcomes = %v", out)
	}
}

// SC forbids the store-buffering weak outcome that RA allows — the
// defining difference between the two plugged-in models.
func TestSBDiffersBetweenSCAndRA(t *testing.T) {
	p := lang.Prog{
		lang.SeqC(lang.AssignRelC("x", lang.V(1)), lang.AssignC("a", lang.XA("y"))),
		lang.SeqC(lang.AssignRelC("y", lang.V(1)), lang.AssignC("b", lang.XA("x"))),
	}
	vars := map[event.Var]event.Val{"x": 0, "y": 0, "a": 0, "b": 0}
	observe := []event.Var{"a", "b"}

	scOut := outcomes(sc.NewConfig(p, vars), observe)
	if scOut["a=0;b=0;"] {
		t.Fatal("SC allowed the SB weak outcome")
	}
	if !scOut["a=1;b=1;"] {
		t.Fatalf("SC outcomes degenerate: %v", scOut)
	}

	raOut := outcomes(coremodel.NewConfig(p, vars), observe)
	if !raOut["a=0;b=0;"] {
		t.Fatal("RA forbade the SB weak outcome")
	}
	// SC outcomes are a subset of RA outcomes.
	for k := range scOut {
		if !raOut[k] {
			t.Fatalf("SC outcome %q not reachable under RA", k)
		}
	}
}

// Every litmus test's SC outcome set is contained in its RA outcome
// set (SC refines RA), and the explicitly forbidden RA outcomes are
// absent under SC too — via the litmus diff machinery, so this also
// exercises the differential mode end to end.
func TestSCRefinesRAOnSuite(t *testing.T) {
	for _, tc := range litmus.Suite() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			d := tc.Diff(coremodel.Model, sc.Model, explore.Options{MaxEvents: 20})
			if len(d.OnlyB) != 0 {
				t.Fatalf("SC-only outcomes break refinement: %v", d.OnlyB)
			}
			for _, o := range tc.Forbidden {
				if d.OutcomesB[o.Key(tc.Observe)] {
					t.Fatal("forbidden outcome reachable under SC")
				}
			}
		})
	}
}

// Peterson under SC: trivially mutually exclusive, via the same
// engine and property the RA verification uses (sanity check that the
// property is about the algorithm, not an artifact of the model).
func TestPetersonSafeUnderSC(t *testing.T) {
	p, vars := litmus.Peterson()
	for _, workers := range []int{1, 8} {
		res := explore.Run(sc.NewConfig(p, vars), explore.Options{
			Workers:  workers,
			Property: litmus.MutualExclusion,
		})
		if res.Violation != nil {
			t.Fatalf("workers=%d: mutual exclusion violated under SC", workers)
		}
		if res.Truncated {
			t.Fatalf("workers=%d: SC state space must be finite, search truncated", workers)
		}
		if res.Explored == 0 || res.Terminated == 0 {
			t.Fatalf("workers=%d: degenerate exploration %+v", workers, res)
		}
	}
}

func BenchmarkSCOutcomes(b *testing.B) {
	p := lang.Prog{
		lang.SeqC(lang.AssignC("x", lang.V(1)), lang.AssignC("a", lang.X("y"))),
		lang.SeqC(lang.AssignC("y", lang.V(1)), lang.AssignC("b", lang.X("x"))),
	}
	vars := map[event.Var]event.Val{"x": 0, "y": 0, "a": 0, "b": 0}
	observe := []event.Var{"a", "b"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(outcomes(sc.NewConfig(p, vars), observe)) == 0 {
			b.Fatal("no outcomes")
		}
	}
}
