package sc

import (
	"testing"

	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/litmus"

	coremodel "repro/internal/core"
)

func TestStoreBasics(t *testing.T) {
	s := Init(map[event.Var]event.Val{"x": 3})
	if v, ok := s.Read("x"); !ok || v != 3 {
		t.Fatalf("Read = %d, %v", v, ok)
	}
	if _, ok := s.Read("nope"); ok {
		t.Fatal("unknown variable readable")
	}
	s2 := s.write("x", 9)
	if v, _ := s2.Read("x"); v != 9 {
		t.Fatal("write lost")
	}
	if v, _ := s.Read("x"); v != 3 {
		t.Fatal("write mutated original")
	}
	if s.Signature() == s2.Signature() {
		t.Fatal("signatures identical across write")
	}
}

func TestSuccessorsDeterministicReads(t *testing.T) {
	p := lang.Prog{lang.AssignC("r", lang.X("x"))}
	c := NewConfig(p, map[event.Var]event.Val{"x": 7, "r": 0})
	succ := c.Successors()
	if len(succ) != 1 {
		t.Fatalf("SC read must be deterministic, got %d successors", len(succ))
	}
	// The read value is the store value.
	succ2 := succ[0].Successors() // the write of r
	if len(succ2) != 1 {
		t.Fatal("write step missing")
	}
	if v, _ := succ2[0].S.Read("r"); v != 7 {
		t.Fatalf("r = %d, want 7", v)
	}
}

func TestUpdateAtomicUnderSC(t *testing.T) {
	p := lang.Prog{lang.SwapC("t", 1), lang.SwapC("t", 2)}
	out := Outcomes(NewConfig(p, map[event.Var]event.Val{"t": 0}), []event.Var{"t"}, 0)
	if len(out) != 2 || !out["t=1;"] || !out["t=2;"] {
		t.Fatalf("outcomes = %v", out)
	}
}

// SC forbids the store-buffering weak outcome that RA allows — the
// defining difference between the two plugged-in models.
func TestSBDiffersBetweenSCAndRA(t *testing.T) {
	p := lang.Prog{
		lang.SeqC(lang.AssignRelC("x", lang.V(1)), lang.AssignC("a", lang.XA("y"))),
		lang.SeqC(lang.AssignRelC("y", lang.V(1)), lang.AssignC("b", lang.XA("x"))),
	}
	vars := map[event.Var]event.Val{"x": 0, "y": 0, "a": 0, "b": 0}
	observe := []event.Var{"a", "b"}

	scOut := Outcomes(NewConfig(p, vars), observe, 0)
	if scOut["a=0;b=0;"] {
		t.Fatal("SC allowed the SB weak outcome")
	}
	if !scOut["a=1;b=1;"] {
		t.Fatalf("SC outcomes degenerate: %v", scOut)
	}

	raOut := explore.Outcomes(coremodel.NewConfig(p, vars), explore.Options{MaxEvents: 16},
		func(c coremodel.Config) string {
			s := ""
			for _, x := range observe {
				g, _ := c.S.Last(x)
				s += string(x) + "=" + itoa(int(c.S.Event(g).WrVal())) + ";"
			}
			return s
		})
	if !raOut["a=0;b=0;"] {
		t.Fatal("RA forbade the SB weak outcome")
	}
	// SC outcomes are a subset of RA outcomes.
	for k := range scOut {
		if !raOut[k] {
			t.Fatalf("SC outcome %q not reachable under RA", k)
		}
	}
}

// Every litmus test's SC outcome set is contained in its RA outcome
// set (SC refines RA), and the explicitly forbidden RA outcomes are
// absent under SC too.
func TestSCRefinesRAOnSuite(t *testing.T) {
	for _, tc := range litmus.Suite() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			scOut := Outcomes(NewConfig(tc.Prog, tc.Init), tc.Observe, 0)
			rep := tc.Run(explore.Options{MaxEvents: 20})
			for k := range scOut {
				if !rep.Outcomes[k] {
					t.Fatalf("SC outcome %q missing under RA", k)
				}
			}
			for _, o := range tc.Forbidden {
				if scOut[o.Key(tc.Observe)] {
					t.Fatalf("forbidden outcome reachable under SC")
				}
			}
		})
	}
}

// Peterson under SC: trivially mutually exclusive (sanity check that
// the property is about the algorithm, not an artifact of the model).
func TestPetersonSafeUnderSC(t *testing.T) {
	p, vars := litmus.Peterson()
	seen := map[string]bool{}
	stack := []Config{NewConfig(p, vars)}
	seen[stack[0].Key()] = true
	checked := 0
	for len(stack) > 0 && checked < 200000 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		checked++
		if lang.AtLabel(c.P.Thread(1)) == "cs" && lang.AtLabel(c.P.Thread(2)) == "cs" {
			t.Fatal("mutual exclusion violated under SC")
		}
		for _, n := range c.Successors() {
			if k := n.Key(); !seen[k] {
				seen[k] = true
				stack = append(stack, n)
			}
		}
	}
	if checked == 0 {
		t.Fatal("nothing explored")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func BenchmarkSCOutcomes(b *testing.B) {
	p := lang.Prog{
		lang.SeqC(lang.AssignC("x", lang.V(1)), lang.AssignC("a", lang.X("y"))),
		lang.SeqC(lang.AssignC("y", lang.V(1)), lang.AssignC("b", lang.X("x"))),
	}
	vars := map[event.Var]event.Val{"x": 0, "y": 0, "a": 0, "b": 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(Outcomes(NewConfig(p, vars), []event.Var{"a", "b"}, 0)) == 0 {
			b.Fatal("no outcomes")
		}
	}
}
