package sc

import (
	"testing"

	"repro/internal/event"
	"repro/internal/lang"
)

func TestStoreBasics(t *testing.T) {
	s := Init(map[event.Var]event.Val{"x": 3})
	if v, ok := s.Read("x"); !ok || v != 3 {
		t.Fatalf("Read = %d, %v", v, ok)
	}
	if _, ok := s.Read("nope"); ok {
		t.Fatal("unknown variable readable")
	}
	s2 := s.write("x", 9)
	if v, _ := s2.Read("x"); v != 9 {
		t.Fatal("write lost")
	}
	if v, _ := s.Read("x"); v != 3 {
		t.Fatal("write mutated original")
	}
	if s.Signature() == s2.Signature() {
		t.Fatal("signatures identical across write")
	}
}

func TestFingerprintTracksStore(t *testing.T) {
	p := lang.Prog{lang.SkipC()}
	a := Config{P: p, S: Init(map[event.Var]event.Val{"x": 1, "y": 2})}
	b := Config{P: p, S: Init(map[event.Var]event.Val{"y": 2, "x": 1})}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on store construction order")
	}
	c := Config{P: p, S: a.S.write("x", 5)}
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("fingerprint blind to store change")
	}
	// Write-back restores the identity (the multiset hash subtracts).
	d := Config{P: p, S: c.S.write("x", 1)}
	if d.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not restored after write-back")
	}
	if got := d.AuditIncremental(); len(got) != 0 {
		t.Fatalf("store-hash audit: %v", got)
	}
}

// A same-value overwrite leaves the store equal to the parent's but
// is still a write transition; DeltaLabel must not render it as τ.
func TestDeltaLabelSameValueWrite(t *testing.T) {
	c := NewConfig(lang.Prog{lang.AssignC("x", lang.V(0))}, map[event.Var]event.Val{"x": 0})
	succ := c.Successors()
	if len(succ) != 1 {
		t.Fatalf("want 1 successor, got %d", len(succ))
	}
	if got := succ[0].DeltaLabel(c); got != "wr(x,0)" {
		t.Fatalf("DeltaLabel = %q, want wr(x,0)", got)
	}
	// And reads/silent steps stay τ.
	r := NewConfig(lang.Prog{lang.AssignC("r", lang.X("x"))}, map[event.Var]event.Val{"x": 7, "r": 0})
	rs := r.Successors()
	if got := rs[0].DeltaLabel(r); got != "τ" {
		t.Fatalf("read DeltaLabel = %q, want τ", got)
	}
}

func TestSuccessorsDeterministicReads(t *testing.T) {
	p := lang.Prog{lang.AssignC("r", lang.X("x"))}
	c := NewConfig(p, map[event.Var]event.Val{"x": 7, "r": 0})
	succ := c.Successors()
	if len(succ) != 1 {
		t.Fatalf("SC read must be deterministic, got %d successors", len(succ))
	}
	// The read value is the store value.
	succ2 := succ[0].Successors() // the write of r
	if len(succ2) != 1 {
		t.Fatal("write step missing")
	}
	if v, _ := succ2[0].S.Read("r"); v != 7 {
		t.Fatalf("r = %d, want 7", v)
	}
}
