package sc

import (
	"testing"

	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/model"

	coremodel "repro/internal/core"
)

// outcomes explores a config under the unified engine and returns the
// terminated outcome set over the observed variables.
func outcomes(c model.Config, observe []event.Var) map[string]bool {
	return explore.Outcomes(c, explore.Options{MaxEvents: 20}, func(cfg model.Config) string {
		return cfg.Summarise(observe)
	})
}

func TestStoreBasics(t *testing.T) {
	s := Init(map[event.Var]event.Val{"x": 3})
	if v, ok := s.Read("x"); !ok || v != 3 {
		t.Fatalf("Read = %d, %v", v, ok)
	}
	if _, ok := s.Read("nope"); ok {
		t.Fatal("unknown variable readable")
	}
	s2 := s.write("x", 9)
	if v, _ := s2.Read("x"); v != 9 {
		t.Fatal("write lost")
	}
	if v, _ := s.Read("x"); v != 3 {
		t.Fatal("write mutated original")
	}
	if s.Signature() == s2.Signature() {
		t.Fatal("signatures identical across write")
	}
}

func TestFingerprintTracksStore(t *testing.T) {
	p := lang.Prog{lang.SkipC()}
	a := Config{P: p, S: Init(map[event.Var]event.Val{"x": 1, "y": 2})}
	b := Config{P: p, S: Init(map[event.Var]event.Val{"y": 2, "x": 1})}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on store construction order")
	}
	c := Config{P: p, S: a.S.write("x", 5)}
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("fingerprint blind to store change")
	}
	// Write-back restores the identity (the multiset hash subtracts).
	d := Config{P: p, S: c.S.write("x", 1)}
	if d.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not restored after write-back")
	}
	if got := d.AuditIncremental(); len(got) != 0 {
		t.Fatalf("store-hash audit: %v", got)
	}
}

// A same-value overwrite leaves the store equal to the parent's but
// is still a write transition; DeltaLabel must not render it as τ.
func TestDeltaLabelSameValueWrite(t *testing.T) {
	c := NewConfig(lang.Prog{lang.AssignC("x", lang.V(0))}, map[event.Var]event.Val{"x": 0})
	succ := c.Successors()
	if len(succ) != 1 {
		t.Fatalf("want 1 successor, got %d", len(succ))
	}
	if got := succ[0].DeltaLabel(c); got != "wr(x,0)" {
		t.Fatalf("DeltaLabel = %q, want wr(x,0)", got)
	}
	// And reads/silent steps stay τ.
	r := NewConfig(lang.Prog{lang.AssignC("r", lang.X("x"))}, map[event.Var]event.Val{"x": 7, "r": 0})
	rs := r.Successors()
	if got := rs[0].DeltaLabel(r); got != "τ" {
		t.Fatalf("read DeltaLabel = %q, want τ", got)
	}
}

func TestSuccessorsDeterministicReads(t *testing.T) {
	p := lang.Prog{lang.AssignC("r", lang.X("x"))}
	c := NewConfig(p, map[event.Var]event.Val{"x": 7, "r": 0})
	succ := c.Successors()
	if len(succ) != 1 {
		t.Fatalf("SC read must be deterministic, got %d successors", len(succ))
	}
	// The read value is the store value.
	succ2 := succ[0].Successors() // the write of r
	if len(succ2) != 1 {
		t.Fatal("write step missing")
	}
	if v, _ := succ2[0].S.Read("r"); v != 7 {
		t.Fatalf("r = %d, want 7", v)
	}
}

func TestUpdateAtomicUnderSC(t *testing.T) {
	p := lang.Prog{lang.SwapC("t", 1), lang.SwapC("t", 2)}
	out := outcomes(NewConfig(p, map[event.Var]event.Val{"t": 0}), []event.Var{"t"})
	if len(out) != 2 || !out["t=1;"] || !out["t=2;"] {
		t.Fatalf("outcomes = %v", out)
	}
}

// SC forbids the store-buffering weak outcome that RA allows — the
// defining difference between the two plugged-in models.
func TestSBDiffersBetweenSCAndRA(t *testing.T) {
	p := lang.Prog{
		lang.SeqC(lang.AssignRelC("x", lang.V(1)), lang.AssignC("a", lang.XA("y"))),
		lang.SeqC(lang.AssignRelC("y", lang.V(1)), lang.AssignC("b", lang.XA("x"))),
	}
	vars := map[event.Var]event.Val{"x": 0, "y": 0, "a": 0, "b": 0}
	observe := []event.Var{"a", "b"}

	scOut := outcomes(NewConfig(p, vars), observe)
	if scOut["a=0;b=0;"] {
		t.Fatal("SC allowed the SB weak outcome")
	}
	if !scOut["a=1;b=1;"] {
		t.Fatalf("SC outcomes degenerate: %v", scOut)
	}

	raOut := outcomes(coremodel.NewConfig(p, vars), observe)
	if !raOut["a=0;b=0;"] {
		t.Fatal("RA forbade the SB weak outcome")
	}
	// SC outcomes are a subset of RA outcomes.
	for k := range scOut {
		if !raOut[k] {
			t.Fatalf("SC outcome %q not reachable under RA", k)
		}
	}
}

// Every litmus test's SC outcome set is contained in its RA outcome
// set (SC refines RA), and the explicitly forbidden RA outcomes are
// absent under SC too — via the litmus diff machinery, so this also
// exercises the differential mode end to end.
func TestSCRefinesRAOnSuite(t *testing.T) {
	for _, tc := range litmus.Suite() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			d := tc.Diff(coremodel.Model, Model, explore.Options{MaxEvents: 20})
			if len(d.OnlyB) != 0 {
				t.Fatalf("SC-only outcomes break refinement: %v", d.OnlyB)
			}
			for _, o := range tc.Forbidden {
				if d.OutcomesB[o.Key(tc.Observe)] {
					t.Fatal("forbidden outcome reachable under SC")
				}
			}
		})
	}
}

// Peterson under SC: trivially mutually exclusive, via the same
// engine and property the RA verification uses (sanity check that the
// property is about the algorithm, not an artifact of the model).
func TestPetersonSafeUnderSC(t *testing.T) {
	p, vars := litmus.Peterson()
	for _, workers := range []int{1, 8} {
		res := explore.Run(NewConfig(p, vars), explore.Options{
			Workers:  workers,
			Property: litmus.MutualExclusion,
		})
		if res.Violation != nil {
			t.Fatalf("workers=%d: mutual exclusion violated under SC", workers)
		}
		if res.Truncated {
			t.Fatalf("workers=%d: SC state space must be finite, search truncated", workers)
		}
		if res.Explored == 0 || res.Terminated == 0 {
			t.Fatalf("workers=%d: degenerate exploration %+v", workers, res)
		}
	}
}

func BenchmarkSCOutcomes(b *testing.B) {
	p := lang.Prog{
		lang.SeqC(lang.AssignC("x", lang.V(1)), lang.AssignC("a", lang.X("y"))),
		lang.SeqC(lang.AssignC("y", lang.V(1)), lang.AssignC("b", lang.X("x"))),
	}
	vars := map[event.Var]event.Val{"x": 0, "y": 0, "a": 0, "b": 0}
	observe := []event.Var{"a", "b"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(outcomes(NewConfig(p, vars), observe)) == 0 {
			b.Fatal("no outcomes")
		}
	}
}
