// Package sc is the sequentially consistent backend of the pluggable
// memory-model interface (internal/model) — the paper's §3.3 defines
// the combination rules generically over an event semantics precisely
// so different models can be swapped in, and SC (a single global
// store) is the classic strongest instance. The same engine
// (internal/explore) that checks the RAR semantics of internal/core
// runs unchanged over this package; contrasting the two on the same
// programs isolates the weak-memory behaviours: outcomes reachable
// under RAR but not under sc are exactly the "weak" outcomes (store
// buffering, message passing with relaxed accesses, IRIW
// disagreement, …).
//
// An SC configuration is (P, store): no event graph, no per-thread
// views. Reads are deterministic (the current store value), so the
// state space is finite whatever the program — Progress is constantly
// zero and exploration is bounded by MaxConfigs alone. Annotations
// (release/acquire/non-atomic) are irrelevant under SC.
package sc

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/event"
	"repro/internal/fingerprint"
	"repro/internal/lang"
	"repro/internal/model"
)

// Model is the SC backend behind the model.Model interface.
var Model model.Model = scModel{}

type scModel struct{}

func (scModel) Name() string { return "sc" }

func (scModel) New(p lang.Prog, vars map[event.Var]event.Val) model.Config {
	return NewConfig(p, vars)
}

// State is an SC memory: one global store mapping variables to values.
// States are immutable once built (write returns a copy) and carry an
// eagerly maintained commutative multiset hash of their entries, so a
// configuration fingerprint costs O(1) in the store size. The zero
// value is unusable; use Init.
type State struct {
	store map[event.Var]event.Val
	acc   fingerprint.Acc // multiset hash over (var, val) entries

	// wx/wv record the write that produced this state (wrote false
	// for Init). Trace labelling only — two states differing solely
	// here deliberately share a fingerprint, and a same-value
	// overwrite leaves the store equal to the parent's, so the label
	// cannot be recovered by diffing entries.
	wx    event.Var
	wv    event.Val
	wrote bool
}

func entryItem(x event.Var, v event.Val) fingerprint.FP {
	h := fingerprint.NewHasher()
	h.String(string(x))
	h.Word(uint64(v))
	return h.Sum()
}

// Init returns the store with the given initial values.
func Init(vars map[event.Var]event.Val) *State {
	s := &State{store: make(map[event.Var]event.Val, len(vars))}
	for x, v := range vars {
		s.store[x] = v
		s.acc.Add(entryItem(x, v))
	}
	return s
}

// Read returns the current value of x.
func (s *State) Read(x event.Var) (event.Val, bool) {
	v, ok := s.store[x]
	return v, ok
}

// write returns a copy of s with x set to v.
func (s *State) write(x event.Var, v event.Val) *State {
	out := &State{
		store: make(map[event.Var]event.Val, len(s.store)+1),
		acc:   s.acc,
		wx:    x, wv: v, wrote: true,
	}
	for k, val := range s.store {
		out.store[k] = val
	}
	if old, ok := out.store[x]; ok {
		// The multiset hash is additive per lane, so replacing an
		// entry is one subtraction and one addition.
		it := entryItem(x, old)
		out.acc.Hi -= it.Hi
		out.acc.Lo -= it.Lo
	}
	out.store[x] = v
	out.acc.Add(entryItem(x, v))
	return out
}

// Signature renders the store canonically.
func (s *State) Signature() string {
	keys := make([]string, 0, len(s.store))
	for x := range s.store {
		keys = append(keys, string(x))
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, x := range keys {
		fmt.Fprintf(&b, "%s=%d;", x, s.store[event.Var(x)])
	}
	return b.String()
}

// Config is a configuration (P, store) over the SC model.
type Config struct {
	P lang.Prog
	S *State
}

var _ model.Config = Config{}

// NewConfig pairs a program with an initial SC store.
func NewConfig(p lang.Prog, vars map[event.Var]event.Val) Config {
	return Config{P: p, S: Init(vars)}
}

// Program returns the residual program.
func (c Config) Program() lang.Prog { return c.P }

// Progress is constantly zero: an SC configuration carries no growing
// event set, the (program, store) space is finite, and exploration is
// bounded by MaxConfigs alone.
func (c Config) Progress() int { return 0 }

// Key identifies the configuration exactly, for deduplication audits.
func (c Config) Key() string { return c.P.String() + "\x00" + c.S.Signature() }

// progBufPool recycles the scratch buffers for program signatures.
var progBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// Fingerprint returns a 128-bit identity of the configuration: the
// store's multiset hash combined with the binary program signature.
// Equal keys always have equal fingerprints; distinct keys collide
// only with 128-bit hash probability (auditable via the engine's
// collision-check mode).
func (c Config) Fingerprint() fingerprint.FP {
	st := fingerprint.Finalize(c.S.acc, len(c.S.store))
	h := fingerprint.NewHasher()
	h.Word(st.Hi)
	h.Word(st.Lo)
	bp := progBufPool.Get().(*[]byte)
	buf := lang.AppendProgSig((*bp)[:0], c.P)
	h.Bytes(buf)
	*bp = buf
	progBufPool.Put(bp)
	return h.Sum()
}

// Terminated reports whether every thread has terminated.
func (c Config) Terminated() bool { return c.P.Terminated() }

// AppendSuccessors appends every enabled SC transition's target as a
// concrete Config: reads are deterministic (the global store), writes
// update it, and an update atomically reads and writes. This is the
// monomorphised explorer's expansion entry point — no interface box
// per successor.
func (c Config) AppendSuccessors(out []Config) []Config {
	for i, com := range c.P {
		if s, ok := lang.StepOf(com); ok {
			out = c.AppendStepSuccessors(out, lang.ProgStep{T: event.Thread(i + 1), S: s})
		}
	}
	return out
}

// Expand is the boxed form of AppendSuccessors for the model.Config
// seam (traces, unknown-backend fallback); the engine's hot path uses
// the typed form.
func (c Config) Expand(out []model.Config) []model.Config {
	succ := c.AppendSuccessors(nil)
	for _, s := range succ {
		out = append(out, s)
	}
	return out
}

// ExpandStep is the boxed form of AppendStepSuccessors.
func (c Config) ExpandStep(out []model.Config, ps lang.ProgStep) []model.Config {
	succ := c.AppendStepSuccessors(nil, ps)
	for _, s := range succ {
		out = append(out, s)
	}
	return out
}

// AppendStepSuccessors appends the targets of one program step — at
// most one under SC (zero when a read's variable is uninitialised:
// stuck).
func (c Config) AppendStepSuccessors(out []Config, ps lang.ProgStep) []Config {
	t, s := ps.T, ps.S
	switch s.Kind {
	case lang.StepSilent:
		out = append(out, Config{P: c.P.WithThread(t, s.Apply(0)), S: c.S})
	case lang.StepRead:
		v, ok := c.S.Read(s.Loc)
		if !ok {
			return out // uninitialised variable: stuck
		}
		out = append(out, Config{P: c.P.WithThread(t, s.Apply(v)), S: c.S})
	case lang.StepWrite:
		out = append(out, Config{
			P: c.P.WithThread(t, s.Apply(0)),
			S: c.S.write(s.Loc, s.WVal),
		})
	case lang.StepUpdate:
		v, ok := c.S.Read(s.Loc)
		if !ok {
			return out
		}
		out = append(out, Config{
			P: c.P.WithThread(t, s.Apply(v)),
			S: c.S.write(s.Loc, s.WVal),
		})
	case lang.StepCas:
		// SC reads are deterministic, so a CAS has exactly one face
		// here: the store either holds the expected value (atomic
		// read-write) or it does not (plain read).
		v, ok := c.S.Read(s.Loc)
		if !ok {
			return out
		}
		ns := c.S
		if v == s.Exp {
			ns = c.S.write(s.Loc, s.WVal)
		}
		out = append(out, Config{P: c.P.WithThread(t, s.Apply(v)), S: ns})
	}
	return out
}

// Successors returns the enabled SC transitions (kept for direct
// users of the package).
func (c Config) Successors() []Config { return c.AppendSuccessors(nil) }

// StepsAcyclic: an SC configuration is just (program, store), so a
// spin loop re-reading an unchanged store revisits configurations —
// memory steps can close cycles, and the partial-order reduction must
// guard its memory-step singletons against solo cycling.
func (c Config) StepsAcyclic() bool { return false }

// StepsCommute reports whether two enabled steps of different threads
// commute under SC. The rule coincides with the RAR oracle — and is
// sound here for the same structural reasons: a silent step touches no
// memory; steps on distinct variables read and write disjoint store
// entries, so the store updates compose in either order and neither
// read value changes; two reads of the same variable change nothing.
// Everything else (same variable, at least one write) is dependent:
// the write changes what the other step reads or the final store.
func (c Config) StepsCommute(a, b lang.ProgStep) bool {
	if a.T == b.T {
		return false
	}
	if a.S.Kind == lang.StepSilent || b.S.Kind == lang.StepSilent {
		return true
	}
	if a.S.Loc != b.S.Loc {
		return true
	}
	return a.S.Kind == lang.StepRead && b.S.Kind == lang.StepRead
}

// AuditIncremental cross-checks the eagerly maintained store hash
// against a from-scratch recomputation (the SC analogue of the RAR
// backend's derived-order audit — everything else about an SC
// configuration is stored directly, not derived).
func (c Config) AuditIncremental() []string {
	var fresh fingerprint.Acc
	for x, v := range c.S.store {
		fresh.Add(entryItem(x, v))
	}
	if fresh != c.S.acc {
		return []string{fmt.Sprintf("store hash drifted: maintained=%x/%x fresh=%x/%x",
			c.S.acc.Hi, c.S.acc.Lo, fresh.Hi, fresh.Lo)}
	}
	return nil
}

// DeltaLabel renders the write the transition prev → c performed, or
// τ when the store is untouched (silent steps and reads). Silent and
// read successors share the parent's *State, so a fresh state always
// carries its producing write — including a same-value overwrite,
// which a store diff could not see.
func (c Config) DeltaLabel(prev model.Config) string {
	p, ok := prev.(Config)
	if !ok || c.S == p.S || !c.S.wrote {
		return "τ"
	}
	return fmt.Sprintf("wr(%s,%d)", c.S.wx, c.S.wv)
}

// Summarise renders the store values of the observed variables in the
// shared cross-model outcome format.
func (c Config) Summarise(observe []event.Var) string {
	var b strings.Builder
	for _, x := range observe {
		v, ok := c.S.Read(x)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%s=%d;", x, v)
	}
	return b.String()
}
