// Package sc plugs a sequentially consistent memory model into the
// interpreted semantics — the paper's §3.3 defines the combination
// rules generically over an event semantics precisely so different
// models can be swapped in, and SC (a single global store) is the
// classic strongest instance. Contrasting RA-C11 with SC on the same
// programs isolates the weak-memory behaviours: outcomes reachable
// under internal/core but not under sc are exactly the "weak"
// outcomes (store buffering, IRIW disagreement, …).
package sc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/event"
	"repro/internal/lang"
)

// State is an SC memory: one global store mapping variables to values.
// The zero value is unusable; use Init.
type State struct {
	store map[event.Var]event.Val
}

// Init returns the store with the given initial values.
func Init(vars map[event.Var]event.Val) *State {
	s := &State{store: make(map[event.Var]event.Val, len(vars))}
	for x, v := range vars {
		s.store[x] = v
	}
	return s
}

// Read returns the current value of x.
func (s *State) Read(x event.Var) (event.Val, bool) {
	v, ok := s.store[x]
	return v, ok
}

// write returns a copy of s with x set to v.
func (s *State) write(x event.Var, v event.Val) *State {
	out := &State{store: make(map[event.Var]event.Val, len(s.store))}
	for k, val := range s.store {
		out.store[k] = val
	}
	out.store[x] = v
	return out
}

// Signature renders the store canonically.
func (s *State) Signature() string {
	keys := make([]string, 0, len(s.store))
	for x := range s.store {
		keys = append(keys, string(x))
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, x := range keys {
		fmt.Fprintf(&b, "%s=%d;", x, s.store[event.Var(x)])
	}
	return b.String()
}

// Config is a configuration (P, σ) over the SC model.
type Config struct {
	P lang.Prog
	S *State
}

// NewConfig pairs a program with an initial SC store.
func NewConfig(p lang.Prog, vars map[event.Var]event.Val) Config {
	return Config{P: p, S: Init(vars)}
}

// Key identifies the configuration for deduplication.
func (c Config) Key() string { return c.P.String() + "\x00" + c.S.Signature() }

// Terminated reports whether every thread has terminated.
func (c Config) Terminated() bool { return c.P.Terminated() }

// Successors returns the enabled SC transitions: reads are
// deterministic (the global store), writes update it in place, and an
// update atomically reads and writes. Annotations are irrelevant under
// SC.
func (c Config) Successors() []Config {
	var out []Config
	for _, ps := range lang.ProgSteps(c.P) {
		t, s := ps.T, ps.S
		switch s.Kind {
		case lang.StepSilent:
			out = append(out, Config{P: c.P.WithThread(t, s.Apply(0)), S: c.S})
		case lang.StepRead:
			v, ok := c.S.Read(s.Loc)
			if !ok {
				continue // uninitialised variable: stuck
			}
			out = append(out, Config{P: c.P.WithThread(t, s.Apply(v)), S: c.S})
		case lang.StepWrite:
			out = append(out, Config{
				P: c.P.WithThread(t, s.Apply(0)),
				S: c.S.write(s.Loc, s.WVal),
			})
		case lang.StepUpdate:
			v, ok := c.S.Read(s.Loc)
			if !ok {
				continue
			}
			out = append(out, Config{
				P: c.P.WithThread(t, s.Apply(v)),
				S: c.S.write(s.Loc, s.WVal),
			})
		}
	}
	return out
}

// Outcomes explores the SC state space to termination (bounded by
// maxConfigs) and returns the set of final-store summaries over the
// observed variables, formatted like litmus outcome keys.
func Outcomes(c Config, observe []event.Var, maxConfigs int) map[string]bool {
	if maxConfigs <= 0 {
		maxConfigs = 1 << 20
	}
	out := map[string]bool{}
	seen := map[string]bool{c.Key(): true}
	stack := []Config{c}
	for len(stack) > 0 && len(seen) < maxConfigs {
		cfg := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cfg.Terminated() {
			var b strings.Builder
			for _, x := range observe {
				v, _ := cfg.S.Read(x)
				fmt.Fprintf(&b, "%s=%d;", x, v)
			}
			out[b.String()] = true
			continue
		}
		for _, n := range cfg.Successors() {
			k := n.Key()
			if !seen[k] {
				seen[k] = true
				stack = append(stack, n)
			}
		}
	}
	return out
}
