package sc

import (
	"testing"

	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/model"
)

func TestSnapshotRoundTrip(t *testing.T) {
	p := lang.Prog{
		lang.SeqC(lang.AssignC("x", lang.V(1)), lang.AssignRelC("y", lang.V(1))),
		lang.SeqC(
			lang.WhileC(lang.Eq(lang.XA("y"), lang.V(0)), lang.SkipC()),
			lang.SwapC("l", 1),
			lang.AssignC("a", lang.X("x")),
		),
	}
	vars := map[event.Var]event.Val{"x": 0, "y": 0, "a": 0, "l": 0}
	seen := map[string]bool{}
	var walk func(c model.Config, depth int)
	walk = func(c model.Config, depth int) {
		if seen[c.Key()] || len(seen) > 200 {
			return
		}
		seen[c.Key()] = true
		r, err := Model.Restore(c.AppendSnapshot(nil))
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		if r.Fingerprint() != c.Fingerprint() {
			t.Fatalf("fingerprint drifted for %q", c.Key())
		}
		if r.Key() != c.Key() {
			t.Fatalf("key drifted:\n got %q\nwant %q", r.Key(), c.Key())
		}
		for _, s := range c.Expand(nil) {
			walk(s, depth+1)
		}
	}
	walk(Model.New(p, vars), 0)
	if len(seen) < 15 {
		t.Fatalf("exploration too small to be meaningful: %d configs", len(seen))
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	c := Model.New(lang.Prog{lang.AssignC("x", lang.V(1))}, map[event.Var]event.Val{"x": 0})
	blob := c.AppendSnapshot(nil)
	if _, err := Model.Restore([]byte{'R', 1}); err == nil {
		t.Fatal("wrong backend tag restored without error")
	}
	for n := 0; n < len(blob); n++ {
		if _, err := Model.Restore(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes restored without error", n)
		}
	}
	if _, err := Model.Restore(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("trailing garbage restored without error")
	}
}
