package relation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bits"
)

func pairsRel(n int, ps ...[2]int) Rel { return FromPairs(n, ps) }

func TestAddHasRemove(t *testing.T) {
	r := New(4)
	r.Add(0, 1)
	r.Add(3, 2)
	if !r.Has(0, 1) || !r.Has(3, 2) {
		t.Fatal("Add/Has broken")
	}
	if r.Has(1, 0) {
		t.Fatal("converse pair present")
	}
	if r.Has(-1, 0) || r.Has(9, 0) {
		t.Fatal("out-of-range Has should be false")
	}
	r.Remove(0, 1)
	if r.Has(0, 1) {
		t.Fatal("Remove failed")
	}
	if r.Count() != 1 {
		t.Fatalf("Count = %d", r.Count())
	}
}

func TestIdentityFull(t *testing.T) {
	id := Identity(3)
	if id.Count() != 3 || !id.Has(0, 0) || !id.Has(2, 2) || id.Has(0, 1) {
		t.Fatal("Identity wrong")
	}
	f := Full(3)
	if f.Count() != 9 {
		t.Fatalf("Full count = %d", f.Count())
	}
}

func TestUnionIntersectSubtract(t *testing.T) {
	a := pairsRel(4, [2]int{0, 1}, [2]int{1, 2})
	b := pairsRel(4, [2]int{1, 2}, [2]int{2, 3})

	u := UnionOf(a, b)
	if u.Count() != 3 || !u.Has(0, 1) || !u.Has(2, 3) {
		t.Fatalf("union = %v", u)
	}
	i := IntersectOf(a, b)
	if i.Count() != 1 || !i.Has(1, 2) {
		t.Fatalf("intersect = %v", i)
	}
	d := a.Clone()
	d.Subtract(b)
	if d.Count() != 1 || !d.Has(0, 1) {
		t.Fatalf("subtract = %v", d)
	}
	// Originals untouched.
	if a.Count() != 2 || b.Count() != 2 {
		t.Fatal("operands mutated")
	}
}

func TestCompose(t *testing.T) {
	r := pairsRel(5, [2]int{0, 1}, [2]int{0, 2})
	s := pairsRel(5, [2]int{1, 3}, [2]int{2, 4}, [2]int{3, 0})
	c := Compose(r, s)
	want := pairsRel(5, [2]int{0, 3}, [2]int{0, 4})
	if !c.Equal(want) {
		t.Fatalf("compose = %v, want %v", c, want)
	}
	// Composition with identity is identity-preserving.
	if !Compose(r, Identity(5)).Equal(r) || !Compose(Identity(5), r).Equal(r) {
		t.Fatal("identity laws broken")
	}
}

func TestConverse(t *testing.T) {
	r := pairsRel(3, [2]int{0, 1}, [2]int{1, 2})
	c := r.Converse()
	if !c.Equal(pairsRel(3, [2]int{1, 0}, [2]int{2, 1})) {
		t.Fatalf("converse = %v", c)
	}
	if !c.Converse().Equal(r) {
		t.Fatal("double converse != original")
	}
}

func TestTransitiveClosure(t *testing.T) {
	r := pairsRel(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3})
	tc := r.TransitiveClosure()
	want := pairsRel(4,
		[2]int{0, 1}, [2]int{0, 2}, [2]int{0, 3},
		[2]int{1, 2}, [2]int{1, 3}, [2]int{2, 3})
	if !tc.Equal(want) {
		t.Fatalf("closure = %v, want %v", tc, want)
	}
	if !tc.Transitive() {
		t.Fatal("closure not transitive")
	}
}

func TestTransitiveClosureCycle(t *testing.T) {
	r := pairsRel(3, [2]int{0, 1}, [2]int{1, 0})
	tc := r.TransitiveClosure()
	if !tc.Has(0, 0) || !tc.Has(1, 1) {
		t.Fatal("cycle closure should contain self-loops")
	}
	if tc.Has(2, 2) {
		t.Fatal("unrelated element gained self-loop")
	}
	if tc.Irreflexive() {
		t.Fatal("cyclic closure reported irreflexive")
	}
}

func TestReflexiveClosures(t *testing.T) {
	r := pairsRel(3, [2]int{0, 1})
	rc := r.ReflexiveClosure()
	if rc.Count() != 4 {
		t.Fatalf("reflexive closure count = %d", rc.Count())
	}
	rtc := r.ReflexiveTransitiveClosure()
	if !rtc.Has(0, 0) || !rtc.Has(0, 1) || !rtc.Has(2, 2) {
		t.Fatal("rtc missing pairs")
	}
}

func TestAcyclic(t *testing.T) {
	dag := pairsRel(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{0, 2})
	if !dag.Acyclic() {
		t.Fatal("dag reported cyclic")
	}
	cyc := pairsRel(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0})
	if cyc.Acyclic() {
		t.Fatal("cycle reported acyclic")
	}
	self := pairsRel(2, [2]int{1, 1})
	if self.Acyclic() {
		t.Fatal("self-loop reported acyclic")
	}
	if !New(0).Acyclic() || !New(5).Acyclic() {
		t.Fatal("empty relations should be acyclic")
	}
}

func TestIrreflexive(t *testing.T) {
	if !pairsRel(3, [2]int{0, 1}).Irreflexive() {
		t.Fatal("irreflexive relation misreported")
	}
	if pairsRel(3, [2]int{1, 1}).Irreflexive() {
		t.Fatal("reflexive pair missed")
	}
}

func TestSubsetEqualEmpty(t *testing.T) {
	a := pairsRel(3, [2]int{0, 1})
	b := pairsRel(3, [2]int{0, 1}, [2]int{1, 2})
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Fatal("SubsetOf wrong")
	}
	if !a.Equal(a.Clone()) || a.Equal(b) {
		t.Fatal("Equal wrong")
	}
	if !New(3).Empty() || a.Empty() {
		t.Fatal("Empty wrong")
	}
}

func TestImagePreImage(t *testing.T) {
	r := pairsRel(5, [2]int{0, 2}, [2]int{1, 2}, [2]int{1, 3})
	img := r.Image(bits.Of(5, 0, 1))
	if !img.Equal(bits.Of(5, 2, 3)) {
		t.Fatalf("image = %v", img)
	}
	pre := r.PreImage(bits.Of(5, 3))
	if !pre.Equal(bits.Of(5, 1)) {
		t.Fatalf("preimage = %v", pre)
	}
	if got := r.Successors(1); !got.Equal(bits.Of(5, 2, 3)) {
		t.Fatalf("successors = %v", got)
	}
	if got := r.Predecessors(2); !got.Equal(bits.Of(5, 0, 1)) {
		t.Fatalf("predecessors = %v", got)
	}
}

func TestRestrictFilterWithoutID(t *testing.T) {
	r := pairsRel(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{1, 1})
	sub := r.RestrictTo(bits.Of(4, 1, 2))
	if !sub.Equal(pairsRel(4, [2]int{1, 2}, [2]int{1, 1})) {
		t.Fatalf("restrict = %v", sub)
	}
	f := r.FilterPairs(func(a, b int) bool { return a == b })
	if !f.Equal(pairsRel(4, [2]int{1, 1})) {
		t.Fatalf("filter = %v", f)
	}
	noid := r.WithoutIdentity()
	if noid.Has(1, 1) || noid.Count() != 3 {
		t.Fatalf("withoutIdentity = %v", noid)
	}
}

func TestDomRan(t *testing.T) {
	r := pairsRel(4, [2]int{0, 2}, [2]int{1, 2})
	if !r.Dom().Equal(bits.Of(4, 0, 1)) {
		t.Fatalf("dom = %v", r.Dom())
	}
	if !r.Ran().Equal(bits.Of(4, 2)) {
		t.Fatalf("ran = %v", r.Ran())
	}
}

func TestTotalAndStrictOrder(t *testing.T) {
	// 0 < 1 < 2 strict total order (transitively closed).
	r := pairsRel(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{0, 2})
	s := bits.Of(4, 0, 1, 2)
	if !r.TotalOver(s) || !r.StrictOrderOver(s) {
		t.Fatal("strict order misreported")
	}
	// Missing 0-2 pair: total fails after restriction? Actually TotalOver
	// only checks comparability.
	r2 := pairsRel(4, [2]int{0, 1}, [2]int{1, 2})
	if r2.TotalOver(s) {
		t.Fatal("incomparable pair missed")
	}
	// Non-transitive but total: not a strict order.
	r3 := pairsRel(3, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0})
	if r3.StrictOrderOver(bits.Of(3, 0, 1, 2)) {
		t.Fatal("cyclic relation accepted as strict order")
	}
}

func TestTopological(t *testing.T) {
	r := pairsRel(4, [2]int{2, 0}, [2]int{0, 1}, [2]int{1, 3})
	seq, ok := r.Topological()
	if !ok {
		t.Fatal("topological failed on dag")
	}
	if !r.IsLinearization(seq) {
		t.Fatalf("sequence %v not a linearization", seq)
	}
	if _, ok := pairsRel(2, [2]int{0, 1}, [2]int{1, 0}).Topological(); ok {
		t.Fatal("topological succeeded on cycle")
	}
	if _, ok := pairsRel(2, [2]int{1, 1}).Topological(); ok {
		t.Fatal("topological succeeded on self-loop")
	}
}

func TestLinearizationsEnumeration(t *testing.T) {
	// Two incomparable chains 0<1 and 2: linearizations of 3 elements
	// with 0 before 1: 3 of them.
	r := pairsRel(3, [2]int{0, 1})
	var count int
	done := r.Linearizations(func(p []int) bool {
		if !r.IsLinearization(p) {
			t.Fatalf("emitted non-linearization %v", p)
		}
		count++
		return true
	})
	if !done {
		t.Fatal("enumeration reported early stop")
	}
	if count != 3 {
		t.Fatalf("linearization count = %d, want 3", count)
	}
	// Early stop.
	count = 0
	done = r.Linearizations(func(p []int) bool {
		count++
		return false
	})
	if done || count != 1 {
		t.Fatalf("early stop broken: done=%v count=%d", done, count)
	}
}

func TestIsLinearizationRejects(t *testing.T) {
	r := pairsRel(3, [2]int{0, 1})
	if r.IsLinearization([]int{1, 0, 2}) {
		t.Fatal("order violation accepted")
	}
	if r.IsLinearization([]int{0, 1}) {
		t.Fatal("short sequence accepted")
	}
	if r.IsLinearization([]int{0, 0, 1}) {
		t.Fatal("duplicate accepted")
	}
	if r.IsLinearization([]int{0, 1, 7}) {
		t.Fatal("out-of-range accepted")
	}
}

func TestGrowRelation(t *testing.T) {
	r := pairsRel(2, [2]int{0, 1})
	g := r.Grow(5)
	if g.Size() != 5 || !g.Has(0, 1) {
		t.Fatal("Grow lost pairs")
	}
	g.Add(4, 0)
	if r.Size() != 2 {
		t.Fatal("Grow mutated original")
	}
}

func randRel(r *rand.Rand, n int, density float64) Rel {
	rel := New(n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if r.Float64() < density {
				rel.Add(a, b)
			}
		}
	}
	return rel
}

// Property: transitive closure is idempotent, contains r, and is
// transitive; acyclicity agrees with irreflexivity of the closure.
func TestQuickClosureProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(9)
		r := randRel(rng, n, 0.25)
		tc := r.TransitiveClosure()
		if !r.SubsetOf(tc) || !tc.Transitive() {
			return false
		}
		if !tc.TransitiveClosure().Equal(tc) {
			return false
		}
		return r.Acyclic() == tc.Irreflexive()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: composition is associative and distributes over union.
func TestQuickComposeAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		a := randRel(rng, n, 0.3)
		b := randRel(rng, n, 0.3)
		c := randRel(rng, n, 0.3)
		lhs := Compose(Compose(a, b), c)
		rhs := Compose(a, Compose(b, c))
		if !lhs.Equal(rhs) {
			return false
		}
		// a;(b ∪ c) == a;b ∪ a;c
		d1 := Compose(a, UnionOf(b, c))
		d2 := UnionOf(Compose(a, b), Compose(a, c))
		return d1.Equal(d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: (r;s)⁻¹ = s⁻¹;r⁻¹.
func TestQuickConverseAntiDistribution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		r := randRel(rng, n, 0.3)
		s := randRel(rng, n, 0.3)
		lhs := Compose(r, s).Converse()
		rhs := Compose(s.Converse(), r.Converse())
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every topological sort of an acyclic relation is a
// linearization and Linearizations only emits valid ones.
func TestQuickTopologicalValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		// Build a DAG by ordering edges low->high.
		r := New(n)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if rng.Intn(3) == 0 {
					r.Add(a, b)
				}
			}
		}
		seq, ok := r.Topological()
		if !ok || !r.IsLinearization(seq) {
			return false
		}
		valid := true
		r.Linearizations(func(p []int) bool {
			if !r.IsLinearization(p) {
				valid = false
				return false
			}
			return true
		})
		return valid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	r := pairsRel(3, [2]int{2, 0}, [2]int{0, 1})
	if got := r.String(); got != "{(0,1), (2,0)}" {
		t.Fatalf("String = %q", got)
	}
}

func BenchmarkTransitiveClosure(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	r := randRel(rng, 64, 0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.TransitiveClosure()
	}
}

func BenchmarkCompose(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	r := randRel(rng, 64, 0.1)
	s := randRel(rng, 64, 0.1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Compose(r, s)
	}
}

func BenchmarkAcyclic(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n := 128
	r := New(n)
	for a := 0; a < n; a++ {
		for bb := a + 1; bb < n; bb++ {
			if rng.Intn(10) == 0 {
				r.Add(a, bb)
			}
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !r.Acyclic() {
			b.Fatal("dag misclassified")
		}
	}
}

// BenchmarkUnionRow measures the word-parallel row extension the
// predecessor-oriented closures are built from (one owned-row union
// per derived edge group).
func BenchmarkUnionRow(b *testing.B) {
	n := 64
	src := bits.New(n)
	for i := 0; i < n; i += 3 {
		src.Set(i)
	}
	a := NewAllocator(n)
	r := New(n).ShareGrowAlloc(n, a)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.UnionRow(i%n, src)
	}
}

// BenchmarkShareGrowRecycle measures the successor hot path with slab
// recycling: inherit a parent copy-on-write, own one row, then release
// the allocator so the next iteration recarves the retained slabs —
// the allocation profile of a dedup-discarded successor.
func BenchmarkShareGrowRecycle(b *testing.B) {
	n := 32
	parent := FromPairs(n, [][2]int{{0, 1}, {1, 2}, {5, 9}})
	var a Allocator
	a.Init(n + 1)
	src := bits.New(n)
	src.Set(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		child := parent.ShareGrowAlloc(n+1, &a)
		child.UnionRow(n, src)
		a.Release()
		a.Init(n + 1)
	}
}

func TestShareGrowCopyOnWrite(t *testing.T) {
	parent := FromPairs(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	snapshot := parent.Clone()

	child := parent.ShareGrow(4)
	if child.Size() != 4 {
		t.Fatalf("child carrier %d", child.Size())
	}
	// Inherited pairs read through; the new row starts empty.
	for _, p := range snapshot.Pairs() {
		if !child.Has(p[0], p[1]) {
			t.Fatalf("child lost inherited pair %v", p)
		}
	}
	if !child.Row(3).Empty() {
		t.Fatal("fresh row must be empty")
	}

	// Writes to the child must not leak into the parent.
	child.Add(0, 3) // copy-on-write of an inherited row
	child.Add(3, 1) // write to the fresh row
	child.Remove(1, 2)
	if !parent.Equal(snapshot) {
		t.Fatalf("parent mutated through child: %s != %s", parent, snapshot)
	}
	if !child.Has(0, 3) || !child.Has(3, 1) || child.Has(1, 2) || !child.Has(0, 1) {
		t.Fatalf("child contents wrong: %s", child)
	}

	// Untouched rows still alias the parent; touched rows are owned.
	if child.Row(2).Len() != 3 {
		t.Fatal("untouched row should keep the parent capacity")
	}
	if child.Row(0).Len() != 4 || child.Row(3).Len() != 4 {
		t.Fatal("written rows must be owned at the child capacity")
	}
}

func TestShareGrowChain(t *testing.T) {
	// Grandchild sharing through an intermediate copy-on-write parent.
	r := FromPairs(2, [][2]int{{0, 1}})
	c1 := r.ShareGrow(3)
	c1.Add(2, 0)
	c2 := c1.ShareGrow(4)
	c2.Add(3, 2)
	c2.Add(0, 3)
	want := FromPairs(4, [][2]int{{0, 1}, {2, 0}, {3, 2}, {0, 3}})
	if !c2.Equal(want) {
		t.Fatalf("chained share: %s != %s", c2, want)
	}
	if !c1.Equal(FromPairs(3, [][2]int{{0, 1}, {2, 0}})) {
		t.Fatalf("intermediate mutated: %s", c1)
	}
	// Clone materialises every shared row at full capacity.
	cl := c2.Clone()
	for i := 0; i < 4; i++ {
		if cl.Row(i).Len() != 4 {
			t.Fatalf("Clone row %d capacity %d", i, cl.Row(i).Len())
		}
	}
	if !cl.Equal(want) {
		t.Fatalf("clone: %s", cl)
	}
}

func TestShareGrowBulkOps(t *testing.T) {
	parent := FromPairs(3, [][2]int{{0, 1}, {1, 2}})
	child := parent.ShareGrow(4)
	other := FromPairs(4, [][2]int{{2, 3}, {1, 2}})
	child.Union(other)
	if !child.Equal(FromPairs(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})) {
		t.Fatalf("union on shared rel: %s", child)
	}
	child2 := parent.ShareGrow(4)
	child2.Subtract(other)
	if !child2.Equal(FromPairs(4, [][2]int{{0, 1}})) {
		t.Fatalf("subtract on shared rel: %s", child2)
	}
	if !parent.Equal(FromPairs(3, [][2]int{{0, 1}, {1, 2}})) {
		t.Fatalf("parent mutated: %s", parent)
	}
}

func TestShareGrowDerivedOps(t *testing.T) {
	// Read-only algebra over a copy-on-write relation matches the
	// algebra over its materialised clone.
	rng := rand.New(rand.NewSource(99))
	parent := randRel(rng, 20, 0.15)
	child := parent.ShareGrow(24)
	for i := 0; i < 10; i++ {
		child.Add(rng.Intn(24), rng.Intn(24))
	}
	full := child.Clone()
	if !child.TransitiveClosure().Equal(full.TransitiveClosure()) {
		t.Fatal("closure differs on shared rel")
	}
	if !child.Converse().Equal(full.Converse()) {
		t.Fatal("converse differs on shared rel")
	}
	if !Compose(child, child).Equal(Compose(full, full)) {
		t.Fatal("compose differs on shared rel")
	}
	if got, want := child.Count(), full.Count(); got != want {
		t.Fatalf("count %d != %d", got, want)
	}
}

func TestUnionRow(t *testing.T) {
	parent := FromPairs(3, [][2]int{{0, 1}})
	child := parent.ShareGrow(4)
	child.UnionRow(0, bits.Of(3, 2)) // shorter set into an inherited row
	child.UnionRow(3, bits.Of(4, 0, 3))
	if !child.Equal(FromPairs(4, [][2]int{{0, 1}, {0, 2}, {3, 0}, {3, 3}})) {
		t.Fatalf("UnionRow: %s", child)
	}
	if parent.Has(0, 2) {
		t.Fatal("UnionRow leaked into parent")
	}
}

// TestAllocatorRecycling drives the slab-recycling contract of
// Allocator.Release: after a Release + Init cycle the allocator
// recarves its retained slabs, and the rows and sets it hands out must
// come back zeroed and owned — never aliasing rows of a previous life
// or of the parent the new life inherits from. Each case dirties the
// first life differently before recycling.
func TestAllocatorRecycling(t *testing.T) {
	parent := FromPairs(3, [][2]int{{0, 1}, {1, 2}})
	cases := []struct {
		name  string
		dirty func(a *Allocator) // first life: carve and scribble
	}{
		{"rows", func(a *Allocator) {
			r := parent.ShareGrowAlloc(4, a)
			r.Add(3, 0)          // owned row
			r.Add(0, 2)          // copy-on-write of an inherited row
			r.UnionRow(1, bits.Of(4, 3))
		}},
		{"sets", func(a *Allocator) {
			s := a.NewSet(4)
			s.Set(3)
			sh := a.NewSharedSet(4)
			sh.Set(0)
			sh.Set(3)
		}},
		{"rows-and-sets", func(a *Allocator) {
			r := parent.ShareGrowAlloc(4, a)
			r.Add(3, 3)
			s := a.NewSharedSet(4)
			s.Set(2)
		}},
		{"many-rows", func(a *Allocator) {
			// Force several chunk refills so multiple slabs recycle.
			r := New(40).ShareGrowAlloc(40, a)
			for i := 0; i < 40; i++ {
				r.Add(i, (i + 1) % 40)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var a Allocator
			a.Init(4)
			tc.dirty(&a)
			a.Release()
			a.Init(4)

			// Second life: everything carved must be zeroed and owned.
			child := parent.ShareGrowAlloc(4, &a)
			if !child.Row(3).Empty() {
				t.Fatalf("fresh owned row not empty: %s", child.Row(3))
			}
			for i := 0; i < 3; i++ {
				if !child.Row(i).Equal(parent.Row(i)) {
					t.Fatalf("inherited row %d diverged: %s vs %s", i, child.Row(i), parent.Row(i))
				}
			}
			s := a.NewSet(4)
			if !s.Empty() {
				t.Fatalf("recycled NewSet not zeroed: %s", s)
			}
			sh := a.NewSharedSet(4)
			if !sh.Empty() {
				t.Fatalf("recycled NewSharedSet not zeroed: %s", sh)
			}
			// Ownership: mutating the child must never leak upward.
			snapshot := parent.Clone()
			child.Add(0, 2)
			child.Add(3, 1)
			child.UnionRow(2, bits.Of(4, 0, 3))
			if !parent.Equal(snapshot) {
				t.Fatalf("child mutation leaked into parent: %s vs %s", parent, snapshot)
			}
		})
	}
}

// TestAllocatorRecycleKeepsDescendantsIntact pins the safety argument
// of the arena path: recycling an allocator only clears storage carved
// in its own life — rows a child copied on write into its OWN
// allocator survive the parent's (hypothetical) recycling untouched,
// because copy-on-write always copies into the mutating relation's
// allocator, never the ancestor's.
func TestAllocatorRecycleKeepsDescendantsIntact(t *testing.T) {
	var pa, ca Allocator
	pa.Init(3)
	ca.Init(4)
	parent := FromPairs(3, [][2]int{{0, 1}}).ShareGrowAlloc(3, &pa)
	child := parent.ShareGrowAlloc(4, &ca)
	child.Add(0, 2) // copies row 0 into ca's storage
	snapshot := child.Clone()

	// Recycle the child's allocator's *spares* path too: releasing an
	// unrelated allocator must not disturb the live child.
	var other Allocator
	other.Init(4)
	tmp := other.NewSharedSet(4)
	tmp.Set(1)
	other.Release()

	if !child.Equal(snapshot) {
		t.Fatalf("child diverged after unrelated release: %s vs %s", child, snapshot)
	}
	if parent.Has(0, 2) {
		t.Fatal("copy-on-write leaked into parent")
	}
}
