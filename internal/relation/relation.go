// Package relation implements finite binary relations over the elements
// 0..n-1 as dense boolean matrices backed by internal/bits.
//
// The C11 memory-model development manipulates relations constantly:
// sequenced-before, reads-from, modification order, and the derived
// synchronises-with, happens-before, from-read and extended-coherence
// orders are all binary relations over the events of an execution, and
// the axioms are (ir)reflexivity and acyclicity conditions on relational
// expressions. This package supplies exactly that algebra: union,
// intersection, composition, converse, reflexive and transitive closure,
// restriction, images, and linearization (topological sorting).
package relation

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bits"
)

// Rel is a binary relation over {0..n-1}. Rel values are mutable;
// Clone before sharing. The zero value is an empty relation over the
// empty carrier.
//
// A relation built by ShareGrow aliases the rows of its (immutable)
// parent and copies a row only on first write — see ShareGrow.
type Rel struct {
	n    int
	rows []bits.Set // rows[i] = successors of i
	cow  *Allocator // non-nil while some rows alias a parent relation
}

// Allocator carves owned rows for copy-on-write relations out of
// chunked slabs, so copying k rows costs O(k) words plus O(log k)
// allocations rather than one allocation per row. One Allocator may
// back several relations over the same carrier (e.g. the sb/rf/mo of
// one successor state): rows are carved sequentially and each belongs
// to exactly one relation row.
type Allocator struct {
	chunk     []uint64   // spare words for the next owned rows
	stride    int        // words per owned row
	chunkRows int        // rows in the most recent chunk (doubled on refill)
	hdrs      []bits.Set // spare row headers for ShareGrowAlloc
	free      []uint64   // spare inline words for NewSet
	// inline backs NewSet carves only. Relation rows must never live
	// here: they are aliased copy-on-write by descendant relations,
	// and inline storage would keep the embedding structure (and
	// transitively its ancestors) reachable long after the owner is
	// otherwise dead. NewSet storage, by contract, never escapes the
	// owner, so it may share the owner's allocation.
	inline [8]uint64

	// Slab recycling (Release): slabs/hdrSlabs record every chunk
	// handed out in the allocator's current life; spareW/spareH hold
	// zeroed slabs retained from a previous life, consumed before any
	// fresh allocation. This lets a pooled owner (a discarded
	// successor state) recarve the same backing memory instead of
	// allocating new slabs for every successor.
	slabs    [][]uint64
	spareW   [][]uint64
	hdrSlabs [][]bits.Set
	spareH   [][]bits.Set
}

// NewAllocator returns an allocator for rows over an n-element
// carrier.
//
// Carved storage is always separate heap chunks, never memory inside
// the Allocator itself: rows carved here are aliased copy-on-write by
// descendant relations, and inline storage would keep the whole
// embedding structure (and transitively its ancestors) reachable long
// after the owner is otherwise dead.
func NewAllocator(n int) *Allocator {
	a := &Allocator{}
	a.Init(n)
	return a
}

// Init (re)initialises an allocator in place for an n-element carrier
// — for callers that embed the Allocator in a larger per-state
// structure to save the separate allocation. The allocator must not
// have carved rows that are still referenced.
func (a *Allocator) Init(n int) {
	a.stride = (n + wordBits - 1) / wordBits
	a.chunk = nil
	a.chunkRows = 0
	a.hdrs = nil
	a.free = nil
	if a.stride > 0 && a.stride <= len(a.inline) {
		a.free = a.inline[:len(a.inline)-len(a.inline)%a.stride]
	}
}

// Release retains the allocator's slabs for reuse after a future Init
// and drops every reference they hold. The caller guarantees no row or
// set carved in this life is referenced anymore — in this repository,
// that the owning state was discarded before it was ever expanded,
// audited or stored, so no descendant aliases its rows.
func (a *Allocator) Release() {
	for _, s := range a.slabs {
		clear(s)
		a.spareW = append(a.spareW, s)
	}
	a.slabs = a.slabs[:0]
	for _, h := range a.hdrSlabs {
		clear(h) // drop aliased ancestor rows promptly
		a.spareH = append(a.spareH, h)
	}
	a.hdrSlabs = a.hdrSlabs[:0]
	a.inline = [8]uint64{} // NewSet carves must come out zeroed
	a.chunk = nil
	a.hdrs = nil
	a.free = nil
}

// rowHeaders carves a slice of k zero row headers, batching the
// backing allocation across the several relations of one state.
func (a *Allocator) rowHeaders(k int) []bits.Set {
	if len(a.hdrs) < k {
		a.hdrs = nil
		for len(a.spareH) > 0 {
			h := a.spareH[len(a.spareH)-1]
			a.spareH = a.spareH[:len(a.spareH)-1]
			if len(h) >= k {
				a.hdrs = h
				break
			}
		}
		if a.hdrs == nil {
			a.hdrs = make([]bits.Set, 3*k)
		}
		a.hdrSlabs = append(a.hdrSlabs, a.hdrs)
	}
	out := a.hdrs[:k:k]
	a.hdrs = a.hdrs[k:]
	return out
}

// NewSet carves one zeroed bit set of capacity n (the allocator's
// carrier size) — for per-state scratch and memo sets that live no
// longer than the allocator's owner and are never aliased by
// descendants (unlike relation rows; see the inline field). Not safe
// for concurrent use; callers synchronise exactly as they do for
// copy-on-write row mutation.
func (a *Allocator) NewSet(n int) bits.Set {
	if len(a.free) >= a.stride && a.stride > 0 {
		words := a.free[:a.stride:a.stride]
		a.free = a.free[a.stride:]
		return bits.FromWords(words, n)
	}
	return a.newRow(n)
}

// newRow carves one zeroed row of capacity nbits from the chunk list.
// Chunks double in size on every refill, so owning k rows costs O(k)
// words over O(log k) allocations. A zero stride (empty carrier)
// carves empty rows without ever allocating.
func (a *Allocator) newRow(nbits int) bits.Set {
	if len(a.chunk) < a.stride {
		a.chunk = nil
		// Prefer a slab retained by Release: already zeroed.
		for len(a.spareW) > 0 {
			s := a.spareW[len(a.spareW)-1]
			a.spareW = a.spareW[:len(a.spareW)-1]
			if len(s) >= a.stride {
				a.chunk = s
				break
			}
		}
		if a.chunk == nil {
			if a.chunkRows < 16 {
				a.chunkRows = 16
			} else {
				a.chunkRows *= 2
			}
			a.chunk = make([]uint64, a.chunkRows*a.stride)
		}
		a.slabs = append(a.slabs, a.chunk)
	}
	words := a.chunk[:a.stride:a.stride]
	a.chunk = a.chunk[a.stride:]
	return bits.FromWords(words, nbits)
}

// NewSharedSet carves one zeroed bit set of capacity n that may be
// aliased by descendants of the owner — per-state indexes inherited
// outright by successor states, like relation rows. Unlike NewSet it
// is never inline-backed: storage comes from the same separate heap
// slabs that back owned relation rows, so an alias held by a
// descendant pins only the slab, not the embedding structure.
func (a *Allocator) NewSharedSet(n int) bits.Set {
	return a.newRow(n)
}

// ShareGrow returns a relation over a carrier of n >= r.n elements
// whose first r.n rows alias r's storage. The result is copy-on-write:
// reads go through the shared rows, and the first Add/Remove touching
// a row copies it into storage owned by the new relation. r must not
// be mutated afterwards (in this repository parents are immutable
// states, so the constraint holds by construction). A shared row is
// recognised by its capacity: owned rows have capacity exactly n,
// inherited rows have the smaller capacity of the ancestor that built
// them — which is also why reads of column bits >= an inherited row's
// capacity correctly report false (the parent had no such column).
func (r Rel) ShareGrow(n int) Rel {
	return r.ShareGrowAlloc(n, NewAllocator(n))
}

// ShareGrowAlloc is ShareGrow drawing owned rows from the given shared
// allocator, which must have been built for an n-element carrier.
func (r Rel) ShareGrowAlloc(n int, a *Allocator) Rel {
	if n <= r.n {
		return r.Clone()
	}
	out := Rel{
		n:    n,
		rows: a.rowHeaders(n),
		cow:  a,
	}
	copy(out.rows, r.rows)
	for i := r.n; i < n; i++ {
		out.rows[i] = a.newRow(n)
	}
	return out
}

// ownRow ensures row a is backed by storage owned by r, copying the
// inherited row on first write.
func (r *Rel) ownRow(a int) {
	if r.cow == nil || r.rows[a].Len() == r.n {
		return
	}
	row := r.cow.newRow(r.n)
	row.LoadFrom(r.rows[a])
	r.rows[a] = row
}

// ownAll materialises every inherited row, after which bulk mutation
// is safe.
func (r *Rel) ownAll() {
	if r.cow == nil {
		return
	}
	for i := range r.rows {
		r.ownRow(i)
	}
}

const wordBits = 64

// New returns the empty relation over {0..n-1}. All rows share one
// backing slab (see bits.MakeRows), so constructing or cloning a
// relation costs two allocations rather than n+1.
func New(n int) Rel {
	if n < 0 {
		panic("relation: negative carrier size")
	}
	return Rel{n: n, rows: bits.MakeRows(n, n)}
}

// FromPairs builds a relation over {0..n-1} from explicit pairs.
func FromPairs(n int, pairs [][2]int) Rel {
	r := New(n)
	for _, p := range pairs {
		r.Add(p[0], p[1])
	}
	return r
}

// Identity returns the identity relation over {0..n-1}.
func Identity(n int) Rel {
	r := New(n)
	for i := 0; i < n; i++ {
		r.Add(i, i)
	}
	return r
}

// Full returns the complete relation over {0..n-1}.
func Full(n int) Rel {
	r := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r.Add(i, j)
		}
	}
	return r
}

// Size returns the carrier size n.
func (r Rel) Size() int { return r.n }

// Add inserts the pair (a, b).
func (r *Rel) Add(a, b int) {
	r.ownRow(a)
	r.rows[a].Set(b)
}

// Remove deletes the pair (a, b).
func (r *Rel) Remove(a, b int) {
	r.ownRow(a)
	r.rows[a].Clear(b)
}

// UnionRow sets row a to row(a) ∪ s. s may have a smaller capacity
// than the carrier (absent columns read as empty).
func (r *Rel) UnionRow(a int, s bits.Set) {
	r.ownRow(a)
	r.rows[a].Or(s)
}

// Has reports whether (a, b) is in the relation. Out-of-range indices
// report false.
func (r Rel) Has(a, b int) bool {
	if a < 0 || a >= r.n {
		return false
	}
	return r.rows[a].Test(b)
}

// Row returns the successor set of a (shared storage; do not mutate).
func (r Rel) Row(a int) bits.Set { return r.rows[a] }

// Clone returns an independent, fully-owned copy (shared rows of a
// copy-on-write relation are materialised).
func (r Rel) Clone() Rel {
	c := New(r.n)
	for i := range r.rows {
		c.rows[i].LoadFrom(r.rows[i])
	}
	return c
}

// Grow returns a copy of r over a carrier of at least n elements.
func (r Rel) Grow(n int) Rel {
	if n <= r.n {
		return r.Clone()
	}
	c := New(n)
	for i := range r.rows {
		c.rows[i].LoadFrom(r.rows[i])
	}
	return c
}

// Union sets r to r ∪ s. Carriers must match.
func (r *Rel) Union(s Rel) {
	r.checkSize(s)
	r.ownAll()
	for i := range r.rows {
		r.rows[i].Or(s.rows[i])
	}
}

// Intersect sets r to r ∩ s. Carriers must match.
func (r *Rel) Intersect(s Rel) {
	r.checkSize(s)
	r.ownAll()
	for i := range r.rows {
		r.rows[i].And(s.rows[i])
	}
}

// Subtract sets r to r \ s. Carriers must match.
func (r *Rel) Subtract(s Rel) {
	r.checkSize(s)
	r.ownAll()
	for i := range r.rows {
		r.rows[i].AndNot(s.rows[i])
	}
}

func (r Rel) checkSize(s Rel) {
	if r.n != s.n {
		panic(fmt.Sprintf("relation: carrier mismatch %d != %d", r.n, s.n))
	}
}

// UnionOf returns r ∪ s as a new relation.
func UnionOf(rs ...Rel) Rel {
	if len(rs) == 0 {
		return New(0)
	}
	out := rs[0].Clone()
	for _, s := range rs[1:] {
		out.Union(s)
	}
	return out
}

// IntersectOf returns the intersection of the given relations.
func IntersectOf(rs ...Rel) Rel {
	if len(rs) == 0 {
		return New(0)
	}
	out := rs[0].Clone()
	for _, s := range rs[1:] {
		out.Intersect(s)
	}
	return out
}

// Compose returns r ; s — the relational composition
// {(a,c) | ∃b. (a,b) ∈ r ∧ (b,c) ∈ s}.
func Compose(r, s Rel) Rel {
	r.checkSize(s)
	out := New(r.n)
	for a := 0; a < r.n; a++ {
		row := r.rows[a]
		for b := row.Next(0); b >= 0; b = row.Next(b + 1) {
			out.rows[a].Or(s.rows[b])
		}
	}
	return out
}

// Converse returns r⁻¹.
func (r Rel) Converse() Rel {
	out := New(r.n)
	for a := 0; a < r.n; a++ {
		row := r.rows[a]
		for b := row.Next(0); b >= 0; b = row.Next(b + 1) {
			out.Add(b, a)
		}
	}
	return out
}

// ReflexiveClosure returns r ∪ Id.
func (r Rel) ReflexiveClosure() Rel {
	out := r.Clone()
	for i := 0; i < r.n; i++ {
		out.Add(i, i)
	}
	return out
}

// TransitiveClosure returns r⁺ using a bitset Floyd–Warshall:
// for each pivot k, every row that reaches k absorbs row(k).
func (r Rel) TransitiveClosure() Rel {
	out := r.Clone()
	for k := 0; k < out.n; k++ {
		rk := out.rows[k]
		for i := 0; i < out.n; i++ {
			if i != k && out.rows[i].Test(k) {
				out.rows[i].Or(rk)
			}
		}
		// A self-loop at k also requires absorbing k's row into itself,
		// which is a no-op; nothing further needed.
	}
	return out
}

// ReflexiveTransitiveClosure returns r*.
func (r Rel) ReflexiveTransitiveClosure() Rel {
	return r.TransitiveClosure().ReflexiveClosure()
}

// Irreflexive reports whether no (a, a) pair is present.
func (r Rel) Irreflexive() bool {
	for i := 0; i < r.n; i++ {
		if r.rows[i].Test(i) {
			return false
		}
	}
	return true
}

// Acyclic reports whether the relation has no directed cycle,
// equivalently whether its transitive closure is irreflexive.
func (r Rel) Acyclic() bool {
	// Kahn's algorithm is O(V+E) and avoids building the closure.
	indeg := make([]int, r.n)
	for a := 0; a < r.n; a++ {
		row := r.rows[a]
		for b := row.Next(0); b >= 0; b = row.Next(b + 1) {
			indeg[b]++
		}
	}
	queue := make([]int, 0, r.n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		row := r.rows[a]
		for b := row.Next(0); b >= 0; b = row.Next(b + 1) {
			indeg[b]--
			if indeg[b] == 0 {
				queue = append(queue, b)
			}
		}
	}
	return seen == r.n
}

// Transitive reports whether r;r ⊆ r.
func (r Rel) Transitive() bool {
	comp := Compose(r, r)
	return comp.SubsetOf(r)
}

// SubsetOf reports whether r ⊆ s.
func (r Rel) SubsetOf(s Rel) bool {
	r.checkSize(s)
	for i := range r.rows {
		if !r.rows[i].IsSubsetOf(s.rows[i]) {
			return false
		}
	}
	return true
}

// Equal reports whether r and s contain the same pairs.
func (r Rel) Equal(s Rel) bool {
	if r.n != s.n {
		return false
	}
	for i := range r.rows {
		if !r.rows[i].Equal(s.rows[i]) {
			return false
		}
	}
	return true
}

// Empty reports whether the relation has no pairs.
func (r Rel) Empty() bool {
	for i := range r.rows {
		if !r.rows[i].Empty() {
			return false
		}
	}
	return true
}

// Pairs returns all pairs in lexicographic order.
func (r Rel) Pairs() [][2]int {
	var out [][2]int
	for a := 0; a < r.n; a++ {
		row := r.rows[a]
		for b := row.Next(0); b >= 0; b = row.Next(b + 1) {
			out = append(out, [2]int{a, b})
		}
	}
	return out
}

// Count returns the number of pairs.
func (r Rel) Count() int {
	c := 0
	for i := range r.rows {
		c += r.rows[i].Count()
	}
	return c
}

// Image returns R[S] = {b | ∃a ∈ S. (a,b) ∈ R}.
func (r Rel) Image(s bits.Set) bits.Set {
	out := bits.New(r.n)
	for a := s.Next(0); a >= 0; a = s.Next(a + 1) {
		if a < r.n {
			out.Or(r.rows[a])
		}
	}
	return out
}

// PreImage returns R⁻¹[S] = {a | ∃b ∈ S. (a,b) ∈ R}.
func (r Rel) PreImage(s bits.Set) bits.Set {
	out := bits.New(r.n)
	for a := 0; a < r.n; a++ {
		if r.rows[a].Intersects(s) {
			out.Set(a)
		}
	}
	return out
}

// Successors returns R[{a}] as a fresh set.
func (r Rel) Successors(a int) bits.Set { return r.rows[a].Clone() }

// Predecessors returns R⁻¹[{a}] as a fresh set.
func (r Rel) Predecessors(a int) bits.Set {
	out := bits.New(r.n)
	for i := 0; i < r.n; i++ {
		if r.rows[i].Test(a) {
			out.Set(i)
		}
	}
	return out
}

// RestrictTo returns r ∩ (S × S).
func (r Rel) RestrictTo(s bits.Set) Rel {
	out := New(r.n)
	masked := s.Grow(r.n)
	for a := s.Next(0); a >= 0; a = s.Next(a + 1) {
		if a >= r.n {
			break
		}
		out.rows[a].Or(r.rows[a])
		out.rows[a].And(masked)
	}
	return out
}

// FilterPairs returns the sub-relation of pairs satisfying keep.
func (r Rel) FilterPairs(keep func(a, b int) bool) Rel {
	out := New(r.n)
	for a := 0; a < r.n; a++ {
		row := r.rows[a]
		for b := row.Next(0); b >= 0; b = row.Next(b + 1) {
			if keep(a, b) {
				out.Add(a, b)
			}
		}
	}
	return out
}

// WithoutIdentity returns r \ Id.
func (r Rel) WithoutIdentity() Rel {
	out := r.Clone()
	for i := 0; i < r.n; i++ {
		out.rows[i].Clear(i)
	}
	return out
}

// Dom returns {a | ∃b. (a,b) ∈ r}.
func (r Rel) Dom() bits.Set {
	out := bits.New(r.n)
	for a := 0; a < r.n; a++ {
		if !r.rows[a].Empty() {
			out.Set(a)
		}
	}
	return out
}

// Ran returns {b | ∃a. (a,b) ∈ r}.
func (r Rel) Ran() bits.Set {
	out := bits.New(r.n)
	for a := 0; a < r.n; a++ {
		out.Or(r.rows[a])
	}
	return out
}

// TotalOver reports whether r linearly orders the members of s:
// for all distinct a, b in s, (a,b) ∈ r or (b,a) ∈ r.
func (r Rel) TotalOver(s bits.Set) bool {
	members := s.Members()
	for i, a := range members {
		for _, b := range members[i+1:] {
			if !r.Has(a, b) && !r.Has(b, a) {
				return false
			}
		}
	}
	return true
}

// StrictOrderOver reports whether r restricted to s is a strict total
// order: irreflexive, transitive and total over s.
func (r Rel) StrictOrderOver(s bits.Set) bool {
	sub := r.RestrictTo(s)
	return sub.Irreflexive() && sub.Transitive() && sub.TotalOver(s)
}

// Topological returns one linearization of r restricted to the members
// of carrier (all n elements when carrier is nil), or ok=false when r
// is cyclic. Among available elements the smallest index is taken
// first, so the output is deterministic.
func (r Rel) Topological() ([]int, bool) {
	indeg := make([]int, r.n)
	for a := 0; a < r.n; a++ {
		row := r.rows[a]
		for b := row.Next(0); b >= 0; b = row.Next(b + 1) {
			if a != b {
				indeg[b]++
			} else {
				return nil, false // self-loop
			}
		}
	}
	avail := bits.New(r.n)
	for i, d := range indeg {
		if d == 0 {
			avail.Set(i)
		}
	}
	out := make([]int, 0, r.n)
	for len(out) < r.n {
		a := avail.Next(0)
		if a < 0 {
			return nil, false
		}
		avail.Clear(a)
		out = append(out, a)
		row := r.rows[a]
		for b := row.Next(0); b >= 0; b = row.Next(b + 1) {
			indeg[b]--
			if indeg[b] == 0 {
				avail.Set(b)
			}
		}
	}
	return out, true
}

// Linearizations calls f with each linearization of r (each permutation
// of 0..n-1 consistent with r) until f returns false. It reports
// whether enumeration ran to completion (true) or was stopped by f
// (false). A cyclic relation has no linearizations, so f is never
// called and the result is true.
func (r Rel) Linearizations(f func(perm []int) bool) bool {
	indeg := make([]int, r.n)
	for a := 0; a < r.n; a++ {
		row := r.rows[a]
		for b := row.Next(0); b >= 0; b = row.Next(b + 1) {
			indeg[b]++
		}
	}
	perm := make([]int, 0, r.n)
	used := make([]bool, r.n)
	var rec func() bool
	rec = func() bool {
		if len(perm) == r.n {
			return f(perm)
		}
		for a := 0; a < r.n; a++ {
			if used[a] || indeg[a] != 0 {
				continue
			}
			used[a] = true
			perm = append(perm, a)
			row := r.rows[a]
			for b := row.Next(0); b >= 0; b = row.Next(b + 1) {
				indeg[b]--
			}
			if !rec() {
				return false
			}
			for b := row.Next(0); b >= 0; b = row.Next(b + 1) {
				indeg[b]++
			}
			perm = perm[:len(perm)-1]
			used[a] = false
		}
		return true
	}
	return rec()
}

// IsLinearization reports whether seq is a permutation of 0..n-1 that
// respects r: (a,b) ∈ r implies a appears before b.
func (r Rel) IsLinearization(seq []int) bool {
	if len(seq) != r.n {
		return false
	}
	pos := make([]int, r.n)
	seen := make([]bool, r.n)
	for i, e := range seq {
		if e < 0 || e >= r.n || seen[e] {
			return false
		}
		seen[e] = true
		pos[e] = i
	}
	for a := 0; a < r.n; a++ {
		row := r.rows[a]
		for b := row.Next(0); b >= 0; b = row.Next(b + 1) {
			if pos[a] >= pos[b] {
				return false
			}
		}
	}
	return true
}

// String renders the relation as a sorted pair list.
func (r Rel) String() string {
	pairs := r.Pairs()
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d,%d)", p[0], p[1])
	}
	b.WriteByte('}')
	return b.String()
}
