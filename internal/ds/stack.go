package ds

import (
	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/proof"
)

// Stack is a Treiber stack: Top holds the index of the top node (0 =
// empty) and Nxt is the next-pointer array, nxt[i] = index below node
// i. Node payloads are the indexes themselves — litmus-scale
// histories push distinct nodes, so a separate value array would only
// widen the state space.
type Stack struct {
	Top event.Var
	Nxt event.Var
}

// Push returns the idiomatic CAS-retry push of the given node:
//
//	while (done == 0) {
//	  obs := top;
//	  nxt[node] := obs;
//	  if (top.cas(obs, node)) { done := 1; }
//	}
//
// obs and done are thread-private registers (scalar variables written
// by this thread only — deterministic under RA coherence).
func (s Stack) Push(node event.Val, obs, done event.Var) lang.Com {
	return lang.WhileC(lang.Eq(lang.X(done), lang.V(0)), lang.SeqC(
		lang.AssignC(obs, lang.X(s.Top)),
		lang.AssignAtC(s.Nxt, lang.V(node), lang.X(obs)),
		lang.CasC(s.Top, lang.X(obs), lang.V(node),
			lang.AssignC(done, lang.V(1)), lang.SkipC()),
	))
}

// Pop returns the CAS-retry pop:
//
//	while (done == 0) {
//	  obs := top^A;                           // sync with the push's updRA
//	  if (obs == 0) { done := 1; }            // empty: out stays 0
//	  else {
//	    below := nxt[obs];                    // symbolic indexed load
//	    if (top.cas(obs, below)) { out := obs; done := 1; }
//	  }
//	}
//
// The nxt[obs] load is the register-indexed traversal the array layer
// exists for: the cell read is only known once obs resolves.
func (s Stack) Pop(obs, below, out, done event.Var) lang.Com {
	return lang.WhileC(lang.Eq(lang.X(done), lang.V(0)), lang.SeqC(
		lang.AssignC(obs, lang.XA(s.Top)),
		lang.IfC(lang.Eq(lang.X(obs), lang.V(0)),
			lang.AssignC(done, lang.V(1)),
			lang.SeqC(
				lang.AssignC(below, lang.XAt(s.Nxt, lang.X(obs))),
				lang.CasC(s.Top, lang.X(obs), lang.X(below),
					lang.SeqC(
						lang.AssignC(out, lang.X(obs)),
						lang.AssignC(done, lang.V(1)),
					),
					lang.SkipC()),
			)),
	))
}

// NoLostPush is the linearizability-style reachability property: in
// the final state, walking Nxt from Top visits exactly the given
// nodes (minus any in excluded — nodes a client popped), with no
// cycle. A push that lost the race without retrying would leave its
// node unreachable.
func (s Stack) NoLostPush(nodes []event.Val, excluded ...event.Var) proof.OutcomeProp {
	return proof.OutcomeProp{
		Name: "stack-no-lost-push",
		Doc:  "every pushed node is reachable from Top via Nxt (popped nodes excepted)",
		Violated: func(o map[event.Var]event.Val) bool {
			popped := map[event.Val]bool{}
			for _, x := range excluded {
				if v := o[x]; v != 0 {
					popped[v] = true
				}
			}
			reached := map[event.Val]bool{}
			cur := o[s.Top]
			for hops := 0; cur != 0; hops++ {
				if hops > len(nodes) || reached[cur] {
					return true // longer than ever pushed, or cyclic
				}
				reached[cur] = true
				cur = o[lang.Cell(s.Nxt, cur)]
			}
			for _, n := range nodes {
				if !reached[n] && !popped[n] {
					return true
				}
			}
			return false
		},
	}
}

// TreiberPushScenario: two clients concurrently push one node each
// through CAS-retry loops. Whatever the interleaving — including the
// loser retrying against the winner's published top — both nodes end
// up threaded on the stack: exactly the two linearization orders are
// reachable.
func TreiberPushScenario() Scenario {
	s := Stack{Top: "top", Nxt: "nxt"}
	n1, n2 := lang.Cell("nxt", 1), lang.Cell("nxt", 2)
	return New("ds-treiber-push").
		InitZero("top", n1, n2, "o1", "d1", "o2", "d2").
		Thread(s.Push(1, "o1", "d1")).
		Thread(s.Push(2, "o2", "d2")).
		Observe("top", n1, n2).
		MaxEvents(26).
		Allow(
			O("top", 1, string(n1), 2, string(n2), 0),
			O("top", 2, string(n1), 0, string(n2), 1),
		).
		Forbid(
			O("top", 1, string(n1), 0, string(n2), 0), // push 2 lost
			O("top", 2, string(n1), 0, string(n2), 0), // push 1 lost
			O("top", 0, string(n1), 0, string(n2), 0), // both lost
		).
		AllowSC(
			O("top", 1, string(n1), 2, string(n2), 0),
			O("top", 2, string(n1), 0, string(n2), 1),
		).
		Prop(s.NoLostPush([]event.Val{1, 2})).
		Scenario()
}

// TreiberPushPopScenario: one client pushes node 1 while another
// pops. The pop either finds the stack empty (out=0) or gets node 1;
// a non-empty pop and a surviving node at once would be a double
// ownership. The pop's nxt[obs] chase exercises the symbolic indexed
// load end to end.
func TreiberPushPopScenario() Scenario {
	s := Stack{Top: "top", Nxt: "nxt"}
	n1 := lang.Cell("nxt", 1)
	return New("ds-treiber-push-pop").
		InitZero("top", n1, "o1", "d1", "o2", "b2", "r2", "d2").
		Thread(s.Push(1, "o1", "d1")).
		Thread(s.Pop("o2", "b2", "r2", "d2")).
		Observe("top", n1, "r2").
		MaxEvents(26).
		Allow(
			O("top", 0, string(n1), 0, "r2", 1), // pop got the push
			O("top", 1, string(n1), 0, "r2", 0), // pop saw empty
		).
		Forbid(
			O("top", 1, string(n1), 0, "r2", 1), // popped yet still on stack
			O("top", 0, string(n1), 0, "r2", 0), // vanished without a pop
		).
		AllowSC(
			O("top", 0, string(n1), 0, "r2", 1),
			O("top", 1, string(n1), 0, "r2", 0),
		).
		Prop(s.NoLostPush([]event.Val{1}, "r2")).
		Scenario()
}
