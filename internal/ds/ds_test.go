package ds

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/parser"
	"repro/internal/proof"
	"repro/internal/sc"
)

var update = flag.Bool("update", false, "rewrite testdata/ds from the scenario suite")

const litDir = "../../testdata/ds"

func models() []model.Model { return []model.Model{core.Model, sc.Model} }

func runOpts() explore.Options {
	return explore.Options{POR: true, Workers: 4}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestDumpOutcomes prints every scenario's reachable outcome set per
// model — the calibration tool that produced the committed allow
// lines. Skipped unless DS_DUMP is set.
func TestDumpOutcomes(t *testing.T) {
	if os.Getenv("DS_DUMP") == "" {
		t.Skip("set DS_DUMP=1 to dump reachable outcome sets")
	}
	for _, s := range Suite() {
		for _, m := range models() {
			rep := s.Test.RunModel(m, runOpts())
			t.Logf("%s/%s explored=%d truncated=%v outcomes=%v",
				s.Test.Name, m.Name(), rep.Explored, rep.Truncated, sortedKeys(rep.Outcomes))
		}
	}
}

// TestScenarioExpectations is the linearizability tier proper: under
// both backends every scenario passes its catalog expectations, the
// outcome properties hold over the reachable set, and under RAR the
// allow lines pin the reachable outcome set *exactly* (the regression
// pin — any semantics change that adds or removes a behaviour at the
// scenario bound trips it). The SC allow lines are checked for
// exactness too: the suite's SC sets are total by construction.
func TestScenarioExpectations(t *testing.T) {
	for _, s := range Suite() {
		s := s
		t.Run(s.Test.Name, func(t *testing.T) {
			t.Parallel()
			for _, m := range models() {
				rep := s.Test.RunModel(m, runOpts())
				if !rep.Pass() {
					t.Errorf("%s: missing allowed %v, reached forbidden %v",
						m.Name(), rep.MissingAllowed, rep.ReachedForbidden)
				}
				if v := s.CheckProps(rep.Outcomes); len(v) != 0 {
					t.Errorf("%s: property violations: %v", m.Name(), v)
				}
				allowed, _ := s.Test.Expectations(m.Name())
				want := map[string]bool{}
				for _, o := range allowed {
					want[o.Key(s.Test.Observe)] = true
				}
				for k := range rep.Outcomes {
					if !want[k] {
						t.Errorf("%s: reachable outcome %s not in the allow pin", m.Name(), k)
					}
				}
			}
		})
	}
}

// TestMutexLabels drives the exploration-time mutual-exclusion check
// for scenarios that declare a protected label: no reachable
// configuration of either backend has two clients inside it.
func TestMutexLabels(t *testing.T) {
	checked := 0
	for _, s := range Suite() {
		if s.MutexLabel == "" {
			continue
		}
		checked++
		threads := proof.ClientThreads(len(s.Test.Prog))
		for _, m := range models() {
			opts := runOpts()
			opts.MaxEvents = s.Test.MaxEvents
			opts.Property = proof.MutexAtLabel(s.MutexLabel, threads...)
			res := explore.Run(m.New(s.Test.Prog, s.Test.Init), opts)
			if res.Violation != nil {
				t.Errorf("%s/%s: mutual exclusion at %q violated: %v",
					s.Test.Name, m.Name(), s.MutexLabel, res.Violation.Program())
			}
		}
	}
	if checked == 0 {
		t.Fatal("no scenario declares a mutex label")
	}
}

// TestFilesInSync pins testdata/ds to the builder output: the .lit
// files on disk are exactly what the suite renders. Run with -update
// to regenerate.
func TestFilesInSync(t *testing.T) {
	want := map[string]string{}
	for _, s := range Suite() {
		want[s.Test.Name+".lit"] = s.Lit()
	}
	if *update {
		if err := os.MkdirAll(litDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, src := range want {
			if err := os.WriteFile(filepath.Join(litDir, name), []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	onDisk, err := filepath.Glob(filepath.Join(litDir, "*.lit"))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, path := range onDisk {
		name := filepath.Base(path)
		got[name] = true
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if want[name] == "" {
			t.Errorf("%s: on disk but not in the suite", name)
			continue
		}
		if string(src) != want[name] {
			t.Errorf("%s: out of sync with the builder (rerun with -update)", name)
		}
	}
	for name := range want {
		if !got[name] {
			t.Errorf("%s: in the suite but missing on disk (rerun with -update)", name)
		}
	}
}

// TestLitRoundTrip checks the rendered scenarios against the parser:
// Parse∘Format is the identity on the rendered source, and the
// reparsed test runs to the same verdicts — the array/CAS grammar
// extension carries the whole tier.
func TestLitRoundTrip(t *testing.T) {
	for _, s := range Suite() {
		src := s.Lit()
		f, err := parser.Parse(s.Test.Name, src)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", s.Test.Name, err, src)
		}
		if again := f.Format(); again != src {
			t.Errorf("%s: Format∘Parse drifted:\n--- built ---\n%s\n--- reparsed ---\n%s",
				s.Test.Name, src, again)
		}
		parsed, err := f.Test()
		if err != nil {
			t.Fatal(err)
		}
		if got, want := parsed.AppendSig(nil), s.Test.AppendSig(nil); string(got) != string(want) {
			t.Errorf("%s: reparsed test signature differs from the built test", s.Test.Name)
		}
		if parsed.MaxEvents != s.Test.MaxEvents {
			t.Errorf("%s: maxevents dropped in round trip", s.Test.Name)
		}
	}
}

// TestSuiteNamesUnique guards the file mapping.
func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Suite() {
		if seen[s.Test.Name] {
			t.Errorf("duplicate scenario name %s", s.Test.Name)
		}
		seen[s.Test.Name] = true
		if !strings.HasPrefix(s.Test.Name, "ds-") {
			t.Errorf("scenario %s: names are ds-prefixed", s.Test.Name)
		}
	}
}
