package ds

import (
	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/proof"
)

// CasSet is an open-addressing set: Size slots, each claimed by a
// CAS from the empty marker 0 to the inserted key. Insert probes the
// slots in order; losing a slot's CAS means another key claimed it,
// so the probe moves on — the unrolled if-else chain is the bounded
// analogue of the linear-probe loop.
type CasSet struct {
	Slot event.Var
	Size int
}

// Insert returns the probe chain inserting v. The insert is dropped
// (skip) when every slot loses — a full-table outcome the scenarios
// size their tables to avoid.
func (s CasSet) Insert(v event.Val) lang.Com {
	c := lang.SkipC()
	for i := s.Size - 1; i >= 0; i-- {
		c = lang.CasAtC(s.Slot, lang.V(event.Val(i)), lang.V(0), lang.V(v),
			lang.SkipC(), c)
	}
	return c
}

// Cells returns the slot cell names, for init/observe lists.
func (s CasSet) Cells() []event.Var {
	out := make([]event.Var, s.Size)
	for i := range out {
		out[i] = lang.Cell(s.Slot, event.Val(i))
	}
	return out
}

// ExactlyOnce: the final slots hold exactly the inserted keys, each
// once — no lost insert (a key missing) and no duplicate (a key in
// two slots, the torn-arbitration witness).
func (s CasSet) ExactlyOnce(keys ...event.Val) proof.OutcomeProp {
	return proof.OutcomeProp{
		Name: "set-insert-exactly-once",
		Doc:  "slot CAS arbitration places every inserted key in exactly one slot",
		Violated: func(o map[event.Var]event.Val) bool {
			count := map[event.Val]int{}
			for _, x := range s.Cells() {
				if v := o[x]; v != 0 {
					count[v]++
				}
			}
			if len(count) != len(keys) {
				return true
			}
			for _, k := range keys {
				if count[k] != 1 {
					return true
				}
			}
			return false
		},
	}
}

// CasSetScenario: two clients insert distinct keys into a two-slot
// set. Slot 0's CAS arbitrates: exactly one client claims it and the
// other falls through to slot 1, so exactly the two placements are
// reachable — under RAR the loser's failing CAS is an acquiring read
// of the winner's update, never of a stale value that would send both
// keys to the same slot.
func CasSetScenario() Scenario {
	s := CasSet{Slot: "slot", Size: 2}
	s0, s1 := lang.Cell("slot", 0), lang.Cell("slot", 1)
	return New("ds-cas-set").
		InitZero(s0, s1).
		Thread(s.Insert(7)).
		Thread(s.Insert(9)).
		Observe(s0, s1).
		MaxEvents(12).
		Allow(
			O(string(s0), 7, string(s1), 9),
			O(string(s0), 9, string(s1), 7),
		).
		Forbid(
			O(string(s0), 7, string(s1), 7), // duplicated key
			O(string(s0), 9, string(s1), 9),
			O(string(s0), 7, string(s1), 0), // lost insert
			O(string(s0), 9, string(s1), 0),
			O(string(s0), 0, string(s1), 0),
		).
		AllowSC(
			O(string(s0), 7, string(s1), 9),
			O(string(s0), 9, string(s1), 7),
		).
		Prop(s.ExactlyOnce(7, 9)).
		Scenario()
}

// LazyList is a lazylist-style linked set: Nxt is the successor
// array, Val the payloads; node 0 is nil. An insert writes the new
// node's payload, then splices it in with a release store (the
// lazylist's unlock-publish); a lock-free contains scan chases Nxt
// with acquiring loads and reads the payload through the register it
// found — the symbolic indexed load val[p].
type LazyList struct {
	Nxt event.Var
	Val event.Var
}

// Append returns the insert of node (payload v) after prev: the
// payload store, then the splice nxt[prev] := node, release when rel.
func (l LazyList) Append(prev, node, v event.Val, rel bool) lang.Com {
	splice := lang.AssignAtC(l.Nxt, lang.V(prev), lang.V(node))
	if rel {
		splice = lang.AssignAtRelC(l.Nxt, lang.V(prev), lang.V(node))
	}
	return lang.SeqC(
		lang.AssignAtC(l.Val, lang.V(node), lang.V(v)),
		splice,
	)
}

// ReadFrom returns the scan step from prev: p := nxt[prev]^A; if the
// successor exists, out := val[p] — the payload read through the
// just-discovered index.
func (l LazyList) ReadFrom(prev event.Val, p, out event.Var) lang.Com {
	return lang.SeqC(
		lang.AssignC(p, lang.XAtA(l.Nxt, lang.V(prev))),
		lang.IfC(lang.Ne(lang.X(p), lang.V(0)),
			lang.AssignC(out, lang.XAt(l.Val, lang.X(p))),
			lang.SkipC()),
	)
}

// NoTornScan: a scan that observed the splice reads the payload the
// inserter wrote before splicing — seeing the node but not its value
// is the torn observation the release/acquire pair excludes.
func (l LazyList) NoTornScan(p, out event.Var, payload event.Val) proof.OutcomeProp {
	return proof.OutcomeProp{
		Name: "lazylist-no-torn-scan",
		Doc:  "a scan observing the splice observes the payload written before it",
		Violated: func(o map[event.Var]event.Val) bool {
			return o[p] != 0 && o[out] != payload
		},
	}
}

// LazyListScenario: one client splices node 2 (payload 20) after node
// 1 while another scans from node 1. With the release splice the scan
// either misses the node or sees payload 20. Relaxed, RAR admits the
// torn observation p=2, r=0 — allowed there, forbidden under SC.
func LazyListScenario(rel bool) Scenario {
	l := LazyList{Nxt: "nxt", Val: "val"}
	n1, n2 := lang.Cell("nxt", 1), lang.Cell("nxt", 2)
	v1, v2 := lang.Cell("val", 1), lang.Cell("val", 2)
	name := "ds-lazylist-scan-rel"
	if !rel {
		name = "ds-lazylist-scan-rlx"
	}
	bld := New(name).
		InitZero(n1, n2, v2, "p2", "r2").
		Init(v1, 10).
		Thread(l.Append(1, 2, 20, rel)).
		Thread(l.ReadFrom(1, "p2", "r2")).
		Observe("p2", "r2").
		MaxEvents(14).
		Allow(
			O("p2", 0, "r2", 0),  // scan ran before the splice
			O("p2", 2, "r2", 20), // scan saw node and payload
		).
		AllowSC(
			O("p2", 0, "r2", 0),
			O("p2", 2, "r2", 20),
		)
	if rel {
		bld.Forbid(O("p2", 2, "r2", 0)). // torn: forbidden by the release splice
							Prop(l.NoTornScan("p2", "r2", 20))
	} else {
		bld.Allow(O("p2", 2, "r2", 0)). // the weak outcome
						ForbidSC(O("p2", 2, "r2", 0))
	}
	return bld.Scenario()
}
