// Package ds is the concurrent-data-structure workload tier: a
// builder API that assembles small N-thread client histories over
// classic lock-free structures — Treiber stack, Michael-Scott-style
// queue, ticket lock, CAS-probed set, lazylist-style set — into
// litmus tests with linearizability-style expectations.
//
// The structures are laid out in the command language's bounded
// arrays (internal/lang): nodes are 1-based cell indexes, 0 is nil,
// and pointers are cells holding indexes, so a traversal is a
// symbolically indexed load (nxt[p] with p a register). Operations
// are idiomatic CAS-retry loops over the language's strong CAS. Every
// scenario carries three layers of expectation:
//
//   - allow lines pin the *exact* reachable outcome set under the RAR
//     model at the scenario's event bound (a regression pin, in the
//     style of the generator catalog tests);
//   - forbid lines name the canonical property-violation outcomes —
//     the lost push, the duplicated dequeue, the torn read;
//   - proof.OutcomeProp properties state the linearizability-style
//     argument generically, so the same property is checked under
//     both the RAR and SC backends.
//
// Relaxed variants of the queue and lazylist scenarios deliberately
// drop the release/acquire annotations: their weak outcomes are
// allowed under RAR and forbidden under SC (forbid_sc), making the
// pair a model-differentiating regression test.
package ds

import (
	"sort"

	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/parser"
	"repro/internal/proof"
)

// Scenario is one assembled workload: a runnable litmus test, its
// rendered .lit source, and the linearizability-style properties to
// check over the reachable outcome set of any backend.
type Scenario struct {
	Test  *litmus.Test
	Props []proof.OutcomeProp
	// MutexLabel, when non-empty, asks for the exploration-time check
	// that no two client threads sit at this label simultaneously.
	MutexLabel string

	file *parser.File
}

// Lit renders the scenario in the .lit grammar (the bytes committed
// under testdata/ds; TestFilesInSync pins the correspondence).
func (s Scenario) Lit() string { return s.file.Format() }

// CheckProps evaluates the scenario's outcome properties over a
// reachable-outcome set (litmus.Report.Outcomes of either backend).
func (s Scenario) CheckProps(outcomes map[string]bool) []string {
	return proof.CheckOutcomeProps(outcomes, s.Props)
}

// Builder accumulates one scenario. Methods return the receiver for
// chaining; Scenario() seals it.
type Builder struct {
	name      string
	init      map[event.Var]event.Val
	threads   []lang.Com
	observe   []event.Var
	maxEvents int

	allow, forbid, allowSC, forbidSC []litmus.Outcome

	props      []proof.OutcomeProp
	mutexLabel string
}

// New starts a scenario with the given name.
func New(name string) *Builder {
	return &Builder{name: name, init: map[event.Var]event.Val{}}
}

// Init sets one initial memory value.
func (b *Builder) Init(x event.Var, v event.Val) *Builder {
	b.init[x] = v
	return b
}

// InitZero zero-initialises the given variables (cells included).
func (b *Builder) InitZero(xs ...event.Var) *Builder {
	for _, x := range xs {
		b.init[x] = 0
	}
	return b
}

// Thread appends one client thread running the given operations in
// sequence. Threads are numbered 1..n in call order.
func (b *Builder) Thread(ops ...lang.Com) *Builder {
	b.threads = append(b.threads, lang.SeqC(ops...))
	return b
}

// Observe lists the variables whose final values form an outcome.
func (b *Builder) Observe(xs ...event.Var) *Builder {
	b.observe = append(b.observe, xs...)
	return b
}

// MaxEvents pins the exploration bound the expectations hold under.
// Scenarios with CAS-retry or spin loops are unbounded programs;
// their exact outcome sets are bound-relative and the bound is part
// of the scenario (recorded as the .lit maxevents clause).
func (b *Builder) MaxEvents(n int) *Builder {
	b.maxEvents = n
	return b
}

// Allow pins outcomes reachable under RAR. The ds tests assert the
// allow set is *exactly* the reachable set at the scenario bound.
func (b *Builder) Allow(os ...litmus.Outcome) *Builder {
	b.allow = append(b.allow, os...)
	return b
}

// Forbid names outcomes that must stay unreachable under RAR (and a
// fortiori under SC, which refines it).
func (b *Builder) Forbid(os ...litmus.Outcome) *Builder {
	b.forbid = append(b.forbid, os...)
	return b
}

// AllowSC pins outcomes that must stay reachable under SC.
func (b *Builder) AllowSC(os ...litmus.Outcome) *Builder {
	b.allowSC = append(b.allowSC, os...)
	return b
}

// ForbidSC names outcomes SC rules out on top of the RAR forbid set —
// the weak behaviours of the relaxed scenario variants.
func (b *Builder) ForbidSC(os ...litmus.Outcome) *Builder {
	b.forbidSC = append(b.forbidSC, os...)
	return b
}

// Prop attaches a linearizability-style outcome property.
func (b *Builder) Prop(ps ...proof.OutcomeProp) *Builder {
	b.props = append(b.props, ps...)
	return b
}

// Mutex asks for the exploration-time mutual-exclusion check at the
// given label over all client threads.
func (b *Builder) Mutex(label string) *Builder {
	b.mutexLabel = label
	return b
}

// Scenario seals the builder into a runnable scenario.
func (b *Builder) Scenario() Scenario {
	threads := map[int]lang.Com{}
	for i, c := range b.threads {
		threads[i+1] = c
	}
	f := &parser.File{
		Name:      b.name,
		Init:      b.init,
		Threads:   threads,
		Observe:   b.observe,
		Allow:     sortedOutcomes(b.allow, b.observe),
		Forbid:    sortedOutcomes(b.forbid, b.observe),
		AllowSC:   sortedOutcomes(b.allowSC, b.observe),
		ForbidSC:  sortedOutcomes(b.forbidSC, b.observe),
		MaxEvents: b.maxEvents,
	}
	t, err := f.Test()
	if err != nil {
		panic("ds: " + err.Error()) // threads are numbered 1..n by construction
	}
	return Scenario{Test: t, Props: b.props, MutexLabel: b.mutexLabel, file: f}
}

// sortedOutcomes orders outcome lines by their key so the rendered
// .lit file and the in-memory catalog are deterministic.
func sortedOutcomes(os []litmus.Outcome, observe []event.Var) []litmus.Outcome {
	out := append([]litmus.Outcome(nil), os...)
	sort.Slice(out, func(i, j int) bool {
		return out[i].Key(observe) < out[j].Key(observe)
	})
	return out
}

// O is outcome-literal shorthand: O("a", 1, "b", 0).
func O(kv ...any) litmus.Outcome {
	if len(kv)%2 != 0 {
		panic("ds: O needs var/value pairs")
	}
	o := litmus.Outcome{}
	for i := 0; i < len(kv); i += 2 {
		x, ok := kv[i].(event.Var)
		if !ok {
			x = event.Var(kv[i].(string))
		}
		o[x] = event.Val(kv[i+1].(int))
	}
	return o
}

// Suite returns every data-structure scenario, in a fixed order.
func Suite() []Scenario {
	return []Scenario{
		CasSetScenario(),
		TreiberPushScenario(),
		TreiberPushPopScenario(),
		QueueScenario(true),
		QueueScenario(false),
		TicketLockScenario(),
		LazyListScenario(true),
		LazyListScenario(false),
	}
}
