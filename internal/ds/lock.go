package ds

import (
	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/proof"
)

// TicketLock is the classic two-counter lock: Next hands out tickets
// (fetch-add via CAS retry), Serving names the ticket currently
// admitted. Release publishes Serving+1 with release semantics; the
// spin reads it acquiring, so the critical sections of successive
// holders synchronize.
type TicketLock struct {
	Next    event.Var
	Serving event.Var
}

// Acquire draws a ticket with a CAS-retry fetch-add and spins until
// served:
//
//	while (done == 0) {
//	  tkt := next;
//	  if (next.cas(tkt, tkt + 1)) { done := 1; }
//	}
//	while (serving^A != tkt) { skip; }
func (l TicketLock) Acquire(tkt, done event.Var) lang.Com {
	return lang.SeqC(
		lang.WhileC(lang.Eq(lang.X(done), lang.V(0)), lang.SeqC(
			lang.AssignC(tkt, lang.X(l.Next)),
			lang.CasC(l.Next, lang.X(tkt), lang.Add(lang.X(tkt), lang.V(1)),
				lang.AssignC(done, lang.V(1)), lang.SkipC()),
		)),
		lang.WhileC(lang.Ne(lang.XA(l.Serving), lang.X(tkt)), lang.SkipC()),
	)
}

// Release admits the next ticket: serving :=R tkt + 1.
func (l TicketLock) Release(tkt event.Var) lang.Com {
	return lang.AssignRelC(l.Serving, lang.Add(lang.X(tkt), lang.V(1)))
}

// WithLock wraps the body in Acquire; label cs { body }; Release —
// the labelled section is what the exploration-time mutex check
// watches.
func (l TicketLock) WithLock(tkt, done event.Var, label string, body lang.Com) lang.Com {
	return lang.SeqC(
		l.Acquire(tkt, done),
		lang.LabelC(label, body),
		l.Release(tkt),
	)
}

// AllCriticalSections: with mutual exclusion and the release/acquire
// handover, every client's unprotected read-modify-write of the
// shared counter lands — the final count equals the client count. A
// lost increment witnesses an overlap.
func (l TicketLock) AllCriticalSections(counter event.Var, clients int) proof.OutcomeProp {
	return proof.OutcomeProp{
		Name: "lock-all-increments",
		Doc:  "the ticket lock serialises the counter increments of every client",
		Violated: func(o map[event.Var]event.Val) bool {
			return o[counter] != event.Val(clients)
		},
	}
}

// TicketLockScenario: two clients each take the lock and increment a
// plain (unsynchronised) shared counter inside the critical section.
// Mutual exclusion plus the serving handover force c=2; c=1 is the
// canonical lost-update witness and stays unreachable. The labelled
// section is additionally checked during exploration (MutexLabel).
func TicketLockScenario() Scenario {
	l := TicketLock{Next: "next", Serving: "serving"}
	incr := lang.AssignC("c", lang.Add(lang.X("c"), lang.V(1)))
	return New("ds-ticket-lock").
		InitZero("next", "serving", "c", "k1", "d1", "k2", "d2").
		Thread(l.WithLock("k1", "d1", "cs", incr)).
		Thread(l.WithLock("k2", "d2", "cs", incr)).
		Observe("c").
		MaxEvents(30).
		Allow(O("c", 2)).
		Forbid(O("c", 0), O("c", 1)).
		AllowSC(O("c", 2)).
		Prop(l.AllCriticalSections("c", 2)).
		Mutex("cs").
		Scenario()
}
