package ds

import (
	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/proof"
)

// Queue is a Michael-Scott-style array queue: Buf holds the elements
// (buf[1], buf[2], …), Tail publishes the index of the last filled
// slot, and Head is the dequeue cursor competitors CAS forward. The
// producer writes the slot before swinging Tail — the release on that
// swing is exactly the publication edge the MS queue's tail update
// provides; the relaxed variant drops it to expose the weak outcome.
type Queue struct {
	Head event.Var
	Tail event.Var
	Buf  event.Var
}

// Enq returns the producer's enqueue of v into slot: buf[slot] := v,
// then publish tail := slot (release when rel).
func (q Queue) Enq(slot, v event.Val, rel bool) lang.Com {
	pub := lang.AssignC(q.Tail, lang.V(slot))
	if rel {
		pub = lang.AssignRelC(q.Tail, lang.V(slot))
	}
	return lang.SeqC(
		lang.AssignAtC(q.Buf, lang.V(slot), lang.V(v)),
		pub,
	)
}

// DeqFirst returns a consumer's attempt to dequeue the first element:
//
//	obs := tail^A;
//	if (0 < obs) {
//	  if (head.cas(0, 1)) { out := buf[1]; }
//	}
//
// The head CAS arbitrates between consumers: exactly one can move the
// cursor off 0, so a duplicated dequeue is a linearizability
// violation whatever the model. out keeps its sentinel initial value
// when the attempt loses or sees an empty queue.
func (q Queue) DeqFirst(obs, out event.Var) lang.Com {
	return lang.SeqC(
		lang.AssignC(obs, lang.XA(q.Tail)),
		lang.IfC(lang.Bin{Op: lang.OpLt, L: lang.V(0), R: lang.X(obs)},
			lang.CasC(q.Head, lang.V(0), lang.V(1),
				lang.AssignC(out, lang.XAt(q.Buf, lang.V(1))),
				lang.SkipC()),
			lang.SkipC()),
	)
}

// NoDuplicateDeq: no two consumers dequeue the same element.
func (q Queue) NoDuplicateDeq(outs ...event.Var) proof.OutcomeProp {
	return proof.OutcomeProp{
		Name: "queue-no-duplicate-deq",
		Doc:  "the head CAS hands each element to at most one consumer",
		Violated: func(o map[event.Var]event.Val) bool {
			seen := map[event.Val]bool{}
			for _, x := range outs {
				v := o[x]
				if v == deqNone || v == deqStale {
					continue
				}
				if seen[v] {
					return true
				}
				seen[v] = true
			}
			return false
		},
	}
}

// NoStaleDeq: a successful dequeue returns the enqueued value, never
// the unwritten slot (the publication edge makes the slot write
// visible). Only the release variant attaches this — dropping the
// annotation makes the stale read a genuine RAR behaviour.
func (q Queue) NoStaleDeq(outs ...event.Var) proof.OutcomeProp {
	return proof.OutcomeProp{
		Name: "queue-no-stale-deq",
		Doc:  "a won dequeue observes the slot write published before the tail swing",
		Violated: func(o map[event.Var]event.Val) bool {
			for _, x := range outs {
				if o[x] == deqStale {
					return true
				}
			}
			return false
		},
	}
}

// Dequeue result encoding: consumers initialise out to the sentinel
// deqNone; a stale read of the unwritten slot yields deqStale (the
// cell's zero initial value); a correct dequeue of slot 1 yields 1.
const (
	deqNone  event.Val = 9
	deqStale event.Val = 0
)

// QueueScenario: one producer enqueues 1 then 2; two consumers race
// to dequeue the first element. The head CAS forbids a duplicate
// under every model. With the release tail swing the winner always
// reads the element (allow set has no stale outcome); relaxed, the
// winner may read the unwritten slot under RAR — allowed there,
// forbidden under SC (forbid_sc), the model-differentiating pair.
func QueueScenario(rel bool) Scenario {
	q := Queue{Head: "head", Tail: "tail", Buf: "buf"}
	b1, b2 := lang.Cell("buf", 1), lang.Cell("buf", 2)
	name := "ds-msq-deq-rel"
	if !rel {
		name = "ds-msq-deq-rlx"
	}
	bld := New(name).
		InitZero("head", "tail", b1, b2, "t2", "t3").
		Init("r2", deqNone).
		Init("r3", deqNone).
		Thread(q.Enq(1, 1, rel), q.Enq(2, 2, rel)).
		Thread(q.DeqFirst("t2", "r2")).
		Thread(q.DeqFirst("t3", "r3")).
		Observe("r2", "r3").
		MaxEvents(24).
		Allow(
			O("r2", 1, "r3", 9), // consumer 2 won
			O("r2", 9, "r3", 1), // consumer 3 won
			O("r2", 9, "r3", 9), // both saw the empty queue
		).
		Forbid(
			O("r2", 1, "r3", 1), // duplicated dequeue
			O("r2", 0, "r3", 1),
			O("r2", 1, "r3", 0),
			O("r2", 0, "r3", 0),
		).
		AllowSC(
			O("r2", 1, "r3", 9),
			O("r2", 9, "r3", 1),
			O("r2", 9, "r3", 9),
		).
		Prop(q.NoDuplicateDeq("r2", "r3"))
	if rel {
		bld.Forbid(
			O("r2", 0, "r3", 9), // stale read: forbidden with the release swing
			O("r2", 9, "r3", 0),
		).Prop(q.NoStaleDeq("r2", "r3"))
	} else {
		bld.Allow(
			O("r2", 0, "r3", 9), // the weak outcome: tail seen, slot not
			O("r2", 9, "r3", 0),
		).ForbidSC(
			O("r2", 0, "r3", 9),
			O("r2", 9, "r3", 0),
		)
	}
	return bld.Scenario()
}
