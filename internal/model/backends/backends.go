// Package backends names the memory-model implementations of
// internal/model for the frontends: the -model flag on the binaries
// resolves through Get, and flag help text enumerates Names. The
// registry is explicit (a switch, not init-time side effects) so the
// dependency from frontend to backend stays visible in the imports.
package backends

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sc"
)

// Get resolves a backend by flag name. "rar" (aliases "ra", "c11") is
// the paper's release-acquire fragment; "sc" is sequential
// consistency.
func Get(name string) (model.Model, error) {
	switch strings.ToLower(name) {
	case "rar", "ra", "c11":
		return core.Model, nil
	case "sc":
		return sc.Model, nil
	}
	return nil, fmt.Errorf("unknown memory model %q (have: %s)", name, strings.Join(Names(), ", "))
}

// Names lists the canonical backend names.
func Names() []string { return []string{"rar", "sc"} }

// All returns every backend, in Names order.
func All() []model.Model { return []model.Model{core.Model, sc.Model} }
