// Package model defines the pluggable memory-model interface the
// explorer is generic over. The paper's interpreted semantics (§3.3)
// couples the uninterpreted command language of internal/lang with an
// event semantics through a small set of combination rules, precisely
// so that different memory models can be swapped in under the same
// program semantics. This package is that seam made explicit: a model
// is a factory for configurations, and a configuration knows how to
// expand its enabled transitions, identify itself canonically, and
// answer the independence queries the partial-order reduction needs.
//
// Two backends implement the interface: internal/core (the paper's
// release-acquire RAR fragment of C11) and internal/sc (sequential
// consistency, a single global store — the classic strongest model).
// internal/model/backends names them for the frontends, and
// internal/explore runs one engine over either. Contrasting the two
// on the same program isolates exactly the weak-memory behaviours:
// outcomes reachable under RAR but not under SC (store buffering,
// message passing with relaxed accesses, IRIW disagreement, …).
package model

import (
	"repro/internal/event"
	"repro/internal/fingerprint"
	"repro/internal/lang"
)

// Base is the model-independent part of a configuration's contract:
// every method a generic engine needs that does not mention the
// configuration type itself. Concrete backend configurations
// (core.Config, sc.Config) satisfy Base directly, which lets
// internal/explore instantiate its engine at the concrete type — the
// successors then flow through []C slices of struct values with zero
// interface boxing — while the same configurations still satisfy the
// boxed Config seam below for frontends, traces and checkpoints.
// All methods must be safe for concurrent use (the engine calls them
// from multiple workers on shared configurations).
type Base interface {
	// Program returns the residual program. The explorer's
	// partial-order reduction plans over the program alone (enabled
	// steps, label visibility, static footprints), so the plan is
	// model-independent; only the commutation oracle below is not.
	Program() lang.Prog

	// Progress is a monotone measure of how far the configuration is
	// from the initial one, in the units Options.MaxEvents bounds.
	// The RAR backend counts events (each loop iteration appends read
	// events, so exploration must be cut); an SC configuration is just
	// (program, store) — a finite space — so the SC backend returns 0
	// and is bounded by MaxConfigs alone.
	Progress() int

	// Terminated reports whether every thread has terminated.
	Terminated() bool

	// Fingerprint is the canonical 128-bit identity the engine
	// deduplicates by: equal futures must imply equal fingerprints up
	// to the interleaving that built the configuration.
	Fingerprint() fingerprint.FP

	// Key is the exact canonical string behind Fingerprint — the slow
	// path the engine's collision-checking debug mode audits against.
	Key() string

	// StepsAcyclic reports whether non-silent transitions can never
	// revisit a configuration. The RAR backend returns true (every
	// memory step appends an event, so the measure Progress strictly
	// grows); the SC backend returns false (a spin loop re-reads the
	// same store and closes a cycle). When false, the partial-order
	// reduction applies an extra loop-freedom guard before reducing
	// to a memory-step singleton — otherwise the singleton thread
	// could cycle solo and postpone every other thread forever (the
	// ignoring problem, which the RAR backend only exhibits on
	// all-silent cycles).
	StepsAcyclic() bool

	// StepsCommute is the model's independence oracle: it reports
	// whether two enabled program steps of different threads commute —
	// executing them in either order reaches the same canonical
	// configuration and neither changes the other's enabled choices.
	// The oracle must be sound (only true when the above provably
	// holds); the engine's sleep sets and persistent-set heuristic
	// prune with it, and CheckPOR audits the resulting reduction.
	StepsCommute(a, b lang.ProgStep) bool

	// AuditIncremental recomputes the configuration's incrementally
	// maintained derived structures from first principles and returns
	// one description per disagreement (nil when everything agrees,
	// or when the model maintains nothing incrementally). Drives the
	// engine's CheckIncremental debug mode.
	AuditIncremental() []string

	// Summarise renders the final values of the observed variables as
	// a canonical outcome key ("a=1;b=0;"). The format is shared by
	// every backend so outcome sets are comparable across models —
	// the basis of differential model checking.
	Summarise(observe []event.Var) string

	// AppendSnapshot appends a self-contained binary serialization of
	// the configuration to buf and returns the extended slice. The
	// blob starts with a backend tag and version byte and must restore
	// (via the owning Model.Restore) to a configuration with the same
	// Key and Fingerprint — the contract the explorer's checkpoint
	// layer verifies at load time. Trace-only decoration (e.g. the
	// label of the producing transition) need not survive.
	AppendSnapshot(buf []byte) []byte
}

// Config is one configuration (P, σ) of some memory model: a residual
// program paired with a model-specific memory state. Configurations
// are immutable values; expansion returns fresh ones. Config is the
// boxed frontend seam — Base plus the expansion and trace methods
// whose signatures mention Config itself. The engine's hot path never
// expands through this interface: internal/explore monomorphises per
// backend and calls the backends' concrete-typed successor methods,
// keeping Config for dispatch, traces, checkpoints and unknown
// backends. All methods must be safe for concurrent use.
type Config interface {
	Base

	// Expand appends every enabled transition's target configuration
	// to out and returns the extended slice.
	Expand(out []Config) []Config

	// ExpandStep appends the targets of one enabled program step —
	// each memory-model choice for that step (one per observable
	// write under RAR; exactly one under SC). The union of ExpandStep
	// over lang.ProgSteps(Program()) is Expand; the partial-order
	// reduction calls this per persistent thread so pruned threads
	// never pay successor construction.
	ExpandStep(out []Config, ps lang.ProgStep) []Config

	// DeltaLabel renders the observable difference from prev — the
	// label of the transition prev → c — for trace output ("τ" for a
	// silent step).
	DeltaLabel(prev Config) string
}

// Model is a named memory-model backend: a configuration factory.
type Model interface {
	// Name is the backend's flag-friendly identifier ("rar", "sc").
	Name() string
	// New pairs a program with an initial memory valuation.
	New(p lang.Prog, vars map[event.Var]event.Val) Config
	// Restore inverts Config.AppendSnapshot: it rebuilds the
	// configuration a snapshot blob serialises. The whole blob must be
	// consumed; a blob produced by a different backend, a different
	// format version, or corrupted in transit is an error.
	Restore(data []byte) (Config, error)
}
