package bits

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetTestClear(t *testing.T) {
	s := New(100)
	for _, i := range []int{0, 1, 63, 64, 65, 99} {
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if s.Count() != 6 {
		t.Fatalf("Count = %d, want 6", s.Count())
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d, want 5", s.Count())
	}
}

func TestSetOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, i := range []int{-1, 10, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", i)
				}
			}()
			s.Set(i)
		}()
	}
}

func TestTestOutOfRangeIsFalse(t *testing.T) {
	s := New(10)
	if s.Test(-1) || s.Test(10) || s.Test(9999) {
		t.Fatal("out-of-range Test returned true")
	}
}

func TestSetTo(t *testing.T) {
	s := New(8)
	s.SetTo(3, true)
	if !s.Test(3) {
		t.Fatal("SetTo(3,true) failed")
	}
	s.SetTo(3, false)
	if s.Test(3) {
		t.Fatal("SetTo(3,false) failed")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := Of(70, 1, 65)
	c := s.Clone()
	c.Set(2)
	if s.Test(2) {
		t.Fatal("Clone aliases original")
	}
	if !c.Test(1) || !c.Test(65) {
		t.Fatal("Clone lost members")
	}
}

func TestGrow(t *testing.T) {
	s := Of(10, 3, 9)
	g := s.Grow(200)
	if g.Len() != 200 {
		t.Fatalf("grown Len = %d", g.Len())
	}
	if !g.Test(3) || !g.Test(9) {
		t.Fatal("Grow lost members")
	}
	g.Set(150)
	if s.Test(3) != true || s.Len() != 10 {
		t.Fatal("Grow corrupted original")
	}
	// Growing to a smaller capacity clones.
	small := s.Grow(5)
	if small.Len() != 10 {
		t.Fatalf("Grow(5) Len = %d, want 10", small.Len())
	}
}

func TestOrAndAndNot(t *testing.T) {
	a := Of(128, 1, 64, 100)
	b := Of(128, 1, 2, 100)

	u := a.Clone()
	u.Or(b)
	want := []int{1, 2, 64, 100}
	if got := u.Members(); !equalInts(got, want) {
		t.Fatalf("Or = %v, want %v", got, want)
	}

	i := a.Clone()
	i.And(b)
	if got := i.Members(); !equalInts(got, []int{1, 100}) {
		t.Fatalf("And = %v", got)
	}

	d := a.Clone()
	d.AndNot(b)
	if got := d.Members(); !equalInts(got, []int{64}) {
		t.Fatalf("AndNot = %v", got)
	}
}

func TestMismatchedCapacityPanics(t *testing.T) {
	a, b := New(10), New(20)
	defer func() {
		if recover() == nil {
			t.Fatal("Or on mismatched capacities did not panic")
		}
	}()
	a.Or(b)
}

func TestOrChanged(t *testing.T) {
	a := Of(64, 1)
	b := Of(64, 1)
	if a.OrChanged(b) {
		t.Fatal("OrChanged reported change for subset")
	}
	c := Of(64, 2)
	if !a.OrChanged(c) {
		t.Fatal("OrChanged missed change")
	}
	if !a.Test(2) {
		t.Fatal("OrChanged did not apply union")
	}
}

func TestIntersectsSubsetEqual(t *testing.T) {
	a := Of(100, 5, 50)
	b := Of(100, 50, 99)
	c := Of(100, 5)
	if !a.Intersects(b) {
		t.Fatal("a should intersect b")
	}
	if c.Intersects(b) {
		t.Fatal("c should not intersect b")
	}
	if !c.IsSubsetOf(a) {
		t.Fatal("c ⊆ a expected")
	}
	if a.IsSubsetOf(c) {
		t.Fatal("a ⊄ c expected")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("a should equal its clone")
	}
	// Equal ignores capacity.
	if !Of(10, 3).Equal(Of(1000, 3)) {
		t.Fatal("Equal should ignore capacity")
	}
	if Of(10, 3).Equal(Of(1000, 3, 500)) {
		t.Fatal("sets with different members reported equal")
	}
}

func TestNextIteration(t *testing.T) {
	s := Of(300, 0, 63, 64, 257, 299)
	var got []int
	for i := s.Next(0); i >= 0; i = s.Next(i + 1) {
		got = append(got, i)
	}
	if !equalInts(got, []int{0, 63, 64, 257, 299}) {
		t.Fatalf("iteration = %v", got)
	}
	if s.Next(-5) != 0 {
		t.Fatalf("Next(-5) = %d, want 0", s.Next(-5))
	}
	if s.Next(300) != -1 {
		t.Fatal("Next past capacity should be -1")
	}
	if New(0).Next(0) != -1 {
		t.Fatal("Next on empty capacity should be -1")
	}
}

func TestForEachMembersAgree(t *testing.T) {
	s := Of(128, 7, 13, 127)
	var viaForEach []int
	s.ForEach(func(i int) { viaForEach = append(viaForEach, i) })
	if !equalInts(viaForEach, s.Members()) {
		t.Fatalf("ForEach %v != Members %v", viaForEach, s.Members())
	}
}

func TestResetAndCopyFrom(t *testing.T) {
	s := Of(64, 1, 2, 3)
	s.Reset()
	if !s.Empty() {
		t.Fatal("Reset left members")
	}
	t2 := Of(64, 9)
	s.CopyFrom(t2)
	if !equalInts(s.Members(), []int{9}) {
		t.Fatalf("CopyFrom = %v", s.Members())
	}
}

func TestString(t *testing.T) {
	if got := Of(64, 2, 5).String(); got != "{2, 5}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(8).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

// Property: Or is commutative, associative, idempotent; AndNot then Or
// restores a superset relationship; Count matches member slice length.
func TestQuickSetAlgebra(t *testing.T) {
	const n = 192
	mk := func(seed int64) Set {
		r := rand.New(rand.NewSource(seed))
		s := New(n)
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				s.Set(i)
			}
		}
		return s
	}
	f := func(sa, sb int64) bool {
		a, b := mk(sa), mk(sb)
		ab := a.Clone()
		ab.Or(b)
		ba := b.Clone()
		ba.Or(a)
		if !ab.Equal(ba) {
			return false
		}
		// idempotence
		aa := a.Clone()
		aa.Or(a)
		if !aa.Equal(a) {
			return false
		}
		// a & b ⊆ a, a ⊆ a | b
		ia := a.Clone()
		ia.And(b)
		if !ia.IsSubsetOf(a) || !a.IsSubsetOf(ab) {
			return false
		}
		// |members| == Count
		if len(a.Members()) != a.Count() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan-ish identity a &^ b == a &^ (a & b).
func TestQuickAndNotIdentity(t *testing.T) {
	const n = 100
	f := func(xs, ys []uint8) bool {
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Set(int(x) % n)
		}
		for _, y := range ys {
			b.Set(int(y) % n)
		}
		lhs := a.Clone()
		lhs.AndNot(b)
		ab := a.Clone()
		ab.And(b)
		rhs := a.Clone()
		rhs.AndNot(ab)
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkOr(b *testing.B) {
	x := Of(1024, 1, 500, 1000)
	y := Of(1024, 3, 501, 1023)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}

func BenchmarkOrAnd(b *testing.B) {
	x := New(1024)
	mask := Of(1024, 1, 500, 1000)
	row := Of(1024, 1, 3, 501, 1000, 1023)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.OrAnd(row, mask)
	}
}

// BenchmarkOrAndSplit is the unfused equivalent of OrAnd (clone, And,
// Or) — the before side of the fused-kernel comparison.
func BenchmarkOrAndSplit(b *testing.B) {
	x := New(1024)
	mask := Of(1024, 1, 500, 1000)
	row := Of(1024, 1, 3, 501, 1000, 1023)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tmp := row.Clone()
		tmp.And(mask)
		x.Or(tmp)
	}
}

func BenchmarkMax(b *testing.B) {
	s := Of(1024, 3, 77, 500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.Max() != 500 {
			b.Fatal("wrong max")
		}
	}
}

func BenchmarkNextIterate(b *testing.B) {
	s := New(1024)
	for i := 0; i < 1024; i += 7 {
		s.Set(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := 0
		for j := s.Next(0); j >= 0; j = s.Next(j + 1) {
			c++
		}
		if c == 0 {
			b.Fatal("no members")
		}
	}
}

func TestMixedCapacityOps(t *testing.T) {
	// Or/And/AndNot accept a shorter operand (missing words read as
	// zero) — the contract copy-on-write relation rows rely on.
	long := Of(130, 1, 64, 129)
	short := Of(65, 1, 64)

	s := long.Clone()
	s.Or(short)
	if !equalInts(s.Members(), []int{1, 64, 129}) {
		t.Fatalf("Or with shorter operand: %v", s)
	}

	s = long.Clone()
	s.And(short)
	if !equalInts(s.Members(), []int{1, 64}) {
		t.Fatalf("And with shorter operand must clear the tail: %v", s)
	}

	s = long.Clone()
	s.AndNot(short)
	if !equalInts(s.Members(), []int{129}) {
		t.Fatalf("AndNot with shorter operand: %v", s)
	}

	// And with a longer operand: words beyond the receiver are
	// irrelevant.
	s = Of(65, 1, 64)
	s.And(Of(130, 64, 129))
	if !equalInts(s.Members(), []int{64}) {
		t.Fatalf("And with longer operand: %v", s)
	}

	// Or with a longer operand stays a misuse.
	defer func() {
		if recover() == nil {
			t.Fatal("Or with longer operand must panic")
		}
	}()
	s = Of(65, 1)
	s.Or(Of(130, 129))
}

func TestOrChangedShorter(t *testing.T) {
	s := Of(130, 129)
	if s.OrChanged(Of(65, 3)) != true {
		t.Fatal("OrChanged must report the new member")
	}
	if s.OrChanged(Of(65, 3)) != false {
		t.Fatal("OrChanged must be idempotent")
	}
	if !equalInts(s.Members(), []int{3, 129}) {
		t.Fatalf("OrChanged result: %v", s)
	}
}

func TestFromWords(t *testing.T) {
	words := []uint64{0, 0}
	s := FromWords(words, 70)
	s.Set(69)
	if words[1] == 0 {
		t.Fatal("FromWords must alias the given words")
	}
	if s.Len() != 70 || !s.Test(69) {
		t.Fatalf("FromWords set: len=%d %v", s.Len(), s)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromWords with too few words must panic")
		}
	}()
	FromWords(words, 200)
}
