// Package bits provides dense bit vectors sized in 64-bit words.
//
// The relation engine (internal/relation) represents a binary relation
// over n elements as n rows of bits.Set, so every relational operation
// (union, composition, transitive closure) reduces to word-parallel
// boolean arithmetic. Executions in this repository are litmus-sized
// (tens of events), so a dense representation is both the simplest and
// the fastest choice: one row fits in a cache line.
package bits

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit vector. The zero value is an empty set of
// capacity 0; use New to allocate capacity. Sets only grow via Grow.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set with capacity for n bits.
func New(n int) Set {
	if n < 0 {
		panic("bits: negative capacity")
	}
	return Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity of the set in bits.
func (s Set) Len() int { return s.n }

// Test reports whether bit i is set. Out-of-range bits read as false.
func (s Set) Test(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Set sets bit i. It panics if i is out of range.
func (s *Set) Set(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bits: Set(%d) out of range [0,%d)", i, s.n))
	}
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i. It panics if i is out of range.
func (s *Set) Clear(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bits: Clear(%d) out of range [0,%d)", i, s.n))
	}
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// SetTo sets bit i to v.
func (s *Set) SetTo(i int, v bool) {
	if v {
		s.Set(i)
	} else {
		s.Clear(i)
	}
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w, n: s.n}
}

// Grow returns a set with capacity at least n bits containing the same
// members as s. If s already has capacity >= n, a clone is returned.
func (s Set) Grow(n int) Set {
	if n <= s.n {
		return s.Clone()
	}
	t := New(n)
	copy(t.words, s.words)
	return t
}

// CopyFrom overwrites s with the contents of t. Both must have the same
// capacity.
func (s *Set) CopyFrom(t Set) {
	if s.n != t.n {
		panic("bits: CopyFrom capacity mismatch")
	}
	copy(s.words, t.words)
}

// LoadFrom overwrites s with the members of t; s must have capacity at
// least t's. Words beyond t's are cleared.
func (s *Set) LoadFrom(t Set) {
	if s.n < t.n {
		panic("bits: LoadFrom into smaller set")
	}
	copied := copy(s.words, t.words)
	for i := copied; i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// MakeRows returns nrows empty sets of capacity nbits each, all carved
// from a single backing allocation — the row carrier of a dense
// relation. Allocating the rows individually was the dominant
// allocation cost of cloning a relation (one make per row); a slab
// reduces it to two allocations regardless of nrows. The per-row
// stride is rounded up to a power of two words, so carriers grown
// step by step reuse a stable layout (capacity doubling).
func MakeRows(nrows, nbits int) []Set {
	if nrows < 0 || nbits < 0 {
		panic("bits: negative MakeRows size")
	}
	if nrows == 0 {
		return nil
	}
	need := (nbits + wordBits - 1) / wordBits
	stride := 1
	for stride < need {
		stride <<= 1
	}
	slab := make([]uint64, nrows*stride)
	rows := make([]Set, nrows)
	for i := range rows {
		rows[i] = Set{words: slab[i*stride : i*stride+need : (i+1)*stride], n: nbits}
	}
	return rows
}

// FromWords returns a set of capacity nbits backed by the given word
// slice (not copied). The caller must supply at least ceil(nbits/64)
// words; membership beyond nbits is undefined. This is the carving
// primitive for external slab allocators (see relation's
// copy-on-write rows); MakeRows remains the one-shot variant.
func FromWords(words []uint64, nbits int) Set {
	if nbits < 0 || len(words)*wordBits < nbits {
		panic(fmt.Sprintf("bits: FromWords(%d words, %d bits)", len(words), nbits))
	}
	return Set{words: words, n: nbits}
}

// Or sets s to s | t. t's capacity may be smaller than s's (absent
// words read as zero) — the copy-on-write relation rows of
// internal/relation alias rows of smaller ancestor carriers, and the
// boolean operations must compose them with full-size rows. t may not
// be larger than s.
func (s *Set) Or(t Set) {
	s.checkAtMost(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// And sets s to s & t. Capacities may differ: words absent from t read
// as zero (so s's tail is cleared), and words of t beyond s's capacity
// are irrelevant.
func (s *Set) And(t Set) {
	m := len(t.words)
	if len(s.words) < m {
		m = len(s.words)
	}
	for i := 0; i < m; i++ {
		s.words[i] &= t.words[i]
	}
	for i := m; i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// AndNot sets s to s &^ t. Capacities may differ; words absent from
// either side read as zero.
func (s *Set) AndNot(t Set) {
	m := len(t.words)
	if len(s.words) < m {
		m = len(s.words)
	}
	for i := 0; i < m; i++ {
		s.words[i] &^= t.words[i]
	}
}

// OrChanged sets s to s | t and reports whether s changed. Like Or, t
// may be smaller than s but not larger.
func (s *Set) OrChanged(t Set) bool {
	s.checkAtMost(t)
	changed := false
	for i, w := range t.words {
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// OrAnd sets s to s | (a & b) in one word-parallel pass — the fused
// kernel of masked row accumulation (e.g. "writes reachable from an
// event": union a relation row restricted to the write set without
// materialising the intersection). Capacities may differ; words absent
// from a or b read as zero, and words of a or b beyond s's capacity
// are irrelevant.
func (s *Set) OrAnd(a, b Set) {
	m := len(s.words)
	if len(a.words) < m {
		m = len(a.words)
	}
	if len(b.words) < m {
		m = len(b.words)
	}
	for i := 0; i < m; i++ {
		s.words[i] |= a.words[i] & b.words[i]
	}
}

// Max returns the largest member of s, or -1 when s is empty — a
// reverse word scan, so O(words) rather than a full Next iteration.
func (s Set) Max() int {
	for i := len(s.words) - 1; i >= 0; i-- {
		if w := s.words[i]; w != 0 {
			return i*wordBits + 63 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

func (s Set) checkAtMost(t Set) {
	if t.n > s.n {
		panic(fmt.Sprintf("bits: operand capacity %d exceeds receiver capacity %d", t.n, s.n))
	}
}

// Intersects reports whether s and t share a member.
func (s Set) Intersects(t Set) bool {
	m := len(s.words)
	if len(t.words) < m {
		m = len(t.words)
	}
	for i := 0; i < m; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// IsSubsetOf reports whether every member of s is a member of t.
func (s Set) IsSubsetOf(t Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same members.
// Capacities may differ; only membership matters.
func (s Set) Equal(t Set) bool {
	m := len(s.words)
	if len(t.words) > m {
		m = len(t.words)
	}
	for i := 0; i < m; i++ {
		var sw, tw uint64
		if i < len(s.words) {
			sw = s.words[i]
		}
		if i < len(t.words) {
			tw = t.words[i]
		}
		if sw != tw {
			return false
		}
	}
	return true
}

// Empty reports whether s has no members.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of members of s.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Rank returns the number of members strictly below i — the position
// of i among the members when i itself is one. Out-of-range i counts
// the whole set.
func (s Set) Rank(i int) int {
	if i <= 0 {
		return 0
	}
	if i > s.n {
		i = s.n
	}
	c := 0
	wi := i / wordBits
	for k := 0; k < wi; k++ {
		c += bits.OnesCount64(s.words[k])
	}
	if r := uint(i % wordBits); r != 0 {
		c += bits.OnesCount64(s.words[wi] & (1<<r - 1))
	}
	return c
}

// Next returns the smallest member >= i, or -1 if there is none.
// Iterate with: for i := s.Next(0); i >= 0; i = s.Next(i + 1) { ... }.
func (s Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// ForEach calls f for every member of s in ascending order.
func (s Set) ForEach(f func(i int)) {
	for i := s.Next(0); i >= 0; i = s.Next(i + 1) {
		f(i)
	}
}

// Members returns the members of s in ascending order.
func (s Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Reset removes every member, keeping capacity.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// String renders the set as {a, b, c}.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

// Of returns a set of capacity n with exactly the given members.
func Of(n int, members ...int) Set {
	s := New(n)
	for _, m := range members {
		s.Set(m)
	}
	return s
}
