package cli_test

import (
	"context"
	"flag"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/explore"
)

// TestBudgetFlagParsing drives the registered flag set through the
// spellings the frontends accept and checks what lands in the Budget.
func TestBudgetFlagParsing(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want cli.Budget
		bad  bool
	}{
		{name: "defaults", args: nil, want: cli.Budget{}},
		{
			name: "all budgets",
			args: []string{"-timeout", "1500ms", "-max-states", "4096", "-max-mem", "256"},
			want: cli.Budget{Timeout: 1500 * time.Millisecond, MaxStates: 4096, MaxMemMB: 256},
		},
		{
			name: "checkpointing",
			args: []string{"-checkpoint", "s.ckpt", "-checkpoint-every", "2s"},
			want: cli.Budget{Checkpoint: "s.ckpt", CheckpointEvery: 2 * time.Second},
		},
		{
			name: "resume",
			args: []string{"-resume", "old.ckpt"},
			want: cli.Budget{Resume: "old.ckpt"},
		},
		{name: "bad duration", args: []string{"-timeout", "fast"}, bad: true},
		{name: "bad int", args: []string{"-max-states", "many"}, bad: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			fs.SetOutput(io.Discard)
			var b cli.Budget
			b.Register(fs)
			err := fs.Parse(tc.args)
			if tc.bad {
				if err == nil {
					t.Fatalf("parse %v succeeded, want error", tc.args)
				}
				return
			}
			if err != nil {
				t.Fatalf("parse %v: %v", tc.args, err)
			}
			if b != tc.want {
				t.Fatalf("parsed %v:\n got %+v\nwant %+v", tc.args, b, tc.want)
			}
		})
	}
}

// TestBudgetValidate covers the post-parse consistency checks.
func TestBudgetValidate(t *testing.T) {
	cases := []struct {
		name string
		b    cli.Budget
		ok   bool
	}{
		{name: "zero budget", b: cli.Budget{}, ok: true},
		{name: "full budget", b: cli.Budget{Timeout: time.Second, MaxStates: 10, MaxMemMB: 1}, ok: true},
		{name: "periodic with path", b: cli.Budget{Checkpoint: "a.ckpt", CheckpointEvery: time.Second}, ok: true},
		{name: "periodic without path", b: cli.Budget{CheckpointEvery: time.Second}, ok: false},
		{name: "negative states", b: cli.Budget{MaxStates: -1}, ok: false},
		{name: "negative memory", b: cli.Budget{MaxMemMB: -5}, ok: false},
		{name: "negative timeout", b: cli.Budget{Timeout: -time.Second}, ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.b.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate(%+v) = %v, want ok=%v", tc.b, err, tc.ok)
			}
		})
	}
}

// TestBudgetApply checks the translation of parsed budgets into engine
// options: zero values must leave engine defaults alone, non-zero
// values must land in the right Options fields with the right units.
func TestBudgetApply(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		b    cli.Budget
		in   explore.Options
		want explore.Options
	}{
		{
			name: "zero budget preserves engine defaults",
			b:    cli.Budget{},
			in:   explore.Options{MaxEvents: 12, MaxConfigs: 999},
			want: explore.Options{MaxEvents: 12, MaxConfigs: 999},
		},
		{
			name: "state budget overrides the cap",
			b:    cli.Budget{MaxStates: 50},
			in:   explore.Options{MaxConfigs: 999},
			want: explore.Options{MaxConfigs: 50},
		},
		{
			name: "memory budget converts MiB to bytes",
			b:    cli.Budget{MaxMemMB: 3},
			want: explore.Options{MaxMemBytes: 3 << 20},
		},
		{
			name: "timeout is copied through",
			b:    cli.Budget{Timeout: 7 * time.Second},
			want: explore.Options{Timeout: 7 * time.Second},
		},
		{
			name: "checkpoint path and interval",
			b:    cli.Budget{Checkpoint: "x.ckpt", CheckpointEvery: time.Minute},
			want: explore.Options{CheckpointPath: "x.ckpt", CheckpointEvery: time.Minute},
		},
		{
			name: "signal context is threaded",
			b:    cli.Budget{Context: ctx},
			want: explore.Options{Context: ctx},
		},
		{
			name: "nil context leaves an existing one",
			b:    cli.Budget{},
			in:   explore.Options{Context: ctx},
			want: explore.Options{Context: ctx},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.in
			tc.b.Apply(&got)
			if got.Timeout != tc.want.Timeout ||
				got.MaxConfigs != tc.want.MaxConfigs ||
				got.MaxMemBytes != tc.want.MaxMemBytes ||
				got.CheckpointPath != tc.want.CheckpointPath ||
				got.CheckpointEvery != tc.want.CheckpointEvery ||
				got.Context != tc.want.Context ||
				got.MaxEvents != tc.want.MaxEvents {
				t.Fatalf("Apply(%+v) on %+v:\n got %+v\nwant %+v", tc.b, tc.in, got, tc.want)
			}
		})
	}
}

// TestExitCode pins the verdict → exit-status convention the driver
// scripts and CI jobs rely on.
func TestExitCode(t *testing.T) {
	cases := []struct {
		name string
		res  explore.Result
		want int
	}{
		{name: "proved", res: explore.Result{Verdict: explore.VerdictProved}, want: cli.ExitProved},
		{name: "violated", res: explore.Result{Verdict: explore.VerdictViolated}, want: cli.ExitViolation},
		{name: "bounded", res: explore.Result{Verdict: explore.VerdictBounded}, want: cli.ExitBounded},
		{
			name: "violation outranks a budget stop",
			res:  explore.Result{Verdict: explore.VerdictViolated, Stop: explore.StopDeadline},
			want: cli.ExitViolation,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := cli.ExitCode(tc.res); got != tc.want {
				t.Fatalf("ExitCode(%+v) = %d, want %d", tc.res, got, tc.want)
			}
		})
	}
}

// TestDescribe checks the one-line governance rendering frontends
// append to their output (the strings the signal tests grep for).
func TestDescribe(t *testing.T) {
	cases := []struct {
		name     string
		res      explore.Result
		contains []string
		absent   []string
	}{
		{
			name:     "clean proof",
			res:      explore.Result{Verdict: explore.VerdictProved},
			contains: []string{"verdict=PROVED"},
			absent:   []string{"stop=", "frontier=", "isolated-panics="},
		},
		{
			name:     "cancelled cut",
			res:      explore.Result{Verdict: explore.VerdictBounded, Stop: explore.StopCancelled, Frontier: 17},
			contains: []string{"verdict=BOUNDED", "stop=cancelled", "frontier=17"},
		},
		{
			name: "degraded by panics",
			res: explore.Result{Verdict: explore.VerdictBounded, Stop: explore.StopMaxConfigs,
				Panics: []explore.PanicRecord{{}, {}}},
			contains: []string{"stop=max-configs", "isolated-panics=2"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := cli.Describe(tc.res)
			for _, want := range tc.contains {
				if !strings.Contains(got, want) {
					t.Errorf("Describe(%+v) = %q, missing %q", tc.res, got, want)
				}
			}
			for _, bad := range tc.absent {
				if strings.Contains(got, bad) {
					t.Errorf("Describe(%+v) = %q, unexpectedly contains %q", tc.res, got, bad)
				}
			}
		})
	}
}
