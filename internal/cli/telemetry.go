package cli

// Telemetry is the shared observability flag set of the frontends:
// -progress[=interval] prints live search progress to stderr, -trace
// writes the structured JSONL search trace (convert with c11trace),
// and -metrics prints a final engine counter summary. Like profiles,
// the active telemetry is flushed by Exit on every exit path — a
// SIGINT-cut run (exit 2) still gets its final progress line and a
// complete, parseable trace file.

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/explore"
	"repro/internal/telemetry"
)

// Telemetry carries the observability flags and the live telemetry
// objects of one frontend run.
type Telemetry struct {
	// ProgressInterval is the -progress reporting interval; zero
	// disables the reporter. The bare flag form (-progress) means one
	// second.
	ProgressInterval time.Duration
	// TracePath is the -trace output path for the JSONL search trace.
	TracePath string
	// Summary enables the -metrics final counter dump to stderr.
	Summary bool

	reg      *telemetry.Registry
	tracer   *telemetry.Tracer
	reporter *telemetry.Reporter
}

// activeTelemetry is what Exit flushes: frontends exit through
// Exit/Fatal on every path, and an unflushed tracer would leave a
// truncated file.
var activeTelemetry *Telemetry

// Register installs the telemetry flags on fs.
func (t *Telemetry) Register(fs *flag.FlagSet) {
	fs.Var(progressFlag{t}, "progress",
		"print live search progress to stderr every second; -progress=500ms sets the interval")
	fs.StringVar(&t.TracePath, "trace", "",
		"write a JSONL search trace (worker lifecycle, expansion batches, budget events) to this path; convert with c11trace")
	fs.BoolVar(&t.Summary, "metrics", false,
		"print the final engine metric counters to stderr when the run ends")
}

// progressFlag parses -progress as a bool-or-duration: the bare flag
// enables a 1s interval, -progress=250ms sets one explicitly.
type progressFlag struct{ t *Telemetry }

func (p progressFlag) String() string {
	if p.t == nil || p.t.ProgressInterval == 0 {
		return "false"
	}
	return p.t.ProgressInterval.String()
}

func (p progressFlag) IsBoolFlag() bool { return true }

func (p progressFlag) Set(s string) error {
	switch strings.ToLower(s) {
	case "", "true":
		p.t.ProgressInterval = time.Second
		return nil
	case "false":
		p.t.ProgressInterval = 0
		return nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("want a duration (e.g. 500ms) or nothing: %v", err)
	}
	if d <= 0 {
		return fmt.Errorf("interval must be positive")
	}
	p.t.ProgressInterval = d
	return nil
}

// Enabled reports whether any telemetry flag was set.
func (t *Telemetry) Enabled() bool {
	return t.ProgressInterval > 0 || t.TracePath != "" || t.Summary
}

// Start builds the registry, opens the tracer and launches the
// progress reporter according to the flags, and records t as the
// process's active telemetry so Exit flushes it on every exit path.
// Call once after flag parsing, before Apply; pair with a deferred
// Stop for the normal return path. A run with no telemetry flags
// starts nothing (and Apply then leaves the engine untouched).
func (t *Telemetry) Start() error {
	if !t.Enabled() {
		return nil
	}
	t.reg = telemetry.NewEngineRegistry()
	if t.TracePath != "" {
		tr, err := telemetry.OpenTracer(t.TracePath)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		t.tracer = tr
	}
	if t.ProgressInterval > 0 {
		t.reporter = telemetry.NewReporter(os.Stderr, t.ProgressInterval, t.sample)
		t.reporter.Start()
	}
	activeTelemetry = t
	return nil
}

func (t *Telemetry) sample() telemetry.Sample {
	return telemetry.Sample{
		Explored:   int64(t.reg.Total(telemetry.EngineAdmitted)),
		Terminated: int64(t.reg.Total(telemetry.EngineTerminated)),
		Frontier:   t.reg.GaugeValue(telemetry.EngineGaugeFrontier),
		Depth:      t.reg.GaugeValue(telemetry.EngineGaugeDepth),
	}
}

// Apply threads the telemetry sinks into engine options. Tools that
// run many searches (c11litmus, c11fuzz) apply the same Telemetry to
// each; the registry accumulates across them.
func (t *Telemetry) Apply(o *explore.Options) {
	if t.reg != nil {
		o.Metrics = t.reg
	}
	if t.tracer != nil {
		o.Tracer = t.tracer
	}
}

// Registry exposes the engine registry (nil when telemetry is off).
func (t *Telemetry) Registry() *telemetry.Registry { return t.reg }

// Tracer exposes the search tracer (nil when -trace is off).
func (t *Telemetry) Tracer() *telemetry.Tracer { return t.tracer }

// Stop flushes everything: the reporter prints its final progress
// line, the tracer is flushed and closed, and -metrics prints the
// counter summary. Idempotent — a deferred Stop after an Exit-flushed
// one does nothing.
func (t *Telemetry) Stop() {
	t.reporter.Stop()
	if t.tracer != nil {
		if err := t.tracer.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		}
		t.tracer = nil
	}
	if t.Summary && t.reg != nil {
		t.Summary = false
		snap := t.reg.Snapshot()
		var b strings.Builder
		b.WriteString("metrics:")
		for i, name := range snap.CounterNames {
			fmt.Fprintf(&b, " %s=%d", name, snap.CounterVals[i])
		}
		fmt.Fprintln(os.Stderr, b.String())
	}
	if activeTelemetry == t {
		activeTelemetry = nil
	}
}
