// Package cli is the shared command-line plumbing of the five
// frontends: the resource-budget flag set (wall clock, states, memory,
// checkpoint/resume), the common exit-code convention, and the
// formatting of engine results. Keeping it in one place makes the
// tools behave identically: the same flag spells the same budget
// everywhere, and an exit status means the same thing whichever binary
// produced it.
package cli

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/explore"
	"repro/internal/model"
)

// Exit codes shared by every frontend. The distinction between 1 and
// 2 is the tri-state verdict: 1 means a definite finding (a property
// violation, an expectation failure, a refinement breach), 2 means the
// run was cut by a resource budget or degraded by isolated panics
// before it could conclude, and 3 means the tool itself failed (bad
// flags, unreadable input, I/O errors).
const (
	// ExitProved: the run concluded and found nothing wrong.
	ExitProved = 0
	// ExitViolation: the run concluded with a definite finding.
	ExitViolation = 1
	// ExitBounded: a budget cut or degradation left the run
	// inconclusive.
	ExitBounded = 2
	// ExitInternal: usage or tool error; nothing was concluded.
	ExitInternal = 3
)

// ExitCodesDoc is appended to every frontend's -h output.
const ExitCodesDoc = `
Exit codes:
  0  proved / all checks passed
  1  violation or definite failure found
  2  search cut by a resource budget or degraded by isolated panics (inconclusive)
  3  usage or internal error
`

// ExitCode maps an exploration result to the shared convention.
func ExitCode(res explore.Result) int {
	switch res.Verdict {
	case explore.VerdictViolated:
		return ExitViolation
	case explore.VerdictBounded:
		return ExitBounded
	default:
		return ExitProved
	}
}

// Budget is the shared resource-governance flag set.
type Budget struct {
	// Timeout bounds the wall clock of every engine search the tool
	// runs (0 = none).
	Timeout time.Duration
	// MaxStates bounds distinct configurations per search (0 = engine
	// default).
	MaxStates int
	// MaxMemMB bounds the process heap in MiB, polled (0 = none).
	MaxMemMB int
	// Checkpoint is the path the engine snapshots the search to.
	Checkpoint string
	// CheckpointEvery is the periodic snapshot interval (0 = only a
	// final snapshot).
	CheckpointEvery time.Duration
	// Resume is a checkpoint path to continue from instead of starting
	// fresh.
	Resume string
	// Context, when non-nil, cancels every engine search the tool runs
	// (set programmatically, not by a flag — frontends thread
	// SignalContext here so SIGINT/SIGTERM cuts the search like any
	// other budget).
	Context context.Context
}

// Register installs the budget flags on fs (use flag.CommandLine for
// the default set).
func (b *Budget) Register(fs *flag.FlagSet) {
	fs.DurationVar(&b.Timeout, "timeout", 0,
		"wall-clock budget per search; past it the engine stops with a sound partial result (0 = none)")
	fs.IntVar(&b.MaxStates, "max-states", 0,
		"state budget per search: distinct configurations admitted (0 = engine default)")
	fs.IntVar(&b.MaxMemMB, "max-mem", 0,
		"memory budget in MiB: the search stops when the polled heap exceeds it (0 = none)")
	fs.StringVar(&b.Checkpoint, "checkpoint", "",
		"write a resumable snapshot of the search (seen-set + frontier) to this path")
	fs.DurationVar(&b.CheckpointEvery, "checkpoint-every", 0,
		"also snapshot periodically at this interval (needs -checkpoint)")
	fs.StringVar(&b.Resume, "resume", "",
		"continue a checkpointed search from this path instead of starting fresh")
}

// Validate checks flag consistency; call after flag parsing.
func (b *Budget) Validate() error {
	if err := explore.CheckpointInterval(b.Checkpoint, b.CheckpointEvery); err != nil {
		return fmt.Errorf("-checkpoint-every: %w", err)
	}
	if b.MaxStates < 0 || b.MaxMemMB < 0 || b.Timeout < 0 || b.CheckpointEvery < 0 {
		return fmt.Errorf("budget flags must be non-negative")
	}
	return nil
}

// Apply folds the budget into engine options.
func (b *Budget) Apply(o *explore.Options) {
	o.Timeout = b.Timeout
	if b.Context != nil {
		o.Context = b.Context
	}
	if b.MaxStates > 0 {
		o.MaxConfigs = b.MaxStates
	}
	if b.MaxMemMB > 0 {
		o.MaxMemBytes = uint64(b.MaxMemMB) << 20
	}
	o.CheckpointPath = b.Checkpoint
	o.CheckpointEvery = b.CheckpointEvery
}

// Execute runs root under opts with the budget applied — or, when
// -resume was given, continues the checkpointed search instead (root
// may then be nil). The returned error is an internal failure
// (ExitInternal); budget cuts are reported through the Result verdict.
func (b *Budget) Execute(m model.Model, root model.Config, opts explore.Options) (explore.Result, error) {
	b.Apply(&opts)
	if b.Resume != "" {
		res, err := explore.Resume(b.Resume, m, opts)
		if err != nil {
			return res, fmt.Errorf("resume %s: %w", b.Resume, err)
		}
		return res, nil
	}
	res := explore.Run(root, opts)
	if res.CheckpointErr != nil {
		return res, fmt.Errorf("checkpoint: %w", res.CheckpointErr)
	}
	return res, nil
}

// Describe renders the governance part of a result in one line:
// verdict, stop cause, coverage. Frontends print it after their own
// statistics so partial results are always visibly partial.
func Describe(res explore.Result) string {
	s := fmt.Sprintf("verdict=%s", res.Verdict)
	if res.Stop != explore.StopNone {
		s += fmt.Sprintf(" stop=%s", res.Stop)
	}
	if res.Frontier > 0 {
		s += fmt.Sprintf(" frontier=%d", res.Frontier)
	}
	if len(res.Panics) > 0 {
		s += fmt.Sprintf(" isolated-panics=%d", len(res.Panics))
	}
	return s
}

// Usage wraps a FlagSet's default usage with a header line and the
// exit-code table.
func Usage(fs *flag.FlagSet, header string) func() {
	return func() {
		fmt.Fprintf(fs.Output(), "%s\n\nFlags:\n", header)
		fs.PrintDefaults()
		fmt.Fprint(fs.Output(), ExitCodesDoc)
	}
}

// Parse parses the process command line like flag.Parse, except that a
// bad flag exits with ExitInternal instead of the flag package's
// default status 2 — keeping 2 reserved for budget-cut runs. -h still
// exits 0.
func Parse() {
	flag.CommandLine.Init(os.Args[0], flag.ContinueOnError)
	switch err := flag.CommandLine.Parse(os.Args[1:]); err {
	case nil:
	case flag.ErrHelp:
		os.Exit(ExitProved)
	default:
		os.Exit(ExitInternal)
	}
}

// Fatal reports an internal error and exits with ExitInternal,
// flushing any active profiles on the way out.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	Exit(ExitInternal)
}

// Fatalf is Fatal with formatting.
func Fatalf(tool, format string, args ...any) {
	Fatal(tool, fmt.Errorf(format, args...))
}
