package cli_test

// Child-process harness for the frontends' signal handling: a real
// binary gets a real SIGINT/SIGTERM mid-search and must cut the
// search like a budget (exit 2, stop=cancelled), writing its final
// checkpoint first when -checkpoint is set.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/cli"
)

// slowLit is a three-thread cross-coupled counter: at bound 22 the
// RAR search runs for tens of seconds, so the child is reliably
// mid-search when the signal lands.
const slowLit = `init x=0 y=0 g=0
thread 1 { while (g == 0) { x := y + 1; } }
thread 2 { while (g == 0) { y := x + 1; } }
thread 3 { while (g == 0) { x := x + y; } }
observe x y
`

// buildTool compiles one of the cmd binaries into dir.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

// interrupt starts cmd, waits for it to be well into its work, sends
// sig, and returns the exit code and combined output.
func interrupt(t *testing.T, cmd *exec.Cmd, after time.Duration, sig os.Signal) (int, string) {
	t.Helper()
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(after)
	if err := cmd.Process.Signal(sig); err != nil {
		t.Fatalf("signal: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0, out.String()
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode(), out.String()
		}
		t.Fatalf("wait: %v\n%s", err, out.String())
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("child ignored %v and hung\n%s", sig, out.String())
	}
	return -1, ""
}

func TestExploreSIGINTCheckpointsAndExitsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and interrupts child processes")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "c11explore")
	lit := filepath.Join(dir, "slow.lit")
	if err := os.WriteFile(lit, []byte(slowLit), 0o644); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "search.ckpt")

	code, out := interrupt(t,
		exec.Command(bin, "-f", lit, "-max", "22", "-workers", "2", "-checkpoint", ckpt),
		500*time.Millisecond, os.Interrupt)
	if code != cli.ExitBounded {
		t.Fatalf("exit code %d after SIGINT, want %d\n%s", code, cli.ExitBounded, out)
	}
	if !strings.Contains(out, "stop=cancelled") {
		t.Fatalf("output does not report the cancellation:\n%s", out)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no final checkpoint after SIGINT: %v", err)
	}

	// The checkpoint is loadable: a resumed run (under a small state
	// budget, so it returns promptly) continues instead of failing.
	resume := exec.Command(bin, "-resume", ckpt, "-max-states", "50")
	rout, _ := resume.CombinedOutput()
	if code := resume.ProcessState.ExitCode(); code != cli.ExitBounded {
		t.Fatalf("resume of the interrupt checkpoint exited %d:\n%s", code, rout)
	}
	if !strings.Contains(string(rout), "verdict=BOUNDED") {
		t.Fatalf("resume output:\n%s", rout)
	}
}

func TestFuzzSIGTERMExitsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and interrupts child processes")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "c11fuzz")

	// Enough programs that the run is still going when the signal
	// lands; the corpus directory stays inside the temp dir.
	code, out := interrupt(t,
		exec.Command(bin, "-seed", "1", "-n", "1000000", "-corpus", filepath.Join(dir, "corpus")),
		500*time.Millisecond, syscall.SIGTERM)
	if code != cli.ExitBounded {
		t.Fatalf("exit code %d after SIGTERM, want %d\n%s", code, cli.ExitBounded, out)
	}
	if !strings.Contains(out, "interrupted after") {
		t.Fatalf("output does not report the interruption:\n%s", out)
	}
}
