package cli_test

// Child-process harness for telemetry flushing: the -trace and
// -progress state must survive every exit path, including a
// signal-driven exit 2 — Exit flushes the active telemetry before the
// process dies, so an interrupted run still leaves a complete,
// convertible trace file and a final progress line.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/telemetry"
)

// convertTrace parses the JSONL trace at path through the Chrome
// converter, failing the test if it is truncated or malformed.
func convertTrace(t *testing.T, path string) string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	defer f.Close()
	var out strings.Builder
	if err := telemetry.ConvertChrome(f, &out); err != nil {
		t.Fatalf("trace at %s does not convert: %v", path, err)
	}
	return out.String()
}

func TestExploreSIGINTFlushesTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and interrupts child processes")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "c11explore")
	lit := filepath.Join(dir, "slow.lit")
	if err := os.WriteFile(lit, []byte(slowLit), 0o644); err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(dir, "search.jsonl")

	// A 100ms progress interval guarantees at least one periodic line
	// lands in the ~700ms before the signal; the final line is emitted
	// by the Exit-path flush itself.
	code, out := interrupt(t,
		exec.Command(bin, "-f", lit, "-max", "22", "-workers", "2",
			"-progress=100ms", "-trace", trace, "-metrics"),
		700*time.Millisecond, os.Interrupt)
	if code != cli.ExitBounded {
		t.Fatalf("exit code %d after SIGINT, want %d\n%s", code, cli.ExitBounded, out)
	}
	if !strings.Contains(out, "progress:") {
		t.Fatalf("no periodic progress line before the signal:\n%s", out)
	}
	if !strings.Contains(out, "progress(final):") {
		t.Fatalf("no final progress line on the signal exit path:\n%s", out)
	}
	if !strings.Contains(out, "metrics:") || !strings.Contains(out, "expansions=") {
		t.Fatalf("no -metrics summary on the signal exit path:\n%s", out)
	}

	// The trace was flushed and closed, not truncated mid-record: it
	// converts cleanly and carries the search span plus the stop event
	// recorded when the signal cut the run.
	chrome := convertTrace(t, trace)
	for _, want := range []string{`"search"`, `"stop"`, `"cancelled"`} {
		if !strings.Contains(chrome, want) {
			t.Fatalf("converted trace is missing %s:\n%.2000s", want, chrome)
		}
	}
}

func TestVerifyNormalExitFlushesTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("builds child processes")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "c11verify")
	trace := filepath.Join(dir, "verify.jsonl")

	cmd := exec.Command(bin, "-max", "10", "-workers", "2", "-trace", trace, "-metrics")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("c11verify: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "metrics:") {
		t.Fatalf("no -metrics summary on the normal exit path:\n%s", out)
	}
	chrome := convertTrace(t, trace)
	if !strings.Contains(chrome, `"search"`) {
		t.Fatalf("converted trace has no search span:\n%.2000s", chrome)
	}
}
