package cli

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context cancelled on SIGINT or SIGTERM (and
// a stop function restoring default signal behaviour). Every frontend
// threads it into explore.Options.Context, so an interrupted search
// stops at its next admission check with StopCancelled: the run is
// reported as a normal budget-cut result — partial statistics, a
// final checkpoint when -checkpoint is set — and the tool exits with
// ExitBounded (2), same as any other inconclusive cut.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}
