package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profile is the shared profiling flag pair of every frontend:
// -cpuprofile and -memprofile write pprof profiles of the run for
// offline analysis with `go tool pprof`. The engine's performance
// work (PERF.md) is driven by exactly these profiles; exposing them
// on the binaries lets the same measurements be taken on any workload
// a frontend can express, not just the committed benchmarks.
type Profile struct {
	// CPUPath receives a CPU profile of the whole run (from Start to
	// Stop or process exit).
	CPUPath string
	// MemPath receives a heap profile taken after a final GC when the
	// run ends.
	MemPath string
	cpu     *os.File
}

// activeProfile is the profile Exit flushes: frontends exit through
// Exit/Fatal on every path, and a CPU profile that is never stopped
// would be empty on disk.
var activeProfile *Profile

// Register installs the profiling flags on fs.
func (p *Profile) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.CPUPath, "cpuprofile", "",
		"write a pprof CPU profile of the run to this path")
	fs.StringVar(&p.MemPath, "memprofile", "",
		"write a pprof heap profile (after a final GC) to this path when the run ends")
}

// Start begins CPU profiling when -cpuprofile was given and records p
// as the process's active profile so Exit and Fatal flush it on every
// exit path. Call once after flag parsing; pair with a deferred Stop
// for the normal return path.
func (p *Profile) Start() error {
	if p.CPUPath != "" {
		f, err := os.Create(p.CPUPath)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpu = f
	}
	activeProfile = p
	return nil
}

// Stop ends the CPU profile and writes the heap profile, if they were
// requested. Idempotent: a deferred Stop after an Exit-flushed one
// does nothing.
func (p *Profile) Stop() {
	if p.cpu != nil {
		pprof.StopCPUProfile()
		p.cpu.Close()
		p.cpu = nil
	}
	if p.MemPath != "" {
		path := p.MemPath
		p.MemPath = ""
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		} else {
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}
	}
	if activeProfile == p {
		activeProfile = nil
	}
}

// Exit flushes any active telemetry and profiles and exits with code.
// Frontends use it instead of os.Exit so -cpuprofile/-memprofile,
// -trace and -progress survive early exits (violations, budget cuts,
// signal-driven cuts, internal errors). Telemetry flushes first: its
// final progress line and trace tail describe the run the profile
// covers.
func Exit(code int) {
	if activeTelemetry != nil {
		activeTelemetry.Stop()
	}
	if activeProfile != nil {
		activeProfile.Stop()
	}
	os.Exit(code)
}
