// Package catdsl evaluates memory-model definitions written in a
// subset of the herd "cat" language against candidate executions —
// the same artefact the paper submits to Memalloy in Appendix E. The
// two model files of the paper (c11_rar.cat, its eco-based coherence
// axioms, and the simplified canonical model) ship as constants and
// are compared for equivalence by the test suite and cmd/c11equiv,
// reproducing the paper's "no differences up to size 7" check.
//
// Supported syntax:
//
//	let name = expr            relation definition
//	irreflexive expr as name   axiom
//	acyclic expr as name       axiom
//	empty expr as name         axiom
//
// Expressions: base relations po, rf, co, fr, id, loc, ext; event-set
// relations [W], [R], [U], [REL], [ACQ], [IW]; operators | (union),
// & (intersection), \ (difference), ; (composition), ^-1 (converse),
// + (transitive closure), * (reflexive-transitive closure),
// ? (reflexive closure), and parentheses.
package catdsl

import (
	"fmt"
	"strings"

	"repro/internal/axiomatic"
	"repro/internal/relation"
)

// Model is a parsed cat model: named definitions plus axioms, in
// source order.
type Model struct {
	Name   string
	defs   []def
	axioms []axiom
}

type def struct {
	name string
	expr expr
}

type axiomKind uint8

const (
	axIrreflexive axiomKind = iota
	axAcyclic
	axEmpty
)

type axiom struct {
	kind axiomKind
	expr expr
	name string
}

// Axioms lists the axiom names in source order.
func (m *Model) Axioms() []string {
	out := make([]string, len(m.axioms))
	for i, a := range m.axioms {
		out[i] = a.name
	}
	return out
}

// expr is a relational expression tree.
type expr interface{ String() string }

type base struct{ name string }  // po, rf, co, fr, id, loc, ext, or defined name
type evset struct{ name string } // [W], [R], ...
type binop struct {
	op   byte // '|', '&', '\\', ';'
	l, r expr
}
type closure struct {
	op byte // '+', '*', '?'
	e  expr
}
type converse struct{ e expr }

func (b base) String() string     { return b.name }
func (s evset) String() string    { return "[" + s.name + "]" }
func (b binop) String() string    { return fmt.Sprintf("(%s %c %s)", b.l, b.op, b.r) }
func (c closure) String() string  { return fmt.Sprintf("%s%c", c.e, c.op) }
func (c converse) String() string { return c.e.String() + "^-1" }

// Env is the evaluation environment for one execution.
type Env struct {
	x    axiomatic.Exec
	defs map[string]relation.Rel
}

// NewEnv prepares the base relations of the execution.
func NewEnv(x axiomatic.Exec) *Env {
	n := x.N()
	env := &Env{x: x, defs: map[string]relation.Rel{}}

	env.defs["po"] = x.SB.Clone()
	env.defs["rf"] = x.RF.Clone()
	env.defs["co"] = x.MO.Clone()
	env.defs["fr"] = x.FR()
	env.defs["id"] = relation.Identity(n)

	loc := relation.New(n)
	ext := relation.New(n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if x.Events[a].Var() == x.Events[b].Var() {
				loc.Add(a, b)
			}
			if x.Events[a].TID != x.Events[b].TID {
				ext.Add(a, b)
			}
		}
	}
	env.defs["loc"] = loc
	env.defs["ext"] = ext
	return env
}

// set returns the identity relation restricted to an event class.
func (e *Env) set(name string) (relation.Rel, error) {
	n := e.x.N()
	out := relation.New(n)
	for i, ev := range e.x.Events {
		ok := false
		switch name {
		case "W":
			ok = ev.IsWrite()
		case "R":
			ok = ev.IsRead()
		case "U":
			ok = ev.IsUpdate()
		case "REL":
			ok = ev.Releasing()
		case "ACQ":
			ok = ev.Acquiring()
		case "IW":
			ok = ev.IsInit()
		default:
			return out, fmt.Errorf("catdsl: unknown event set [%s]", name)
		}
		if ok {
			out.Add(i, i)
		}
	}
	return out, nil
}

// Eval evaluates an expression in the environment.
func (e *Env) Eval(x expr) (relation.Rel, error) {
	switch t := x.(type) {
	case base:
		if r, ok := e.defs[t.name]; ok {
			return r.Clone(), nil
		}
		return relation.Rel{}, fmt.Errorf("catdsl: undefined relation %q", t.name)
	case evset:
		return e.set(t.name)
	case converse:
		r, err := e.Eval(t.e)
		if err != nil {
			return r, err
		}
		return r.Converse(), nil
	case closure:
		r, err := e.Eval(t.e)
		if err != nil {
			return r, err
		}
		switch t.op {
		case '+':
			return r.TransitiveClosure(), nil
		case '*':
			return r.ReflexiveTransitiveClosure(), nil
		case '?':
			return r.ReflexiveClosure(), nil
		}
		return r, fmt.Errorf("catdsl: unknown closure %c", t.op)
	case binop:
		l, err := e.Eval(t.l)
		if err != nil {
			return l, err
		}
		r, err := e.Eval(t.r)
		if err != nil {
			return r, err
		}
		switch t.op {
		case '|':
			l.Union(r)
			return l, nil
		case '&':
			l.Intersect(r)
			return l, nil
		case '\\':
			l.Subtract(r)
			return l, nil
		case ';':
			return relation.Compose(l, r), nil
		}
		return l, fmt.Errorf("catdsl: unknown operator %c", t.op)
	}
	return relation.Rel{}, fmt.Errorf("catdsl: unknown expression %T", x)
}

// Violation names the first axiom an execution fails.
type Violation struct {
	Axiom string
}

func (v *Violation) Error() string { return "catdsl: axiom " + v.Axiom + " violated" }

// Check evaluates the model on an execution, returning nil when every
// axiom holds.
func (m *Model) Check(x axiomatic.Exec) (*Violation, error) {
	env := NewEnv(x)
	for _, d := range m.defs {
		r, err := env.Eval(d.expr)
		if err != nil {
			return nil, err
		}
		env.defs[d.name] = r
	}
	for _, a := range m.axioms {
		r, err := env.Eval(a.expr)
		if err != nil {
			return nil, err
		}
		switch a.kind {
		case axIrreflexive:
			if !r.Irreflexive() {
				return &Violation{Axiom: a.name}, nil
			}
		case axAcyclic:
			if !r.Acyclic() {
				return &Violation{Axiom: a.name}, nil
			}
		case axEmpty:
			if !r.Empty() {
				return &Violation{Axiom: a.name}, nil
			}
		}
	}
	return nil, nil
}

// Consistent reports whether all axioms hold, panicking on evaluation
// errors (models are static constants, so errors are programming
// mistakes).
func (m *Model) Consistent(x axiomatic.Exec) bool {
	v, err := m.Check(x)
	if err != nil {
		panic(err)
	}
	return v == nil
}

// ----- parsing -----

// ParseModel parses a cat model.
func ParseModel(name, src string) (*Model, error) {
	m := &Model{Name: name}
	for ln, rawLine := range strings.Split(src, "\n") {
		line := stripComment(rawLine)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "let":
			rest := strings.TrimSpace(strings.TrimPrefix(line, "let"))
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return nil, fmt.Errorf("%s:%d: let without =", name, ln+1)
			}
			dname := strings.TrimSpace(rest[:eq])
			ex, err := parseExpr(rest[eq+1:])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", name, ln+1, err)
			}
			m.defs = append(m.defs, def{name: dname, expr: ex})
		case "irreflexive", "acyclic", "empty":
			kind := map[string]axiomKind{
				"irreflexive": axIrreflexive, "acyclic": axAcyclic, "empty": axEmpty,
			}[fields[0]]
			rest := strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
			aname := ""
			if as := strings.LastIndex(rest, " as "); as >= 0 {
				aname = strings.TrimSpace(rest[as+4:])
				rest = rest[:as]
			} else {
				aname = fmt.Sprintf("axiom%d", len(m.axioms))
			}
			ex, err := parseExpr(rest)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", name, ln+1, err)
			}
			m.axioms = append(m.axioms, axiom{kind: kind, expr: ex, name: aname})
		default:
			return nil, fmt.Errorf("%s:%d: unknown directive %q", name, ln+1, fields[0])
		}
	}
	return m, nil
}

func stripComment(line string) string {
	// cat uses (* ... *) comments; support single-line ones plus //.
	for {
		open := strings.Index(line, "(*")
		if open < 0 {
			break
		}
		close := strings.Index(line[open:], "*)")
		if close < 0 {
			line = line[:open]
			break
		}
		line = line[:open] + line[open+close+2:]
	}
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	return line
}

// Expression grammar (precedence low to high):
//
//	e  := t (('|' | '\') t)*
//	t  := c ((';' | '&') c)*        — ; and & at one level, left assoc
//	c  := p ('+' | '*' | '?' | '^-1')*
//	p  := name | [SET] | '(' e ')'
type exprParser struct {
	s   string
	pos int
}

func parseExpr(s string) (expr, error) {
	p := &exprParser{s: s}
	e, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos < len(p.s) {
		return nil, fmt.Errorf("trailing input %q", p.s[p.pos:])
	}
	return e, nil
}

func (p *exprParser) skip() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	p.skip()
	if p.pos >= len(p.s) {
		return 0
	}
	return p.s[p.pos]
}

func (p *exprParser) parseUnion() (expr, error) {
	l, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '|':
			p.pos++
			r, err := p.parseSeq()
			if err != nil {
				return nil, err
			}
			l = binop{op: '|', l: l, r: r}
		case '\\':
			p.pos++
			r, err := p.parseSeq()
			if err != nil {
				return nil, err
			}
			l = binop{op: '\\', l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *exprParser) parseSeq() (expr, error) {
	l, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case ';':
			p.pos++
			r, err := p.parsePostfix()
			if err != nil {
				return nil, err
			}
			l = binop{op: ';', l: l, r: r}
		case '&':
			p.pos++
			r, err := p.parsePostfix()
			if err != nil {
				return nil, err
			}
			l = binop{op: '&', l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *exprParser) parsePostfix() (expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '+', '*', '?':
			e = closure{op: p.s[p.pos], e: e}
			p.pos++
		case '^':
			if strings.HasPrefix(p.s[p.pos:], "^-1") {
				p.pos += 3
				e = converse{e: e}
			} else {
				return nil, fmt.Errorf("expected ^-1 at %q", p.s[p.pos:])
			}
		default:
			return e, nil
		}
	}
}

func (p *exprParser) parsePrimary() (expr, error) {
	switch p.peek() {
	case 0:
		return nil, fmt.Errorf("unexpected end of expression")
	case '(':
		p.pos++
		e, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("missing )")
		}
		p.pos++
		return e, nil
	case '[':
		p.pos++
		start := p.pos
		for p.pos < len(p.s) && p.s[p.pos] != ']' {
			p.pos++
		}
		if p.pos >= len(p.s) {
			return nil, fmt.Errorf("missing ]")
		}
		name := strings.TrimSpace(p.s[start:p.pos])
		p.pos++
		return evset{name: name}, nil
	}
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			p.pos++
		} else {
			break
		}
	}
	if p.pos == start {
		return nil, fmt.Errorf("unexpected character %q", p.s[start])
	}
	return base{name: p.s[start:p.pos]}, nil
}
