package catdsl

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/axiomatic"
	"repro/internal/enumerate"
	"repro/internal/event"
)

func mustParseExpr(t *testing.T, s string) expr {
	t.Helper()
	e, err := parseExpr(s)
	if err != nil {
		t.Fatalf("parseExpr(%q): %v", s, err)
	}
	return e
}

func sampleExec(t *testing.T) axiomatic.Exec {
	t.Helper()
	events := []event.Event{
		{Tag: 0, Act: event.Wr("x", 0), TID: 0},
		{Tag: 1, Act: event.WrR("x", 1), TID: 1},
		{Tag: 2, Act: event.RdA("x", 1), TID: 2},
	}
	x := axiomatic.NewExec(events)
	x.SB.Add(0, 1)
	x.SB.Add(0, 2)
	x.RF.Add(1, 2)
	x.MO.Add(0, 1)
	return x
}

func TestExprParsing(t *testing.T) {
	cases := []string{
		"po",
		"rf | co",
		"(po | sw)+",
		"rf^-1",
		"(rf^-1)?; co; rf?; hb",
		"[REL]; rf; [ACQ]",
		"po \\ id",
		"loc & ext",
		"co*",
	}
	for _, s := range cases {
		if e := mustParseExpr(t, s); e.String() == "" {
			t.Errorf("empty rendering for %q", s)
		}
	}
}

func TestExprParseErrors(t *testing.T) {
	for _, s := range []string{"", "(po", "[W", "po ^2", "po $", "po co"} {
		if _, err := parseExpr(s); err == nil {
			t.Errorf("no error for %q", s)
		}
	}
}

func TestEvalBaseRelations(t *testing.T) {
	x := sampleExec(t)
	env := NewEnv(x)
	for _, name := range []string{"po", "rf", "co", "fr", "id", "loc", "ext"} {
		r, err := env.Eval(base{name: name})
		if err != nil {
			t.Fatalf("eval %s: %v", name, err)
		}
		_ = r
	}
	if _, err := env.Eval(base{name: "nonsense"}); err == nil {
		t.Fatal("undefined relation accepted")
	}
	// loc relates same-variable events (reflexively).
	loc, _ := env.Eval(base{name: "loc"})
	if !loc.Has(0, 1) || !loc.Has(0, 0) {
		t.Fatal("loc wrong")
	}
	// ext relates cross-thread events only.
	ext, _ := env.Eval(base{name: "ext"})
	if !ext.Has(1, 2) || ext.Has(1, 1) {
		t.Fatal("ext wrong")
	}
}

func TestEvalEventSets(t *testing.T) {
	x := sampleExec(t)
	env := NewEnv(x)
	for name, want := range map[string][]int{
		"W": {0, 1}, "R": {2}, "REL": {1}, "ACQ": {2}, "IW": {0}, "U": {},
	} {
		r, err := env.Eval(evset{name: name})
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for _, p := range r.Pairs() {
			if p[0] != p[1] {
				t.Fatalf("[%s] not diagonal", name)
			}
			got++
		}
		if got != len(want) {
			t.Fatalf("[%s] size %d, want %d", name, got, len(want))
		}
	}
	if _, err := env.Eval(evset{name: "NOPE"}); err == nil {
		t.Fatal("unknown set accepted")
	}
}

func TestEvalOperators(t *testing.T) {
	x := sampleExec(t)
	env := NewEnv(x)
	// sw = [REL]; rf; [ACQ] contains exactly (1,2).
	sw, err := env.Eval(mustParseExpr(t, "[REL]; rf; [ACQ]"))
	if err != nil {
		t.Fatal(err)
	}
	if sw.Count() != 1 || !sw.Has(1, 2) {
		t.Fatalf("sw = %v", sw)
	}
	// Converse.
	conv, _ := env.Eval(mustParseExpr(t, "rf^-1"))
	if !conv.Has(2, 1) || conv.Has(1, 2) {
		t.Fatal("converse wrong")
	}
	// Difference and closure.
	d, _ := env.Eval(mustParseExpr(t, "(po | rf)+ \\ po"))
	if !d.Has(1, 2) { // rf edge reachable, not po
		t.Fatalf("difference/closure wrong: %v", d)
	}
}

func TestModelParsing(t *testing.T) {
	m := C11RAR()
	if got := m.Axioms(); len(got) != 3 || got[0] != "hb_irr" {
		t.Fatalf("axioms = %v", got)
	}
	c := Canonical()
	if got := c.Axioms(); len(got) != 5 || got[4] != "UPD" {
		t.Fatalf("axioms = %v", got)
	}
}

func TestModelParseErrors(t *testing.T) {
	cases := []string{
		"let x po",          // missing =
		"frobnicate po",     // unknown directive
		"let x = po $$",     // bad expression
		"irreflexive ((po)", // unbalanced
	}
	for _, src := range cases {
		if _, err := ParseModel("t", src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestStripComment(t *testing.T) {
	if got := stripComment("let x = po (* hi *) | rf"); !strings.Contains(got, "| rf") {
		t.Fatalf("inline comment: %q", got)
	}
	if got := stripComment("po // trailing"); strings.Contains(got, "trailing") {
		t.Fatalf("line comment: %q", got)
	}
	if got := stripComment("(* whole line *)"); strings.TrimSpace(got) != "" {
		t.Fatalf("full comment: %q", got)
	}
	if got := stripComment("po (* unterminated"); strings.Contains(got, "unterminated") {
		t.Fatalf("unterminated: %q", got)
	}
}

func TestModelCheckOnValidExecution(t *testing.T) {
	x := sampleExec(t)
	v, err := C11RAR().Check(x)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("valid execution violates %v", v)
	}
	if !Canonical().Consistent(x) {
		t.Fatal("canonical model rejects valid execution")
	}
}

func TestModelCheckDetectsCoherenceViolation(t *testing.T) {
	// CoRR shape: t2 reads 1 then 0.
	events := []event.Event{
		{Tag: 0, Act: event.Wr("x", 0), TID: 0},
		{Tag: 1, Act: event.Wr("x", 1), TID: 1},
		{Tag: 2, Act: event.Rd("x", 1), TID: 2},
		{Tag: 3, Act: event.Rd("x", 0), TID: 2},
	}
	x := axiomatic.NewExec(events)
	x.SB.Add(0, 1)
	x.SB.Add(0, 2)
	x.SB.Add(0, 3)
	x.SB.Add(2, 3)
	x.RF.Add(1, 2)
	x.RF.Add(0, 3)
	x.MO.Add(0, 1)
	v, err := C11RAR().Check(x)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("CoRR accepted by the paper model")
	}
	if Canonical().Consistent(x) {
		t.Fatal("CoRR accepted by the canonical model")
	}
}

func TestViolationError(t *testing.T) {
	v := &Violation{Axiom: "hb_irr"}
	if !strings.Contains(v.Error(), "hb_irr") {
		t.Fatal("error text")
	}
}

// Appendix E, reproduced: the paper's cat model and the canonical
// model agree on every candidate execution — exhaustively at small
// bounds.
func TestAppendixEModelsAgreeExhaustive(t *testing.T) {
	rar, canon := C11RAR(), Canonical()
	params := []enumerate.Params{
		{Threads: 2, Vars: []event.Var{"x"}, Events: 3},
		{Threads: 2, Vars: []event.Var{"x", "y"}, Events: 2},
	}
	for _, p := range params {
		agree, total := 0, 0
		enumerate.Candidates(p, func(x axiomatic.Exec) bool {
			total++
			a, b := rar.Consistent(x), canon.Consistent(x)
			if a != b {
				t.Fatalf("models disagree (rar=%v canonical=%v):\n%s", a, b, x)
			}
			// Both must also agree with the native Go implementations.
			if a != x.CoherentDef42() || b != x.WeakCanonicalConsistent() {
				t.Fatalf("cat evaluation diverges from native:\n%s", x)
			}
			if a {
				agree++
			}
			return true
		})
		if agree == 0 || agree == total {
			t.Fatalf("degenerate: %d/%d", agree, total)
		}
	}
}

// Appendix E at the Alloy bound (size 7), randomized.
func TestAppendixEModelsAgreeRandomSize7(t *testing.T) {
	rar, canon := C11RAR(), Canonical()
	rng := rand.New(rand.NewSource(77))
	p := enumerate.Params{Threads: 3, Vars: []event.Var{"x", "y"}, Events: 7}
	for i := 0; i < 2000; i++ {
		x := enumerate.Random(rng, p)
		if rar.Consistent(x) != canon.Consistent(x) {
			t.Fatalf("models disagree at size 7:\n%s", x)
		}
	}
}

func BenchmarkCatModelCheck(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := enumerate.Random(rng, enumerate.Params{
		Threads: 3, Vars: []event.Var{"x", "y"}, Events: 7,
	})
	m := C11RAR()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Check(x); err != nil {
			b.Fatal(err)
		}
	}
}
