package catdsl

// The model files of Appendix E, in the cat subset this package
// evaluates. C11RARSrc is the paper's c11_rar.cat verbatim up to
// whitespace: the eco-based reformulation of coherence. CanonicalSrc
// is the RAR projection of the canonical model (c11_simp_2.cat over
// c11_base_rar.cat) in the weak-canonical formulation of Definition
// C.3, which Appendix C proves equivalent to the original file's
// acyclicity axiom on the fragment (no SC events, no non-atomics, no
// fences, simplified sw without release sequences).

// C11RARSrc is the paper's formalisation of the RAR fragment.
const C11RARSrc = `
(* c11_rar.cat: eco-based coherence, Definition 4.2 *)
let sw = [REL]; rf; [ACQ]
let hb = (po | sw)+
let eco = (rf | co | fr)+
irreflexive hb as hb_irr
irreflexive hb ; eco as hb_eco_irr
irreflexive eco as eco_irr
`

// CanonicalSrc is the weak canonical RAR consistency of Definition
// C.3 (the projection of Batty et al.'s model to the fragment).
const CanonicalSrc = `
(* canonical RAR consistency, Definition C.3 *)
let sw = [REL]; rf; [ACQ]
let hb = (po | sw)+
irreflexive hb as HB
irreflexive (rf^-1)?; co; rf?; hb as COH
irreflexive rf; hb as RF
irreflexive rf as RFI
irreflexive (co; co; rf^-1) | (co; rf) as UPD
`

// C11RAR returns the parsed paper model; it panics on parse errors
// (the source is a constant).
func C11RAR() *Model {
	m, err := ParseModel("c11_rar.cat", C11RARSrc)
	if err != nil {
		panic(err)
	}
	return m
}

// Canonical returns the parsed canonical model.
func Canonical() *Model {
	m, err := ParseModel("c11_canonical.cat", CanonicalSrc)
	if err != nil {
		panic(err)
	}
	return m
}
