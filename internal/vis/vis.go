// Package vis renders executions as Graphviz dot graphs and aligned
// ASCII tables — the executable counterpart of the paper's execution
// diagrams (Examples 3.2, 3.6, 5.2). Nodes are events grouped by
// thread; edges are drawn for sb (program order, solid), rf (dashed),
// mo (bold) and sw (coloured), with derived edges (fr, hb, eco)
// available on request.
package vis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/axiomatic"
	"repro/internal/event"
	"repro/internal/relation"
)

// Options selects which relations to draw.
type Options struct {
	// SB draws direct (transitively reduced) sequenced-before edges.
	SB bool
	// RF, MO, SW, FR draw the respective relations; MO is transitively
	// reduced for readability.
	RF, MO, SW, FR bool
	// Title labels the graph.
	Title string
}

// Default returns the paper-style edge selection: sb, rf, mo and sw.
func Default() Options { return Options{SB: true, RF: true, MO: true, SW: true} }

// Dot renders the execution as a Graphviz digraph.
func Dot(x axiomatic.Exec, o Options) string {
	var b strings.Builder
	b.WriteString("digraph execution {\n")
	if o.Title != "" {
		fmt.Fprintf(&b, "  label=%q; labelloc=t;\n", o.Title)
	}
	b.WriteString("  rankdir=TB; node [shape=box, fontname=\"monospace\"];\n")

	// Cluster events by thread.
	byThread := map[event.Thread][]event.Event{}
	var tids []event.Thread
	for _, e := range x.Events {
		if _, ok := byThread[e.TID]; !ok {
			tids = append(tids, e.TID)
		}
		byThread[e.TID] = append(byThread[e.TID], e)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, t := range tids {
		name := fmt.Sprintf("thread %d", t)
		if t == event.InitThread {
			name = "init"
		}
		fmt.Fprintf(&b, "  subgraph cluster_t%d {\n    label=%q;\n", t, name)
		for _, e := range byThread[t] {
			fmt.Fprintf(&b, "    e%d [label=%q];\n", e.Tag, e.Act.String())
		}
		b.WriteString("  }\n")
	}

	edge := func(r relation.Rel, attrs string) {
		for _, p := range r.Pairs() {
			fmt.Fprintf(&b, "  e%d -> e%d [%s];\n", p[0], p[1], attrs)
		}
	}
	if o.SB {
		edge(reduce(x.SB), `label="sb"`)
	}
	if o.RF {
		edge(x.RF, `label="rf", style=dashed, color=forestgreen`)
	}
	if o.MO {
		edge(reduce(x.MO), `label="mo", style=bold, color=firebrick`)
	}
	if o.SW {
		edge(x.SW(), `label="sw", color=blue`)
	}
	if o.FR {
		edge(x.FR(), `label="fr", style=dotted, color=darkorange`)
	}
	b.WriteString("}\n")
	return b.String()
}

// reduce returns the transitive reduction of an acyclic relation (for
// display only): edges implied by two-step paths are dropped.
func reduce(r relation.Rel) relation.Rel {
	comp := relation.Compose(r, r.TransitiveClosure())
	out := r.Clone()
	out.Subtract(comp)
	return out
}

// ASCII renders the execution as per-thread columns of actions plus a
// textual edge list — a terminal-friendly view of the same diagram.
func ASCII(x axiomatic.Exec) string {
	byThread := map[event.Thread][]event.Event{}
	var tids []event.Thread
	for _, e := range x.Events {
		if _, ok := byThread[e.TID]; !ok {
			tids = append(tids, e.TID)
		}
		byThread[e.TID] = append(byThread[e.TID], e)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })

	// Column widths.
	width := map[event.Thread]int{}
	height := 0
	for _, t := range tids {
		w := len(header(t))
		for _, e := range byThread[t] {
			if l := len(cell(e)); l > w {
				w = l
			}
		}
		width[t] = w
		if len(byThread[t]) > height {
			height = len(byThread[t])
		}
	}

	var b strings.Builder
	for _, t := range tids {
		fmt.Fprintf(&b, "%-*s  ", width[t], header(t))
	}
	b.WriteString("\n")
	for _, t := range tids {
		fmt.Fprintf(&b, "%s  ", strings.Repeat("-", width[t]))
	}
	b.WriteString("\n")
	for row := 0; row < height; row++ {
		for _, t := range tids {
			s := ""
			if row < len(byThread[t]) {
				s = cell(byThread[t][row])
			}
			fmt.Fprintf(&b, "%-*s  ", width[t], s)
		}
		b.WriteString("\n")
	}

	list := func(name string, r relation.Rel) {
		pairs := r.Pairs()
		if len(pairs) == 0 {
			return
		}
		fmt.Fprintf(&b, "%s: ", name)
		for i, p := range pairs {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s->%s",
				x.Events[p[0]].Act, x.Events[p[1]].Act)
		}
		b.WriteString("\n")
	}
	list("rf", x.RF)
	list("mo", reduce(x.MO))
	list("sw", x.SW())
	return b.String()
}

func header(t event.Thread) string {
	if t == event.InitThread {
		return "init"
	}
	return fmt.Sprintf("thread %d", t)
}

func cell(e event.Event) string { return e.Act.String() }
