package vis

import (
	"strings"
	"testing"

	"repro/internal/axiomatic"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/relation"
)

func sampleExec(t *testing.T) axiomatic.Exec {
	t.Helper()
	s := core.Init(map[event.Var]event.Val{"d": 0, "f": 0})
	id, _ := s.InitialFor("d")
	iff, _ := s.InitialFor("f")
	s, wd, err := s.StepWrite(1, false, "d", 5, id)
	if err != nil {
		t.Fatal(err)
	}
	s, wf, err := s.StepWrite(1, true, "f", 1, iff)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err = s.StepRead(2, true, "f", wf.Tag)
	if err != nil {
		t.Fatal(err)
	}
	_ = wd
	return axiomatic.FromState(s)
}

func TestDotContainsStructure(t *testing.T) {
	x := sampleExec(t)
	out := Dot(x, Default())
	for _, want := range []string{
		"digraph execution",
		"subgraph cluster_t0", "subgraph cluster_t1", "subgraph cluster_t2",
		`label="rf"`, `label="mo"`, `label="sw"`, `label="sb"`,
		"wr(d,5)", "wrR(f,1)", "rdA(f,1)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
	if strings.Contains(out, `label="fr"`) {
		t.Error("fr drawn although not requested")
	}
}

func TestDotOptions(t *testing.T) {
	x := sampleExec(t)
	out := Dot(x, Options{FR: true, Title: "Example"})
	if !strings.Contains(out, `label="fr"`) && x.FR().Count() > 0 {
		t.Error("fr requested but absent")
	}
	if !strings.Contains(out, `label="Example"`) {
		t.Error("title absent")
	}
	if strings.Contains(out, `label="sb"`) {
		t.Error("sb drawn although not requested")
	}
}

func TestReduceDropsImpliedEdges(t *testing.T) {
	r := relation.FromPairs(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	red := reduce(r)
	if red.Has(0, 2) {
		t.Error("implied edge survived reduction")
	}
	if !red.Has(0, 1) || !red.Has(1, 2) {
		t.Error("reduction removed necessary edges")
	}
}

func TestASCIIRendering(t *testing.T) {
	x := sampleExec(t)
	out := ASCII(x)
	for _, want := range []string{"init", "thread 1", "thread 2", "wr(d,5)", "rf:", "mo:", "sw:"} {
		if !strings.Contains(out, want) {
			t.Errorf("ascii output missing %q:\n%s", want, out)
		}
	}
	// Columns line up: every line has the same rune count for the
	// header block (before edge lists).
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatal("too few lines")
	}
}

func TestASCIIEmptyRelationsOmitted(t *testing.T) {
	s := core.Init(map[event.Var]event.Val{"x": 0})
	out := ASCII(axiomatic.FromState(s))
	if strings.Contains(out, "rf:") || strings.Contains(out, "sw:") {
		t.Errorf("empty relations rendered:\n%s", out)
	}
}

func BenchmarkDot(b *testing.B) {
	s := core.Init(map[event.Var]event.Val{"d": 0, "f": 0})
	id, _ := s.InitialFor("d")
	s, wd, _ := s.StepWrite(1, false, "d", 5, id)
	_ = wd
	x := axiomatic.FromState(s)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Dot(x, Default()) == "" {
			b.Fatal("empty")
		}
	}
}
