// Package faultinject deterministically injects worker faults into
// the exploration engine through its Hooks seam (explore.Options.Hooks)
// — no build tags, no engine knowledge of this package. Three fault
// classes are supported, each gated by a per-configuration hash so the
// injection pattern is a function of the search parameters and the
// seed, not of worker scheduling:
//
//   - panics: model-code panics on the expansion path, exercising the
//     engine's per-configuration isolation and degraded-mode
//     completion;
//   - latency: artificial per-expansion delay, exercising wall-clock
//     budgets and checkpoint suspensions under slow progress;
//   - allocation pressure: short-lived heap ballast, exercising the
//     memory budget's MemStats watcher.
//
// Determinism contract: whether a given configuration's expansion is
// faulted depends only on (Seed, fingerprint) — a configuration that
// panics once panics on every (re-)expansion, in any schedule, at any
// worker count. Which configurations are *reached* before the search
// ends still depends on the schedule; counters report what actually
// fired.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fingerprint"
)

// Spec configures an Injector. Every*-style fields select roughly one
// in N configurations by fingerprint hash; zero disables that fault
// class.
type Spec struct {
	// Seed keys the per-configuration hash; different seeds fault
	// different (deterministic) subsets of the state space.
	Seed uint64
	// PanicEvery, when positive, panics the expansion of about one in
	// PanicEvery configurations.
	PanicEvery int
	// LatencyEvery, when positive, sleeps Latency before the expansion
	// of about one in LatencyEvery configurations.
	LatencyEvery int
	// Latency is the injected delay (default 1ms when LatencyEvery is
	// set).
	Latency time.Duration
	// AllocEvery, when positive, allocates AllocBytes of ballast
	// before the expansion of about one in AllocEvery configurations.
	AllocEvery int
	// AllocBytes is the ballast size per injection (default 1MiB when
	// AllocEvery is set).
	AllocBytes int
}

func (s Spec) latency() time.Duration {
	if s.Latency > 0 {
		return s.Latency
	}
	return time.Millisecond
}

func (s Spec) allocBytes() int {
	if s.AllocBytes > 0 {
		return s.AllocBytes
	}
	return 1 << 20
}

// Panic is the value thrown by an injected panic; the engine's
// PanicRecord renders it via fmt, so repro artifacts identify the
// injection site.
type Panic struct {
	FP    fingerprint.FP
	Depth int
}

func (p Panic) String() string {
	return fmt.Sprintf("faultinject: injected panic at %v (depth %d)", p.FP, p.Depth)
}

// ballastSlots bounds the retained allocation pressure: the ballast
// ring holds at most this many live allocations, so injection raises
// the heap watermark without growing it unboundedly.
const ballastSlots = 64

// Injector implements explore.Hooks (structurally — it imports only
// the fingerprint package). Safe for concurrent use; one Injector
// serves all workers of a run.
type Injector struct {
	spec Spec

	panics atomic.Int64
	sleeps atomic.Int64
	allocs atomic.Int64

	mu      sync.Mutex
	ballast [][]byte
	next    int
}

// New returns an Injector for spec.
func New(spec Spec) *Injector {
	return &Injector{spec: spec}
}

// hash is splitmix64 over the fingerprint and the seed: cheap,
// well-mixed, and schedule-independent.
func (inj *Injector) hash(fp fingerprint.FP) uint64 {
	z := fp.Hi ^ (fp.Lo * 0x9e3779b97f4a7c15) ^ inj.spec.Seed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hits selects about one in every configurations, deterministically by
// fingerprint. The three fault classes decorrelate by salting the
// hash.
func (inj *Injector) hits(fp fingerprint.FP, salt uint64, every int) bool {
	if every <= 0 {
		return false
	}
	return (inj.hash(fp)^salt)%uint64(every) == 0
}

// BeforeExpand is the explore.Hooks implementation: it injects the
// configured faults for fp, panicking last so latency and allocation
// injection still fire on a panicking configuration.
func (inj *Injector) BeforeExpand(fp fingerprint.FP, depth int) {
	if inj.hits(fp, 0x51eeb, inj.spec.LatencyEvery) {
		inj.sleeps.Add(1)
		time.Sleep(inj.spec.latency())
	}
	if inj.hits(fp, 0xa110c, inj.spec.AllocEvery) {
		inj.allocs.Add(1)
		b := make([]byte, inj.spec.allocBytes())
		for i := 0; i < len(b); i += 4096 {
			b[i] = 1 // touch the pages so the heap really grows
		}
		inj.mu.Lock()
		if len(inj.ballast) < ballastSlots {
			inj.ballast = append(inj.ballast, b)
		} else {
			inj.ballast[inj.next] = b
			inj.next = (inj.next + 1) % ballastSlots
		}
		inj.mu.Unlock()
	}
	if inj.hits(fp, 0xdead, inj.spec.PanicEvery) {
		inj.panics.Add(1)
		panic(Panic{FP: fp, Depth: depth})
	}
}

// Panics reports how many injected panics fired.
func (inj *Injector) Panics() int64 { return inj.panics.Load() }

// Sleeps reports how many latency injections fired.
func (inj *Injector) Sleeps() int64 { return inj.sleeps.Load() }

// Allocs reports how many allocation injections fired.
func (inj *Injector) Allocs() int64 { return inj.allocs.Load() }

// Release drops the retained ballast.
func (inj *Injector) Release() {
	inj.mu.Lock()
	inj.ballast, inj.next = nil, 0
	inj.mu.Unlock()
}
