package faultinject

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/model"
)

// workload is a small RAR message-passing configuration (a few dozen
// states), big enough that injected faults land mid-search.
func workload() core.Config {
	p := lang.Prog{
		lang.SeqC(lang.AssignC("d", lang.V(5)), lang.AssignRelC("f", lang.V(1))),
		lang.SeqC(lang.AssignC("a", lang.XA("f")), lang.AssignC("b", lang.X("d"))),
	}
	return core.NewConfig(p, map[event.Var]event.Val{"d": 0, "f": 0, "a": 0, "b": 0})
}

func TestInjectorImplementsHooks(t *testing.T) {
	var _ explore.Hooks = New(Spec{})
}

func TestDecisionsAreDeterministic(t *testing.T) {
	// Same seed → same faulted subset, independent of schedule: two
	// serial runs agree exactly, and a panic record's fingerprint
	// re-panics on every schedule.
	spec := Spec{Seed: 7, PanicEvery: 4}
	a := explore.Run(workload(), explore.Options{Workers: 1, Hooks: New(spec)})
	b := explore.Run(workload(), explore.Options{Workers: 1, Hooks: New(spec)})
	if len(a.Panics) == 0 {
		t.Fatal("spec injected nothing; lower PanicEvery")
	}
	if a.Explored != b.Explored || len(a.Panics) != len(b.Panics) {
		t.Fatalf("serial runs diverged: %d/%d panics, %d/%d explored",
			len(a.Panics), len(b.Panics), a.Explored, b.Explored)
	}
	for i := range a.Panics {
		if a.Panics[i].FP != b.Panics[i].FP {
			t.Fatalf("panic %d hit %v then %v", i, a.Panics[i].FP, b.Panics[i].FP)
		}
	}
	// A different seed faults a different subset (on this workload).
	c := explore.Run(workload(), explore.Options{Workers: 1, Hooks: New(Spec{Seed: 8, PanicEvery: 4})})
	same := len(c.Panics) == len(a.Panics)
	if same {
		for i := range c.Panics {
			if c.Panics[i].FP != a.Panics[i].FP {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 faulted the identical subset — hash ignores the seed?")
	}
}

func TestPanicDegradation(t *testing.T) {
	// Injected panics must degrade the verdict — never a spurious
	// PROVED — while the rest of the search completes, serially and in
	// parallel.
	for _, workers := range []int{1, 8} {
		inj := New(Spec{Seed: 1, PanicEvery: 6})
		res := explore.Run(workload(), explore.Options{Workers: workers, Hooks: inj})
		if inj.Panics() == 0 {
			t.Fatalf("workers=%d: no panic fired", workers)
		}
		if res.Verdict != explore.VerdictBounded {
			t.Fatalf("workers=%d: Verdict = %v, want %v", workers, res.Verdict, explore.VerdictBounded)
		}
		if len(res.Panics) == 0 || res.Frontier == 0 {
			t.Fatalf("workers=%d: %d records, frontier %d", workers, len(res.Panics), res.Frontier)
		}
		if res.Explored <= len(res.Panics) {
			t.Fatalf("workers=%d: search did not continue past the faults (explored %d)", workers, res.Explored)
		}
		for _, rec := range res.Panics {
			if !strings.Contains(rec.Err, "faultinject: injected panic") {
				t.Fatalf("workers=%d: record lost the injection identity: %q", workers, rec.Err)
			}
			c, err := core.Model.Restore(rec.Snapshot)
			if err != nil {
				t.Fatalf("workers=%d: repro snapshot broken: %v", workers, err)
			}
			if c.Fingerprint() != rec.FP {
				t.Fatalf("workers=%d: snapshot drifted", workers)
			}
		}
	}
}

func TestLatencyInjectionTriggersDeadline(t *testing.T) {
	inj := New(Spec{Seed: 3, LatencyEvery: 1, Latency: 2 * time.Millisecond})
	res := explore.Run(workload(), explore.Options{
		Workers: 1,
		Timeout: 8 * time.Millisecond,
		Hooks:   inj,
	})
	if inj.Sleeps() == 0 {
		t.Fatal("no latency injected")
	}
	if res.Stop != explore.StopDeadline || res.Verdict != explore.VerdictBounded {
		t.Fatalf("Stop = %v, Verdict = %v", res.Stop, res.Verdict)
	}
}

func TestAllocInjectionTriggersMemoryBudget(t *testing.T) {
	inj := New(Spec{Seed: 4, AllocEvery: 1, AllocBytes: 1 << 20, LatencyEvery: 1, Latency: time.Millisecond})
	defer inj.Release()
	res := explore.Run(workload(), explore.Options{
		Workers:     1,
		MaxMemBytes: 1 << 20, // below even one ballast slot
		MemPoll:     time.Millisecond,
		Hooks:       inj,
	})
	if inj.Allocs() == 0 {
		t.Fatal("no allocation injected")
	}
	if res.Stop != explore.StopMemory || res.Verdict != explore.VerdictBounded {
		t.Fatalf("Stop = %v, Verdict = %v", res.Stop, res.Verdict)
	}
}

func TestInjectionDoesNotInventViolations(t *testing.T) {
	// Faults degrade coverage, never correctness: with a property that
	// genuinely holds, an injected run reports BOUNDED (or PROVED when
	// nothing fired), never VIOLATED.
	inj := New(Spec{Seed: 5, PanicEvery: 5})
	res := explore.Run(workload(), explore.Options{
		Workers:  4,
		Hooks:    inj,
		Property: func(model.Config) bool { return true },
	})
	if res.Verdict == explore.VerdictViolated || res.Violation != nil {
		t.Fatalf("injection invented a violation: %+v", res)
	}
	if inj.Panics() > 0 && res.Verdict == explore.VerdictProved {
		t.Fatal("degraded run reported PROVED")
	}
}

func TestResumeAfterInjectedPanics(t *testing.T) {
	// The end-to-end degradation story: an injected run checkpoints,
	// and a resume without the injector finishes the search cleanly at
	// the uninterrupted fixpoint.
	want := explore.Run(workload(), explore.Options{Workers: 1})
	path := t.TempDir() + "/faulted.ckpt"
	res := explore.Run(workload(), explore.Options{
		Workers:        1,
		Hooks:          New(Spec{Seed: 1, PanicEvery: 6}),
		CheckpointPath: path,
	})
	if len(res.Panics) == 0 || res.CheckpointErr != nil {
		t.Fatalf("faulted run: %d panics, checkpoint err %v", len(res.Panics), res.CheckpointErr)
	}
	got, err := explore.Resume(path, core.Model, explore.Options{Workers: 1})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got.Verdict != explore.VerdictProved || got.Explored != want.Explored ||
		got.Terminated != want.Terminated || got.Depth != want.Depth {
		t.Fatalf("post-fault resume did not reach the clean fixpoint: %+v vs %+v", got, want)
	}
}
