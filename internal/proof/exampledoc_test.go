package proof_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/proof"
)

// The determinate-value assertion of Definition 5.1: after the
// release/acquire handshake, thread 2 knows d = 5 — the weak-memory
// analogue of the conventional equation d == 5.
func ExampleDV() {
	s := core.Init(map[event.Var]event.Val{"d": 0, "f": 0})
	id, _ := s.InitialFor("d")
	iff, _ := s.InitialFor("f")
	s, _, _ = s.StepWrite(1, false, "d", 5, id)
	s, wf, _ := s.StepWrite(1, true, "f", 1, iff)

	fmt.Println("before sync:", proof.DV(s, 2, "d", 5))
	s, _, _ = s.StepRead(2, true, "f", wf.Tag)
	fmt.Println("after sync: ", proof.DV(s, 2, "d", 5))
	// Output:
	// before sync: false
	// after sync:  true
}

// The variable-ordering assertion of Definition 5.5: writing f after
// holding d =_1 5 records that the last write to d happens-before the
// last write to f (rule WOrd), which is what Transfer later exploits.
func ExampleVO() {
	s := core.Init(map[event.Var]event.Val{"d": 0, "f": 0})
	id, _ := s.InitialFor("d")
	iff, _ := s.InitialFor("f")
	s, _, _ = s.StepWrite(1, false, "d", 5, id)
	fmt.Println("before the flag write:", proof.VO(s, "d", "f"))
	s, _, _ = s.StepWrite(1, true, "f", 1, iff)
	fmt.Println("after the flag write: ", proof.VO(s, "d", "f"))
	// Output:
	// before the flag write: false
	// after the flag write:  true
}
