package proof

import (
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/model"
)

func TestPCClassifier(t *testing.T) {
	p, _ := litmus.Peterson()
	c := p.Thread(1)
	if PC(c) != 2 {
		t.Fatalf("initial pc = %d, want 2", PC(c))
	}
	if PC(lang.SkipC()) != 7 {
		t.Fatal("skip must classify as terminated")
	}
	if PC(lang.SeqC(lang.SkipC(), lang.SwapC("turn", 2))) != 3 {
		t.Fatal("skip;swap must classify as 3")
	}
	if PC(lang.LabelC("cs", lang.SkipC())) != 5 {
		t.Fatal("cs label must classify as 5")
	}
	if PC(lang.AssignRelC("flag1", lang.B(false))) != 6 {
		t.Fatal("release reset must classify as 6")
	}
	w := lang.WhileC(lang.Eq(lang.X("turn"), lang.V(2)), lang.SkipC())
	if PC(w) != 4 {
		t.Fatal("while must classify as 4")
	}
}

// Lemma D.1 at bounded depth: all seven invariants (4)–(10) hold in
// every reachable configuration of the RA Peterson lock. This is the
// machine-checked counterpart of the paper's hand proof.
func TestPetersonInvariantsInductive(t *testing.T) {
	p, vars := litmus.Peterson()
	res := explore.Run(core.NewConfig(p, vars), explore.Options{
		MaxEvents: 12,
		Property: func(c model.Config) bool {
			return len(CheckPetersonInvariants(c.(core.Config))) == 0
		},
	})
	if res.Violation != nil {
		v := res.Violation.(core.Config)
		bad := CheckPetersonInvariants(v)
		t.Fatalf("invariants %v violated in reachable state:\npc1=%d pc2=%d\n%s",
			bad, PC(v.P.Thread(1)), PC(v.P.Thread(2)), v.S)
	}
	if res.Explored < 500 {
		t.Fatalf("exploration too small to be meaningful: %d", res.Explored)
	}
	t.Logf("invariants checked on %d configurations (depth %d)", res.Explored, res.Depth)
}

// Theorem 5.8 both directly and via the paper's derivation from
// invariant (9) and Lemma 5.4.
func TestTheorem58(t *testing.T) {
	p, vars := litmus.Peterson()
	res := explore.Run(core.NewConfig(p, vars), explore.Options{
		MaxEvents: 12,
		Property: func(c model.Config) bool {
			cc := c.(core.Config)
			return Theorem58(cc) && DeriveTheorem58(cc)
		},
	})
	if res.Violation != nil {
		t.Fatalf("mutual exclusion or its derivation failed:\n%s", res.Violation.Program())
	}
}

// The invariants are not vacuous: the weakened Peterson variant
// violates at least one of them in some reachable state (it must —
// otherwise the paper's proof would apply and mutual exclusion would
// hold, contradicting the violation found by the explorer).
func TestWeakPetersonBreaksInvariants(t *testing.T) {
	p, vars := litmus.PetersonWeakTurn()
	trace, found := explore.FindTrace(core.NewConfig(p, vars), explore.Options{
		MaxEvents: 12,
	}, func(c model.Config) bool {
		return len(CheckPetersonInvariants(c.(core.Config))) > 0
	})
	if !found {
		t.Fatal("weak Peterson satisfies all invariants — proof would go through")
	}
	last := trace.Configs[len(trace.Configs)-1].(core.Config)
	t.Logf("weak Peterson violates invariants %v after %d steps",
		CheckPetersonInvariants(last), len(trace.Configs)-1)
}

// Invariant coverage: each pc-guarded invariant actually fires during
// exploration (its guard is reachable), so the inductive check is not
// vacuous.
func TestPetersonInvariantGuardsReachable(t *testing.T) {
	p, vars := litmus.Peterson()
	reached := map[int]bool{}
	explore.Run(core.NewConfig(p, vars), explore.Options{
		MaxEvents: 12,
		Property: func(c model.Config) bool {
			for _, th := range []event.Thread{1, 2} {
				reached[PC(c.Program().Thread(th))] = true
			}
			return true
		},
	})
	for pc := 2; pc <= 7; pc++ {
		if !reached[pc] {
			t.Errorf("pc %d never reached", pc)
		}
	}
}

// Example 5.7: the message-passing proof. Whenever thread 2 has
// exited its await loop (reached the consume statement), d =_2 5
// holds — established by ModLast + WOrd in thread 1 and copied by
// Transfer at the acquiring guard read.
func TestExample57MessagePassing(t *testing.T) {
	p := lang.Prog{
		lang.SeqC(
			lang.AssignC("d", lang.V(5)),
			lang.AssignRelC("f", lang.V(1)),
		),
		lang.SeqC(
			lang.WhileC(lang.Eq(lang.XA("f"), lang.V(0)), lang.SkipC()),
			lang.LabelC("consume", lang.AssignC("r", lang.X("d"))),
		),
	}
	vars := map[event.Var]event.Val{"d": 0, "f": 0, "r": 0}
	res := explore.Run(core.NewConfig(p, vars), explore.Options{
		MaxEvents: 12,
		Property: func(c model.Config) bool {
			cc := c.(core.Config)
			if lang.AtLabel(cc.P.Thread(2)) == "consume" {
				return DV(cc.S, 2, "d", 5)
			}
			return true
		},
	})
	if res.Violation != nil {
		t.Fatalf("d =_2 5 fails past the loop:\n%s", res.Violation.(core.Config).S)
	}
	// And the intermediate assertions of the proof sketch hold after
	// thread 1 finishes: d =_1 5 and d ↪ f.
	res2 := explore.Run(core.NewConfig(p, vars), explore.Options{
		MaxEvents: 12,
		Property: func(c model.Config) bool {
			cc := c.(core.Config)
			if lang.Terminated(cc.P.Thread(1)) {
				return DV(cc.S, 1, "d", 5) && VO(cc.S, "d", "f")
			}
			return true
		},
	})
	if res2.Violation != nil {
		t.Fatal("thread 1 post-assertions fail")
	}
}

// The relaxed variant of message passing genuinely loses the property:
// some reachable post-loop state lacks d =_2 5.
func TestExample57RelaxedLosesProperty(t *testing.T) {
	p := lang.Prog{
		lang.SeqC(
			lang.AssignC("d", lang.V(5)),
			lang.AssignC("f", lang.V(1)), // relaxed flag write
		),
		lang.SeqC(
			lang.WhileC(lang.Eq(lang.X("f"), lang.V(0)), lang.SkipC()),
			lang.LabelC("consume", lang.AssignC("r", lang.X("d"))),
		),
	}
	vars := map[event.Var]event.Val{"d": 0, "f": 0, "r": 0}
	_, found := explore.FindTrace(core.NewConfig(p, vars), explore.Options{
		MaxEvents: 12,
	}, func(c model.Config) bool {
		cc := c.(core.Config)
		return lang.AtLabel(cc.P.Thread(2)) == "consume" && !DV(cc.S, 2, "d", 5)
	})
	if !found {
		t.Fatal("relaxed MP unexpectedly preserves the determinate value")
	}
}

func TestPetersonInvariantTableShape(t *testing.T) {
	invs := PetersonInvariants()
	if len(invs) != 7 {
		t.Fatalf("invariant count = %d", len(invs))
	}
	for i, inv := range invs {
		if inv.ID != i+4 {
			t.Fatalf("invariant %d has ID %d", i, inv.ID)
		}
		if inv.Name == "" || inv.Holds == nil {
			t.Fatalf("invariant %d incomplete", inv.ID)
		}
	}
	// All hold initially.
	p, vars := litmus.Peterson()
	c := core.NewConfig(p, vars)
	if bad := CheckPetersonInvariants(c); len(bad) != 0 {
		t.Fatalf("initial state violates %v", bad)
	}
	if !DeriveTheorem58(c) {
		t.Fatal("derivation fails on initial state")
	}
}

func BenchmarkPetersonInvariantCheck(b *testing.B) {
	p, vars := litmus.Peterson()
	c := core.NewConfig(p, vars)
	// Advance a few steps to a non-trivial state.
	for i := 0; i < 6; i++ {
		succ := c.Successors()
		c = succ[0].C
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(CheckPetersonInvariants(c)) != 0 {
			b.Fatal("invariant violated")
		}
	}
}
