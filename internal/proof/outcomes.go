package proof

// Linearizability-style outcome properties for the data-structure
// workload tier (internal/ds). The assertions of assertions.go speak
// about one RAR state's event structure; the properties here are
// model-generic instead: they judge the *set of final outcomes* a
// bounded exploration produced (the litmus layer's Summarise keys),
// so the same property checks a structure under the RAR and SC
// backends alike. A property names one way a client history could
// fail to linearize — a lost stack push, a duplicated dequeue, two
// threads inside a critical section — and flags every outcome that
// witnesses it.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/event"
	"repro/internal/lang"
	"repro/internal/model"
)

// OutcomeProp is a linearizability-style property over final
// outcomes: Violated reports whether one outcome (a final assignment
// of the observed variables) witnesses a violation.
type OutcomeProp struct {
	Name string
	// Doc states the property positively ("every push is reachable
	// from top"), for reports.
	Doc string
	// Violated judges one parsed outcome.
	Violated func(o map[event.Var]event.Val) bool
}

// ParseOutcomeKey inverts the Summarise/Outcome.Key rendering
// "x=1;y[0]=2;" into an assignment map. Cell names pass through
// verbatim — they are ordinary variables.
func ParseOutcomeKey(key string) (map[event.Var]event.Val, error) {
	out := map[event.Var]event.Val{}
	for _, part := range strings.Split(key, ";") {
		if part == "" {
			continue
		}
		eq := strings.LastIndexByte(part, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("proof: malformed outcome entry %q in %q", part, key)
		}
		v, err := strconv.Atoi(part[eq+1:])
		if err != nil {
			return nil, fmt.Errorf("proof: malformed outcome value %q in %q", part, key)
		}
		out[event.Var(part[:eq])] = event.Val(v)
	}
	return out, nil
}

// CheckOutcomeProps evaluates the properties over a reachable-outcome
// set (keys in the Summarise format, as litmus.Report.Outcomes holds
// them) and returns one violation line per (property, outcome) pair,
// deterministically ordered by property then key order of the input
// map's sorted keys. An unparsable key is itself reported.
func CheckOutcomeProps(outcomes map[string]bool, props []OutcomeProp) []string {
	keys := make([]string, 0, len(outcomes))
	for k, reached := range outcomes {
		if reached {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var violations []string
	for _, p := range props {
		for _, k := range keys {
			o, err := ParseOutcomeKey(k)
			if err != nil {
				violations = append(violations, fmt.Sprintf("%s: %v", p.Name, err))
				continue
			}
			if p.Violated(o) {
				violations = append(violations, fmt.Sprintf("%s violated by %s", p.Name, k))
			}
		}
	}
	return violations
}

// ClientThreads returns the thread identifiers 1..n — every client
// thread of an n-thread program, in the litmus layer's numbering.
func ClientThreads(n int) []event.Thread {
	out := make([]event.Thread, n)
	for i := range out {
		out[i] = event.Thread(i + 1)
	}
	return out
}

// MutexAtLabel returns the safety property "no two of the given
// threads are simultaneously at the named label", as an exploration
// property (true = safe) usable with explore.Options.Property under
// any backend. It generalises the two-thread Peterson check of the
// litmus catalog to the N client threads of a data-structure
// workload: a ticket lock's critical section is mutually exclusive
// whatever the client count.
func MutexAtLabel(label string, threads ...event.Thread) func(model.Config) bool {
	return func(c model.Config) bool {
		p := c.Program()
		inside := 0
		for _, t := range threads {
			if lang.AtLabel(p.Thread(t)) == label {
				inside++
				if inside > 1 {
					return false
				}
			}
		}
		return true
	}
}
